(** The pthreads-like programming interface that workloads are written
    against.

    A {!program} is portable across every runtime in this repository —
    the nondeterministic [pthreads] baseline, [dthreads], [dwc], and the
    two Consequence variants — exactly as the paper's benchmarks are one
    binary linked against different threading libraries.  The runtime
    supplies a record of operations ({!ops}) to each thread body; all
    shared-memory access and synchronization must go through it.

    Memory is a single flat byte-addressed heap (the program declares its
    size in pages).  Synchronization objects are small integers, created
    on first use; barriers must be sized with [barrier_init] before
    waiting on them. *)

type mutex = int
type cond = int
type barrier = int
type thread = int

type ops = {
  tid : int;  (** this thread's id (main = 0) *)
  self_name : string;
  work : int -> unit;
      (** retire [n] user instructions of pure local computation *)
  read : addr:int -> len:int -> Bytes.t;
  write : addr:int -> Bytes.t -> unit;
  read_int : addr:int -> int;
  write_int : addr:int -> int -> unit;
  fetch_add : addr:int -> int -> int;
      (** read-modify-write of an 8-byte integer with the runtime's
          {e native} semantics: truly atomic under pthreads, but a plain
          store-buffered RMW under the deterministic runtimes — which
          (deterministically) loses updates, reproducing the atomic-
          operations hazard of paper section 2.7.  Returns the value read. *)
  atomic_fetch_add : addr:int -> int -> int;
      (** the paper's proposed fix (section 2.7): acquire the global
          token, perform the RMW against the latest committed state, and
          commit — atomic and deterministic on every runtime. *)
  lock : mutex -> unit;
  unlock : mutex -> unit;
  cond_wait : cond -> mutex -> unit;
      (** caller must hold [mutex]; atomically releases it and blocks *)
  cond_signal : cond -> unit;
  cond_broadcast : cond -> unit;
  barrier_init : barrier -> int -> unit;
      (** set the participant count; must precede any wait *)
  barrier_wait : barrier -> unit;
  spawn : ?name:string -> (ops -> unit) -> thread;
  join : thread -> unit;
  log_output : string -> unit;
      (** emit an application-level output event; the stream of these is
          part of the determinism witness *)
  yield : unit -> unit;
      (** hint only; lets the nondeterministic baseline reschedule *)
  base_version : unit -> int;
      (** the committed memory version this thread's view is based on
          (the workspace base under the versioned runtimes; always 0
          under pthreads, whose flat heap has no version history).  The
          value is runtime- and schedule-dependent: use it only as a pin
          for {!field-snapshot_read}, never in program outputs. *)
  snapshot_read : version:int -> addr:int -> len:int -> Bytes.t;
      (** read the committed image pinned at [version] (a value obtained
          from {!field-base_version}): a consistent point-in-time view
          served from the segment's version histories with no fault, no
          copy-on-write, and no validation — the substrate for
          snapshot (read-only) transactions.  Under pthreads this reads
          current memory, which coincides whenever the program
          guarantees no concurrent writers to the range (as the kv
          round protocol does). *)
  now_ns : unit -> int;
      (** current simulated (DES) or real (domains) time.  Varies across
          runtimes and seeds: feed it only to metrics (latency
          histograms), never into control flow or outputs. *)
  metric_incr : string -> int -> unit;
      (** bump a named counter in the run's {!Obs.Metrics} registry *)
  metric_observe : string -> int -> unit;
      (** record a named histogram observation (e.g. a request latency) *)
  txn_validate : keys:int -> unit;
      (** charge the cost-model price of validating one software
          transaction whose intent lists total [keys] entries; accounted
          as the [Txn_validate] thread state *)
  txn_abort : seq:int -> retries:int -> unit;
      (** charge one transaction abort (plus [retries] deterministic
          backoff units) and emit an {!Rt_event.Txn_abort} event carrying
          [seq], so abort decisions are part of the recorded, replayable
          event stream; accounted as the [Txn_abort] thread state *)
}

type t = {
  name : string;
  description : string;
  default_threads : int;
  heap_pages : int;
  page_size : int;
  main : nthreads:int -> ops -> unit;
      (** body of the main thread; receives the requested worker count
          and typically spawns [nthreads] workers and joins them *)
}

val make :
  name:string ->
  ?description:string ->
  ?default_threads:int ->
  ?heap_pages:int ->
  ?page_size:int ->
  (nthreads:int -> ops -> unit) ->
  t
(** Defaults: 8 threads, 256 pages of 256 bytes. *)

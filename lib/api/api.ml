type mutex = int
type cond = int
type barrier = int
type thread = int

type ops = {
  tid : int;
  self_name : string;
  work : int -> unit;
  read : addr:int -> len:int -> Bytes.t;
  write : addr:int -> Bytes.t -> unit;
  read_int : addr:int -> int;
  write_int : addr:int -> int -> unit;
  fetch_add : addr:int -> int -> int;
  atomic_fetch_add : addr:int -> int -> int;
  lock : mutex -> unit;
  unlock : mutex -> unit;
  cond_wait : cond -> mutex -> unit;
  cond_signal : cond -> unit;
  cond_broadcast : cond -> unit;
  barrier_init : barrier -> int -> unit;
  barrier_wait : barrier -> unit;
  spawn : ?name:string -> (ops -> unit) -> thread;
  join : thread -> unit;
  log_output : string -> unit;
  yield : unit -> unit;
  base_version : unit -> int;
  snapshot_read : version:int -> addr:int -> len:int -> Bytes.t;
  now_ns : unit -> int;
  metric_incr : string -> int -> unit;
  metric_observe : string -> int -> unit;
  txn_validate : keys:int -> unit;
  txn_abort : seq:int -> retries:int -> unit;
}

type t = {
  name : string;
  description : string;
  default_threads : int;
  heap_pages : int;
  page_size : int;
  main : nthreads:int -> ops -> unit;
}

let make ~name ?(description = "") ?(default_threads = 8) ?(heap_pages = 256)
    ?(page_size = 256) main =
  if heap_pages <= 0 || page_size <= 0 then invalid_arg "Api.make: bad heap geometry";
  if default_threads <= 0 then invalid_arg "Api.make: bad thread count";
  { name; description; default_threads; heap_pages; page_size; main }

(** Per-thread isolated view of a {!Segment} — the software store buffer.

    Between synchronization operations a thread reads and writes only
    through its workspace (paper section 2.5):

    - reads of untouched pages come from the segment snapshot at the
      workspace's {e base version}, so remote commits stay invisible until
      an explicit {!update};
    - the first write to a page in a chunk triggers a simulated
      copy-on-write fault: the page is copied locally and a pristine
      {e twin} is kept for byte-granularity merging at commit;
    - subsequent reads of a dirty page see the thread's own writes — the
      store-buffer forwarding that TSO permits (a thread may observe its
      own stores before they are globally visible).

    {!commit} publishes the dirty pages as a new segment version (merging
    byte-wise against concurrent committers, last-writer-wins) and
    {!update} advances the base version to the newest committed one.
    Together they implement the paper's [convCommitAndUpdateMem()].

    Clean resident pages may internally {e alias} immutable segment
    snapshots instead of holding private copies: an unconflicted commit
    hands its buffer to the segment and keeps reading it in place, and
    an update that must refresh a stale resident simply re-points it at
    the fresh snapshot.  The next write fault copies the page back into
    private ownership, so the observable semantics (and all counters)
    are exactly those of the always-copy scheme, minus the copies. *)

type t

type conflict = {
  cpage : int;  (** page index *)
  first_byte : int;  (** page-relative, inclusive *)
  last_byte : int;  (** page-relative, inclusive *)
  loser_tid : int;  (** committer whose bytes the merge overwrote *)
  loser_version : int;  (** the version those bytes were committed as *)
}
(** One run of bytes the last-writer-wins merge resolved against a
    concurrent committer: both this workspace's thread and some
    intervening commit changed every byte in the run since the twin was
    taken.  The loser is attributed to the newest version that modified
    the page in the conflict window (exact when one concurrent writer
    touched the page, the most recent writer otherwise). *)

type commit_info = {
  version : int;  (** new version number, or the old one if nothing was dirty *)
  pages_committed : int;
  pages_merged : int;  (** pages that hit a concurrent writer and needed a byte merge *)
  bytes_merged : int;
  committed_pages : int list;  (** indices of the committed pages, ascending *)
  conflicts : conflict list;
      (** byte-exact conflict tuples, ascending by (page, first_byte);
          always [[]] unless {!set_track_conflicts} enabled capture *)
}

type update_info = {
  from_version : int;
  to_version : int;
  pages_propagated : int;
      (** distinct pages committed by {e other} threads in the window —
          the inter-thread propagation volume of Fig 16 *)
  pages_refreshed : int;  (** resident local copies that had to be recopied *)
}

type stats = {
  mutable write_faults : int;
  mutable pages_committed : int;
  mutable pages_merged : int;
  mutable bytes_merged : int;
  mutable pages_propagated : int;
  mutable pages_refreshed : int;
  mutable commits : int;
  mutable updates : int;
}

val create : Segment.t -> tid:int -> t
val tid : t -> int
val segment : t -> Segment.t
val base : t -> Segment.version

val read : t -> addr:int -> len:int -> Bytes.t
(** Read [len] bytes at byte address [addr]; may span pages. *)

val write : t -> addr:int -> Bytes.t -> unit
(** Write the buffer at byte address [addr]; may span pages.  Faults in
    (and twins) every page touched for the first time this chunk. *)

val read_int64 : t -> addr:int -> int64
(** Little-endian convenience accessors built on {!read}/{!write}. *)

val write_int64 : t -> addr:int -> int64 -> unit
val read_int : t -> addr:int -> int
val write_int : t -> addr:int -> int -> unit

val is_dirty : t -> bool
val dirty_count : t -> int

val set_track_conflicts : t -> bool -> unit
(** Enable (or disable) conflict capture at commit time.  Off by default:
    the capture adds one extra three-way page scan per merged page, so
    runs that attach no observer pay nothing.  Capture never changes the
    merge result, the counters, or any simulated cost — it only fills
    [commit_info.conflicts]. *)

val track_conflicts : t -> bool

val resident_pages : t -> int
(** Local page copies currently held — the workspace-side contribution to
    Fig 12's memory footprint. *)

val commit : t -> commit_info
(** Publish dirty pages as a new version.  Clears the dirty set and twins;
    local copies stay resident.  Does {e not} move the base version (TSO
    only requires the thread's own stores to be ordered; seeing remote
    stores requires {!update}).  No-op (same version) if nothing dirty.
    [commit t] is exactly [install t (seal t)]. *)

(** {2 Two-phase commit}

    The pipelined runtime splits a commit into the part that must be
    ordered (sealing the write-set: sorting the dirty pages, merging
    against concurrent committers, capturing conflicts) and the part
    that publishes it (installing the snapshots as a new version).  Both
    still run under the token — only the {e cost} of the bulk install is
    charged after the release — so [seal] then [install] with no
    intervening segment commit is byte-identical to {!commit}. *)

type sealed
(** A sealed write-set: snapshots merged against the segment version
    current at seal time, plus the commit metadata.  Must be passed to
    {!install} before any other commit against the segment; {!install}
    raises [Invalid_argument] if the segment advanced since the seal. *)

val seal : t -> sealed
(** Prepare the dirty pages for publication (phase one).  Performs all
    merges and conflict capture; does not create a version or clear the
    dirty set. *)

val install : t -> sealed -> commit_info
(** Publish a sealed write-set (phase two): install the snapshots as a
    new version, clear the dirty set and twins, update the stats.  The
    returned [commit_info] is identical to what {!commit} would have
    returned at seal time. *)

val sealed_pages : sealed -> int
(** Pages in the sealed write-set ([pages_committed] of the eventual
    {!commit_info}). *)

val sealed_merged : sealed -> int
(** Pages in the sealed write-set that needed a byte merge. *)

val update : t -> update_info
(** Advance the base to the newest committed version, refreshing any
    resident local copies that remote commits (or our own merges)
    superseded.  Requires a clean workspace: raises [Invalid_argument] if
    dirty pages exist (commit first, as [convCommitAndUpdateMem] does). *)

val drop_residents : t -> unit
(** Forget all local copies (used when a pooled thread is recycled or a
    fresh process would have an empty page table). *)

val stats : t -> stats

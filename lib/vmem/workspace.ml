type conflict = {
  cpage : int;
  first_byte : int;
  last_byte : int;
  loser_tid : int;
  loser_version : int;
}

type commit_info = {
  version : int;
  pages_committed : int;
  pages_merged : int;
  bytes_merged : int;
  committed_pages : int list;
  conflicts : conflict list;
}

type update_info = {
  from_version : int;
  to_version : int;
  pages_propagated : int;
  pages_refreshed : int;
}

type stats = {
  mutable write_faults : int;
  mutable pages_committed : int;
  mutable pages_merged : int;
  mutable bytes_merged : int;
  mutable pages_propagated : int;
  mutable pages_refreshed : int;
  mutable commits : int;
  mutable updates : int;
}

(* Resident local copies come in two flavors:
   - owned buffers the thread may mutate (every dirty page is owned);
   - aliases of immutable segment snapshots ([aliased] holds their
     indices), installed by commit and update so that clean pages cost no
     copy.  An aliased page is copied lazily on the next write fault. *)
type t = {
  seg : Segment.t;
  tid : int;
  mutable base : Segment.version;
  local : (int, Page.t) Hashtbl.t; (* resident local copies *)
  aliased : (int, unit) Hashtbl.t; (* local entries that alias snapshots *)
  twins : (int, Page.t) Hashtbl.t; (* pristine copies of dirty pages *)
  dirty : (int, unit) Hashtbl.t;
  mutable track_conflicts : bool;
  stats : stats;
}

let create seg ~tid =
  {
    seg;
    tid;
    base = Segment.current_version seg;
    local = Hashtbl.create 64;
    aliased = Hashtbl.create 64;
    twins = Hashtbl.create 16;
    dirty = Hashtbl.create 16;
    track_conflicts = false;
    stats =
      {
        write_faults = 0;
        pages_committed = 0;
        pages_merged = 0;
        bytes_merged = 0;
        pages_propagated = 0;
        pages_refreshed = 0;
        commits = 0;
        updates = 0;
      };
  }

let tid t = t.tid
let segment t = t.seg
let base t = t.base
let stats t = t.stats
let is_dirty t = Hashtbl.length t.dirty > 0
let dirty_count t = Hashtbl.length t.dirty
let set_track_conflicts t on = t.track_conflicts <- on
let track_conflicts t = t.track_conflicts
let resident_pages t = Hashtbl.length t.local

let page_size t = Segment.page_size t.seg

let check_range t ~addr ~len =
  let limit = Segment.page_count t.seg * page_size t in
  if addr < 0 || len < 0 || addr + len > limit then
    invalid_arg
      (Printf.sprintf "Workspace: access [%d, %d) outside segment of %d bytes" addr (addr + len)
         limit)

(* The page content this thread currently sees for [i]: its own local copy
   if resident, else the committed snapshot at its base version. *)
let view_page t i =
  match Hashtbl.find_opt t.local i with
  | Some page -> page
  | None -> Segment.read_page t.seg ~version:t.base i

(* Fault a page into the local workspace for writing: make sure the
   resident copy is an owned, mutable buffer, keep a twin with the
   pristine pre-write content for later diffing, mark dirty.  The twin
   never needs a copy when the pristine content is itself an immutable
   snapshot (first write to a non-resident or aliased page). *)
let fault_for_write t i =
  if not (Hashtbl.mem t.dirty i) then begin
    (match Hashtbl.find_opt t.local i with
    | Some page ->
        if Hashtbl.mem t.aliased i then begin
          Hashtbl.replace t.local i (Page.copy page);
          Hashtbl.remove t.aliased i;
          Hashtbl.replace t.twins i page
        end
        else Hashtbl.replace t.twins i (Page.copy page)
    | None ->
        let snap = Segment.read_page t.seg ~version:t.base i in
        Hashtbl.replace t.local i (Page.copy snap);
        Hashtbl.replace t.twins i snap);
    Hashtbl.replace t.dirty i ();
    t.stats.write_faults <- t.stats.write_faults + 1
  end

let read t ~addr ~len =
  check_range t ~addr ~len;
  let psize = page_size t in
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pg = a / psize and off = a mod psize in
    let n = min (len - !pos) (psize - off) in
    Bytes.blit (view_page t pg) off out !pos n;
    pos := !pos + n
  done;
  out

let write t ~addr buf =
  let len = Bytes.length buf in
  check_range t ~addr ~len;
  let psize = page_size t in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pg = a / psize and off = a mod psize in
    let n = min (len - !pos) (psize - off) in
    fault_for_write t pg;
    Bytes.blit buf !pos (Hashtbl.find t.local pg) off n;
    pos := !pos + n
  done

(* 8-byte accessors: the common case (the access stays inside one page)
   reads or writes the resident buffer directly, with no intermediate
   allocation; only page-spanning accesses fall back to the generic
   buffer-based path. *)
let read_int64 t ~addr =
  check_range t ~addr ~len:8;
  let psize = page_size t in
  let off = addr mod psize in
  if off + 8 <= psize then Bytes.get_int64_le (view_page t (addr / psize)) off
  else begin
    let b = read t ~addr ~len:8 in
    Bytes.get_int64_le b 0
  end

let write_int64 t ~addr v =
  check_range t ~addr ~len:8;
  let psize = page_size t in
  let off = addr mod psize in
  if off + 8 <= psize then begin
    let pg = addr / psize in
    fault_for_write t pg;
    Bytes.set_int64_le (Hashtbl.find t.local pg) off v
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    write t ~addr b
  end

let read_int t ~addr = Int64.to_int (read_int64 t ~addr)
let write_int t ~addr v = write_int64 t ~addr (Int64.of_int v)

type sealed = {
  sbase : int;  (* segment version the seal merged against *)
  spages : (int * Page.t) list;
  sdirty : int list;
  smerged : int;
  smerged_bytes : int;
  sconflicts : conflict list;
}

let seal t =
  let dirty =
    Hashtbl.fold (fun i () acc -> i :: acc) t.dirty []
    |> List.sort (fun (a : int) b -> compare a b)
  in
  match dirty with
  | [] ->
      {
        sbase = Segment.current_version t.seg;
        spages = [];
        sdirty = [];
        smerged = 0;
        smerged_bytes = 0;
        sconflicts = [];
      }
  | _ ->
      let latest = Segment.current_version t.seg in
      let merged = ref 0 and merged_bytes = ref 0 in
      let conflicts = ref [] in
      let snapshots =
        List.map
          (fun i ->
            let local = Hashtbl.find t.local i in
            if Segment.last_mod t.seg i > t.base then begin
              (* A concurrent committer beat us to this page: byte-merge our
                 modifications onto the newest committed copy. *)
              let target = Page.copy (Segment.read_page t.seg ~version:latest i) in
              let twin = Hashtbl.find t.twins i in
              (if t.track_conflicts then begin
                 (* Capture before merge_into overwrites [target].  The
                    dirty list is ascending, so appending keeps conflicts
                    ordered by (page, first_byte). *)
                 let loser_version = Segment.last_mod t.seg i in
                 let loser_tid = Segment.committer_of t.seg loser_version in
                 if loser_tid <> t.tid then
                   List.iter
                     (fun (first_byte, last_byte) ->
                       conflicts :=
                         { cpage = i; first_byte; last_byte; loser_tid; loser_version }
                         :: !conflicts)
                     (Page.conflict_runs ~twin ~local ~target)
               end);
              let nbytes = Page.merge_into ~twin ~local ~target in
              incr merged;
              merged_bytes := !merged_bytes + nbytes;
              (i, target)
            end
            else begin
              (* Unconflicted: hand the local buffer itself to the segment
                 as the immutable snapshot and keep it resident as an
                 alias — no copy.  The next write fault copies it back. *)
              Hashtbl.replace t.aliased i ();
              (i, local)
            end)
          dirty
      in
      {
        sbase = latest;
        spages = snapshots;
        sdirty = dirty;
        smerged = !merged;
        smerged_bytes = !merged_bytes;
        sconflicts = List.rev !conflicts;
      }

let sealed_pages s = List.length s.sdirty
let sealed_merged s = s.smerged

let install t s =
  match s.sdirty with
  | [] ->
      {
        version = Segment.current_version t.seg;
        pages_committed = 0;
        pages_merged = 0;
        bytes_merged = 0;
        committed_pages = [];
        conflicts = [];
      }
  | _ ->
      (* The seal merged against [sbase]; an intervening commit would make
         the sealed snapshots stale.  The runtime installs before releasing
         the token, so this can only trip on caller misuse. *)
      if Segment.current_version t.seg <> s.sbase then
        invalid_arg "Workspace.install: segment advanced since seal";
      let version = Segment.commit t.seg ~committer:t.tid ~pages:s.spages in
      let committed = List.length s.sdirty in
      Hashtbl.reset t.dirty;
      Hashtbl.reset t.twins;
      t.stats.commits <- t.stats.commits + 1;
      t.stats.pages_committed <- t.stats.pages_committed + committed;
      t.stats.pages_merged <- t.stats.pages_merged + s.smerged;
      t.stats.bytes_merged <- t.stats.bytes_merged + s.smerged_bytes;
      {
        version;
        pages_committed = committed;
        pages_merged = s.smerged;
        bytes_merged = s.smerged_bytes;
        committed_pages = s.sdirty;
        conflicts = s.sconflicts;
      }

let commit t = install t (seal t)

let update t =
  if is_dirty t then invalid_arg "Workspace.update: dirty pages present; commit first";
  let from_version = t.base in
  let to_version = Segment.current_version t.seg in
  if to_version = from_version then
    { from_version; to_version; pages_propagated = 0; pages_refreshed = 0 }
  else begin
    let propagated = Segment.modified_since_by_others t.seg ~since:from_version ~tid:t.tid in
    let refreshed = ref 0 in
    (* Refresh stale residents: a resident copy of page [i] can only be
       out of date if some commit in (from_version, to_version] touched
       [i], i.e. if its last modifier is newer than our base — no need to
       materialize the modified-page list. *)
    Hashtbl.filter_map_inplace
      (fun i local ->
        if Segment.last_mod t.seg i > from_version then begin
          let fresh = Segment.read_page t.seg ~version:to_version i in
          if not (Page.equal local fresh) then begin
            incr refreshed;
            Hashtbl.replace t.aliased i ();
            Some fresh
          end
          else Some local
        end
        else Some local)
      t.local;
    t.base <- to_version;
    t.stats.updates <- t.stats.updates + 1;
    t.stats.pages_propagated <- t.stats.pages_propagated + propagated;
    t.stats.pages_refreshed <- t.stats.pages_refreshed + !refreshed;
    { from_version; to_version; pages_propagated = propagated; pages_refreshed = !refreshed }
  end

let drop_residents t =
  if is_dirty t then invalid_arg "Workspace.drop_residents: dirty pages present";
  Hashtbl.reset t.local;
  Hashtbl.reset t.aliased;
  Hashtbl.reset t.twins

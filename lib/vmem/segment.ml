type version = int

type entry = { committer : int; page_idxs : int array }

(* Per-page snapshot history: versions ascending, live entries in
   [off, off+len).  Appends go at the end (commits create monotonically
   increasing versions); GC drops an obsolete prefix by advancing [off].
   Lookup of "newest snapshot at version <= v" is a binary search, with an
   O(1) fast path for the common latest-version read.

   Publication protocol for lock-free readers (the real-multicore
   runtime reads pages ([read_page]) without the global runtime lock
   while the token holder appends snapshots):

   - The [vs]/[ps] pair lives behind an [Atomic]; a realloc blits the
     live entries into fresh arrays and publishes them with the SC
     store to [arrays], so a reader that loads the new pair also sees
     the blitted contents (no plain-pointer race).
   - [hist_append] fills the new slot with plain writes before the SC
     store to [len]; a reader loads [len] first, then [arrays].  SC
     ordering makes the [arrays] snapshot at least as new as the one
     in place when the observed [len] was published, and while [off]
     is 0 every snapshot holds the same entries at the same indices
     below that [len] — entries are immutable once published.
   - GC mutates [off]/drops entries, which is only safe single-domain —
     the domains runtime disables segment GC, so [off] stays 0 there. *)
type arrays = { vs : int array; ps : Page.t array }

type hist = {
  arrays : arrays Atomic.t;
  mutable off : int;
  len : int Atomic.t;
}

type t = {
  name : string;
  page_size : int;
  npages : int;
  histories : hist array;
  last_mod_arr : int array;
  versions : entry Sim.Vec.t; (* index i holds version i+1 *)
  zero : Page.t;
  mutable live : int;
  mutable gc_cursor : int;
  (* Generation-stamped scratch for distinct-page window scans: page [i]
     was already counted in the current scan iff [seen_gen.(i) = gen].
     Replaces a per-call hashtable with zero allocation. *)
  seen_gen : int array;
  mutable gen : int;
  (* Contiguous page-range shards with independent live accounting, GC
     cursors and locks.  Version numbering and the [versions] log stay
     global — shards parallelize the page-snapshot *installs* and the
     collector, never the total store order. *)
  mutable nshards : int;
  mutable shard_live : int array;  (* live snapshots per shard; sums to [live] *)
  mutable shard_cursor : int array;  (* GC resume point, relative to shard start *)
  mutable shard_locks : Mutex.t array;
  mutable gc_shard : int;  (* next shard the incremental collector steps *)
}

let hist_create () =
  { arrays = Atomic.make { vs = [||]; ps = [||] }; off = 0; len = Atomic.make 0 }

let hist_append h ~zero v p =
  let len = Atomic.get h.len in
  let a = Atomic.get h.arrays in
  let cap = Array.length a.vs in
  let a =
    if h.off + len <> cap then a
    else begin
      let a =
        if len * 2 <= cap && cap > 0 then begin
          (* Plenty of dead prefix: compact in place.  Only reachable
             after GC advanced [off], i.e. never under the domains
             runtime (no concurrent readers of the moved slots). *)
          Array.blit a.vs h.off a.vs 0 len;
          Array.blit a.ps h.off a.ps 0 len;
          Array.fill a.ps len (cap - len) zero;
          a
        end
        else begin
          let new_cap = max 4 (len * 2) in
          let vs = Array.make new_cap 0 and ps = Array.make new_cap zero in
          Array.blit a.vs h.off vs 0 len;
          Array.blit a.ps h.off ps 0 len;
          let na = { vs; ps } in
          (* Publish the grown arrays with the SC store so a reader
             that loads [na] also sees the blitted entries (see the
             [hist] comment). *)
          Atomic.set h.arrays na;
          na
        end
      in
      h.off <- 0;
      a
    end
  in
  a.vs.(h.off + len) <- v;
  a.ps.(h.off + len) <- p;
  (* Publish: every plain write above must be visible before the new
     length (see the [hist] comment). *)
  Atomic.set h.len (len + 1)

(* Newest entry with version <= v: returns its index (into the returned
   snapshot's vs/ps) and the snapshot itself, or -1.  Reads [len]
   before [arrays] so the snapshot is at least as new as the one the
   observed [len] was published against (see the [hist] comment). *)
let hist_lookup h v =
  let len = Atomic.get h.len in
  let a = Atomic.get h.arrays in
  if len = 0 || v < a.vs.(h.off) then (-1, a)
  else begin
    let last = h.off + len - 1 in
    if v >= a.vs.(last) then (last, a)
    else begin
      (* Invariant: vs.(lo) <= v < vs.(hi). *)
      let lo = ref h.off and hi = ref last in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if a.vs.(mid) <= v then lo := mid else hi := mid
      done;
      (!lo, a)
    end
  end

let hist_latest h ~zero =
  let len = Atomic.get h.len in
  if len = 0 then zero
  else
    let a = Atomic.get h.arrays in
    a.ps.(h.off + len - 1)

let create ?(name = "segment") ~pages ~page_size () =
  if pages <= 0 then invalid_arg "Segment.create: pages must be > 0";
  if page_size <= 0 then invalid_arg "Segment.create: page_size must be > 0";
  {
    name;
    page_size;
    npages = pages;
    histories = Array.init pages (fun _ -> hist_create ());
    last_mod_arr = Array.make pages 0;
    versions = Sim.Vec.create ();
    zero = Page.create ~size:page_size;
    live = 0;
    gc_cursor = 0;
    seen_gen = Array.make pages 0;
    gen = 0;
    nshards = 1;
    shard_live = [| 0 |];
    shard_cursor = [| 0 |];
    shard_locks = [| Mutex.create () |];
    gc_shard = 0;
  }

let name t = t.name
let page_count t = t.npages
let page_size t = t.page_size
let current_version t = Sim.Vec.length t.versions
let shards t = t.nshards

(* Contiguous ranges: page [i] belongs to shard [i * nshards / npages],
   so shard [s] covers [ceil(s*npages/n), ceil((s+1)*npages/n)). *)
let shard_of_page t i = i * t.nshards / t.npages
let shard_start t s = (s * t.npages + t.nshards - 1) / t.nshards

let set_shards t n =
  if n < 1 then invalid_arg (Printf.sprintf "Segment %s: shards must be >= 1" t.name);
  let n = min n t.npages in
  t.nshards <- n;
  t.shard_live <- Array.make n 0;
  t.shard_cursor <- Array.make n 0;
  t.shard_locks <- Array.init n (fun _ -> Mutex.create ());
  t.gc_shard <- 0;
  for i = 0 to t.npages - 1 do
    let s = shard_of_page t i in
    t.shard_live.(s) <- t.shard_live.(s) + Atomic.get t.histories.(i).len
  done

let check_page t i =
  if i < 0 || i >= t.npages then
    invalid_arg (Printf.sprintf "Segment %s: page %d out of bounds (%d pages)" t.name i t.npages)

let read_page t ~version i =
  check_page t i;
  let h = t.histories.(i) in
  let k, a = hist_lookup h version in
  if k < 0 then t.zero else a.ps.(k)

let last_mod t i =
  check_page t i;
  t.last_mod_arr.(i)

let read_bytes t ~version ~addr ~len =
  if addr < 0 || len < 0 || addr + len > t.npages * t.page_size then
    invalid_arg
      (Printf.sprintf "Segment %s: read_bytes [%d, %d) out of bounds" t.name addr (addr + len));
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let pg = a / t.page_size and off = a mod t.page_size in
    let n = min (len - !pos) (t.page_size - off) in
    Bytes.blit (read_page t ~version pg) off out !pos n;
    pos := !pos + n
  done;
  out

let install_page t vnum (i, page) =
  if Bytes.length page <> t.page_size then
    invalid_arg (Printf.sprintf "Segment %s: bad page size in commit" t.name);
  hist_append t.histories.(i) ~zero:t.zero vnum page;
  t.last_mod_arr.(i) <- vnum

(* Below this many pages the pool's dispatch broadcast costs more than
   the installs it would spread. *)
let parallel_install_threshold = 64

(* Install a multi-shard footprint with one pool worker per shard.  Page
   indices within a commit are distinct, so workers touch disjoint
   histories; each worker owns its shard's live counter (under the shard
   lock, so installs remain safe if commits ever arrive from several
   domains).  Refuses — caller falls back to the serial loop — when the
   shared pool is busy with another job. *)
let install_sharded t vnum pages npages_committed =
  let groups = Array.make t.nshards [] in
  let nonempty = ref 0 in
  List.iter
    (fun ((i, _) as pg) ->
      let s = shard_of_page t i in
      if groups.(s) = [] then incr nonempty;
      groups.(s) <- pg :: groups.(s))
    pages;
  !nonempty > 1
  &&
  let ran =
    try
      Sim.Par.try_run_pool (Sim.Par.shared_pool ()) t.nshards (fun s ->
          match groups.(s) with
          | [] -> ()
          | g ->
              Mutex.lock t.shard_locks.(s);
              Fun.protect
                ~finally:(fun () -> Mutex.unlock t.shard_locks.(s))
                (fun () ->
                  List.iter
                    (fun pg ->
                      install_page t vnum pg;
                      t.shard_live.(s) <- t.shard_live.(s) + 1)
                    g))
    with e ->
      (* A worker raised mid-install: pages installed before the failure
         bumped their [shard_live], but the bulk [live] add below never
         runs.  Rebuild [live] as the sum of the per-shard counters —
         the invariant the serial path maintains page by page — so GC
         shard selection and the [live = 0] fast path stay sound. *)
      t.live <- Array.fold_left ( + ) 0 t.shard_live;
      raise e
  in
  if ran then t.live <- t.live + npages_committed;
  ran

let commit t ~committer ~pages =
  let vnum = current_version t + 1 in
  let idxs = Array.of_list (List.map fst pages) in
  t.gen <- t.gen + 1;
  Array.iter
    (fun i ->
      check_page t i;
      if t.seen_gen.(i) = t.gen then
        invalid_arg (Printf.sprintf "Segment %s: duplicate page %d in commit" t.name i);
      t.seen_gen.(i) <- t.gen)
    idxs;
  let npages_committed = Array.length idxs in
  let installed_parallel =
    t.nshards > 1
    && npages_committed >= parallel_install_threshold
    && install_sharded t vnum pages npages_committed
  in
  if not installed_parallel then
    List.iter
      (fun ((i, _) as pg) ->
        install_page t vnum pg;
        t.shard_live.(shard_of_page t i) <- t.shard_live.(shard_of_page t i) + 1;
        t.live <- t.live + 1)
      pages;
  Sim.Vec.push t.versions { committer; page_idxs = idxs };
  vnum

let committer_of t v =
  if v <= 0 || v > current_version t then
    invalid_arg (Printf.sprintf "Segment %s: no committer for version %d" t.name v);
  (Sim.Vec.get t.versions (v - 1)).committer

let fold_modified_since t ~since f acc =
  let upto = current_version t in
  let acc = ref acc in
  for v = since + 1 to upto do
    let entry = Sim.Vec.get t.versions (v - 1) in
    acc := f !acc entry
  done;
  !acc

let modified_since t ~since =
  t.gen <- t.gen + 1;
  let distinct =
    fold_modified_since t ~since
      (fun acc entry ->
        Array.fold_left
          (fun acc i ->
            if t.seen_gen.(i) = t.gen then acc
            else begin
              t.seen_gen.(i) <- t.gen;
              i :: acc
            end)
          acc entry.page_idxs)
      []
  in
  List.sort (fun (a : int) b -> compare a b) distinct

let modified_since_by_others t ~since ~tid =
  t.gen <- t.gen + 1;
  fold_modified_since t ~since
    (fun acc entry ->
      if entry.committer = tid then acc
      else
        Array.fold_left
          (fun acc i ->
            if t.seen_gen.(i) = t.gen then acc
            else begin
              t.seen_gen.(i) <- t.gen;
              acc + 1
            end)
          acc entry.page_idxs)
    0

let versions_created t = current_version t
let live_snapshots t = t.live

let touched_pages t =
  let n = ref 0 in
  for i = 0 to t.npages - 1 do
    if t.last_mod_arr.(i) > 0 then incr n
  done;
  !n

let gc_page t ~min_base i =
  (* Keep the newest snapshot at version <= min_base plus everything newer;
     drop the obsolete prefix.  Returns snapshots dropped. *)
  let h = t.histories.(i) in
  let k, a = hist_lookup h min_base in
  if k <= h.off then 0
  else begin
    let dropped = k - h.off in
    (* Release the dropped snapshots so the runtime GC can reclaim them. *)
    Array.fill a.ps h.off dropped t.zero;
    h.off <- k;
    Atomic.set h.len (Atomic.get h.len - dropped);
    t.live <- t.live - dropped;
    let s = shard_of_page t i in
    t.shard_live.(s) <- t.shard_live.(s) - dropped;
    dropped
  end

let gc t ~min_base ~budget =
  (* With no live snapshots a full sweep would scan every page and drop
     nothing; skip it.  Commit-heavy workloads hit this constantly when
     the collector keeps up. *)
  if t.live = 0 then 0
  else begin
  let reclaimed = ref 0 in
  let scanned = ref 0 in
  while !reclaimed < budget && !scanned < t.npages do
    let i = t.gc_cursor in
    t.gc_cursor <- (t.gc_cursor + 1) mod t.npages;
    reclaimed := !reclaimed + gc_page t ~min_base i;
    incr scanned
  done;
  !reclaimed
  end

(* One step of the incremental per-shard collector: scan at most
   [max_pages] pages of the next shard that still holds live snapshots,
   resuming where that shard's cursor left off.  Unlike {!gc}, the work
   bound is on pages *scanned*, not snapshots reclaimed — each step has a
   hard cost ceiling regardless of how much garbage it finds, which is
   what lets the runtime hide steps in commit slack. *)
let gc_step t ~min_base ~max_pages =
  if max_pages <= 0 || t.live = 0 then 0
  else begin
    let n = t.nshards in
    let s = ref t.gc_shard and tried = ref 0 in
    while !tried < n && t.shard_live.(!s) = 0 do
      s := (!s + 1) mod n;
      incr tried
    done;
    if !tried = n then 0
    else begin
      let shard = !s in
      t.gc_shard <- (shard + 1) mod n;
      let start = shard_start t shard in
      let span = shard_start t (shard + 1) - start in
      let reclaimed = ref 0 and scanned = ref 0 in
      let limit = min max_pages span in
      while !scanned < limit && t.shard_live.(shard) > 0 do
        let i = start + t.shard_cursor.(shard) in
        t.shard_cursor.(shard) <- (t.shard_cursor.(shard) + 1) mod span;
        reclaimed := !reclaimed + gc_page t ~min_base i;
        incr scanned
      done;
      !reclaimed
    end
  end

let hash t =
  let h = ref Sim.Fnv.init in
  for i = 0 to t.npages - 1 do
    h := Page.hash_into !h (hist_latest t.histories.(i) ~zero:t.zero)
  done;
  Sim.Fnv.to_hex !h

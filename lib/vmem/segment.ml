type version = int

type entry = { committer : int; page_idxs : int array }

(* Per-page snapshot history: versions ascending, live entries in
   [off, off+len).  Appends go at the end (commits create monotonically
   increasing versions); GC drops an obsolete prefix by advancing [off].
   Lookup of "newest snapshot at version <= v" is a binary search, with an
   O(1) fast path for the common latest-version read. *)
type hist = {
  mutable vs : int array;
  mutable ps : Page.t array;
  mutable off : int;
  mutable len : int;
}

type t = {
  name : string;
  page_size : int;
  npages : int;
  histories : hist array;
  last_mod_arr : int array;
  versions : entry Sim.Vec.t; (* index i holds version i+1 *)
  zero : Page.t;
  mutable live : int;
  mutable gc_cursor : int;
  (* Generation-stamped scratch for distinct-page window scans: page [i]
     was already counted in the current scan iff [seen_gen.(i) = gen].
     Replaces a per-call hashtable with zero allocation. *)
  seen_gen : int array;
  mutable gen : int;
}

let hist_create () = { vs = [||]; ps = [||]; off = 0; len = 0 }

let hist_append h ~zero v p =
  let cap = Array.length h.vs in
  if h.off + h.len = cap then begin
    if h.len * 2 <= cap && cap > 0 then begin
      (* Plenty of dead prefix: compact in place. *)
      Array.blit h.vs h.off h.vs 0 h.len;
      Array.blit h.ps h.off h.ps 0 h.len;
      Array.fill h.ps h.len (cap - h.len) zero
    end
    else begin
      let new_cap = max 4 (h.len * 2) in
      let vs = Array.make new_cap 0 and ps = Array.make new_cap zero in
      Array.blit h.vs h.off vs 0 h.len;
      Array.blit h.ps h.off ps 0 h.len;
      h.vs <- vs;
      h.ps <- ps
    end;
    h.off <- 0
  end;
  h.vs.(h.off + h.len) <- v;
  h.ps.(h.off + h.len) <- p;
  h.len <- h.len + 1

(* Index (into vs/ps) of the newest entry with version <= v, or -1. *)
let hist_find h v =
  if h.len = 0 || v < h.vs.(h.off) then -1
  else begin
    let last = h.off + h.len - 1 in
    if v >= h.vs.(last) then last
    else begin
      (* Invariant: vs.(lo) <= v < vs.(hi). *)
      let lo = ref h.off and hi = ref last in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if h.vs.(mid) <= v then lo := mid else hi := mid
      done;
      !lo
    end
  end

let hist_latest h ~zero = if h.len = 0 then zero else h.ps.(h.off + h.len - 1)

let create ?(name = "segment") ~pages ~page_size () =
  if pages <= 0 then invalid_arg "Segment.create: pages must be > 0";
  if page_size <= 0 then invalid_arg "Segment.create: page_size must be > 0";
  {
    name;
    page_size;
    npages = pages;
    histories = Array.init pages (fun _ -> hist_create ());
    last_mod_arr = Array.make pages 0;
    versions = Sim.Vec.create ();
    zero = Page.create ~size:page_size;
    live = 0;
    gc_cursor = 0;
    seen_gen = Array.make pages 0;
    gen = 0;
  }

let name t = t.name
let page_count t = t.npages
let page_size t = t.page_size
let current_version t = Sim.Vec.length t.versions

let check_page t i =
  if i < 0 || i >= t.npages then
    invalid_arg (Printf.sprintf "Segment %s: page %d out of bounds (%d pages)" t.name i t.npages)

let read_page t ~version i =
  check_page t i;
  let h = t.histories.(i) in
  let k = hist_find h version in
  if k < 0 then t.zero else h.ps.(k)

let last_mod t i =
  check_page t i;
  t.last_mod_arr.(i)

let commit t ~committer ~pages =
  let vnum = current_version t + 1 in
  let idxs = Array.of_list (List.map fst pages) in
  t.gen <- t.gen + 1;
  Array.iter
    (fun i ->
      check_page t i;
      if t.seen_gen.(i) = t.gen then
        invalid_arg (Printf.sprintf "Segment %s: duplicate page %d in commit" t.name i);
      t.seen_gen.(i) <- t.gen)
    idxs;
  List.iter
    (fun (i, page) ->
      if Bytes.length page <> t.page_size then
        invalid_arg (Printf.sprintf "Segment %s: bad page size in commit" t.name);
      hist_append t.histories.(i) ~zero:t.zero vnum page;
      t.last_mod_arr.(i) <- vnum;
      t.live <- t.live + 1)
    pages;
  Sim.Vec.push t.versions { committer; page_idxs = idxs };
  vnum

let committer_of t v =
  if v <= 0 || v > current_version t then
    invalid_arg (Printf.sprintf "Segment %s: no committer for version %d" t.name v);
  (Sim.Vec.get t.versions (v - 1)).committer

let fold_modified_since t ~since f acc =
  let upto = current_version t in
  let acc = ref acc in
  for v = since + 1 to upto do
    let entry = Sim.Vec.get t.versions (v - 1) in
    acc := f !acc entry
  done;
  !acc

let modified_since t ~since =
  t.gen <- t.gen + 1;
  let distinct =
    fold_modified_since t ~since
      (fun acc entry ->
        Array.fold_left
          (fun acc i ->
            if t.seen_gen.(i) = t.gen then acc
            else begin
              t.seen_gen.(i) <- t.gen;
              i :: acc
            end)
          acc entry.page_idxs)
      []
  in
  List.sort (fun (a : int) b -> compare a b) distinct

let modified_since_by_others t ~since ~tid =
  t.gen <- t.gen + 1;
  fold_modified_since t ~since
    (fun acc entry ->
      if entry.committer = tid then acc
      else
        Array.fold_left
          (fun acc i ->
            if t.seen_gen.(i) = t.gen then acc
            else begin
              t.seen_gen.(i) <- t.gen;
              acc + 1
            end)
          acc entry.page_idxs)
    0

let versions_created t = current_version t
let live_snapshots t = t.live

let touched_pages t =
  let n = ref 0 in
  for i = 0 to t.npages - 1 do
    if t.last_mod_arr.(i) > 0 then incr n
  done;
  !n

let gc_page t ~min_base i =
  (* Keep the newest snapshot at version <= min_base plus everything newer;
     drop the obsolete prefix.  Returns snapshots dropped. *)
  let h = t.histories.(i) in
  let k = hist_find h min_base in
  if k <= h.off then 0
  else begin
    let dropped = k - h.off in
    (* Release the dropped snapshots so the runtime GC can reclaim them. *)
    Array.fill h.ps h.off dropped t.zero;
    h.off <- k;
    h.len <- h.len - dropped;
    t.live <- t.live - dropped;
    dropped
  end

let gc t ~min_base ~budget =
  (* With no live snapshots a full sweep would scan every page and drop
     nothing; skip it.  Commit-heavy workloads hit this constantly when
     the collector keeps up. *)
  if t.live = 0 then 0
  else begin
  let reclaimed = ref 0 in
  let scanned = ref 0 in
  while !reclaimed < budget && !scanned < t.npages do
    let i = t.gc_cursor in
    t.gc_cursor <- (t.gc_cursor + 1) mod t.npages;
    reclaimed := !reclaimed + gc_page t ~min_base i;
    incr scanned
  done;
  !reclaimed
  end

let hash t =
  let h = ref Sim.Fnv.init in
  for i = 0 to t.npages - 1 do
    h := Page.hash_into !h (hist_latest t.histories.(i) ~zero:t.zero)
  done;
  Sim.Fnv.to_hex !h

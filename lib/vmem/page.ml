type t = Bytes.t

let create ~size = Bytes.make size '\000'
let copy = Bytes.copy
let equal = Bytes.equal

let check_lengths a b name =
  if Bytes.length a <> Bytes.length b then
    invalid_arg (Printf.sprintf "Page.%s: length mismatch (%d vs %d)" name (Bytes.length a) (Bytes.length b))

(* The scans below compare 8 bytes at a time and only fall back to
   byte-at-a-time inside a mismatching word.  Merges are sparse in
   practice (a thread touches a few bytes of a page), so the common case
   is a straight word-equality sweep.  The unchecked 64-bit load is safe:
   both loops only dereference offsets with [off + 8 <= length], which
   [check_lengths] has validated for every operand. *)
external unsafe_get_int64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let diff_count ~twin ~local =
  check_lengths twin local "diff_count";
  let len = Bytes.length twin in
  let words = len lsr 3 in
  let n = ref 0 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    if unsafe_get_int64 twin off <> unsafe_get_int64 local off then
      for i = off to off + 7 do
        if Bytes.unsafe_get twin i <> Bytes.unsafe_get local i then incr n
      done
  done;
  for i = words lsl 3 to len - 1 do
    if Bytes.unsafe_get twin i <> Bytes.unsafe_get local i then incr n
  done;
  !n

let merge_into ~twin ~local ~target =
  check_lengths twin local "merge_into";
  check_lengths twin target "merge_into";
  let len = Bytes.length twin in
  let words = len lsr 3 in
  let n = ref 0 in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    if unsafe_get_int64 twin off <> unsafe_get_int64 local off then
      for i = off to off + 7 do
        let b = Bytes.unsafe_get local i in
        if Bytes.unsafe_get twin i <> b then begin
          Bytes.unsafe_set target i b;
          incr n
        end
      done
  done;
  for i = words lsl 3 to len - 1 do
    let b = Bytes.unsafe_get local i in
    if Bytes.unsafe_get twin i <> b then begin
      Bytes.unsafe_set target i b;
      incr n
    end
  done;
  !n

let conflict_runs ~twin ~local ~target =
  check_lengths twin local "conflict_runs";
  check_lengths twin target "conflict_runs";
  let len = Bytes.length twin in
  let words = len lsr 3 in
  let runs = ref [] in
  (* [run_first] is the start of the open run, or -1 when no run is open.
     Bytes are visited in ascending order, so closing appends in order. *)
  let run_first = ref (-1) and run_last = ref (-1) in
  let close () =
    if !run_first >= 0 then begin
      runs := (!run_first, !run_last) :: !runs;
      run_first := -1
    end
  in
  let visit i =
    let t = Bytes.unsafe_get twin i in
    if Bytes.unsafe_get local i <> t && Bytes.unsafe_get target i <> t then
      if !run_first >= 0 && !run_last = i - 1 then run_last := i
      else begin
        close ();
        run_first := i;
        run_last := i
      end
  in
  for w = 0 to words - 1 do
    let off = w lsl 3 in
    let tw = unsafe_get_int64 twin off in
    if tw <> unsafe_get_int64 local off && tw <> unsafe_get_int64 target off then
      for i = off to off + 7 do
        visit i
      done
  done;
  for i = words lsl 3 to len - 1 do
    visit i
  done;
  close ();
  List.rev !runs

let hash_into h page = Sim.Fnv.bytes h page

(** Fixed-size memory pages and byte-granularity merging.

    A page is a mutable byte buffer.  Conversion (paper section 2.5,
    reference [23]) resolves page-level write conflicts by comparing a
    thread's dirty page against a {e twin} — the pristine copy taken when
    the thread first wrote the page in the current chunk — and applying
    only the bytes the thread actually changed onto the most recently
    committed copy.  This gives byte-granularity last-writer-wins
    semantics (paper section 2.4/2.5). *)

type t = Bytes.t

val create : size:int -> t
(** Zero-filled page. *)

val copy : t -> t

val equal : t -> t -> bool

val diff_count : twin:t -> local:t -> int
(** Number of bytes the local copy changed relative to its twin.
    Scans 8 bytes at a time, descending to byte granularity only inside
    mismatching words. *)

val merge_into : twin:t -> local:t -> target:t -> int
(** Apply the thread's modifications (bytes where [local] differs from
    [twin]) onto [target], in place.  Returns the number of bytes written.
    All three pages must have equal length.  This is the last-writer-wins
    byte merge: bytes the thread did not touch keep [target]'s (i.e. the
    latest committed) value.  Word-level scan as in {!diff_count}. *)

val conflict_runs : twin:t -> local:t -> target:t -> (int * int) list
(** Maximal runs of {e truly conflicting} bytes — positions where the
    thread changed the byte ([local] differs from [twin]) {e and} some
    concurrent committer also changed it ([target] differs from [twin]).
    These are exactly the bytes the last-writer-wins merge silently
    resolves in the thread's favour.  Returns [(first, last)] inclusive
    pairs, ascending and non-adjacent.  Must be called {e before}
    {!merge_into} mutates [target].  Word-level scan as in
    {!diff_count}. *)

val hash_into : Sim.Fnv.t -> t -> Sim.Fnv.t
(** Fold the page contents into a determinism-witness hash. *)

(** Versioned memory segment — the core of Conversion (paper ref [23]).

    A segment is an array of pages with a linear, totally ordered history
    of {e versions}.  Version 0 is the zero-filled initial state; each
    commit installs immutable snapshots of the pages it modified and
    becomes version [n+1].  A reader at version [v] sees, for every page,
    the newest snapshot with version [<= v] — this is what lets each
    thread operate on an isolated, consistent view while others commit.

    The total order of versions is exactly the total store order that
    makes the runtime TSO-consistent: all threads observe commits in
    version-number order (paper section 2.3–2.4).

    Snapshots are immutable by convention: neither the segment nor its
    callers ever mutate an installed page (workspaces copy on access). *)

type t

type version = int
(** Dense version numbers: 0 is initial, commits create 1, 2, ... *)

val create : ?name:string -> pages:int -> page_size:int -> unit -> t
val name : t -> string
val page_count : t -> int
val page_size : t -> int

val set_shards : t -> int -> unit
(** Split the segment into [n] contiguous page-range shards with
    independent live accounting, GC cursors and locks (clamped to the
    page count; raises for [n < 1]).  Sharding changes {e how} installs
    and collection are scheduled, never what is installed: version
    numbering, the commit log, reads and digests are identical at any
    shard count.  Segments start with 1 shard.  May be called at any
    time; per-shard accounting is recomputed from the histories. *)

val shards : t -> int
(** Current shard count (1 = unsharded). *)

val shard_of_page : t -> int -> int
(** Shard owning page [i]: [i * shards / pages] — contiguous ranges. *)

val current_version : t -> version
(** Newest committed version. *)

val read_page : t -> version:version -> int -> Page.t
(** [read_page t ~version i] is the snapshot of page [i] visible at
    [version].  The result must not be mutated.  O(log h) in the page's
    history depth [h], O(1) when [version] is the current version. *)

val last_mod : t -> int -> version
(** Version that last modified the page (0 if never written). *)

val read_bytes : t -> version:version -> addr:int -> len:int -> Bytes.t
(** Byte-addressed read of the committed image pinned at [version]:
    the result is assembled from, for every page the range touches, the
    newest snapshot with version [<= version].  Copy-free on the
    segment side — no workspace, no fault, no twin; the caller owns the
    returned buffer.  This is the substrate for snapshot (read-only)
    transactions: a reader that pins a version sees a consistent
    point-in-time image no matter what commits after the pin.

    GC safety: the pin must be [>= min_base] of any concurrent
    {!gc}/{!gc_step} call.  The collector keeps, per page, the newest
    snapshot at [<= min_base] plus everything newer, so any pinned
    version in [min_base, current] still resolves every page.  Runtime
    callers satisfy this by pinning at-or-above their own workspace
    base, which bounds [min_base] while the thread is live. *)

val commit : t -> committer:int -> pages:(int * Page.t) list -> version
(** Install the given page snapshots as a new version and return its
    number.  The segment takes ownership of the snapshot buffers.  Page
    indices must be distinct and in range.

    When the segment is sharded and the footprint is large and spans
    several shards, the installs fan out across the shared
    {!Sim.Par.pool} (one worker per shard, under the shard locks),
    falling back to the serial loop when the pool is busy.  Both paths
    produce byte-identical segment state. *)

val committer_of : t -> version -> int
(** Thread id recorded for a committed version.  Raises for version 0. *)

val modified_since : t -> since:version -> int list
(** Distinct pages modified by versions in [(since, current]], ascending. *)

val modified_since_by_others : t -> since:version -> tid:int -> int
(** Number of distinct pages modified in [(since, current]] by commits
    from threads other than [tid]; the inter-thread page-propagation
    metric of Fig 16. *)

val versions_created : t -> int

val touched_pages : t -> int
(** Pages ever written by any commit — the "populated page-table entries"
    a process fork must copy (paper section 3.3). *)

val live_snapshots : t -> int
(** Committed page snapshots currently retained (excludes the shared
    zero page).  This is the segment-side contribution to Fig 12's memory
    footprint; it grows until {!gc} reclaims obsolete snapshots. *)

val gc : t -> min_base:version -> budget:int -> int
(** Reclaim up to [budget] obsolete snapshots and return how many were
    reclaimed.  A snapshot of page [p] at version [v] is obsolete when a
    newer snapshot of [p] exists at some version [<= min_base], where
    [min_base] is the oldest version any live workspace still reads.
    The [budget] models Conversion's single-threaded garbage collector,
    which can be outpaced by allocation-heavy programs (paper section 5,
    Fig 12: canneal, lu_ncb). *)

val gc_step : t -> min_base:version -> max_pages:int -> int
(** One step of the incremental per-shard collector: scan at most
    [max_pages] pages of the next shard holding live snapshots (rotating
    over shards, each resuming at its own cursor) and return the
    snapshots reclaimed.  The bound is on pages {e scanned} — a hard
    per-step cost ceiling independent of how much garbage is found —
    which is what lets the runtime run steps in commit slack instead of
    a rate-limited background sweep.  Obsolescence is as in {!gc}. *)

val hash : t -> string
(** Hex digest of the full memory image at the current version; the
    determinism witness for final memory state. *)

module Ctl = Runtime.Tune_ctl
module J = Obs.Json

type t = {
  workload : string;
  runtime : string;
  nthreads : int;
  seed : int;
  source : string;
  params : Ctl.params;
  wall_default_ns : int;
  wall_tuned_ns : int;
}

let apply t cfg = Runtime.Config.with_adaptive_tuning ~params:t.params cfg

let filename t = t.workload ^ ".tune.json"

let to_json t =
  J.Obj
    [
      ("workload", J.String t.workload);
      ("runtime", J.String t.runtime);
      ("nthreads", J.Int t.nthreads);
      ("seed", J.Int t.seed);
      ("source", J.String t.source);
      ("params", Ctl.params_to_json t.params);
      ("wall_default_ns", J.Int t.wall_default_ns);
      ("wall_tuned_ns", J.Int t.wall_tuned_ns);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Option.bind (J.member k j) J.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "tune profile: missing string field %S" k)
  in
  let int k =
    match Option.bind (J.member k j) J.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "tune profile: missing int field %S" k)
  in
  let* workload = str "workload" in
  let* runtime = str "runtime" in
  let* nthreads = int "nthreads" in
  let* seed = int "seed" in
  let* source = str "source" in
  let* params =
    match J.member "params" j with
    | Some pj -> Ctl.params_of_json pj
    | None -> Error "tune profile: missing field \"params\""
  in
  let* wall_default_ns = int "wall_default_ns" in
  let* wall_tuned_ns = int "wall_tuned_ns" in
  Ok { workload; runtime; nthreads; seed; source; params; wall_default_ns; wall_tuned_ns }

let save t path = J.to_file path (to_json t)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | raw -> Result.bind (J.parse raw) of_json

let pp ppf t =
  Format.fprintf ppf
    "@[<v>tuned profile for %s (%s, %d threads, seed %d; source %s)@,%a@,wall: default %d ns -> tuned %d ns@]"
    t.workload t.runtime t.nthreads t.seed t.source Ctl.pp_params t.params t.wall_default_ns
    t.wall_tuned_ns

(** Per-workload tuned profiles: the auto-tuner's durable output.

    A profile pins the controller {!Runtime.Tune_ctl.params} the offline
    search selected for one workload, together with enough provenance
    (base runtime, thread count, seed, search source, before/after
    simulated wall time) to judge whether it still applies.  Profiles
    serialize to standalone JSON files (conventionally
    [tune/profiles/<workload>.tune.json]) and are loaded back by the CLI
    ([run --profile], [tune show]). *)

type t = {
  workload : string;
  runtime : string;  (** base config name the search tuned against *)
  nthreads : int;
  seed : int;
  source : string;  (** winning candidate, e.g. ["hill-climb"], ["hand-default"] *)
  params : Runtime.Tune_ctl.params;
  wall_default_ns : int;  (** untuned simulated wall time at search time *)
  wall_tuned_ns : int;  (** tuned simulated wall time at search time *)
}

val apply : t -> Runtime.Config.t -> Runtime.Config.t
(** {!Runtime.Config.with_adaptive_tuning} with the profile's params. *)

val filename : t -> string
(** Conventional basename: [<workload>.tune.json]. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val pp : Format.formatter -> t -> unit

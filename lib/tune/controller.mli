(** Online-half helpers for the self-tuning controller: the predicted
    decision schedule, its extraction from a recorded event stream, and
    the profile-to-params mapping.

    The controller kernel ({!Runtime.Tune_ctl}) is pure, so its whole
    behaviour over a run is a finite, precomputable list: one decision
    per epoch at retired-instruction milestone [epoch * period].  Every
    thread applies that same schedule; a thread only falls short of the
    full list when it retires fewer instructions than the last
    milestone.  That gives the cross-runtime determinism property its
    testable shape: each thread's recorded {!Runtime.Rt_event.Tune_decision}
    stream must be a {e prefix} of the prediction, identically on all
    five runtimes and all seeds. *)

type applied = {
  epoch : int;
  ic : int;  (** retired-instruction count at which the decision applied *)
  decision : Runtime.Tune_ctl.decision;
}

val predicted : Runtime.Tune_ctl.params -> applied list
(** The full decision schedule, epochs [0 .. final_epoch], with exact
    milestone instruction counts. *)

val of_events : Runtime.Rt_event.t list -> (int * applied list) list
(** Per-thread decision streams extracted from a recorded event stream,
    ascending tid, each in emission order. *)

val matches_prediction : Runtime.Tune_ctl.params -> Runtime.Rt_event.t list -> bool
(** Every per-thread stream is a prefix of {!predicted} and every
    decision applied at its exact milestone — the replay/determinism
    acceptance check. *)

val params_of_profile : Prof.Profile.t -> Runtime.Tune_ctl.params
(** Derive controller targets from a profiler state-share summary
    (via {!Prof.Profile.state_share}, the single shared accessor):
    token-wait-heavy workloads get smaller chunks and shorter coarsened
    holds, commit-heavy workloads a larger coarsening budget,
    overflow-heavy (compute-bound) workloads larger chunks.  Pure
    arithmetic on deterministic inputs; the result always passes
    {!Runtime.Tune_ctl.validate}. *)

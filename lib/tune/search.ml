module Ctl = Runtime.Tune_ctl
module Cfg = Runtime.Config

type t = {
  workload : string;
  base_runtime : string;
  nthreads : int;
  seed : int;
  wall_default_ns : int;
  wall_controller_ns : int;
  wall_profile_ns : int;
  hand_best_name : string;
  wall_hand_best_ns : int;
  wall_searched_ns : int;
  searched : Ctl.params;
  searched_from : string;
  evaluations : int;
  boundary_floor_ns : int option;
  seed_stable : bool;
  replay_checked : bool;
  replay_ok : bool;
}

(* A static grid point: epochs = 0, warm = target, so the controller
   degenerates to the fixed configuration (zero milestone overhead; the
   epoch-0 retarget at thread creation equals policy creation).  The
   hand-default point below therefore ties the untuned config
   bit-for-bit, which is what guarantees searched <= hand-best <=
   default by construction. *)
let fixed ~base ~cap ~coarsen ~floor ~ccap =
  {
    Ctl.period = Ctl.default.Ctl.period;
    epochs = 0;
    warm_base = base;
    warm_cap = cap;
    warm_coarsen = coarsen;
    target_base = base;
    target_cap = cap;
    target_coarsen = coarsen;
    coarsen_floor = floor;
    coarsen_cap = ccap;
  }

(* The grid a practitioner would sweep by hand: the shipped defaults
   plus chunk-size and coarsening extremes in both directions. *)
let hand_grid =
  [
    ("hand-default", fixed ~base:5_000 ~cap:60_000 ~coarsen:300_000 ~floor:10_000 ~ccap:2_000_000);
    ("hand-small-chunk", fixed ~base:2_000 ~cap:24_000 ~coarsen:150_000 ~floor:10_000 ~ccap:2_000_000);
    ("hand-big-chunk", fixed ~base:12_000 ~cap:144_000 ~coarsen:300_000 ~floor:10_000 ~ccap:2_000_000);
    ("hand-huge-chunk", fixed ~base:30_000 ~cap:240_000 ~coarsen:300_000 ~floor:10_000 ~ccap:2_000_000);
    ("hand-coarse", fixed ~base:5_000 ~cap:60_000 ~coarsen:800_000 ~floor:10_000 ~ccap:4_000_000);
    ("hand-fine", fixed ~base:5_000 ~cap:60_000 ~coarsen:100_000 ~floor:10_000 ~ccap:500_000);
  ]

let clamp lo hi v = max lo (min hi v)

(* One PRNG-driven knob mutation: double or halve one of the six value
   knobs (or step the epoch count), then re-establish the cap/base and
   warm/target orderings so the result always validates. *)
let mutate prng (p : Ctl.params) =
  let up = Sim.Prng.bool prng in
  let scale v = if up then v * 2 else max 1 (v / 2) in
  let p =
    match Sim.Prng.int prng ~bound:7 with
    | 0 -> { p with Ctl.target_base = clamp 500 200_000 (scale p.Ctl.target_base) }
    | 1 -> { p with Ctl.target_cap = clamp 2_000 2_000_000 (scale p.Ctl.target_cap) }
    | 2 -> { p with Ctl.target_coarsen = clamp 20_000 4_000_000 (scale p.Ctl.target_coarsen) }
    | 3 -> { p with Ctl.warm_base = clamp 500 200_000 (scale p.Ctl.warm_base) }
    | 4 -> { p with Ctl.warm_coarsen = clamp 20_000 4_000_000 (scale p.Ctl.warm_coarsen) }
    | 5 -> { p with Ctl.period = clamp 1_000 50_000 (scale p.Ctl.period) }
    | _ -> { p with Ctl.epochs = clamp 0 12 (if up then p.Ctl.epochs + 2 else p.Ctl.epochs - 2) }
  in
  let p = { p with Ctl.target_cap = max p.Ctl.target_cap p.Ctl.target_base } in
  let p = { p with Ctl.warm_cap = max p.Ctl.warm_cap p.Ctl.warm_base } in
  let p =
    { p with Ctl.coarsen_floor = min p.Ctl.coarsen_floor p.Ctl.target_coarsen }
  in
  let p =
    { p with Ctl.coarsen_cap = max p.Ctl.coarsen_cap (max p.Ctl.target_coarsen p.Ctl.warm_coarsen) }
  in
  Ctl.validate p;
  p

(* A random restart point: independent draws per knob, log-uniform-ish
   over the plausible ranges via repeated doubling from the minimum. *)
let random_params prng =
  let pick lo hi =
    let v = ref lo in
    while !v * 2 <= hi && Sim.Prng.bool prng do
      v := !v * 2
    done;
    !v
  in
  let target_base = pick 1_000 128_000 in
  let target_cap = max target_base (pick 8_000 1_024_000) in
  let target_coarsen = pick 50_000 3_200_000 in
  let p =
    {
      Ctl.period = pick 2_000 32_000;
      epochs = Sim.Prng.int prng ~bound:9;
      warm_base = min 2_000 target_base;
      warm_cap = max (min 2_000 target_base) (min 16_000 target_cap);
      warm_coarsen = min 50_000 target_coarsen;
      target_base;
      target_cap;
      target_coarsen;
      coarsen_floor = min 10_000 target_coarsen;
      coarsen_cap = max 2_000_000 target_coarsen;
    }
  in
  Ctl.validate p;
  p

let search ?(cfg = Cfg.consequence_ic) ?costs ?(nthreads = 8) ?(seed = 1) ?(quick = false)
    ?(check = true) name =
  let entry = Workload.Registry.find name in
  let program = entry.Workload.Registry.program in
  let base = Cfg.without_adaptive_tuning cfg in
  let evaluations = ref 0 in
  let memo : (Ctl.params, int) Hashtbl.t = Hashtbl.create 64 in
  let wall_of cfg' =
    let res = Runtime.Run.run (Runtime.Run.Det cfg') ?costs ~seed ~nthreads program in
    incr evaluations;
    res.Stats.Run_result.wall_ns
  in
  let eval params =
    match Hashtbl.find_opt memo params with
    | Some w -> w
    | None ->
        let w = wall_of (Cfg.with_adaptive_tuning ~params base) in
        Hashtbl.add memo params w;
        w
  in
  let wall_default_ns = wall_of base in
  (* The shipped annealing schedule, straight from Tune_ctl.default. *)
  let wall_controller_ns = eval Ctl.default in
  (* Profile-derived candidate: one collector run on the untuned config,
     mapped through the shared state-share accessor. *)
  let profile_params =
    let c = Prof.Profile.create () in
    let res =
      Runtime.Run.run (Runtime.Run.Det base) ?costs ~seed ~nthreads
        ~obs:(Prof.Profile.sink c) program
    in
    incr evaluations;
    Controller.params_of_profile
      (Prof.Profile.finish c ~wall_ns:res.Stats.Run_result.wall_ns)
  in
  let wall_profile_ns = eval profile_params in
  (* Hand grid. *)
  let graded = List.map (fun (n, p) -> (n, p, eval p)) hand_grid in
  let hand_best_name, _, wall_hand_best_ns =
    List.fold_left (fun (bn, bp, bw) (n, p, w) -> if w < bw then (n, p, w) else (bn, bp, bw))
      (List.hd graded) (List.tl graded)
  in
  (* Hill-climb from the best candidate so far, with seeded random
     restarts: accept a mutation iff it strictly improves. *)
  let best = ref (List.fold_left
    (fun acc (n, p, w) -> match acc with (_, _, bw) when bw <= w -> acc | _ -> (n, p, w))
    ("controller-default", Ctl.default, wall_controller_ns)
    (("profile-derived", profile_params, wall_profile_ns) :: graded))
  in
  let prng = Sim.Prng.create ~seed:(seed + 97) in
  let climb ~label ~iters start start_w =
    let cur = ref start and cur_w = ref start_w in
    for _ = 1 to iters do
      let cand = mutate prng !cur in
      let w = eval cand in
      if w < !cur_w then begin
        cur := cand;
        cur_w := w
      end;
      let _, _, bw = !best in
      if !cur_w < bw then best := (label, !cur, !cur_w)
    done
  in
  let iters = if quick then 6 else 14 in
  let _, start_p, start_w = !best in
  climb ~label:"hill-climb" ~iters start_p start_w;
  if not quick then
    for r = 1 to 2 do
      let start = random_params prng in
      climb ~label:(Printf.sprintf "restart-%d" r) ~iters:8 start (eval start)
    done;
  let searched_from, searched, wall_searched_ns = !best in
  let tuned = Cfg.with_adaptive_tuning ~params:searched base in
  (* Winner checks: cross-seed witness stability, scripted replay with
     the controller's decisions re-checked event-by-event, and the
     boundary-perturbation floor (how much of the win placement alone
     could have bought). *)
  let seed_stable, replay_checked, replay_ok, boundary_floor_ns =
    if not check then (true, false, false, None)
    else begin
      let witness_at seed =
        let res = Runtime.Run.run (Runtime.Run.Det tuned) ?costs ~seed ~nthreads program in
        Stats.Run_result.deterministic_witness res
      in
      let seed_stable = String.equal (witness_at 1) (witness_at 7) in
      let log, _ = Replay.Schedule.record (Runtime.Run.Det tuned) ?costs ~seed ~nthreads program in
      let scripted =
        Cfg.with_scripted_schedule tuned ~boundaries:(Replay.Schedule.boundaries log)
      in
      let outcome =
        Replay.Replayer.replay ?costs ~runtime:(Runtime.Run.Det scripted) log program
      in
      let decisions_ok =
        Controller.matches_prediction searched (Array.to_list log.Replay.Schedule.events)
      in
      let floor =
        if quick then None
        else
          let rep = Replay.Explore.explore ?costs ~config:tuned ~variants:6 log program in
          Some
            (List.fold_left
               (fun acc v -> min acc v.Replay.Explore.wall_ns)
               rep.Replay.Explore.base.Replay.Explore.wall_ns rep.Replay.Explore.variants)
      in
      (seed_stable, true, Replay.Replayer.ok outcome && decisions_ok, floor)
    end
  in
  {
    workload = name;
    base_runtime = base.Cfg.name;
    nthreads;
    seed;
    wall_default_ns;
    wall_controller_ns;
    wall_profile_ns;
    hand_best_name;
    wall_hand_best_ns;
    wall_searched_ns;
    searched;
    searched_from;
    evaluations = !evaluations;
    boundary_floor_ns;
    seed_stable;
    replay_checked;
    replay_ok;
  }

let to_profile r =
  {
    Profiles.workload = r.workload;
    runtime = r.base_runtime;
    nthreads = r.nthreads;
    seed = r.seed;
    source = r.searched_from;
    params = r.searched;
    wall_default_ns = r.wall_default_ns;
    wall_tuned_ns = r.wall_searched_ns;
  }

let pp ppf r =
  let sp w = 100.0 *. (1.0 -. (float_of_int w /. float_of_int r.wall_default_ns)) in
  Format.fprintf ppf
    "@[<v>%s (%s, %d threads, seed %d): %d evaluations@,\
     default    %12d ns@,\
     controller %12d ns (%+.1f%%)@,\
     profile    %12d ns (%+.1f%%)@,\
     hand-best  %12d ns (%+.1f%%, %s)@,\
     searched   %12d ns (%+.1f%%, from %s)@,\
     %a@,\
     seed-stable %b; replay %s@]"
    r.workload r.base_runtime r.nthreads r.seed r.evaluations r.wall_default_ns
    r.wall_controller_ns (sp r.wall_controller_ns) r.wall_profile_ns (sp r.wall_profile_ns)
    r.wall_hand_best_ns (sp r.wall_hand_best_ns) r.hand_best_name r.wall_searched_ns
    (sp r.wall_searched_ns) r.searched_from Ctl.pp_params r.searched r.seed_stable
    (if not r.replay_checked then "unchecked" else if r.replay_ok then "ok" else "DIVERGED")

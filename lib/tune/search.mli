(** Offline replay-driven auto-tuner (the subsystem's search half).

    For one registry workload, evaluate controller parameterizations by
    their {e simulated} wall time — runs on the DES runtimes are pure
    functions of (program, config, seed), so every evaluation is exact
    and repeatable — and select the best of:

    - the untuned default (the identity point);
    - a hand grid of static configurations (epochs = 0 degenerate
      controller, bit-identical to setting the knobs in {!Runtime.Config});
    - the shipped annealing schedule ({!Runtime.Tune_ctl.default});
    - a profile-derived candidate ({!Controller.params_of_profile} over
      one collector run);
    - seeded hill-climbing with random restarts over the knob space.

    The hand grid is a subset of the candidate set and its default point
    ties the untuned config exactly, so [wall_searched_ns <=
    wall_hand_best_ns <= wall_default_ns] holds by construction.

    The winner is then cross-checked: witness stability across seeds,
    a scripted record/replay with the controller's
    {!Runtime.Rt_event.Tune_decision} events re-verified against the
    pure prediction, and (full mode) a boundary-perturbation floor from
    {!Replay.Explore} showing how much of the win chunk placement alone
    could account for. *)

type t = {
  workload : string;
  base_runtime : string;  (** untuned config name the search ran against *)
  nthreads : int;
  seed : int;
  wall_default_ns : int;
  wall_controller_ns : int;  (** shipped {!Runtime.Tune_ctl.default} schedule *)
  wall_profile_ns : int;  (** profile-derived candidate *)
  hand_best_name : string;
  wall_hand_best_ns : int;
  wall_searched_ns : int;
  searched : Runtime.Tune_ctl.params;  (** the winning parameterization *)
  searched_from : string;  (** candidate family the winner came from *)
  evaluations : int;  (** simulated runs performed (memoized by params) *)
  boundary_floor_ns : int option;
      (** min wall over an {!Replay.Explore} neighborhood of the winner;
          [None] in quick mode or with checks disabled *)
  seed_stable : bool;  (** winner's witness identical at seeds 1 and 7 *)
  replay_checked : bool;
  replay_ok : bool;
      (** scripted replay matched event-by-event and every
          [Tune_decision] matched the pure prediction *)
}

val hand_grid : (string * Runtime.Tune_ctl.params) list
(** The named static grid; its ["hand-default"] point reproduces the
    untuned configuration bit-for-bit. *)

val search :
  ?cfg:Runtime.Config.t ->
  ?costs:Runtime.Cost_model.t ->
  ?nthreads:int ->
  ?seed:int ->
  ?quick:bool ->
  ?check:bool ->
  string ->
  t
(** [search name] tunes registry workload [name] against [cfg] (default
    {!Runtime.Config.consequence_ic}; a ["-tuned"] config is stripped
    first), [nthreads] (default 8), [seed] (default 1).  [quick]
    (default false) shortens the hill-climb, drops the random restarts
    and skips the exploration floor — the CI smoke setting.  [check]
    (default true) controls the winner cross-checks.
    Raises [Not_found] for an unknown workload. *)

val to_profile : t -> Profiles.t
(** The durable artifact for [tune/profiles/]. *)

val pp : Format.formatter -> t -> unit

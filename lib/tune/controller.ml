module Ctl = Runtime.Tune_ctl
module St = Obs.Thread_state

type applied = { epoch : int; ic : int; decision : Ctl.decision }

let predicted (p : Ctl.params) =
  List.init
    (Ctl.final_epoch p + 1)
    (fun epoch -> { epoch; ic = Ctl.milestone p ~epoch; decision = Ctl.decide p ~epoch })

let of_events events =
  let by_tid : (int, applied list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Runtime.Rt_event.Tune_decision
          { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap } ->
          let a =
            {
              epoch;
              ic;
              decision =
                { Ctl.chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap };
            }
          in
          (match Hashtbl.find_opt by_tid tid with
          | Some r -> r := a :: !r
          | None -> Hashtbl.add by_tid tid (ref [ a ]))
      | _ -> ())
    events;
  Hashtbl.fold (fun tid r acc -> (tid, List.rev !r) :: acc) by_tid []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let is_prefix ~of_:full prefix =
  let rec go = function
    | [], _ -> true
    | _ :: _, [] -> false
    | a :: pr, b :: fr -> a = b && go (pr, fr)
  in
  go (prefix, full)

let matches_prediction (p : Ctl.params) events =
  let pred = predicted p in
  List.for_all (fun (_tid, stream) -> is_prefix ~of_:pred stream) (of_events events)

(* ------------------------------------------------------------------ *)
(* Profile-driven parameter derivation                                 *)
(* ------------------------------------------------------------------ *)

(* Map a profiler state-share summary to controller targets.  Reads the
   one shared accessor (Prof.Profile.state_shares) so the numbers cannot
   drift from the report's.  The heuristics mirror the paper's cost
   trade-offs:
   - heavy token waiting => waiters are starved for clock publications:
     shrink the overflow base/cap so notification latency drops, and
     shorten coarsened holds so the token circulates;
   - heavy commit cost => commits dominate: raise the coarsening budget
     so more sync ops coalesce into one commit;
   - heavy overflow/interrupt overhead => chunks are compute-dominated:
     grow the overflow intervals.
   All pure float arithmetic on deterministic inputs. *)
let params_of_profile (p : Prof.Profile.t) : Ctl.params =
  let share st = Prof.Profile.state_share p st in
  let token_w = share St.Token_wait in
  let commit_w = share St.Commit +. share St.Commit_pipe in
  let overflow_w = share St.Overflow in
  let d = Ctl.default in
  let scale v f lo hi = max lo (min hi (int_of_float (float_of_int v *. f))) in
  (* Overflow interval targets. *)
  let chunk_f =
    if token_w > 0.25 then 0.4
    else if token_w > 0.10 then 0.7
    else if overflow_w > 0.05 then 2.5
    else if overflow_w > 0.02 then 1.5
    else 1.0
  in
  let target_base = scale d.Ctl.target_base chunk_f 500 100_000 in
  let target_cap = max target_base (scale d.Ctl.target_cap chunk_f 2_000 1_000_000) in
  (* Coarsening budget target. *)
  let coarsen_f =
    if token_w > 0.25 then 0.35
    else if commit_w > 0.20 then 2.5
    else if commit_w > 0.10 then 1.5
    else 1.0
  in
  let target_coarsen = scale d.Ctl.target_coarsen coarsen_f 20_000 4_000_000 in
  let coarsen_floor = min d.Ctl.coarsen_floor target_coarsen in
  let coarsen_cap = max target_coarsen d.Ctl.coarsen_cap in
  {
    d with
    Ctl.target_base;
    target_cap;
    target_coarsen;
    coarsen_floor;
    coarsen_cap;
    (* Warm up from the conservative defaults toward the derived
       targets over the standard horizon. *)
    warm_base = min d.Ctl.warm_base target_base;
    warm_cap = min d.Ctl.warm_cap target_cap;
    warm_coarsen = min d.Ctl.warm_coarsen target_coarsen;
  }

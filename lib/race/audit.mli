(** One-call race audit of a workload under any runtime.

    Attaches a {!Detector} as the runtime's event observer, runs the
    program, and condenses the verdicts into a {!Report}.  The run
    itself is unchanged by the audit (observation is determinism- and
    timing-neutral in every runtime). *)

val run :
  ?mode:Detector.mode ->
  ?costs:Runtime.Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  Runtime.Run.runtime ->
  Api.t ->
  Report.t * Stats.Run_result.t
(** Audit one run; returns the report and the ordinary run result. *)

val stable_across_seeds :
  ?mode:Detector.mode -> ?nthreads:int -> seeds:int list -> Runtime.Run.runtime -> Api.t -> bool
(** Whether {!Report.to_string} is byte-identical over all [seeds] —
    true for every workload under every deterministic runtime, and
    generally false under pthreads for racy workloads. *)

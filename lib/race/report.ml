type t = {
  workload : string;
  runtime : string;
  nthreads : int;
  events : int;
  conflicts : int;
  racy : int;
  sync_ordered : int;
  conflict_bytes : int;
  racy_bytes : int;
  racy_pages : (int * int) list;
  samples : string list;
  sample_events : Runtime.Rt_event.t list;
}

let max_samples = 5

let of_detector ~workload ~runtime ~nthreads det =
  let findings = Detector.findings det in
  let racy_findings =
    List.filter (fun f -> f.Detector.verdict = Detector.Racy) findings
  in
  let page_counts = Hashtbl.create 16 in
  List.iter
    (fun f ->
      match f.Detector.event with
      | Runtime.Rt_event.Conflict { page; _ } ->
          Hashtbl.replace page_counts page
            (1 + Option.value ~default:0 (Hashtbl.find_opt page_counts page))
      | _ -> ())
    racy_findings;
  let racy_pages =
    Hashtbl.fold (fun p n acc -> (p, n) :: acc) page_counts []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  in
  let sampled = List.filteri (fun i _ -> i < max_samples) racy_findings in
  let samples =
    sampled
    |> List.map (fun f ->
           let via =
             match f.Detector.via with None -> "" | Some o -> " last-acq:" ^ o
           in
           Format.asprintf "%a clock:%a%s" Runtime.Rt_event.pp f.Detector.event
             Hb.Vector_clock.pp f.Detector.winner_clock via)
  in
  {
    workload;
    runtime;
    nthreads;
    events = Detector.events det;
    conflicts = Detector.conflicts det;
    racy = Detector.racy det;
    sync_ordered = Detector.sync_ordered det;
    conflict_bytes = Detector.conflict_bytes det;
    racy_bytes = Detector.racy_bytes det;
    racy_pages;
    samples;
    sample_events = List.map (fun f -> f.Detector.event) sampled;
  }

let to_json r : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("workload", String r.workload);
      ("runtime", String r.runtime);
      ("nthreads", Int r.nthreads);
      ("events", Int r.events);
      ("conflicts", Int r.conflicts);
      ("racy", Int r.racy);
      ("sync_ordered", Int r.sync_ordered);
      ("conflict_bytes", Int r.conflict_bytes);
      ("racy_bytes", Int r.racy_bytes);
      ( "racy_pages",
        List
          (List.map (fun (p, n) -> Obj [ ("page", Int p); ("count", Int n) ]) r.racy_pages) );
      ("samples", List (List.map (fun s -> String s) r.samples));
      ("sample_events", List (List.map Runtime.Rt_event.to_json r.sample_events));
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>%s on %s (%d threads): %d conflicts (%d racy, %d sync-ordered)"
    r.workload r.runtime r.nthreads r.conflicts r.racy r.sync_ordered;
  Format.fprintf ppf "@,  bytes: %d conflicting, %d racy" r.conflict_bytes r.racy_bytes;
  if r.racy_pages <> [] then begin
    Format.fprintf ppf "@,  racy pages:";
    List.iter (fun (p, n) -> Format.fprintf ppf " p%d(%d)" p n) r.racy_pages
  end;
  List.iter (fun s -> Format.fprintf ppf "@,  race: %s" s) r.samples;
  Format.fprintf ppf "@]"

let to_string r = Format.asprintf "%a" pp r

(** FastTrack-style happens-before classification of merge conflicts.

    The detector replays a runtime's event stream ({!Runtime.Rt_event})
    with vector clocks: [Release]/[Acquire] edges build the
    happens-before relation, and every [Conflict] event — a byte run the
    last-writer-wins merge silently resolved (paper section 2.5),
    stamped by the runtime with the loser's release epoch at the start
    of the chunk that wrote it — is classified as

    - {e sync-ordered}: some chain of synchronization edges orders the
      loser's chunk before the winner's, so the merge outcome is forced
      and every schedule produces it; or
    - {e racy}: the two writers' chunks are concurrent, so the bytes'
      final value is an accident of commit order — a genuine data race
      that determinism is papering over.

    Under a deterministic runtime the event stream is seed-invariant,
    so the verdict sequence (and any report built from it) is too: race
    reports are reproducible artifacts, the payoff Deterministic
    Consistency and Pot argue for.

    {2 Epoch optimization}

    A conflict stamped with loser epoch [e] is ordered iff the winner
    has (transitively) acquired the loser's [e]-th release or a later
    one.  [Epoch] mode decides that with a single component comparison
    against the winner's clock, FastTrack's O(1) same-epoch trick.
    [Full_vector] mode keeps every clock each thread has ever published
    and scans the loser's release history pointwise with [leq] — the
    naive oracle.  The two are provably equivalent (a thread's clock is
    monotone, and another thread's component only enters a clock via
    joins against that thread's released clocks); the qcheck suite
    checks they agree on random streams. *)

type mode = Epoch | Full_vector

type verdict = Racy | Sync_ordered

type finding = {
  event : Runtime.Rt_event.t;  (** the [Conflict] event, verbatim *)
  verdict : verdict;
  winner_clock : Hb.Vector_clock.t;
      (** the winner's chunk clock when the conflict was classified *)
  via : string option;
      (** the last object the winner acquired, as a hint to which
          synchronization (if any) ordered the chunks *)
}

type t

val create : ?mode:mode -> unit -> t
(** Fresh detector; [mode] defaults to [Epoch]. *)

val mode : t -> mode

val observer : t -> Runtime.Rt_event.t -> unit
(** Feed one event.  Pass this as the [?observer] of {!Runtime.Run.run}. *)

val findings : t -> finding list
(** All classified conflicts, in stream order. *)

val events : t -> int
(** Total events consumed (all constructors). *)

val conflicts : t -> int
val racy : t -> int
val sync_ordered : t -> int

val conflict_bytes : t -> int
(** Total bytes across all conflict runs. *)

val racy_bytes : t -> int

val metrics : t -> Obs.Metrics.snapshot
(** Detector-owned registry: [race:racy] / [race:sync_ordered] /
    [race:events] counters and a [race:conflict_bytes] histogram. *)

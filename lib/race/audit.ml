let run ?mode ?costs ?seed ?nthreads rt (program : Api.t) =
  let det = Detector.create ?mode () in
  let result = Runtime.Run.run rt ?costs ?seed ?nthreads ~observer:(Detector.observer det) program in
  let report =
    Report.of_detector ~workload:program.Api.name ~runtime:(Runtime.Run.name rt)
      ~nthreads:result.Stats.Run_result.nthreads det
  in
  (report, result)

let stable_across_seeds ?mode ?nthreads ~seeds rt program =
  let renderings =
    List.map (fun seed -> Report.to_string (fst (run ?mode ~seed ?nthreads rt program))) seeds
  in
  match renderings with [] -> true | first :: rest -> List.for_all (String.equal first) rest

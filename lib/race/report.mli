(** Per-run race-audit summaries.

    A report condenses one audited run into value-deterministic data:
    conflict totals, the racy/sync-ordered split, a per-page breakdown
    of racy conflicts, and a capped list of sample findings rendered
    with {!Runtime.Rt_event.pp}.  Everything derives from the event
    stream in stream order — no hash-table iteration, no wall-clock —
    so under a deterministic runtime [to_string] and [to_json] are
    byte-identical across seeds. *)

type t = {
  workload : string;
  runtime : string;
  nthreads : int;
  events : int;  (** events the detector consumed *)
  conflicts : int;  (** conflict runs reported by the runtime *)
  racy : int;
  sync_ordered : int;
  conflict_bytes : int;
  racy_bytes : int;
  racy_pages : (int * int) list;  (** page -> racy conflict count, ascending *)
  samples : string list;  (** first few racy findings, human-rendered *)
  sample_events : Runtime.Rt_event.t list;
      (** the same findings' [Conflict] events verbatim — exported
          structured in {!to_json} via {!Runtime.Rt_event.to_json} *)
}

val max_samples : int

val of_detector : workload:string -> runtime:string -> nthreads:int -> Detector.t -> t

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** [pp] rendered to a string — the unit of the byte-identical
    determinism guarantee. *)

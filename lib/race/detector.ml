module Vc = Hb.Vector_clock
module Ev = Runtime.Rt_event

type mode = Epoch | Full_vector

type verdict = Racy | Sync_ordered

type finding = {
  event : Ev.t;
  verdict : verdict;
  winner_clock : Vc.t;
  via : string option;
}

type t = {
  dmode : mode;
  thread_vc : (int, Vc.t) Hashtbl.t;
  obj_vc : (string, Vc.t) Hashtbl.t;
  (* Full_vector only: (tid, k) -> the clock thread [tid] published at
     its k-th Release.  The k-th published clock has own component k, so
     the Epoch verdict below is a single-lookup shortcut over this
     history. *)
  released : (int * int, Vc.t) Hashtbl.t;
  released_count : (int, int) Hashtbl.t;
  last_acq : (int, string) Hashtbl.t;
  mutable findings_rev : finding list;
  mutable n_events : int;
  mutable n_racy : int;
  mutable n_sync : int;
  mutable bytes_all : int;
  mutable bytes_racy : int;
  reg : Obs.Metrics.t;
  m_racy : Obs.Metrics.counter;
  m_sync : Obs.Metrics.counter;
  m_events : Obs.Metrics.counter;
  m_bytes : Obs.Metrics.histogram;
}

let create ?(mode = Epoch) () =
  let reg = Obs.Metrics.create () in
  {
    dmode = mode;
    thread_vc = Hashtbl.create 16;
    obj_vc = Hashtbl.create 64;
    released = Hashtbl.create 256;
    released_count = Hashtbl.create 16;
    last_acq = Hashtbl.create 16;
    findings_rev = [];
    n_events = 0;
    n_racy = 0;
    n_sync = 0;
    bytes_all = 0;
    bytes_racy = 0;
    reg;
    m_racy = Obs.Metrics.counter reg "race:racy";
    m_sync = Obs.Metrics.counter reg "race:sync_ordered";
    m_events = Obs.Metrics.counter reg "race:events";
    m_bytes = Obs.Metrics.histogram reg "race:conflict_bytes";
  }

let mode t = t.dmode

(* A thread's clock starts with its own component at 1: its first
   Release publishes epoch 1 before bumping to 2, matching the
   release-epochs runtimes stamp conflict losers with. *)
let initial_vc tid = Vc.set Vc.empty tid 1

let thread_vc t tid =
  match Hashtbl.find_opt t.thread_vc tid with Some vc -> vc | None -> initial_vc tid

let obj_vc t obj =
  match Hashtbl.find_opt t.obj_vc obj with Some vc -> vc | None -> Vc.empty

let released_count t tid =
  match Hashtbl.find_opt t.released_count tid with Some n -> n | None -> 0

let observer t ev =
  match ev with
  | Ev.Boundary _ | Ev.Commit_hash _ | Ev.Txn_abort _ | Ev.Tune_decision _ ->
      (* Scheduling/replay bookkeeping, not happens-before edges: keep
         the detector's event accounting identical to pre-replay runs. *)
      ()
  | Ev.Release _ | Ev.Acquire _ | Ev.Commit _ | Ev.Conflict _ -> (
  t.n_events <- t.n_events + 1;
  Obs.Metrics.count t.m_events 1;
  match ev with
  | Ev.Boundary _ | Ev.Commit_hash _ | Ev.Txn_abort _ | Ev.Tune_decision _ -> ()
  | Ev.Release { tid; obj } ->
      let c = thread_vc t tid in
      if t.dmode = Full_vector then begin
        let n = released_count t tid in
        Hashtbl.replace t.released (tid, n + 1) c;
        Hashtbl.replace t.released_count tid (n + 1)
      end;
      Hashtbl.replace t.obj_vc obj (Vc.join (obj_vc t obj) c);
      Hashtbl.replace t.thread_vc tid (Vc.set c tid (Vc.get c tid + 1))
  | Ev.Acquire { tid; obj } ->
      Hashtbl.replace t.last_acq tid obj;
      Hashtbl.replace t.thread_vc tid (Vc.join (thread_vc t tid) (obj_vc t obj))
  | Ev.Commit _ ->
      (* Chunk boundaries are stamped runtime-side (the loser epoch on
         each Conflict), so commits carry no clock state here. *)
      ()
  | Ev.Conflict { tid = w; version = _; page = _; first_byte; last_byte; loser_tid; loser_version }
    ->
      let cw = thread_vc t w in
      (* [loser_version] is the loser's release epoch at the start of the
         chunk that wrote the bytes: the chunks are ordered iff the
         winner has seen that release or a later one of the same thread.
         Epoch mode reads that off the winner's component for the loser;
         Full_vector mode replays the loser's release history — the
         naive oracle the qcheck suite checks the shortcut against. *)
      let ordered =
        match t.dmode with
        | Epoch -> Vc.get cw loser_tid >= loser_version
        | Full_vector ->
            let n = released_count t loser_tid in
            let rec scan j =
              j <= n
              && (Vc.leq (Hashtbl.find t.released (loser_tid, j)) cw || scan (j + 1))
            in
            scan loser_version
      in
      let nbytes = last_byte - first_byte + 1 in
      t.bytes_all <- t.bytes_all + nbytes;
      Obs.Metrics.record t.m_bytes nbytes;
      let verdict =
        if ordered then begin
          t.n_sync <- t.n_sync + 1;
          Obs.Metrics.count t.m_sync 1;
          Sync_ordered
        end
        else begin
          t.n_racy <- t.n_racy + 1;
          t.bytes_racy <- t.bytes_racy + nbytes;
          Obs.Metrics.count t.m_racy 1;
          Racy
        end
      in
      t.findings_rev <-
        { event = ev; verdict; winner_clock = cw; via = Hashtbl.find_opt t.last_acq w }
        :: t.findings_rev)

let findings t = List.rev t.findings_rev
let events t = t.n_events
let conflicts t = t.n_racy + t.n_sync
let racy t = t.n_racy
let sync_ordered t = t.n_sync
let conflict_bytes t = t.bytes_all
let racy_bytes t = t.bytes_racy
let metrics t = Obs.Metrics.snapshot t.reg

let pid = 1

let us_of_ns ns = float_of_int ns /. 1000.0

let span_event (s : Span.t) =
  let base =
    [
      ("name", Json.String s.Span.name);
      ("cat", Json.String (Span.category_name s.Span.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (us_of_ns s.Span.t0));
      ("dur", Json.Float (us_of_ns (Span.duration s)));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.Span.tid);
    ]
  in
  let args = List.map (fun (k, v) -> (k, Json.Int v)) s.Span.args in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let instant_event (i : Span.instant) =
  Json.Obj
    [
      ("name", Json.String i.Span.iname);
      ("cat", Json.String (Span.category_name i.Span.icat));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float (us_of_ns i.Span.itime));
      ("pid", Json.Int pid);
      ("tid", Json.Int i.Span.itid);
    ]

let metadata_event ~name ~tid ~value =
  let base =
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]
  in
  Json.Obj (match tid with None -> base | Some t -> base @ [ ("tid", Json.Int t) ])

(* Perfetto counter tracks ("ph":"C"): per-thread state occupancy over
   time.  The interval stream is exact but dense; for a readable track
   the run is divided into [buckets] equal windows and each interval's
   duration is distributed over the windows it overlaps.  One counter
   event per (thread, window) carries the per-state occupancy in ns as
   its args, which Perfetto renders as a stacked counter track. *)
let counter_events ?(buckets = 240) states =
  match states with
  | [] -> []
  | _ ->
      let t_end =
        List.fold_left (fun m (iv : Thread_state.interval) -> max m iv.Thread_state.t1) 0 states
      in
      if t_end <= 0 then []
      else begin
        let buckets = max 1 buckets in
        let width = max 1 ((t_end + buckets - 1) / buckets) in
        let nstates = Thread_state.n in
        (* (tid, bucket) -> per-state ns *)
        let acc : (int * int, int array) Hashtbl.t = Hashtbl.create 1024 in
        let slot tid b =
          match Hashtbl.find_opt acc (tid, b) with
          | Some a -> a
          | None ->
              let a = Array.make nstates 0 in
              Hashtbl.replace acc (tid, b) a;
              a
        in
        List.iter
          (fun (iv : Thread_state.interval) ->
            let si = Thread_state.index iv.Thread_state.state in
            let b0 = iv.Thread_state.t0 / width and b1 = (iv.Thread_state.t1 - 1) / width in
            for b = b0 to b1 do
              let lo = max iv.Thread_state.t0 (b * width) in
              let hi = min iv.Thread_state.t1 ((b + 1) * width) in
              if hi > lo then begin
                let a = slot iv.Thread_state.stid b in
                a.(si) <- a.(si) + (hi - lo)
              end
            done)
          states;
        let keys = Hashtbl.fold (fun k _ ks -> k :: ks) acc [] |> List.sort compare in
        List.map
          (fun (tid, b) ->
            let a = Hashtbl.find acc (tid, b) in
            let args =
              List.filter_map
                (fun st ->
                  let v = a.(Thread_state.index st) in
                  if v = 0 then None else Some (Thread_state.name st, Json.Int v))
                Thread_state.all
            in
            Json.Obj
              [
                ("name", Json.String (Printf.sprintf "thread-state t%d (ns/window)" tid));
                ("ph", Json.String "C");
                ("ts", Json.Float (us_of_ns (b * width)));
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj args);
              ])
          keys
      end

let of_events ?(process_name = "consequence") ?(states = []) ?(counter_buckets = 240) ~spans
    ~instants () =
  let module S = Set.Make (Int) in
  let tids =
    let s = List.fold_left (fun acc (sp : Span.t) -> S.add sp.Span.tid acc) S.empty spans in
    let s = List.fold_left (fun acc (i : Span.instant) -> S.add i.Span.itid acc) s instants in
    let s =
      List.fold_left
        (fun acc (iv : Thread_state.interval) -> S.add iv.Thread_state.stid acc)
        s states
    in
    S.elements s
  in
  let counters = counter_events ~buckets:counter_buckets states in
  let meta =
    metadata_event ~name:"process_name" ~tid:None ~value:process_name
    :: List.map
         (fun tid ->
           metadata_event ~name:"thread_name" ~tid:(Some tid)
             ~value:(if tid = 0 then "core-0 (main)" else Printf.sprintf "core-%d" tid))
         tids
  in
  let events =
    meta @ List.map span_event spans @ List.map instant_event instants @ counters
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "simulated-ns");
            ("spans", Json.Int (List.length spans));
            ("instants", Json.Int (List.length instants));
            ("state_intervals", Json.Int (List.length states));
            ("counter_events", Json.Int (List.length counters));
          ] );
    ]

let of_tracer ?process_name ?counter_buckets tr =
  of_events ?process_name ?counter_buckets ~states:(Tracer.states tr)
    ~spans:(Tracer.spans tr) ~instants:(Tracer.instants tr) ()

let write_file ?process_name ?counter_buckets path tr =
  Json.to_file path (of_tracer ?process_name ?counter_buckets tr)

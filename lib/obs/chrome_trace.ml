let pid = 1

let us_of_ns ns = float_of_int ns /. 1000.0

let span_event (s : Span.t) =
  let base =
    [
      ("name", Json.String s.Span.name);
      ("cat", Json.String (Span.category_name s.Span.cat));
      ("ph", Json.String "X");
      ("ts", Json.Float (us_of_ns s.Span.t0));
      ("dur", Json.Float (us_of_ns (Span.duration s)));
      ("pid", Json.Int pid);
      ("tid", Json.Int s.Span.tid);
    ]
  in
  let args = List.map (fun (k, v) -> (k, Json.Int v)) s.Span.args in
  Json.Obj (if args = [] then base else base @ [ ("args", Json.Obj args) ])

let instant_event (i : Span.instant) =
  Json.Obj
    [
      ("name", Json.String i.Span.iname);
      ("cat", Json.String (Span.category_name i.Span.icat));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float (us_of_ns i.Span.itime));
      ("pid", Json.Int pid);
      ("tid", Json.Int i.Span.itid);
    ]

let metadata_event ~name ~tid ~value =
  let base =
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]
  in
  Json.Obj (match tid with None -> base | Some t -> base @ [ ("tid", Json.Int t) ])

let of_events ?(process_name = "consequence") ~spans ~instants () =
  let module S = Set.Make (Int) in
  let tids =
    let s = List.fold_left (fun acc (sp : Span.t) -> S.add sp.Span.tid acc) S.empty spans in
    let s = List.fold_left (fun acc (i : Span.instant) -> S.add i.Span.itid acc) s instants in
    S.elements s
  in
  let meta =
    metadata_event ~name:"process_name" ~tid:None ~value:process_name
    :: List.map
         (fun tid ->
           metadata_event ~name:"thread_name" ~tid:(Some tid)
             ~value:(if tid = 0 then "core-0 (main)" else Printf.sprintf "core-%d" tid))
         tids
  in
  let events =
    meta @ List.map span_event spans @ List.map instant_event instants
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "simulated-ns");
            ("spans", Json.Int (List.length spans));
            ("instants", Json.Int (List.length instants));
          ] );
    ]

let of_tracer ?process_name tr =
  of_events ?process_name ~spans:(Tracer.spans tr) ~instants:(Tracer.instants tr) ()

let write_file ?process_name path tr = Json.to_file path (of_tracer ?process_name tr)

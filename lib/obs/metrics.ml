(* 64 power-of-two buckets cover the full non-negative int range:
   bucket 0 holds values <= 1, bucket i holds (2^(i-1), 2^i]. *)
let nbuckets = 63

let bucket_of v =
  let rec go i bound = if v <= bound || i = nbuckets - 1 then i else go (i + 1) (bound * 2) in
  go 0 1

let bucket_upper i = if i >= 62 then max_int else 1 lsl i

type hist_state = {
  counts : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist_state) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; hists = Hashtbl.create 16 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let hist_of t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h =
        { counts = Array.make nbuckets 0; hcount = 0; hsum = 0; hmin = max_int; hmax = 0 }
      in
      Hashtbl.replace t.hists name h;
      h

let observe_state h name v =
  if v < 0 then invalid_arg (Printf.sprintf "Metrics.observe %s: negative value %d" name v);
  let b = bucket_of v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

let observe t name v = observe_state (hist_of t name) name v

(* Interned handles: one string-keyed lookup on first use, direct state
   updates after.  Registration is lazy so a handle that is never
   recorded to creates nothing — snapshots stay identical to the
   string-keyed path. *)

type counter = { ct : t; ckey : string; mutable cref : int ref option }
type histogram = { htt : t; hkey : string; mutable hstate : hist_state option }

let counter t name = { ct = t; ckey = name; cref = None }
let histogram t name = { htt = t; hkey = name; hstate = None }

let count c by =
  match c.cref with
  | Some r -> r := !r + by
  | None -> (
      match Hashtbl.find_opt c.ct.counters c.ckey with
      | Some r ->
          c.cref <- Some r;
          r := !r + by
      | None ->
          let r = ref by in
          c.cref <- Some r;
          Hashtbl.replace c.ct.counters c.ckey r)

let record h v =
  match h.hstate with
  | Some st -> observe_state st h.hkey v
  | None ->
      let st = hist_of h.htt h.hkey in
      h.hstate <- Some st;
      observe_state st h.hkey v

type hist = {
  hname : string;
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
  buckets : (int * int) list;
}

type snapshot = { counters : (string * int) list; hists : hist list }

let snapshot (t : t) =
  let counters =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let hists =
    Hashtbl.fold
      (fun k h acc ->
        let buckets = ref [] in
        for i = nbuckets - 1 downto 0 do
          if h.counts.(i) > 0 then buckets := (bucket_upper i, h.counts.(i)) :: !buckets
        done;
        {
          hname = k;
          count = h.hcount;
          sum = h.hsum;
          min_v = (if h.hcount = 0 then 0 else h.hmin);
          max_v = h.hmax;
          buckets = !buckets;
        }
        :: acc)
      t.hists []
    |> List.sort (fun a b -> compare a.hname b.hname)
  in
  { counters; hists }

let empty = { counters = []; hists = [] }

let percentile h q =
  if h.count = 0 then Float.nan
  else begin
    let rank = q *. float_of_int h.count in
    let rec go cum = function
      | [] -> float_of_int h.max_v
      | (upper, n) :: rest ->
          let cum' = cum + n in
          if float_of_int cum' >= rank then begin
            (* Interpolate within this bucket, clamped by the exact
               observed extremes. *)
            let lo = if upper <= 1 then 0.0 else float_of_int upper /. 2.0 in
            let hi = float_of_int (min upper h.max_v) in
            let lo = Float.max lo (float_of_int h.min_v) in
            let lo = Float.min lo hi in
            let frac =
              if n = 0 then 0.0 else (rank -. float_of_int cum) /. float_of_int n
            in
            lo +. (Float.max 0.0 (Float.min 1.0 frac) *. (hi -. lo))
          end
          else go cum' rest
    in
    go 0 h.buckets
  end

let mean h = if h.count = 0 then Float.nan else float_of_int h.sum /. float_of_int h.count
let find_hist s name = List.find_opt (fun h -> h.hname = name) s.hists
let counter_value s name = match List.assoc_opt name s.counters with Some v -> v | None -> 0

let hist_to_json h =
  Json.Obj
    [
      ("name", Json.String h.hname);
      ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("min", Json.Int h.min_v);
      ("max", Json.Int h.max_v);
      ("mean", Json.Float (if h.count = 0 then 0.0 else mean h));
      ("p50", Json.Float (if h.count = 0 then 0.0 else percentile h 0.50));
      ("p95", Json.Float (if h.count = 0 then 0.0 else percentile h 0.95));
      ("p99", Json.Float (if h.count = 0 then 0.0 else percentile h 0.99));
      ("p999", Json.Float (if h.count = 0 then 0.0 else percentile h 0.999));
      ( "buckets",
        Json.List
          (List.map (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ]) h.buckets)
      );
    ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("histograms", Json.List (List.map hist_to_json s.hists));
    ]

let pp fmt s =
  Format.fprintf fmt "@[<v>";
  if s.counters <> [] then begin
    Format.fprintf fmt "counters:@,";
    List.iter (fun (k, v) -> Format.fprintf fmt "  %-28s %d@," k v) s.counters
  end;
  if s.hists <> [] then begin
    Format.fprintf fmt "histograms:@,";
    List.iter
      (fun h ->
        Format.fprintf fmt
          "  %-28s n=%-7d mean=%-12.1f p50=%-12.1f p95=%-12.1f p99=%-12.1f p999=%-12.1f max=%d@,"
          h.hname h.count (mean h) (percentile h 0.50) (percentile h 0.95) (percentile h 0.99)
          (percentile h 0.999) h.max_v)
      s.hists
  end;
  Format.fprintf fmt "@]"

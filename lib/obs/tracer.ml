type t = {
  mutable spans_rev : Span.t list;
  mutable instants_rev : Span.instant list;
  mutable states_rev : Thread_state.interval list;
  mutable nspans : int;
  mutable ninstants : int;
  mutable nstates : int;
}

let create () =
  { spans_rev = []; instants_rev = []; states_rev = []; nspans = 0; ninstants = 0; nstates = 0 }

let sink t =
  {
    Sink.span =
      (fun s ->
        t.spans_rev <- s :: t.spans_rev;
        t.nspans <- t.nspans + 1);
    instant =
      (fun i ->
        t.instants_rev <- i :: t.instants_rev;
        t.ninstants <- t.ninstants + 1);
    state =
      (fun iv ->
        t.states_rev <- iv :: t.states_rev;
        t.nstates <- t.nstates + 1);
  }

let spans t = List.rev t.spans_rev
let instants t = List.rev t.instants_rev
let states t = List.rev t.states_rev
let span_count t = t.nspans
let instant_count t = t.ninstants
let state_count t = t.nstates

let clear t =
  t.spans_rev <- [];
  t.instants_rev <- [];
  t.states_rev <- [];
  t.nspans <- 0;
  t.ninstants <- 0;
  t.nstates <- 0

let tids t =
  let module S = Set.Make (Int) in
  let s =
    List.fold_left (fun acc (sp : Span.t) -> S.add sp.Span.tid acc) S.empty t.spans_rev
  in
  let s =
    List.fold_left (fun acc (i : Span.instant) -> S.add i.Span.itid acc) s t.instants_rev
  in
  let s =
    List.fold_left
      (fun acc (iv : Thread_state.interval) -> S.add iv.Thread_state.stid acc)
      s t.states_rev
  in
  S.elements s

(** Timeline primitives: spans and instants on the simulated clock.

    A span is a closed interval of simulated time attributed to one
    simulated thread (= one core, since the engine pins each fiber to its
    own core) and one activity category — the timeline analogue of a
    {!Stats.Breakdown} bucket.  An instant is a zero-duration marker
    (a sync operation, a commit becoming visible).

    All times are simulated nanoseconds as reported by [Sim.Engine.now];
    producing these values reads the clock but never advances it, which
    is what keeps instrumentation determinism-neutral. *)

type category =
  | Chunk  (** user-code execution between coordination points *)
  | Token_hold  (** holding the global token / serial turn *)
  | Determ_wait  (** waiting to become GMIC / for the turn / at the fence *)
  | Lock_wait  (** parked on a lock, condition variable or join *)
  | Barrier_wait  (** parked at an application barrier *)
  | Commit  (** publishing dirty pages *)
  | Update  (** pulling remote versions into the local view *)
  | Fork  (** thread creation / pool recycling *)
  | Join  (** joining a child thread *)
  | Sync  (** instantaneous synchronization markers *)
  | Race  (** merge-conflict / race-detector markers *)

val category_name : category -> string
(** Stable lower-snake-case name (used as the Chrome trace [cat] field). *)

type t = {
  name : string;
  cat : category;
  tid : int;
  t0 : int;  (** start, simulated ns *)
  t1 : int;  (** end, simulated ns; [t1 >= t0] *)
  args : (string * int) list;  (** numeric attributes (pages, versions, lengths) *)
}

type instant = { iname : string; icat : category; itid : int; itime : int }

val duration : t -> int

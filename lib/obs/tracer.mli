(** In-memory recording sink.

    Buffers every span, instant and thread-state interval in arrival
    order (which, for the runtimes, is deterministic simulated-event
    order — not sorted by start time, since spans and intervals are
    emitted when they {e close}).  The buffers feed {!Chrome_trace},
    the determinism profiler and the tests. *)

type t

val create : unit -> t

val sink : t -> Sink.t
(** The recording sink.  One tracer can back several runs; call
    {!clear} in between if separation is wanted. *)

val spans : t -> Span.t list
(** In arrival order. *)

val instants : t -> Span.instant list
(** In arrival order. *)

val states : t -> Thread_state.interval list
(** In arrival order; per-thread subsequences are in time order. *)

val span_count : t -> int
val instant_count : t -> int
val state_count : t -> int
val clear : t -> unit

val tids : t -> int list
(** Distinct thread ids seen, ascending — the tracks of the trace. *)

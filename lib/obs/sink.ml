type t = {
  span : Span.t -> unit;
  instant : Span.instant -> unit;
  state : Thread_state.interval -> unit;
}

let null = { span = (fun _ -> ()); instant = (fun _ -> ()); state = (fun _ -> ()) }
let is_null t = t == null

let tee a b =
  {
    span =
      (fun s ->
        a.span s;
        b.span s);
    instant =
      (fun i ->
        a.instant i;
        b.instant i);
    state =
      (fun iv ->
        a.state iv;
        b.state iv);
  }

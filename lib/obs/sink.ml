type t = { span : Span.t -> unit; instant : Span.instant -> unit }

let null = { span = (fun _ -> ()); instant = (fun _ -> ()) }
let is_null t = t == null

let tee a b =
  {
    span =
      (fun s ->
        a.span s;
        b.span s);
    instant =
      (fun i ->
        a.instant i;
        b.instant i);
  }

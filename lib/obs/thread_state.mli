(** Exhaustive thread-state classification for the determinism profiler.

    Where {!Span} records {e episodes} the runtimes choose to narrate
    (token holds, commits, chunks), a thread-state interval stream is a
    {e partition} of each thread's simulated lifetime: every nanosecond
    between a thread's first and last activity belongs to exactly one
    state.  The runtimes emit one interval per contiguous stretch, in
    per-thread time order, and the profiler's conservation invariant
    (per-thread state times sum exactly to lifetime, no gaps, no
    overlaps) is enforced by the test suite.

    State semantics, and the {!Stats.Breakdown} category each state
    feeds (the mapping is total, so breakdown output is unchanged by
    profiling):

    - [Run]: useful user work (breakdown [Chunk]);
    - [Token_wait]: waiting to become GMIC / for the round-robin serial
      turn / at the DThreads fence ([Determ_wait]);
    - [Lock_wait] / [Barrier_wait]: parked on a lock, condition or
      application barrier ([Lock_wait] / [Barrier_wait]);
    - [Commit] / [Update]: publishing dirty pages / pulling remote
      versions ([Commit] / [Update]);
    - [Fault]: copy-on-write fault handling ([Page_fault]);
    - [Overflow]: chunk-boundary instrumentation — performance-counter
      reads and counter-overflow interrupts ([Library]);
    - [Runtime]: residual runtime overhead — sync-op entry, token
      passing, wakeups ([Library]);
    - [Fork]: thread creation / teardown / pool recycling ([Fork]);
    - [Gc]: version garbage collection.  Zero under the default cost
      model: Conversion's budgeted collector runs off the critical path
      (its {e memory} cost shows up in [peak_mem_pages] instead), but
      the state exists so alternative cost models can charge it;
    - [Commit_pipe]: the drained phase of a pipelined commit — the bulk
      install/merge work charged {e after} the global is released, so it
      overlaps the execution of other threads' next chunks (feeds the
      same Breakdown [Commit] category as [Commit], so breakdown totals
      are placement-independent);
    - [Txn_validate] / [Txn_abort]: software-transaction bookkeeping —
      validating a transaction's read/write intents against the commit
      order, and discarding an aborted transaction's buffered write set
      (including its deterministic retry backoff).  Both feed
      [Library]: they are runtime overhead, not useful work. *)

type t =
  | Run
  | Token_wait
  | Lock_wait
  | Barrier_wait
  | Commit
  | Update
  | Fault
  | Overflow
  | Runtime
  | Fork
  | Gc
  | Commit_pipe
  | Txn_validate
  | Txn_abort

val all : t list
(** In {!index} order. *)

val n : int
(** [List.length all]; the profiler's per-state arrays have this size. *)

val index : t -> int
val of_index : int -> t
val name : t -> string
val is_wait : t -> bool
(** True for the states whose intervals carry a meaningful [waker]. *)

type interval = {
  stid : int;  (** thread the interval belongs to *)
  state : t;
  t0 : int;  (** simulated ns, inclusive *)
  t1 : int;  (** simulated ns, exclusive; always > [t0] *)
  chunk : int;
      (** the thread's 0-based chunk ordinal (coordination phases count
          toward the chunk they close); always 0 under pthreads *)
  waker : int;
      (** for wait states: the thread whose action ended the wait (the
          granter, fence completer, or last token enabler); -1 when
          unknown or not a wait *)
}

val duration : interval -> int
val interval_to_json : interval -> Json.t

(** Metrics registry: named counters and fixed-bucket histograms.

    The runtimes keep one registry per run and observe the quantities
    the paper's evaluation plots distributions of — token-hold time,
    commit time, pages per commit, determ-wait time, chunk length — so a
    single run yields latency percentiles, not just end-of-run sums.

    Histograms use fixed power-of-two buckets (bucket [i] covers values
    in [(2^(i-1), 2^i]], with a first bucket for 0..1).  Percentiles are
    estimated by linear interpolation inside the bucket where the rank
    falls, clamped by the exact observed min/max, so they are exact for
    the tails and within a factor-of-two bucket for the middle.  All
    operations are value-deterministic: snapshots are sorted by name and
    never depend on hash-table iteration order. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created on first use). *)

val observe : t -> string -> int -> unit
(** Record a histogram observation; negative values raise
    [Invalid_argument]. *)

(** {1 Interned handles}

    A hot path that records to the same metric on every operation can
    intern the name once and skip the string-keyed lookup thereafter.
    Handles are lazy: nothing is registered until the first [count] /
    [record], so snapshots are identical to the string-keyed path. *)

type counter
type histogram

val counter : t -> string -> counter
val histogram : t -> string -> histogram

val count : counter -> int -> unit
(** Bump the interned counter by the given amount. *)

val record : histogram -> int -> unit
(** Record an observation through an interned handle; negative values
    raise [Invalid_argument]. *)

(** {1 Snapshots} *)

type hist = {
  hname : string;
  count : int;
  sum : int;
  min_v : int;  (** meaningful only when [count > 0] *)
  max_v : int;
  buckets : (int * int) list;
      (** (inclusive upper bound, observation count), ascending, only
          non-empty buckets *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  hists : hist list;  (** sorted by name *)
}

val snapshot : t -> snapshot
val empty : snapshot

val percentile : hist -> float -> float
(** [percentile h 0.99] estimates the q-quantile, [0 <= q <= 1].
    Returns [nan] for an empty histogram. *)

val mean : hist -> float

val find_hist : snapshot -> string -> hist option
val counter_value : snapshot -> string -> int
(** 0 when absent. *)

val to_json : snapshot -> Json.t
val pp : Format.formatter -> snapshot -> unit
(** Human-readable dump: counters, then one line per histogram with
    count/mean/p50/p95/p99/p999/max.  The same quantiles (plus p999)
    appear in {!to_json}'s per-histogram objects. *)

(** Minimal JSON tree, printer and parser.

    The observability exporters (Chrome traces, metrics dumps, bench
    section dumps) must emit machine-readable output without adding a
    dependency the container may not have; this module is a small,
    self-contained JSON implementation.  The parser exists so tests can
    check emitted documents structurally rather than by string match. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation). *)

val to_buffer : Buffer.t -> t -> unit

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline. *)

val parse : string -> (t, string) result
(** Strict parser for the subset this module prints (standard JSON;
    [\uXXXX] escapes outside ASCII are decoded to UTF-8).  Numbers
    without a fraction or exponent parse as [Int]. *)

(** {1 Accessors (for tests and consumers)} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_list_opt : t -> t list option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] values coerce to float. *)

val to_string_opt : t -> string option

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON requires a digit on both sides of the point; OCaml's %g and
   string_of_float can produce "1." or bare integers, so normalize. *)
let float_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    (* Shortest of %.15g / %.17g that parses back to the same float, so
       documents round-trip exactly through the parser. *)
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let expect_lit st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" lit)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            st.pos <- st.pos + 1;
            if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            add_utf8 buf code;
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  (* JSON forbids leading zeros ("01") and a bare leading '+'. *)
  let body = if s <> "" && s.[0] = '-' then String.sub s 1 (String.length s - 1) else s in
  if body = "" then error st "bad number";
  if
    String.length body > 1
    && body.[0] = '0'
    && match body.[1] with '0' .. '9' -> true | _ -> false
  then error st "leading zero";
  (match body.[0] with '0' .. '9' -> () | _ -> error st "bad number");
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    match float_of_string_opt s with Some f -> Float f | None -> error st "bad number"
  else match int_of_string_opt s with Some i -> Int i | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> expect_lit st "true" (Bool true)
  | Some 'f' -> expect_lit st "false" (Bool false)
  | Some 'n' -> expect_lit st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

type t =
  | Run
  | Token_wait
  | Lock_wait
  | Barrier_wait
  | Commit
  | Update
  | Fault
  | Overflow
  | Runtime
  | Fork
  | Gc
  | Commit_pipe
  | Txn_validate
  | Txn_abort

let all =
  [
    Run; Token_wait; Lock_wait; Barrier_wait; Commit; Update; Fault; Overflow; Runtime; Fork;
    Gc; Commit_pipe; Txn_validate; Txn_abort;
  ]

let n = List.length all

let index = function
  | Run -> 0
  | Token_wait -> 1
  | Lock_wait -> 2
  | Barrier_wait -> 3
  | Commit -> 4
  | Update -> 5
  | Fault -> 6
  | Overflow -> 7
  | Runtime -> 8
  | Fork -> 9
  | Gc -> 10
  | Commit_pipe -> 11
  | Txn_validate -> 12
  | Txn_abort -> 13

let of_index = function
  | 0 -> Run
  | 1 -> Token_wait
  | 2 -> Lock_wait
  | 3 -> Barrier_wait
  | 4 -> Commit
  | 5 -> Update
  | 6 -> Fault
  | 7 -> Overflow
  | 8 -> Runtime
  | 9 -> Fork
  | 10 -> Gc
  | 11 -> Commit_pipe
  | 12 -> Txn_validate
  | 13 -> Txn_abort
  | i -> invalid_arg (Printf.sprintf "Thread_state.of_index %d" i)

let name = function
  | Run -> "run"
  | Token_wait -> "token_wait"
  | Lock_wait -> "lock_wait"
  | Barrier_wait -> "barrier_wait"
  | Commit -> "commit"
  | Update -> "update"
  | Fault -> "fault"
  | Overflow -> "overflow"
  | Runtime -> "runtime"
  | Fork -> "fork"
  | Gc -> "gc"
  | Commit_pipe -> "commit_pipe"
  | Txn_validate -> "txn_validate"
  | Txn_abort -> "txn_abort"

let is_wait = function Token_wait | Lock_wait | Barrier_wait -> true | _ -> false

type interval = {
  stid : int;
  state : t;
  t0 : int;
  t1 : int;
  chunk : int;
  waker : int;
}

let duration iv = iv.t1 - iv.t0

let interval_to_json iv =
  Json.Obj
    [
      ("tid", Json.Int iv.stid);
      ("state", Json.String (name iv.state));
      ("t0", Json.Int iv.t0);
      ("t1", Json.Int iv.t1);
      ("chunk", Json.Int iv.chunk);
      ("waker", Json.Int iv.waker);
    ]

(** Chrome trace-event JSON export (the JSON Array / JSON Object format
    consumed by Perfetto, chrome://tracing and speedscope).

    Each simulated thread becomes one track ([tid]) of a single process;
    spans become complete events ([ph = "X"]), instants become instant
    events ([ph = "i"], thread scope), and the profiler's thread-state
    interval stream becomes per-thread stacked counter tracks
    ([ph = "C"]) showing where each thread's time goes over the run.
    Timestamps are exported in microseconds (the unit the format
    mandates) as fractional values, so the simulated-nanosecond
    resolution is preserved. *)

val counter_events : ?buckets:int -> Thread_state.interval list -> Json.t list
(** [counter_events states] renders the interval stream as Perfetto
    counter events: the run is divided into [buckets] (default 240)
    equal windows and each (thread, window) pair yields one ["ph":"C"]
    event whose args carry the per-state occupancy in ns.  Exact — the
    per-window ns sum equals the intervals' total duration. *)

val of_events :
  ?process_name:string ->
  ?states:Thread_state.interval list ->
  ?counter_buckets:int ->
  spans:Span.t list ->
  instants:Span.instant list ->
  unit ->
  Json.t
(** The full document: [{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}], with one metadata event naming the process and
    one naming each thread track.  [states] (default []) adds the
    thread-state counter tracks. *)

val of_tracer : ?process_name:string -> ?counter_buckets:int -> Tracer.t -> Json.t

val write_file : ?process_name:string -> ?counter_buckets:int -> string -> Tracer.t -> unit

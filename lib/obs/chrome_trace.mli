(** Chrome trace-event JSON export (the JSON Array / JSON Object format
    consumed by Perfetto, chrome://tracing and speedscope).

    Each simulated thread becomes one track ([tid]) of a single process;
    spans become complete events ([ph = "X"]) and instants become
    instant events ([ph = "i"], thread scope).  Timestamps are exported
    in microseconds (the unit the format mandates) as fractional values,
    so the simulated-nanosecond resolution is preserved. *)

val of_events :
  ?process_name:string -> spans:Span.t list -> instants:Span.instant list -> unit -> Json.t
(** The full document: [{"traceEvents": [...], "displayTimeUnit": "ms",
    "otherData": {...}}], with one metadata event naming the process and
    one naming each thread track. *)

val of_tracer : ?process_name:string -> Tracer.t -> Json.t

val write_file : ?process_name:string -> string -> Tracer.t -> unit

type category =
  | Chunk
  | Token_hold
  | Determ_wait
  | Lock_wait
  | Barrier_wait
  | Commit
  | Update
  | Fork
  | Join
  | Sync
  | Race

let category_name = function
  | Chunk -> "chunk"
  | Token_hold -> "token_hold"
  | Determ_wait -> "determ_wait"
  | Lock_wait -> "lock_wait"
  | Barrier_wait -> "barrier_wait"
  | Commit -> "commit"
  | Update -> "update"
  | Fork -> "fork"
  | Join -> "join"
  | Sync -> "sync"
  | Race -> "race"

type t = {
  name : string;
  cat : category;
  tid : int;
  t0 : int;
  t1 : int;
  args : (string * int) list;
}

type instant = { iname : string; icat : category; itid : int; itime : int }

let duration t = t.t1 - t.t0

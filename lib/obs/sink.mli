(** Consumer interface for runtime timeline events.

    This generalizes the [Runtime.Rt_event.observer] callback: where the
    observer receives only the happens-before edges (commit / release /
    acquire), a sink additionally receives every timed span the runtime
    produces, plus the exhaustive {!Thread_state} interval stream the
    determinism profiler aggregates.  Runtimes accept a sink as an
    optional argument and call it synchronously, in deterministic
    (simulated-time) order; the default {!null} sink makes
    instrumentation free when tracing is off.

    Sinks must be passive: a sink that mutates runtime or engine state
    would break the determinism-neutrality invariant that
    [test_obs]/[test_runtime]/[test_prof] enforce. *)

type t = {
  span : Span.t -> unit;
  instant : Span.instant -> unit;
  state : Thread_state.interval -> unit;
}

val null : t
(** Drops everything.  Runtimes compare against this physically to skip
    even the event-record allocation on hot paths. *)

val is_null : t -> bool

val tee : t -> t -> t
(** Duplicate every event to two sinks (first, then second). *)

type result = {
  program : string;
  tso_pages : int;
  lrc_pages : int;
  acquires : int;
  commits : int;
  page_updates : int;
}

let reduction r =
  if r.tso_pages = 0 then 0.0
  else float_of_int (r.tso_pages - r.lrc_pages) /. float_of_int r.tso_pages

type tracker = {
  thread_vc : (int, Vector_clock.t) Hashtbl.t;
  obj_vc : (string, Vector_clock.t) Hashtbl.t;
  epoch : (int, int) Hashtbl.t; (* per-thread commit counter *)
  (* Epochs at which (page, writer) was committed, ascending. *)
  page_writes : (int * int, int Sim.Vec.t) Hashtbl.t;
  pages_seen : (int, unit) Hashtbl.t;
  mutable lrc_pages : int;
  mutable acquires : int;
  mutable commits : int;
  mutable page_updates : int;
}

let create_tracker () =
  {
    thread_vc = Hashtbl.create 32;
    obj_vc = Hashtbl.create 64;
    epoch = Hashtbl.create 32;
    page_writes = Hashtbl.create 1024;
    pages_seen = Hashtbl.create 1024;
    lrc_pages = 0;
    acquires = 0;
    commits = 0;
    page_updates = 0;
  }

let thread_vc t tid =
  match Hashtbl.find_opt t.thread_vc tid with Some vc -> vc | None -> Vector_clock.empty

let obj_vc t obj =
  match Hashtbl.find_opt t.obj_vc obj with Some vc -> vc | None -> Vector_clock.empty

(* Does a write by [writer] to this page exist with epoch in (lo, hi]? *)
let has_write_in t ~page ~writer ~lo ~hi =
  if hi <= lo then false
  else
    match Hashtbl.find_opt t.page_writes (page, writer) with
    | None -> false
    | Some epochs ->
        (* Epochs are appended in increasing order; scan from the back. *)
        let n = Sim.Vec.length epochs in
        let rec back i =
          if i < 0 then false
          else
            let e = Sim.Vec.get epochs i in
            if e <= lo then false else e <= hi || back (i - 1)
        in
        back (n - 1)

let observer t (ev : Runtime.Rt_event.t) =
  match ev with
  | Runtime.Rt_event.Commit { tid; version = _; pages } ->
      let e = (match Hashtbl.find_opt t.epoch tid with Some e -> e | None -> 0) + 1 in
      Hashtbl.replace t.epoch tid e;
      Hashtbl.replace t.thread_vc tid (Vector_clock.set (thread_vc t tid) tid e);
      List.iter
        (fun p ->
          Hashtbl.replace t.pages_seen p ();
          t.page_updates <- t.page_updates + 1;
          let key = (p, tid) in
          let epochs =
            match Hashtbl.find_opt t.page_writes key with
            | Some v -> v
            | None ->
                let v = Sim.Vec.create () in
                Hashtbl.replace t.page_writes key v;
                v
          in
          Sim.Vec.push epochs e)
        pages;
      t.commits <- t.commits + 1
  | Runtime.Rt_event.Release { tid; obj } ->
      Hashtbl.replace t.obj_vc obj (Vector_clock.join (obj_vc t obj) (thread_vc t tid))
  | Runtime.Rt_event.Acquire { tid; obj } ->
      t.acquires <- t.acquires + 1;
      let old_vc = thread_vc t tid in
      let new_vc = Vector_clock.join old_vc (obj_vc t obj) in
      if not (Vector_clock.equal old_vc new_vc) then begin
        (* Count pages whose visible version advances along this edge:
           some writer's commit in (old, new] touched them. *)
        Hashtbl.iter
          (fun page () ->
            let needed =
              Vector_clock.fold
                (fun writer hi acc ->
                  acc
                  || writer <> tid
                     && has_write_in t ~page ~writer ~lo:(Vector_clock.get old_vc writer) ~hi)
                new_vc false
            in
            if needed then t.lrc_pages <- t.lrc_pages + 1)
          t.pages_seen;
        Hashtbl.replace t.thread_vc tid new_vc
      end
  | Runtime.Rt_event.Conflict _ -> ()
  | Runtime.Rt_event.Boundary _ | Runtime.Rt_event.Commit_hash _
  | Runtime.Rt_event.Txn_abort _ | Runtime.Rt_event.Tune_decision _ ->
      (* Scheduling/replay bookkeeping carries no propagation edges. *)
      ()

let lrc_pages t = t.lrc_pages
let acquires t = t.acquires
let commits t = t.commits
let page_updates t = t.page_updates

let run ?costs ?seed ?nthreads (program : Api.t) =
  let tracker = create_tracker () in
  (* Coarsening coalesces many sync ops into one commit+update window,
     which would make the TSO side count batched windows against LRC's
     per-edge counting; disable it so edges and windows correspond 1:1,
     as in the paper's instrumented build. *)
  let cfg = Runtime.Config.without_coarsening Runtime.Config.consequence_ic in
  let res =
    Runtime.Det_rt.run cfg ?costs ?seed ?nthreads ~observer:(observer tracker) program
  in
  {
    program = program.Api.name;
    tso_pages = res.Stats.Run_result.pages_propagated;
    lrc_pages = tracker.lrc_pages;
    acquires = tracker.acquires;
    commits = tracker.commits;
    page_updates = tracker.page_updates;
  }

(** Deterministic logical clocks (paper section 2.1).

    Each thread owns a retired-instruction counter.  The registry exposes
    the {e published} value of every counter: the value the rest of the
    system can see, which lags the thread's actual progress between
    performance-counter overflows (section 3.2).  Deterministic ordering
    is defined over published values: the thread with the {b g}lobal
    {b m}inimum {b i}nstruction {b c}ount — ties broken by thread id — is
    the GMIC thread and is the only one allowed to take the global token.

    A thread can {e depart} from GMIC consideration (the paper's
    [clockDepart()], used when blocking on a held lock so others keep
    making progress) and later re-{e arrive}.  {e pause}/{e resume} model
    the paper's [clockPause()]/[clockResume()]: while paused, a thread is
    executing runtime-library code whose instructions must not count
    (they are nondeterministic); ticking a paused clock is a bug and
    raises.

    The registry maintains incremental (published, tid) min-heap indexes
    over the active clocks and over the token's waiters, so {!gmic},
    {!is_gmic} and {!next_waiting_gap} are O(1) reads; every clock
    mutation updates the indexes in O(log n).  This mirrors the paper's
    requirement (sections 3.2, 3.6) that GMIC arbitration be cheap enough
    to run at every publication point. *)

type t
(** Registry of all thread clocks. *)

type clock
(** One thread's clock handle. *)

val create : unit -> t

val register : t -> tid:int -> clock
(** Add a thread with published count 0.  Raises if [tid] already
    registered and still live. *)

val tid : clock -> int
val published : clock -> int

val tick : clock -> int -> unit
(** Advance the thread's count by [n] retired instructions and publish it.
    Raises [Invalid_argument] if the clock is paused or finished. *)

val pause : clock -> unit
val resume : clock -> unit
val is_paused : clock -> bool

val depart : clock -> unit
(** Remove from GMIC consideration ([clockDepart]). Idempotent. *)

val arrive : clock -> unit
(** Rejoin GMIC consideration. Idempotent. *)

val is_departed : clock -> bool

val finish : clock -> unit
(** Permanently remove the thread (thread exit). *)

val is_finished : clock -> bool

val fast_forward : clock -> to_count:int -> bool
(** [fast_forward c ~to_count] raises the clock to [to_count] if that is
    larger (paper section 3.5); returns whether it moved.  Allowed while
    paused (it happens inside the runtime library). *)

val gmic : t -> int option
(** Tid of the GMIC thread: minimal (published, tid) among live,
    non-departed threads.  [None] if no such thread.  O(1). *)

val gmic_tid : t -> int
(** Allocation-free {!gmic}: the GMIC tid, or -1 if no thread is
    active. *)

val is_gmic : t -> tid:int -> bool
(** True iff [tid] is live, non-departed, and equal to {!gmic}.  O(1). *)

val is_active : t -> tid:int -> bool
(** True iff [tid] is registered, live and non-departed. *)

val published_of : t -> tid:int -> int option
(** Published count of a live thread by tid; [None] if unregistered or
    finished.  O(1) (no list build, unlike {!counts}). *)

val set_waiting : t -> tid:int -> bool -> unit
(** Mark/unmark [tid] as waiting for the global token.  Maintains the
    waiter index behind {!next_waiting_gap}; called by [Token.wait].
    The registry tracks the waiters of the single global token.  Raises
    if [tid] is not registered. *)

val is_waiting : t -> tid:int -> bool
(** True iff [tid] is marked waiting and active. *)

val waiting_count : t -> int
(** Number of active threads marked waiting.  O(1). *)

val next_waiting_gap : t -> tid:int -> int
(** For the adaptive-overflow rule (section 3.2): among active waiting
    threads [w] other than [tid], find the one with minimal
    (published, tid); return [count_w - count_tid + 1] — how many more
    instructions [tid] must retire before that waiter becomes GMIC — or
    [0] if nobody relevant is waiting.  The result may be [<= 0] when the
    waiter already precedes [tid]; callers treat any non-positive value
    as "no gap to target".  O(1). *)

val rr_successor : t -> turn:int -> int
(** Round-robin successor: the smallest active tid >= [turn], wrapping to
    the smallest active tid; -1 if no thread is active.  A single
    allocation-free scan of the active index. *)

val live_count : t -> int
val active_count : t -> int
(** Live and non-departed.  O(1). *)

val counts : t -> (int * int) list
(** [(tid, published)] for all live threads, ascending tid; for tests and
    debugging. *)

(** Performance-counter overflow scheduling (paper section 3.2).

    A thread's published logical clock advances only when its performance
    counter is read — at chunk ends and at counter {e overflow} interrupts.
    The overflow interval trades sequential overhead (interrupt handling)
    against notification latency for threads waiting to become GMIC.
    Crucially it has {b no effect on determinism}, only on real time, which
    is why the runtime may adapt it freely.

    The adaptive policy implements the paper's three rules:
    + at the start of each chunk the interval resets to a conservative
      base (5,000 retired instructions);
    + if some thread is waiting to become GMIC and we are ahead of
      nothing — i.e. we are the thread everyone waits for — the next
      overflow is placed exactly where our clock passes the next-lowest
      waiter's clock;
    + otherwise the interval doubles.

    A [Fixed] policy is provided for the Fig 13 ablation (adaptive
    overflows disabled). *)

type kind =
  | Adaptive of { base : int; cap : int }
      (** doubling backoff is bounded by [cap]: the longest a waiter can
          go unnotified is one capped interval *)
  | Fixed of int
  | Scripted of int array
      (** forced boundaries for schedule replay (lib/replay): the
          ascending retired-instruction counts at which this thread's
          counter must overflow, exactly as a recorded run published
          them.  Boundaries already passed (a chunk-end counter read
          published at or beyond them) are skipped; once the script is
          exhausted the thread publishes only at sync ops.  Like the
          adaptive rules this affects real time only, never determinism —
          which is also why a {e perturbed} script is a legal schedule to
          explore.  Must be strictly ascending and positive. *)

type t

val default_base : int
(** 5,000 retired instructions, the paper's conservative base value. *)

val default_cap : int
(** 60,000 retired instructions: bounds rule-3 doubling so a thread
    waiting to become GMIC is notified within one capped interval, while
    keeping interrupt overhead negligible for compute-dominated chunks. *)

val create : kind -> t
val kind : t -> kind

val begin_chunk : t -> unit
(** Reset per-chunk state (rule 1). *)

val next_interval : ?ic:int -> t -> waiter_gap:int -> int
(** Instructions until the next overflow should fire.  [waiter_gap] is
    the distance to the next-lowest waiting thread's clock (from
    {!Logical_clock.next_waiting_gap}), when we are the GMIC and somebody
    waits on us: rule 2 targets the overflow exactly there.  A
    non-positive gap (0 = nobody relevant is waiting) applies rule 3
    (doubling).  [ic] (default 0) is the calling thread's current
    retired-instruction count; only [Scripted] policies read it, to place
    the next overflow at the next recorded boundary.  Always returns a
    value >= 1. *)

val retarget : t -> base:int -> cap:int -> unit
(** Re-aim the policy mid-run (the self-tuning controller's knob).
    [Adaptive] policies adopt the new base/cap and restart the backoff at
    [min base cap]; [Fixed] policies adopt [base] as the new interval;
    [Scripted] policies ignore the call — a replay's recorded boundary
    stream wins over knob changes.  Like every overflow decision this
    affects real time only, never determinism.  Requires
    [0 < base <= cap]. *)

val overflows_scheduled : t -> int
(** Total intervals handed out; a proxy for interrupt overhead. *)

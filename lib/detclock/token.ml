type ordering = Round_robin | Instruction_count

type t = {
  ex : Sim.Exec.t;
  clocks : Logical_clock.t;
  ordering : ordering;
  mutable holder_tid : int; (* -1 = free *)
  mutable rr_turn : int; (* tid whose turn is next under round-robin *)
  mutable last_release_published : int;
  mutable acquisitions : int;
  mutable wakeups : int; (* wakeup events posted by poke *)
}

let create ex clocks ordering =
  {
    ex;
    clocks;
    ordering;
    holder_tid = -1;
    rr_turn = 0;
    last_release_published = 0;
    acquisitions = 0;
    wakeups = 0;
  }

let ordering t = t.ordering
let holder t = if t.holder_tid < 0 then None else Some t.holder_tid
let is_waiting t ~tid = Logical_clock.is_waiting t.clocks ~tid
let waiting_count t = Logical_clock.waiting_count t.clocks
let last_release_published t = t.last_release_published
let acquisitions t = t.acquisitions
let wakeups t = t.wakeups

(* The unique thread that could take a free token right now, or -1: the
   GMIC thread under instruction-count ordering, the round-robin
   successor otherwise.  Both are O(1)/O(threads) index reads — no list
   is built. *)
let eligible_tid t =
  if t.holder_tid >= 0 then -1
  else
    match t.ordering with
    | Instruction_count -> Logical_clock.gmic_tid t.clocks
    | Round_robin -> Logical_clock.rr_successor t.clocks ~turn:t.rr_turn

let eligible_now t =
  let w = eligible_tid t in
  if w < 0 then None else Some w

(* Direct handoff: compute the unique eligible thread from the index and,
   if it is waiting, wake exactly that thread.  One engine event per
   token transfer — never a broadcast over the waiter set. *)
let poke t =
  let w = eligible_tid t in
  if w >= 0 && Logical_clock.is_waiting t.clocks ~tid:w then begin
    t.wakeups <- t.wakeups + 1;
    t.ex.Sim.Exec.wakeup w
  end

let wait t ~tid =
  Logical_clock.set_waiting t.clocks ~tid true;
  while not (t.holder_tid < 0 && eligible_tid t = tid) do
    t.ex.Sim.Exec.block ~reason:"token"
  done;
  Logical_clock.set_waiting t.clocks ~tid false;
  t.holder_tid <- tid;
  t.acquisitions <- t.acquisitions + 1

let release t ~tid =
  if t.holder_tid <> tid then
    invalid_arg (Printf.sprintf "Token.release: tid %d does not hold the token" tid);
  t.holder_tid <- -1;
  (match Logical_clock.published_of t.clocks ~tid with
  | Some published -> t.last_release_published <- published
  | None -> ());
  (match t.ordering with
  | Round_robin -> t.rr_turn <- tid + 1
  | Instruction_count -> ());
  poke t

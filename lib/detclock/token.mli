(** The global token (paper sections 2.1, 4).

    Every deterministic event — lock, unlock, barrier, condition-variable
    operation, thread create/join/exit, commit — requires holding the
    single global token.  Who may take a free token is decided by the
    ordering policy:

    - {e Instruction_count} (Consequence-IC): only the GMIC thread of the
      {!Logical_clock} registry may take it (Kendo-style ordering).
    - {e Round_robin} (DThreads, DWC, Consequence-RR): the token visits
      live, non-departed threads in thread-id order; it moves on only when
      its current turn-holder performs a synchronization operation.

    Both policies compute a unique eligible thread from deterministic
    state (published instruction counts / turn counter), which is what
    makes the synchronization order deterministic.

    The token does not watch clock state on its own: callers must {!poke}
    it after any change that could alter eligibility (tick, depart,
    arrive, finish).  The runtime's chunk executor does this at every
    publication point, mirroring the kernel module that notifies a newly
    appointed GMIC thread (section 3.4). *)

type ordering = Round_robin | Instruction_count

type t

(** The execution substrate ({!Sim.Exec.t}) supplies block/wakeup: the
    DES engine in simulation, the domain scheduler under real-multicore
    execution.  Eligibility itself depends only on deterministic clock
    state, never on the substrate. *)
val create : Sim.Exec.t -> Logical_clock.t -> ordering -> t
val ordering : t -> ordering

val wait : t -> tid:int -> unit
(** The paper's [waitToken()]: block until this thread is the eligible
    taker and the token is free, then take it.  Must be called from the
    fiber whose id is [tid]. *)

val release : t -> tid:int -> unit
(** The paper's [releaseToken()].  Records the releaser's published clock
    (for fast-forward) and, under round-robin, advances the turn.  Raises
    if [tid] does not hold the token. *)

val holder : t -> int option

val eligible_now : t -> int option
(** The thread that could take the token right now (whether or not it is
    waiting); [None] if the token is held or no thread is active. *)

val is_waiting : t -> tid:int -> bool

val waiting_count : t -> int

val poke : t -> unit
(** Re-evaluate eligibility and wake the winning waiter, if any.  Call
    after clock publications, departures, arrivals and thread exits.
    O(1) under instruction-count ordering: the winner is read off the
    clock registry's incremental GMIC index, and exactly that thread is
    woken (direct handoff — one engine event per token transfer). *)

val last_release_published : t -> int
(** Published clock of the most recent releaser — the fast-forward target
    (section 3.5).  0 before any release. *)

val acquisitions : t -> int
(** Total successful acquisitions (a determinism-independent load metric). *)

val wakeups : t -> int
(** Total wakeup events posted by {!poke}: with direct handoff this
    counts exactly one per token transfer to a blocked waiter (plus any
    eligibility changes that re-notify a not-yet-blocked winner). *)

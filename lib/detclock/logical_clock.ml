(* Clock registry with two incremental indexes:

   - the {e active} index, a binary min-heap keyed by (published, tid)
     over live non-departed clocks, so [gmic]/[is_gmic] are O(1) root
     reads instead of a Hashtbl fold per query;
   - the {e waiting} index, the same structure restricted to clocks the
     token has marked as waiting, so the adaptive-overflow gap query is
     also O(1).

   Every mutation ([tick], [fast_forward], [depart], [arrive], [finish],
   [set_waiting]) maintains both heaps in O(log n).  Clocks carry their
   positions in each heap, so removal and re-keying need no search. *)

type clock = {
  tid : int;
  mutable published : int;
  mutable paused : bool;
  mutable departed : bool;
  mutable finished : bool;
  mutable waiting : bool; (* marked by the token while in Token.wait *)
  pos : int array; (* [| active slot; waiting slot |]; -1 = absent *)
  owner : registry;
}

and registry = { clocks : (int, clock) Hashtbl.t; active : index; waitq : index }

and index = { slot : int; mutable heap : clock array; mutable size : int }

type t = registry

let slot_active = 0
let slot_waiting = 1

(* ------------------------------------------------------------------ *)
(* Indexed binary heap over (published, tid)                          *)
(* ------------------------------------------------------------------ *)

let lt a b = a.published < b.published || (a.published = b.published && a.tid < b.tid)

let ix_place ix i c =
  ix.heap.(i) <- c;
  c.pos.(ix.slot) <- i

let rec ix_sift_up ix i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if lt ix.heap.(i) ix.heap.(p) then begin
      let ci = ix.heap.(i) and cp = ix.heap.(p) in
      ix_place ix i cp;
      ix_place ix p ci;
      ix_sift_up ix p
    end
  end

let rec ix_sift_down ix i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < ix.size && lt ix.heap.(l) ix.heap.(i) then l else i in
  let m = if r < ix.size && lt ix.heap.(r) ix.heap.(m) then r else m in
  if m <> i then begin
    let ci = ix.heap.(i) and cm = ix.heap.(m) in
    ix_place ix i cm;
    ix_place ix m ci;
    ix_sift_down ix m
  end

let ix_insert ix c =
  if c.pos.(ix.slot) < 0 then begin
    if ix.size = Array.length ix.heap then begin
      let new_cap = if ix.size = 0 then 8 else ix.size * 2 in
      let fresh = Array.make new_cap c in
      Array.blit ix.heap 0 fresh 0 ix.size;
      ix.heap <- fresh
    end;
    ix_place ix ix.size c;
    ix.size <- ix.size + 1;
    ix_sift_up ix (ix.size - 1)
  end

let ix_remove ix c =
  let p = c.pos.(ix.slot) in
  if p >= 0 then begin
    c.pos.(ix.slot) <- -1;
    ix.size <- ix.size - 1;
    if p < ix.size then begin
      ix_place ix p ix.heap.(ix.size);
      (* The moved entry may violate the heap property in either
         direction relative to its new neighbourhood. *)
      ix_sift_down ix p;
      ix_sift_up ix p
    end
  end

(* The clock's key grew (tick / fast_forward): restore heap order
   downward only. *)
let ix_key_increased ix c =
  let p = c.pos.(ix.slot) in
  if p >= 0 then ix_sift_down ix p

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let create () =
  {
    clocks = Hashtbl.create 32;
    active = { slot = slot_active; heap = [||]; size = 0 };
    waitq = { slot = slot_waiting; heap = [||]; size = 0 };
  }

let register t ~tid =
  (match Hashtbl.find_opt t.clocks tid with
  | Some c when not c.finished ->
      invalid_arg (Printf.sprintf "Logical_clock.register: tid %d already live" tid)
  | Some _ | None -> ());
  let c =
    {
      tid;
      published = 0;
      paused = false;
      departed = false;
      finished = false;
      waiting = false;
      pos = [| -1; -1 |];
      owner = t;
    }
  in
  Hashtbl.replace t.clocks tid c;
  ix_insert t.active c;
  c

let tid c = c.tid
let published c = c.published

let tick c n =
  if c.paused then invalid_arg "Logical_clock.tick: clock is paused";
  if c.finished then invalid_arg "Logical_clock.tick: clock is finished";
  if n < 0 then invalid_arg "Logical_clock.tick: negative tick";
  c.published <- c.published + n;
  ix_key_increased c.owner.active c;
  ix_key_increased c.owner.waitq c

let pause c = c.paused <- true
let resume c = c.paused <- false
let is_paused c = c.paused

let depart c =
  if not c.departed then begin
    c.departed <- true;
    ix_remove c.owner.active c;
    ix_remove c.owner.waitq c
  end

let arrive c =
  if c.departed then begin
    c.departed <- false;
    if not c.finished then begin
      ix_insert c.owner.active c;
      if c.waiting then ix_insert c.owner.waitq c
    end
  end

let is_departed c = c.departed

let finish c =
  if not c.finished then begin
    c.finished <- true;
    c.waiting <- false;
    ix_remove c.owner.active c;
    ix_remove c.owner.waitq c
  end

let is_finished c = c.finished

let fast_forward c ~to_count =
  if to_count > c.published then begin
    c.published <- to_count;
    ix_key_increased c.owner.active c;
    ix_key_increased c.owner.waitq c;
    true
  end
  else false

let active c = (not c.finished) && not c.departed

(* Lexicographic (published, tid) minimum over active clocks: the root
   of the active index. *)
let gmic t = if t.active.size = 0 then None else Some t.active.heap.(0).tid

let gmic_tid t = if t.active.size = 0 then -1 else t.active.heap.(0).tid

let is_active t ~tid =
  match Hashtbl.find_opt t.clocks tid with None -> false | Some c -> active c

let is_gmic t ~tid = t.active.size > 0 && t.active.heap.(0).tid = tid

let published_of t ~tid =
  match Hashtbl.find_opt t.clocks tid with
  | Some c when not c.finished -> Some c.published
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Token-waiter index                                                 *)
(* ------------------------------------------------------------------ *)

let set_waiting t ~tid waiting =
  match Hashtbl.find_opt t.clocks tid with
  | None -> invalid_arg (Printf.sprintf "Logical_clock.set_waiting: unknown tid %d" tid)
  | Some c ->
      if waiting && not c.finished then begin
        c.waiting <- true;
        if not c.departed then ix_insert t.waitq c
      end
      else begin
        c.waiting <- false;
        ix_remove t.waitq c
      end

let is_waiting t ~tid =
  match Hashtbl.find_opt t.clocks tid with
  | None -> false
  | Some c -> c.pos.(slot_waiting) >= 0

let waiting_count t = t.waitq.size

let next_waiting_gap t ~tid =
  let n = t.waitq.size in
  if n = 0 then 0
  else begin
    (* Minimal (published, tid) among waiters other than [tid]; when
       [tid] is the root, the runner-up is one of its two children. *)
    let w =
      let root = t.waitq.heap.(0) in
      if root.tid <> tid then root
      else if n = 1 then root
      else begin
        let l = t.waitq.heap.(1) in
        if n > 2 && lt t.waitq.heap.(2) l then t.waitq.heap.(2) else l
      end
    in
    if w.tid = tid then 0
    else
      match Hashtbl.find_opt t.clocks tid with
      | None -> 0
      | Some me -> w.published - me.published + 1
  end

(* ------------------------------------------------------------------ *)
(* Round-robin successor                                              *)
(* ------------------------------------------------------------------ *)

(* First active tid >= turn, wrapping to the smallest active tid; -1 if
   no clock is active.  A single scan over the active index's backing
   array: no list is built (the index is unordered by tid, so a scan is
   as good as it gets without a third index — n is the thread count). *)
let rr_successor t ~turn =
  let best_ge = ref max_int and best_all = ref max_int in
  for i = 0 to t.active.size - 1 do
    let tid = t.active.heap.(i).tid in
    if tid < !best_all then best_all := tid;
    if tid >= turn && tid < !best_ge then best_ge := tid
  done;
  if !best_ge < max_int then !best_ge else if !best_all < max_int then !best_all else -1

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let live_count t =
  Hashtbl.fold (fun _ c n -> if c.finished then n else n + 1) t.clocks 0

let active_count t = t.active.size

let counts t =
  Hashtbl.fold (fun _ c acc -> if c.finished then acc else (c.tid, c.published) :: acc) t.clocks []
  |> List.sort compare

type kind = Adaptive of { base : int; cap : int } | Fixed of int

type t = { kind : kind; mutable interval : int; mutable scheduled : int }

let default_base = 5_000
let default_cap = 60_000

let create kind =
  let interval = match kind with Adaptive { base; cap } -> min base cap | Fixed n -> n in
  if interval <= 0 then invalid_arg "Overflow_policy.create: interval must be > 0";
  { kind; interval; scheduled = 0 }

let kind t = t.kind

let begin_chunk t =
  match t.kind with
  | Adaptive { base; cap } -> t.interval <- min base cap
  | Fixed _ -> ()

let next_interval t ~waiter_gap =
  t.scheduled <- t.scheduled + 1;
  match t.kind with
  | Fixed n -> n
  | Adaptive _ ->
      if waiter_gap > 0 then begin
        (* Rule 2: overflow exactly when our clock exceeds the waiter's. *)
        t.interval <- waiter_gap;
        waiter_gap
      end
      else begin
        (* Rule 3: nobody to notify soon; back off exponentially, but
           bounded so waiters are never stranded behind a huge
           interval. *)
        let cap = match t.kind with Adaptive { cap; _ } -> cap | Fixed n -> n in
        let n = t.interval in
        t.interval <- min cap (t.interval * 2);
        n
      end

let overflows_scheduled t = t.scheduled

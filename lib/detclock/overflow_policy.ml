type kind =
  | Adaptive of { base : int; cap : int }
  | Fixed of int
  | Scripted of int array

type t = {
  mutable kind : kind;
  mutable interval : int;
  mutable scheduled : int;
  mutable cursor : int;
}

let default_base = 5_000
let default_cap = 60_000

(* Returned when a scripted schedule is exhausted: far beyond any chunk
   length, so the thread publishes only at program-determined sync ops,
   but small enough that interval arithmetic cannot overflow. *)
let horizon = max_int lsr 1

let create kind =
  let interval =
    match kind with Adaptive { base; cap } -> min base cap | Fixed n -> n | Scripted _ -> horizon
  in
  if interval <= 0 then invalid_arg "Overflow_policy.create: interval must be > 0";
  (match kind with
  | Scripted b ->
      let ok = ref true in
      Array.iteri (fun i x -> if x <= 0 || (i > 0 && x <= b.(i - 1)) then ok := false) b;
      if not !ok then
        invalid_arg "Overflow_policy.create: scripted boundaries must be positive and ascending"
  | Adaptive _ | Fixed _ -> ());
  { kind; interval; scheduled = 0; cursor = 0 }

let kind t = t.kind

let begin_chunk t =
  match t.kind with
  | Adaptive { base; cap } -> t.interval <- min base cap
  | Fixed _ | Scripted _ -> ()

let next_interval ?(ic = 0) t ~waiter_gap =
  t.scheduled <- t.scheduled + 1;
  match t.kind with
  | Fixed n -> n
  | Scripted b ->
      (* Forced-boundary replay (lib/replay): overflow exactly at the
         next recorded retired-instruction count, skipping boundaries the
         thread has already passed (a chunk-end counter read may have
         published at or beyond one). *)
      let n = Array.length b in
      while t.cursor < n && b.(t.cursor) <= ic do
        t.cursor <- t.cursor + 1
      done;
      if t.cursor < n then b.(t.cursor) - ic else horizon
  | Adaptive _ ->
      if waiter_gap > 0 then begin
        (* Rule 2: overflow exactly when our clock exceeds the waiter's. *)
        t.interval <- waiter_gap;
        waiter_gap
      end
      else begin
        (* Rule 3: nobody to notify soon; back off exponentially, but
           bounded so waiters are never stranded behind a huge
           interval. *)
        let cap = match t.kind with Adaptive { cap; _ } -> cap | Fixed n -> n | Scripted _ -> horizon in
        let n = t.interval in
        t.interval <- min cap (t.interval * 2);
        n
      end

let retarget t ~base ~cap =
  if base <= 0 || cap < base then invalid_arg "Overflow_policy.retarget: need 0 < base <= cap";
  match t.kind with
  | Adaptive _ ->
      t.kind <- Adaptive { base; cap };
      t.interval <- min base cap
  | Fixed _ -> t.kind <- Fixed base
  | Scripted _ ->
      (* A scripted schedule is a replay contract: recorded boundaries
         win over knob changes (the controller's decisions are re-applied
         but the boundary stream is already pinned). *)
      ()

let overflows_scheduled t = t.scheduled

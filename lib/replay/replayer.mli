(** The replay half of record/replay: log-driven re-execution with an
    online divergence detector.

    Replaying a {!Schedule} log re-runs its program under the recorded
    preset, seed and thread count, with the recorded {e decisions}
    substituted for the policies that produced them:

    - deterministic presets run with
      {!Runtime.Config.with_scripted_schedule}, which forces every
      counter-overflow chunk boundary at its recorded
      retired-instruction count instead of letting the adaptive overflow
      policy choose — chunk-end boundaries fall out of the program's own
      sync ops, so this pins the entire schedule;
    - [pthreads] re-runs under the recorded seed, which alone determines
      the simulated interleaving.

    While the replay runs, a checker observer compares every emitted
    {!Runtime.Rt_event} against the log, element by element: token-order
    edges, chunk boundaries and their instruction counts, commit version
    ids, and the per-commit workspace digests ([Commit_hash]).  The
    first mismatch is reported with its thread, chunk index and a window
    of surrounding log events — enough to localize {e where} an
    execution left the recorded schedule, not merely that it did.

    Logs recorded under the real-multicore [domains] preset re-execute
    on the scripted DES like any deterministic preset, but skip the
    event-by-event walk: a real-time backend's global event interleave
    is timing-dependent (waiters emit on physical wakeup; intermediate
    overflow publications vary in count and position), so faithfulness
    is judged by the witness hashes alone and [checked] is 0. *)

type divergence = {
  index : int;  (** position in the event stream of the first mismatch *)
  tid : int;  (** thread the divergent event belongs to *)
  chunk_index : int;  (** 0-based chunk ordinal of [tid] at the divergence *)
  expected : Runtime.Rt_event.t option;  (** [None]: the replay emitted extra events *)
  actual : Runtime.Rt_event.t option;  (** [None]: the replay ended early *)
  context : (int * Runtime.Rt_event.t) list;  (** recorded events around [index] *)
}

type outcome = {
  result : Stats.Run_result.t;
  divergence : divergence option;
  checked : int;  (** events that matched before the divergence (all, if none) *)
  hash_match : bool;  (** final witnesses equal the recorded ones *)
}

val runtime_of : Schedule.t -> Runtime.Run.runtime
(** The runtime a log replays under: the preset named by its metadata,
    scripted with the log's boundaries for deterministic presets.
    Raises [Invalid_argument] if the name matches no preset (e.g. a log
    recorded under an ablation config). *)

val replay :
  ?costs:Runtime.Cost_model.t ->
  ?runtime:Runtime.Run.runtime ->
  Schedule.t ->
  Api.t ->
  outcome
(** Replay [program] against the log.  [runtime] overrides
    {!runtime_of} (for replaying a log recorded under a non-preset
    config).  [costs] must match the recording run (default cost model
    on both sides). *)

val ok : outcome -> bool
(** No divergence and matching final witnesses. *)

val pp_divergence : Format.formatter -> divergence -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** Bounded schedule exploration (DPOR-lite) over a recorded log.

    The paper's central claim is that chunk-boundary placement — where
    performance-counter overflows publish a thread's logical clock — is
    a pure {e real-time} decision: any placement yields the same
    deterministic execution, because token order derives from the
    program's own sync ops, and publication timing only changes how long
    waiters wait.  That makes every perturbation of a recorded boundary
    schedule a {e legal} schedule, and the space of perturbations an
    exploration space with a strong expected invariant.

    The explorer perturbs a recorded log's per-thread boundary arrays —
    splitting a boundary gap in two, merging a boundary away, shifting
    one within its gap — replays each variant scripted, and cross-checks:

    - the final witnesses ([mem|sync|out] hashes) must be {b identical}
      across the whole neighborhood: a variant that disagrees is a
      determinism bug localized to a specific boundary edit;
    - the {!Race} detector's conflict verdicts must be stable: merge
      conflicts and their racy/sync-ordered classification derive from
      commit content, not boundary placement;
    - the simulated wall times and interrupt counts {e should} differ —
      the evidence that the variants genuinely ran different schedules
      rather than collapsing back to the recording. *)

type variant = {
  description : string;  (** the boundary edit, e.g. ["t2: shift boundary 3 ..."] *)
  wall_ns : int;
  overflow_interrupts : int;
  witness : string;  (** [mem:..|sync:..|out:..] of the variant run *)
  racy : int;  (** racy conflict verdicts from the race detector *)
  sync_ordered : int;
}

type report = {
  base : variant;  (** the unperturbed scripted replay *)
  variants : variant list;
  distinct_timings : int;
      (** distinct [(wall_ns, overflow_interrupts)] pairs including the
          base: > 1 proves the explorer exercised genuinely different
          schedules *)
  distinct_witnesses : int;  (** including the base; 1 iff deterministic *)
  conflicts_stable : bool;  (** racy/sync-ordered counts equal across all runs *)
  deterministic : bool;  (** [distinct_witnesses = 1] *)
}

val explore :
  ?costs:Runtime.Cost_model.t ->
  ?config:Runtime.Config.t ->
  ?variants:int ->
  ?seed:int ->
  Schedule.t ->
  Api.t ->
  report
(** Generate up to [variants] (default 12) perturbed schedules with a
    PRNG seeded by [seed] (default 7; exploration itself is
    deterministic), replay each, and cross-check.  [config] overrides
    the preset lookup on the log's runtime name — the hook the offline
    auto-tuner ([Tune.Search]) uses to explore logs recorded under
    non-preset configs (e.g. a ["-tuned"] controller config).  Raises
    [Invalid_argument] for a [pthreads] log — its schedule is pinned by
    the seed alone and has no boundaries to perturb. *)

val to_json : report -> Obs.Json.t
val pp_report : Format.formatter -> report -> unit

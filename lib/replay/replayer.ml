module Ev = Runtime.Rt_event

type divergence = {
  index : int;
  tid : int;
  chunk_index : int;
  expected : Ev.t option;
  actual : Ev.t option;
  context : (int * Ev.t) list;
}

type outcome = {
  result : Stats.Run_result.t;
  divergence : divergence option;
  checked : int;
  hash_match : bool;
}

let runtime_of (log : Schedule.t) =
  let name = log.Schedule.meta.Schedule.runtime in
  match Runtime.Run.of_name name with
  | Some Runtime.Run.Pthreads -> Runtime.Run.Pthreads
  | Some (Runtime.Run.Det cfg) | Some (Runtime.Run.Domains cfg) ->
      (* Replay always re-executes on the DES: scripted boundaries make
         the run fully deterministic, which a real-time backend cannot
         honour for wall_ns. *)
      Runtime.Run.Det
        (Runtime.Config.with_scripted_schedule cfg ~boundaries:(Schedule.boundaries log))
  | None -> invalid_arg (Printf.sprintf "Replayer.runtime_of: unknown runtime preset %S" name)

(* Online checker state: events arrive in the same global order the
   recording observer saw them, so replay checking is a single cursor
   walk over the log. *)
type checker = {
  log : Schedule.t;
  mutable cursor : int;
  mutable first_divergence : divergence option;
}

let divergence_at ck ~index ~expected ~actual =
  let tid =
    match (expected, actual) with
    | Some ev, _ | None, Some ev -> Ev.tid ev
    | None, None -> -1
  in
  {
    index;
    tid;
    chunk_index = Schedule.chunk_of ck.log ~index ~tid;
    expected;
    actual;
    context = Schedule.context ck.log ~index ();
  }

let observe ck ev =
  let i = ck.cursor in
  ck.cursor <- i + 1;
  if ck.first_divergence = None then
    let n = Array.length ck.log.Schedule.events in
    if i >= n then
      ck.first_divergence <- Some (divergence_at ck ~index:i ~expected:None ~actual:(Some ev))
    else
      let expected = ck.log.Schedule.events.(i) in
      if expected <> ev then
        ck.first_divergence <-
          Some (divergence_at ck ~index:i ~expected:(Some expected) ~actual:(Some ev))

let replay ?costs ?runtime (log : Schedule.t) (program : Api.t) =
  let rt = match runtime with Some rt -> rt | None -> runtime_of log in
  (* The event-cursor walk only applies to logs recorded in DES event
     order.  A real-time backend's global interleave is
     timing-dependent — waiters emit their events when their domain
     physically wakes, and intermediate overflow publications change
     count and position with physical timing (only their *order* is
     pinned) — so for domains logs faithfulness is judged by the
     witness hashes alone. *)
  let check_events =
    match Runtime.Run.of_name log.Schedule.meta.Schedule.runtime with
    | Some (Runtime.Run.Domains _) -> false
    | _ -> true
  in
  let ck = { log; cursor = 0; first_divergence = None } in
  let observer = if check_events then Some (observe ck) else None in
  let res =
    Runtime.Run.run rt ?costs ~seed:log.Schedule.meta.Schedule.seed
      ~nthreads:log.Schedule.meta.Schedule.nthreads ?observer program
  in
  let n = Array.length log.Schedule.events in
  let divergence =
    match ck.first_divergence with
    | Some _ as d -> d
    | None when check_events && ck.cursor < n ->
        (* The replay's stream ended before the log did. *)
        Some
          (divergence_at ck ~index:ck.cursor
             ~expected:(Some log.Schedule.events.(ck.cursor))
             ~actual:None)
    | None -> None
  in
  let checked =
    match divergence with Some d -> min d.index n | None -> min ck.cursor n
  in
  let m = log.Schedule.meta in
  let hash_match =
    res.Stats.Run_result.mem_hash = m.Schedule.mem_hash
    && res.Stats.Run_result.sync_order_hash = m.Schedule.sync_order_hash
    && res.Stats.Run_result.output_hash = m.Schedule.output_hash
  in
  { result = res; divergence; checked; hash_match }

let ok o = o.divergence = None && o.hash_match

let pp_event_opt ppf = function
  | Some ev -> Ev.pp ppf ev
  | None -> Format.pp_print_string ppf "<nothing>"

let pp_divergence ppf d =
  Format.fprintf ppf
    "@[<v>divergence at event %d (thread %d, chunk %d)@,expected: %a@,actual:   %a@,context:"
    d.index d.tid d.chunk_index pp_event_opt d.expected pp_event_opt d.actual;
  List.iter
    (fun (i, ev) ->
      Format.fprintf ppf "@,  %c%5d  %a" (if i = d.index then '>' else ' ') i Ev.pp ev)
    d.context;
  Format.fprintf ppf "@]"

let pp_outcome ppf o =
  match o.divergence with
  | None ->
      Format.fprintf ppf "replay ok: %d events matched, witnesses %s" o.checked
        (if o.hash_match then "match" else "DIFFER")
  | Some d ->
      Format.fprintf ppf "@[<v>replay diverged after %d matching events@,%a@]" o.checked
        pp_divergence d

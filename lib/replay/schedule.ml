module Ev = Runtime.Rt_event

type meta = {
  program : string;
  runtime : string;
  nthreads : int;
  seed : int;
  wall_ns : int;
  mem_hash : string;
  sync_order_hash : string;
  output_hash : string;
}

type t = { meta : meta; events : Ev.t array }

let record rt ?costs ?seed ?nthreads (program : Api.t) =
  let acc = ref [] in
  let observer ev = acc := ev :: !acc in
  let res = Runtime.Run.run rt ?costs ?seed ?nthreads ~observer program in
  let events = Array.of_list (List.rev !acc) in
  let meta =
    {
      program = res.Stats.Run_result.program;
      runtime = res.Stats.Run_result.runtime;
      nthreads = res.Stats.Run_result.nthreads;
      seed = res.Stats.Run_result.seed;
      wall_ns = res.Stats.Run_result.wall_ns;
      mem_hash = res.Stats.Run_result.mem_hash;
      sync_order_hash = res.Stats.Run_result.sync_order_hash;
      output_hash = res.Stats.Run_result.output_hash;
    }
  in
  ({ meta; events }, res)

let length t = Array.length t.events

let witness t =
  Printf.sprintf "mem:%s|sync:%s|out:%s" t.meta.mem_hash t.meta.sync_order_hash
    t.meta.output_hash

let boundaries t =
  let max_tid =
    Array.fold_left
      (fun m ev -> match ev with Ev.Boundary { tid; overflow = true; _ } -> max m tid | _ -> m)
      (-1) t.events
  in
  let rev = Array.make (max_tid + 1) [] in
  Array.iter
    (function
      | Ev.Boundary { tid; ic; overflow = true } ->
          (* Guard against a malformed (hand-edited) log: scripted
             policies require strictly ascending boundaries. *)
          (match rev.(tid) with
          | prev :: _ when ic <= prev -> ()
          | _ -> rev.(tid) <- ic :: rev.(tid))
      | _ -> ())
    t.events;
  Array.map (fun l -> Array.of_list (List.rev l)) rev

let chunk_of t ~index ~tid =
  let n = min index (Array.length t.events) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    match t.events.(i) with
    | Ev.Boundary { tid = btid; overflow = false; _ } when btid = tid -> incr count
    | _ -> ()
  done;
  !count

let context t ~index ?(radius = 3) () =
  let n = Array.length t.events in
  let lo = max 0 (index - radius) and hi = min (n - 1) (index + radius) in
  let acc = ref [] in
  for i = hi downto lo do
    acc := (i, t.events.(i)) :: !acc
  done;
  !acc

let format_tag = "consequence-schedule"
let format_version = 1

let to_json t =
  let open Obs.Json in
  Obj
    [
      ("format", String format_tag);
      ("version", Int format_version);
      ("program", String t.meta.program);
      ("runtime", String t.meta.runtime);
      ("nthreads", Int t.meta.nthreads);
      ("seed", Int t.meta.seed);
      ("wall_ns", Int t.meta.wall_ns);
      ("mem_hash", String t.meta.mem_hash);
      ("sync_order_hash", String t.meta.sync_order_hash);
      ("output_hash", String t.meta.output_hash);
      ("events", List (Array.to_list (Array.map Ev.to_json t.events)));
    ]

let of_json j =
  let open Obs.Json in
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (member name j) to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "schedule: missing string field %S" name)
  in
  let int name =
    match Option.bind (member name j) to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "schedule: missing int field %S" name)
  in
  let* format = str "format" in
  if format <> format_tag then Error (Printf.sprintf "schedule: unknown format %S" format)
  else
    let* version = int "version" in
    if version <> format_version then
      Error (Printf.sprintf "schedule: unsupported version %d" version)
    else
      let* program = str "program" in
      let* runtime = str "runtime" in
      let* nthreads = int "nthreads" in
      let* seed = int "seed" in
      let* wall_ns = int "wall_ns" in
      let* mem_hash = str "mem_hash" in
      let* sync_order_hash = str "sync_order_hash" in
      let* output_hash = str "output_hash" in
      let* items =
        match Option.bind (member "events" j) to_list_opt with
        | Some l -> Ok l
        | None -> Error "schedule: missing \"events\" list"
      in
      let* events =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* ev = Ev.of_json item in
            Ok (ev :: acc))
          (Ok []) items
      in
      let meta =
        { program; runtime; nthreads; seed; wall_ns; mem_hash; sync_order_hash; output_hash }
      in
      Ok { meta; events = Array.of_list (List.rev events) }

let save t path = Obs.Json.to_file path (to_json t)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | raw -> Result.bind (Obs.Json.parse raw) of_json

let pp_meta ppf t =
  Format.fprintf ppf "@[<v>%s / %s: %d threads, seed %d@,%d events, witness %s@]"
    t.meta.program t.meta.runtime t.meta.nthreads t.meta.seed (length t) (witness t)

type variant = {
  description : string;
  wall_ns : int;
  overflow_interrupts : int;
  witness : string;
  racy : int;
  sync_ordered : int;
}

type report = {
  base : variant;
  variants : variant list;
  distinct_timings : int;
  distinct_witnesses : int;
  conflicts_stable : bool;
  deterministic : bool;
}

(* A plausible gap to open past the last recorded boundary (or for a
   thread that never overflowed): the adaptive policy's base interval,
   doubled so a split lands at the base. *)
let virtual_gap = 2 * Detclock.Overflow_policy.default_base

(* One random boundary edit; [None] when the drawn edit is infeasible
   (e.g. merging from an empty array).  The caller redraws. *)
let perturb prng (bounds : int array array) =
  let ntids = Array.length bounds in
  let tid = Sim.Prng.int prng ~bound:ntids in
  let b = bounds.(tid) in
  let len = Array.length b in
  let fresh nb =
    let copy = Array.map Array.copy bounds in
    copy.(tid) <- nb;
    copy
  in
  match Sim.Prng.int prng ~bound:3 with
  | 0 ->
      (* Split: insert a boundary in the middle of a gap (possibly the
         virtual gap past the end), shortening one chunk. *)
      let k = Sim.Prng.int prng ~bound:(len + 1) in
      let prev = if k = 0 then 0 else b.(k - 1) in
      let next = if k = len then prev + virtual_gap else b.(k) in
      if next - prev < 2 then None
      else
        let mid = prev + ((next - prev) / 2) in
        let nb =
          Array.init (len + 1) (fun i -> if i < k then b.(i) else if i = k then mid else b.(i - 1))
        in
        Some (Printf.sprintf "t%d: split gap %d, new boundary at ic %d" tid k mid, fresh nb)
  | 1 ->
      (* Merge: delete a boundary, fusing two publication intervals. *)
      if len = 0 then None
      else
        let k = Sim.Prng.int prng ~bound:len in
        let nb = Array.init (len - 1) (fun i -> if i < k then b.(i) else b.(i + 1)) in
        Some (Printf.sprintf "t%d: merge boundary %d (was ic %d)" tid k b.(k), fresh nb)
  | _ ->
      (* Shift: move a boundary anywhere strictly inside its gap. *)
      if len = 0 then None
      else
        let k = Sim.Prng.int prng ~bound:len in
        let lo = if k = 0 then 0 else b.(k - 1) in
        let hi = if k = len - 1 then b.(k) + virtual_gap else b.(k + 1) in
        if hi - lo < 3 then None
        else
          let nv = lo + 1 + Sim.Prng.int prng ~bound:(hi - lo - 1) in
          if nv = b.(k) then None
          else
            let nb = Array.copy b in
            nb.(k) <- nv;
            Some (Printf.sprintf "t%d: shift boundary %d from ic %d to %d" tid k b.(k) nv, fresh nb)

let base_config (log : Schedule.t) =
  let name = log.Schedule.meta.Schedule.runtime in
  match Runtime.Run.of_name name with
  | Some (Runtime.Run.Det cfg) | Some (Runtime.Run.Domains cfg) -> cfg
  | Some Runtime.Run.Pthreads ->
      invalid_arg "Explore.explore: pthreads logs have no chunk boundaries to perturb"
  | None -> invalid_arg (Printf.sprintf "Explore.explore: unknown runtime preset %S" name)

let run_variant ?costs (log : Schedule.t) cfg program ~description ~boundaries =
  let rt = Runtime.Run.Det (Runtime.Config.with_scripted_schedule cfg ~boundaries) in
  let det = Race.Detector.create () in
  let res =
    Runtime.Run.run rt ?costs ~seed:log.Schedule.meta.Schedule.seed
      ~nthreads:log.Schedule.meta.Schedule.nthreads
      ~observer:(Race.Detector.observer det) program
  in
  {
    description;
    wall_ns = res.Stats.Run_result.wall_ns;
    overflow_interrupts = res.Stats.Run_result.overflow_interrupts;
    witness = Stats.Run_result.deterministic_witness res;
    racy = Race.Detector.racy det;
    sync_ordered = Race.Detector.sync_ordered det;
  }

let distinct_by f rs =
  List.length (List.sort_uniq compare (List.map f rs))

let explore ?costs ?config ?(variants = 12) ?(seed = 7) (log : Schedule.t) (program : Api.t) =
  let cfg = match config with Some c -> c | None -> base_config log in
  let recorded = Schedule.boundaries log in
  (* Threads that never overflowed still deserve perturbation: pad the
     candidate set to the recorded thread count. *)
  let nthreads = max (Array.length recorded) log.Schedule.meta.Schedule.nthreads in
  let bounds =
    Array.init nthreads (fun i -> if i < Array.length recorded then recorded.(i) else [||])
  in
  let base =
    run_variant ?costs log cfg program ~description:"recorded schedule" ~boundaries:bounds
  in
  let prng = Sim.Prng.create ~seed in
  let out = ref [] in
  let attempts = ref 0 in
  while List.length !out < variants && !attempts < variants * 8 do
    incr attempts;
    match perturb prng bounds with
    | None -> ()
    | Some (description, boundaries) ->
        out := run_variant ?costs log cfg program ~description ~boundaries :: !out
  done;
  let vs = List.rev !out in
  let all = base :: vs in
  let distinct_witnesses = distinct_by (fun v -> v.witness) all in
  {
    base;
    variants = vs;
    distinct_timings = distinct_by (fun v -> (v.wall_ns, v.overflow_interrupts)) all;
    distinct_witnesses;
    conflicts_stable = distinct_by (fun v -> (v.racy, v.sync_ordered)) all = 1;
    deterministic = distinct_witnesses = 1;
  }

let variant_to_json v =
  let open Obs.Json in
  Obj
    [
      ("description", String v.description);
      ("wall_ns", Int v.wall_ns);
      ("overflow_interrupts", Int v.overflow_interrupts);
      ("witness", String v.witness);
      ("racy", Int v.racy);
      ("sync_ordered", Int v.sync_ordered);
    ]

let to_json r =
  let open Obs.Json in
  Obj
    [
      ("base", variant_to_json r.base);
      ("variants", List (List.map variant_to_json r.variants));
      ("distinct_timings", Int r.distinct_timings);
      ("distinct_witnesses", Int r.distinct_witnesses);
      ("conflicts_stable", Bool r.conflicts_stable);
      ("deterministic", Bool r.deterministic);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>explored %d variants: %d distinct timings, %d distinct witnesses, conflicts %s => %s"
    (List.length r.variants) r.distinct_timings r.distinct_witnesses
    (if r.conflicts_stable then "stable" else "UNSTABLE")
    (if r.deterministic then "deterministic" else "NONDETERMINISTIC");
  List.iter
    (fun v ->
      Format.fprintf ppf "@,  %-48s wall %d ns, %d overflows" v.description v.wall_ns
        v.overflow_interrupts)
    r.variants;
  Format.fprintf ppf "@]"

(** Schedule logs: the record half of record/replay.

    A schedule log captures every deterministic decision of a run as the
    {!Runtime.Rt_event} stream the runtime already emits in commit/token
    order: token-grant effects (Acquire/Release edges), chunk boundaries
    (Boundary events with per-thread retired-instruction counts, split
    into overflow interrupts and chunk-end counter reads), commit version
    ids with their page sets, per-commit workspace digests (Commit_hash),
    and merge conflicts.  Together with the run's seed this pins the
    execution completely:

    - on the deterministic runtimes the overflow boundaries are the only
      decisions not already implied by program + seed, and {!boundaries}
      extracts them in the exact shape
      {!Runtime.Config.with_scripted_schedule} consumes;
    - on [pthreads] the simulated interleaving is a function of the seed
      alone, so a recorded log {e pins} a lucky or unlucky interleaving:
      re-running with the same seed must reproduce the event stream
      byte-for-byte, and {!Replayer} checks that it does.

    Logs serialize to a self-contained JSON document (conventionally
    [<name>.schedule.json]) and round-trip through {!to_json}/{!of_json}
    using the same per-event schema as the trace exporters. *)

type meta = {
  program : string;
  runtime : string;  (** preset name, e.g. ["consequence-ic"] or ["pthreads"] *)
  nthreads : int;
  seed : int;
  wall_ns : int;  (** simulated wall time of the recorded run *)
  mem_hash : string;
  sync_order_hash : string;
  output_hash : string;
}

type t = { meta : meta; events : Runtime.Rt_event.t array }

val record :
  Runtime.Run.runtime ->
  ?costs:Runtime.Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  Api.t ->
  t * Stats.Run_result.t
(** Run [program] under [runtime] with a collecting observer attached and
    return the schedule log plus the run result.  Recording is
    observer-only: it charges no simulated time, so the recorded
    [wall_ns] and witnesses are identical to an untracked run (the
    determinism-neutrality property the test suite asserts). *)

val length : t -> int
val witness : t -> string
(** [mem:<h>|sync:<h>|out:<h>], same shape as
    {!Stats.Run_result.deterministic_witness}. *)

val boundaries : t -> int array array
(** Per-thread ascending retired-instruction counts of the {e overflow}
    boundaries ([Boundary { overflow = true; _ }]), indexed by tid —
    exactly the argument of {!Runtime.Config.with_scripted_schedule}.
    Chunk-end boundaries are excluded: they are placed by the program's
    own sync ops and need no forcing.  Empty arrays for threads that
    never overflowed; [[||]] for a pthreads log. *)

val chunk_of : t -> index:int -> tid:int -> int
(** The 0-based chunk ordinal of thread [tid] at event position [index]:
    the number of chunk-end boundaries [tid] recorded strictly before
    [index].  Used to localize divergences. *)

val context : t -> index:int -> ?radius:int -> unit -> (int * Runtime.Rt_event.t) list
(** The recorded events within [radius] (default 3) positions of
    [index], with their stream positions. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val pp_meta : Format.formatter -> t -> unit

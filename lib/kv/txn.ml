type kind = Update | Snapshot

type t = {
  seq : int;
  kind : kind;
  reads : (int * int) list;
  writes : int list;
}

let max_reads = 8
let max_writes = 8
let entries t = List.length t.reads + List.length t.writes

let check t =
  if List.length t.reads > max_reads then invalid_arg "Kv.Txn: too many read ranges";
  if List.length t.writes > max_writes then invalid_arg "Kv.Txn: too many write keys";
  List.iter
    (fun (k, len) ->
      if len <= 0 || k < 0 || k + len > Layout.n_keys then
        invalid_arg (Printf.sprintf "Kv.Txn: read range [%d, %d) out of keyspace" k (k + len)))
    t.reads;
  List.iter
    (fun k ->
      if k < 0 || k >= Layout.n_keys then invalid_arg (Printf.sprintf "Kv.Txn: write key %d" k))
    t.writes;
  let rec dup = function [] -> false | k :: rest -> List.mem k rest || dup rest in
  if dup t.writes then invalid_arg "Kv.Txn: duplicate write key";
  if t.kind = Snapshot && t.writes <> [] then invalid_arg "Kv.Txn: snapshot txn with writes"

(* The update semantics: every write key's new value depends on the sum
   over the read set, so a serialization error (reading state a serial
   execution would not produce) changes bytes downstream — exactly what
   the serializability oracle checks. *)
let new_value ~old ~read_sum ~seq ~nth = old + read_sum + (seq * 31) + nth

let pp ppf t =
  Format.fprintf ppf "@[txn#%d %s r[%s] w[%s]@]" t.seq
    (match t.kind with Update -> "upd" | Snapshot -> "snap")
    (String.concat ";" (List.map (fun (k, l) -> Printf.sprintf "%d+%d" k l) t.reads))
    (String.concat ";" (List.map string_of_int t.writes))

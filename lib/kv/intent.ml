(* Wire format of a thread's published round intents (its region from
   {!Layout.intent_addr}), one 8-byte little-endian word per entry:

     word 0            ntxns in this round
     per transaction:  header  = seq*2^16 + nreads*2^8 + nwrites
                       read i  = ver*2^16 + key*2^8 + len   (ver mod 2^16)
                       write i = key

   Counts drive parsing, so stale words from earlier (longer) rounds are
   ignored.  The recorded read versions are the TL2 read-set stamps; the
   validation fold never needs to re-read them from memory because a
   version word can only have been bumped this round by an
   earlier-ordered committed write — which is exactly the write-set
   marking {!Validate.fold} performs. *)

type read_entry = { key : int; len : int; ver : int }
type txn_intent = { seq : int; reads : read_entry list; writes : int list }

let words_for txns =
  1 + List.fold_left (fun acc (t : txn_intent) -> acc + 1 + List.length t.reads + List.length t.writes) 0 txns

let encode txns =
  let nwords = words_for txns in
  let buf = Bytes.create (nwords * 8) in
  let pos = ref 0 in
  let put v =
    Bytes.set_int64_le buf (!pos * 8) (Int64.of_int v);
    incr pos
  in
  put (List.length txns);
  List.iter
    (fun t ->
      let nr = List.length t.reads and nw = List.length t.writes in
      put ((t.seq * 65536) + (nr * 256) + nw);
      List.iter (fun r -> put (((r.ver land 0xFFFF) * 65536) + (r.key * 256) + r.len)) t.reads;
      List.iter put t.writes)
    txns;
  buf

let decode buf =
  let word i = Int64.to_int (Bytes.get_int64_le buf (i * 8)) in
  let pos = ref 0 in
  let take () =
    let v = word !pos in
    incr pos;
    v
  in
  let ntxns = take () in
  List.init ntxns (fun _ ->
      let h = take () in
      let seq = h / 65536 and nr = h / 256 mod 256 and nw = h mod 256 in
      let reads =
        List.init nr (fun _ ->
            let e = take () in
            { ver = e / 65536; key = e / 256 mod 256; len = e mod 256 })
      in
      let writes = List.init nw (fun _ -> take ()) in
      { seq; reads; writes })

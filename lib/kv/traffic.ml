type shape = Uniform | Zipf | Hot | Read_mostly | Write_heavy | Scan

let all = [ Uniform; Zipf; Hot; Read_mostly; Write_heavy; Scan ]

let name = function
  | Uniform -> "kv_uniform"
  | Zipf -> "kv_zipf"
  | Hot -> "kv_hot"
  | Read_mostly -> "kv_read"
  | Write_heavy -> "kv_write"
  | Scan -> "kv_scan"

let index = function
  | Uniform -> 0
  | Zipf -> 1
  | Hot -> 2
  | Read_mostly -> 3
  | Write_heavy -> 4
  | Scan -> 5

let description = function
  | Uniform -> "uniformly random point gets/updates"
  | Zipf -> "Zipfian-skewed key popularity (s=1.2)"
  | Hot -> "hot-key contention: 4 keys take most of the write traffic"
  | Read_mostly -> "90% snapshot reads, 10% updates"
  | Write_heavy -> "85% multi-key updates"
  | Scan -> "range scans interleaved with scan+update transactions"

let of_name n = List.find_opt (fun s -> name s = n) all

(* Traffic streams are a function of (shape, thread) only — NOT of the
   runtime seed — so the transaction mix, and therefore the witness, is
   identical across runtimes and seeds.  The seed may legitimately move
   wall_ns and latency histograms, never the requests themselves. *)
let prng shape ~tid = Sim.Prng.create ~seed:(((index shape + 1) * 1_000_003) + (tid * 7_919) + 17)

(* Zipf(s) over the keyspace by inverse-CDF lookup, with the rank order
   scattered by an odd multiplier so popular keys spread over pages
   (except under [Hot], which concentrates on purpose). *)
let zipf_cdf =
  lazy
    (let s = 1.2 in
     let n = Layout.n_keys in
     let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
     let total = Array.fold_left ( +. ) 0.0 w in
     let acc = ref 0.0 in
     Array.map
       (fun x ->
         acc := !acc +. (x /. total);
         !acc)
       w)

let zipf_key prng =
  let cdf = Lazy.force zipf_cdf in
  let u = Sim.Prng.float prng in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo * 97 mod Layout.n_keys

let uniform_key prng = Sim.Prng.int prng ~bound:Layout.n_keys
let hot_key prng = Sim.Prng.int prng ~bound:4 * 16 (* keys 0,16,32,48 *)

(* [n] distinct write keys drawn by [pick]; bounded deterministic
   rejection (falls back to a linear probe on collision). *)
let distinct_keys prng pick n =
  let rec add acc left =
    if left = 0 then List.rev acc
    else
      let k0 = pick prng in
      let rec free k = if List.mem k acc then free ((k + 1) mod Layout.n_keys) else k in
      add (free k0 :: acc) (left - 1)
  in
  add [] n

let point_reads prng pick n = List.init n (fun _ -> (pick prng, 1))

let scan_range prng len =
  let k = Sim.Prng.int prng ~bound:(Layout.n_keys - len + 1) in
  (k, len)

let update ~seq reads writes = { Txn.seq; kind = Txn.Update; reads; writes }
let snapshot ~seq reads = { Txn.seq; kind = Txn.Snapshot; reads; writes = [] }

let gen_one shape prng ~seq =
  let roll = Sim.Prng.int prng ~bound:100 in
  match shape with
  | Uniform ->
      if roll < 50 then
        update ~seq (point_reads prng uniform_key 2) (distinct_keys prng uniform_key 2)
      else if roll < 85 then snapshot ~seq (point_reads prng uniform_key 3)
      else snapshot ~seq [ scan_range prng 8 ]
  | Zipf ->
      if roll < 60 then update ~seq (point_reads prng zipf_key 2) (distinct_keys prng zipf_key 2)
      else snapshot ~seq (point_reads prng zipf_key 2)
  | Hot ->
      if roll < 70 then
        let wpick p = if Sim.Prng.int p ~bound:100 < 60 then hot_key p else uniform_key p in
        update ~seq
          [ (hot_key prng, 1); (uniform_key prng, 1) ]
          (distinct_keys prng wpick 1)
      else snapshot ~seq (point_reads prng uniform_key 2)
  | Read_mostly ->
      if roll < 10 then
        update ~seq (point_reads prng uniform_key 1) (distinct_keys prng uniform_key 1)
      else if roll < 70 then snapshot ~seq (point_reads prng uniform_key 3)
      else snapshot ~seq [ scan_range prng 8 ]
  | Write_heavy ->
      if roll < 85 then
        update ~seq (point_reads prng uniform_key 2) (distinct_keys prng uniform_key 3)
      else snapshot ~seq (point_reads prng uniform_key 2)
  | Scan ->
      if roll < 40 then snapshot ~seq [ scan_range prng 16 ]
      else if roll < 80 then
        update ~seq [ scan_range prng 4 ] (distinct_keys prng uniform_key 2)
      else snapshot ~seq (point_reads prng uniform_key 1)

let gen shape ~tid ~requests =
  let prng = prng shape ~tid in
  List.init requests (fun seq ->
      let t = gen_one shape prng ~seq in
      Txn.check t;
      t)

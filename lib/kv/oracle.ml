(* Strict-serializability oracle: replay every completed request
   SERIALLY in the equivalent serial order the protocol claims —
   (round; snapshots before the round's commits; then (priority, batch
   index)) — against a pure model of the store, and demand that every
   observed read sum, every per-thread completion checksum, and the
   final store image (values and version words) are reproduced
   byte-for-byte.  Any serialization error in the concurrent execution
   (a committed transaction observing non-serial state, a lost or
   phantom write, a snapshot reading a torn image) shows up as a
   mismatch. *)

type mismatch = { what : string }

let error fmt = Printf.ksprintf (fun s -> Error { what = s }) fmt

let serial_key nthreads (r : Service.record_) =
  let kind_rank = match r.rc_txn.Txn.kind with Txn.Snapshot -> 0 | Txn.Update -> 1 in
  let prio =
    match r.rc_txn.Txn.kind with
    | Txn.Snapshot -> r.rc_tid
    | Txn.Update -> Validate.priority_of ~round:r.rc_round ~nthreads r.rc_tid
  in
  (r.rc_round, kind_rank, prio, r.rc_batch)

let check (o : Service.outcome) =
  let n = o.oc_nthreads in
  let store = Array.init Layout.n_keys Layout.initial_value in
  let vers = Array.make Layout.n_keys 0 in
  let ordered = List.sort (fun a b -> compare (serial_key n a) (serial_key n b)) o.oc_records in
  let read_sum (t : Txn.t) =
    List.fold_left
      (fun acc (k, len) ->
        let s = ref acc in
        for i = k to k + len - 1 do
          s := !s + store.(i)
        done;
        !s)
      0 t.Txn.reads
  in
  let rec replay = function
    | [] -> Ok ()
    | (r : Service.record_) :: rest -> (
        let t = r.rc_txn in
        let expected = read_sum t in
        if expected <> r.rc_read_sum then
          error "t%d txn#%d (round %d): read sum %d, serial replay expects %d" r.rc_tid
            t.Txn.seq r.rc_round r.rc_read_sum expected
        else begin
          (match t.Txn.kind with
          | Txn.Snapshot -> ()
          | Txn.Update ->
              List.iteri
                (fun nth k ->
                  store.(k) <-
                    Txn.new_value ~old:store.(k) ~read_sum:expected ~seq:t.Txn.seq ~nth;
                  vers.(k) <- vers.(k) + 1)
                t.Txn.writes);
          replay rest
        end)
  in
  match replay ordered with
  | Error _ as e -> e
  | Ok () ->
      let rec check_keys k =
        if k = Layout.n_keys then Ok ()
        else if o.oc_final.(k) <> store.(k) then
          error "key %d: final value %d, serial replay expects %d" k o.oc_final.(k) store.(k)
        else if o.oc_vers.(k) <> vers.(k) then
          error "key %d: version %d, serial replay expects %d" k o.oc_vers.(k) vers.(k)
        else check_keys (k + 1)
      in
      (match check_keys 0 with
      | Error _ as e -> e
      | Ok () ->
          (* Per-thread completion checksums, replayed in each thread's
             own completion order: per round, snapshots (phase A, batch
             position order) then committed updates (phase B, intent
             order). *)
          let per_thread t =
            List.filter (fun (r : Service.record_) -> r.rc_tid = t) o.oc_records
            |> List.sort
                 (fun (a : Service.record_) b ->
                   compare
                     ( a.rc_round,
                       (match a.rc_txn.Txn.kind with Txn.Snapshot -> 0 | Txn.Update -> 1),
                       a.rc_batch )
                     ( b.rc_round,
                       (match b.rc_txn.Txn.kind with Txn.Snapshot -> 0 | Txn.Update -> 1),
                       b.rc_batch ))
          in
          let rec check_threads t =
            if t = n then Ok ()
            else
              let chk =
                List.fold_left
                  (fun acc (r : Service.record_) ->
                    Service.mix acc r.rc_read_sum r.rc_txn.Txn.seq)
                  0 (per_thread t)
              in
              if chk <> o.oc_checksums.(t) then
                error "t%d: completion checksum %d, serial replay expects %d" t
                  o.oc_checksums.(t) chk
              else check_threads (t + 1)
          in
          check_threads 0)

let snapshot_aborts (o : Service.outcome) =
  List.exists
    (fun (r : Service.record_) -> r.rc_txn.Txn.kind = Txn.Snapshot && r.rc_retries > 0)
    o.oc_records

let completed (o : Service.outcome) = List.length o.oc_records

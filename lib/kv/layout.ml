(* Heap geometry of the KV store.  The keyspace is a dense array of
   fixed-size slots at the bottom of the heap; behind it sit four status
   pages (one word per server thread each) and one page-aligned intent
   region per thread.  Keys hash onto page ranges implicitly — 16 keys
   share a 256-byte page — so neighbouring keys contend at page
   granularity exactly as the paper's merge machinery expects, and the
   segment's shard map (PR 7) splits the key range across commit locks. *)

let page_size = 256
let n_keys = 256

(* 8-byte value followed by an 8-byte version word (the TL2 lock/clock
   word of the ordered-STM design: bumped once per committed write). *)
let key_bytes = 16
let value_addr k = k * key_bytes
let ver_addr k = (k * key_bytes) + 8
let data_pages = n_keys * key_bytes / page_size

(* One word per server thread on each status page; written only by the
   owning thread (disjoint 8-byte words, so concurrent phase-B commits
   byte-merge cleanly) and read by everyone after the round barrier. *)
let max_threads = page_size / 8
let status_addr page tid = (page * page_size) + (tid * 8)
let remaining_addr tid = status_addr data_pages tid
let checksum_addr tid = status_addr (data_pages + 1) tid
let commits_addr tid = status_addr (data_pages + 2) tid
let aborts_addr tid = status_addr (data_pages + 3) tid

(* Per-thread intent region: the published read/write key sets every
   thread validates against in phase B.  8 pages = 256 words, far above
   the worst-case round footprint. *)
let intent_pages = 8
let intent_base_page = data_pages + 4
let intent_addr tid = (intent_base_page + (tid * intent_pages)) * page_size
let intent_bytes = intent_pages * page_size
let heap_pages = intent_base_page + (max_threads * intent_pages)

(* Initial value of key [k]; non-trivial so read sums depend on real
   state from round 0. *)
let initial_value k = (k * 13) + 7

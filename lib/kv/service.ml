(* The deterministic transactional KV service: per-thread request
   batching over a round-structured ordered-OCC protocol.

   Each round has two phases separated by barriers:

   - Phase A (concurrent, isolated): every server thread executes its
     batch — retries first — against the round-start snapshot.  Update
     transactions read values and version stamps through the workspace
     and buffer their writes locally (nothing uncommitted ever reaches
     shared memory); snapshot transactions pin the thread's base version
     and are served copy-free from the segment's version histories —
     they complete within phase A and can never abort.  The thread then
     publishes its read/write intents into its own page-aligned intent
     region.

   - Phase B (after the intent barrier): every thread runs the same pure
     arbitration ({!Validate.fold}) over all published intents in
     (priority, batch) order — the commit order fixed by the round
     structure of the deterministic logical clock — then applies its own
     committed write sets (bumping each key's version word) and charges
     validate/abort costs through the cost model.  Aborted transactions
     back off deterministically and retry at the front of the next
     round's batch.

   Because the verdicts are a pure function of the published intents,
   transaction outcomes and abort/retry counts are byte-identical on
   every runtime — the four deterministic libraries, the pipelined
   commit variant, real OCaml 5 domains, and even the nondeterministic
   pthreads baseline — and across seeds.  Only wall_ns and the latency
   histograms move with the schedule. *)

module A = Api

let b1 : A.barrier = 1
let b2 : A.barrier = 2
let batch = 4
let default_requests = 24
let checksum_mask = (1 lsl 61) - 1
let mix chk v seq = ((chk * 131) + v + seq) land checksum_mask

type pending = { txn : Txn.t; mutable retries : int; mutable submit_ns : int }

(* Completion records for the serializability oracle (tests only; the
   registry workloads use a no-op recorder and share no mutable state). *)
type record_ = {
  rc_tid : int;
  rc_txn : Txn.t;
  rc_round : int;
  rc_batch : int;
  rc_retries : int;
  rc_read_sum : int;
}

type recorder = record_ -> unit

type outcome = {
  oc_nthreads : int;
  oc_requests : int;
  oc_final : int array;
  oc_vers : int array;
  oc_checksums : int array;
  oc_commits : int array;
  oc_aborts : int array;
  oc_records : record_ list;
}

let split_batch n l =
  let rec go acc n l =
    match (n, l) with 0, _ | _, [] -> (List.rev acc, l) | n, x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let worker ~shape ~nthreads ~requests ~(record : recorder) id (ops : A.ops) =
  let queue =
    ref
      (List.map
         (fun t -> { txn = t; retries = 0; submit_ns = -1 })
         (Traffic.gen shape ~tid:id ~requests))
  in
  let checksum = ref 0 and commits = ref 0 and aborts = ref 0 and remaining = ref requests in
  let read_val k = ops.A.read_int ~addr:(Layout.value_addr k) in
  let read_ver k = ops.A.read_int ~addr:(Layout.ver_addr k) in
  let all_done () =
    let rem = ref 0 in
    for t = 0 to nthreads - 1 do
      rem := !rem + ops.A.read_int ~addr:(Layout.remaining_addr t)
    done;
    !rem = 0
  in
  let complete ~txn ~round ~batch_idx ~retries ~read_sum ~submit_ns =
    checksum := mix !checksum read_sum txn.Txn.seq;
    decr remaining;
    ops.A.metric_observe "kv:req_ns" (max 0 (ops.A.now_ns () - submit_ns));
    record
      {
        rc_tid = id;
        rc_txn = txn;
        rc_round = round;
        rc_batch = batch_idx;
        rc_retries = retries;
        rc_read_sum = read_sum;
      }
  in
  let rec round_loop round =
    if not (all_done ()) then begin
      (* ---- phase A ---- *)
      let this_batch, rest = split_batch batch !queue in
      queue := rest;
      let attempts = ref [] in
      List.iteri
        (fun pos p ->
          if p.submit_ns < 0 then p.submit_ns <- ops.A.now_ns ();
          let t = p.txn in
          ops.A.work (20 + (5 * Txn.entries t));
          match t.Txn.kind with
          | Txn.Snapshot ->
              let pin = ops.A.base_version () in
              let sum = ref 0 in
              List.iter
                (fun (k, len) ->
                  let b =
                    ops.A.snapshot_read ~version:pin ~addr:(Layout.value_addr k)
                      ~len:(len * Layout.key_bytes)
                  in
                  for i = 0 to len - 1 do
                    sum := !sum + Int64.to_int (Bytes.get_int64_le b (i * Layout.key_bytes))
                  done)
                t.Txn.reads;
              ops.A.metric_incr "kv:snapshots" 1;
              complete ~txn:t ~round ~batch_idx:pos ~retries:p.retries ~read_sum:!sum
                ~submit_ns:p.submit_ns
          | Txn.Update ->
              let sum = ref 0 in
              let reads =
                List.map
                  (fun (k, len) ->
                    let ver = read_ver k in
                    for i = k to k + len - 1 do
                      sum := !sum + read_val i
                    done;
                    { Intent.key = k; len; ver })
                  t.Txn.reads
              in
              let read_sum = !sum in
              let wvals =
                List.mapi
                  (fun nth k ->
                    (k, Txn.new_value ~old:(read_val k) ~read_sum ~seq:t.Txn.seq ~nth, read_ver k))
                  t.Txn.writes
              in
              attempts := (p, reads, wvals, read_sum) :: !attempts)
        this_batch;
      let attempts = List.rev !attempts in
      let intents =
        List.map
          (fun (p, reads, _, _) -> { Intent.seq = p.txn.Txn.seq; reads; writes = p.txn.Txn.writes })
          attempts
      in
      ops.A.write ~addr:(Layout.intent_addr id) (Intent.encode intents);
      ops.A.barrier_wait b1;
      (* ---- phase B ---- *)
      let all_intents =
        Array.init nthreads (fun t ->
            if t = id then intents
            else Intent.decode (ops.A.read ~addr:(Layout.intent_addr t) ~len:Layout.intent_bytes))
      in
      let verdicts = Validate.fold ~round ~nthreads all_intents in
      let retry_rev = ref [] in
      List.iteri
        (fun bi (p, _, wvals, read_sum) ->
          let t = p.txn in
          ops.A.txn_validate ~keys:(Txn.entries t);
          if verdicts.(id).(bi) then begin
            List.iter
              (fun (k, v, ver) ->
                ops.A.write_int ~addr:(Layout.value_addr k) v;
                ops.A.write_int ~addr:(Layout.ver_addr k) (ver + 1))
              wvals;
            incr commits;
            ops.A.metric_incr "kv:commits" 1;
            complete ~txn:t ~round ~batch_idx:bi ~retries:p.retries ~read_sum
              ~submit_ns:p.submit_ns
          end
          else begin
            ops.A.txn_abort ~seq:t.Txn.seq ~retries:p.retries;
            p.retries <- p.retries + 1;
            incr aborts;
            ops.A.metric_incr "kv:aborts" 1;
            retry_rev := p :: !retry_rev
          end)
        attempts;
      queue := List.rev_append !retry_rev !queue;
      ops.A.write_int ~addr:(Layout.remaining_addr id) !remaining;
      ops.A.write_int ~addr:(Layout.checksum_addr id) !checksum;
      ops.A.write_int ~addr:(Layout.commits_addr id) !commits;
      ops.A.write_int ~addr:(Layout.aborts_addr id) !aborts;
      ops.A.barrier_wait b2;
      round_loop (round + 1)
    end
  in
  round_loop 0

(* Digest of the full key space (values and version words); logged by
   main after the join, so it is part of the output witness. *)
let store_digest (ops : A.ops) =
  let h = ref 0 in
  for k = 0 to Layout.n_keys - 1 do
    h := mix !h (ops.A.read_int ~addr:(Layout.value_addr k)) 0;
    h := mix !h (ops.A.read_int ~addr:(Layout.ver_addr k)) 0
  done;
  !h

let main ~shape ~requests ~(record : recorder) ~(finish : A.ops -> int -> unit) ~nthreads
    (ops : A.ops) =
  let nthreads = max 1 (min nthreads Layout.max_threads) in
  for k = 0 to Layout.n_keys - 1 do
    ops.A.write_int ~addr:(Layout.value_addr k) (Layout.initial_value k)
  done;
  for t = 0 to nthreads - 1 do
    ops.A.write_int ~addr:(Layout.remaining_addr t) requests
  done;
  ops.A.barrier_init b1 nthreads;
  ops.A.barrier_init b2 nthreads;
  let workers =
    List.init nthreads (fun id ->
        ops.A.spawn
          ~name:(Printf.sprintf "kv%d" id)
          (fun wops -> worker ~shape ~nthreads ~requests ~record id wops))
  in
  List.iter ops.A.join workers;
  (* Deterministic service summary: store digest, then per-thread
     checksums and commit/abort counts in thread order, then totals.
     All of it flows into the output-trace witness, so the abort counts
     themselves are witness-checked. *)
  ops.A.log_output (Printf.sprintf "kv:%s store=%d" (Traffic.name shape) (store_digest ops));
  let tc = ref 0 and ta = ref 0 in
  for t = 0 to nthreads - 1 do
    let c = ops.A.read_int ~addr:(Layout.commits_addr t)
    and a = ops.A.read_int ~addr:(Layout.aborts_addr t)
    and chk = ops.A.read_int ~addr:(Layout.checksum_addr t) in
    tc := !tc + c;
    ta := !ta + a;
    ops.A.log_output (Printf.sprintf "kv:t%d chk=%d commits=%d aborts=%d" t chk c a)
  done;
  ops.A.log_output (Printf.sprintf "kv:total commits=%d aborts=%d" !tc !ta);
  finish ops nthreads

let no_record : recorder = fun _ -> ()
let no_finish _ _ = ()

let workload ?(requests = default_requests) shape =
  Api.make ~name:(Traffic.name shape)
    ~description:("transactional KV service, " ^ Traffic.description shape)
    ~default_threads:4 ~heap_pages:Layout.heap_pages ~page_size:Layout.page_size
    (fun ~nthreads ops -> main ~shape ~requests ~record:no_record ~finish:no_finish ~nthreads ops)

(* A capturing variant for the test suite: same protocol, plus an
   in-process recorder whose state is reset at the start of every run
   (so the returned program may be re-run) and an outcome snapshot taken
   by the main thread after the join.  Workers write disjoint slots and
   are joined before the slots are read, so the capture is well ordered
   on every backend, including real domains. *)
let probe ?(requests = default_requests) shape =
  let slots = Array.make Layout.max_threads [] in
  let last = ref None in
  let record r = slots.(r.rc_tid) <- r :: slots.(r.rc_tid) in
  let finish (ops : A.ops) nthreads =
    let final = Array.init Layout.n_keys (fun k -> ops.A.read_int ~addr:(Layout.value_addr k)) in
    let vers = Array.init Layout.n_keys (fun k -> ops.A.read_int ~addr:(Layout.ver_addr k)) in
    let per addr = Array.init nthreads (fun t -> ops.A.read_int ~addr:(addr t)) in
    last :=
      Some
        {
          oc_nthreads = nthreads;
          oc_requests = requests;
          oc_final = final;
          oc_vers = vers;
          oc_checksums = per Layout.checksum_addr;
          oc_commits = per Layout.commits_addr;
          oc_aborts = per Layout.aborts_addr;
          oc_records = List.concat_map (fun t -> List.rev slots.(t)) (List.init nthreads Fun.id);
        }
  in
  let program =
    Api.make
      ~name:(Traffic.name shape ^ "_probe")
      ~description:"capturing kv service probe" ~default_threads:4 ~heap_pages:Layout.heap_pages
      ~page_size:Layout.page_size
      (fun ~nthreads ops ->
        Array.fill slots 0 (Array.length slots) [];
        last := None;
        main ~shape ~requests ~record ~finish ~nthreads ops)
  in
  let outcome () =
    match !last with
    | Some o -> o
    | None -> invalid_arg "Kv.Service.probe: program has not completed a run"
  in
  (program, outcome)

(** Transaction descriptors.

    An [Update] reads a set of key ranges and rewrites a set of keys; a
    [Snapshot] is read-only and is served copy-free from a pinned
    version — it never validates and never aborts.  Write values are a
    function of the values read ({!new_value}), so any serialization
    error propagates into the store bytes and the oracle catches it. *)

type kind = Update | Snapshot

type t = {
  seq : int;  (** per-thread request ordinal *)
  kind : kind;
  reads : (int * int) list;  (** (first_key, length) ranges *)
  writes : int list;  (** distinct keys; empty for [Snapshot] *)
}

val max_reads : int
(** Most read ranges per transaction ({!check}-enforced); with
    {!max_writes} it bounds the per-round intent-region footprint. *)

val max_writes : int

val entries : t -> int
(** Total intent entries (read ranges + write keys). *)

val check : t -> unit
(** Raise [Invalid_argument] on out-of-range keys, duplicate writes, or
    a writing snapshot. *)

val new_value : old:int -> read_sum:int -> seq:int -> nth:int -> int
(** Committed value of the [nth] write key of transaction [seq] given
    the pre-state [old] and the sum over the read set. *)

val pp : Format.formatter -> t -> unit

(** Heap geometry of the KV store: key slots, status words, and
    per-thread intent regions.

    Keys are dense 16-byte slots (8-byte value + 8-byte version word) at
    the bottom of the heap, 16 to a 256-byte page, so the keyspace is
    implicitly sharded onto page ranges — neighbouring keys contend at
    page granularity and the segment's shard map spreads the key range
    across the per-shard commit locks of PR 7. *)

val page_size : int
val n_keys : int
val key_bytes : int

val value_addr : int -> int
(** Byte address of key [k]'s 8-byte value. *)

val ver_addr : int -> int
(** Byte address of key [k]'s version word (bumped once per committed
    write; the read-set version of the ordered-TL2 validation). *)

val data_pages : int
val max_threads : int

val remaining_addr : int -> int
(** Requests (including retries) thread [tid] still has to serve;
    written by the owner each round, read by all threads to decide
    termination. *)

val checksum_addr : int -> int
val commits_addr : int -> int
val aborts_addr : int -> int

val intent_addr : int -> int
(** Start of thread [tid]'s page-aligned intent region. *)

val intent_bytes : int
val intent_pages : int
val heap_pages : int
(** Total heap size: data + status + [max_threads] intent regions. *)

val initial_value : int -> int
(** Deterministic initial value the store is seeded with. *)

(** Deterministic ordered-OCC arbitration.

    The verdict for a round is a pure function of the intents every
    thread published at the round barrier — no schedule state, no
    clocks — so all threads compute identical verdicts locally, and the
    outcome (including abort counts) is byte-identical across every
    runtime and seed.  Commit order is (priority, batch index) with the
    priority rotating per round: the equivalent serial order of the
    whole run is (round, priority, batch index), and rotation bounds
    starvation — a retried transaction commits unconditionally once its
    thread reaches priority 0. *)

val priority_of : round:int -> nthreads:int -> int -> int
val tid_of_priority : round:int -> nthreads:int -> int -> int

val fold : round:int -> nthreads:int -> Intent.txn_intent list array -> bool array array
(** [fold ~round ~nthreads intents] maps [intents.(tid)] (batch order)
    to per-transaction verdicts, [true] = commit.  A transaction aborts
    iff its read or write set intersects an earlier-ordered committed
    transaction's write set. *)

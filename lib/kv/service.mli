(** The deterministic transactional KV service.

    A round-structured ordered-OCC server: each server thread executes a
    batch of requests against the round-start snapshot (buffering update
    writes locally, serving snapshot reads copy-free from version
    histories at a pinned version), publishes its read/write intents,
    and — after the round barrier — every thread runs the same pure
    arbitration ({!Validate.fold}) in the commit order fixed by the
    round structure.  Verdicts are a pure function of published intents,
    so transaction outcomes and abort/retry counts are byte-identical
    across all runtimes and seeds; snapshot transactions never abort by
    construction. *)

val batch : int
(** Requests a thread attempts per round (retries first). *)

val default_requests : int
(** Per-thread request count of the registry workloads at scale 1. *)

(** {1 Oracle capture} *)

type record_ = {
  rc_tid : int;
  rc_txn : Txn.t;
  rc_round : int;  (** round the request completed in *)
  rc_batch : int;  (** its index within that round's intent list *)
  rc_retries : int;
  rc_read_sum : int;  (** the sum over its read set it observed *)
}

type recorder = record_ -> unit

type outcome = {
  oc_nthreads : int;
  oc_requests : int;
  oc_final : int array;  (** final value per key *)
  oc_vers : int array;  (** final version word per key *)
  oc_checksums : int array;  (** per-thread completion checksum *)
  oc_commits : int array;
  oc_aborts : int array;
  oc_records : record_ list;  (** every completed request, all threads *)
}

val checksum_mask : int
val mix : int -> int -> int -> int
(** [mix chk v seq] — the completion-checksum step, shared with the
    oracle. *)

val workload : ?requests:int -> Traffic.shape -> Api.t
(** The registry-facing program for a traffic shape: no capture, no
    shared mutable state, safe to run concurrently. *)

val probe : ?requests:int -> Traffic.shape -> Api.t * (unit -> outcome)
(** A capturing variant for tests: returns the program and an accessor
    for the last completed run's outcome (raises if the program has not
    run).  The capture state is reset at the start of each run; run it
    sequentially. *)

(* The ordered-OCC arbitration shared by every thread (and by the serial
   oracle): given the intents all threads published for a round, decide
   commit/abort for every transaction.

   Commit order within a round is (priority, batch index), where a
   thread's priority rotates with the round number — so no thread is
   structurally favoured, and a starving request commits unconditionally
   as soon as its thread reaches priority 0 (its first transaction then
   has an empty committed prefix).  A transaction aborts iff its read or
   write set intersects the write set of an earlier-ordered committed
   transaction of the round: committed transactions therefore read only
   round-start state, which makes the concurrent execution equivalent to
   the serial execution in commit order (strict serializability), and
   makes the verdict a pure function of the published intents — the same
   on every runtime, schedule, and seed. *)

let priority_of ~round ~nthreads tid = (tid + round) mod nthreads

let tid_of_priority ~round ~nthreads p =
  let t = (p - round) mod nthreads in
  if t < 0 then t + nthreads else t

(* [fold ~round ~nthreads intents] where [intents.(tid)] is that
   thread's decoded round intents; returns [verdicts.(tid)] as a bool
   array per thread, batch order, [true] = commit. *)
let fold ~round ~nthreads (intents : Intent.txn_intent list array) =
  let written = Array.make Layout.n_keys false in
  let verdicts = Array.map (fun l -> Array.make (List.length l) false) intents in
  for p = 0 to nthreads - 1 do
    let tid = tid_of_priority ~round ~nthreads p in
    List.iteri
      (fun bi (t : Intent.txn_intent) ->
        let conflict =
          List.exists
            (fun (r : Intent.read_entry) ->
              let hit = ref false in
              for k = r.key to r.key + r.len - 1 do
                if written.(k) then hit := true
              done;
              !hit)
            t.reads
          || List.exists (fun k -> written.(k)) t.writes
        in
        if not conflict then begin
          List.iter (fun k -> written.(k) <- true) t.writes;
          verdicts.(tid).(bi) <- true
        end)
      intents.(tid)
  done;
  verdicts

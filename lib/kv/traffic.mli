(** Server-shaped traffic generators.

    Each shape is a deterministic stream of transactions per thread,
    seeded from [(shape, tid)] only — never from the runtime seed — so
    the request mix (and hence the determinism witness) is identical
    across runtimes and seeds. *)

type shape = Uniform | Zipf | Hot | Read_mostly | Write_heavy | Scan

val all : shape list
val name : shape -> string
(** Registry/bench name: ["kv_uniform"], ["kv_zipf"], ["kv_hot"],
    ["kv_read"], ["kv_write"], ["kv_scan"]. *)

val description : shape -> string
val of_name : string -> shape option

val gen : shape -> tid:int -> requests:int -> Txn.t list
(** The per-thread request stream, [seq] numbered 0..requests-1. *)

(** Strict-serializability oracle.

    Replays a captured run's completed requests serially in the
    protocol's claimed equivalent serial order — (round; the round's
    snapshots first; then commits by (priority, batch index)) — against
    a pure store model, and checks that every observed read sum, every
    per-thread completion checksum, and the final store image (values
    and version words) are reproduced byte-for-byte. *)

type mismatch = { what : string }

val check : Service.outcome -> (unit, mismatch) result

val snapshot_aborts : Service.outcome -> bool
(** True if any snapshot transaction ever retried — must always be
    false: snapshot reads never abort. *)

val completed : Service.outcome -> int

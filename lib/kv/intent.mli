(** Wire format of the per-thread, per-round intent records that the
    validation fold consumes: the published read ranges (with their TL2
    read-set version stamps) and write keys of every update transaction
    attempted this round. *)

type read_entry = { key : int; len : int; ver : int }
type txn_intent = { seq : int; reads : read_entry list; writes : int list }

val words_for : txn_intent list -> int
val encode : txn_intent list -> Bytes.t
val decode : Bytes.t -> txn_intent list
(** [decode] parses a full intent region image; counts drive parsing, so
    bytes beyond the encoded round are ignored. *)

type thread_stat = {
  tid : int;
  thread_name : string;
  breakdown : Breakdown.t;
  instructions : int;
}

type t = {
  program : string;
  runtime : string;
  nthreads : int;
  seed : int;
  wall_ns : int;
  per_thread : thread_stat list;
  sync_ops : int;
  token_acquisitions : int;
  pages_propagated : int;
  pages_committed : int;
  pages_merged : int;
  bytes_merged : int;
  write_faults : int;
  commits : int;
  coarsened_chunks : int;
  overflow_interrupts : int;
  peak_mem_pages : int;
  versions : int;
  mem_hash : string;
  sync_order_hash : string;
  output_hash : string;
  trace_events : int;
  schedule : (int * int * string) list;
  metrics : Obs.Metrics.snapshot;
}

let aggregate_breakdown t =
  List.fold_left (fun acc ts -> Breakdown.merge acc ts.breakdown) (Breakdown.create ())
    t.per_thread

let deterministic_witness t =
  Printf.sprintf "mem:%s|sync:%s|out:%s" t.mem_hash t.sync_order_hash t.output_hash

(* The latency distributions the paper's evaluation discusses; shown in
   this order when present in the run's metrics. *)
let summary_hists =
  [
    ("token_hold_ns", "token hold ns");
    ("determ_wait_ns", "determ wait ns");
    ("commit_ns", "commit ns");
    ("commit_pages", "pages/commit");
    ("chunk_instr", "chunk instr");
  ]

let pp_percentiles fmt (m : Obs.Metrics.snapshot) =
  List.iter
    (fun (key, label) ->
      match Obs.Metrics.find_hist m key with
      | Some h when h.Obs.Metrics.count > 0 ->
          Format.fprintf fmt "@,%-15s p50 %.0f  p95 %.0f  p99 %.0f  max %d  (n=%d)" label
            (Obs.Metrics.percentile h 0.50) (Obs.Metrics.percentile h 0.95)
            (Obs.Metrics.percentile h 0.99) h.Obs.Metrics.max_v h.Obs.Metrics.count
      | Some _ | None -> ())
    summary_hists

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%s / %s: %d threads, seed %d@,\
     wall            %d ns@,\
     sync ops        %d@,\
     token acqs      %d@,\
     commits         %d (%d pages, %d merged, %d bytes)@,\
     faults          %d@,\
     pages propagated %d@,\
     peak memory     %d pages@,\
     versions        %d@,\
     witness         %s%a@]"
    t.program t.runtime t.nthreads t.seed t.wall_ns t.sync_ops t.token_acquisitions t.commits
    t.pages_committed t.pages_merged t.bytes_merged t.write_faults t.pages_propagated
    t.peak_mem_pages t.versions (deterministic_witness t) pp_percentiles t.metrics

let breakdown_to_json bd =
  Obs.Json.Obj
    (List.map
       (fun cat -> (Breakdown.category_name cat, Obs.Json.Int (Breakdown.get bd cat)))
       Breakdown.all)

let to_json t =
  Obs.Json.Obj
    [
      ("program", Obs.Json.String t.program);
      ("runtime", Obs.Json.String t.runtime);
      ("nthreads", Obs.Json.Int t.nthreads);
      ("seed", Obs.Json.Int t.seed);
      ("wall_ns", Obs.Json.Int t.wall_ns);
      ("sync_ops", Obs.Json.Int t.sync_ops);
      ("token_acquisitions", Obs.Json.Int t.token_acquisitions);
      ("pages_propagated", Obs.Json.Int t.pages_propagated);
      ("pages_committed", Obs.Json.Int t.pages_committed);
      ("pages_merged", Obs.Json.Int t.pages_merged);
      ("bytes_merged", Obs.Json.Int t.bytes_merged);
      ("write_faults", Obs.Json.Int t.write_faults);
      ("commits", Obs.Json.Int t.commits);
      ("coarsened_chunks", Obs.Json.Int t.coarsened_chunks);
      ("overflow_interrupts", Obs.Json.Int t.overflow_interrupts);
      ("peak_mem_pages", Obs.Json.Int t.peak_mem_pages);
      ("versions", Obs.Json.Int t.versions);
      ("trace_events", Obs.Json.Int t.trace_events);
      ("mem_hash", Obs.Json.String t.mem_hash);
      ("sync_order_hash", Obs.Json.String t.sync_order_hash);
      ("output_hash", Obs.Json.String t.output_hash);
      ("witness", Obs.Json.String (deterministic_witness t));
      ("breakdown", breakdown_to_json (aggregate_breakdown t));
      ( "per_thread",
        Obs.Json.List
          (List.map
             (fun ts ->
               Obs.Json.Obj
                 [
                   ("tid", Obs.Json.Int ts.tid);
                   ("name", Obs.Json.String ts.thread_name);
                   ("instructions", Obs.Json.Int ts.instructions);
                   ("breakdown", breakdown_to_json ts.breakdown);
                 ])
             t.per_thread) );
      ("metrics", Obs.Metrics.to_json t.metrics);
    ]

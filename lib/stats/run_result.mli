(** The complete record of one simulated execution.

    Contains the performance metrics that drive the figures (wall time,
    time breakdown, page traffic, peak memory) and the determinism
    witnesses that the tests compare across perturbed runs:

    - [sync_order_hash]: the order and identity of all synchronization
      events (untimed).  Deterministic runtimes must produce the same
      value for every seed.
    - [mem_hash]: digest of the final committed memory image.
    - [output_hash]: digest of the application's logged output events.

    Wall-clock quantities and [timed_hash]es legitimately differ across
    seeds even under deterministic runtimes — determinism fixes {e what}
    happens, not {e how fast} (paper section 3). *)

type thread_stat = {
  tid : int;
  thread_name : string;
  breakdown : Breakdown.t;
  instructions : int;  (** retired user instructions (logical clock at exit) *)
}

type t = {
  program : string;
  runtime : string;
  nthreads : int;
  seed : int;
  wall_ns : int;
  per_thread : thread_stat list;
  sync_ops : int;
  token_acquisitions : int;
  pages_propagated : int;
  pages_committed : int;
  pages_merged : int;
  bytes_merged : int;
  write_faults : int;
  commits : int;
  coarsened_chunks : int;
  overflow_interrupts : int;
  peak_mem_pages : int;
  versions : int;
  mem_hash : string;
  sync_order_hash : string;
  output_hash : string;
  trace_events : int;
  schedule : (int * int * string) list;
      (** the deterministic synchronization schedule: (time ns, tid,
          operation label) in global order — the artifact a record/replay
          debugger would consume *)
  metrics : Obs.Metrics.snapshot;
      (** per-run counters and latency histograms (token hold, commit,
          determ wait, pages/commit, chunk length, ...); derived purely
          from simulated quantities, hence deterministic *)
}

val aggregate_breakdown : t -> Breakdown.t
(** Sum of all per-thread breakdowns. *)

val deterministic_witness : t -> string
(** Concatenation of the three content witnesses; two runs of a
    deterministic runtime must agree on this for any seeds. *)

val pp_summary : Format.formatter -> t -> unit
(** Headline metrics plus p50/p95/p99 lines for the key latency
    histograms present in [metrics]. *)

val to_json : t -> Obs.Json.t
(** Machine-readable dump of everything except the full [schedule]
    (which can be huge; consumers wanting the timeline should record a
    Chrome trace instead). *)

(** Plain-text table rendering for the benchmark harness.

    Produces aligned, monospace tables like the rows the paper's figures
    report, without any plotting dependency. *)

type t

val create : columns:string list -> t
val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val row_count : t -> int

val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order (the order {!render} prints them) — used by
    the JSON exporters. *)

val render : t -> string
(** Aligned table with a header rule. *)

val cell_float : ?decimals:int -> float -> string
val cell_ratio : float -> string
(** Formats a slowdown/speedup ratio like ["3.90x"]. *)

type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length row)
         (List.length t.columns));
  t.rows <- row :: t.rows

let row_count t = List.length t.rows
let columns t = t.columns
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        (* Pad all but the last column. *)
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  let rule_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_ratio f = Printf.sprintf "%.2fx" f

(** Commit-dominated scaling stressor for the parallel sharded commit.

    Each worker repeatedly dirties a {e strided} page set (pages
    [k*256 + i] for worker [i]) and hits an uncontended coordination
    point, producing regular commits whose footprints are disjoint
    across workers and span every segment shard.  Per-commit page count
    is independent of the thread count, so commit cost per committed
    page as threads scale measures exactly the commit path's
    scalability (the BENCH_commit series).

    Not part of {!Registry.all}: it is a measurement instrument for the
    commit bench and CI smoke, not a paper benchmark. *)

val make : ?scale:float -> unit -> Api.t
(** [scale] multiplies the per-worker round count (default 8 rounds). *)

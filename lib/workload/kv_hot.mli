(** Service [kv_hot]: hot-key contention: most writes hit four hot keys over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

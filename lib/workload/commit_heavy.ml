(* Commit-dominated scaling microbenchmark for the parallel-commit path.

   Worker [i] owns the strided page set {k*stride + i | k}: contiguous
   bands would land every worker's footprint in one or two segment
   shards, so the stride is what makes a single commit span all shards
   (pages i, stride+i, 2*stride+i, ... fall in different contiguous
   page ranges).  Footprints are disjoint across workers — commits never
   merge — and each worker's per-commit page count is constant in the
   thread count, so "commit cost per committed page vs threads" isolates
   the commit path itself: flat means commits scale, growth means the
   token hold serializes them. *)

let stride = 256
let default_pages = 4096
let page_size = 256

let make ?(scale = 1.0) () =
  let rounds = Wl_util.scaled scale 8 in
  Api.make ~name:"commit-heavy"
    ~description:"disjoint strided writes, shard-spanning commits (parallel-commit stressor)"
    ~heap_pages:default_pages ~page_size
    (fun ~nthreads ops ->
      let nthreads = min nthreads stride in
      let pages_per_commit = default_pages / stride in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for round = 1 to rounds do
            (* Dirty every page of the strided set, one word each. *)
            for k = 0 to pages_per_commit - 1 do
              let page = (k * stride) + i in
              w.Api.write_int ~addr:(page * page_size) (round + (i * 1000) + k)
            done;
            (* Local work between commits: the execution the pipelined
               drain is supposed to overlap with. *)
            w.Api.work 2_000;
            (* Uncontended per-worker lock: a pure coordination point
               that publishes the round's writes as one commit. *)
            w.Api.lock (100 + i);
            w.Api.unlock (100 + i)
          done);
      (* Witness: one word from stride row 0 of every worker slot. *)
      let sum = ref 0 in
      for i = 0 to nthreads - 1 do
        sum := !sum + ops.Api.read_int ~addr:(i * page_size)
      done;
      ops.Api.log_output (Printf.sprintf "commit-heavy=%d" !sum))

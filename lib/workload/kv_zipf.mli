(** Service [kv_zipf]: Zipfian (s=1.2) skewed update mix over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

type style = Racy | Atomic | Locked

let style_name = function Racy -> "racy" | Atomic -> "atomic" | Locked -> "locked"

let accounts = 8
let account_addr i = 8 * i
let initial_balance = 1_000
let rounds = 25

let make ?(style = Racy) ?(scale = 1.0) () =
  Api.make
    ~name:("bank-" ^ style_name style)
    ~description:"money transfers: unsynchronized / atomic / mutex-serialized RMW"
    ~heap_pages:16 ~page_size:256
    (fun ~nthreads ops ->
      for i = 0 to accounts - 1 do
        ops.Api.write_int ~addr:(account_addr i) initial_balance
      done;
      ops.Api.barrier_init 0 nthreads;
      let rounds = Wl_util.scaled scale rounds in
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.barrier_wait 0;
                for round = 1 to rounds do
                  let src = (i + round) mod accounts in
                  let dst = (i + (3 * round)) mod accounts in
                  if src <> dst then
                    match style with
                    | Atomic ->
                        ignore (w.Api.atomic_fetch_add ~addr:(account_addr src) (-10));
                        ignore (w.Api.atomic_fetch_add ~addr:(account_addr dst) 10)
                    | Racy | Locked ->
                        if style = Locked then w.Api.lock 0;
                        (* read ... compute ... write: the racy window *)
                        let s = w.Api.read_int ~addr:(account_addr src) in
                        w.Api.work (100 + i);
                        w.Api.write_int ~addr:(account_addr src) (s - 10);
                        let d = w.Api.read_int ~addr:(account_addr dst) in
                        w.Api.work 80;
                        w.Api.write_int ~addr:(account_addr dst) (d + 10);
                        if style = Locked then w.Api.unlock 0
                done))
      in
      List.iter ops.Api.join workers;
      let total = ref 0 in
      for i = 0 to accounts - 1 do
        total := !total + ops.Api.read_int ~addr:(account_addr i)
      done;
      ops.Api.log_output (Printf.sprintf "total=%d" !total))

let racy = make ~style:Racy ()
let atomic = make ~style:Atomic ()
let locked = make ~style:Locked ()

(** The bank-transfer model in three synchronization styles — the race
    detector's calibration workload.

    [Racy] does unsynchronized read-modify-write transfers (the classic
    lost-update bug of paper sections 1-2): its conflicts must be
    reported as racy.  [Atomic] routes the RMW through
    [atomic_fetch_add] (the section 2.7 fix) and [Locked] serializes
    transfers under one mutex: both must audit clean. *)

type style = Racy | Atomic | Locked

val style_name : style -> string

val accounts : int
val account_addr : int -> int
val initial_balance : int
val rounds : int

val make : ?style:style -> ?scale:float -> unit -> Api.t

val racy : Api.t
val atomic : Api.t
val locked : Api.t

(** Service [kv_scan]: snapshot scans mixed with point updates over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

type suite = Phoenix | Parsec | Splash2 | Service

let suite_name = function
  | Phoenix -> "phoenix"
  | Parsec -> "parsec"
  | Splash2 -> "splash-2"
  | Service -> "service"

type entry = {
  suite : suite;
  program : Api.t;
  make : ?scale:float -> unit -> Api.t;
}

let entry suite (make : ?scale:float -> unit -> Api.t) =
  { suite; program = make (); make }

let all =
  [
    entry Phoenix Histogram.make;
    entry Phoenix Kmeans.make;
    entry Phoenix Linear_regression.make;
    entry Phoenix Matrix_multiply.make;
    entry Phoenix Pca.make;
    entry Phoenix Reverse_index.make;
    entry Phoenix String_match.make;
    entry Phoenix Word_count.make;
    entry Parsec Blackscholes.make;
    entry Parsec Canneal.make;
    entry Parsec Dedup.make;
    entry Parsec Ferret.make;
    entry Parsec Swaptions.make;
    entry Splash2 Barnes.make;
    entry Splash2 Lu_cb.make;
    entry Splash2 Lu_ncb.make;
    entry Splash2 Ocean_cp.make;
    entry Splash2 Water_nsquared.make;
    entry Splash2 Water_spatial.make;
    entry Service Kv_uniform.make;
    entry Service Kv_zipf.make;
    entry Service Kv_hot.make;
    entry Service Kv_read.make;
    entry Service Kv_write.make;
    entry Service Kv_scan.make;
  ]

let names = List.map (fun e -> e.program.Api.name) all

let kv_set =
  List.filter_map
    (fun e -> if e.suite = Service then Some e.program.Api.name else None)
    all

let find name =
  match List.find_opt (fun e -> e.program.Api.name = name) all with
  | Some e -> e
  | None -> raise Not_found

let hardest_five = [ "ocean_cp"; "lu_ncb"; "ferret"; "water_nsquared"; "canneal" ]
let fig11_set = [ "ocean_cp"; "lu_ncb"; "ferret"; "kmeans"; "water_nsquared"; "canneal" ]

let fig13_set =
  [ "ocean_cp"; "lu_ncb"; "ferret"; "kmeans"; "water_nsquared"; "canneal"; "reverse_index"; "lu_cb" ]

let fig14_set = [ "reverse_index"; "ferret" ]

let fig15_set =
  [
    "string_match";
    "ocean_cp";
    "lu_cb";
    "lu_ncb";
    "canneal";
    "water_nsquared";
    "water_spatial";
    "kmeans";
    "ferret";
    "dedup";
    "reverse_index";
  ]

let fig16_set =
  [
    "canneal";
    "ocean_cp";
    "lu_ncb";
    "lu_cb";
    "water_nsquared";
    "water_spatial";
    "kmeans";
    "ferret";
    "dedup";
    "barnes";
    "pca";
    "word_count";
  ]

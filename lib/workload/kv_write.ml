let make ?(scale = 1.0) () =
  Kv.Service.workload
    ~requests:(Wl_util.scaled scale Kv.Service.default_requests)
    Kv.Traffic.Write_heavy

let default = make ()

(** Service [kv_read]: read-mostly mix, 10% updates over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

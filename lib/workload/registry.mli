(** The benchmark registry: the 19-benchmark evaluation suite (paper
    section 5, Fig 10) plus the six server-shaped transactional KV
    traffic mixes ({!Kv.Service}).

    Groups the models by their source suite and by the roles they play in
    the paper's figures. *)

type suite = Phoenix | Parsec | Splash2 | Service

val suite_name : suite -> string

type entry = {
  suite : suite;
  program : Api.t;
  make : ?scale:float -> unit -> Api.t;
}

val all : entry list
(** The 19 Fig 10 benchmarks in display order, then the six KV traffic
    shapes. *)

val kv_set : string list
(** The six KV service traffic shapes, in registry order. *)

val names : string list

val find : string -> entry
(** Lookup by program name.  Raises [Not_found]. *)

val hardest_five : string list
(** The "five most challenging benchmark programs" of the headline claim
    (the Fig 11 scalability set minus kmeans): ocean_cp, lu_ncb, ferret,
    water_nsquared, canneal. *)

val fig11_set : string list
(** Fig 11/12 scalability study: ocean_cp, lu_ncb, ferret, kmeans,
    water_nsquared, canneal. *)

val fig13_set : string list
(** Fig 13 optimization study: eight of the most difficult benchmarks. *)

val fig14_set : string list
(** Fig 14 coarsening study: reverse_index and ferret. *)

val fig15_set : string list
(** Fig 15 time-breakdown selection. *)

val fig16_set : string list
(** Fig 16 memory-propagation study: benchmarks with enough page
    traffic. *)

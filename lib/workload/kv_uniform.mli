(** Service [kv_uniform]: uniform point reads/updates and snapshot scans over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

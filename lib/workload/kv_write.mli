(** Service [kv_write]: write-heavy mix, 85% updates over the
    deterministic transactional KV store ({!Kv.Service}). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

(* Execution substrate: the capability record through which the
   deterministic runtime touches its scheduler.  Two implementations
   exist — the discrete-event [Engine] (simulated time, effect-handler
   fibers on one domain) and [Sched] (real OCaml 5 domains with
   work-stealing, wall-clock time).  The runtime algorithms are written
   against this record only, which is what makes the cross-backend
   witness identity a mechanical fact rather than a re-implementation
   claim. *)

type t = {
  now : unit -> int;
      (* Simulated nanoseconds (DES) or wall nanoseconds since run
         start (real).  Monotone; never read by the algorithms for
         anything but accounting. *)
  advance : int -> unit;
      (* Consume modelled time.  A no-op on a real backend, where time
         passes by itself. *)
  block : reason:string -> unit;
      (* Deschedule the calling thread until [wakeup].  Binary-permit
         semantics: a wakeup posted while the thread is running is
         consumed by the next block instead of being lost. *)
  wakeup : int -> unit;
  spawn : name:string -> (unit -> unit) -> int;
      (* Register a green thread; returns its id.  Ids are handed out
         sequentially from 0 in call order. *)
  prng : Prng.t;
      (* Master PRNG; subsystems split it. *)
  real : bool;
      (* True on a real-parallel backend: the runtime skips
         concurrent-unsafe maintenance (segment GC) and performs real
         work (spins, unlocked memory ops) where the DES only charges
         modelled costs. *)
  spin : int -> unit;
      (* Execute [n] instructions of real work.  No-op on the DES
         (which charges modelled time instead). *)
  lock : unit -> unit;
  unlock : unit -> unit;
      (* The global runtime lock on a real backend (every runtime code
         path holds it; it is released around spins, blocked waits and
         bulk memory operations).  No-ops on the single-domain DES. *)
}

let of_engine eng =
  {
    now = (fun () -> Engine.now eng);
    advance = (fun ns -> Engine.advance eng ns);
    block = (fun ~reason -> Engine.block eng ~reason);
    wakeup = (fun tid -> Engine.wakeup eng tid);
    spawn = (fun ~name f -> Engine.spawn eng ~name f);
    prng = Engine.prng eng;
    real = false;
    spin = ignore;
    lock = ignore;
    unlock = ignore;
  }

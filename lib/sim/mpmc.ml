(* Michael–Scott lock-free MPMC queue: the injection queue of [Sched],
   taking submissions from any domain (including non-workers, e.g. the
   thread that calls [Sched.spawn] before the workers have started).

   Classic two-CAS design with a dummy head node.  In a GC'd language
   there is no ABA hazard and no free-list: a node unlinked from the
   head is simply dropped.  OCaml [Atomic] is SC, covering all required
   ordering. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = { head : 'a node Atomic.t; tail : 'a node Atomic.t }

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  { head = Atomic.make dummy; tail = Atomic.make dummy }

let push t v =
  let n = { value = Some v; next = Atomic.make None } in
  let rec go () =
    let tl = Atomic.get t.tail in
    match Atomic.get tl.next with
    | None ->
        if Atomic.compare_and_set tl.next None (Some n) then
          (* Swing the tail; failure means someone else already did. *)
          ignore (Atomic.compare_and_set t.tail tl n)
        else go ()
    | Some nx ->
        (* Tail is lagging: help it forward and retry. *)
        ignore (Atomic.compare_and_set t.tail tl nx);
        go ()
  in
  go ()

let pop t =
  let rec go () =
    let hd = Atomic.get t.head in
    match Atomic.get hd.next with
    | None -> None
    | Some nx ->
        if Atomic.compare_and_set t.head hd nx then (
          (* [nx] becomes the new dummy; its value is the payload. *)
          match nx.value with
          | Some _ as v -> v
          | None -> assert false)
        else go ()
  in
  go ()

let is_empty t = Atomic.get (Atomic.get t.head).next = None

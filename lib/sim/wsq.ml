(* Chase–Lev work-stealing deque (SPMC): one owner pushes/pops at the
   bottom, any number of thieves steal from the top.  OCaml [Atomic]
   operations are sequentially consistent, which subsumes the fences the
   original algorithm needs; being garbage-collected, slot reuse cannot
   produce ABA on the values themselves — the only race that matters is
   the top-index CAS, and whoever wins it owns the slot.

   Used as the per-worker run queue of [Sched].  Correctness argument
   for exactly-once delivery (also pinned by a qcheck property in
   test/sim):

   - [push] writes the slot before publishing it with the SC store to
     [bottom], so any thief (or the owner) that observes the new bottom
     also observes the slot contents.
   - A slot is consumed either by the owner ([pop]) or by a thief
     ([steal]); when both race for the last element they arbitrate with
     a CAS on [top], and exactly one wins.
   - [grow] copies the live window into a fresh buffer and publishes it
     with a plain store; a thief still reading the old buffer sees
     values that are still valid for its already-read top index, and
     its CAS on [top] still decides ownership. *)

type 'a t = {
  top : int Atomic.t;        (* next index thieves steal from *)
  bottom : int Atomic.t;     (* next index the owner pushes to *)
  mutable buf : 'a option array;  (* circular, length a power of two *)
}

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Array.make 16 None }

let mask t = Array.length t.buf - 1

(* Owner only.  Doubles the buffer, copying the live window [tp, b). *)
let grow t tp b =
  let old = t.buf in
  let nbuf = Array.make (2 * Array.length old) None in
  let omask = Array.length old - 1 and nmask = Array.length nbuf - 1 in
  for i = tp to b - 1 do
    nbuf.(i land nmask) <- old.(i land omask)
  done;
  t.buf <- nbuf

(* Owner only. *)
let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length t.buf then grow t tp b;
  t.buf.(b land mask t) <- Some v;
  Atomic.set t.bottom (b + 1)

(* Owner only.  LIFO end. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore bottom. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let v = t.buf.(b land mask t) in
    if b > tp then begin
      (* More than one element: the slot is ours without arbitration. *)
      t.buf.(b land mask t) <- None;
      v
    end
    else begin
      (* Last element: race thieves for it via the CAS on [top]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        t.buf.(b land mask t) <- None;
        v
      end
      else None
    end
  end

(* Thieves (any domain).  FIFO end. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* Read the slot before the CAS: winning the CAS is what validates
       the read (a concurrent [grow] leaves the old buffer intact). *)
    let v = t.buf.(tp land mask t) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end

(* Racy size estimate; only for heuristics/tests, never for
   correctness. *)
let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Chase–Lev work-stealing deque (SPMC): one owner pushes/pops at the
   bottom, any number of thieves steal from the top.  OCaml [Atomic]
   operations are sequentially consistent, which subsumes the fences the
   original algorithm needs; being garbage-collected, slot reuse cannot
   produce ABA on the values themselves — the only race that matters is
   the top-index CAS, and whoever wins it owns the slot.

   Used as the per-worker run queue of [Sched].  Correctness argument
   for exactly-once delivery (also pinned by a qcheck property in
   test/sim):

   - [push] writes the slot before publishing it with the SC store to
     [bottom], so any thief (or the owner) that observes the new bottom
     also observes the slot contents.
   - A slot is consumed either by the owner ([pop]) or by a thief
     ([steal]); when both race for the last element they arbitrate with
     a CAS on [top], and exactly one wins.
   - The buffer itself lives in an [Atomic] (as in Le et al.'s weak
     memory formulation): [grow] copies the live window [top, bottom)
     into a fresh buffer and publishes it with the SC store, so a thief
     that loads the new buffer also sees the copied contents.  [steal]
     loads the buffer exactly once and derives the mask from that same
     snapshot — index and mask can never come from different buffers.
     Whichever snapshot a thief holds, slot [top land mask] contains
     element [top] as long as [top] is inside the window the snapshot
     was built from; if it is not (the element was consumed or the
     copy started past it), [top] has since moved, and the thief's CAS
     on [top] fails, discarding the stale read. *)

type 'a t = {
  top : int Atomic.t;        (* next index thieves steal from *)
  bottom : int Atomic.t;     (* next index the owner pushes to *)
  buf : 'a option array Atomic.t;  (* circular, length a power of two *)
}

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make 16 None);
  }

(* Owner only.  Doubles the buffer, copying the live window [tp, b),
   then publishes it with the SC store to [buf]. *)
let grow t tp b =
  let old = Atomic.get t.buf in
  let nbuf = Array.make (2 * Array.length old) None in
  let omask = Array.length old - 1 and nmask = Array.length nbuf - 1 in
  for i = tp to b - 1 do
    nbuf.(i land nmask) <- old.(i land omask)
  done;
  Atomic.set t.buf nbuf

(* Owner only. *)
let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b - tp >= Array.length (Atomic.get t.buf) then grow t tp b;
  let buf = Atomic.get t.buf in
  buf.(b land (Array.length buf - 1)) <- Some v;
  Atomic.set t.bottom (b + 1)

(* Owner only.  LIFO end. *)
let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore bottom. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let mask = Array.length buf - 1 in
    let v = buf.(b land mask) in
    if b > tp then begin
      (* More than one element: the slot is ours without arbitration. *)
      buf.(b land mask) <- None;
      v
    end
    else begin
      (* Last element: race thieves for it via the CAS on [top]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        buf.(b land mask) <- None;
        v
      end
      else None
    end
  end

(* Thieves (any domain).  FIFO end. *)
let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* One buffer snapshot: both the element read and the mask come
       from it.  Winning the CAS is what validates the read — if a
       concurrent [grow] replaced the buffer and [tp] fell outside the
       copied window, [top] has necessarily advanced and the CAS
       fails. *)
    let buf = Atomic.get t.buf in
    let v = buf.(tp land (Array.length buf - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end

(* Racy size estimate; only for heuristics/tests, never for
   correctness. *)
let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

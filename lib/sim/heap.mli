(** 4-ary min-heap used as the simulator's event queue.

    Entries are ordered by a primary integer key (simulated time) with a
    strictly increasing sequence number as tie-breaker, so two events
    scheduled for the same instant pop in insertion order.  This total
    order is what makes the simulator deterministic.

    The heap is stored as parallel key/seq/value arrays: pushing
    allocates nothing once the backing arrays have reached capacity, and
    the [_exn] accessors below let a drain loop run allocation-free
    (no option or tuple boxing). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** [push t ~key v] inserts [v] with priority [key].  Insertion order among
    equal keys is preserved on [pop]. *)

val push_seq : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push_seq t ~key ~seq v] inserts with an explicitly chosen tie-break
    sequence number, for callers that interleave the heap with a second
    queue sharing one global sequence counter (the engine's due-now
    FIFO).  [seq] values must be distinct; the internal counter used by
    {!push} is bumped past [seq]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry as [(key, value)], or [None] when
    empty. *)

val pop_min_exn : 'a t -> 'a
(** Remove the minimum entry and return its value only — no tuple or
    option allocation.  Raises [Invalid_argument] when empty. *)

val top_key_exn : 'a t -> int
(** Key of the minimum entry.  Raises [Invalid_argument] when empty. *)

val top_seq_exn : 'a t -> int
(** Sequence number of the minimum entry.  Raises [Invalid_argument] when
    empty. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry without removing it. *)

val clear : 'a t -> unit
(** Empty the heap (capacity, and any values it holds, are retained). *)

val to_list : 'a t -> (int * 'a) list
(** Snapshot of current contents in pop order; O(n log n), for tests and
    debugging only (the heap is unchanged). *)

(** Deterministic discrete-event simulation engine.

    The engine runs a set of cooperative simulated threads ("fibers"), each
    pinned to its own simulated core, over a virtual nanosecond clock.
    Fibers are ordinary OCaml functions written in direct style; they
    interact with simulated time through the operations below, which are
    implemented with effect handlers.

    Determinism: all scheduling ties are broken by event insertion order,
    so a run is a pure function of the program and the engine's PRNG seed.
    Modelled nondeterminism (latency jitter, racy wake-ups) must be drawn
    explicitly from {!prng}. *)

type t

type tid = int
(** Simulated thread id.  The first spawned fiber gets id 0. *)

exception Deadlock of string
(** Raised by {!run} when no fiber is runnable but some are still blocked:
    the simulated program has deadlocked.  The payload lists the stuck
    fibers and their block reasons. *)

exception Stuck of string
(** Raised when the simulation exceeds its safety event budget; indicates
    a runaway model (e.g. an ad-hoc synchronization spin loop that no
    commit will ever break, cf. paper section 2.7). *)

val create : ?max_events:int -> seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose jitter streams derive from
    [seed].  [max_events] (default 50_000_000) bounds total scheduler
    dispatches as a runaway guard. *)

val prng : t -> Prng.t
(** The engine's master PRNG.  Subsystems should [Prng.split] it. *)

val now : t -> int
(** Current simulated time in nanoseconds.  Outside {!run} this is the
    final time of the last run. *)

val spawn : t -> ?name:string -> (unit -> unit) -> tid
(** Register a fiber.  May be called before {!run} or from inside a running
    fiber.  The fiber becomes runnable at the current simulated time. *)

val run : t -> unit
(** Execute until no events remain.  Raises {!Deadlock} if blocked fibers
    remain when the queue drains. *)

val fiber_count : t -> int
(** Number of fibers ever spawned. *)

val events : t -> int
(** Scheduler events processed so far (dispatches plus fast-path
    advances); a load metric for the engine itself. *)

val dispatches : t -> int
(** Events that went through the queues and an effect round-trip, i.e.
    [events] minus the advances the fast path absorbed. *)

val name_of : t -> tid -> string

(** {1 Operations available inside fibers}

    These must only be called from within a fiber executing under {!run}
    of the engine they were given. *)

val self : t -> tid
(** Id of the calling fiber. *)

val advance : t -> int -> unit
(** [advance t ns] consumes [ns] nanoseconds of simulated time.  Other
    fibers with earlier wake times run "in parallel" during this window.
    [ns] must be >= 0. *)

val block : t -> reason:string -> unit
(** Deschedule the calling fiber until some other fiber calls {!wakeup} on
    it.  If a wakeup was already pending (posted while this fiber was
    running), returns immediately and consumes the pending wakeup: wakeups
    behave like a binary permit, so the signal-then-block race inherent in
    futex-style code cannot lose a wakeup. *)

val wakeup : t -> tid -> unit
(** Make [tid] runnable at the current simulated time (or post a pending
    permit if it is not blocked).  Waking a finished fiber is a no-op.
    Same-instant wakeups take an O(1) fast path: the resume event goes to
    a due-now ring instead of the timed heap, skipping the sift. *)

val blocked_reason : t -> tid -> string option
(** [Some reason] if the fiber is currently blocked, [None] otherwise. *)

val is_finished : t -> tid -> bool

val exit_fiber : t -> 'a
(** Terminate the calling fiber immediately. *)

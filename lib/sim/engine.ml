open Effect
open Effect.Deep

type tid = int

exception Deadlock of string
exception Stuck of string

(* Raised inside a fiber to unwind it; caught by the fiber wrapper. *)
exception Fiber_exit

type _ Effect.t += Advance : int -> unit Effect.t
type _ Effect.t += Block : string -> unit Effect.t

(* What to run when a queued event for this fiber is dispatched.  Kept on
   the fiber record so the event queues only carry fiber ids (immediate
   ints): scheduling an event allocates no closure and no heap entry. *)
type resume_kind =
  | Start of (unit -> unit) (* first dispatch: run the fiber body *)
  | Resume of (unit, unit) continuation
  | No_resume

type fiber_state =
  | Ready (* an event in a queue will resume it *)
  | Running
  | Blocked of (unit, unit) continuation * string
  | Finished

type fiber = {
  id : tid;
  name : string;
  mutable state : fiber_state;
  mutable resume : resume_kind;
  mutable pending_wakeup : bool;
}

type t = {
  (* Dense fiber table: ids are handed out 0, 1, 2, ... so a flat array
     indexed by id replaces a hashtable on the dispatch hot path.  Slots
     >= next_id hold [dummy_fiber]. *)
  mutable fibers : fiber array;
  queue : tid Heap.t; (* events due at a future instant *)
  (* Ring buffer of events due at the current instant [now].  Entries are
     (fiber id, seq); their key is implicitly [now] — simulated time
     cannot advance while the ring is non-empty, because every heap entry
     is due no earlier.  Scheduling here is O(1) with no sift. *)
  mutable fifo_ids : int array;
  mutable fifo_seqs : int array;
  mutable fifo_head : int;
  mutable fifo_len : int;
  mutable next_seq : int; (* shared tie-break counter for heap + ring *)
  mutable now : int;
  mutable current : tid;
  mutable next_id : tid;
  mutable events : int;
  mutable dispatches : int;
  max_events : int;
  master_prng : Prng.t;
}

let dummy_fiber =
  { id = -1; name = ""; state = Finished; resume = No_resume; pending_wakeup = false }

let create ?(max_events = 50_000_000) ~seed () =
  {
    fibers = Array.make 16 dummy_fiber;
    queue = Heap.create ();
    fifo_ids = Array.make 16 0;
    fifo_seqs = Array.make 16 0;
    fifo_head = 0;
    fifo_len = 0;
    next_seq = 0;
    now = 0;
    current = -1;
    next_id = 0;
    events = 0;
    dispatches = 0;
    max_events;
    master_prng = Prng.create ~seed;
  }

let prng t = t.master_prng
let now t = t.now
let fiber_count t = t.next_id
let events t = t.events
let dispatches t = t.dispatches

let fiber_of t id =
  if id >= 0 && id < t.next_id then t.fibers.(id)
  else invalid_arg (Printf.sprintf "Engine: unknown fiber %d" id)

let name_of t id = (fiber_of t id).name

let fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

(* --- due-now ring ------------------------------------------------- *)

let fifo_push t id seq =
  let cap = Array.length t.fifo_ids in
  if t.fifo_len = cap then begin
    let ncap = cap * 2 in
    let ids = Array.make ncap 0 and seqs = Array.make ncap 0 in
    for i = 0 to t.fifo_len - 1 do
      let j = (t.fifo_head + i) land (cap - 1) in
      ids.(i) <- t.fifo_ids.(j);
      seqs.(i) <- t.fifo_seqs.(j)
    done;
    t.fifo_ids <- ids;
    t.fifo_seqs <- seqs;
    t.fifo_head <- 0
  end;
  let cap = Array.length t.fifo_ids in
  let i = (t.fifo_head + t.fifo_len) land (cap - 1) in
  t.fifo_ids.(i) <- id;
  t.fifo_seqs.(i) <- seq;
  t.fifo_len <- t.fifo_len + 1

let fifo_pop t =
  let id = t.fifo_ids.(t.fifo_head) in
  t.fifo_head <- (t.fifo_head + 1) land (Array.length t.fifo_ids - 1);
  t.fifo_len <- t.fifo_len - 1;
  id

(* --- scheduling ---------------------------------------------------- *)

(* Make [fiber] runnable at the current instant: same-timestamp fast
   path, skipping the heap entirely. *)
let schedule_now t fiber =
  fiber.state <- Ready;
  fifo_push t fiber.id (fresh_seq t)

let schedule_at t fiber ~key =
  fiber.state <- Ready;
  if key = t.now then fifo_push t fiber.id (fresh_seq t)
  else Heap.push_seq t.queue ~key ~seq:(fresh_seq t) fiber.id

let schedule_resume t fiber k =
  fiber.resume <- Resume k;
  schedule_now t fiber

let run_fiber t fiber body =
  match_with
    (fun () -> (try body () with Fiber_exit -> ()))
    ()
    {
      retc = (fun () -> fiber.state <- Finished);
      exnc =
        (fun e ->
          fiber.state <- Finished;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.resume <- Resume k;
                  schedule_at t fiber ~key:(t.now + ns))
          | Block reason ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if fiber.pending_wakeup then begin
                    (* A wakeup arrived before we blocked: consume the
                       permit and resume at the current instant. *)
                    fiber.pending_wakeup <- false;
                    schedule_resume t fiber k
                  end
                  else fiber.state <- Blocked (k, reason))
          | _ -> None);
    }

let spawn t ?name body =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" id in
  let fiber = { id; name; state = Ready; resume = Start body; pending_wakeup = false } in
  let cap = Array.length t.fibers in
  if id >= cap then begin
    let grown = Array.make (cap * 2) dummy_fiber in
    Array.blit t.fibers 0 grown 0 cap;
    t.fibers <- grown
  end;
  t.fibers.(id) <- fiber;
  schedule_now t fiber;
  id

let wakeup t id =
  let fiber = fiber_of t id in
  match fiber.state with
  | Blocked (k, _) -> schedule_resume t fiber k
  | Finished -> ()
  | Ready | Running -> fiber.pending_wakeup <- true

let blocked_reason t id =
  match (fiber_of t id).state with
  | Blocked (_, reason) -> Some reason
  | Ready | Running | Finished -> None

let is_finished t id = (fiber_of t id).state = Finished

let self t =
  if t.current < 0 then invalid_arg "Engine.self: no fiber is running";
  t.current

let advance t ns =
  if ns < 0 then invalid_arg "Engine.advance: negative duration";
  (* Solo fast path: when the due-now ring is empty and every heap event
     is due strictly after [now + ns], the Advance event would be pushed
     and immediately popped with no other dispatch in between — the
     schedule is identical if we bump the clock in place and keep
     running, skipping the effect round-trip entirely.  (Strictness
     matters: an event already queued at exactly [now + ns] carries a
     smaller seq and must run before our continuation.) *)
  if
    t.fifo_len = 0
    && (Heap.is_empty t.queue || Heap.top_key_exn t.queue > t.now + ns)
  then begin
    (* A skipped Advance still counts against the event budget, so a
       fiber spinning in an advance loop with everyone else blocked
       raises Stuck exactly as it would through the queue. *)
    t.events <- t.events + 1;
    if t.events >= t.max_events then
      raise
        (Stuck
           (Printf.sprintf "event budget (%d) exhausted at t=%dns" t.max_events t.now));
    t.now <- t.now + ns
  end
  else perform (Advance ns)

let block t ~reason =
  ignore t;
  perform (Block reason)

let exit_fiber _t = raise Fiber_exit

let stuck_fibers t =
  let acc = ref [] in
  for id = t.next_id - 1 downto 0 do
    match t.fibers.(id).state with
    | Blocked (_, reason) -> acc := (t.fibers.(id).name, reason) :: !acc
    | Ready | Running | Finished -> ()
  done;
  !acc

let dispatch t id =
  t.dispatches <- t.dispatches + 1;
  let fiber = Array.unsafe_get t.fibers id in
  let resume = fiber.resume in
  fiber.resume <- No_resume;
  fiber.state <- Running;
  t.current <- id;
  match resume with
  | Start body -> run_fiber t fiber body
  | Resume k -> continue k ()
  | No_resume -> assert false

let run t =
  let rec loop () =
    if t.events >= t.max_events then
      raise
        (Stuck
           (Printf.sprintf "event budget (%d) exhausted at t=%dns" t.max_events
              t.now));
    if t.fifo_len = 0 && Heap.is_empty t.queue then begin
      let stuck = stuck_fibers t in
      if stuck <> [] then
        let detail =
          stuck
          |> List.sort compare
          |> List.map (fun (name, reason) -> Printf.sprintf "%s (%s)" name reason)
          |> String.concat ", "
        in
        raise (Deadlock detail)
    end
    else begin
      t.events <- t.events + 1;
      (* The next event is the smaller of (ring head, heap root) in
         (key, seq) order; every ring entry has key = now. *)
      let use_ring =
        t.fifo_len > 0
        && (Heap.is_empty t.queue
           || Heap.top_key_exn t.queue > t.now
           || Heap.top_seq_exn t.queue > t.fifo_seqs.(t.fifo_head))
      in
      let id =
        if use_ring then fifo_pop t
        else begin
          let key = Heap.top_key_exn t.queue in
          (* Simulated time is monotone: an event can never run before an
             already-dispatched one. *)
          if key > t.now then t.now <- key;
          Heap.pop_min_exn t.queue
        end
      in
      dispatch t id;
      loop ()
    end
  in
  loop ()

let jobs_ref = ref 1

let set_jobs n = jobs_ref := max 1 n
let jobs () = !jobs_ref

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map_array f arr =
  let n = Array.length arr in
  let k = min !jobs_ref n in
  if k <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let err = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get err <> None then continue := false
        else
          match f arr.(i) with
          | r -> results.(i) <- Some r
          | exception e -> ignore (Atomic.compare_and_set err None (Some e))
      done
    in
    let domains = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the k-th worker; join the rest even if it
       trips an exception so no domain outlives the call. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join domains) worker;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end

let map_list f l = Array.to_list (map_array f (Array.of_list l))

let concat_map f l = List.concat (map_list f l)

(* ------------------------------------------------------------------ *)
(* Persistent worker pool                                             *)
(* ------------------------------------------------------------------ *)

(* [map_array] spawns fresh domains per call, which is fine for figure
   sweeps (seconds of work per call) but far too heavy for fine-grained
   fan-out such as installing the shards of one segment commit
   (microseconds of work, thousands of calls).  A [pool] keeps its
   workers parked on a condition variable between jobs, so dispatch
   costs a broadcast instead of k Domain.spawn. *)

(* Each dispatch publishes a fresh immutable job descriptor with its own
   claim/pending counters; workers capture the descriptor under [pm]
   when they observe the generation change and claim indices only from
   it.  This is what makes back-to-back jobs safe: a straggler that is
   still inside [pool_work] when the next job is dispatched keeps
   claiming from the *old* descriptor, whose exhausted counter sends it
   back to park — it can never run (or double-complete) an index of the
   new job.  Mutating shared slots in place instead would let exactly
   that happen. *)
type job = {
  fn : int -> unit;
  count : int;
  next : int Atomic.t;
  pending : int Atomic.t;  (* indices not yet completed in this job *)
  err : exn option Atomic.t;
}

let idle_job () =
  { fn = ignore; count = 0; next = Atomic.make 0; pending = Atomic.make 0;
    err = Atomic.make None }

type pool = {
  pm : Mutex.t;  (* protects job / gen / stop and the two condition variables *)
  job_m : Mutex.t;  (* serializes submitters; try_run refuses instead of queueing *)
  cv_work : Condition.t;
  cv_done : Condition.t;
  mutable job : job;  (* current job; published and captured under [pm] *)
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

(* Claim and run indices until [j] is exhausted.  Exceptions are
   captured (first wins) and re-raised by the submitter; every claimed
   index still counts as completed so the job always drains. *)
let pool_work p (j : job) =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add j.next 1 in
    if i >= j.count then continue := false
    else begin
      (try j.fn i
       with e -> ignore (Atomic.compare_and_set j.err None (Some e)));
      if Atomic.fetch_and_add j.pending (-1) = 1 then begin
        Mutex.lock p.pm;
        Condition.broadcast p.cv_done;
        Mutex.unlock p.pm
      end
    end
  done

let pool_worker p =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.pm;
    while p.gen = !last_gen && not p.stop do
      Condition.wait p.cv_work p.pm
    done;
    let stop = p.stop in
    last_gen := p.gen;
    let j = p.job in
    Mutex.unlock p.pm;
    if stop then running := false else pool_work p j
  done

let create_pool ?workers () =
  let workers =
    match workers with Some w -> max 0 w | None -> max 0 (default_jobs () - 1)
  in
  let p =
    {
      pm = Mutex.create ();
      job_m = Mutex.create ();
      cv_work = Condition.create ();
      cv_done = Condition.create ();
      job = idle_job ();
      gen = 0;
      stop = false;
      domains = [||];
    }
  in
  p.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> pool_worker p));
  p

let pool_size p = Array.length p.domains + 1

(* Run the job while holding [job_m]: publish a fresh descriptor, wake
   the workers, work alongside them, then wait until every index has
   completed (not merely been claimed).  The job record is a small
   per-dispatch allocation — the price of making stragglers from the
   previous job harmless (see the [job] comment above). *)
let pool_dispatch p n f =
  let j =
    { fn = f; count = n; next = Atomic.make 0; pending = Atomic.make n;
      err = Atomic.make None }
  in
  Mutex.lock p.pm;
  p.job <- j;
  p.gen <- p.gen + 1;
  Condition.broadcast p.cv_work;
  Mutex.unlock p.pm;
  pool_work p j;
  Mutex.lock p.pm;
  while Atomic.get j.pending > 0 do
    Condition.wait p.cv_done p.pm
  done;
  (* Drop the closure reference; late wakers find an exhausted job. *)
  p.job <- idle_job ();
  Mutex.unlock p.pm;
  match Atomic.get j.err with Some e -> raise e | None -> ()

let run_pool p n f =
  if n > 0 then
    if Array.length p.domains = 0 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      Mutex.lock p.job_m;
      Fun.protect ~finally:(fun () -> Mutex.unlock p.job_m) (fun () -> pool_dispatch p n f)
    end

let try_run_pool p n f =
  if n <= 0 then true
  else if Array.length p.domains = 0 then false
  else if not (Mutex.try_lock p.job_m) then false
  else begin
    Fun.protect ~finally:(fun () -> Mutex.unlock p.job_m) (fun () -> pool_dispatch p n f);
    true
  end

let shutdown_pool p =
  Mutex.lock p.job_m;
  Mutex.lock p.pm;
  p.stop <- true;
  Condition.broadcast p.cv_work;
  Mutex.unlock p.pm;
  Array.iter Domain.join p.domains;
  p.domains <- [||];
  Mutex.unlock p.job_m

(* Process-wide shared pool, created on first use and shut down at exit
   so no worker domain outlives the program.  Capped: the pool exists
   for small structured fan-outs (per-shard installs), not sweeps. *)
let shared = ref None
let shared_m = Mutex.create ()

let shared_pool () =
  Mutex.lock shared_m;
  let p =
    match !shared with
    | Some p -> p
    | None ->
        let p = create_pool ~workers:(min 7 (max 0 (default_jobs () - 1))) () in
        shared := Some p;
        at_exit (fun () ->
            Mutex.lock shared_m;
            (match !shared with Some p -> shutdown_pool p | None -> ());
            shared := None;
            Mutex.unlock shared_m);
        p
  in
  Mutex.unlock shared_m;
  p

(* Tear down the shared pool so its worker domains don't sit idle (or
   compete for cores with real-parallel backends) between bench
   sections.  The next [shared_pool] call lazily re-creates it. *)
let shutdown_shared () =
  Mutex.lock shared_m;
  (match !shared with Some p -> shutdown_pool p | None -> ());
  shared := None;
  Mutex.unlock shared_m

let jobs_ref = ref 1

let set_jobs n = jobs_ref := max 1 n
let jobs () = !jobs_ref

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map_array f arr =
  let n = Array.length arr in
  let k = min !jobs_ref n in
  if k <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let err = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get err <> None then continue := false
        else
          match f arr.(i) with
          | r -> results.(i) <- Some r
          | exception e -> ignore (Atomic.compare_and_set err None (Some e))
      done
    in
    let domains = Array.init (k - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the k-th worker; join the rest even if it
       trips an exception so no domain outlives the call. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join domains) worker;
    (match Atomic.get err with Some e -> raise e | None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end

let map_list f l = Array.to_list (map_array f (Array.of_list l))

let concat_map f l = List.concat (map_list f l)

(** Chase–Lev work-stealing deque (single owner, many thieves).
    [push]/[pop] are owner-only; [steal] may be called from any domain.
    Every pushed element is delivered exactly once, to either the owner
    or one thief (property-tested in test/sim). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only; LIFO end. *)

val steal : 'a t -> 'a option
(** Any domain; FIFO end.  [None] on empty or lost race. *)

val size : 'a t -> int
(** Racy estimate; heuristics only. *)

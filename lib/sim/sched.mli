(** Work-stealing green-thread scheduler over real OCaml 5 domains:
    the real-parallel counterpart of {!Engine}.  Green threads are
    effect fibers multiplexed over [workers] domains via per-worker
    Chase–Lev deques ({!Wsq}) plus an MPMC injection queue ({!Mpmc}).

    A global runtime lock (GRL) gives green bodies the same
    mutual-exclusion guarantee they had on the single-domain DES; it is
    held for the whole body except while suspended in {!block} or
    explicitly released via {!unlock}/{!lock} around real work.
    {!block}/{!wakeup} keep {!Engine.block}'s binary-permit
    semantics. *)

type t

val create : ?workers:int -> unit -> t
(** [workers] defaults to 1 (clamped to at least 1). *)

val workers : t -> int

val spawn : t -> name:string -> (unit -> unit) -> int
(** Register a green thread (ids sequential from 0) and make it
    runnable.  Call before {!run} or from a green body (GRL held). *)

val block : t -> reason:string -> unit
(** Suspend the calling green until {!wakeup}; must be called from a
    green body with the GRL held.  Consumes a pending permit instead of
    suspending when one is present. *)

val wakeup : t -> int -> unit
(** Make a blocked green runnable, or leave a permit if it is running.
    No-op for finished/unknown ids.  Requires the GRL. *)

val lock : t -> unit
val unlock : t -> unit
(** The global runtime lock, for releasing around real work. *)

val run : t -> unit
(** Run workers until quiescence; the calling domain is worker 0.
    Re-raises the first exception from a green body.
    @raise Engine.Deadlock if greens are still blocked at quiescence. *)

(** Execution substrate: the capability record through which the
    deterministic runtime drives its scheduler.  [of_engine] wraps the
    discrete-event simulator; the real-multicore backend builds one
    over {!Sched} (see [Runtime.Domains_rt]).  Writing the runtime
    algorithms against this record is what makes cross-backend witness
    identity a structural property. *)

type t = {
  now : unit -> int;
      (** Simulated ns (DES) or wall ns since run start (real). *)
  advance : int -> unit;  (** Consume modelled time; no-op when real. *)
  block : reason:string -> unit;
      (** Deschedule until [wakeup]; binary-permit semantics as in
          {!Engine.block}. *)
  wakeup : int -> unit;
  spawn : name:string -> (unit -> unit) -> int;
      (** Register a green thread; ids are sequential from 0. *)
  prng : Prng.t;
  real : bool;
      (** True on a real-parallel backend: skip concurrent-unsafe
          maintenance, perform real work where the DES charges model
          time. *)
  spin : int -> unit;  (** Execute [n] instructions of real work. *)
  lock : unit -> unit;
  unlock : unit -> unit;
      (** Global runtime lock (real backends); no-ops on the DES. *)
}

val of_engine : Engine.t -> t

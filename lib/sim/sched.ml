(* Work-stealing green-thread scheduler over real OCaml 5 domains: the
   real-parallel counterpart of [Engine].  Green threads are effect
   fibers multiplexed over N worker domains, each with a Chase–Lev
   deque ([Wsq]) plus a shared MPMC injection queue ([Mpmc]) for
   submissions from off-worker contexts.

   Concurrency protocol (mirrors [Engine]'s single-domain semantics):

   - A *global runtime lock* (GRL) serializes all runtime bookkeeping.
     Every green body runs with the GRL held; it is released while the
     green is suspended in [block], and callers may release/reacquire
     it around real work via [lock]/[unlock].  This gives green bodies
     the same mutual-exclusion guarantee they had on the DES, while
     the deterministic token protocol (not the GRL) provides the
     ordering that makes results schedule-independent.
   - [block]/[wakeup] have binary-permit semantics exactly like
     [Engine.block]/[Engine.wakeup]: a wakeup delivered while the green
     is running sets a [pending] permit consumed by its next block.
   - Mutex discipline: the GRL is locked and unlocked on whichever
     worker currently executes the fiber, and every lock/unlock pair
     completes within one execution segment (fibers migrate across
     domains only while suspended), so single-domain Mutex ownership is
     respected.  Lock order is GRL before [park_m]; the park path never
     takes the GRL.
   - Publication of a green to another worker goes through an atomic
     queue push (SC), which orders the preceding [cont]/[body] writes
     before the consuming worker's pop.

   Termination: [outstanding] counts queued-or-running greens.  Wakeups
   only originate from running greens, so when it reaches zero no green
   can ever become runnable again — workers quiesce.  Greens still
   blocked at quiescence are reported as a deadlock, matching
   [Engine.Deadlock]. *)

type green = {
  gid : int;
  gname : string;
  mutable body : (unit -> unit) option;  (* before first run *)
  mutable cont : (unit, unit) Effect.Deep.continuation option;  (* suspended *)
  mutable blocked : bool;   (* waiting for a wakeup *)
  mutable pending : bool;   (* wakeup permit delivered while running *)
  mutable finished : bool;
  mutable reason : string;  (* why blocked, for deadlock reports *)
}

type t = {
  uid : int;  (* distinguishes schedulers in the per-domain worker key *)
  grl : Mutex.t;
  park_m : Mutex.t;
  park_c : Condition.t;
  mutable greens : green option array;  (* gid-indexed; grown on demand *)
  mutable ngreens : int;
  outstanding : int Atomic.t;  (* queued + running greens *)
  finished_flag : bool Atomic.t;
  abort : bool Atomic.t;
  err : exn option Atomic.t;
  deques : green Wsq.t array;
  inject : green Mpmc.t;
  nworkers : int;
  current : green option array;  (* green running on each worker *)
  mutable started : bool;
}

type _ Effect.t += Block : unit Effect.t

let uid_counter = Atomic.make 0

(* (scheduler uid, worker index) of the current domain; (-1, -1) when
   the domain is not a worker. *)
let worker_key : (int * int) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (-1, -1))

let create ?(workers = 1) () =
  let nworkers = max 1 workers in
  {
    uid = Atomic.fetch_and_add uid_counter 1;
    grl = Mutex.create ();
    park_m = Mutex.create ();
    park_c = Condition.create ();
    greens = Array.make 16 None;
    ngreens = 0;
    outstanding = Atomic.make 0;
    finished_flag = Atomic.make false;
    abort = Atomic.make false;
    err = Atomic.make None;
    deques = Array.init nworkers (fun _ -> Wsq.create ());
    inject = Mpmc.create ();
    nworkers;
    current = Array.make nworkers None;
    started = false;
  }

let workers t = t.nworkers

let my_worker t =
  let suid, w = Domain.DLS.get worker_key in
  if suid = t.uid then w else -1

(* Make [g] runnable.  Callers must have accounted for it not being in
   any queue (fresh spawn, or blocked -> runnable transition). *)
let enqueue t g =
  Atomic.incr t.outstanding;
  let w = my_worker t in
  if t.started && w >= 0 then Wsq.push t.deques.(w) g
  else Mpmc.push t.inject g;
  (* Wake one sleeper.  Taking park_m orders this signal after any
     in-progress recheck-then-wait in [park]. *)
  Mutex.lock t.park_m;
  Condition.signal t.park_c;
  Mutex.unlock t.park_m

let find_green t gid =
  if gid >= 0 && gid < t.ngreens then t.greens.(gid) else None

(* ---- operations available to green bodies (GRL held) -------------- *)

let spawn t ~name body =
  let gid = t.ngreens in
  let g =
    { gid; gname = name; body = Some body; cont = None; blocked = false;
      pending = false; finished = false; reason = "" }
  in
  if gid >= Array.length t.greens then begin
    let bigger = Array.make (2 * Array.length t.greens) None in
    Array.blit t.greens 0 bigger 0 t.ngreens;
    t.greens <- bigger
  end;
  t.greens.(gid) <- Some g;
  t.ngreens <- gid + 1;
  enqueue t g;
  gid

let wakeup t gid =
  match find_green t gid with
  | None -> ()
  | Some g ->
      if g.finished then ()
      else if g.blocked then begin
        g.blocked <- false;
        enqueue t g
      end
      else g.pending <- true

let block t ~reason =
  let w = my_worker t in
  if w < 0 then invalid_arg "Sched.block: not on a worker domain";
  let g =
    match t.current.(w) with
    | Some g -> g
    | None -> invalid_arg "Sched.block: no current green"
  in
  if g.pending then g.pending <- false
  else begin
    g.reason <- reason;
    (* Suspends this fiber; the effect handler releases the GRL.  When
       a wakeup reschedules us, the resuming worker reacquires it
       before continuing, so the caller observes an uninterrupted
       critical section. *)
    Effect.perform Block;
    Mutex.lock t.grl
  end

let lock t = Mutex.lock t.grl
let unlock t = Mutex.unlock t.grl

(* ---- worker machinery --------------------------------------------- *)

let broadcast_park t =
  Mutex.lock t.park_m;
  Condition.broadcast t.park_c;
  Mutex.unlock t.park_m

let green_finished t g =
  (* Runs on the worker, GRL already released by the body's protect. *)
  Mutex.lock t.grl;
  g.finished <- true;
  Mutex.unlock t.grl

let green_raised t g e =
  Mutex.lock t.grl;
  g.finished <- true;
  Mutex.unlock t.grl;
  ignore (Atomic.compare_and_set t.err None (Some e));
  Atomic.set t.abort true;
  broadcast_park t

(* Handler for [Block]: runs on the worker's stack with the GRL held
   (the perform site holds it).  Parks or immediately requeues the
   green, then releases the GRL — the worker returns to its loop. *)
let on_block t g (k : (unit, unit) Effect.Deep.continuation) =
  g.cont <- Some k;
  if g.pending then begin
    (* Wakeup raced in between the pending check and the perform:
       consume it and stay runnable. *)
    g.pending <- false;
    enqueue t g
  end
  else g.blocked <- true;
  Mutex.unlock t.grl

let run_green t w g =
  t.current.(w) <- Some g;
  (match g.body with
  | Some body ->
      g.body <- None;
      Effect.Deep.match_with
        (fun () ->
          Mutex.lock t.grl;
          Fun.protect ~finally:(fun () -> Mutex.unlock t.grl) body)
        ()
        {
          Effect.Deep.retc = (fun () -> green_finished t g);
          exnc = (fun e -> green_raised t g e);
          effc =
            (fun (type b) (eff : b Effect.t) ->
              match eff with
              | Block ->
                  Some
                    (fun (k : (b, unit) Effect.Deep.continuation) ->
                      on_block t g k)
              | _ -> None);
        }
  | None -> (
      match g.cont with
      | Some k ->
          g.cont <- None;
          (* The original handler travels with the continuation:
             exceptions and further Blocks are still routed to it. *)
          Effect.Deep.continue k ()
      | None -> assert false));
  t.current.(w) <- None

let steal t w =
  let n = t.nworkers in
  let rec go i =
    if i >= n - 1 then None
    else
      let v = (w + 1 + i) mod n in
      match Wsq.steal t.deques.(v) with
      | Some _ as r -> r
      | None -> go (i + 1)
  in
  if n <= 1 then None else go 0

let find_work t w =
  match Wsq.pop t.deques.(w) with
  | Some _ as r -> r
  | None -> (
      match Mpmc.pop t.inject with Some _ as r -> r | None -> steal t w)

(* Sleep until work appears or the scheduler quiesces.  Rechecks the
   queues under [park_m] before each wait so a producer's push-then-
   signal can't be lost. *)
let park t w =
  Mutex.lock t.park_m;
  let rec wait_loop () =
    if
      Atomic.get t.abort
      || Atomic.get t.finished_flag
      || Atomic.get t.outstanding = 0
    then None
    else
      match find_work t w with
      | Some _ as r -> r
      | None ->
          Condition.wait t.park_c t.park_m;
          wait_loop ()
  in
  let r = wait_loop () in
  Mutex.unlock t.park_m;
  r

let worker_loop t w =
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get t.abort || Atomic.get t.finished_flag then continue_ := false
    else begin
      let task = match find_work t w with Some _ as r -> r | None -> park t w in
      match task with
      | None -> continue_ := false
      | Some g ->
          run_green t w g;
          if Atomic.fetch_and_add t.outstanding (-1) = 1 then begin
            (* Last queued-or-running green just left the system: no
               wakeup source remains, so this is quiescence. *)
            Atomic.set t.finished_flag true;
            broadcast_park t
          end
    end
  done

let run t =
  if t.started then invalid_arg "Sched.run: already run";
  t.started <- true;
  let worker w () =
    let saved = Domain.DLS.get worker_key in
    Domain.DLS.set worker_key (t.uid, w);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set worker_key saved)
      (fun () -> worker_loop t w)
  in
  let domains =
    Array.init (t.nworkers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  (* The calling domain is worker 0. *)
  Fun.protect
    ~finally:(fun () -> Array.iter Domain.join domains)
    (worker 0);
  (match Atomic.get t.err with Some e -> raise e | None -> ());
  (* Quiescence with blocked greens = deadlock, as on the DES. *)
  let stuck = ref [] in
  for gid = t.ngreens - 1 downto 0 do
    match t.greens.(gid) with
    | Some g when g.blocked && not g.finished ->
        stuck := Printf.sprintf "%d:%s(%s)" g.gid g.gname g.reason :: !stuck
    | _ -> ()
  done;
  if !stuck <> [] then
    raise
      (Engine.Deadlock
         (Printf.sprintf "all domains idle; blocked: %s"
            (String.concat ", " !stuck)))

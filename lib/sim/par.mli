(** Deterministic fan-out of independent simulations over OCaml domains.

    Figure sweeps are bags of independent, self-contained deterministic
    runs: each run builds all of its own state, so runs can execute on
    any domain in any order.  The combinators here preserve {e input
    order} when gathering results, so the assembled figure data — and
    every byte of the rendered output — is identical to a sequential
    run regardless of the worker count or scheduling.

    The worker count is a process-global knob (default 1 = sequential)
    so `-j N` can be threaded once through the drivers rather than
    through every call site. *)

val set_jobs : int -> unit
(** Set the worker-domain count used by subsequent maps.  Values below 1
    are clamped to 1 (sequential).  Call once from the driver before any
    parallel map; the knob is not synchronized for mid-map changes. *)

val jobs : unit -> int
(** Current worker count. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to. *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] is [Array.map f arr], computed by up to
    [jobs ()] domains pulling indices from a shared counter.  Results
    are placed at their input index.  If any [f] raises, one of the
    raised exceptions is re-raised after all domains are joined. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}; preserves order. *)

val concat_map : ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map f l] is [List.concat_map f l] with the per-element
    calls fanned out; concatenation order follows the input order. *)

(** {1 Persistent worker pool}

    {!map_array} spawns fresh domains per call — right for sweeps
    (seconds of work per call), far too heavy for fine-grained fan-out
    such as installing the shards of one segment commit.  A {!pool}
    keeps its workers parked on a condition variable between jobs, so
    dispatching a job costs a broadcast instead of k [Domain.spawn]. *)

type pool

val create_pool : ?workers:int -> unit -> pool
(** Spawn a pool with [workers] parked worker domains (default
    [default_jobs () - 1]).  [workers = 0] is legal: {!run_pool}
    degrades to a sequential loop and {!try_run_pool} always refuses. *)

val pool_size : pool -> int
(** Worker domains plus the submitting caller — the maximum number of
    indices that can run concurrently in one job. *)

val run_pool : pool -> int -> (int -> unit) -> unit
(** [run_pool p n f] runs [f 0 .. f (n-1)] across the pool's workers
    plus the calling domain, returning when all have completed.
    Submitters are serialized (a second caller blocks until the current
    job drains).  If any [f] raises, one of the exceptions is re-raised
    after the job drains. *)

val try_run_pool : pool -> int -> (int -> unit) -> bool
(** Like {!run_pool} but refuses (returns [false], running nothing)
    instead of blocking when another job is in flight or the pool has
    no workers.  Callers fall back to their serial path — this is what
    lets concurrently-simulated runs under a [-j] sweep share one pool
    without contending on it. *)

val shutdown_pool : pool -> unit
(** Join all worker domains.  The pool remains usable afterwards in the
    degraded [workers = 0] sense. *)

val shared_pool : unit -> pool
(** Process-wide pool, created on first use (at most
    [min 7 (default_jobs () - 1)] workers) and shut down [at_exit]. *)

val shutdown_shared : unit -> unit
(** Join the shared pool's worker domains now (no-op when absent).  The
    next {!shared_pool} call re-creates it lazily — call between bench
    sections or before real-parallel runs so idle pool domains don't
    stay parked on the machine's cores. *)

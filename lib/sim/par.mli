(** Deterministic fan-out of independent simulations over OCaml domains.

    Figure sweeps are bags of independent, self-contained deterministic
    runs: each run builds all of its own state, so runs can execute on
    any domain in any order.  The combinators here preserve {e input
    order} when gathering results, so the assembled figure data — and
    every byte of the rendered output — is identical to a sequential
    run regardless of the worker count or scheduling.

    The worker count is a process-global knob (default 1 = sequential)
    so `-j N` can be threaded once through the drivers rather than
    through every call site. *)

val set_jobs : int -> unit
(** Set the worker-domain count used by subsequent maps.  Values below 1
    are clamped to 1 (sequential).  Call once from the driver before any
    parallel map; the knob is not synchronized for mid-map changes. *)

val jobs : unit -> int
(** Current worker count. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [-j 0] resolves to. *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** [map_array f arr] is [Array.map f arr], computed by up to
    [jobs ()] domains pulling indices from a shared counter.  Results
    are placed at their input index.  If any [f] raises, one of the
    raised exceptions is re-raised after all domains are joined. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}; preserves order. *)

val concat_map : ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map f l] is [List.concat_map f l] with the per-element
    calls fanned out; concatenation order follows the input order. *)

(* Min-heap over (key, seq) pairs stored as parallel arrays: no per-entry
   record is allocated, so a push/pop cycle is allocation-free once the
   backing arrays have grown to capacity.  The tree is 4-ary: one level
   shallower than a binary heap for typical queue sizes, and the four
   children of a node share two cache lines of the key array. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Grow the backing arrays, using [fill] as the dummy for unused value
   slots.  The first growth jumps straight to 64 slots: repeated
   doubling from a cold heap re-copies the arrays four times before
   reaching a typical working size. *)
let grow t fill =
  let cap = Array.length t.keys in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let keys = Array.make new_cap 0 and seqs = Array.make new_cap 0 in
  let vals = Array.make new_cap fill in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

(* Hole-based sifts: the displaced entry is held in registers and written
   exactly once, instead of swapping at every level. *)

let sift_up t i0 =
  let k = t.keys.(i0) and s = t.seqs.(i0) and v = t.vals.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 4 in
    if k < t.keys.(p) || (k = t.keys.(p) && s < t.seqs.(p)) then begin
      t.keys.(!i) <- t.keys.(p);
      t.seqs.(!i) <- t.seqs.(p);
      t.vals.(!i) <- t.vals.(p);
      i := p
    end
    else moving := false
  done;
  t.keys.(!i) <- k;
  t.seqs.(!i) <- s;
  t.vals.(!i) <- v

let sift_down t i0 =
  let k = t.keys.(i0) and s = t.seqs.(i0) and v = t.vals.(i0) in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let first = (4 * !i) + 1 in
    if first >= t.size then moving := false
    else begin
      (* Smallest of the up-to-four children. *)
      let last = min (first + 3) (t.size - 1) in
      let m = ref first in
      for c = first + 1 to last do
        if
          t.keys.(c) < t.keys.(!m)
          || (t.keys.(c) = t.keys.(!m) && t.seqs.(c) < t.seqs.(!m))
        then m := c
      done;
      let m = !m in
      if t.keys.(m) < k || (t.keys.(m) = k && t.seqs.(m) < s) then begin
        t.keys.(!i) <- t.keys.(m);
        t.seqs.(!i) <- t.seqs.(m);
        t.vals.(!i) <- t.vals.(m);
        i := m
      end
      else moving := false
    end
  done;
  t.keys.(!i) <- k;
  t.seqs.(!i) <- s;
  t.vals.(!i) <- v

let push_seq t ~key ~seq value =
  if t.size = Array.length t.keys then grow t value;
  if seq >= t.next_seq then t.next_seq <- seq + 1;
  let i = t.size in
  t.keys.(i) <- key;
  t.seqs.(i) <- seq;
  t.vals.(i) <- value;
  t.size <- i + 1;
  sift_up t i

let push t ~key value =
  let seq = t.next_seq in
  push_seq t ~key ~seq value

let top_key_exn t =
  if t.size = 0 then invalid_arg "Heap.top_key_exn: empty heap";
  t.keys.(0)

let top_seq_exn t =
  if t.size = 0 then invalid_arg "Heap.top_seq_exn: empty heap";
  t.seqs.(0)

let pop_min_exn t =
  if t.size = 0 then invalid_arg "Heap.pop_min_exn: empty heap";
  let v = t.vals.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    sift_down t 0
  end;
  v

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_min_exn t)
  end

let peek_key t = if t.size = 0 then None else Some t.keys.(0)

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_list t =
  let entries = Array.init t.size (fun i -> (t.keys.(i), t.seqs.(i), t.vals.(i))) in
  Array.sort
    (fun (k1, s1, _) (k2, s2, _) -> if k1 <> k2 then compare k1 k2 else compare s1 s2)
    entries;
  Array.to_list (Array.map (fun (k, _, v) -> (k, v)) entries)

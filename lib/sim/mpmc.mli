(** Michael–Scott lock-free MPMC FIFO queue: any domain may [push] or
    [pop].  Used as the scheduler's injection queue for submissions
    from off-worker contexts. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool

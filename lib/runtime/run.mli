(** Uniform entry point over all five threading libraries of the
    evaluation (section 5). *)

type runtime = Pthreads | Det of Config.t | Domains of Config.t

val name : runtime -> string

val pthreads : runtime
val dthreads : runtime
val dwc : runtime
val consequence_rr : runtime
val consequence_ic : runtime

val consequence_pipe : runtime
(** [Det Config.consequence_pipe]: the scaled commit path (pipelined
    sharded commit + incremental GC).  Witness-identical to
    {!consequence_ic}; excluded from {!all} so the four-library figure
    sweeps are unchanged, but resolvable via {!of_name} ("consequence-
    pipe", the CLI's [pipe]). *)

val domains : runtime
(** [Domains Config.consequence_ic]: the same Consequence-IC algorithms
    executed on real OCaml 5 domains with work-stealing
    ({!Domains_rt}).  Witness-identical to {!consequence_ic}; [wall_ns]
    is real wall-clock, so it is excluded from {!all} (whose members
    must reproduce [wall_ns] bit-for-bit across runs).  The worker
    count follows the process-wide [-j] knob ({!Sim.Par.set_jobs}). *)

val all : runtime list
(** pthreads + the four deterministic libraries, in Fig 10 display order. *)

val of_name : string -> runtime option
(** Resolve a preset by its {!name}.  Covers {!all} plus
    {!consequence_pipe} and {!domains} (which [all] excludes), so
    schedules recorded under those runtimes still resolve. *)

val names : string list
(** Every name {!of_name} resolves, in display order — the full runtime
    set CLI help and error messages should list. *)

val deterministic : runtime -> bool
(** Whether the runtime guarantees determinism (i.e. everything except
    [Pthreads] — assuming exact performance counters). *)

val run :
  runtime ->
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?observer:Rt_event.observer ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** [observer] receives the runtime's happens-before events.  Under the
    deterministic runtimes the stream follows the global token order and
    is seed-invariant; under [Pthreads] it follows simulated wall-clock
    order and varies with the seed for racy programs.  [obs] receives
    timing spans and thread-state intervals on any runtime; see
    {!Det_rt.run} for the determinism-neutrality guarantee. *)

val best_over_threads :
  runtime ->
  ?costs:Cost_model.t ->
  ?seed:int ->
  threads:int list ->
  Api.t ->
  Stats.Run_result.t
(** Run at each thread count and keep the fastest result — the
    methodology of Fig 10 ("measured using 2-32 threads, and retained the
    corresponding best result"). *)

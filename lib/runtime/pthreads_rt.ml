module Bd = Stats.Breakdown

let name = "pthreads"

type thread_state = {
  tid : int;
  tname : string;
  bd : Bd.t;
  prng : Sim.Prng.t;
  mutable instr_retired : int;
  mutable exited : bool;
  mutable joiner : int option;
  mutable lock_grant : bool;
  mutable cond_grant : bool;
  mutable join_grant : bool;
  mutable epoch : int;
      (* release count + 1: the thread's own vector-clock component as a
         race detector replaying our event stream would track it.  Only
         maintained (and only meaningful) when an observer is attached. *)
  mutable prof_waker : int;
      (* tid whose unlock/signal/barrier-arrival/exit ended this thread's
         current wait; -1 = none.  Observability only. *)
}

type mutex_rec = { mutable held_by : int option; waitq : int Queue.t }
type cond_rec = { cond_waitq : int Queue.t }
type barrier_rec = {
  mutable parties : int;
  mutable arrived_tids : int list;
  mutable generation : int;
}

type t = {
  costs : Cost_model.t;
  eng : Sim.Engine.t;
  mem : Bytes.t;
  page_size : int;
  touched : (int, unit) Hashtbl.t;
  threads : (int, thread_state) Hashtbl.t;
  mutexes : (int, mutex_rec) Hashtbl.t;
  conds : (int, cond_rec) Hashtbl.t;
  barriers : (int, barrier_rec) Hashtbl.t;
  sync_trace : Sim.Trace.t;
  out_trace : Sim.Trace.t;
  mutable next_tid : int;
  mutable sync_ops : int;
  obs : Obs.Sink.t;
  metrics : Obs.Metrics.t;
  observer : Rt_event.observer option;
  shadow : (int, int array) Hashtbl.t;
      (* page -> last writer per 8-byte word, packed [(epoch lsl 20) lor
         tid], 0 = never written.  Lazily allocated, and only when an
         observer is attached: bare runs never touch it. *)
}

let thread rt tid = Hashtbl.find rt.threads tid

module St = Obs.Thread_state

(* Pthreads uses a strict subset of the profiler states (no token, no
   commits, no chunks); the Breakdown category is derived so the legacy
   per-thread breakdown is unchanged. *)
let bd_of_state = function
  | St.Run -> Bd.Chunk
  | St.Token_wait -> Bd.Determ_wait
  | St.Lock_wait -> Bd.Lock_wait
  | St.Barrier_wait -> Bd.Barrier_wait
  | St.Commit | St.Commit_pipe -> Bd.Commit
  | St.Update -> Bd.Update
  | St.Fault -> Bd.Page_fault
  | St.Overflow | St.Runtime | St.Gc | St.Txn_validate | St.Txn_abort -> Bd.Library
  | St.Fork -> Bd.Fork

let charge rt th st ns =
  if ns > 0 then begin
    Bd.add th.bd (bd_of_state st) ns;
    let t0 = Sim.Engine.now rt.eng in
    Sim.Engine.advance rt.eng ns;
    if not (Obs.Sink.is_null rt.obs) then
      rt.obs.Obs.Sink.state
        { Obs.Thread_state.stid = th.tid; state = st; t0; t1 = t0 + ns; chunk = 0; waker = -1 }
  end

let label_family label =
  match String.index_opt label ':' with
  | Some i -> String.sub label 0 i
  | None -> label

let record_sync rt th label =
  rt.sync_ops <- rt.sync_ops + 1;
  Obs.Metrics.incr rt.metrics ("op:" ^ label_family label);
  Sim.Trace.record rt.sync_trace ~time:(Sim.Engine.now rt.eng) ~tid:th.tid ~label

(* Wait instrumentation shared by lock / cond / barrier / join blocking
   paths: record the wait in the breakdown, the metrics histogram, and —
   when a sink is attached — as a span. *)
let charge_wait rt th ~state ~scat ~key ~name ~t0 =
  let waited = Sim.Engine.now rt.eng - t0 in
  Bd.add th.bd (bd_of_state state) waited;
  Obs.Metrics.observe rt.metrics key waited;
  if waited > 0 && not (Obs.Sink.is_null rt.obs) then begin
    let t1 = Sim.Engine.now rt.eng in
    rt.obs.Obs.Sink.span { Obs.Span.name; cat = scat; tid = th.tid; t0; t1; args = [] };
    rt.obs.Obs.Sink.state
      { Obs.Thread_state.stid = th.tid; state; t0; t1; chunk = 0; waker = th.prof_waker }
  end;
  th.prof_waker <- -1

(* Happens-before event emission.  Pthreads has no deterministic token
   order, so the stream follows simulated wall-clock order — which is the
   point: racy workloads produce seed-varying streams here, and the race
   detector's job is to tell which conflicts that variation can move.
   Emission charges no cost and never blocks: instrumented runs keep the
   exact timing of bare ones. *)
let emitting rt = rt.observer <> None
let emit rt ev = match rt.observer with Some f -> f ev | None -> ()

let emit_acquire rt th obj = if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj })

let emit_release rt th obj =
  if emitting rt then begin
    emit rt (Rt_event.Release { tid = th.tid; obj });
    th.epoch <- th.epoch + 1
  end

(* Word-granularity write tracking for the conflict channel.  A write
   that overwrites a word last written by another thread is reported as
   an [Rt_event.Conflict] carrying both writers' release-epochs; the
   detector decides whether synchronization ordered them.  Adjacent
   words with the same previous writer coalesce into one run. *)
let note_write rt th ?(report = true) ~addr ~len () =
  if emitting rt && len > 0 then begin
    let pack = (th.epoch lsl 20) lor th.tid in
    let first = addr lsr 3 and last = (addr + len - 1) lsr 3 in
    let words_per_page = rt.page_size lsr 3 in
    (* Open run: [run_first_w..w-1] all conflicted against [run_prev]. *)
    let run_first_w = ref (-1) and run_prev = ref 0 in
    let close lim_w =
      if !run_first_w >= 0 then begin
        let page = !run_first_w / words_per_page in
        let first_byte = (!run_first_w mod words_per_page) lsl 3 in
        let last_byte = first_byte + (((lim_w - !run_first_w) lsl 3) - 1) in
        emit rt
          (Rt_event.Conflict
             {
               tid = th.tid;
               version = th.epoch;
               page;
               first_byte;
               last_byte;
               loser_tid = !run_prev land 0xFFFFF;
               loser_version = !run_prev lsr 20;
             });
        run_first_w := -1
      end
    in
    for w = first to last do
      let page = w / words_per_page in
      let slots =
        match Hashtbl.find_opt rt.shadow page with
        | Some s -> s
        | None ->
            let s = Array.make words_per_page 0 in
            Hashtbl.replace rt.shadow page s;
            s
      in
      let off = w mod words_per_page in
      let prev = Array.unsafe_get slots off in
      let conflicting = report && prev <> 0 && prev land 0xFFFFF <> th.tid in
      if conflicting && !run_first_w >= 0 && prev <> !run_prev then close w;
      if off = 0 && !run_first_w >= 0 then close w;
      if conflicting && !run_first_w < 0 then begin
        run_first_w := w;
        run_prev := prev
      end
      else if not conflicting then close w;
      Array.unsafe_set slots off pack
    done;
    close (last + 1)
  end

let mutex_of rt id =
  match Hashtbl.find_opt rt.mutexes id with
  | Some m -> m
  | None ->
      let m = { held_by = None; waitq = Queue.create () } in
      Hashtbl.replace rt.mutexes id m;
      m

let cond_of rt id =
  match Hashtbl.find_opt rt.conds id with
  | Some c -> c
  | None ->
      let c = { cond_waitq = Queue.create () } in
      Hashtbl.replace rt.conds id c;
      c

let barrier_of rt id =
  match Hashtbl.find_opt rt.barriers id with
  | Some b -> b
  | None ->
      let b = { parties = 0; arrived_tids = []; generation = 0 } in
      Hashtbl.replace rt.barriers id b;
      b

let work rt th n =
  if n > 0 then begin
    th.instr_retired <- th.instr_retired + n;
    charge rt th St.Run (Cost_model.work_ns rt.costs th.prng n)
  end

let mem_instr rt len = max 1 (len / 8 * rt.costs.Cost_model.mem_op_instr_per_8bytes)

let check_range rt ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Bytes.length rt.mem then
    invalid_arg (Printf.sprintf "pthreads: access [%d, %d) out of bounds" addr (addr + len))

let touch rt ~addr ~len =
  let first = addr / rt.page_size and last = (addr + len - 1) / rt.page_size in
  for p = first to last do
    Hashtbl.replace rt.touched p ()
  done

let read rt th ~addr ~len =
  check_range rt ~addr ~len;
  work rt th (mem_instr rt len);
  Bytes.sub rt.mem addr len

let write rt th ~addr buf =
  let len = Bytes.length buf in
  check_range rt ~addr ~len;
  work rt th (mem_instr rt len);
  if len > 0 then touch rt ~addr ~len;
  note_write rt th ~addr ~len ();
  Bytes.blit buf 0 rt.mem addr len

let read_int rt th ~addr =
  check_range rt ~addr ~len:8;
  work rt th 1;
  Int64.to_int (Bytes.get_int64_le rt.mem addr)

let write_int rt th ~addr v =
  check_range rt ~addr ~len:8;
  work rt th 1;
  touch rt ~addr ~len:8;
  note_write rt th ~addr ~len:8 ();
  Bytes.set_int64_le rt.mem addr (Int64.of_int v)

(* A hardware atomic: the fiber is not descheduled between the load and
   the store, so the RMW is indivisible.  [report] distinguishes the
   plain RMW (a race participant) from the atomic one (synchronization:
   it updates the shadow so later plain writes racing with it are
   caught, but is never itself reported as a conflict). *)
let fetch_add rt th ~report ~addr delta =
  check_range rt ~addr ~len:8;
  work rt th 10;
  let v = Int64.to_int (Bytes.get_int64_le rt.mem addr) in
  touch rt ~addr ~len:8;
  note_write rt th ~report ~addr ~len:8 ();
  Bytes.set_int64_le rt.mem addr (Int64.of_int (v + delta));
  v

let mutex_lock rt th mid =
  let m = mutex_of rt mid in
  charge rt th St.Runtime rt.costs.Cost_model.pthread_lock_ns;
  if m.held_by = None then m.held_by <- Some th.tid
  else begin
    th.lock_grant <- false;
    Queue.push th.tid m.waitq;
    let t0 = Sim.Engine.now rt.eng in
    while not th.lock_grant do
      Sim.Engine.block rt.eng ~reason:(Printf.sprintf "lock:%d" mid)
    done;
    charge_wait rt th ~state:St.Lock_wait ~scat:Obs.Span.Lock_wait ~key:"lock_wait_ns"
      ~name:(Printf.sprintf "lock:%d" mid) ~t0;
    m.held_by <- Some th.tid
  end;
  record_sync rt th (Printf.sprintf "lock:%d" mid);
  emit_acquire rt th (Rt_event.obj_mutex mid)

let mutex_unlock rt th mid =
  let m = mutex_of rt mid in
  if m.held_by <> Some th.tid then
    invalid_arg (Printf.sprintf "unlock: thread %d does not hold mutex %d" th.tid mid);
  charge rt th St.Runtime rt.costs.Cost_model.pthread_unlock_ns;
  emit_release rt th (Rt_event.obj_mutex mid);
  m.held_by <- None;
  if not (Queue.is_empty m.waitq) then begin
    let next = Queue.pop m.waitq in
    let w = thread rt next in
    w.lock_grant <- true;
    w.prof_waker <- th.tid;
    Sim.Engine.wakeup rt.eng next;
    charge rt th St.Runtime rt.costs.Cost_model.wake_ns
  end;
  record_sync rt th (Printf.sprintf "unlock:%d" mid)

let cond_wait rt th cid mid =
  let c = cond_of rt cid in
  charge rt th St.Runtime rt.costs.Cost_model.pthread_cond_ns;
  record_sync rt th (Printf.sprintf "cond_wait:%d" cid);
  (* Enqueue before releasing the mutex: wait+release must be atomic or a
     signal between them is lost (the unlock yields the simulated CPU). *)
  th.cond_grant <- false;
  Queue.push th.tid c.cond_waitq;
  mutex_unlock rt th mid;
  let t0 = Sim.Engine.now rt.eng in
  while not th.cond_grant do
    Sim.Engine.block rt.eng ~reason:(Printf.sprintf "cond:%d" cid)
  done;
  charge_wait rt th ~state:St.Lock_wait ~scat:Obs.Span.Lock_wait ~key:"lock_wait_ns"
    ~name:(Printf.sprintf "cond:%d" cid) ~t0;
  emit_acquire rt th (Rt_event.obj_cond cid);
  mutex_lock rt th mid

let cond_signal rt th cid ~broadcast =
  let c = cond_of rt cid in
  charge rt th St.Runtime rt.costs.Cost_model.pthread_cond_ns;
  let rec grant_one () =
    if not (Queue.is_empty c.cond_waitq) then begin
      let next = Queue.pop c.cond_waitq in
      let w = thread rt next in
      w.cond_grant <- true;
      w.prof_waker <- th.tid;
      Sim.Engine.wakeup rt.eng next;
      charge rt th St.Runtime rt.costs.Cost_model.wake_ns;
      if broadcast then grant_one ()
    end
  in
  grant_one ();
  record_sync rt th (Printf.sprintf "%s:%d" (if broadcast then "broadcast" else "signal") cid);
  emit_release rt th (Rt_event.obj_cond cid)

let barrier_init _rt _th b parties =
  if parties <= 0 then invalid_arg "barrier_init: parties must be > 0";
  b.parties <- parties

let barrier_wait rt th bid =
  let b = barrier_of rt bid in
  if b.parties = 0 then invalid_arg (Printf.sprintf "barrier %d: not initialized" bid);
  charge rt th St.Runtime rt.costs.Cost_model.pthread_barrier_ns;
  record_sync rt th (Printf.sprintf "barrier:%d" bid);
  emit_release rt th (Rt_event.obj_barrier bid);
  b.arrived_tids <- th.tid :: b.arrived_tids;
  if List.length b.arrived_tids = b.parties then begin
    let others = List.filter (fun tid -> tid <> th.tid) b.arrived_tids in
    b.arrived_tids <- [];
    b.generation <- b.generation + 1;
    List.iter
      (fun tid ->
        (thread rt tid).prof_waker <- th.tid;
        Sim.Engine.wakeup rt.eng tid)
      others
  end
  else begin
    let gen = b.generation in
    let t0 = Sim.Engine.now rt.eng in
    while b.generation = gen do
      Sim.Engine.block rt.eng ~reason:(Printf.sprintf "barrier:%d" bid)
    done;
    charge_wait rt th ~state:St.Barrier_wait ~scat:Obs.Span.Barrier_wait
      ~key:"barrier_wait_ns"
      ~name:(Printf.sprintf "barrier:%d" bid)
      ~t0
  end;
  emit_acquire rt th (Rt_event.obj_barrier bid)

let rec make_ops rt th : Api.ops =
  {
    Api.tid = th.tid;
    self_name = th.tname;
    work = (fun n -> work rt th n);
    read = (fun ~addr ~len -> read rt th ~addr ~len);
    write = (fun ~addr buf -> write rt th ~addr buf);
    read_int = (fun ~addr -> read_int rt th ~addr);
    write_int = (fun ~addr v -> write_int rt th ~addr v);
    fetch_add = (fun ~addr delta -> fetch_add rt th ~report:true ~addr delta);
    atomic_fetch_add = (fun ~addr delta -> fetch_add rt th ~report:false ~addr delta);
    lock = (fun m -> mutex_lock rt th m);
    unlock = (fun m -> mutex_unlock rt th m);
    cond_wait = (fun c m -> cond_wait rt th c m);
    cond_signal = (fun c -> cond_signal rt th c ~broadcast:false);
    cond_broadcast = (fun c -> cond_signal rt th c ~broadcast:true);
    barrier_init = (fun bid parties -> barrier_init rt th (barrier_of rt bid) parties);
    barrier_wait = (fun b -> barrier_wait rt th b);
    spawn = (fun ?name body -> spawn_thread rt th ?name body);
    join = (fun t -> join_thread rt th t);
    log_output =
      (fun msg -> Sim.Trace.record rt.out_trace ~time:(Sim.Engine.now rt.eng) ~tid:th.tid ~label:msg);
    yield = (fun () -> Sim.Engine.advance rt.eng 0);
    (* Flat shared heap: there is no version history, so the "pin" is
       always 0 and a snapshot read is a plain read of current memory.
       This coincides with the versioned runtimes whenever the program
       guarantees no concurrent writers to the range, which the kv round
       protocol does by construction. *)
    base_version = (fun () -> 0);
    snapshot_read = (fun ~version:_ ~addr ~len -> read rt th ~addr ~len);
    now_ns = (fun () -> Sim.Engine.now rt.eng);
    metric_incr = (fun key by -> Obs.Metrics.incr rt.metrics ~by key);
    metric_observe = (fun key v -> Obs.Metrics.observe rt.metrics key v);
    txn_validate =
      (fun ~keys ->
        charge rt th St.Txn_validate
          (rt.costs.Cost_model.txn_validate_base_ns
          + (keys * rt.costs.Cost_model.txn_validate_key_ns)));
    txn_abort =
      (fun ~seq ~retries ->
        charge rt th St.Txn_abort
          (rt.costs.Cost_model.txn_abort_ns + (retries * rt.costs.Cost_model.txn_backoff_ns));
        if emitting rt then emit rt (Rt_event.Txn_abort { tid = th.tid; seq; retries }));
  }

and new_thread_state rt ~tid ~tname =
  {
    tid;
    tname;
    bd = Bd.create ();
    prng = Sim.Prng.split (Sim.Engine.prng rt.eng);
    instr_retired = 0;
    exited = false;
    joiner = None;
    lock_grant = false;
    cond_grant = false;
    join_grant = false;
    epoch = 1;
    prof_waker = -1;
  }

and thread_exit rt th =
  record_sync rt th "exit";
  emit_release rt th (Rt_event.obj_thread th.tid ^ ":exit");
  th.exited <- true;
  match th.joiner with
  | Some j ->
      let w = thread rt j in
      w.join_grant <- true;
      w.prof_waker <- th.tid;
      Sim.Engine.wakeup rt.eng j
  | None -> ()

and spawn_thread rt th ?name body =
  charge rt th St.Fork rt.costs.Cost_model.pthread_spawn_ns;
  let child_tid = rt.next_tid in
  rt.next_tid <- child_tid + 1;
  let tname = match name with Some n -> n | None -> Printf.sprintf "t%d" child_tid in
  let child = new_thread_state rt ~tid:child_tid ~tname in
  Hashtbl.replace rt.threads child_tid child;
  emit_release rt th (Rt_event.obj_thread child_tid);
  let fiber_id =
    Sim.Engine.spawn rt.eng ~name:tname (fun () ->
        emit_acquire rt child (Rt_event.obj_thread child_tid);
        body (make_ops rt child);
        thread_exit rt child)
  in
  assert (fiber_id = child_tid);
  record_sync rt th (Printf.sprintf "spawn:%d" child_tid);
  child_tid

and join_thread rt th target_tid =
  charge rt th St.Fork rt.costs.Cost_model.pthread_join_ns;
  let target =
    match Hashtbl.find_opt rt.threads target_tid with
    | Some target -> target
    | None -> invalid_arg (Printf.sprintf "join: unknown thread %d" target_tid)
  in
  if target.joiner <> None then invalid_arg (Printf.sprintf "join: thread %d already joined" target_tid);
  if not target.exited then begin
    target.joiner <- Some th.tid;
    th.join_grant <- false;
    let t0 = Sim.Engine.now rt.eng in
    while not th.join_grant do
      Sim.Engine.block rt.eng ~reason:(Printf.sprintf "join:%d" target_tid)
    done;
    charge_wait rt th ~state:St.Lock_wait ~scat:Obs.Span.Lock_wait ~key:"lock_wait_ns"
      ~name:(Printf.sprintf "join:%d" target_tid)
      ~t0
  end;
  record_sync rt th (Printf.sprintf "join:%d" target_tid);
  emit_acquire rt th (Rt_event.obj_thread target_tid ^ ":exit")

let run ?(costs = Cost_model.default) ?(seed = 1) ?nthreads ?observer ?(obs = Obs.Sink.null)
    (program : Api.t) =
  let nthreads = match nthreads with Some n -> n | None -> program.Api.default_threads in
  let eng = Sim.Engine.create ~seed () in
  let rt =
    {
      costs;
      eng;
      mem = Bytes.make (program.Api.heap_pages * program.Api.page_size) '\000';
      page_size = program.Api.page_size;
      touched = Hashtbl.create 64;
      threads = Hashtbl.create 64;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 16;
      sync_trace = Sim.Trace.create ~capture:true ();
      out_trace = Sim.Trace.create ~capture:true ();
      next_tid = 1;
      sync_ops = 0;
      obs;
      metrics = Obs.Metrics.create ();
      observer;
      shadow = Hashtbl.create 64;
    }
  in
  let main_state = new_thread_state rt ~tid:0 ~tname:"main" in
  Hashtbl.replace rt.threads 0 main_state;
  let fiber_id =
    Sim.Engine.spawn eng ~name:"main" (fun () ->
        program.Api.main ~nthreads (make_ops rt main_state);
        thread_exit rt main_state)
  in
  assert (fiber_id = 0);
  Sim.Engine.run eng;
  let per_thread =
    Hashtbl.fold
      (fun _ th acc ->
        {
          Stats.Run_result.tid = th.tid;
          thread_name = th.tname;
          breakdown = th.bd;
          instructions = th.instr_retired;
        }
        :: acc)
      rt.threads []
    |> List.sort (fun a b -> compare a.Stats.Run_result.tid b.Stats.Run_result.tid)
  in
  let mem_hash = Sim.Fnv.to_hex (Sim.Fnv.bytes Sim.Fnv.init rt.mem) in
  {
    Stats.Run_result.program = program.Api.name;
    runtime = name;
    nthreads;
    seed;
    wall_ns = Sim.Engine.now eng;
    per_thread;
    sync_ops = rt.sync_ops;
    token_acquisitions = 0;
    pages_propagated = 0;
    pages_committed = 0;
    pages_merged = 0;
    bytes_merged = 0;
    write_faults = 0;
    commits = 0;
    coarsened_chunks = 0;
    overflow_interrupts = 0;
    peak_mem_pages = Hashtbl.length rt.touched;
    versions = 0;
    mem_hash;
    sync_order_hash = Sim.Trace.hash rt.sync_trace;
    output_hash = Sim.Trace.hash rt.out_trace;
    trace_events = Sim.Trace.length rt.sync_trace;
    schedule =
      List.map
        (fun (e : Sim.Trace.event) -> (e.Sim.Trace.time, e.Sim.Trace.tid, e.Sim.Trace.label))
        (Sim.Trace.events rt.sync_trace);
    metrics = Obs.Metrics.snapshot rt.metrics;
  }

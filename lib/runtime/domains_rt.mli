(** Real-multicore backend: {!Det_rt}'s algorithms on OCaml 5 domains.

    Green threads are multiplexed over [domains] worker domains by the
    work-stealing scheduler ({!Sim.Sched}); the GMIC token, versioned
    workspaces and sharded TSO commits are the very same code the DES
    runs, so witnesses are byte-identical to the [consequence-ic]/
    [pipe] runtimes at any domain count and seed (enforced in
    test/runtime).

    Differences from the DES that do {e not} reach the witness:
    [wall_ns] and every wait metric are real wall-clock ns; chunk work
    is executed as a real spin outside the runtime lock; segment GC is
    disabled (snapshot prefixes must not move under lock-free readers),
    so [peak_mem_pages] is not comparable; and [metrics] gains wall:*
    calibration counters. *)

val name : string

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what speedup is physically
    attainable on this machine. *)

val run :
  Config.t ->
  ?domains:int ->
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?observer:Rt_event.observer ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** [domains]: worker-domain count; [0] means auto
    ([Domain.recommended_domain_count]), omitted means the process-wide
    [-j] knob ({!Sim.Par.jobs}). *)

(* Self-tuning controller kernel (lib/tune's online half).

   The controller adapts the chunk/overflow knobs and the coarsening
   budget mid-run.  The central constraint is determinism: every
   runtime backend (consequence-ic, consequence-rr, consequence-pipe,
   dthreads, real domains) must make byte-identical choices on every
   seed, or witnesses diverge.  No run-dynamic signal satisfies that —
   time shares, merge counts, waiting counts, even per-thread
   instruction totals are schedule-dependent for pipeline workloads —
   so the decision is a pure function of (params, epoch): a
   gain-scheduled annealing from conservative warmup values to a
   workload-specific target.  Workload adaptivity lives entirely in the
   [params], which the offline half (Tune.Search / Tune.Controller's
   [params_of_profile]) derives from profiler state shares or replay
   search.  Decisions are applied at exact retired-instruction
   milestones (epoch * period) by clamping overflow intervals, so the
   application points are themselves deterministic. *)

type params = {
  period : int;  (** retired instructions between decision milestones *)
  epochs : int;  (** annealing steps from warmup to target *)
  warm_base : int;  (** epoch-0 overflow base *)
  warm_cap : int;  (** epoch-0 overflow cap *)
  warm_coarsen : int;  (** epoch-0 coarsening budget setpoint *)
  target_base : int;  (** steady-state overflow base *)
  target_cap : int;  (** steady-state overflow cap *)
  target_coarsen : int;  (** steady-state coarsening budget setpoint *)
  coarsen_floor : int;  (** MI/MD adaptation lower bound *)
  coarsen_cap : int;  (** MI/MD adaptation upper bound *)
}

type decision = {
  chunk_base : int;
  chunk_cap : int;
  coarsen : int;
  coarsen_floor : int;
  coarsen_cap : int;
}

let default =
  {
    period = 5_000;
    epochs = 6;
    warm_base = 1_000;
    warm_cap = 8_000;
    warm_coarsen = 50_000;
    target_base = Detclock.Overflow_policy.default_base;
    target_cap = Detclock.Overflow_policy.default_cap;
    target_coarsen = 300_000;
    coarsen_floor = 10_000;
    coarsen_cap = 2_000_000;
  }

let validate p =
  let pos name v = if v <= 0 then invalid_arg ("Tune_ctl: " ^ name ^ " must be > 0") in
  pos "period" p.period;
  if p.epochs < 0 then invalid_arg "Tune_ctl: epochs must be >= 0";
  pos "warm_base" p.warm_base;
  pos "warm_cap" p.warm_cap;
  pos "warm_coarsen" p.warm_coarsen;
  pos "target_base" p.target_base;
  pos "target_cap" p.target_cap;
  pos "target_coarsen" p.target_coarsen;
  pos "coarsen_floor" p.coarsen_floor;
  if p.warm_cap < p.warm_base then invalid_arg "Tune_ctl: warm_cap < warm_base";
  if p.target_cap < p.target_base then invalid_arg "Tune_ctl: target_cap < target_base";
  if p.coarsen_cap < p.coarsen_floor then invalid_arg "Tune_ctl: coarsen_cap < coarsen_floor"

(* Geometric interpolation from [warm] to [target]: the knobs are
   ratio-scaled quantities (intervals, budgets), so annealing in log
   space halves the distance in equal multiplicative steps.  The
   endpoints are exact by construction (f = 0 and f = 1). *)
let anneal ~warm ~target ~num ~den =
  if num <= 0 || warm = target then warm
  else if num >= den then target
  else begin
    let f = float_of_int num /. float_of_int den in
    let v = float_of_int warm *. ((float_of_int target /. float_of_int warm) ** f) in
    let v = int_of_float (Float.round v) in
    if warm <= target then max warm (min target v) else min warm (max target v)
  end

let milestone p ~epoch = epoch * p.period

let decide p ~epoch =
  let a warm target = anneal ~warm ~target ~num:epoch ~den:(max 1 p.epochs) in
  let chunk_base = max 1 (a p.warm_base p.target_base) in
  let chunk_cap = max chunk_base (a p.warm_cap p.target_cap) in
  let coarsen =
    max p.coarsen_floor (min p.coarsen_cap (a p.warm_coarsen p.target_coarsen))
  in
  { chunk_base; chunk_cap; coarsen; coarsen_floor = p.coarsen_floor; coarsen_cap = p.coarsen_cap }

let final_epoch p = p.epochs

let pp_params ppf p =
  Format.fprintf ppf
    "@[period=%d epochs=%d warm=(%d,%d,%d) target=(%d,%d,%d) bounds=[%d,%d]@]" p.period p.epochs
    p.warm_base p.warm_cap p.warm_coarsen p.target_base p.target_cap p.target_coarsen
    p.coarsen_floor p.coarsen_cap

let params_to_json p : Obs.Json.t =
  let open Obs.Json in
  Obj
    [
      ("period", Int p.period);
      ("epochs", Int p.epochs);
      ("warm_base", Int p.warm_base);
      ("warm_cap", Int p.warm_cap);
      ("warm_coarsen", Int p.warm_coarsen);
      ("target_base", Int p.target_base);
      ("target_cap", Int p.target_cap);
      ("target_coarsen", Int p.target_coarsen);
      ("coarsen_floor", Int p.coarsen_floor);
      ("coarsen_cap", Int p.coarsen_cap);
    ]

let params_of_json (j : Obs.Json.t) : (params, string) result =
  let open Obs.Json in
  let int name =
    match member name j with
    | Some v -> (
        match to_int_opt v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "tune params: field %S has the wrong type" name))
    | None -> Error (Printf.sprintf "tune params: missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* period = int "period" in
  let* epochs = int "epochs" in
  let* warm_base = int "warm_base" in
  let* warm_cap = int "warm_cap" in
  let* warm_coarsen = int "warm_coarsen" in
  let* target_base = int "target_base" in
  let* target_cap = int "target_cap" in
  let* target_coarsen = int "target_coarsen" in
  let* coarsen_floor = int "coarsen_floor" in
  let* coarsen_cap = int "coarsen_cap" in
  let p =
    {
      period;
      epochs;
      warm_base;
      warm_cap;
      warm_coarsen;
      target_base;
      target_cap;
      target_coarsen;
      coarsen_floor;
      coarsen_cap;
    }
  in
  match validate p with
  | () -> Ok p
  | exception Invalid_argument msg -> Error msg

(** The deterministic multithreading runtime.

    One configurable engine implements DThreads, DWC, Consequence-RR and
    Consequence-IC (see {!Config}); a {!Config.t} preset selects the
    design point.  The runtime executes an {!Api.t} program on the
    simulated machine:

    - every thread runs in an isolated {!Vmem.Workspace} over one shared
      versioned segment;
    - all synchronization operations follow the paper's algorithms
      (Figs 7–9): pause the logical clock, wait for the global token
      (GMIC or round-robin order), perform the operation, commit and
      update memory, release;
    - local work advances the thread's retired-instruction counter, whose
      published value lags actual progress until a simulated
      counter-overflow interrupt or an end-of-chunk counter read;
    - the optimizations of section 3 (adaptive coarsening, adaptive
      overflow, user-space reads, fast-forward, parallel barrier commit,
      thread-pool reuse) are applied according to the configuration.

    The returned {!Stats.Run_result.t} carries both performance metrics
    and the determinism witnesses. *)

val run_exec :
  Config.t ->
  ex:Sim.Exec.t ->
  start:(unit -> unit) ->
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?observer:Rt_event.observer ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** Run the program on an arbitrary execution substrate ({!Sim.Exec.t}).
    [start] drives the substrate's scheduler to quiescence once the main
    green thread is registered.  All deterministic state — thread ids,
    token grants, commits, the witnesses — is computed by the same code
    on every substrate; substrates differ only in time (simulated vs
    wall) and physical placement (fibers vs domains).  This is what
    [Runtime.Domains_rt] builds on; ordinary callers use {!run}. *)

val run :
  Config.t ->
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?observer:Rt_event.observer ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** [run cfg program] executes the program to completion.  [seed]
    (default 1) perturbs modelled real-time nondeterminism only —
    deterministic configurations produce the same witnesses for every
    seed.  [nthreads] overrides the program's default worker count.
    [observer] receives happens-before instrumentation events in global
    order (used by the Fig 16 LRC study).  [obs] (default
    {!Obs.Sink.null}) receives timing spans — token holds, determ /
    lock / barrier waits, chunks, commits, updates, fork / join — keyed
    to the simulated clock, plus the exhaustive {!Obs.Thread_state}
    interval stream the determinism profiler ([lib/prof]) aggregates:
    every instant of every thread's lifetime classified into one of the
    eleven states, tiling the lifetime exactly (the conservation
    invariant), with completed waits stamped with the waking thread's
    tid.  Instrumentation is determinism-neutral: an instrumented run
    produces the same witnesses {e and} the same [wall_ns] as a bare
    run (enforced by the neutrality tests).

    @raise Sim.Engine.Deadlock if the program deadlocks.
    @raise Sim.Engine.Stuck if the program exceeds the event budget,
    e.g. ad-hoc synchronization with no [chunk_limit] configured
    (section 2.7). *)

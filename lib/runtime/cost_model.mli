(** Latency model for the simulated machine.

    All values are simulated nanoseconds (or ns per unit).  They are the
    only place where "hardware" enters the reproduction; every algorithm
    above consumes logical quantities.  Values are calibrated to the
    relative magnitudes reported for Conversion [23], DThreads [21] and
    Kendo [25]: a COW page fault costs microseconds, token bookkeeping
    tens of nanoseconds, a user-space counter read is ~20x cheaper than a
    syscall read, and mprotect-based isolation (DThreads) pays a
    multiplier over Conversion's kernel support (see {!Config}). *)

type t = {
  cpi_ns : float;  (** average ns per retired user instruction *)
  jitter_amplitude : float;
      (** multiplicative real-time noise per executed segment; models
          nondeterministic instruction latency and cache state (paper
          section 2.1).  Logical instruction counts are unaffected. *)
  page_fault_ns : int;  (** copy-on-write fault: trap + page copy + twin *)
  page_commit_ns : int;  (** per committed page: diff + install *)
  page_merge_ns : int;  (** additional cost when a byte-merge is needed *)
  page_refresh_ns : int;  (** refreshing a stale resident copy on update *)
  page_map_ns : int;  (** remapping one propagated page on update *)
  commit_base_ns : int;  (** fixed syscall cost of a commit *)
  update_base_ns : int;  (** fixed syscall cost of an update *)
  barrier_phase1_page_ns : int;
      (** serial part of Conversion's two-phase commit, per page *)
  commit_seal_page_ns : int;
      (** per-page cost of sealing a pipelined commit's write-set while
          holding the global (ordering + publishing the sealed set); the
          bulk install/merge is charged after the release *)
  token_ns : int;  (** token acquire/release bookkeeping *)
  counter_read_syscall_ns : int;  (** reading the perf counter via the kernel *)
  counter_read_user_ns : int;  (** user-space counter read (section 3.4) *)
  overflow_interrupt_ns : int;  (** one counter-overflow interrupt *)
  sync_op_base_ns : int;  (** fixed library overhead per sync operation *)
  wake_ns : int;  (** waking a blocked thread (futex-style) *)
  fork_base_ns : int;  (** process fork, fixed part *)
  fork_page_ns : int;  (** copying one populated page-table entry on fork *)
  pool_reuse_ns : int;  (** recycling a pooled thread (section 3.3) *)
  gc_pages_per_ms : int;  (** Conversion's single-threaded GC reclaim rate *)
  gc_step_pages : int;
      (** hard bound on pages scanned per incremental-GC step (the
          per-step work limit of the concurrent collector) *)
  pthread_lock_ns : int;
  pthread_unlock_ns : int;
  pthread_barrier_ns : int;
  pthread_cond_ns : int;
  pthread_spawn_ns : int;
  pthread_join_ns : int;
  mem_op_instr_per_8bytes : int;
      (** instructions charged per 8 bytes moved by read/write *)
  txn_validate_base_ns : int;
      (** fixed cost of validating one software transaction against the
          committed prefix of its round (ordered-TL2-style read-set
          check) *)
  txn_validate_key_ns : int;  (** per read/write intent entry scanned *)
  txn_abort_ns : int;
      (** discarding an aborted transaction's buffered write set *)
  txn_backoff_ns : int;
      (** deterministic retry backoff, charged per prior retry of the
          aborting transaction *)
}

val default : t

val work_ns : t -> Sim.Prng.t -> int -> int
(** Real time for [n] instructions including jitter drawn from the given
    stream; at least 1 ns for n >= 1. *)

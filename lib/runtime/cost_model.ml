type t = {
  cpi_ns : float;
  jitter_amplitude : float;
  page_fault_ns : int;
  page_commit_ns : int;
  page_merge_ns : int;
  page_refresh_ns : int;
  page_map_ns : int;
  commit_base_ns : int;
  update_base_ns : int;
  barrier_phase1_page_ns : int;
  commit_seal_page_ns : int;
  token_ns : int;
  counter_read_syscall_ns : int;
  counter_read_user_ns : int;
  overflow_interrupt_ns : int;
  sync_op_base_ns : int;
  wake_ns : int;
  fork_base_ns : int;
  fork_page_ns : int;
  pool_reuse_ns : int;
  gc_pages_per_ms : int;
  gc_step_pages : int;
  pthread_lock_ns : int;
  pthread_unlock_ns : int;
  pthread_barrier_ns : int;
  pthread_cond_ns : int;
  pthread_spawn_ns : int;
  pthread_join_ns : int;
  mem_op_instr_per_8bytes : int;
  txn_validate_base_ns : int;
  txn_validate_key_ns : int;
  txn_abort_ns : int;
  txn_backoff_ns : int;
}

let default =
  {
    cpi_ns = 0.5;
    jitter_amplitude = 0.15;
    page_fault_ns = 1_500;
    page_commit_ns = 1_300;
    page_merge_ns = 400;
    page_refresh_ns = 200;
    page_map_ns = 40;
    commit_base_ns = 5_000;
    update_base_ns = 2_500;
    barrier_phase1_page_ns = 60;
    commit_seal_page_ns = 80;
    token_ns = 150;
    counter_read_syscall_ns = 1_100;
    counter_read_user_ns = 60;
    overflow_interrupt_ns = 2_000;
    sync_op_base_ns = 300;
    wake_ns = 900;
    fork_base_ns = 12_000;
    fork_page_ns = 60;
    pool_reuse_ns = 1_800;
    gc_pages_per_ms = 800;
    gc_step_pages = 64;
    pthread_lock_ns = 60;
    pthread_unlock_ns = 45;
    pthread_barrier_ns = 500;
    pthread_cond_ns = 180;
    pthread_spawn_ns = 9_000;
    pthread_join_ns = 900;
    mem_op_instr_per_8bytes = 1;
    txn_validate_base_ns = 400;
    txn_validate_key_ns = 25;
    txn_abort_ns = 600;
    txn_backoff_ns = 2_000;
  }

let work_ns t prng n =
  if n <= 0 then 0
  else
    let base = float_of_int n *. t.cpi_ns in
    let jittered = base *. Sim.Prng.jitter prng ~amplitude:t.jitter_amplitude in
    max 1 (int_of_float jittered)

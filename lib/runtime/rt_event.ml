type t =
  | Commit of { tid : int; version : int; pages : int list }
  | Release of { tid : int; obj : string }
  | Acquire of { tid : int; obj : string }
  | Conflict of {
      tid : int;
      version : int;
      page : int;
      first_byte : int;
      last_byte : int;
      loser_tid : int;
      loser_version : int;
    }

type observer = t -> unit

let obj_mutex m = Printf.sprintf "m:%d" m
let obj_cond c = Printf.sprintf "c:%d" c
let obj_barrier b = Printf.sprintf "b:%d" b
let obj_thread t = Printf.sprintf "t:%d" t

let label = function
  | Commit { version; _ } -> Printf.sprintf "commit:v%d" version
  | Release { obj; _ } -> "rel:" ^ obj
  | Acquire { obj; _ } -> "acq:" ^ obj
  | Conflict { page; first_byte; last_byte; _ } ->
      Printf.sprintf "conflict:p%d+%d..%d" page first_byte last_byte

let tid = function
  | Commit { tid; _ } | Release { tid; _ } | Acquire { tid; _ } | Conflict { tid; _ } -> tid

let pp ppf ev =
  match ev with
  | Commit { tid; version; pages } ->
      Format.fprintf ppf "@[commit t%d v%d [%s]@]" tid version
        (String.concat "," (List.map string_of_int pages))
  | Release { tid; obj } -> Format.fprintf ppf "rel t%d %s" tid obj
  | Acquire { tid; obj } -> Format.fprintf ppf "acq t%d %s" tid obj
  | Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version } ->
      Format.fprintf ppf "@[conflict t%d v%d p%d[%d..%d] over t%d v%d@]" tid version page
        first_byte last_byte loser_tid loser_version

let to_json ev : Obs.Json.t =
  let open Obs.Json in
  match ev with
  | Commit { tid; version; pages } ->
      Obj
        [
          ("kind", String "commit");
          ("tid", Int tid);
          ("version", Int version);
          ("pages", List (List.map (fun p -> Int p) pages));
        ]
  | Release { tid; obj } ->
      Obj [ ("kind", String "release"); ("tid", Int tid); ("obj", String obj) ]
  | Acquire { tid; obj } ->
      Obj [ ("kind", String "acquire"); ("tid", Int tid); ("obj", String obj) ]
  | Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version } ->
      Obj
        [
          ("kind", String "conflict");
          ("tid", Int tid);
          ("version", Int version);
          ("page", Int page);
          ("first_byte", Int first_byte);
          ("last_byte", Int last_byte);
          ("loser_tid", Int loser_tid);
          ("loser_version", Int loser_version);
        ]

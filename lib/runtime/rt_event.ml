type t =
  | Commit of { tid : int; version : int; pages : int list }
  | Release of { tid : int; obj : string }
  | Acquire of { tid : int; obj : string }
  | Conflict of {
      tid : int;
      version : int;
      page : int;
      first_byte : int;
      last_byte : int;
      loser_tid : int;
      loser_version : int;
    }
  | Boundary of { tid : int; ic : int; overflow : bool }
  | Commit_hash of { tid : int; version : int; hash : string }
  | Txn_abort of { tid : int; seq : int; retries : int }
  | Tune_decision of {
      tid : int;
      epoch : int;
      ic : int;
      chunk_base : int;
      chunk_cap : int;
      coarsen : int;
      coarsen_floor : int;
      coarsen_cap : int;
    }

type observer = t -> unit

let obj_mutex m = Printf.sprintf "m:%d" m
let obj_cond c = Printf.sprintf "c:%d" c
let obj_barrier b = Printf.sprintf "b:%d" b
let obj_thread t = Printf.sprintf "t:%d" t

let label = function
  | Commit { version; _ } -> Printf.sprintf "commit:v%d" version
  | Release { obj; _ } -> "rel:" ^ obj
  | Acquire { obj; _ } -> "acq:" ^ obj
  | Conflict { page; first_byte; last_byte; _ } ->
      Printf.sprintf "conflict:p%d+%d..%d" page first_byte last_byte
  | Boundary { ic; overflow; _ } ->
      Printf.sprintf "%s:%d" (if overflow then "overflow" else "chunk-end") ic
  | Commit_hash { version; _ } -> Printf.sprintf "hash:v%d" version
  | Txn_abort { seq; retries; _ } -> Printf.sprintf "txn-abort:%d.%d" seq retries
  | Tune_decision { epoch; ic; _ } -> Printf.sprintf "tune:e%d@%d" epoch ic

let tid = function
  | Commit { tid; _ }
  | Release { tid; _ }
  | Acquire { tid; _ }
  | Conflict { tid; _ }
  | Boundary { tid; _ }
  | Commit_hash { tid; _ }
  | Txn_abort { tid; _ }
  | Tune_decision { tid; _ } ->
      tid

let pp ppf ev =
  match ev with
  | Commit { tid; version; pages } ->
      Format.fprintf ppf "@[commit t%d v%d [%s]@]" tid version
        (String.concat "," (List.map string_of_int pages))
  | Release { tid; obj } -> Format.fprintf ppf "rel t%d %s" tid obj
  | Acquire { tid; obj } -> Format.fprintf ppf "acq t%d %s" tid obj
  | Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version } ->
      Format.fprintf ppf "@[conflict t%d v%d p%d[%d..%d] over t%d v%d@]" tid version page
        first_byte last_byte loser_tid loser_version
  | Boundary { tid; ic; overflow } ->
      Format.fprintf ppf "%s t%d ic=%d" (if overflow then "overflow" else "chunk-end") tid ic
  | Commit_hash { tid; version; hash } -> Format.fprintf ppf "hash t%d v%d %s" tid version hash
  | Txn_abort { tid; seq; retries } ->
      Format.fprintf ppf "txn-abort t%d seq=%d retries=%d" tid seq retries
  | Tune_decision { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap }
    ->
      Format.fprintf ppf
        "@[tune t%d e%d ic=%d chunk=%d..%d coarsen=%d[%d..%d]@]" tid epoch ic chunk_base
        chunk_cap coarsen coarsen_floor coarsen_cap

let to_json ev : Obs.Json.t =
  let open Obs.Json in
  match ev with
  | Commit { tid; version; pages } ->
      Obj
        [
          ("kind", String "commit");
          ("tid", Int tid);
          ("version", Int version);
          ("pages", List (List.map (fun p -> Int p) pages));
        ]
  | Release { tid; obj } ->
      Obj [ ("kind", String "release"); ("tid", Int tid); ("obj", String obj) ]
  | Acquire { tid; obj } ->
      Obj [ ("kind", String "acquire"); ("tid", Int tid); ("obj", String obj) ]
  | Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version } ->
      Obj
        [
          ("kind", String "conflict");
          ("tid", Int tid);
          ("version", Int version);
          ("page", Int page);
          ("first_byte", Int first_byte);
          ("last_byte", Int last_byte);
          ("loser_tid", Int loser_tid);
          ("loser_version", Int loser_version);
        ]
  | Boundary { tid; ic; overflow } ->
      Obj
        [
          ("kind", String "boundary");
          ("tid", Int tid);
          ("ic", Int ic);
          ("overflow", Bool overflow);
        ]
  | Commit_hash { tid; version; hash } ->
      Obj
        [
          ("kind", String "commit_hash");
          ("tid", Int tid);
          ("version", Int version);
          ("hash", String hash);
        ]
  | Txn_abort { tid; seq; retries } ->
      Obj
        [
          ("kind", String "txn_abort");
          ("tid", Int tid);
          ("seq", Int seq);
          ("retries", Int retries);
        ]
  | Tune_decision { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap }
    ->
      Obj
        [
          ("kind", String "tune_decision");
          ("tid", Int tid);
          ("epoch", Int epoch);
          ("ic", Int ic);
          ("chunk_base", Int chunk_base);
          ("chunk_cap", Int chunk_cap);
          ("coarsen", Int coarsen);
          ("coarsen_floor", Int coarsen_floor);
          ("coarsen_cap", Int coarsen_cap);
        ]

(* Inverse of [to_json]; the schedule logs of [lib/replay] round-trip
   through exactly the schema the trace exporters emit. *)
let of_json (j : Obs.Json.t) : (t, string) result =
  let open Obs.Json in
  let field name conv =
    match member name j with
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "rt_event: field %S has the wrong type" name))
    | None -> Error (Printf.sprintf "rt_event: missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let int name = field name to_int_opt in
  let str name = field name to_string_opt in
  let bool name = field name (function Bool b -> Some b | _ -> None) in
  let* kind = str "kind" in
  match kind with
  | "commit" ->
      let* tid = int "tid" in
      let* version = int "version" in
      let* pages =
        field "pages" (fun v ->
            match to_list_opt v with
            | Some items ->
                let rec conv acc = function
                  | [] -> Some (List.rev acc)
                  | x :: rest -> (
                      match to_int_opt x with Some i -> conv (i :: acc) rest | None -> None)
                in
                conv [] items
            | None -> None)
      in
      Ok (Commit { tid; version; pages })
  | "release" ->
      let* tid = int "tid" in
      let* obj = str "obj" in
      Ok (Release { tid; obj })
  | "acquire" ->
      let* tid = int "tid" in
      let* obj = str "obj" in
      Ok (Acquire { tid; obj })
  | "conflict" ->
      let* tid = int "tid" in
      let* version = int "version" in
      let* page = int "page" in
      let* first_byte = int "first_byte" in
      let* last_byte = int "last_byte" in
      let* loser_tid = int "loser_tid" in
      let* loser_version = int "loser_version" in
      Ok (Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version })
  | "boundary" ->
      let* tid = int "tid" in
      let* ic = int "ic" in
      let* overflow = bool "overflow" in
      Ok (Boundary { tid; ic; overflow })
  | "commit_hash" ->
      let* tid = int "tid" in
      let* version = int "version" in
      let* hash = str "hash" in
      Ok (Commit_hash { tid; version; hash })
  | "txn_abort" ->
      let* tid = int "tid" in
      let* seq = int "seq" in
      let* retries = int "retries" in
      Ok (Txn_abort { tid; seq; retries })
  | "tune_decision" ->
      let* tid = int "tid" in
      let* epoch = int "epoch" in
      let* ic = int "ic" in
      let* chunk_base = int "chunk_base" in
      let* chunk_cap = int "chunk_cap" in
      let* coarsen = int "coarsen" in
      let* coarsen_floor = int "coarsen_floor" in
      let* coarsen_cap = int "coarsen_cap" in
      Ok
        (Tune_decision
           { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap })
  | other -> Error (Printf.sprintf "rt_event: unknown kind %S" other)

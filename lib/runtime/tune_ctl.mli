(** Self-tuning controller kernel: deterministic gain-scheduled
    annealing of the chunk/overflow knobs and the coarsening budget.

    The decision at each milestone is a {b pure function of (params,
    epoch)} — it reads no run-dynamic state.  That is what makes the
    controller safe: every backend (DES or real domains, instruction-
    count or round-robin ordering, pipelined or serial commit) computes
    the same decision values on every seed, so witnesses stay
    value-deterministic.  Workload adaptivity lives in the [params],
    derived offline by [Tune.Search] or from a profiler state-share
    summary; the online half merely schedules when each annealing step
    applies (at retired-instruction milestone [epoch * period],
    enforced exactly by clamping overflow intervals in [Det_rt]).

    Chunk knobs (overflow base/cap) affect real time only; the
    coarsening knobs affect the witness, which is why decisions are
    recorded as {!Rt_event.Tune_decision} events and replay-checked. *)

type params = {
  period : int;  (** retired instructions between decision milestones *)
  epochs : int;  (** annealing steps from warmup to target *)
  warm_base : int;  (** epoch-0 overflow base *)
  warm_cap : int;  (** epoch-0 overflow cap *)
  warm_coarsen : int;  (** epoch-0 coarsening budget setpoint *)
  target_base : int;  (** steady-state overflow base *)
  target_cap : int;  (** steady-state overflow cap *)
  target_coarsen : int;  (** steady-state coarsening budget setpoint *)
  coarsen_floor : int;  (** MI/MD adaptation lower bound *)
  coarsen_cap : int;  (** MI/MD adaptation upper bound *)
}

type decision = {
  chunk_base : int;  (** overflow-policy base after this milestone *)
  chunk_cap : int;  (** overflow-policy backoff cap *)
  coarsen : int;  (** coarsening budget setpoint (clamped per-thread) *)
  coarsen_floor : int;  (** lower bound handed to MI/MD adaptation *)
  coarsen_cap : int;  (** upper bound handed to MI/MD adaptation *)
}

val default : params
(** Conservative warmup annealing to the static defaults of
    {!Config.base}: with no profile or search the controller converges
    to exactly the hand-tuned steady state. *)

val validate : params -> unit
(** @raise Invalid_argument when a field is non-positive or a cap is
    below its base/floor. *)

val milestone : params -> epoch:int -> int
(** Retired-instruction count at which [epoch]'s decision applies
    ([epoch * period]; epoch 0 applies at thread start). *)

val final_epoch : params -> int
(** Last epoch that changes anything: [decide ~epoch:e] is constant for
    [e >= final_epoch]. *)

val decide : params -> epoch:int -> decision
(** The pure decision function.  Knob values interpolate geometrically
    from the warmup values (epoch 0) to the targets (epoch >=
    [epochs]); endpoints are exact. *)

val pp_params : Format.formatter -> params -> unit

val params_to_json : params -> Obs.Json.t
val params_of_json : Obs.Json.t -> (params, string) result
(** Round-trip serialization used by tuned profiles
    ([tune/profiles/*.json]); [of_json] validates. *)

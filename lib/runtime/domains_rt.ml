(* Real-multicore execution of the deterministic runtime: the same
   Consequence algorithms (Det_rt over GMIC token, versioned
   workspaces, sharded TSO commit), driven by the work-stealing domain
   scheduler ([Sim.Sched]) instead of the DES engine.

   Determinism argument.  Every decision that reaches the witness
   (grant order, commit contents, sync labels, outputs) is a function
   of published sync-point instruction counts, which are fixed by the
   program, never of time.  A thread cannot retire instructions past
   its next sync op, so its published count never exceeds its
   deterministic sync-point count; the GMIC winner among waiters is
   therefore the same no matter how real scheduling interleaves the
   intermediate overflow publications — those change *when* grants
   happen, never their order.  Hence witnesses are byte-identical to
   the DES at any domain count (pinned across the 19-workload registry
   in test/runtime).

   Time.  [now] is wall ns since run start and [advance] is a no-op:
   modelled costs still flow into the per-thread Breakdown (so the
   breakdown stays comparable to the DES), while every *wait* metric
   (determ/lock/barrier wait, token hold) measures real ns because the
   waits are real.  Real work is measured separately into the wall:*
   calibration counters (see Det_rt's wall accumulators). *)

let name = "domains"

let available_cores () = Domain.recommended_domain_count ()

(* Calibrated busy work standing in for one user instruction.  Kept
   trivially simple — the calibration bench reports the measured
   ns/instruction ratio rather than pretending this matches any
   particular CPU. *)
let spin_body n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc lxor i
  done;
  ignore (Sys.opaque_identity !acc)

let run cfg ?domains ?costs ?seed ?nthreads ?observer ?obs (program : Api.t) =
  let workers =
    match domains with
    | Some 0 -> Sim.Par.default_jobs ()
    | Some n -> max 1 n
    | None -> Sim.Par.jobs ()
  in
  let sched = Sim.Sched.create ~workers () in
  (* CLOCK_MONOTONIC via bechamel's stub: [Exec.now] must be monotone
     (Det_rt subtracts readings for wait/hold metrics), which
     [Unix.gettimeofday] is not — an NTP step would yield negative or
     inflated wall:* intervals. *)
  let t0 = Monotonic_clock.now () in
  let wall_now () = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
  let prng = Sim.Prng.create ~seed:(Option.value seed ~default:1) in
  let spin n =
    (* Release the runtime lock while the chunk's instructions execute:
       this is the window where domains genuinely run in parallel. *)
    Sim.Sched.unlock sched;
    spin_body n;
    Sim.Sched.lock sched
  in
  let ex =
    {
      Sim.Exec.now = wall_now;
      advance = (fun _ -> ());
      block = (fun ~reason -> Sim.Sched.block sched ~reason);
      wakeup = (fun tid -> Sim.Sched.wakeup sched tid);
      spawn = (fun ~name f -> Sim.Sched.spawn sched ~name f);
      prng;
      real = true;
      spin;
      lock = (fun () -> Sim.Sched.lock sched);
      unlock = (fun () -> Sim.Sched.unlock sched);
    }
  in
  (* Report the Run-level preset name ("<cfg>-domains", as in
     [Run.name]) so run results and recorded schedules are attributed
     to this backend and resolve back through [Run.of_name] — the
     replayer then re-executes them on the scripted DES. *)
  let cfg = Config.with_name cfg (cfg.Config.name ^ "-domains") in
  Det_rt.run_exec cfg ~ex
    ~start:(fun () -> Sim.Sched.run sched)
    ?costs ?seed ?nthreads ?observer ?obs program

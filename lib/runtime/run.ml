type runtime = Pthreads | Det of Config.t | Domains of Config.t

let name = function
  | Pthreads -> Pthreads_rt.name
  | Det cfg -> cfg.Config.name
  | Domains cfg -> cfg.Config.name ^ "-domains"

let pthreads = Pthreads
let dthreads = Det Config.dthreads
let dwc = Det Config.dwc
let consequence_rr = Det Config.consequence_rr
let consequence_ic = Det Config.consequence_ic
let consequence_pipe = Det Config.consequence_pipe
let domains = Domains Config.consequence_ic

(* [all] deliberately excludes [Domains]: its wall_ns is real time, so
   it cannot satisfy the cross-run reproducibility the DES runtimes are
   held to (witnesses still match — see test/runtime).  It also excludes
   [consequence_pipe], which is witness-identical to [consequence_ic]
   (only cost placement moves) and would double-count it in the
   four-library figure sweeps. *)
let all = [ pthreads; dthreads; dwc; consequence_rr; consequence_ic ]

(* Name resolution must cover everything recordable, not just [all]:
   schedules recorded under "consequence-ic-domains" are replayed (on
   the DES) by looking their preset up by name, and "consequence-pipe"
   runs must resolve the same way. *)
let resolvable = all @ [ consequence_pipe; domains ]
let of_name n = List.find_opt (fun rt -> String.equal (name rt) n) resolvable
let names = List.map name resolvable

let deterministic = function
  | Pthreads -> false
  | Det cfg | Domains cfg -> cfg.Config.counter_jitter_ppm = 0

let run rt ?costs ?seed ?nthreads ?observer ?obs program =
  match rt with
  | Pthreads -> Pthreads_rt.run ?costs ?seed ?nthreads ?observer ?obs program
  | Det cfg -> Det_rt.run cfg ?costs ?seed ?nthreads ?observer ?obs program
  | Domains cfg -> Domains_rt.run cfg ?costs ?seed ?nthreads ?observer ?obs program

let best_over_threads rt ?costs ?seed ~threads program =
  match threads with
  | [] -> invalid_arg "Run.best_over_threads: empty thread list"
  | first :: rest ->
      List.fold_left
        (fun best n ->
          let r = run rt ?costs ?seed ~nthreads:n program in
          if r.Stats.Run_result.wall_ns < best.Stats.Run_result.wall_ns then r else best)
        (run rt ?costs ?seed ~nthreads:first program)
        rest

module Lc = Detclock.Logical_clock
module Tok = Detclock.Token
module Ofp = Detclock.Overflow_policy
module Bd = Stats.Breakdown

type mutex_rec = {
  mutable held_by : int option;
  lock_waitq : int Queue.t;
  mutable cs_ewma : float; (* per-lock critical-section length estimate *)
  mutable cs_enter_instr : int;
}

type thread_state = {
  tid : int;
  name : string;
  clock : Lc.clock;
  ws : Vmem.Workspace.t;
  bd : Bd.t;
  prng : Sim.Prng.t;
  ofp : Ofp.t;
  mutable instr_retired : int; (* actual user instructions *)
  mutable unpublished : int; (* retired but not yet published to the clock *)
  mutable next_overflow_in : int; (* instructions until the next overflow; 0 = fetch new *)
  mutable chunk_start_instr : int;
  mutable since_commit : int; (* instructions since last commit (for chunk_limit) *)
  mutable chunk_ewma : float; (* thread-local estimate of chunk length (section 3.1) *)
  (* Coarsening state *)
  mutable coarsen_holding : bool;
  mutable coarsen_ops : int;
  mutable coarsen_start_instr : int;
  mutable coarsen_max : int;
  mutable coarsen_floor : int;
      (* MI/MD bounds for [coarsen_max].  Copied from the config at
         creation; the self-tuning controller retargets them per thread
         at its milestones. *)
  mutable coarsen_cap : int;
  (* Self-tuning controller (Tune_ctl) state *)
  mutable tune_epoch : int; (* next decision ordinal to apply *)
  mutable tune_next_at : int;
      (* retired-instruction milestone of the next decision; [max_int]
         once the annealing schedule is exhausted (or tuning is off).
         Overflow intervals are clamped to never cross it, so decisions
         apply at instruction-exact points on every backend. *)
  (* Lifecycle *)
  mutable exited : bool;
  mutable parked : bool;
  mutable joiner : int option;
  (* Deterministic wake conditions (permits may be spurious; these are not) *)
  mutable lock_grant : bool;
  mutable cond_grant : bool;
  mutable join_grant : bool;
  mutable barrier_grant : bool;
  mutable post_site : int option;
      (* mutex id whose unlock opened the current chunk; its length is
         attributed to this thread's per-lock post-unlock estimate at the
         next sync op.  Thread-local (paper section 3.1: "a thread-local
         estimate is maintained for use with coarsening unlock
         operations"), refined per lock so producer and consumer roles on
         the same lock do not pollute each other. *)
  mutable post_site_instr : int;
  post_ewma : (int, float) Hashtbl.t;
  (* Observability bookkeeping (never read by the algorithms) *)
  mutable race_epoch : int;
      (* release count + 1: the thread's own vector-clock component as a
         race detector replaying our event stream tracks it.  Only
         maintained when an observer is attached. *)
  mutable chunk_epoch : int;
      (* [race_epoch] as of the start of the chunk currently being
         written: reset at every commit-and-update point (including
         clean ones, which emit no Commit event) and advanced past any
         release that precedes the chunk's first write.  Commits stamp
         their version with it so conflicts can be classified against
         the loser's *chunk*, not its commit instant. *)
  mutable token_t0 : int;  (** time the global was acquired; -1 = not held *)
  mutable chunk_open_ns : int;  (** time the current chunk opened *)
  mutable prof_chunk : int;
      (* Ordinal of the chunk currently charged to: bumped at every chunk
         (re)open, so the coordination work that closes a chunk is
         attributed to the chunk it closes.  Pure observability. *)
  mutable prof_waker : int;
      (* tid of the thread whose grant/serial-turn/fence release ended (or
         will end) this thread's current wait; -1 = none recorded.  Set by
         the waker, consumed by the wait-interval emission, and never read
         by the algorithms. *)
  mutable serial_sticky : bool;
      (* Synchronous mode: this thread finished a sync op and still holds
         its serial turn; consecutive sync ops with no intervening user
         work stay in the same serial phase (as real DThreads' serial
         phase processes a thread's back-to-back ops under one token
         hold). The turn is surrendered as soon as user work executes. *)
  mutable pipe_pending_ns : int;
      (* Pipelined commit: bulk install/merge cost sealed under the token
         but not yet charged.  Drained (as a Commit_pipe interval) at the
         next [release_global], i.e. right after the token is handed on,
         so it overlaps the next chunk's execution on other threads.
         Accumulates across a coarsened chunk's deferred commits. *)
  (* Wall-clock calibration accumulators (real backends only): measured
     ns spent in real spins, unlocked memory operations, and the actual
     Vmem commit/update work.  Flushed to wall:* metric counters at
     thread exit; never read by the algorithms, zero on the DES. *)
  mutable wall_run : int;
  mutable wall_mem : int;
  mutable wall_commit : int;
  mutable wall_update : int;
}

type cond_rec = { cond_waitq : int Queue.t }

type barrier_rec = {
  mutable parties : int;
  mutable arrived_tids : int list;
  mutable generation : int;
}

type t = {
  cfg : Config.t;
  costs : Cost_model.t;
  ex : Sim.Exec.t;
  seg : Vmem.Segment.t;
  clocks : Lc.t;
  token : Tok.t;
  sync_trace : Sim.Trace.t;
  out_trace : Sim.Trace.t;
  (* Dense thread table: tids are handed out 0, 1, 2, ... so a flat array
     indexed by tid replaces a hashtable; the accounting folds that run on
     every commit (min_base, resident pages) touch [next_tid] slots
     instead of walking hash buckets. *)
  mutable threads : thread_state option array;
  (* Small-id fast path for the mutex table: lock ids are caller-chosen,
     so the dense front only covers 0..63 and anything else falls back to
     the hashtable.  Every lock/unlock resolves its mutex record, so this
     is on the per-operation path. *)
  mutex_dense : mutex_rec option array;
  mutexes : (int, mutex_rec) Hashtbl.t;
  conds : (int, cond_rec) Hashtbl.t;
  barriers : (int, barrier_rec) Hashtbl.t;
  mutable next_tid : int;
  mutable sync_ops : int;
  mutable last_coord_entrant : int;
  mutable peak_mem : int;
  mutable last_gc_ns : int;
  mutable pool_size : int; (* threads available for reuse (section 3.3) *)
  mutable overflow_interrupts : int;
  mutable coarsened_chunks : int;
  (* DThreads-style synchronous-commit fence (Fig 3a).  Threads arriving
     at a sync op rendezvous here; when every runnable thread has
     arrived, the epoch's arrivals are processed serially in thread-id
     order through [serial_queue].  The global token is not used in this
     mode — the serial queue *is* the round-robin order, computed over
     exactly the threads that reached the fence, which is what real
     DThreads' parallel-phase/serial-phase structure does.  (Using the
     free-running round-robin token here would deadlock: the token could
     wait on a thread that is itself waiting at the fence.) *)
  fence_arrived : (int, unit) Hashtbl.t;
  mutable fence_generation : int;
  mutable serial_queue : int list;
  mutable serial_acquisitions : int;
  observer : Rt_event.observer option;
  race_stamp : (int, int * int) Hashtbl.t;
      (* committed version -> (committer, committer's chunk-start
         release-epoch); lets conflict events carry the loser's chunk
         stamp.  Only populated when an observer is attached. *)
  obs : Obs.Sink.t;
  mutable prof_enabler : int;
      (* Last thread that released the global / published a clock
         increment / departed — the best available "waker" for a token
         wait that ends without a direct grant.  Observability only. *)
  metrics : Obs.Metrics.t;
  (* Interned metric handles: the hot paths record through these instead
     of string-keyed lookups (one hashtable probe per sync op adds up). *)
  mh : metric_handles;
  (* Per-shard commit histograms ([shard<i>_commit_ns]/[_pages]), interned
     once at [run] when the segment is sharded (empty otherwise), plus a
     reused scratch for per-shard footprint counts — the commit path stays
     allocation-free at any shard count. *)
  mh_shard_commit_ns : Obs.Metrics.histogram array;
  mh_shard_commit_pages : Obs.Metrics.histogram array;
  shard_scratch : int array;
}

and metric_handles = {
  mh_chunk_instr : Obs.Metrics.histogram;
  mh_determ_wait_ns : Obs.Metrics.histogram;
  mh_token_hold_ns : Obs.Metrics.histogram;
  mh_commit_ns : Obs.Metrics.histogram;
  mh_commit_pages : Obs.Metrics.histogram;
  mh_commit_pipe_ns : Obs.Metrics.histogram;
  mh_update_ns : Obs.Metrics.histogram;
  mh_lock_wait_ns : Obs.Metrics.histogram;
  mh_barrier_wait_ns : Obs.Metrics.histogram;
  mh_op_lock : Obs.Metrics.counter;
  mh_op_unlock : Obs.Metrics.counter;
  mh_op_commit : Obs.Metrics.counter;
  mh_op_spawn : Obs.Metrics.counter;
  mh_op_join : Obs.Metrics.counter;
  mh_op_exit : Obs.Metrics.counter;
  mh_op_cond_wait : Obs.Metrics.counter;
  mh_op_barrier : Obs.Metrics.counter;
  mh_op_atomic : Obs.Metrics.counter;
  mh_op_signal : Obs.Metrics.counter;
  mh_op_broadcast : Obs.Metrics.counter;
  mh_op_forced_commit : Obs.Metrics.counter;
}

(* ------------------------------------------------------------------ *)
(* Small helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Execution-substrate shorthands.  On the DES these hit the engine; on
   the domains backend they hit the work-stealing scheduler and the wall
   clock.  Every runtime algorithm below goes through these — nothing
   else may reach a scheduler directly. *)
let e_now rt = rt.ex.Sim.Exec.now ()
let e_advance rt ns = rt.ex.Sim.Exec.advance ns
let e_block rt ~reason = rt.ex.Sim.Exec.block ~reason
let e_wakeup rt tid = rt.ex.Sim.Exec.wakeup tid
let is_real rt = rt.ex.Sim.Exec.real

(* A tid can be allocated (next_tid bumped) slightly before its state is
   installed by [add_thread] — accounting folds that run in that window
   must see the slot as absent, so bound by the array too. *)
let thread_opt rt tid =
  if tid >= 0 && tid < rt.next_tid && tid < Array.length rt.threads then rt.threads.(tid)
  else None

let thread rt tid =
  match thread_opt rt tid with
  | Some th -> th
  | None -> invalid_arg (Printf.sprintf "unknown thread %d" tid)

let add_thread rt th =
  let cap = Array.length rt.threads in
  if th.tid >= cap then begin
    let grown = Array.make (cap * 2) None in
    Array.blit rt.threads 0 grown 0 cap;
    rt.threads <- grown
  end;
  rt.threads.(th.tid) <- Some th

(* Fold [f] over every live thread state; replaces Hashtbl.fold on the
   accounting paths that run at each commit. *)
let fold_threads rt f init =
  let n = min rt.next_tid (Array.length rt.threads) in
  let acc = ref init in
  for tid = 0 to n - 1 do
    match rt.threads.(tid) with Some th -> acc := f th !acc | None -> ()
  done;
  !acc

(* Sync-op labels for small ids are interned: the common case allocates
   neither the string_of_int nor the concatenation on every operation.
   The strings are identical to the dynamic path, so trace hashes are
   unchanged. *)
let n_interned = 64
let interned_lock = Array.init n_interned (fun i -> "lock:" ^ string_of_int i)
let interned_unlock = Array.init n_interned (fun i -> "unlock:" ^ string_of_int i)
let interned_tname = Array.init n_interned (fun i -> "t" ^ string_of_int i)

let lock_label mid =
  if mid >= 0 && mid < n_interned then interned_lock.(mid)
  else "lock:" ^ string_of_int mid

let unlock_label mid =
  if mid >= 0 && mid < n_interned then interned_unlock.(mid)
  else "unlock:" ^ string_of_int mid

(* [op] is the operation-family counter for the label (op_lock for
   "lock:3"), passed as an interned handle so the hot path neither scans
   the label nor hashes a key string. *)
(* CONSEQ_DEBUG_SYNC=1 prints every sync record with its clock state —
   diff two backends' streams to localize a cross-backend divergence. *)
let debug_sync = Sys.getenv_opt "CONSEQ_DEBUG_SYNC" <> None

let record_sync rt th ~op label =
  rt.sync_ops <- rt.sync_ops + 1;
  if debug_sync then
    Printf.eprintf "SYNC t%d %s pub=%d ic=%d\n%!" th.tid label
      (Lc.published th.clock) th.instr_retired;
  Obs.Metrics.count op 1;
  Sim.Trace.record rt.sync_trace ~time:(e_now rt) ~tid:th.tid ~label

(* Observability helpers.  These read the simulated clock but never
   advance it, block, or touch algorithm state: instrumented and bare
   runs must stay cycle-identical (enforced by the neutrality tests). *)

let tracing rt = not (Obs.Sink.is_null rt.obs)

let span rt ~cat ~name ~tid ~t0 ?(args = []) () =
  if tracing rt then
    rt.obs.Obs.Sink.span
      { Obs.Span.name; cat; tid; t0; t1 = e_now rt; args }

(* Rt_event payloads allocate (records, label strings): construct them
   only when somebody is listening.  Call sites guard with [emitting]. *)
let emitting rt = rt.observer <> None || not (Obs.Sink.is_null rt.obs)

(* ------------------------------------------------------------------ *)
(* Thread-state accounting (the determinism profiler's input stream)   *)
(* ------------------------------------------------------------------ *)

module St = Obs.Thread_state

(* Every charge is labelled with a profiler state; the legacy Breakdown
   category is derived from it, so the per-thread breakdown totals are
   byte-identical to the pre-profiler accounting. *)
let bd_of_state = function
  | St.Run -> Bd.Chunk
  | St.Token_wait -> Bd.Determ_wait
  | St.Lock_wait -> Bd.Lock_wait
  | St.Barrier_wait -> Bd.Barrier_wait
  | St.Commit | St.Commit_pipe -> Bd.Commit
  | St.Update -> Bd.Update
  | St.Fault -> Bd.Page_fault
  | St.Overflow | St.Runtime | St.Gc | St.Txn_validate | St.Txn_abort -> Bd.Library
  | St.Fork -> Bd.Fork

(* Emit one closed state interval [t0, now).  Purely observational: the
   sink sees the interval after the time has already been spent. *)
let state_interval rt th ~state ~t0 ?(waker = -1) () =
  if tracing rt then begin
    let t1 = e_now rt in
    if t1 > t0 then
      rt.obs.Obs.Sink.state
        { Obs.Thread_state.stid = th.tid; state; t0; t1; chunk = th.prof_chunk; waker }
  end

(* Charge [ns] of simulated time to [th] in profiler state [st].  The
   simulated clock only ever moves inside a charge or while blocked in
   a measured wait loop, so each thread's intervals tile its lifetime
   exactly (the conservation invariant test_prof enforces). *)
let charge rt th st ns =
  if ns > 0 then begin
    Bd.add th.bd (bd_of_state st) ns;
    let t0 = e_now rt in
    e_advance rt ns;
    state_interval rt th ~state:st ~t0 ()
  end

let emit rt ev =
  (match rt.observer with Some f -> f ev | None -> ());
  if tracing rt then begin
    let icat =
      match ev with Rt_event.Conflict _ -> Obs.Span.Race | _ -> Obs.Span.Sync
    in
    rt.obs.Obs.Sink.instant
      {
        Obs.Span.iname = Rt_event.label ev;
        icat;
        itid = Rt_event.tid ev;
        itime = e_now rt;
      }
  end

let new_mutex_rec () =
  { held_by = None; lock_waitq = Queue.create (); cs_ewma = 0.0; cs_enter_instr = 0 }

let mutex_of rt id =
  let id = match rt.cfg.lock_granularity with Config.Single_global -> 0 | Config.Per_lock -> id in
  if id >= 0 && id < Array.length rt.mutex_dense then
    match Array.unsafe_get rt.mutex_dense id with
    | Some m -> m
    | None ->
        let m = new_mutex_rec () in
        Array.unsafe_set rt.mutex_dense id (Some m);
        m
  else
    match Hashtbl.find_opt rt.mutexes id with
    | Some m -> m
    | None ->
        let m = new_mutex_rec () in
        Hashtbl.replace rt.mutexes id m;
        m

let cond_of rt id =
  match Hashtbl.find_opt rt.conds id with
  | Some c -> c
  | None ->
      let c = { cond_waitq = Queue.create () } in
      Hashtbl.replace rt.conds id c;
      c

let barrier_of rt id =
  match Hashtbl.find_opt rt.barriers id with
  | Some b -> b
  | None ->
      let b = { parties = 0; arrived_tids = []; generation = 0 } in
      Hashtbl.replace rt.barriers id b;
      b

let ewma alpha sample old = if old = 0.0 then sample else (alpha *. sample) +. ((1.0 -. alpha) *. old)

(* At every sync-op boundary, attribute the chunk that just ended to the
   (thread, lock) pair whose unlock started it.  Purely thread-local
   state, so the fold order cannot depend on scheduling. *)
let settle_post_unlock rt th =
  match th.post_site with
  | None -> ()
  | Some mid ->
      let len = float_of_int (th.instr_retired - th.post_site_instr) in
      let old = match Hashtbl.find_opt th.post_ewma mid with Some v -> v | None -> 0.0 in
      Hashtbl.replace th.post_ewma mid (ewma rt.cfg.Config.ewma_alpha len old);
      th.post_site <- None

(* ------------------------------------------------------------------ *)
(* Memory accounting and GC                                           *)
(* ------------------------------------------------------------------ *)

(* Oldest version any runnable workspace still reads.  Parked threads do
   not pin history: every wake path performs a commit+update before user
   code touches memory again, so their stale bases are never read. *)
let min_base rt =
  fold_threads rt
    (fun th acc ->
      if th.exited || th.parked then acc else min acc (Vmem.Workspace.base th.ws))
    (Vmem.Segment.current_version rt.seg)

let gc_and_sample rt =
  let now = e_now rt in
  (if is_real rt then
     (* Real-parallel backend: other domains read committed snapshots
        without the runtime lock, so history prefixes must never move
        (see the [hist] publication comment in Segment).  Versions are
        kept until the run ends — the DES remains the memory-footprint
        oracle, and [off] staying 0 is what the lock-free read path
        relies on. *)
     ()
   else if rt.cfg.incremental_gc then
     (* Incremental per-shard collection: one bounded step per commit
        point (plus one per pipelined-commit drain).  The hard page bound
        replaces the rate budget — steps are cheap enough to hide in
        commit slack, so no reclaim-rate ceiling applies. *)
     ignore
       (Vmem.Segment.gc_step rt.seg ~min_base:(min_base rt)
          ~max_pages:rt.costs.Cost_model.gc_step_pages)
   else if rt.cfg.gc_budgeted then begin
     (* Conversion's single-threaded collector reclaims at a bounded rate;
        allocation bursts outpace it (Fig 12). *)
     let elapsed = now - rt.last_gc_ns in
     let budget = elapsed * rt.costs.Cost_model.gc_pages_per_ms / 1_000_000 in
     if budget > 0 then begin
       rt.last_gc_ns <- now;
       ignore (Vmem.Segment.gc rt.seg ~min_base:(min_base rt) ~budget)
     end
   end
   else ignore (Vmem.Segment.gc rt.seg ~min_base:(min_base rt) ~budget:max_int));
  let resident =
    fold_threads rt
      (fun th acc ->
        if th.exited then acc
        else acc + Vmem.Workspace.resident_pages th.ws + Vmem.Workspace.dirty_count th.ws)
      0
  in
  (* Versioned-memory systems (Conversion) hold page snapshots until the
     GC catches up; an mprotect-based system (DThreads) holds only the
     single shared image plus per-thread copies and twins, so its
     footprint ignores version history. *)
  let mem =
    if rt.cfg.gc_budgeted then Vmem.Segment.live_snapshots rt.seg + resident
    else Vmem.Segment.touched_pages rt.seg + resident
  in
  if mem > rt.peak_mem then rt.peak_mem <- mem

(* ------------------------------------------------------------------ *)
(* Logical clock publication                                          *)
(* ------------------------------------------------------------------ *)

(* Perturb a published increment when modelling untrusted counters [30].
   ppm = 0 (the default) leaves counters exact, hence deterministic. *)
let jittered_increment rt th n =
  if rt.cfg.counter_jitter_ppm = 0 || n = 0 then n
  else begin
    let noise = (2.0 *. Sim.Prng.float th.prng) -. 1.0 in
    let delta =
      int_of_float (float_of_int n *. float_of_int rt.cfg.counter_jitter_ppm *. noise /. 1e6)
    in
    max 0 (n + delta)
  end

(* Every publication point is a chunk-boundary decision: replaying the
   overflow ones (lib/replay) pins the whole schedule, since chunk-end
   publications are placed by the program's own sync ops.  The event goes
   to the observer only — it is scheduling bookkeeping, not a sync edge,
   and would drown the trace timeline in instants. *)
let publish rt th ~overflow =
  if th.unpublished > 0 then begin
    (match rt.observer with
    | Some f -> f (Rt_event.Boundary { tid = th.tid; ic = th.instr_retired; overflow })
    | None -> ());
    Lc.tick th.clock (jittered_increment rt th th.unpublished);
    th.unpublished <- 0;
    Tok.poke rt.token;
    rt.prof_enabler <- th.tid
  end

(* Read the performance counter at the end of a chunk: a syscall, or a
   cheap user-space read during a coarsened chunk (section 3.4). *)
let counter_read rt th =
  let cost =
    if th.coarsen_holding && rt.cfg.userspace_reads then rt.costs.Cost_model.counter_read_user_ns
    else rt.costs.Cost_model.counter_read_syscall_ns
  in
  charge rt th St.Overflow cost;
  publish rt th ~overflow:false

(* ------------------------------------------------------------------ *)
(* Self-tuning controller (Tune_ctl) application                      *)
(* ------------------------------------------------------------------ *)

(* Apply the controller decision for [th.tune_epoch] and schedule the
   next milestone.  Pure in its inputs — (params, epoch) — so every
   backend computes identical values; the knobs it writes are the
   overflow policy target (real-time only) and the coarsening budget
   and its MI/MD bounds (witness-affecting, which is why the decision
   is emitted as a replay-checked event).  Costs nothing: the milestone
   overflow interrupt that delivers it is already charged. *)
let tune_apply rt th =
  match rt.cfg.Config.tune with
  | None -> ()
  | Some p ->
      let epoch = th.tune_epoch in
      let d = Tune_ctl.decide p ~epoch in
      Ofp.retarget th.ofp ~base:d.Tune_ctl.chunk_base ~cap:d.Tune_ctl.chunk_cap;
      th.coarsen_floor <- d.Tune_ctl.coarsen_floor;
      th.coarsen_cap <- d.Tune_ctl.coarsen_cap;
      th.coarsen_max <- max d.Tune_ctl.coarsen_floor (min d.Tune_ctl.coarsen_cap d.Tune_ctl.coarsen);
      th.tune_epoch <- epoch + 1;
      th.tune_next_at <-
        (if epoch + 1 > Tune_ctl.final_epoch p then max_int
         else Tune_ctl.milestone p ~epoch:(epoch + 1));
      if emitting rt then
        emit rt
          (Rt_event.Tune_decision
             {
               tid = th.tid;
               epoch;
               ic = th.instr_retired;
               chunk_base = d.Tune_ctl.chunk_base;
               chunk_cap = d.Tune_ctl.chunk_cap;
               coarsen = d.Tune_ctl.coarsen;
               coarsen_floor = d.Tune_ctl.coarsen_floor;
               coarsen_cap = d.Tune_ctl.coarsen_cap;
             })

(* ------------------------------------------------------------------ *)
(* Commit / update with cost charging                                 *)
(* ------------------------------------------------------------------ *)

(* Charge a commit: the install cost is paid while holding the global
   (Fig 9 places the commit inside the token hold).  Deferring it past
   the release was tried and rejected: eligibility for the token during
   the deferred window is a real-time race, which breaks determinism.
   The parallel-barrier commit (section 4.2) is the one sanctioned
   exception — see [barrier_wait]. *)
(* A Release bumps the thread's own clock component; a release that
   precedes the current chunk's first write (workspace still clean) also
   moves the chunk start past itself, since it cannot order writes that
   have not happened yet.  Coarsened fast-path releases over a dirty
   workspace leave the chunk start alone: the deferred commit's writes
   straddle them, and the chunk is classified as a whole. *)
let emit_release rt th obj =
  if emitting rt then begin
    emit rt (Rt_event.Release { tid = th.tid; obj });
    th.race_epoch <- th.race_epoch + 1;
    if not (Vmem.Workspace.is_dirty th.ws) then th.chunk_epoch <- th.race_epoch
  end

(* Conflicts precede their Commit in the stream so a consumer sees the
   merge resolution before the version becomes the newest committed
   state.  [loser_version] is translated from a segment version to the
   loser's chunk-start release-epoch — the same currency the pthreads
   runtime stamps conflicts with — so the detector's verdict is one
   component comparison.  [conflicts] is [] unless the workspace tracks
   them, which [new_thread_state] enables exactly when [emitting rt]. *)
let emit_conflicts rt th (ci : Vmem.Workspace.commit_info) =
  if emitting rt then
    List.iter
      (fun (c : Vmem.Workspace.conflict) ->
        let loser_tid, loser_epoch =
          (* Every version was stamped at its commit; an unknown one
             (impossible today) classifies as racy, which is the loud
             failure mode for a race detector. *)
          match Hashtbl.find_opt rt.race_stamp c.loser_version with
          | Some stamp -> stamp
          | None -> (c.loser_tid, max_int)
        in
        emit rt
          (Rt_event.Conflict
             {
               tid = th.tid;
               version = ci.version;
               page = c.cpage;
               first_byte = c.first_byte;
               last_byte = c.last_byte;
               loser_tid;
               loser_version = loser_epoch;
             }))
      ci.conflicts

(* Every commit-and-update point closes the thread's write chunk: stamp
   the published version with the closing chunk's start epoch and open a
   new chunk at the current epoch.  Clean commits emit no event but
   still reset the chunk — their sync op delimits writes all the same. *)
let stamp_commit rt th (ci : Vmem.Workspace.commit_info) =
  if emitting rt then begin
    if ci.pages_committed > 0 then
      Hashtbl.replace rt.race_stamp ci.version (th.tid, th.chunk_epoch);
    th.chunk_epoch <- th.race_epoch
  end

(* Digest the pages a commit just installed, read back at the committed
   version.  The replay divergence detector compares these step-by-step:
   a schedule that reproduces event order but corrupts data is caught at
   the first differing commit, not at the final workspace hash. *)
let commit_digest rt (ci : Vmem.Workspace.commit_info) =
  let h =
    List.fold_left
      (fun h p -> Sim.Fnv.bytes (Sim.Fnv.int h p) (Vmem.Segment.read_page rt.seg ~version:ci.version p))
      Sim.Fnv.init ci.committed_pages
  in
  Sim.Fnv.to_hex h

let emit_commit_hash rt th (ci : Vmem.Workspace.commit_info) =
  if emitting rt then
    emit rt
      (Rt_event.Commit_hash { tid = th.tid; version = ci.version; hash = commit_digest rt ci })

(* Per-shard footprint of a commit (into the reused scratch, no
   allocation): records the per-shard histograms and returns the largest
   single-shard page count — the install critical path when the shards
   install concurrently.  Equals the total footprint when unsharded, so
   the sharded cost formula degenerates to the serial one at 1 shard. *)
let shard_footprint rt (ci : Vmem.Workspace.commit_info) =
  let nsh = Vmem.Segment.shards rt.seg in
  if nsh <= 1 || Array.length rt.mh_shard_commit_pages < nsh then ci.pages_committed
  else begin
    let scratch = rt.shard_scratch in
    Array.fill scratch 0 nsh 0;
    List.iter
      (fun p ->
        let s = Vmem.Segment.shard_of_page rt.seg p in
        scratch.(s) <- scratch.(s) + 1)
      ci.committed_pages;
    let max_pages = ref 0 in
    for s = 0 to nsh - 1 do
      if scratch.(s) > 0 then begin
        Obs.Metrics.record rt.mh_shard_commit_pages.(s) scratch.(s);
        Obs.Metrics.record rt.mh_shard_commit_ns.(s)
          (int_of_float
             (float_of_int (scratch.(s) * rt.costs.Cost_model.page_commit_ns)
             *. rt.cfg.commit_cost_mult));
        if scratch.(s) > !max_pages then max_pages := scratch.(s)
      end
    done;
    !max_pages
  end

let charge_commit rt th (ci : Vmem.Workspace.commit_info) =
  if ci.pages_committed > 0 then begin
    let t0 = e_now rt in
    let c = rt.costs in
    (* With a sharded segment the per-page installs proceed one shard per
       worker, so the install term is the largest single-shard footprint;
       merges stay summed (the merge scan is the committer's own work). *)
    let install_pages = shard_footprint rt ci in
    (if rt.cfg.pipelined_commit then begin
       (* Phase 1, under the global: order the commit and seal/publish the
          write-set — only the cheap per-page sealing is serial.  The bulk
          install/merge cost is stashed and charged as a Commit_pipe
          interval right after the release (see [release_global]), so it
          overlaps the next chunk's execution elsewhere.  Only the cost
          moves: the data was installed above, inside the token hold, so
          version order, merges and digests are untouched. *)
       let seal_ns =
         c.Cost_model.commit_base_ns + (ci.pages_committed * c.Cost_model.commit_seal_page_ns)
       in
       charge rt th St.Commit (int_of_float (float_of_int seal_ns *. rt.cfg.commit_cost_mult));
       th.pipe_pending_ns <-
         th.pipe_pending_ns
         + (install_pages * c.Cost_model.page_commit_ns)
         + (ci.pages_merged * c.Cost_model.page_merge_ns)
     end
     else begin
       let ns =
         c.Cost_model.commit_base_ns
         + (install_pages * c.Cost_model.page_commit_ns)
         + (ci.pages_merged * c.Cost_model.page_merge_ns)
       in
       charge rt th St.Commit (int_of_float (float_of_int ns *. rt.cfg.commit_cost_mult))
     end);
    Obs.Metrics.record rt.mh.mh_commit_ns (e_now rt - t0);
    Obs.Metrics.record rt.mh.mh_commit_pages ci.pages_committed;
    if tracing rt then
      span rt ~cat:Obs.Span.Commit
        ~name:(Printf.sprintf "commit:v%d" ci.version)
        ~tid:th.tid ~t0
        ~args:[ ("pages", ci.pages_committed); ("merged", ci.pages_merged) ]
        ();
    record_sync rt th ~op:rt.mh.mh_op_commit ("commit:" ^ string_of_int ci.version);
    emit_conflicts rt th ci;
    if emitting rt then begin
      emit rt (Rt_event.Commit { tid = th.tid; version = ci.version; pages = ci.committed_pages });
      emit_commit_hash rt th ci
    end
  end

let charge_update rt th (ui : Vmem.Workspace.update_info) =
  if ui.to_version > ui.from_version then begin
    let t0 = e_now rt in
    let c = rt.costs in
    let ns =
      c.Cost_model.update_base_ns
      + (ui.pages_propagated * c.Cost_model.page_map_ns)
      + (ui.pages_refreshed * c.Cost_model.page_refresh_ns)
    in
    charge rt th St.Update ns;
    Obs.Metrics.record rt.mh.mh_update_ns (e_now rt - t0);
    if tracing rt then
      span rt ~cat:Obs.Span.Update
        ~name:(Printf.sprintf "update:v%d-v%d" ui.from_version ui.to_version)
        ~tid:th.tid ~t0
        ~args:[ ("pages", ui.pages_propagated); ("refreshed", ui.pages_refreshed) ]
        ()
  end

(* Real Vmem work, timed on real backends: these wrappers are the
   measurement points of the wall-vs-model calibration (the charge_*
   functions above account *modelled* ns; here the actual page installs
   and refreshes happen).  Both run with the token and runtime lock
   held, matching the DES execution points exactly. *)
let ws_commit rt th =
  if is_real rt then begin
    let w0 = e_now rt in
    let ci = Vmem.Workspace.commit th.ws in
    th.wall_commit <- th.wall_commit + (e_now rt - w0);
    ci
  end
  else Vmem.Workspace.commit th.ws

let ws_update rt th =
  if is_real rt then begin
    let w0 = e_now rt in
    let ui = Vmem.Workspace.update th.ws in
    th.wall_update <- th.wall_update + (e_now rt - w0);
    ui
  end
  else Vmem.Workspace.update th.ws

(* The paper's convCommitAndUpdateMem(). *)
let commit_and_update rt th =
  let ci = ws_commit rt th in
  stamp_commit rt th ci;
  charge_commit rt th ci;
  let ui = ws_update rt th in
  charge_update rt th ui;
  th.since_commit <- 0;
  gc_and_sample rt

(* ------------------------------------------------------------------ *)
(* DThreads fence (synchronous commits, Fig 3a)                       *)
(* ------------------------------------------------------------------ *)

let fence_participant th = (not th.exited) && (not th.parked) && not th.coarsen_holding

let fence_complete rt =
  fold_threads rt
    (fun th ok -> ok && ((not (fence_participant th)) || Hashtbl.mem rt.fence_arrived th.tid))
    true

let fence_release rt ~waker =
  let arrived =
    Hashtbl.fold (fun tid () acc -> tid :: acc) rt.fence_arrived [] |> List.sort compare
  in
  Hashtbl.reset rt.fence_arrived;
  rt.fence_generation <- rt.fence_generation + 1;
  (* The epoch's serial phase processes arrivals in thread-id order. *)
  rt.serial_queue <- rt.serial_queue @ arrived;
  List.iter
    (fun tid ->
      if tid <> waker then (thread rt tid).prof_waker <- waker;
      e_wakeup rt tid)
    arrived

(* Called whenever the participant set shrinks (park, exit): the fence may
   now be complete without a new arrival. *)
let fence_check rt ~waker =
  if
    rt.cfg.ordering = Config.Round_robin
    && Hashtbl.length rt.fence_arrived > 0
    && fence_complete rt
  then fence_release rt ~waker

let fence_wait rt th =
  Hashtbl.replace rt.fence_arrived th.tid ();
  if fence_complete rt then fence_release rt ~waker:th.tid
  else begin
    let gen = rt.fence_generation in
    while rt.fence_generation = gen do
      e_block rt ~reason:"fence"
    done
  end;
  ignore th

let serial_wait rt th =
  let at_head () = match rt.serial_queue with head :: _ -> head = th.tid | [] -> false in
  while not (at_head ()) do
    e_block rt ~reason:"serial-turn"
  done;
  rt.serial_acquisitions <- rt.serial_acquisitions + 1

let serial_done rt th =
  match rt.serial_queue with
  | head :: rest when head = th.tid ->
      rt.serial_queue <- rest;
      (match rest with
      | next :: _ ->
          (thread rt next).prof_waker <- th.tid;
          e_wakeup rt next
      | [] -> ())
  | _ -> invalid_arg "Det_rt.serial_done: thread is not at the head of the serial queue"

(* Round-robin ordering is implemented with the epoch fence + serial
   queue; instruction-count ordering with the GMIC token. *)
let uses_fence rt = rt.cfg.Config.ordering = Config.Round_robin

(* Acquire the right to perform a deterministic event: the global token
   (asynchronous commits) or the epoch fence plus the serial turn
   (synchronous commits, DThreads). *)
let acquire_global rt th =
  let t0 = e_now rt in
  if uses_fence rt then begin
    if th.serial_sticky then
      (* Back-to-back sync op: still our serial turn, no new fence. *)
      th.serial_sticky <- false
    else begin
      fence_wait rt th;
      serial_wait rt th
    end
  end
  else Tok.wait rt.token ~tid:th.tid;
  let waited = e_now rt - t0 in
  Bd.add th.bd Bd.Determ_wait waited;
  Obs.Metrics.record rt.mh.mh_determ_wait_ns waited;
  if waited > 0 then begin
    span rt ~cat:Obs.Span.Determ_wait ~name:"determ-wait" ~tid:th.tid ~t0 ();
    (* A token wait has no explicit grant: credit the last recorded
       serial-turn/fence waker, falling back to the last thread that made
       the token grantable (released it or published a clock tick). *)
    let waker = if th.prof_waker >= 0 then th.prof_waker else rt.prof_enabler in
    state_interval rt th ~state:St.Token_wait ~t0 ~waker ()
  end;
  th.prof_waker <- -1;
  th.token_t0 <- e_now rt

(* Drain a pipelined commit's deferred bulk cost, as a Commit_pipe
   interval stamped right after the global moved on — this is the point
   where the install/merge of chunk N overlaps execution of chunk N+1.
   Safe to relocate: token eligibility is decided purely from published
   logical clocks (never from simulated time), so charging here cannot
   change the synchronization order — the same argument that sanctions
   the parallel barrier's phase 2.  TSO visibility holds because the
   data itself was installed under the token; only its cost lands here.
   The incremental collector also steps here: the drain IS the commit
   slack the collector is meant to hide in. *)
let drain_pipe rt th =
  if th.pipe_pending_ns > 0 then begin
    let ns = int_of_float (float_of_int th.pipe_pending_ns *. rt.cfg.commit_cost_mult) in
    th.pipe_pending_ns <- 0;
    let t0 = e_now rt in
    charge rt th St.Commit_pipe ns;
    Obs.Metrics.record rt.mh.mh_commit_pipe_ns (e_now rt - t0);
    span rt ~cat:Obs.Span.Commit ~name:"commit-pipe" ~tid:th.tid ~t0 ();
    if rt.cfg.incremental_gc && not (is_real rt) then
      ignore
        (Vmem.Segment.gc_step rt.seg ~min_base:(min_base rt)
           ~max_pages:rt.costs.Cost_model.gc_step_pages)
  end

let release_global rt th =
  if th.token_t0 >= 0 then begin
    Obs.Metrics.record rt.mh.mh_token_hold_ns (e_now rt - th.token_t0);
    span rt ~cat:Obs.Span.Token_hold ~name:"token" ~tid:th.tid ~t0:th.token_t0 ();
    th.token_t0 <- -1
  end;
  if uses_fence rt then th.serial_sticky <- true
  else begin
    Tok.release rt.token ~tid:th.tid;
    rt.prof_enabler <- th.tid
  end;
  drain_pipe rt th

(* Surrender a deferred serial turn (before running user work, parking,
   or exiting). *)
let flush_sticky rt th =
  if th.serial_sticky then begin
    th.serial_sticky <- false;
    serial_done rt th
  end

(* ------------------------------------------------------------------ *)
(* Global coordination (enter / leave)                                *)
(* ------------------------------------------------------------------ *)

(* End-of-chunk bookkeeping common to every coordination entry. *)
let observe_chunk rt th =
  let chunk_len = th.instr_retired - th.chunk_start_instr in
  Obs.Metrics.record rt.mh.mh_chunk_instr chunk_len;
  if chunk_len > 0 && tracing rt then
    (* Perfetto-visible distinction between live chunks and chunks whose
       boundaries were forced by a replayed schedule. *)
    let args =
      ("instr", chunk_len) :: (if Config.scripted rt.cfg then [ ("replayed", 1) ] else [])
    in
    span rt ~cat:Obs.Span.Chunk ~name:"chunk" ~tid:th.tid ~t0:th.chunk_open_ns ~args ()

let close_chunk rt th =
  let chunk_len = th.instr_retired - th.chunk_start_instr in
  th.chunk_ewma <- ewma rt.cfg.ewma_alpha (float_of_int chunk_len) th.chunk_ewma;
  observe_chunk rt th;
  counter_read rt th;
  Lc.pause th.clock

let open_chunk rt th =
  Lc.resume th.clock;
  th.chunk_start_instr <- th.instr_retired;
  th.chunk_open_ns <- e_now rt;
  th.prof_chunk <- th.prof_chunk + 1;
  Ofp.begin_chunk th.ofp;
  th.next_overflow_in <- 0

(* The paper's clockPause(); waitToken() prologue.  A thread inside a
   coarsened chunk already holds the global: its hold converts directly
   into this operation's coordination phase (no release/re-acquire, and
   the deferred commits ride along with this op's commit). *)
let enter_coordination rt th =
  if th.coarsen_holding then begin
    (* Already holding the global: the post-unlock sample folds in global
       order. *)
    settle_post_unlock rt th;
    close_chunk rt th;
    th.coarsen_holding <- false;
    fence_check rt ~waker:th.tid;
    charge rt th St.Runtime rt.costs.Cost_model.sync_op_base_ns;
    (* The coarsened chunk's coalesced commit must happen here: the
       deferred writes include critical sections whose locks were already
       released, and the operation we are converting into may block and
       surrender the global without committing (e.g. a contended lock).
       Publishing them now preserves the release semantics of the
       coarsened unlocks. *)
    commit_and_update rt th
  end
  else begin
    close_chunk rt th;
    charge rt th St.Runtime rt.costs.Cost_model.sync_op_base_ns;
    acquire_global rt th;
    (* Post-unlock chunk samples fold into the shared per-lock estimate
       only while holding the global, so the fold order — and with it
       every later coarsening decision — is deterministic. *)
    settle_post_unlock rt th;
    charge rt th St.Runtime rt.costs.Cost_model.token_ns
  end;
  (* Multiplicative increase / decrease of the coarsening budget: repeated
     coordination by the same thread doubles it, alternation halves it
     (section 3.1). *)
  (if rt.cfg.coarsening = Config.Adaptive then
     if rt.last_coord_entrant = th.tid then
       th.coarsen_max <- min th.coarsen_cap (th.coarsen_max * 2)
     else th.coarsen_max <- max th.coarsen_floor (th.coarsen_max / 2));
  rt.last_coord_entrant <- th.tid

let leave_coordination rt th =
  release_global rt th;
  charge rt th St.Runtime rt.costs.Cost_model.token_ns;
  open_chunk rt th

(* Begin a coarsened chunk: keep the token and defer commits. *)
let begin_coarsen rt th =
  th.coarsen_holding <- true;
  th.coarsen_ops <- 0;
  th.coarsen_start_instr <- th.instr_retired;
  rt.coarsened_chunks <- rt.coarsened_chunks + 1;
  fence_check rt ~waker:th.tid;
  open_chunk rt th

(* End a coarsened chunk: single coalesced commit, then release. *)
let end_coarsen rt th =
  assert th.coarsen_holding;
  th.coarsen_holding <- false;
  observe_chunk rt th;
  counter_read rt th;
  commit_and_update rt th;
  release_global rt th;
  charge rt th St.Runtime rt.costs.Cost_model.token_ns;
  th.chunk_start_instr <- th.instr_retired;
  th.chunk_open_ns <- e_now rt;
  th.prof_chunk <- th.prof_chunk + 1;
  Ofp.begin_chunk th.ofp;
  th.next_overflow_in <- 0

(* Should we coarsen past this coordination phase?  [estimate] is the
   expected length of the upcoming piece of local work. *)
let coarsen_decision rt th ~estimate =
  match rt.cfg.coarsening with
  | Config.No_coarsening -> false
  | Config.Static k -> th.coarsen_ops < k
  | Config.Adaptive ->
      let accumulated =
        if th.coarsen_holding then th.instr_retired - th.coarsen_start_instr else 0
      in
      accumulated + int_of_float estimate <= th.coarsen_max

(* ------------------------------------------------------------------ *)
(* Local work execution (the chunk executor)                          *)
(* ------------------------------------------------------------------ *)

let rec consume rt th n =
  if n > 0 then begin
    flush_sticky rt th;
    (* A coarsened chunk that overruns its budget ends immediately: the
       coalesced commit happens mid-chunk (TSO permits committing early)
       and the token is released, bounding how long other threads can be
       blocked when the post-coarsening chunk turns out to be long
       (the net-loss case acknowledged in section 3.1). *)
    if th.coarsen_holding && th.instr_retired - th.coarsen_start_instr > th.coarsen_max then
      end_coarsen rt th;
    (* Controller milestones are instruction-exact: the clamp below
       guarantees an overflow publication lands on each one, so by the
       time we are at-or-past a milestone the pending decision applies
       before any further instruction retires. *)
    while th.instr_retired >= th.tune_next_at do
      tune_apply rt th
    done;
    (if th.next_overflow_in <= 0 then
       (* Both queries are O(1) reads of the incremental clock indexes:
          no fold, no closure, no list. *)
       let gap =
         if Lc.is_gmic rt.clocks ~tid:th.tid && Tok.waiting_count rt.token > 0 then
           Lc.next_waiting_gap rt.clocks ~tid:th.tid
         else 0
       in
       th.next_overflow_in <- Ofp.next_interval ~ic:th.instr_retired th.ofp ~waiter_gap:gap;
       (* Never cross a controller milestone: overflow placement is
          real-time-only, so forcing a boundary exactly there is free
          determinism-wise, and it pins decision application to the same
          instruction on every backend — including under a scripted
          (possibly perturbed) replay, where the recorded stream might
          otherwise skip the milestone. *)
       if th.tune_next_at < max_int && th.next_overflow_in > th.tune_next_at - th.instr_retired
       then th.next_overflow_in <- th.tune_next_at - th.instr_retired);
    let step = min n th.next_overflow_in in
    if is_real rt then begin
      (* Execute the chunk's instructions for real, with the runtime
         lock released (the substrate's spin drops and retakes it) so
         other domains' chunks genuinely overlap.  Safe because chunk
         work touches only thread-private state, and safe for ordering
         because grant eligibility depends only on published sync-point
         counts, never on when this work physically runs. *)
      let w0 = e_now rt in
      rt.ex.Sim.Exec.spin step;
      th.wall_run <- th.wall_run + (e_now rt - w0)
    end;
    charge rt th St.Run (Cost_model.work_ns rt.costs th.prng step);
    th.instr_retired <- th.instr_retired + step;
    th.unpublished <- th.unpublished + step;
    th.next_overflow_in <- th.next_overflow_in - step;
    th.since_commit <- th.since_commit + step;
    if th.next_overflow_in = 0 then begin
      (* Counter overflow interrupt: publish and notify (section 3.2).
         The kernel module publishes directly from the interrupt handler,
         so no syscall cost is charged on top of the interrupt itself. *)
      rt.overflow_interrupts <- rt.overflow_interrupts + 1;
      charge rt th St.Overflow rt.costs.Cost_model.overflow_interrupt_ns;
      publish rt th ~overflow:true
    end;
    (* Ad-hoc synchronization support (section 2.7): bound the number of
       instructions a chunk may retire before a forced commit+update. *)
    (match rt.cfg.chunk_limit with
    | Some limit when th.since_commit >= limit && not th.coarsen_holding ->
        enter_coordination rt th;
        commit_and_update rt th;
        record_sync rt th ~op:rt.mh.mh_op_forced_commit "forced-commit";
        leave_coordination rt th
    | Some _ | None -> ());
    consume rt th (n - step)
  end

let mem_instr rt len = max 1 (len / 8 * rt.costs.Cost_model.mem_op_instr_per_8bytes)

(* Run a workspace data operation.  On a real backend the runtime lock
   is released for the duration: reads/writes touch only the caller's
   private workspace plus immutable published segment snapshots (the
   lock-free read path Segment's [hist] publication order protects), so
   memory operations from different domains genuinely overlap.  The
   wrapper re-acquires the lock before re-raising, preserving the
   invariant that runtime code always unwinds with the lock held. *)
let unlocked_mem rt th f =
  if is_real rt then begin
    let w0 = e_now rt in
    rt.ex.Sim.Exec.unlock ();
    let r =
      try f ()
      with e ->
        rt.ex.Sim.Exec.lock ();
        raise e
    in
    rt.ex.Sim.Exec.lock ();
    th.wall_mem <- th.wall_mem + (e_now rt - w0);
    r
  end
  else f ()

let charge_new_faults rt th before_faults =
  let after = (Vmem.Workspace.stats th.ws).Vmem.Workspace.write_faults in
  let faults = after - before_faults in
  if faults > 0 then begin
    let ns =
      int_of_float
        (float_of_int (faults * rt.costs.Cost_model.page_fault_ns) *. rt.cfg.fault_cost_mult)
    in
    charge rt th St.Fault ns
  end

(* ------------------------------------------------------------------ *)
(* Parking (deterministic wait conditions)                            *)
(* ------------------------------------------------------------------ *)

(* Park the calling thread until [ready ()] holds.  The thread departs
   from GMIC consideration (clockDepart, Fig 7) and is excluded from the
   fence while parked.  The matching {!grant} — executed by the waker at
   a deterministic point — re-adds it to GMIC consideration and
   fast-forwards its clock; doing either on the wakee's side would make
   eligibility depend on the real-time wake latency and break
   determinism (the paper's wakeupThread() likewise "adds the thread
   back into consideration for the GMIC"). *)
let park rt th ~state ~reason ~ready =
  flush_sticky rt th;
  Lc.depart th.clock;
  th.parked <- true;
  Tok.poke rt.token;
  rt.prof_enabler <- th.tid;
  fence_check rt ~waker:th.tid;
  let t0 = e_now rt in
  while not (ready ()) do
    e_block rt ~reason
  done;
  let waited = e_now rt - t0 in
  Bd.add th.bd (bd_of_state state) waited;
  (let scat, hist =
     match state with
     | St.Barrier_wait -> (Obs.Span.Barrier_wait, rt.mh.mh_barrier_wait_ns)
     | _ -> (Obs.Span.Lock_wait, rt.mh.mh_lock_wait_ns)
   in
   Obs.Metrics.record hist waited;
   if waited > 0 then begin
     span rt ~cat:scat ~name:reason ~tid:th.tid ~t0 ();
     state_interval rt th ~state ~t0 ~waker:th.prof_waker ()
   end);
  th.prof_waker <- -1;
  (* Normally the granter already cleared these (and fast-forwarded our
     clock); when the grant landed before we even blocked — ready() was
     true on entry — restore them ourselves.  No simulated time passes in
     that path, so the flicker is invisible to other threads. *)
  th.parked <- false;
  Lc.arrive th.clock;
  Tok.poke rt.token

(* The waker's half of a wake-up (the paper's wakeupThread()): set the
   wakee's deterministic wake condition via [before], fast-forward its
   clock to the waker's (section 3.5), rejoin it to GMIC consideration,
   and schedule it. *)
let grant rt ~waker wakee ~before =
  before ();
  if rt.cfg.fast_forward then begin
    (* The wakee inherits the waker's true progress: publish any
       retired-but-unpublished instructions first, so the target is a
       pure function of the waker's program point.  Without this, a
       grant from inside a coarsened chunk (the one grant site that is
       not preceded by a chunk-closing counter read) fast-forwards to
       whatever the last overflow publication happened to be — and
       overflow timing is real-time dependent on the domains backend
       (Ofp's waiter_gap), which would leak wall-clock into the
       deterministic schedule. *)
    publish rt waker ~overflow:false;
    ignore (Lc.fast_forward wakee.clock ~to_count:(Lc.published waker.clock))
  end;
  wakee.parked <- false;
  wakee.prof_waker <- waker.tid;
  Lc.arrive wakee.clock;
  Tok.poke rt.token;
  e_wakeup rt wakee.tid

(* ------------------------------------------------------------------ *)
(* Synchronization operations                                         *)
(* ------------------------------------------------------------------ *)

let measure_cs_enter th (m : mutex_rec) = m.cs_enter_instr <- th.instr_retired

let rec mutex_lock rt th mid =
  let m = mutex_of rt mid in
  if th.coarsen_holding then begin
    settle_post_unlock rt th;
    if m.held_by = None then begin
      (* Coarsened fast path: we already hold the token; acquire without a
         coordination phase and defer the commit. *)
      m.held_by <- Some th.tid;
      measure_cs_enter th m;
      th.coarsen_ops <- th.coarsen_ops + 1;
      record_sync rt th ~op:rt.mh.mh_op_lock (lock_label mid);
      if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj = Rt_event.obj_mutex mid });
      counter_read rt th
    end
    else
      (* Lock contention: fall back to the full algorithm; its
         coordination prologue converts our coarsened hold in place. *)
      mutex_lock_slow rt th mid
  end
  else mutex_lock_slow rt th mid

(* The mutexLock() of Fig 7. *)
and mutex_lock_slow rt th mid =
  let m = mutex_of rt mid in
  let acquired = ref false in
  while not !acquired do
    enter_coordination rt th;
    if m.held_by = None then begin
      m.held_by <- Some th.tid;
      commit_and_update rt th;
      record_sync rt th ~op:rt.mh.mh_op_lock (lock_label mid);
      if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj = Rt_event.obj_mutex mid });
      measure_cs_enter th m;
      acquired := true;
      (* Coarsen across the critical section if its estimated length fits
         (section 3.1, per-lock estimate). *)
      if coarsen_decision rt th ~estimate:m.cs_ewma then begin
        begin_coarsen rt th;
        th.coarsen_ops <- 1
      end
      else leave_coordination rt th
    end
    else begin
      match rt.cfg.polling_locks with
      | Some increment ->
          (* Kendo-style polling (section 4.1): stay in GMIC
             consideration, bump our clock past the competition and spin.
             Deterministic (the increment is a fixed constant) but needs
             program-specific tuning of [increment] — the weakness
             Consequence's blocking algorithm removes. *)
          release_global rt th;
          Lc.resume th.clock;
          Lc.tick th.clock increment;
          th.instr_retired <- th.instr_retired + increment;
          Lc.pause th.clock;
          Tok.poke rt.token;
          charge rt th St.Lock_wait rt.costs.Cost_model.token_ns
      | None ->
          (* Held: depart, queue, release the token, block (Fig 7 lines
             9-14) — the paper's first blocking deterministic mutex. *)
          th.lock_grant <- false;
          Queue.push th.tid m.lock_waitq;
          release_global rt th;
          park rt th ~state:St.Lock_wait
            ~reason:(Printf.sprintf "lock:%d" mid)
            ~ready:(fun () -> th.lock_grant)
    end
  done

(* Release the mutex and grant the next waiter; shared by unlock and
   cond_wait.  Must run while holding the token. *)
let release_mutex rt ~waker (m : mutex_rec) =
  m.held_by <- None;
  if not (Queue.is_empty m.lock_waitq) then begin
    let next = Queue.pop m.lock_waitq in
    let waiter = thread rt next in
    grant rt ~waker waiter ~before:(fun () -> waiter.lock_grant <- true)
  end

let update_cs_ewma rt th (m : mutex_rec) =
  let len = float_of_int (th.instr_retired - m.cs_enter_instr) in
  m.cs_ewma <- ewma rt.cfg.ewma_alpha len m.cs_ewma

(* The mutexUnlock() of Fig 9. *)
let mutex_unlock rt th mid =
  let m = mutex_of rt mid in
  if m.held_by <> Some th.tid then
    invalid_arg (Printf.sprintf "unlock: thread %d does not hold mutex %d" th.tid mid);
  update_cs_ewma rt th m;
  (* Expected length of the chunk that follows this unlock: this thread's
     estimate for this lock, falling back to its generic chunk estimate. *)
  let post_estimate =
    match Hashtbl.find_opt th.post_ewma mid with Some v when v > 0.0 -> v | _ -> th.chunk_ewma
  in
  let note_post () =
    th.post_site <- Some mid;
    th.post_site_instr <- th.instr_retired
  in
  if th.coarsen_holding then begin
    settle_post_unlock rt th;
    release_mutex rt ~waker:th m;
    record_sync rt th ~op:rt.mh.mh_op_unlock (unlock_label mid);
    emit_release rt th (Rt_event.obj_mutex mid);
    th.coarsen_ops <- th.coarsen_ops + 1;
    charge rt th St.Runtime rt.costs.Cost_model.sync_op_base_ns;
    (* Continue coarsening over the upcoming chunk if it is expected to
       fit (section 3.1). *)
    if not (coarsen_decision rt th ~estimate:post_estimate) then end_coarsen rt th;
    note_post ()
  end
  else begin
    enter_coordination rt th;
    release_mutex rt ~waker:th m;
    commit_and_update rt th;
    record_sync rt th ~op:rt.mh.mh_op_unlock (unlock_label mid);
    emit_release rt th (Rt_event.obj_mutex mid);
    if coarsen_decision rt th ~estimate:post_estimate then begin_coarsen rt th
    else leave_coordination rt th;
    note_post ()
  end

let cond_wait rt th cid mid =
  let m = mutex_of rt mid in
  if m.held_by <> Some th.tid then
    invalid_arg (Printf.sprintf "cond_wait: thread %d does not hold mutex %d" th.tid mid);
  let c = cond_of rt cid in
  enter_coordination rt th;
  update_cs_ewma rt th m;
  release_mutex rt ~waker:th m;
  commit_and_update rt th;
  record_sync rt th ~op:rt.mh.mh_op_cond_wait ("cond_wait:" ^ string_of_int cid);
  emit_release rt th (Rt_event.obj_mutex mid);
  th.cond_grant <- false;
  Queue.push th.tid c.cond_waitq;
  release_global rt th;
  charge rt th St.Runtime rt.costs.Cost_model.token_ns;
  park rt th ~state:St.Lock_wait
    ~reason:(Printf.sprintf "cond:%d" cid)
    ~ready:(fun () -> th.cond_grant);
  if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj = Rt_event.obj_cond cid });
  open_chunk rt th;
  (* Re-acquire the mutex, competing deterministically with other lockers. *)
  mutex_lock rt th mid

let rec cond_signal rt th cid ~broadcast =
  let c = cond_of rt cid in
  if th.coarsen_holding && Queue.is_empty c.cond_waitq then begin
    settle_post_unlock rt th;
    (* Signalling with no waiter is purely local: nothing to wake, and the
       accompanying commit may be coalesced like any other under TSO, so
       the op need not end the coarsened chunk. *)
    record_sync rt th
    ~op:(if broadcast then rt.mh.mh_op_broadcast else rt.mh.mh_op_signal)
    ((if broadcast then "broadcast:" else "signal:") ^ string_of_int cid);
    th.coarsen_ops <- th.coarsen_ops + 1;
    charge rt th St.Runtime rt.costs.Cost_model.sync_op_base_ns
  end
  else cond_signal_slow rt th cid ~broadcast

and cond_signal_slow rt th cid ~broadcast =
  let c = cond_of rt cid in
  enter_coordination rt th;
  let rec grant_one () =
    if not (Queue.is_empty c.cond_waitq) then begin
      let next = Queue.pop c.cond_waitq in
      let waiter = thread rt next in
      grant rt ~waker:th waiter ~before:(fun () -> waiter.cond_grant <- true);
      charge rt th St.Runtime rt.costs.Cost_model.wake_ns;
      if broadcast then grant_one ()
    end
  in
  grant_one ();
  commit_and_update rt th;
  record_sync rt th
    ~op:(if broadcast then rt.mh.mh_op_broadcast else rt.mh.mh_op_signal)
    ((if broadcast then "broadcast:" else "signal:") ^ string_of_int cid);
  emit_release rt th (Rt_event.obj_cond cid);
  leave_coordination rt th

let barrier_init rt th bid parties =
  if parties <= 0 then invalid_arg "barrier_init: parties must be > 0";
  let b = barrier_of rt bid in
  b.parties <- parties;
  ignore th

(* Deterministic barrier with Conversion's two-phase parallel commit
   (section 4.2). *)
let barrier_wait rt th bid =
  let b = barrier_of rt bid in
  if b.parties = 0 then invalid_arg (Printf.sprintf "barrier %d: not initialized" bid);
  enter_coordination rt th;
  let c = rt.costs in
  let phase2_pages = ref 0 in
  (if rt.cfg.parallel_barrier then begin
     (* Phase 1 (serial, token held): order the commit and install its
        content; charge only the cheap ordering work.  Phase 2 (the bulk
        merge) is charged after the token is released, so committers
        overlap. *)
     let ci = ws_commit rt th in
     stamp_commit rt th ci;
     if ci.Vmem.Workspace.pages_committed > 0 then begin
       let t0 = e_now rt in
       charge rt th St.Commit
         (c.Cost_model.commit_base_ns
         + (ci.Vmem.Workspace.pages_committed * c.Cost_model.barrier_phase1_page_ns));
       Obs.Metrics.record rt.mh.mh_commit_ns (e_now rt - t0);
       Obs.Metrics.record rt.mh.mh_commit_pages ci.Vmem.Workspace.pages_committed;
       if tracing rt then
         span rt ~cat:Obs.Span.Commit
           ~name:(Printf.sprintf "commit-phase1:v%d" ci.Vmem.Workspace.version)
           ~tid:th.tid ~t0
           ~args:[ ("pages", ci.Vmem.Workspace.pages_committed) ]
           ();
       record_sync rt th ~op:rt.mh.mh_op_commit ("commit:" ^ string_of_int ci.Vmem.Workspace.version);
       emit_conflicts rt th ci;
       if emitting rt then begin
         emit rt
           (Rt_event.Commit
              {
                tid = th.tid;
                version = ci.Vmem.Workspace.version;
                pages = ci.Vmem.Workspace.committed_pages;
              });
         emit_commit_hash rt th ci
       end
     end;
     phase2_pages :=
       (ci.Vmem.Workspace.pages_committed * c.Cost_model.page_commit_ns)
       + (ci.Vmem.Workspace.pages_merged * c.Cost_model.page_merge_ns)
   end
   else
     (* Serial barrier commit (DWC-style, paper section 5.2): the entire
        page volume is installed while holding the turn, so concurrent
        barrier committers serialize. *)
     let ci = ws_commit rt th in
     stamp_commit rt th ci;
     charge_commit rt th ci);
  th.since_commit <- 0;
  record_sync rt th ~op:rt.mh.mh_op_barrier ("barrier:" ^ string_of_int bid);
  emit_release rt th (Rt_event.obj_barrier bid);
  b.arrived_tids <- th.tid :: b.arrived_tids;
  let last = List.length b.arrived_tids = b.parties in
  th.barrier_grant <- false;
  release_global rt th;
  charge rt th St.Runtime rt.costs.Cost_model.token_ns;
  (* Waiters run phase 2 and the internal (non-deterministic) barrier
     outside the deterministic ordering: they depart, and re-arrive only
     through their grant — a deterministic point in the global order.
     The LAST arriver must stay visible (active) throughout its phase 2
     and the grants: if it departed, its re-arrival would happen at a
     real-time-delayed instant that tied-clock threads race, which is
     nondeterministic (found by the determinism fuzzer). *)
  if not last then begin
    Lc.depart th.clock;
    Tok.poke rt.token;
    rt.prof_enabler <- th.tid
  end;
  (let p2_t0 = e_now rt in
   charge rt th St.Commit (int_of_float (float_of_int !phase2_pages *. rt.cfg.commit_cost_mult));
   if !phase2_pages > 0 then begin
     Obs.Metrics.record rt.mh.mh_commit_ns (e_now rt - p2_t0);
     span rt ~cat:Obs.Span.Commit ~name:"commit-phase2" ~tid:th.tid ~t0:p2_t0 ()
   end);
  if last then begin
    let others = List.filter (fun tid -> tid <> th.tid) b.arrived_tids in
    b.arrived_tids <- [];
    b.generation <- b.generation + 1;
    List.iter
      (fun tid ->
        let w = thread rt tid in
        grant rt ~waker:th w ~before:(fun () -> w.barrier_grant <- true))
      others;
    charge rt th St.Runtime (List.length others * rt.costs.Cost_model.wake_ns)
  end
  else
    (* The wake condition must be the grant itself: a stale wakeup permit
       plus a generation test could let a waiter slip out of the park
       before its grant ran (leaving it departed forever). *)
    park rt th ~state:St.Barrier_wait
      ~reason:(Printf.sprintf "barrier:%d" bid)
      ~ready:(fun () -> th.barrier_grant);
  if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj = Rt_event.obj_barrier bid });
  (* Everyone updates to the latest version after the internal barrier;
     these updates run concurrently. *)
  let ui = ws_update rt th in
  charge_update rt th ui;
  gc_and_sample rt;
  open_chunk rt th

(* ------------------------------------------------------------------ *)
(* Atomic read-modify-write (section 2.7)                             *)
(* ------------------------------------------------------------------ *)

(* Native RMW: a plain load+store through the isolated workspace.  Under
   deterministic isolation this silently loses concurrent increments —
   exactly the hazard the paper describes. *)
let plain_fetch_add rt th ~addr delta =
  consume rt th 10;
  let before = (Vmem.Workspace.stats th.ws).Vmem.Workspace.write_faults in
  let v = Vmem.Workspace.read_int th.ws ~addr in
  Vmem.Workspace.write_int th.ws ~addr (v + delta);
  charge_new_faults rt th before;
  v

(* The paper's proposed fix: token + fresh view + commit. *)
let atomic_fetch_add rt th ~addr delta =
  enter_coordination rt th;
  commit_and_update rt th;
  let before = (Vmem.Workspace.stats th.ws).Vmem.Workspace.write_faults in
  let v = Vmem.Workspace.read_int th.ws ~addr in
  Vmem.Workspace.write_int th.ws ~addr (v + delta);
  charge_new_faults rt th before;
  let ci = ws_commit rt th in
  stamp_commit rt th ci;
  charge_commit rt th ci;
  let ui = ws_update rt th in
  charge_update rt th ui;
  record_sync rt th ~op:rt.mh.mh_op_atomic ("atomic:" ^ string_of_int addr);
  leave_coordination rt th;
  v

(* ------------------------------------------------------------------ *)
(* Thread lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let rec make_ops rt th : Api.ops =
  {
    Api.tid = th.tid;
    self_name = th.name;
    work = (fun n -> consume rt th n);
    read =
      (fun ~addr ~len ->
        consume rt th (mem_instr rt len);
        unlocked_mem rt th (fun () -> Vmem.Workspace.read th.ws ~addr ~len));
    write =
      (fun ~addr buf ->
        consume rt th (mem_instr rt (Bytes.length buf));
        let before = (Vmem.Workspace.stats th.ws).Vmem.Workspace.write_faults in
        unlocked_mem rt th (fun () -> Vmem.Workspace.write th.ws ~addr buf);
        charge_new_faults rt th before);
    read_int =
      (fun ~addr ->
        consume rt th 1;
        unlocked_mem rt th (fun () -> Vmem.Workspace.read_int th.ws ~addr));
    write_int =
      (fun ~addr v ->
        consume rt th 1;
        let before = (Vmem.Workspace.stats th.ws).Vmem.Workspace.write_faults in
        unlocked_mem rt th (fun () -> Vmem.Workspace.write_int th.ws ~addr v);
        charge_new_faults rt th before);
    fetch_add = (fun ~addr delta -> plain_fetch_add rt th ~addr delta);
    atomic_fetch_add = (fun ~addr delta -> atomic_fetch_add rt th ~addr delta);
    lock = (fun m -> mutex_lock rt th m);
    unlock = (fun m -> mutex_unlock rt th m);
    cond_wait = (fun c m -> cond_wait rt th c m);
    cond_signal = (fun c -> cond_signal rt th c ~broadcast:false);
    cond_broadcast = (fun c -> cond_signal rt th c ~broadcast:true);
    barrier_init = (fun b parties -> barrier_init rt th b parties);
    barrier_wait = (fun b -> barrier_wait rt th b);
    spawn = (fun ?name body -> spawn_thread rt th ?name body);
    join = (fun t -> join_thread rt th t);
    log_output =
      (fun msg -> Sim.Trace.record rt.out_trace ~time:(e_now rt) ~tid:th.tid ~label:msg);
    yield = (fun () -> ());
    base_version = (fun () -> Vmem.Workspace.base th.ws);
    snapshot_read =
      (fun ~version ~addr ~len ->
        (* Version-pinned read straight from the segment histories: no
           fault, no resident copy.  The pin is GC-safe because callers
           pin at-or-above their own workspace base (see Segment.read_bytes). *)
        consume rt th (mem_instr rt len);
        unlocked_mem rt th (fun () -> Vmem.Segment.read_bytes rt.seg ~version ~addr ~len));
    now_ns = (fun () -> e_now rt);
    metric_incr = (fun key by -> Obs.Metrics.incr rt.metrics ~by key);
    metric_observe = (fun key v -> Obs.Metrics.observe rt.metrics key v);
    txn_validate =
      (fun ~keys ->
        charge rt th St.Txn_validate
          (rt.costs.Cost_model.txn_validate_base_ns
          + (keys * rt.costs.Cost_model.txn_validate_key_ns)));
    txn_abort =
      (fun ~seq ~retries ->
        charge rt th St.Txn_abort
          (rt.costs.Cost_model.txn_abort_ns + (retries * rt.costs.Cost_model.txn_backoff_ns));
        if emitting rt then emit rt (Rt_event.Txn_abort { tid = th.tid; seq; retries }));
  }

and new_thread_state rt ~tid ~name ~inherit_count =
  let clock = Lc.register rt.clocks ~tid in
  if inherit_count > 0 then ignore (Lc.fast_forward clock ~to_count:inherit_count);
  let ofp_kind =
    match rt.cfg.scheduling with
    | Config.Scripted bounds when tid < Array.length bounds -> Ofp.Scripted bounds.(tid)
    | Config.Scripted _ | Config.Emergent ->
        if rt.cfg.adaptive_overflow then
          Ofp.Adaptive { base = Ofp.default_base; cap = Ofp.default_cap }
        else Ofp.Fixed Ofp.default_base
  in
  let ws = Vmem.Workspace.create rt.seg ~tid in
  (* Conflict capture only feeds the event stream: pay the extra merge
     scan only when somebody is listening. *)
  if emitting rt then Vmem.Workspace.set_track_conflicts ws true;
  let th =
  {
    tid;
    name;
    clock;
    ws;
    bd = Bd.create ();
    prng = Sim.Prng.split rt.ex.Sim.Exec.prng;
    ofp = Ofp.create ofp_kind;
    instr_retired = 0;
    unpublished = 0;
    next_overflow_in = 0;
    chunk_start_instr = 0;
    since_commit = 0;
    chunk_ewma = 0.0;
    coarsen_holding = false;
    coarsen_ops = 0;
    coarsen_start_instr = 0;
    coarsen_max = rt.cfg.coarsen_max_initial;
    coarsen_floor = rt.cfg.coarsen_max_floor;
    coarsen_cap = rt.cfg.coarsen_max_cap;
    tune_epoch = 0;
    tune_next_at = max_int;
    exited = false;
    parked = false;
    joiner = None;
    lock_grant = false;
    cond_grant = false;
    join_grant = false;
    barrier_grant = false;
    post_site = None;
    post_site_instr = 0;
    post_ewma = Hashtbl.create 8;
    token_t0 = -1;
    chunk_open_ns = e_now rt;
    prof_chunk = 0;
    prof_waker = -1;
    serial_sticky = false;
    pipe_pending_ns = 0;
    race_epoch = 1;
    chunk_epoch = 1;
    wall_run = 0;
    wall_mem = 0;
    wall_commit = 0;
    wall_update = 0;
  }
  in
  (* Epoch-0 decision at thread start: every thread in every backend
     begins from the controller's warmup point (and emits the event),
     before its first instruction retires. *)
  if rt.cfg.Config.tune <> None then tune_apply rt th;
  th

and thread_exit rt th =
  enter_coordination rt th;
  commit_and_update rt th;
  record_sync rt th ~op:rt.mh.mh_op_exit "exit";
  emit_release rt th (Rt_event.obj_thread th.tid ^ ":exit");
  th.exited <- true;
  if rt.cfg.thread_pool then rt.pool_size <- rt.pool_size + 1;
  release_global rt th;
  Lc.finish th.clock;
  Tok.poke rt.token;
  rt.prof_enabler <- th.tid;
  fence_check rt ~waker:th.tid;
  (match th.joiner with
  | Some j -> grant rt ~waker:th (thread rt j) ~before:(fun () -> (thread rt j).join_grant <- true)
  | None -> ());
  flush_sticky rt th;
  if is_real rt then begin
    (* Flush the wall-clock calibration accumulators.  Counter adds are
       commutative, so the (timing-dependent) exit order cannot affect
       the totals; the wall:* keys exist only on real backends and are
       never part of the witness.  Runs under the runtime lock, like
       every other metrics access. *)
    let flush name v =
      if v > 0 then Obs.Metrics.count (Obs.Metrics.counter rt.metrics name) v
    in
    flush "wall:run_ns" th.wall_run;
    flush "wall:mem_ns" th.wall_mem;
    flush "wall:commit_ns" th.wall_commit;
    flush "wall:update_ns" th.wall_update
  end

and spawn_thread rt th ?name body =
  let fork_t0 = e_now rt in
  enter_coordination rt th;
  commit_and_update rt th;
  let child_tid = rt.next_tid in
  rt.next_tid <- child_tid + 1;
  let name =
    match name with
    | Some n -> n
    | None ->
        if child_tid < n_interned then interned_tname.(child_tid)
        else "t" ^ string_of_int child_tid
  in
  (* Thread-pool reuse (section 3.3) versus a full fork that copies every
     populated page-table entry of the Conversion segment. *)
  (if rt.cfg.thread_pool && rt.pool_size > 0 then begin
     rt.pool_size <- rt.pool_size - 1;
     charge rt th St.Fork rt.costs.Cost_model.pool_reuse_ns
   end
   else begin
     let populated = Vmem.Segment.touched_pages rt.seg in
     charge rt th St.Fork
       (rt.costs.Cost_model.fork_base_ns + (populated * rt.costs.Cost_model.fork_page_ns))
   end);
  let child = new_thread_state rt ~tid:child_tid ~name ~inherit_count:(Lc.published th.clock) in
  add_thread rt child;
  emit_release rt th (Rt_event.obj_thread child_tid);
  let fiber_id =
    rt.ex.Sim.Exec.spawn ~name (fun () ->
        (* A recycled thread must refresh its view of memory. *)
        if emitting rt then emit rt (Rt_event.Acquire { tid = child_tid; obj = Rt_event.obj_thread child_tid });
        let ui = ws_update rt child in
        charge_update rt child ui;
        body (make_ops rt child);
        thread_exit rt child)
  in
  assert (fiber_id = child_tid);
  record_sync rt th ~op:rt.mh.mh_op_spawn ("spawn:" ^ string_of_int child_tid);
  if tracing rt then
    span rt ~cat:Obs.Span.Fork
      ~name:(Printf.sprintf "spawn:%d" child_tid)
      ~tid:th.tid ~t0:fork_t0
      ~args:[ ("child", child_tid) ]
      ();
  Tok.poke rt.token;
  leave_coordination rt th;
  child_tid

and join_thread rt th target_tid =
  let join_t0 = e_now rt in
  (* Parking while holding a coarsened global would deadlock the system;
     end the hold before waiting for the child. *)
  if th.coarsen_holding then end_coarsen rt th;
  let target =
    match thread_opt rt target_tid with
    | Some target -> target
    | None -> invalid_arg (Printf.sprintf "join: unknown thread %d" target_tid)
  in
  if target.joiner <> None then invalid_arg (Printf.sprintf "join: thread %d already joined" target_tid);
  if not target.exited then begin
    target.joiner <- Some th.tid;
    th.join_grant <- false;
    close_chunk rt th;
    park rt th ~state:St.Lock_wait
      ~reason:(Printf.sprintf "join:%d" target_tid)
      ~ready:(fun () -> th.join_grant);
    Lc.resume th.clock;
    th.chunk_start_instr <- th.instr_retired
  end;
  (* Joining is a deterministic event: token + update to observe the
     child's final commits. *)
  enter_coordination rt th;
  commit_and_update rt th;
  record_sync rt th ~op:rt.mh.mh_op_join ("join:" ^ string_of_int target_tid);
  if emitting rt then emit rt (Rt_event.Acquire { tid = th.tid; obj = Rt_event.obj_thread target_tid ^ ":exit" });
  if tracing rt then
    span rt ~cat:Obs.Span.Join
      ~name:(Printf.sprintf "join:%d" target_tid)
      ~tid:th.tid ~t0:join_t0 ();
  leave_coordination rt th

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

(* Run [program] on an arbitrary execution substrate.  [start] drives
   the substrate's scheduler to quiescence after the main green thread
   has been registered (the DES calls [Sim.Engine.run]; the domains
   backend calls [Sim.Sched.run]).  Everything deterministic — thread
   ids, token grants, commits, witnesses — is computed by the same code
   on every substrate; only time and physical placement differ. *)
let run_exec cfg ~ex ~start ?(costs = Cost_model.default) ?(seed = 1) ?nthreads ?observer
    ?(obs = Obs.Sink.null) (program : Api.t) =
  let nthreads = match nthreads with Some n -> n | None -> program.Api.default_threads in
  let seg =
    Vmem.Segment.create ~name:program.Api.name ~pages:program.Api.heap_pages
      ~page_size:program.Api.page_size ()
  in
  if cfg.Config.commit_shards > 1 then Vmem.Segment.set_shards seg cfg.Config.commit_shards;
  let nshards = Vmem.Segment.shards seg in
  let clocks = Lc.create () in
  let ordering =
    match cfg.Config.ordering with
    | Config.Round_robin -> Tok.Round_robin
    | Config.Instruction_count -> Tok.Instruction_count
  in
  let token = Tok.create ex clocks ordering in
  let metrics = Obs.Metrics.create () in
  let rt =
    {
      cfg;
      costs;
      ex;
      seg;
      clocks;
      token;
      sync_trace = Sim.Trace.create ~capture:true ();
      out_trace = Sim.Trace.create ~capture:true ();
      threads = Array.make 8 None;
      mutex_dense = Array.make 64 None;
      mutexes = Hashtbl.create 16;
      conds = Hashtbl.create 16;
      barriers = Hashtbl.create 16;
      next_tid = 1;
      sync_ops = 0;
      last_coord_entrant = -1;
      peak_mem = 0;
      last_gc_ns = 0;
      pool_size = 0;
      overflow_interrupts = 0;
      coarsened_chunks = 0;
      fence_arrived = Hashtbl.create 16;
      fence_generation = 0;
      serial_queue = [];
      serial_acquisitions = 0;
      observer;
      race_stamp = Hashtbl.create 256;
      obs;
      prof_enabler = -1;
      metrics;
      mh =
        {
          mh_chunk_instr = Obs.Metrics.histogram metrics "chunk_instr";
          mh_determ_wait_ns = Obs.Metrics.histogram metrics "determ_wait_ns";
          mh_token_hold_ns = Obs.Metrics.histogram metrics "token_hold_ns";
          mh_commit_ns = Obs.Metrics.histogram metrics "commit_ns";
          mh_commit_pages = Obs.Metrics.histogram metrics "commit_pages";
          mh_commit_pipe_ns = Obs.Metrics.histogram metrics "commit_pipe_ns";
          mh_update_ns = Obs.Metrics.histogram metrics "update_ns";
          mh_lock_wait_ns = Obs.Metrics.histogram metrics "lock_wait_ns";
          mh_barrier_wait_ns = Obs.Metrics.histogram metrics "barrier_wait_ns";
          mh_op_lock = Obs.Metrics.counter metrics "op:lock";
          mh_op_unlock = Obs.Metrics.counter metrics "op:unlock";
          mh_op_commit = Obs.Metrics.counter metrics "op:commit";
          mh_op_spawn = Obs.Metrics.counter metrics "op:spawn";
          mh_op_join = Obs.Metrics.counter metrics "op:join";
          mh_op_exit = Obs.Metrics.counter metrics "op:exit";
          mh_op_cond_wait = Obs.Metrics.counter metrics "op:cond_wait";
          mh_op_barrier = Obs.Metrics.counter metrics "op:barrier";
          mh_op_atomic = Obs.Metrics.counter metrics "op:atomic";
          mh_op_signal = Obs.Metrics.counter metrics "op:signal";
          mh_op_broadcast = Obs.Metrics.counter metrics "op:broadcast";
          mh_op_forced_commit = Obs.Metrics.counter metrics "op:forced-commit";
        };
      mh_shard_commit_ns =
        (if nshards <= 1 then [||]
         else
           Array.init nshards (fun s ->
               Obs.Metrics.histogram metrics (Printf.sprintf "shard%d_commit_ns" s)));
      mh_shard_commit_pages =
        (if nshards <= 1 then [||]
         else
           Array.init nshards (fun s ->
               Obs.Metrics.histogram metrics (Printf.sprintf "shard%d_commit_pages" s)));
      shard_scratch = Array.make nshards 0;
    }
  in
  let main_state = new_thread_state rt ~tid:0 ~name:"main" ~inherit_count:0 in
  add_thread rt main_state;
  let fiber_id =
    rt.ex.Sim.Exec.spawn ~name:"main" (fun () ->
        program.Api.main ~nthreads (make_ops rt main_state);
        thread_exit rt main_state)
  in
  assert (fiber_id = 0);
  start ();
  let per_thread =
    fold_threads rt
      (fun th acc ->
        {
          Stats.Run_result.tid = th.tid;
          thread_name = th.name;
          breakdown = th.bd;
          instructions = th.instr_retired;
        }
        :: acc)
      []
    |> List.rev
  in
  let sum f = fold_threads rt (fun th acc -> acc + f th) 0 in
  let ws_stat f = sum (fun th -> f (Vmem.Workspace.stats th.ws)) in
  {
    Stats.Run_result.program = program.Api.name;
    runtime = cfg.Config.name;
    nthreads;
    seed;
    wall_ns = e_now rt;
    per_thread;
    sync_ops = rt.sync_ops;
    token_acquisitions = Tok.acquisitions token + rt.serial_acquisitions;
    pages_propagated = ws_stat (fun s -> s.Vmem.Workspace.pages_propagated);
    pages_committed = ws_stat (fun s -> s.Vmem.Workspace.pages_committed);
    pages_merged = ws_stat (fun s -> s.Vmem.Workspace.pages_merged);
    bytes_merged = ws_stat (fun s -> s.Vmem.Workspace.bytes_merged);
    write_faults = ws_stat (fun s -> s.Vmem.Workspace.write_faults);
    commits = ws_stat (fun s -> s.Vmem.Workspace.commits);
    coarsened_chunks = rt.coarsened_chunks;
    overflow_interrupts = rt.overflow_interrupts;
    peak_mem_pages = rt.peak_mem;
    versions = Vmem.Segment.versions_created seg;
    mem_hash = Vmem.Segment.hash seg;
    sync_order_hash = Sim.Trace.hash rt.sync_trace;
    output_hash = Sim.Trace.hash rt.out_trace;
    trace_events = Sim.Trace.length rt.sync_trace;
    schedule =
      List.map
        (fun (e : Sim.Trace.event) -> (e.Sim.Trace.time, e.Sim.Trace.tid, e.Sim.Trace.label))
        (Sim.Trace.events rt.sync_trace);
    metrics = Obs.Metrics.snapshot rt.metrics;
  }

(* The discrete-event entry point every existing caller uses: wrap the
   DES engine as the execution substrate and drive it to quiescence. *)
let run cfg ?costs ?seed ?nthreads ?observer ?obs (program : Api.t) =
  let eng = Sim.Engine.create ~seed:(Option.value seed ~default:1) () in
  run_exec cfg
    ~ex:(Sim.Exec.of_engine eng)
    ~start:(fun () -> Sim.Engine.run eng)
    ?costs ?seed ?nthreads ?observer ?obs program

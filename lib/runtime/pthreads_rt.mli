(** The nondeterministic pthreads baseline.

    Threads share one flat memory image; loads and stores apply
    immediately at their simulated time, so data races resolve by
    arrival order — which depends on the jittered execution latencies
    and therefore on the seed.  Lock acquisition is first-come
    first-served on real arrival time.  This is the normalization
    baseline of every figure, and the foil for the determinism tests:
    its witnesses are {e expected} to vary across seeds for racy
    programs. *)

val run :
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** [obs] (default {!Obs.Sink.null}) receives lock / barrier / join wait
    spans; pthreads has no token, chunks or commits, so only wait spans
    and op counters appear. *)

val name : string
(** ["pthreads"]. *)

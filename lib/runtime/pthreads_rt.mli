(** The nondeterministic pthreads baseline.

    Threads share one flat memory image; loads and stores apply
    immediately at their simulated time, so data races resolve by
    arrival order — which depends on the jittered execution latencies
    and therefore on the seed.  Lock acquisition is first-come
    first-served on real arrival time.  This is the normalization
    baseline of every figure, and the foil for the determinism tests:
    its witnesses are {e expected} to vary across seeds for racy
    programs. *)

val run :
  ?costs:Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?observer:Rt_event.observer ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  Stats.Run_result.t
(** [obs] (default {!Obs.Sink.null}) receives lock / barrier / join wait
    spans and the {!Obs.Thread_state} interval stream (a strict subset
    of the deterministic runtimes' states: run, runtime bookkeeping,
    lock / barrier waits, fork — no token, chunks or commits).

    [observer] receives happens-before events in simulated wall-clock
    order: [Release]/[Acquire] edges for every sync operation, and
    word-granularity [Conflict] events whenever a write overwrites a
    word last written by another thread (the [version]/[loser_version]
    fields carry the two threads' release-epochs).  Attaching an
    observer allocates shadow state but charges no simulated cost: the
    run's timing and results are unchanged. *)

val name : string
(** ["pthreads"]. *)

(** Happens-before instrumentation events.

    The runtimes can report each commit, release, acquire and merge
    conflict to an observer as they execute; the [hb] library replays
    these with vector clocks to estimate what an LRC-based consistency
    model would have propagated (paper section 5.3 / Fig 16), and the
    [race] library classifies the conflicts as racy or sync-ordered.

    Objects are identified by strings: ["m:3"] (mutex), ["c:1"]
    (condition variable), ["b:0"] (barrier), ["t:5"] (thread start/exit
    edge).  Events are emitted in the global total (token) order under
    the deterministic runtimes, and in wall-clock simulation order under
    pthreads. *)

type t =
  | Commit of { tid : int; version : int; pages : int list }
      (** the thread published these pages as the given version *)
  | Release of { tid : int; obj : string }
      (** release edge source: unlock, barrier arrival, cond signal,
          thread spawn (parent side), thread exit *)
  | Acquire of { tid : int; obj : string }
      (** acquire edge sink: lock, barrier departure, cond wake,
          thread start (child side), join *)
  | Conflict of {
      tid : int;  (** the winner: the thread whose commit merged *)
      version : int;
          (** deterministic runtimes: the version the winner committed;
              pthreads: the winner's release-epoch at the racing write *)
      page : int;
      first_byte : int;  (** page-relative, inclusive *)
      last_byte : int;  (** page-relative, inclusive *)
      loser_tid : int;  (** committer whose bytes were overwritten *)
      loser_version : int;
          (** the loser's release epoch at the start of the chunk (or,
              under pthreads, the instruction window) that wrote the
              bytes: its k-th emitted [Release] publishes epoch k *)
    }
      (** one byte run the last-writer-wins merge silently resolved
          (paper section 2.5); emitted just before the winner's
          [Commit] under the deterministic runtimes *)
  | Boundary of { tid : int; ic : int; overflow : bool }
      (** the thread published its retired-instruction counter: [ic] is
          the thread's retired count at the publication point, and
          [overflow] distinguishes a simulated counter-overflow interrupt
          (an [lib/replay] schedule can force these boundaries) from an
          end-of-chunk counter read at a sync op (program-determined).
          Unlike the four synchronization events above, boundaries are
          emitted mid-chunk, outside the token, so their interleaving
          across threads follows deterministic simulation order rather
          than the global token order.  Only the deterministic runtimes
          emit them, and only to an [observer] (never as trace
          instants). *)
  | Commit_hash of { tid : int; version : int; hash : string }
      (** content digest (FNV-1a over the committed page snapshots) of
          the workspace state a [Commit] just published; emitted
          immediately after its [Commit] so a replay can cross-check
          {e values}, not just schedule shape.  Observer-only, like
          [Boundary]. *)
  | Txn_abort of { tid : int; seq : int; retries : int }
      (** the thread's software transaction [seq] (its per-thread
          request ordinal) failed validation against the deterministic
          commit order and will retry; [retries] counts prior aborts of
          the same request.  Under the deterministic runtimes the
          abort/retry decision is a pure function of committed state, so
          these events are part of the replay-checked stream — a replay
          that aborts differently diverges.  Emitted outside the token,
          like [Boundary], and only to an [observer]. *)
  | Tune_decision of {
      tid : int;
      epoch : int;  (** decision ordinal: 0 at thread start, then one
                        per milestone *)
      ic : int;  (** the retired-instruction milestone the decision
                     applies at ([epoch * period], exact on every
                     backend) *)
      chunk_base : int;
      chunk_cap : int;
      coarsen : int;
      coarsen_floor : int;
      coarsen_cap : int;
    }
      (** the self-tuning controller ({!Tune_ctl}) applied a knob
          decision.  Decisions are a pure function of (params, epoch),
          so the stream is identical across runtimes and seeds; like
          [Txn_abort] they are replay-checked — a replay whose
          controller decides differently diverges.  Emitted outside the
          token, observer-only. *)

type observer = t -> unit

val obj_mutex : int -> string
val obj_cond : int -> string
val obj_barrier : int -> string
val obj_thread : int -> string

val label : t -> string
(** Short instant name used for trace spans: ["commit:v12"],
    ["rel:m:3"], ["acq:b:0"], ["conflict:p4+16..23"]. *)

val tid : t -> int

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner, used by the race detector's report. *)

val to_json : t -> Obs.Json.t
(** Structured form for trace/bench emission. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}: schedule logs serialize through the same
    schema as traces.  [Error] names the missing or ill-typed field. *)

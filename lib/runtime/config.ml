type ordering = Round_robin | Instruction_count
type commit_style = Synchronous | Asynchronous
type lock_granularity = Single_global | Per_lock
type coarsening = No_coarsening | Static of int | Adaptive
type scheduling = Emergent | Scripted of int array array

type t = {
  name : string;
  ordering : ordering;
  commit_style : commit_style;
  lock_granularity : lock_granularity;
  fault_cost_mult : float;
  commit_cost_mult : float;
  coarsening : coarsening;
  adaptive_overflow : bool;
  userspace_reads : bool;
  fast_forward : bool;
  parallel_barrier : bool;
  thread_pool : bool;
  chunk_limit : int option;
  polling_locks : int option;
  counter_jitter_ppm : int;
  gc_budgeted : bool;
  pipelined_commit : bool;
  commit_shards : int;
  incremental_gc : bool;
  coarsen_max_initial : int;
  coarsen_max_floor : int;
  coarsen_max_cap : int;
  ewma_alpha : float;
  scheduling : scheduling;
  tune : Tune_ctl.params option;
}

let base =
  {
    name = "base";
    ordering = Instruction_count;
    commit_style = Asynchronous;
    lock_granularity = Per_lock;
    fault_cost_mult = 1.0;
    commit_cost_mult = 1.0;
    coarsening = Adaptive;
    adaptive_overflow = true;
    userspace_reads = true;
    fast_forward = true;
    parallel_barrier = true;
    thread_pool = true;
    chunk_limit = None;
    polling_locks = None;
    counter_jitter_ppm = 0;
    gc_budgeted = true;
    pipelined_commit = false;
    commit_shards = 1;
    incremental_gc = false;
    coarsen_max_initial = 300_000;
    coarsen_max_floor = 10_000;
    coarsen_max_cap = 2_000_000;
    ewma_alpha = 0.3;
    scheduling = Emergent;
    tune = None;
  }

let consequence_ic = { base with name = "consequence-ic" }
let consequence_rr = { base with name = "consequence-rr"; ordering = Round_robin }

let dwc =
  {
    base with
    name = "dwc";
    ordering = Round_robin;
    commit_style = Asynchronous;
    lock_granularity = Single_global;
    coarsening = No_coarsening;
    adaptive_overflow = false;
    userspace_reads = false;
    fast_forward = false;
    parallel_barrier = false;
    thread_pool = false;
  }

let dthreads =
  {
    dwc with
    name = "dthreads";
    commit_style = Synchronous;
    (* mprotect-based isolation: pricier faults and commits than
       Conversion's kernel support (paper section 2.5 / [23]). *)
    fault_cost_mult = 3.0;
    commit_cost_mult = 4.5;
    gc_budgeted = false;
  }

(* The scaled commit path of this repro's parallel-commit work: sealed
   write-sets published under the token with the install/merge charged
   after the release, page-range-sharded installs, and the incremental
   per-shard collector.  Witness-identical to consequence_ic (only cost
   placement moves); kept out of {!presets} so the four-library figure
   sweeps are unchanged. *)
let consequence_pipe =
  {
    base with
    name = "consequence-pipe";
    pipelined_commit = true;
    commit_shards = 8;
    incremental_gc = true;
  }

let presets = [ dthreads; dwc; consequence_rr; consequence_ic ]

let with_name t name = { t with name }
let without_coarsening t = { t with name = t.name ^ "-nocoarsen"; coarsening = No_coarsening }

let with_static_coarsening t k =
  { t with name = Printf.sprintf "%s-static%d" t.name k; coarsening = Static k }

let without_adaptive_overflow t =
  { t with name = t.name ^ "-nooverflow"; adaptive_overflow = false }

let without_userspace_reads t = { t with name = t.name ^ "-nouserread"; userspace_reads = false }
let without_fast_forward t = { t with name = t.name ^ "-noff"; fast_forward = false }

let without_parallel_barrier t =
  { t with name = t.name ^ "-nopbarrier"; parallel_barrier = false }

let without_thread_pool t = { t with name = t.name ^ "-nopool"; thread_pool = false }
let with_chunk_limit t n = { t with name = Printf.sprintf "%s-climit%d" t.name n; chunk_limit = Some n }

let with_polling_locks t ~increment =
  { t with name = Printf.sprintf "%s-poll%d" t.name increment; polling_locks = Some increment }
let with_counter_jitter t ~ppm = { t with name = t.name ^ "-cjitter"; counter_jitter_ppm = ppm }

let with_pipelined_commit t = { t with name = t.name ^ "-pipe"; pipelined_commit = true }

let with_commit_shards t n =
  if n < 1 then invalid_arg "Config.with_commit_shards: shards must be >= 1";
  { t with name = Printf.sprintf "%s-shard%d" t.name n; commit_shards = n }

let with_incremental_gc t = { t with name = t.name ^ "-incgc"; incremental_gc = true }

let with_scripted_schedule t ~boundaries =
  { t with name = t.name ^ "-replay"; scheduling = Scripted boundaries }

let scripted t = match t.scheduling with Scripted _ -> true | Emergent -> false

let with_adaptive_tuning ?(params = Tune_ctl.default) t =
  Tune_ctl.validate params;
  { t with name = t.name ^ "-tuned"; tune = Some params }

let without_adaptive_tuning t =
  match t.tune with
  | None -> t
  | Some _ ->
      let name =
        let suffix = "-tuned" in
        let nl = String.length t.name and sl = String.length suffix in
        if nl >= sl && String.sub t.name (nl - sl) sl = suffix then String.sub t.name 0 (nl - sl)
        else t.name
      in
      { t with name; tune = None }

let tuned t = match t.tune with Some _ -> true | None -> false

(** Deterministic-runtime configuration and the paper's library presets.

    One configurable runtime implements all four deterministic systems
    compared in the evaluation (section 5); each preset fixes the design
    points its paper describes:

    - {!dthreads}: round-robin ordering, synchronous commits (all threads
      rendezvous at each commit round, Fig 3a), a single global lock,
      mprotect-based isolation cost multipliers, no Consequence
      optimizations.
    - {!dwc} (DThreads-with-Conversion [23]): round-robin, asynchronous
      commits through versioned memory, single global lock.
    - {!consequence_rr}: full Consequence machinery with round-robin
      ordering (the Consequence-RR curve of Fig 10).
    - {!consequence_ic}: the main system — GMIC (instruction-count)
      ordering plus all optimizations of section 3.

    Every optimization is independently toggleable for the Fig 13
    ablation study. *)

type ordering = Round_robin | Instruction_count

type commit_style =
  | Synchronous  (** commits require a global rendezvous (DThreads, Fig 3a) *)
  | Asynchronous  (** threads commit independently under the token (Fig 3b) *)

type lock_granularity =
  | Single_global  (** every mutex aliases one global lock (DThreads/DWC) *)
  | Per_lock

type coarsening =
  | No_coarsening
  | Static of int  (** always coalesce exactly this many sync ops *)
  | Adaptive  (** EWMA estimates + multiplicative max adaptation (section 3.1) *)

type scheduling =
  | Emergent  (** boundaries fall out of the adaptive policies (normal runs) *)
  | Scripted of int array array
      (** replay mode (lib/replay): element [tid] lists the ascending
          retired-instruction counts at which thread [tid]'s counter must
          overflow, exactly as recorded by a {!Runtime.Rt_event.Boundary}
          stream.  Threads beyond the array length run unscripted.
          Scripting replaces the adaptive overflow policy's {e decisions}
          with their recorded outcomes; since overflow placement never
          affects determinism, a scripted run of the same program is
          byte-identical to the recorded one. *)

type t = {
  name : string;
  ordering : ordering;
  commit_style : commit_style;
  lock_granularity : lock_granularity;
  fault_cost_mult : float;  (** isolation-cost multiplier vs Conversion *)
  commit_cost_mult : float;
  coarsening : coarsening;
  adaptive_overflow : bool;  (** section 3.2; false = fixed overflow interval *)
  userspace_reads : bool;  (** section 3.4 *)
  fast_forward : bool;  (** section 3.5 *)
  parallel_barrier : bool;  (** section 4.2 two-phase barrier commit *)
  thread_pool : bool;  (** section 3.3 fork-join thread reuse *)
  chunk_limit : int option;
      (** section 2.7 ad-hoc-synchronization support: force a commit+update
          every N retired instructions.  [None] (the evaluation default)
          disables it. *)
  polling_locks : int option;
      (** [Some k]: Kendo-style polling mutex (section 4.1): a GMIC thread
          that finds the lock held releases the token, adds [k] to its own
          logical clock and retries — instead of Consequence's blocking
          algorithm (depart + wait queue).  [k] is the tuning knob the
          paper criticizes.  [None] (default): blocking locks. *)
  counter_jitter_ppm : int;
      (** parts-per-million multiplicative noise on {e published} counter
          values; nonzero models untrusted performance counters [30] and
          intentionally breaks determinism for the soundness study. *)
  gc_budgeted : bool;
      (** true = Conversion's rate-limited single-threaded GC (Fig 12);
          false = snapshots reclaimed eagerly (DThreads-style accounting,
          which keeps only the live image plus twins) *)
  pipelined_commit : bool;
      (** pipeline commits with execution: the token holder seals and
          publishes its write-set (charged per page at
          [commit_seal_page_ns] while holding the global) and releases
          immediately; the bulk install/merge is charged after the
          release as a {!Obs.Thread_state.Commit_pipe} interval, so the
          twin-diff/merge of chunk N overlaps execution of chunk N+1.
          The installed {e data} still lands at the token hold (version
          order is unchanged), so witnesses, merges, conflict capture
          and commit digests are byte-identical to the serial path. *)
  commit_shards : int;
      (** split the segment into this many contiguous page-range shards
          with independent live accounting, GC cursors and locks;
          commits whose footprint spans several shards install in
          parallel (real domains for large commits, and the pipelined
          install cost is the max over shards rather than the sum).
          1 = unsharded (the default). *)
  incremental_gc : bool;
      (** replace the single rate-limited GC sweep with the incremental
          per-shard collector: bounded steps ([gc_step_pages]) that run
          in commit slack (at every pipelined-commit drain point) *)
  coarsen_max_initial : int;  (** initial adaptive max coarsened-chunk length *)
  coarsen_max_floor : int;
  coarsen_max_cap : int;
  ewma_alpha : float;  (** weight of the newest sample in chunk estimates *)
  scheduling : scheduling;
  tune : Tune_ctl.params option;
      (** [Some p]: the self-tuning controller is on — at each
          retired-instruction milestone ([epoch * p.period], enforced
          exactly by clamping overflow intervals) every thread applies
          the pure decision {!Tune_ctl.decide}, retargeting its overflow
          policy and coarsening bounds and emitting a replay-checked
          {!Rt_event.Tune_decision}.  Orthogonal to [scheduling]: a
          scripted replay of a tuned run keeps the controller on, so the
          recorded decisions are re-derived and re-checked.  [None]
          (default): static knobs. *)
}

val dthreads : t
val dwc : t
val consequence_rr : t
val consequence_ic : t

val consequence_pipe : t
(** {!consequence_ic} with [pipelined_commit], 8 [commit_shards] and
    [incremental_gc] — the scaled commit path.  Witness-identical to
    {!consequence_ic} by construction (only cost placement changes);
    not part of {!presets}. *)

val presets : t list
(** The four deterministic libraries of Fig 10, in display order. *)

val with_name : t -> string -> t
val without_coarsening : t -> t
val with_static_coarsening : t -> int -> t
val without_adaptive_overflow : t -> t
val without_userspace_reads : t -> t
val without_fast_forward : t -> t
val without_parallel_barrier : t -> t
val without_thread_pool : t -> t
val with_chunk_limit : t -> int -> t
val with_polling_locks : t -> increment:int -> t
val with_counter_jitter : t -> ppm:int -> t

val with_pipelined_commit : t -> t
val with_commit_shards : t -> int -> t
val with_incremental_gc : t -> t

val with_scripted_schedule : t -> boundaries:int array array -> t
(** Replay a recorded schedule: force per-thread chunk boundaries at the
    given retired-instruction counts (see {!scheduling}). *)

val scripted : t -> bool

val with_adaptive_tuning : ?params:Tune_ctl.params -> t -> t
(** Turn the self-tuning controller on (appends ["-tuned"] to the
    name).  [params] defaults to {!Tune_ctl.default}, whose steady
    state is the hand-tuned static configuration.
    @raise Invalid_argument on malformed params. *)

val without_adaptive_tuning : t -> t
(** Turn the controller back off (strips a trailing ["-tuned"]). *)

val tuned : t -> bool

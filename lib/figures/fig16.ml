let measure ?(threads = 8) ?(seed = 1) () =
  Sim.Par.map_list
    (fun name ->
      let program = (Workload.Registry.find name).Workload.Registry.program in
      Hb.Lrc_study.run ~seed ~nthreads:threads program)
    Workload.Registry.fig16_set

let run ?threads ?seed () =
  let results = measure ?threads ?seed () in
  let table =
    Stats.Table.create ~columns:[ "benchmark"; "tso-pages"; "lrc-pages"; "reduction" ]
  in
  List.iter
    (fun (r : Hb.Lrc_study.result) ->
      Stats.Table.add_row table
        [
          r.program;
          string_of_int r.tso_pages;
          string_of_int r.lrc_pages;
          Printf.sprintf "%.1f%%" (100.0 *. Hb.Lrc_study.reduction r);
        ])
    results;
  let avg =
    List.fold_left (fun acc r -> acc +. Hb.Lrc_study.reduction r) 0.0 results
    /. float_of_int (List.length results)
  in
  let canneal = List.find_opt (fun (r : Hb.Lrc_study.result) -> r.program = "canneal") results in
  {
    Fig_output.id = "fig16";
    title = "pages propagated: TSO (measured) vs LRC (vector-clock replay)";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf "average LRC reduction: %.1f%% (paper: ~21%%)" (100.0 *. avg);
        (match canneal with
        | Some r ->
            Printf.sprintf "canneal reduction: %.1f%% (paper: barriers leave almost nothing for LRC to save)"
              (100.0 *. Hb.Lrc_study.reduction r)
        | None -> "canneal not measured");
      ];
  }

type row = {
  benchmark : string;
  stable : (string * bool) list;
  pthreads_variants : int;
}

let det_runtimes =
  [ Runtime.Run.dthreads; Runtime.Run.dwc; Runtime.Run.consequence_rr; Runtime.Run.consequence_ic ]

let witness rt ~seed ~threads program =
  Stats.Run_result.deterministic_witness (Runtime.Run.run rt ~seed ~nthreads:threads program)

let measure ?(threads = 4) ?(seeds = [ 1; 2; 42 ]) () =
  (* One job per (benchmark, runtime); pthreads rides along as the last
     runtime of each benchmark.  Each job runs its own seed sweep. *)
  let rts = det_runtimes @ [ Runtime.Run.pthreads ] in
  let nrts = List.length rts in
  let jobs =
    List.concat_map
      (fun entry -> List.map (fun rt -> (entry, rt)) rts)
      Workload.Registry.all
  in
  let sweeps =
    Array.of_list
      (Sim.Par.map_list
         (fun (entry, rt) ->
           let program = entry.Workload.Registry.program in
           List.map (fun seed -> witness rt ~seed ~threads program) seeds)
         jobs)
  in
  List.mapi
    (fun k entry ->
      let program = entry.Workload.Registry.program in
      let stable =
        List.mapi
          (fun j rt ->
            let ws = sweeps.((k * nrts) + j) in
            (Runtime.Run.name rt, List.length (List.sort_uniq compare ws) = 1))
          det_runtimes
      in
      let pthreads_variants =
        sweeps.((k * nrts) + nrts - 1) |> List.sort_uniq compare |> List.length
      in
      { benchmark = program.Api.name; stable; pthreads_variants })
    Workload.Registry.all

let run ?threads ?seeds () =
  let rows = measure ?threads ?seeds () in
  let rt_names = List.map Runtime.Run.name det_runtimes in
  let table =
    Stats.Table.create ~columns:(("benchmark" :: rt_names) @ [ "pthreads-variants" ])
  in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        ((row.benchmark
         :: List.map (fun n -> if List.assoc n row.stable then "stable" else "DIVERGED") rt_names)
        @ [ string_of_int row.pthreads_variants ]))
    rows;
  let all_stable =
    List.for_all (fun row -> List.for_all snd row.stable) rows
  in
  let divergent_pthreads = List.length (List.filter (fun r -> r.pthreads_variants > 1) rows) in
  {
    Fig_output.id = "determinism";
    title = "witness stability across perturbed executions (seeds)";
    tables = [ ("", table) ];
    notes =
      [
        (if all_stable then
           "all deterministic libraries produced identical witnesses on every benchmark"
         else "DETERMINISM VIOLATION DETECTED");
        Printf.sprintf
          "pthreads produced multiple distinct outcomes on %d of %d benchmarks (racy/timing-dependent programs)"
          divergent_pthreads (List.length rows);
      ];
  }

type row = {
  benchmark : string;
  speedups : (string * float) list;
}

let optimizations =
  [
    ("coarsening", Runtime.Config.without_coarsening);
    ("adaptive-overflow", Runtime.Config.without_adaptive_overflow);
    ("userspace-reads", Runtime.Config.without_userspace_reads);
    ("fast-forward", Runtime.Config.without_fast_forward);
    ("parallel-barrier", Runtime.Config.without_parallel_barrier);
    ("thread-pool", Runtime.Config.without_thread_pool);
  ]

let measure ?(threads = 8) ?(seed = 1) () =
  (* One job per (benchmark, config): the baseline config first, then
     each optimization disabled in turn. *)
  let cfgs =
    Runtime.Config.consequence_ic
    :: List.map (fun (_, disable) -> disable Runtime.Config.consequence_ic) optimizations
  in
  let ncfg = List.length cfgs in
  let names = Workload.Registry.fig13_set in
  let jobs = List.concat_map (fun name -> List.map (fun cfg -> (name, cfg)) cfgs) names in
  let walls =
    Array.of_list
      (Sim.Par.map_list
         (fun (name, cfg) ->
           let program = (Workload.Registry.find name).Workload.Registry.program in
           (Runtime.Det_rt.run cfg ~seed ~nthreads:threads program).Stats.Run_result.wall_ns)
         jobs)
  in
  List.mapi
    (fun k name ->
      let base_wall = walls.(k * ncfg) in
      let speedups =
        List.mapi
          (fun j (opt_name, _) ->
            (opt_name, float_of_int walls.((k * ncfg) + 1 + j) /. float_of_int base_wall))
          optimizations
      in
      { benchmark = name; speedups })
    names

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let opt_names = List.map fst optimizations in
  let table = Stats.Table.create ~columns:("benchmark" :: opt_names) in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        (row.benchmark
        :: List.map (fun n -> Stats.Table.cell_ratio (List.assoc n row.speedups)) opt_names))
    rows;
  let best_for opt =
    List.fold_left
      (fun (bn, bv) row ->
        let v = List.assoc opt row.speedups in
        if v > bv then (row.benchmark, v) else (bn, bv))
      ("-", 0.0) rows
  in
  let cb, cv = best_for "coarsening" in
  let pb, pv = best_for "parallel-barrier" in
  let uv = List.fold_left (fun acc row -> max acc (List.assoc "userspace-reads" row.speedups)) 0.0 rows in
  {
    Fig_output.id = "fig13";
    title = "speedup from each optimization (Consequence-IC with vs without), 8 threads";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf "largest coarsening win: %s %.2fx (paper: ferret, reverse_index)" cb cv;
        Printf.sprintf "largest parallel-barrier win: %s %.2fx (paper: ocean_cp/lu_ncb/canneal/lu_cb)" pb pv;
        Printf.sprintf "largest user-space-read win: %.2fx (paper: contributes very little)" uv;
      ];
  }

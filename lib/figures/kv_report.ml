(* Transactional KV service report: throughput and request-latency SLO
   quantiles for the six server-shaped traffic mixes.

   Each shape runs once per seed on the chosen runtime; the table
   reports completed requests (commits + snapshot reads), abort counts,
   throughput against the modelled clock, and the p50/p99/p999 of the
   kv:req_ns request-latency histogram (submission to completion,
   retries included — so the tail quantiles surface the abort/retry
   convoys that hot-key contention produces).

   The notes carry the determinism claims: for a deterministic runtime
   the witness and the abort counts must be byte-identical across
   seeds — latencies move with the seed, outcomes never do. *)

let default_seeds = [ 1; 7 ]

type sample = {
  s_shape : string;
  s_seed : int;
  s_wall : int;
  s_completed : int;
  s_commits : int;
  s_aborts : int;
  s_snapshots : int;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
  s_witness : string;
}

let measure ?(runtime = Runtime.Run.consequence_ic) ?(threads = 4) ?(seeds = default_seeds) ()
    =
  let shapes = Workload.Registry.kv_set in
  let jobs = List.concat_map (fun sh -> List.map (fun seed -> (sh, seed)) seeds) shapes in
  Sim.Par.map_list
    (fun (shape, seed) ->
      let program = (Workload.Registry.find shape).Workload.Registry.program in
      let r = Runtime.Run.run runtime ~seed ~nthreads:threads program in
      let m = r.Stats.Run_result.metrics in
      let commits = Obs.Metrics.counter_value m "kv:commits" in
      let snapshots = Obs.Metrics.counter_value m "kv:snapshots" in
      let q p =
        match Obs.Metrics.find_hist m "kv:req_ns" with
        | Some h -> Obs.Metrics.percentile h p
        | None -> nan
      in
      {
        s_shape = shape;
        s_seed = seed;
        s_wall = r.Stats.Run_result.wall_ns;
        s_completed = commits + snapshots;
        s_commits = commits;
        s_aborts = Obs.Metrics.counter_value m "kv:aborts";
        s_snapshots = snapshots;
        s_p50 = q 0.50;
        s_p99 = q 0.99;
        s_p999 = q 0.999;
        s_witness = Stats.Run_result.deterministic_witness r;
      })
    jobs

let throughput s =
  if s.s_wall <= 0 then 0.0
  else float_of_int s.s_completed /. float_of_int s.s_wall *. 1e9

let run ?runtime ?threads ?seeds () =
  let runtime = Option.value runtime ~default:Runtime.Run.consequence_ic in
  let samples = measure ~runtime ?threads ?seeds () in
  let table =
    Stats.Table.create
      ~columns:
        [
          "shape";
          "seed";
          "wall-ns";
          "req";
          "commits";
          "aborts";
          "snapshots";
          "req/s";
          "p50-ns";
          "p99-ns";
          "p999-ns";
        ]
  in
  List.iter
    (fun s ->
      Stats.Table.add_row table
        [
          s.s_shape;
          string_of_int s.s_seed;
          string_of_int s.s_wall;
          string_of_int s.s_completed;
          string_of_int s.s_commits;
          string_of_int s.s_aborts;
          string_of_int s.s_snapshots;
          Printf.sprintf "%.0f" (throughput s);
          Printf.sprintf "%.0f" s.s_p50;
          Printf.sprintf "%.0f" s.s_p99;
          Printf.sprintf "%.0f" s.s_p999;
        ])
    samples;
  (* Per shape: witnesses and abort counts across seeds. *)
  let shapes = Workload.Registry.kv_set in
  let of_shape sh = List.filter (fun s -> s.s_shape = sh) samples in
  let witness_stable sh =
    List.length (List.sort_uniq compare (List.map (fun s -> s.s_witness) (of_shape sh))) <= 1
  in
  let aborts_stable sh =
    List.length (List.sort_uniq compare (List.map (fun s -> s.s_aborts) (of_shape sh))) <= 1
  in
  let all_stable = List.for_all witness_stable shapes && List.for_all aborts_stable shapes in
  let hot_tail =
    match of_shape "kv_hot" with
    | s :: _ when s.s_p50 > 0.0 -> s.s_p999 /. s.s_p50
    | _ -> 0.0
  in
  {
    Fig_output.id = "kv";
    title = "transactional KV service: throughput and latency SLO quantiles per traffic shape";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf "runtime %s: %d shapes x %d seeds" (Runtime.Run.name runtime)
          (List.length shapes)
          (List.length (Option.value seeds ~default:default_seeds));
        (if Runtime.Run.deterministic runtime then
           if all_stable then
             "witnesses and abort counts byte-identical across seeds for every shape"
           else "WITNESS OR ABORT-COUNT DIVERGENCE across seeds"
         else "pthreads baseline: latency quantiles only, witnesses not comparable");
        Printf.sprintf "hot-key p999/p50 latency ratio %.1fx (abort/retry convoys stretch the tail)"
          hot_tail;
      ];
  }

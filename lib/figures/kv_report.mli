(** Transactional KV service report ([BENCH_kv.json]): throughput and
    p50/p99/p999 request latency for the six server-shaped traffic mixes
    of {!Kv.Service}, plus the cross-seed determinism claims (witnesses
    and abort counts byte-identical on deterministic runtimes). *)

val run :
  ?runtime:Runtime.Run.runtime -> ?threads:int -> ?seeds:int list -> unit -> Fig_output.t

type row = {
  variant : string;
  wall_ns : int;
  commits : int;
  forced : int;
}

let chunk_sizes = [ 10_000; 50_000; 200_000 ]

(* Long compute regions with occasional synchronization: the case where
   sync-op-only commits amortize best. *)
let program =
  Api.make ~name:"chunking-study" ~heap_pages:64 ~page_size:256 (fun ~nthreads ops ->
      Workload.Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for phase = 1 to 4 do
            w.Api.work 150_000;
            Workload.Wl_util.fill_region w ~addr:(4096 + (1024 * i)) ~bytes:512
              ~tag:(i + phase);
            Workload.Wl_util.locked_add w ~lock:0 ~addr:8 phase
          done))

let measure ?(threads = 8) ?(seed = 1) () =
  let base = Runtime.Config.consequence_ic in
  let variants =
    ("sync-ops-only", base)
    :: List.map
         (fun k -> (Printf.sprintf "chunk-%d" k, Runtime.Config.with_chunk_limit base k))
         chunk_sizes
  in
  Sim.Par.map_list
    (fun (variant, cfg) ->
      let r = Runtime.Det_rt.run cfg ~seed ~nthreads:threads program in
      let forced =
        List.length
          (List.filter (fun (_, _, l) -> l = "forced-commit") r.Stats.Run_result.schedule)
      in
      { variant; wall_ns = r.Stats.Run_result.wall_ns; commits = r.Stats.Run_result.commits; forced })
    variants

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let table =
    Stats.Table.create ~columns:[ "commit placement"; "wall"; "page commits"; "forced commits" ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        [
          row.variant;
          Printf.sprintf "%.2f ms" (float_of_int row.wall_ns /. 1e6);
          string_of_int row.commits;
          string_of_int row.forced;
        ])
    rows;
  let sync_only = List.find (fun r -> r.variant = "sync-ops-only") rows in
  let worst =
    List.fold_left (fun acc r -> if r.wall_ns > acc.wall_ns then r else acc) sync_only rows
  in
  {
    Fig_output.id = "chunking";
    title = "commit placement: fixed-size chunks (CoreDet/Calvin) vs sync-op boundaries (section 2.4)";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf
          "sync-op-only: %.2f ms, 0 forced commits; worst fixed chunking (%s): %.2f ms with %d forced commit+updates — committing only at synchronization operations amortizes commit cost (the design DThreads introduced and Consequence builds on)"
          (float_of_int sync_only.wall_ns /. 1e6)
          worst.variant
          (float_of_int worst.wall_ns /. 1e6)
          worst.forced;
      ];
  }

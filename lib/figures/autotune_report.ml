(* Default vs controller vs searched vs best-hand-tuned simulated time
   over the workload registry: the auto-tuner's report card.

   The acceptance bar the notes spell out: the searched configuration
   must be within 5% of the best hand-tuned grid point on every
   workload (it is <= by construction — the grid is a subset of the
   search space and its default point ties the untuned config exactly),
   and strictly faster than the default on at least half of them. *)

let ratio num den = if den <= 0 then 1.0 else float_of_int num /. float_of_int den

let run ?(benchmarks = Workload.Registry.names) ?(threads = 8) ?(seed = 1) ?(quick = true) () =
  let results =
    Sim.Par.map_list
      (fun name -> Tune.Search.search ~nthreads:threads ~seed ~quick ~check:true name)
      benchmarks
  in
  let table =
    Stats.Table.create
      ~columns:
        [
          "workload";
          "default-ns";
          "controller-ns";
          "searched-ns";
          "hand-best-ns";
          "hand-best";
          "searched-vs-hand";
          "searched-vs-default";
          "from";
          "seed-stable";
          "replay";
        ]
  in
  List.iter
    (fun (r : Tune.Search.t) ->
      Stats.Table.add_row table
        [
          r.Tune.Search.workload;
          string_of_int r.Tune.Search.wall_default_ns;
          string_of_int r.Tune.Search.wall_controller_ns;
          string_of_int r.Tune.Search.wall_searched_ns;
          string_of_int r.Tune.Search.wall_hand_best_ns;
          r.Tune.Search.hand_best_name;
          Stats.Table.cell_ratio
            (ratio r.Tune.Search.wall_searched_ns r.Tune.Search.wall_hand_best_ns);
          Stats.Table.cell_ratio
            (ratio r.Tune.Search.wall_searched_ns r.Tune.Search.wall_default_ns);
          r.Tune.Search.searched_from;
          string_of_bool r.Tune.Search.seed_stable;
          (if not r.Tune.Search.replay_checked then "unchecked"
           else if r.Tune.Search.replay_ok then "ok"
           else "DIVERGED");
        ])
    results;
  let n = List.length results in
  let within_5pct =
    List.for_all
      (fun (r : Tune.Search.t) ->
        ratio r.Tune.Search.wall_searched_ns r.Tune.Search.wall_hand_best_ns <= 1.05)
      results
  in
  let beat_default =
    List.length
      (List.filter
         (fun (r : Tune.Search.t) ->
           r.Tune.Search.wall_searched_ns < r.Tune.Search.wall_default_ns)
         results)
  in
  let all_stable = List.for_all (fun (r : Tune.Search.t) -> r.Tune.Search.seed_stable) results in
  let all_replay_ok =
    List.for_all
      (fun (r : Tune.Search.t) -> (not r.Tune.Search.replay_checked) || r.Tune.Search.replay_ok)
      results
  in
  let total_evals =
    List.fold_left (fun a (r : Tune.Search.t) -> a + r.Tune.Search.evaluations) 0 results
  in
  {
    Fig_output.id = "autotune";
    title = "replay-driven auto-tuning: default vs controller vs searched vs hand grid";
    tables = [ ("simulated wall time by tuning strategy", table) ];
    notes =
      [
        Printf.sprintf
          "%s: searched within 5%% of the best hand-tuned grid point on every workload \
           (guaranteed: the hand grid is a subset of the search space)"
          (if within_5pct then "PASS" else "FAIL");
        Printf.sprintf "%s: searched strictly faster than the default on %d/%d workloads"
          (if 2 * beat_default >= n then "PASS" else "FAIL")
          beat_default n;
        Printf.sprintf
          "%s: every winner's witness is identical across seeds, and its scripted replay \
           re-checks each Tune_decision against the pure (params, epoch) prediction"
          (if all_stable && all_replay_ok then "PASS" else "FAIL");
        Printf.sprintf
          "%d simulated evaluations total (%s search); controller decisions are pure \
           functions of (params, epoch), so all five runtimes make identical choices — \
           mem/output hashes agree everywhere, full witnesses within {ic, pipe, domains}"
          total_evals
          (if quick then "quick" else "full");
      ];
  }

module Bd = Stats.Breakdown

type row = {
  label : string;
  runtime : string;
  fractions : (Bd.category * float) list;
  total_ns : int;
}

let runtimes = [ Runtime.Run.pthreads; Runtime.Run.dwc; Runtime.Run.consequence_ic ]

(* Aggregate the breakdowns of the threads selected by [keep]. *)
let aggregate res keep =
  List.fold_left
    (fun acc ts ->
      if keep ts then Bd.merge acc ts.Stats.Run_result.breakdown else acc)
    (Bd.create ()) res.Stats.Run_result.per_thread

let row_of ~label ~runtime bd =
  { label; runtime; fractions = Bd.fractions bd; total_ns = Bd.total bd }

let is_worker ts = ts.Stats.Run_result.thread_name <> "main"

let measure ?(threads = 8) ?(seed = 1) () =
  let pairs =
    List.concat_map
      (fun name -> List.map (fun rt -> (name, rt)) runtimes)
      Workload.Registry.fig15_set
  in
  Sim.Par.concat_map
    (fun (name, rt) ->
      let program = (Workload.Registry.find name).Workload.Registry.program in
      let res = Runtime.Run.run rt ~seed ~nthreads:threads program in
      let rt_name = Runtime.Run.name rt in
      if name = "ferret" then
        (* Split the first pipeline stage from the rest (section 5.2). *)
        let seg ts = ts.Stats.Run_result.thread_name = Workload.Ferret.stage1_name in
        [
          row_of ~label:"ferret_1" ~runtime:rt_name (aggregate res seg);
          row_of ~label:"ferret_n" ~runtime:rt_name
            (aggregate res (fun ts -> is_worker ts && not (seg ts)));
        ]
      else [ row_of ~label:name ~runtime:rt_name (aggregate res is_worker) ])
    pairs

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let cats = Bd.all in
  let tables =
    List.map
      (fun rt ->
        let rt_name = Runtime.Run.name rt in
        let table =
          Stats.Table.create ~columns:("benchmark" :: List.map Bd.category_name cats)
        in
        List.iter
          (fun row ->
            if row.runtime = rt_name then
              Stats.Table.add_row table
                (row.label
                :: List.map
                     (fun cat ->
                       Printf.sprintf "%.0f%%" (100.0 *. List.assoc cat row.fractions))
                     cats))
          rows;
        (rt_name ^ " (share of thread time)", table))
      runtimes
  in
  let frac label rt cat =
    match List.find_opt (fun r -> r.label = label && r.runtime = rt) rows with
    | Some r -> List.assoc cat r.fractions
    | None -> 0.0
  in
  {
    Fig_output.id = "fig15";
    title = "time breakdown per benchmark at 8 threads";
    tables;
    notes =
      [
        Printf.sprintf
          "canneal barrier-type waiting: dwc %.0f%% vs consequence-ic %.0f%% (paper: DWC spends far more time waiting at barriers)"
          (100.0 *. (frac "canneal" "dwc" Bd.Determ_wait +. frac "canneal" "dwc" Bd.Barrier_wait))
          (100.0
          *. (frac "canneal" "consequence-ic" Bd.Determ_wait
             +. frac "canneal" "consequence-ic" Bd.Barrier_wait));
        Printf.sprintf
          "ferret_1 chunk share under consequence-ic: %.0f%% (paper: GMIC + coarsening let the segmenter spend its time executing)"
          (100.0 *. frac "ferret_1" "consequence-ic" Bd.Chunk);
        Printf.sprintf "string_match is compute-bound everywhere (chunk %.0f%% under consequence-ic)"
          (100.0 *. frac "string_match" "consequence-ic" Bd.Chunk);
      ];
  }

type row = {
  variant : string;
  wall_ns : int;
  token_acquisitions : int;
}

let increments = [ 500; 2_000; 8_000; 32_000; 128_000 ]

(* Heavily contended single lock with non-trivial critical sections: the
   scenario where lock waiters exist most of the time. *)
let contended =
  Api.make ~name:"locking-study" ~heap_pages:32 ~page_size:64 (fun ~nthreads ops ->
      Workload.Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          for round = 1 to 20 do
            w.Api.work (2_000 + (137 * i));
            w.Api.lock 0;
            let v = w.Api.read_int ~addr:8 in
            w.Api.work 3_000;
            w.Api.write_int ~addr:8 (v + round);
            w.Api.unlock 0
          done))

let measure ?(threads = 8) ?(seed = 1) () =
  (* Coarsening would hide the lock algorithm; disable it for both
     variants so the comparison isolates blocking vs polling. *)
  let base = Runtime.Config.without_coarsening Runtime.Config.consequence_ic in
  let variants =
    ("blocking", base)
    :: List.map
         (fun k ->
           (Printf.sprintf "polling-%d" k, Runtime.Config.with_polling_locks base ~increment:k))
         increments
  in
  Sim.Par.map_list
    (fun (variant, cfg) ->
      let r = Runtime.Det_rt.run cfg ~seed ~nthreads:threads contended in
      {
        variant;
        wall_ns = r.Stats.Run_result.wall_ns;
        token_acquisitions = r.Stats.Run_result.token_acquisitions;
      })
    variants

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let table = Stats.Table.create ~columns:[ "mutex variant"; "wall"; "token acquisitions" ] in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        [
          row.variant;
          Printf.sprintf "%.2f ms" (float_of_int row.wall_ns /. 1e6);
          string_of_int row.token_acquisitions;
        ])
    rows;
  let blocking = List.find (fun r -> r.variant = "blocking") rows in
  let best_polling =
    List.fold_left
      (fun acc r -> if r.variant <> "blocking" && r.wall_ns < acc.wall_ns then r else acc)
      (List.find (fun r -> r.variant <> "blocking") rows)
      rows
  in
  {
    Fig_output.id = "locking";
    title = "blocking vs Kendo-style polling deterministic mutexes (section 4.1)";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf
          "blocking: %.2f ms with %d token acquisitions; best-tuned polling (%s): %.2f ms with %d — blocking needs no tuning and %s"
          (float_of_int blocking.wall_ns /. 1e6)
          blocking.token_acquisitions best_polling.variant
          (float_of_int best_polling.wall_ns /. 1e6)
          best_polling.token_acquisitions
          (if blocking.wall_ns <= best_polling.wall_ns then
             "beats the best polling constant (the paper's claim)"
           else "is within reach of the best polling constant");
        "badly tuned polling constants inflate token traffic and latency — the program-specific tuning burden the paper removes";
      ];
  }

(** Auto-tuning report ([BENCH_autotune.json]): per-workload simulated
    wall time under the untuned default, the shipped controller
    schedule, the searched parameterization and the best hand-tuned
    grid point, with the acceptance verdicts
    (searched within 5% of hand-best everywhere; strictly faster than
    the default on at least half the workloads; winners seed-stable and
    replay-checked) as PASS/FAIL notes. *)

val run :
  ?benchmarks:string list ->
  ?threads:int ->
  ?seed:int ->
  ?quick:bool ->
  unit ->
  Fig_output.t
(** Defaults: the full registry, 8 threads, seed 1, [quick] search
    (shortened hill-climb, no random restarts or exploration floor —
    bench-harness friendly; pass [~quick:false] for the full search). *)

type t = {
  id : string;
  title : string;
  tables : (string * Stats.Table.t) list;
  notes : string list;
}

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  List.iter
    (fun (caption, table) ->
      if caption <> "" then Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" caption);
      Buffer.add_string buf (Stats.Table.render table))
    t.tables;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes
  end;
  Buffer.contents buf

let print t = print_string (render t)

let to_json t =
  let str s = Obs.Json.String s in
  Obs.Json.Obj
    [
      ("id", str t.id);
      ("title", str t.title);
      ( "tables",
        Obs.Json.List
          (List.map
             (fun (caption, table) ->
               Obs.Json.Obj
                 [
                   ("caption", str caption);
                   ("columns", Obs.Json.List (List.map str (Stats.Table.columns table)));
                   ( "rows",
                     Obs.Json.List
                       (List.map
                          (fun row -> Obs.Json.List (List.map str row))
                          (Stats.Table.rows table)) );
                 ])
             t.tables) );
      ("notes", Obs.Json.List (List.map str t.notes));
    ]

type row = {
  benchmark : string;
  runtime : string;
  events : int;
  log_bytes : int;
  bare_ms : float;
  record_ms : float;
  replay_ms : float;
  sim_delta_ns : int;  (** recorded wall_ns minus untracked wall_ns: must be 0 *)
  checked : int;
  ok : bool;
}

let cpu_ms f =
  let t0 = Sys.time () in
  let x = f () in
  (x, (Sys.time () -. t0) *. 1e3)

let measure_one ~threads ~seed rt name =
  let program = (Workload.Registry.find name).Workload.Registry.program in
  let bare, bare_ms =
    cpu_ms (fun () -> Runtime.Run.run rt ~seed ~nthreads:threads program)
  in
  let (log, rec_res), record_ms =
    cpu_ms (fun () -> Replay.Schedule.record rt ~seed ~nthreads:threads program)
  in
  let outcome, replay_ms = cpu_ms (fun () -> Replay.Replayer.replay log program) in
  {
    benchmark = name;
    runtime = Runtime.Run.name rt;
    events = Replay.Schedule.length log;
    log_bytes = String.length (Obs.Json.to_string (Replay.Schedule.to_json log));
    bare_ms;
    record_ms;
    replay_ms;
    sim_delta_ns = rec_res.Stats.Run_result.wall_ns - bare.Stats.Run_result.wall_ns;
    checked = outcome.Replay.Replayer.checked;
    ok = Replay.Replayer.ok outcome;
  }

let default_benchmarks = Workload.Registry.hardest_five

let run ?(benchmarks = default_benchmarks) ?(threads = 8) ?(seed = 1) () =
  let rows =
    List.map (measure_one ~threads ~seed Runtime.Run.consequence_ic) benchmarks
    @ [ measure_one ~threads ~seed Runtime.Run.pthreads (List.hd benchmarks) ]
  in
  let table =
    Stats.Table.create
      ~columns:
        [
          "benchmark"; "runtime"; "events"; "log-KiB"; "bare-ms"; "record-ms"; "replay-ms";
          "sim-delta-ns"; "checked"; "replay";
        ]
  in
  List.iter
    (fun r ->
      Stats.Table.add_row table
        [
          r.benchmark;
          r.runtime;
          string_of_int r.events;
          Printf.sprintf "%.1f" (float_of_int r.log_bytes /. 1024.0);
          Printf.sprintf "%.1f" r.bare_ms;
          Printf.sprintf "%.1f" r.record_ms;
          Printf.sprintf "%.1f" r.replay_ms;
          string_of_int r.sim_delta_ns;
          string_of_int r.checked;
          (if r.ok then "ok" else "DIVERGED");
        ])
    rows;
  let all_ok = List.for_all (fun r -> r.ok) rows in
  let neutral = List.for_all (fun r -> r.sim_delta_ns = 0) rows in
  let total_events = List.fold_left (fun a r -> a + r.events) 0 rows in
  let replay_s = List.fold_left (fun a r -> a +. r.replay_ms) 0.0 rows /. 1e3 in
  let explore_note =
    let name = List.hd benchmarks in
    let program = (Workload.Registry.find name).Workload.Registry.program in
    let log, _ =
      Replay.Schedule.record Runtime.Run.consequence_ic ~seed ~nthreads:threads program
    in
    let rep = Replay.Explore.explore ~variants:4 log program in
    Printf.sprintf
      "explorer on %s: %d boundary perturbations, %d distinct timings, %d distinct \
       witnesses (%s)"
      name
      (List.length rep.Replay.Explore.variants)
      rep.Replay.Explore.distinct_timings rep.Replay.Explore.distinct_witnesses
      (if rep.Replay.Explore.deterministic then "deterministic" else "NONDETERMINISTIC")
  in
  {
    Fig_output.id = "replay";
    title = "schedule record/replay: log size, record overhead, replay throughput";
    tables = [ ("", table) ];
    notes =
      [
        (if all_ok then "every replay reproduced its recorded witnesses divergence-free"
         else "A REPLAY DIVERGED");
        (if neutral then
           "recording is simulation-neutral: recorded wall_ns identical to untracked runs"
         else "RECORDING PERTURBED SIMULATED TIME");
        Printf.sprintf "replay checked %d events in %.2f s CPU (%.0f events/s)" total_events
          replay_s
          (if replay_s > 0.0 then float_of_int total_events /. replay_s else 0.0);
        explore_note;
      ];
  }

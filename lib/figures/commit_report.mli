(** Commit-path scaling study: serial vs pipelined sharded commit on the
    {!Workload.Commit_heavy} stressor across a thread sweep (default 8,
    16, 32, 64, 128, 256).

    Reports commit cost per committed page, wall time per page and
    deterministic-wait totals for both configurations, plus notes on the
    flatness of the pipelined per-page series, the end-to-end speedup at
    the largest thread count, and pairwise witness identity (serial and
    pipelined runs must produce byte-identical witnesses — the
    optimization relocates cost, never data). *)

val threads_sweep : int list

val run : ?threads:int list -> ?seed:int -> unit -> Fig_output.t

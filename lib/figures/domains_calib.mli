(** Real-multicore calibration study (the [domains] bench section).

    Runs a spread of registry workloads on the DES ([consequence-ic])
    and on {!Runtime.Domains_rt} at 1/2/4 worker domains, then reports:

    - a witness cross-check (every domains run must reproduce the DES
      witness byte-for-byte);
    - measured wall-clock and self-speedup per domain count, with the
      machine's available core count as the honest physical bound;
    - a per-state calibration table pairing the cost model's simulated
      nanoseconds (chunk work, commit, update, the wait states) with the
      wall-clock nanoseconds the domains backend measured for the same
      states. *)

type row = {
  bench : string;
  des : Stats.Run_result.t;
  doms : (int * Stats.Run_result.t) list;
  witness_ok : bool;
}

val domain_counts : int list
val bench_names : string list
val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

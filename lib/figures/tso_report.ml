let measure () =
  let pairs =
    List.concat_map
      (fun test -> List.map (fun rt -> (test, rt)) Runtime.Run.all)
      Tso.Litmus.all
  in
  Sim.Par.map_list (fun (test, rt) -> Tso.Checker.run_test rt test) pairs

let run () =
  let verdicts = measure () in
  let table =
    Stats.Table.create
      ~columns:[ "test"; "runtime"; "observed"; "tso-allowed"; "sc-allowed"; "verdict" ]
  in
  List.iter
    (fun (v : Tso.Checker.verdict) ->
      Stats.Table.add_row table
        [
          v.test_name;
          v.runtime;
          string_of_int (Tso.Model.Outcome_set.cardinal v.observed);
          string_of_int (Tso.Model.Outcome_set.cardinal v.allowed_tso);
          string_of_int (Tso.Model.Outcome_set.cardinal v.allowed_sc);
          (if not v.tso_ok then "TSO-VIOLATION"
           else if v.beyond_sc then "tso-ok (buffering seen)"
           else "tso-ok (within sc)");
        ])
    verdicts;
  let violations = List.filter (fun (v : Tso.Checker.verdict) -> not v.tso_ok) verdicts in
  let buffering =
    List.filter
      (fun (v : Tso.Checker.verdict) -> v.beyond_sc && v.runtime <> Runtime.Pthreads_rt.name)
      verdicts
  in
  {
    Fig_output.id = "tso";
    title = "litmus-test verdicts against the operational TSO/SC models";
    tables = [ ("", table) ];
    notes =
      [
        (if violations = [] then "no TSO violations on any runtime"
         else Printf.sprintf "%d TSO VIOLATIONS" (List.length violations));
        Printf.sprintf
          "store buffering (TSO-only outcomes) observed in %d deterministic-runtime test runs — the implementation genuinely buffers stores"
          (List.length buffering);
      ];
  }

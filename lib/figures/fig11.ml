type series = {
  benchmark : string;
  runtime : string;
  points : (int * int) list;
}

let measure ?(threads = Fig10.threads_sweep) ?(seed = 1) () =
  let pairs =
    List.concat_map
      (fun name -> List.map (fun rt -> (name, rt)) Runtime.Run.all)
      Workload.Registry.fig11_set
  in
  Sim.Par.map_list
    (fun (name, rt) ->
      let program = (Workload.Registry.find name).Workload.Registry.program in
      let points =
        List.map
          (fun n ->
            (n, (Runtime.Run.run rt ~seed ~nthreads:n program).Stats.Run_result.wall_ns))
          threads
      in
      { benchmark = name; runtime = Runtime.Run.name rt; points })
    pairs

let run ?threads ?seed () =
  let series = measure ?threads ?seed () in
  let tables =
    List.map
      (fun name ->
        let mine = List.filter (fun s -> s.benchmark = name) series in
        let thread_counts = List.map fst (List.hd mine).points in
        let table =
          Stats.Table.create
            ~columns:("threads" :: List.map (fun s -> s.runtime) mine)
        in
        List.iteri
          (fun i n ->
            Stats.Table.add_row table
              (string_of_int n
              :: List.map
                   (fun s ->
                     Stats.Table.cell_float ~decimals:2
                       (float_of_int (snd (List.nth s.points i)) /. 1e6))
                   mine))
          thread_counts;
        (name ^ " (wall ms)", table))
      Workload.Registry.fig11_set
  in
  (* Worst absolute runtime at the largest thread count, normalized to
     pthreads at the same point — the height the Fig 11 curves reach. *)
  let worst_at_max runtime =
    List.fold_left
      (fun acc name ->
        let wall rt_name =
          match List.find_opt (fun s -> s.benchmark = name && s.runtime = rt_name) series with
          | Some s -> float_of_int (snd (List.nth s.points (List.length s.points - 1)))
          | None -> nan
        in
        max acc (wall runtime /. wall "pthreads"))
      0.0 Workload.Registry.fig11_set
  in
  let water rt_name =
    match
      List.find_opt (fun s -> s.benchmark = "water_nsquared" && s.runtime = rt_name) series
    with
    | Some s ->
        let pts = s.points in
        float_of_int (snd (List.nth pts (List.length pts - 1)))
        /. float_of_int (snd (List.hd pts))
    | None -> nan
  in
  {
    Fig_output.id = "fig11";
    title = "runtime vs thread count (scalability-problem benchmarks)";
    tables;
    notes =
      [
        Printf.sprintf
          "worst curve height at max threads (vs pthreads): dthreads %.0fx, dwc %.0fx, consequence-ic %.0fx (paper: DThreads/DWC severe, Consequence much less so)"
          (worst_at_max "dthreads") (worst_at_max "dwc") (worst_at_max "consequence-ic");
        Printf.sprintf
          "water_nsquared degradation 2->max threads under consequence-ic: %.1fx — the paper's coarsened-token pathology at high thread counts (section 5/6)"
          (water "consequence-ic");
      ];
  }

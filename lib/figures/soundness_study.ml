type row = {
  ppm : int;
  programs : int;
  divergent : int;
}

let noise_levels = [ 0; 100; 10_000; 100_000 ]

let measure ?(programs = 12) ?(threads = 6) () =
  (* One job per (noise level, synthetic program); counts are summed back
     per level in input order. *)
  let jobs =
    List.concat_map
      (fun ppm -> List.init programs (fun k -> (ppm, k + 1)))
      noise_levels
  in
  let diverged =
    Sim.Par.map_list
      (fun (ppm, prog_seed) ->
        let cfg =
          if ppm = 0 then Runtime.Config.consequence_ic
          else Runtime.Config.with_counter_jitter Runtime.Config.consequence_ic ~ppm
        in
        let program = Workload.Synthetic.make ~seed:prog_seed () in
        let witness seed =
          Stats.Run_result.deterministic_witness
            (Runtime.Det_rt.run cfg ~seed ~nthreads:threads program)
        in
        let ws = List.map witness [ 1; 31; 77 ] in
        List.length (List.sort_uniq compare ws) > 1)
      jobs
  in
  let diverged = Array.of_list diverged in
  List.mapi
    (fun i ppm ->
      let divergent = ref 0 in
      for k = 0 to programs - 1 do
        if diverged.((i * programs) + k) then incr divergent
      done;
      { ppm; programs; divergent = !divergent })
    noise_levels

let run ?programs ?threads () =
  let rows = measure ?programs ?threads () in
  let table =
    Stats.Table.create ~columns:[ "counter-noise (ppm)"; "programs"; "divergent witnesses" ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        [ string_of_int row.ppm; string_of_int row.programs; string_of_int row.divergent ])
    rows;
  let exact = List.find (fun r -> r.ppm = 0) rows in
  {
    Fig_output.id = "soundness";
    title = "logical-clock soundness vs performance-counter noise (section 2.1 / [30])";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf
          "with exact counters: %d/%d divergent (the paper's claim: the clock is sound given deterministic counters)"
          exact.divergent exact.programs;
        "with noisy counters the GMIC order dissolves and determinism degrades — why the paper measures counter trustworthiness [30] and offers compiler-based counting as the fallback";
      ];
  }

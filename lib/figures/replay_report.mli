(** The record/replay bench section ([BENCH_replay.json]).

    For each audited benchmark: schedule-log size (events and serialized
    bytes), record overhead (host CPU time of a recording run vs an
    untracked one, plus the simulated-time delta, which must be exactly
    zero — recording is observer-only), and replay throughput (events
    checked per host second, with the replay required to reproduce the
    recorded witnesses divergence-free).  One pthreads row demonstrates
    interleaving pinning; an explorer line summarizes a small
    boundary-perturbation neighborhood. *)

val run :
  ?benchmarks:string list -> ?threads:int -> ?seed:int -> unit -> Fig_output.t

type row = {
  limit : int option;
  spin_wall_ns : int option;
  forced_commits : int;
  compute_wall_ns : int;
}

let limits = [ None; Some 5_000; Some 20_000; Some 100_000; Some 500_000 ]

(* A thread spins on a flag that a peer sets without synchronization —
   the paper's T0/T1 example from section 2.7. *)
let flag_spin =
  Api.make ~name:"climit-flag-spin" ~heap_pages:16 ~page_size:64 (fun ~nthreads:_ ops ->
      let setter =
        ops.Api.spawn ~name:"setter" (fun w ->
            w.Api.work 30_000;
            w.Api.write_int ~addr:8 1;
            w.Api.work 300_000)
      in
      let spinner =
        ops.Api.spawn ~name:"spinner" (fun w ->
            while w.Api.read_int ~addr:8 = 0 do
              w.Api.work 1_000
            done)
      in
      ops.Api.join setter;
      ops.Api.join spinner)

(* A compute-bound program that gains nothing from forced commits. *)
let compute_bound =
  Api.make ~name:"climit-compute" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      Workload.Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          w.Api.work 400_000;
          w.Api.write_int ~addr:(8 * i) i))

let forced_commit_count r =
  List.length
    (List.filter (fun (_, _, label) -> label = "forced-commit") r.Stats.Run_result.schedule)

let measure ?(seed = 1) () =
  Sim.Par.map_list
    (fun limit ->
      let cfg =
        match limit with
        | None -> Runtime.Config.consequence_ic
        | Some n -> Runtime.Config.with_chunk_limit Runtime.Config.consequence_ic n
      in
      (* A livelocked spin exhausts the event budget; bound it tightly so
         the probe is fast. *)
      let spin =
        match Runtime.Det_rt.run cfg ~seed ~nthreads:2 flag_spin with
        | r -> Some r
        | exception Sim.Engine.Stuck _ -> None
      in
      let compute = Runtime.Det_rt.run cfg ~seed ~nthreads:4 compute_bound in
      {
        limit;
        spin_wall_ns = Option.map (fun r -> r.Stats.Run_result.wall_ns) spin;
        forced_commits =
          (match spin with Some r -> forced_commit_count r | None -> 0);
        compute_wall_ns = compute.Stats.Run_result.wall_ns;
      })
    limits

let run ?seed () =
  let rows = measure ?seed () in
  let table =
    Stats.Table.create
      ~columns:[ "chunk-limit"; "flag-spin wall"; "forced commits"; "compute-bound wall" ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        [
          (match row.limit with None -> "disabled" | Some n -> string_of_int n);
          (match row.spin_wall_ns with
          | None -> "LIVELOCK"
          | Some ns -> Printf.sprintf "%.2f ms" (float_of_int ns /. 1e6));
          string_of_int row.forced_commits;
          Printf.sprintf "%.2f ms" (float_of_int row.compute_wall_ns /. 1e6);
        ])
    rows;
  let base_compute =
    (List.find (fun r -> r.limit = None) rows).compute_wall_ns
  in
  let worst_overhead =
    List.fold_left
      (fun acc r -> max acc (float_of_int r.compute_wall_ns /. float_of_int base_compute))
      1.0 rows
  in
  {
    Fig_output.id = "climit";
    title = "ad-hoc synchronization support (section 2.7): per-chunk instruction limits";
    tables = [ ("", table) ];
    notes =
      [
        "without a limit the spin loop livelocks (detected via the event budget), exactly as section 2.7 describes";
        Printf.sprintf
          "tighter limits observe the flag sooner but force more commits; worst compute-bound overhead across limits: %.2fx (paper: some programs needed billion-instruction limits to avoid slowdown)"
          worst_overhead;
      ];
  }

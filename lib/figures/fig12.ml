type series = {
  benchmark : string;
  runtime : string;
  points : (int * int) list;
}

let runtimes = [ Runtime.Run.dthreads; Runtime.Run.consequence_ic ]

let measure ?(threads = Fig10.threads_sweep) ?(seed = 1) () =
  let pairs =
    List.concat_map
      (fun name -> List.map (fun rt -> (name, rt)) runtimes)
      Workload.Registry.fig11_set
  in
  Sim.Par.map_list
    (fun (name, rt) ->
      let program = (Workload.Registry.find name).Workload.Registry.program in
      let points =
        List.map
          (fun n ->
            ( n,
              (Runtime.Run.run rt ~seed ~nthreads:n program).Stats.Run_result.peak_mem_pages
            ))
          threads
      in
      { benchmark = name; runtime = Runtime.Run.name rt; points })
    pairs

let run ?threads ?seed () =
  let series = measure ?threads ?seed () in
  let thread_counts = List.map fst (List.hd series).points in
  let table =
    Stats.Table.create
      ~columns:
        ("benchmark" :: "runtime" :: List.map (fun n -> Printf.sprintf "n=%d" n) thread_counts)
  in
  List.iter
    (fun s ->
      Stats.Table.add_row table
        (s.benchmark :: s.runtime :: List.map (fun (_, pages) -> string_of_int pages) s.points))
    series;
  (* Ratio consequence/dthreads at the top thread count per benchmark. *)
  let blowups =
    List.filter_map
      (fun name ->
        let peak rt_name =
          List.find_opt (fun s -> s.benchmark = name && s.runtime = rt_name) series
          |> Option.map (fun s -> snd (List.nth s.points (List.length s.points - 1)))
        in
        match (peak "consequence-ic", peak "dthreads") with
        | Some c, Some d when d > 0 -> Some (name, float_of_int c /. float_of_int d)
        | _ -> None)
      Workload.Registry.fig11_set
  in
  let fmt_blowup (name, r) = Printf.sprintf "%s %.1fx" name r in
  {
    Fig_output.id = "fig12";
    title = "peak memory (pages) vs thread count: Consequence vs DThreads";
    tables = [ ("", table) ];
    notes =
      [
        "consequence/dthreads peak-memory ratio at max threads: "
        ^ String.concat ", " (List.map fmt_blowup blowups)
        ^ " (paper: evenly matched except canneal and lu_ncb, where the single-threaded GC falls behind)";
      ];
  }

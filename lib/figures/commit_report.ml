(* Commit-path scaling: serial vs pipelined sharded commit on the
   commit-heavy stressor, 8 to 256 threads.

   The claim under test is the parallel-commit design point: with the
   bulk install charged off the token hold (and sharded installs costed
   as their longest shard), commit cost per committed page stays flat as
   threads scale, while the serial path's token hold turns commits into
   a convoy.  Coarsening is disabled in both configurations so every
   round produces one regular commit (coalescing would fold rounds
   together and make the per-page series measure chunking policy
   instead of the commit path). *)

let threads_sweep = [ 8; 16; 32; 64; 128; 256 ]

let serial_cfg = Runtime.Config.without_coarsening Runtime.Config.consequence_ic

let pipe_cfg =
  Runtime.Config.with_incremental_gc
    (Runtime.Config.with_commit_shards
       (Runtime.Config.with_pipelined_commit
          (Runtime.Config.without_coarsening Runtime.Config.consequence_ic))
       8)

type sample = {
  s_cfg : string;
  s_threads : int;
  s_wall : int;
  s_pages : int;
  s_commit_ns : int;  (* Bd.Commit total: seal + install + merge + drain *)
  s_determ_ns : int;
  s_witness : string;
}

let measure ?(threads = threads_sweep) ?(seed = 1) () =
  let program = Workload.Commit_heavy.make () in
  let jobs =
    List.concat_map (fun cfg -> List.map (fun t -> (cfg, t)) threads) [ serial_cfg; pipe_cfg ]
  in
  Sim.Par.map_list
    (fun (cfg, t) ->
      let r = Runtime.Run.run (Runtime.Run.Det cfg) ~seed ~nthreads:t program in
      let bd = Stats.Run_result.aggregate_breakdown r in
      {
        s_cfg = cfg.Runtime.Config.name;
        s_threads = t;
        s_wall = r.Stats.Run_result.wall_ns;
        s_pages = r.Stats.Run_result.pages_committed;
        s_commit_ns = Stats.Breakdown.get bd Stats.Breakdown.Commit;
        s_determ_ns = Stats.Breakdown.get bd Stats.Breakdown.Determ_wait;
        s_witness =
          String.concat "|"
            [
              r.Stats.Run_result.mem_hash;
              r.Stats.Run_result.sync_order_hash;
              r.Stats.Run_result.output_hash;
            ];
      })
    jobs

let per_page num den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let run ?threads ?seed () =
  let samples = measure ?threads ?seed () in
  let table =
    Stats.Table.create
      ~columns:
        [
          "config";
          "threads";
          "wall-ns";
          "pages-committed";
          "commit-ns/page";
          "wall-ns/page";
          "determ-wait-ns";
        ]
  in
  List.iter
    (fun s ->
      Stats.Table.add_row table
        [
          s.s_cfg;
          string_of_int s.s_threads;
          string_of_int s.s_wall;
          string_of_int s.s_pages;
          Printf.sprintf "%.1f" (per_page s.s_commit_ns s.s_pages);
          Printf.sprintf "%.1f" (per_page s.s_wall s.s_pages);
          string_of_int s.s_determ_ns;
        ])
    samples;
  let of_cfg name = List.filter (fun s -> s.s_cfg = name) samples in
  let pipe = of_cfg pipe_cfg.Runtime.Config.name in
  let serial = of_cfg serial_cfg.Runtime.Config.name in
  (* Flatness of the pipelined per-page commit cost across the sweep:
     max deviation from the mean, in percent. *)
  let flatness rows =
    let vals = List.map (fun s -> per_page s.s_commit_ns s.s_pages) rows in
    match vals with
    | [] -> 0.0
    | _ ->
        let mean = List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals) in
        if mean = 0.0 then 0.0
        else
          List.fold_left (fun acc v -> max acc (abs_float (v -. mean) /. mean *. 100.0)) 0.0 vals
  in
  (* Witnesses must match pairwise between the two configs at every
     thread count: pipelining and sharding relocate cost, never data. *)
  let witness_ok =
    List.for_all
      (fun s ->
        match List.find_opt (fun p -> p.s_threads = s.s_threads) pipe with
        | Some p -> p.s_witness = s.s_witness
        | None -> true)
      serial
  in
  let speedup_at t =
    match
      ( List.find_opt (fun s -> s.s_threads = t) serial,
        List.find_opt (fun s -> s.s_threads = t) pipe )
    with
    | Some s, Some p when p.s_wall > 0 -> float_of_int s.s_wall /. float_of_int p.s_wall
    | _ -> 0.0
  in
  let max_t = List.fold_left max 0 (List.map (fun s -> s.s_threads) samples) in
  {
    Fig_output.id = "commit";
    title = "parallel sharded commit: cost per committed page vs thread count";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf "pipelined commit-ns/page flat within %.1f%% of mean across sweep (serial: %.1f%%)"
          (flatness pipe) (flatness serial);
        Printf.sprintf "wall-clock speedup pipelined vs serial at %d threads: %.2fx" max_t
          (speedup_at max_t);
        (if witness_ok then "witnesses byte-identical serial vs pipelined at every thread count"
         else "WITNESS DIVERGENCE between serial and pipelined runs");
      ];
  }

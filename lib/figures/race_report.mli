(** The determinism payoff for correctness tooling (Deterministic
    Consistency / Pot): race-audit every benchmark under a
    deterministic runtime and show the report is a reproducible
    artifact — byte-identical across seeds — while the same audit under
    pthreads yields seed-dependent conflict counts on the racy
    programs. *)

type row = {
  benchmark : string;
  conflicts : int;  (** conflict runs under {!audited_runtime}, first seed *)
  racy : int;
  sync_ordered : int;
  racy_bytes : int;
  report_stable : bool;  (** report byte-identical across the seed sweep *)
  pthreads_variants : int;  (** distinct pthreads (conflicts, racy) pairs *)
  pthreads_racy_max : int;
}

val audited_runtime : Runtime.Run.runtime
(** The deterministic runtime the headline audit runs under
    (consequence-IC). *)

val measure : ?threads:int -> ?seeds:int list -> unit -> row list
val run : ?threads:int -> ?seeds:int list -> unit -> Fig_output.t

(** The determinism-profiler bench section ([BENCH_profile.json]).

    Profiles every registry workload (or a chosen subset) under
    consequence-ic: per-benchmark thread-state shares with the
    conservation verdict, critical-path composition per state, and — for
    a small subset, since each costs a record plus one replay per
    scenario — the measured what-if speedups. *)

val run :
  ?benchmarks:string list ->
  ?whatif_benchmarks:string list ->
  ?threads:int ->
  ?seed:int ->
  unit ->
  Fig_output.t

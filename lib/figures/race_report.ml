type row = {
  benchmark : string;
  conflicts : int;
  racy : int;
  sync_ordered : int;
  racy_bytes : int;
  report_stable : bool;
  pthreads_variants : int;
  pthreads_racy_max : int;
}

let audited_runtime = Runtime.Run.consequence_ic

let measure ?(threads = 4) ?(seeds = [ 1; 2; 42 ]) () =
  (* One job per (benchmark, runtime); each job audits its own seed
     sweep.  The deterministic column's reports must be byte-identical
     across the sweep; pthreads is free to wander. *)
  let jobs =
    List.concat_map
      (fun entry -> [ (entry, audited_runtime); (entry, Runtime.Run.pthreads) ])
      Workload.Registry.all
  in
  let sweeps =
    Array.of_list
      (Sim.Par.map_list
         (fun (entry, rt) ->
           List.map
             (fun seed ->
               fst (Race.Audit.run ~seed ~nthreads:threads rt entry.Workload.Registry.program))
             seeds)
         jobs)
  in
  List.mapi
    (fun k entry ->
      let det = sweeps.(2 * k) and pth = sweeps.((2 * k) + 1) in
      let r = List.hd det in
      {
        benchmark = entry.Workload.Registry.program.Api.name;
        conflicts = r.Race.Report.conflicts;
        racy = r.Race.Report.racy;
        sync_ordered = r.Race.Report.sync_ordered;
        racy_bytes = r.Race.Report.racy_bytes;
        report_stable =
          List.length (List.sort_uniq compare (List.map Race.Report.to_string det)) = 1;
        pthreads_variants =
          List.length
            (List.sort_uniq compare
               (List.map (fun p -> (p.Race.Report.conflicts, p.Race.Report.racy)) pth));
        pthreads_racy_max =
          List.fold_left (fun acc p -> max acc p.Race.Report.racy) 0 pth;
      })
    Workload.Registry.all

let run ?threads ?seeds () =
  let rows = measure ?threads ?seeds () in
  let table =
    Stats.Table.create
      ~columns:
        [
          "benchmark"; "conflicts"; "racy"; "sync-ordered"; "racy-bytes"; "report";
          "pthreads-variants"; "pthreads-racy-max";
        ]
  in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        [
          row.benchmark;
          string_of_int row.conflicts;
          string_of_int row.racy;
          string_of_int row.sync_ordered;
          string_of_int row.racy_bytes;
          (if row.report_stable then "stable" else "DIVERGED");
          string_of_int row.pthreads_variants;
          string_of_int row.pthreads_racy_max;
        ])
    rows;
  let n = List.length rows in
  let racy_benchmarks = List.filter (fun r -> r.racy > 0) rows in
  let all_stable = List.for_all (fun r -> r.report_stable) rows in
  let pthreads_moving = List.length (List.filter (fun r -> r.pthreads_variants > 1) rows) in
  {
    Fig_output.id = "races";
    title =
      Printf.sprintf "race audit under %s: merge conflicts classified racy vs sync-ordered"
        (Runtime.Run.name audited_runtime);
    tables = [ ("", table) ];
    notes =
      [
        (if all_stable then
           "every race report is byte-identical across seeds under the deterministic runtime"
         else "RACE REPORT DIVERGED ACROSS SEEDS");
        Printf.sprintf "%d of %d benchmarks carry genuine data races the merge silently resolves"
          (List.length racy_benchmarks) n;
        Printf.sprintf
          "pthreads conflict counts moved with the seed on %d of %d benchmarks (timing-dependent)"
          pthreads_moving n;
      ];
  }

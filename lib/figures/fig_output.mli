(** Common shape of a reproduced figure: a title, one or more tables, and
    headline notes (the quantitative claims the paper states in prose). *)

type t = {
  id : string;  (** e.g. "fig10" *)
  title : string;
  tables : (string * Stats.Table.t) list;  (** caption, table *)
  notes : string list;
}

val render : t -> string

val print : t -> unit
(** [render] to stdout. *)

val to_json : t -> Obs.Json.t
(** Machine-readable form: id, title, every table as columns + string
    rows, and the notes — what the bench harness writes to
    [BENCH_<section>.json]. *)

let threads_sweep = [ 2; 4; 8; 16; 32 ]

type row = {
  benchmark : string;
  ratios : (string * float) list;
}

let det_runtimes =
  [ Runtime.Run.dthreads; Runtime.Run.dwc; Runtime.Run.consequence_rr; Runtime.Run.consequence_ic ]

let measure ?(threads = threads_sweep) ?(seed = 1) () =
  (* One job per (benchmark, runtime) pair; results gathered in input
     order, so the assembled rows match the sequential sweep exactly. *)
  let rts = Runtime.Run.pthreads :: det_runtimes in
  let nrts = List.length rts in
  let entries = Workload.Registry.all in
  let jobs =
    List.concat_map (fun entry -> List.map (fun rt -> (entry, rt)) rts) entries
  in
  let walls =
    Array.of_list
      (Sim.Par.map_list
         (fun (entry, rt) ->
           (Runtime.Run.best_over_threads rt ~seed ~threads entry.Workload.Registry.program)
             .Stats.Run_result.wall_ns)
         jobs)
  in
  List.mapi
    (fun k entry ->
      let pthreads_best = walls.(k * nrts) in
      let ratios =
        List.mapi
          (fun j rt ->
            ( Runtime.Run.name rt,
              float_of_int walls.((k * nrts) + 1 + j) /. float_of_int pthreads_best ))
          det_runtimes
      in
      { benchmark = entry.Workload.Registry.program.Api.name; ratios })
    entries

let ratio_of row name = List.assoc name row.ratios

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let names = List.map Runtime.Run.name det_runtimes in
  let table = Stats.Table.create ~columns:("benchmark" :: names) in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        (row.benchmark :: List.map (fun n -> Stats.Table.cell_ratio (ratio_of row n)) names))
    rows;
  let max_of name =
    List.fold_left (fun acc row -> max acc (ratio_of row name)) 0.0 rows
  in
  let hardest = Workload.Registry.hardest_five in
  let avg_improvement name =
    let ratios =
      List.filter_map
        (fun row ->
          if List.mem row.benchmark hardest then
            Some (ratio_of row name /. ratio_of row "consequence-ic")
          else None)
        rows
    in
    List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
  in
  let below_25 =
    List.length (List.filter (fun row -> ratio_of row "consequence-ic" <= 2.5) rows)
  in
  {
    Fig_output.id = "fig10";
    title = "runtime normalized to pthreads (best over thread sweep)";
    tables = [ ("", table) ];
    notes =
      [
        Printf.sprintf "max slowdown: consequence-ic %.1fx (paper: 3.9x), dthreads %.1fx (12.5x), dwc %.1fx (11.0x)"
          (max_of "consequence-ic") (max_of "dthreads") (max_of "dwc");
        Printf.sprintf "%d of %d programs at or below 2.5x under consequence-ic (paper: 14 of 19)"
          below_25 (List.length rows);
        Printf.sprintf
          "hardest five: consequence-ic beats dthreads by %.1fx (paper: 2.8x) and dwc by %.1fx (paper: 2.2x) on average"
          (avg_improvement "dthreads") (avg_improvement "dwc");
      ];
  }

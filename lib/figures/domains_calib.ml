(* Real-multicore calibration: the same workloads on the DES and on the
   domains backend.  Three questions, one table each:

   1. Does the real backend compute the same execution?  Every domains
      run's witness is compared against the DES consequence-ic witness
      (the same check test/runtime enforces, repeated here so the bench
      artifact carries its own evidence).
   2. How does measured wall time scale with worker domains?  Self-
      speedup relative to one domain, bounded above by
      [Domains_rt.available_cores].
   3. How far is the simulated cost model from measured reality?  The
      DES charges nanoseconds per state from the paper's 2015 Xeon
      measurements; the domains backend measures the same states with
      the monotonic clock.  The ratio column is the calibration
      factor. *)

module R = Stats.Run_result
module Bd = Stats.Breakdown

let domain_counts = [ 1; 2; 4 ]

(* A spread of behaviours: memory-light map-reduce (histogram), lock- and
   commit-heavy reduce (word_count), pipeline parallelism with condition
   variables (ferret), barrier phases (barnes). *)
let bench_names = [ "histogram"; "word_count"; "ferret"; "barnes" ]

type row = {
  bench : string;
  des : R.t;  (** DES consequence-ic run (simulated time) *)
  doms : (int * R.t) list;  (** domains count -> real-backend run *)
  witness_ok : bool;
}

let measure ?(threads = 8) ?(seed = 1) () =
  (* Real worker domains must not compete with the DES fan-out pool for
     the (possibly few) cores; the pool re-creates itself lazily if a
     later section needs it again. *)
  Sim.Par.shutdown_shared ();
  List.map
    (fun bench ->
      let program = (Workload.Registry.find bench).Workload.Registry.program in
      let des = Runtime.Run.run Runtime.Run.consequence_ic ~seed ~nthreads:threads program in
      let doms =
        List.map
          (fun d ->
            ( d,
              Runtime.Domains_rt.run Runtime.Config.consequence_ic ~domains:d ~seed
                ~nthreads:threads program ))
          domain_counts
      in
      let wit = R.deterministic_witness des in
      let witness_ok =
        List.for_all (fun (_, r) -> R.deterministic_witness r = wit) doms
      in
      { bench; des; doms; witness_ok })
    bench_names

let ms ns = Printf.sprintf "%.2f ms" (float_of_int ns /. 1e6)

let speedup_table rows =
  let columns =
    [ "benchmark"; "DES (simulated)" ]
    @ List.map (fun d -> Printf.sprintf "wall @%dd" d) domain_counts
    @ List.map (fun d -> Printf.sprintf "speedup @%dd" d) (List.tl domain_counts)
    @ [ "witness" ]
  in
  let table = Stats.Table.create ~columns in
  List.iter
    (fun row ->
      let wall d = (List.assoc d row.doms).R.wall_ns in
      let base = float_of_int (wall (List.hd domain_counts)) in
      Stats.Table.add_row table
        ([ row.bench; ms row.des.R.wall_ns ]
        @ List.map (fun d -> ms (wall d)) domain_counts
        @ List.map
            (fun d -> Printf.sprintf "%.2fx" (base /. float_of_int (max 1 (wall d))))
            (List.tl domain_counts)
        @ [ (if row.witness_ok then "= DES" else "MISMATCH") ]))
    rows;
  table

(* The calibration pairs each simulated state with the measured time the
   domains backend spent in the same state, aggregated over all benches.
   Chunk work and memory operations are charged to [Bd.Chunk] by the
   model but measured separately (spin vs byte-copy), so they are paired
   as one "user work" row with the split shown in the notes. *)
let calibration rows ~at_domains =
  let sim cat =
    List.fold_left
      (fun acc row -> acc + Bd.get (R.aggregate_breakdown row.des) cat)
      0 rows
  in
  let dom_results = List.map (fun row -> List.assoc at_domains row.doms) rows in
  let counter name =
    List.fold_left
      (fun acc (r : R.t) -> acc + Obs.Metrics.counter_value r.R.metrics name)
      0 dom_results
  in
  let meas cat =
    List.fold_left (fun acc r -> acc + Bd.get (R.aggregate_breakdown r) cat) 0 dom_results
  in
  let table =
    Stats.Table.create
      ~columns:[ "state"; "simulated"; "measured"; "measured/simulated" ]
  in
  let wall_run = counter "wall:run_ns" and wall_mem = counter "wall:mem_ns" in
  let add name sim_ns meas_ns =
    let ratio =
      if sim_ns = 0 then if meas_ns = 0 then "-" else "inf"
      else Printf.sprintf "%.2fx" (float_of_int meas_ns /. float_of_int sim_ns)
    in
    Stats.Table.add_row table [ name; ms sim_ns; ms meas_ns; ratio ];
    (name, sim_ns, meas_ns)
  in
  (* [add] mutates the table, so sequence the rows explicitly (a list
     literal's elements evaluate in unspecified order). *)
  let p1 = add "user work (chunk + mem ops)" (sim Bd.Chunk) (wall_run + wall_mem) in
  let p2 = add "commit" (sim Bd.Commit) (counter "wall:commit_ns") in
  let p3 = add "update" (sim Bd.Update) (counter "wall:update_ns") in
  let p4 = add "determ wait" (sim Bd.Determ_wait) (meas Bd.Determ_wait) in
  let p5 = add "lock wait" (sim Bd.Lock_wait) (meas Bd.Lock_wait) in
  let p6 = add "barrier wait" (sim Bd.Barrier_wait) (meas Bd.Barrier_wait) in
  let pairs = [ p1; p2; p3; p4; p5; p6 ] in
  (table, pairs, wall_run, wall_mem)

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let cores = Runtime.Domains_rt.available_cores () in
  let calib_at = List.nth domain_counts 1 in
  let calib_table, pairs, wall_run, wall_mem = calibration rows ~at_domains:calib_at in
  let all_ok = List.for_all (fun r -> r.witness_ok) rows in
  let worst_ratio =
    List.fold_left
      (fun acc (_, s, m) ->
        if s = 0 || m = 0 then acc
        else
          let r = float_of_int m /. float_of_int s in
          max acc (max r (1.0 /. r)))
      1.0 pairs
  in
  {
    Fig_output.id = "domains";
    title = "real-multicore backend: witness cross-check, self-speedup, cost-model calibration";
    tables =
      [
        ("measured wall-clock vs worker domains", speedup_table rows);
        ( Printf.sprintf "per-state calibration at %d domains (aggregated over %d benches)"
            calib_at (List.length rows),
          calib_table );
      ];
    notes =
      [
        (if all_ok then
           Printf.sprintf
             "every domains run (%d benches x %d domain counts) produced a witness byte-identical to the DES consequence-ic run"
             (List.length rows) (List.length domain_counts)
         else "WITNESS MISMATCH between backends - see table");
        Printf.sprintf
          "available cores on this machine: %d; self-speedup is physically bounded by that, so on a %d-core box the curve is expected %s"
          cores cores
          (if cores >= 4 then "to rise towards the core count"
           else "flat at ~1.0x (the extra domains time-slice one core)");
        Printf.sprintf
          "user-work measured split: %s spin (charged instructions) + %s memory ops (byte copies); the simulated side charges both to the chunk state"
          (ms wall_run) (ms wall_mem);
        Printf.sprintf
          "wait-state ratios compare simulated waiting (threads park in virtual time on infinite cores) with measured waiting (domains time-slice %d real core%s), so oversubscription inflates the measured side by design; worst per-state discrepancy: %.1fx"
          cores
          (if cores = 1 then "" else "s")
          worst_ratio;
      ];
  }

module St = Obs.Thread_state

let pct num den = if den <= 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

(* The states worth a column each; the rest are folded into "other". *)
let headline_states =
  [ St.Run; St.Token_wait; St.Lock_wait; St.Barrier_wait; St.Commit; St.Fault ]

let default_whatif_benchmarks = [ "ferret"; "kmeans" ]

let run ?(benchmarks = Workload.Registry.names) ?(whatif_benchmarks = default_whatif_benchmarks)
    ?(threads = 8) ?(seed = 1) () =
  let reports =
    List.map
      (fun name ->
        let program = (Workload.Registry.find name).Workload.Registry.program in
        let whatif = List.mem name whatif_benchmarks in
        (name, Prof.Report.run ~seed ~nthreads:threads ~whatif program))
      benchmarks
  in
  (* Table 1: per-benchmark thread-state shares (percent of total
     thread-time) plus the conservation verdict. *)
  let shares =
    Stats.Table.create
      ~columns:
        ([ "benchmark"; "wall-ns" ]
        @ List.map (fun st -> St.name st ^ "-%") headline_states
        @ [ "other-%"; "conserved" ])
  in
  List.iter
    (fun (name, (r : Prof.Report.t)) ->
      let p = r.Prof.Report.profile in
      (* Shares come from the one shared accessor (the self-tuning
         controller reads the same numbers), never re-derived here. *)
      let share st = 100.0 *. Prof.Profile.state_share p st in
      let headline_pct = List.fold_left (fun a st -> a +. share st) 0.0 headline_states in
      Stats.Table.add_row shares
        ([ name; string_of_int p.Prof.Profile.wall_ns ]
        @ List.map (fun st -> Printf.sprintf "%.1f" (share st)) headline_states
        @ [
            Printf.sprintf "%.1f" (Float.max 0.0 (100.0 -. headline_pct));
            (if Prof.Report.conservation_ok r then "ok" else "VIOLATED");
          ]))
    reports;
  (* Table 2: critical-path composition. *)
  let cpath =
    Stats.Table.create
      ~columns:
        ([ "benchmark"; "path-%"; "segments"; "bridged" ]
        @ List.map (fun st -> St.name st ^ "-%") headline_states
        @ [ "unbridged-wait-%" ])
  in
  List.iter
    (fun (name, (r : Prof.Report.t)) ->
      let c = r.Prof.Report.cpath in
      Stats.Table.add_row cpath
        ([
           name;
           Printf.sprintf "%.1f" (pct c.Prof.Critical_path.path_ns c.Prof.Critical_path.wall_ns);
           string_of_int c.Prof.Critical_path.segments;
           string_of_int c.Prof.Critical_path.bridged;
         ]
        @ List.map
            (fun st ->
              Printf.sprintf "%.1f"
                (pct c.Prof.Critical_path.by_state.(St.index st) c.Prof.Critical_path.path_ns))
            headline_states
        @ [
            Printf.sprintf "%.1f"
              (pct c.Prof.Critical_path.unbridged_wait_ns c.Prof.Critical_path.path_ns);
          ]))
    reports;
  (* Table 3: measured what-if speedups for the subset that ran them. *)
  let whatif_rows =
    List.filter_map
      (fun (name, (r : Prof.Report.t)) ->
        Option.map (fun w -> (name, w)) r.Prof.Report.whatif)
      reports
  in
  let whatif_tbl =
    Stats.Table.create
      ~columns:
        ([ "benchmark" ]
        @ List.map (fun (s, _, _) -> s) Prof.Whatif.scenarios
        @ [ "diverged" ])
  in
  List.iter
    (fun (name, (w : Prof.Whatif.t)) ->
      let cell s =
        match List.find_opt (fun r -> r.Prof.Whatif.scenario = s) w.Prof.Whatif.rows with
        | Some r -> Printf.sprintf "%.3fx" r.Prof.Whatif.speedup
        | None -> "-"
      in
      Stats.Table.add_row whatif_tbl
        ([ name ]
        @ List.map (fun (s, _, _) -> cell s) Prof.Whatif.scenarios
        @ [
            string_of_int
              (List.length (List.filter (fun r -> r.Prof.Whatif.diverged) w.Prof.Whatif.rows));
          ]))
    whatif_rows;
  let all_conserved = List.for_all (fun (_, r) -> Prof.Report.conservation_ok r) reports in
  let n_truncated =
    List.length
      (List.filter (fun (_, r) -> r.Prof.Report.cpath.Prof.Critical_path.truncated) reports)
  in
  let dominant =
    (* The benchmark with the largest token-wait share: the worked
       example the docs walk through. *)
    List.fold_left
      (fun acc (name, (r : Prof.Report.t)) ->
        let s = 100.0 *. Prof.Profile.state_share r.Prof.Report.profile St.Token_wait in
        match acc with Some (_, s0) when s0 >= s -> acc | _ -> Some (name, s))
      None reports
  in
  {
    Fig_output.id = "profile";
    title =
      "determinism profiler: thread-state attribution, critical path, what-if projection";
    tables =
      [
        ("thread-state shares (% of total thread-time)", shares);
        ("critical-path composition (% of path)", cpath);
        ("what-if measured speedups (schedule replayed under perturbed costs)", whatif_tbl);
      ];
    notes =
      [
        (if all_conserved then
           "conservation holds on every benchmark: states tile each thread's lifetime \
            exactly"
         else "A CONSERVATION VIOLATION WAS DETECTED");
        (if n_truncated = 0 then "no critical-path walk hit its safety cap"
         else Printf.sprintf "%d critical-path walk(s) truncated at the safety cap" n_truncated);
        (match dominant with
        | Some (name, s) ->
            Printf.sprintf "largest token-wait share: %s at %.1f%% of thread-time" name s
        | None -> "no benchmarks profiled");
      ];
  }

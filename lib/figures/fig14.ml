let static_levels = [ 0; 1; 2; 4; 8; 16; 32 ]

type row = {
  level : string;
  walls : (string * int) list;
}

let configs () =
  ("none", Runtime.Config.without_coarsening Runtime.Config.consequence_ic)
  :: List.map
       (fun k -> (Printf.sprintf "static-%d" k, Runtime.Config.with_static_coarsening Runtime.Config.consequence_ic k))
       static_levels
  @ [ ("adaptive", Runtime.Config.consequence_ic) ]

let measure ?(threads = 8) ?(seed = 1) () =
  let jobs =
    List.concat_map
      (fun (level, cfg) ->
        List.map (fun name -> (level, cfg, name)) Workload.Registry.fig14_set)
      (configs ())
  in
  let walls =
    Sim.Par.map_list
      (fun (_, cfg, name) ->
        let program = (Workload.Registry.find name).Workload.Registry.program in
        (name, (Runtime.Det_rt.run cfg ~seed ~nthreads:threads program).Stats.Run_result.wall_ns))
      jobs
  in
  let per_level = List.length Workload.Registry.fig14_set in
  let walls = Array.of_list walls in
  List.mapi
    (fun k (level, _) ->
      { level; walls = Array.to_list (Array.sub walls (k * per_level) per_level) })
    (configs ())

let run ?threads ?seed () =
  let rows = measure ?threads ?seed () in
  let table = Stats.Table.create ~columns:("coarsening" :: Workload.Registry.fig14_set) in
  List.iter
    (fun row ->
      Stats.Table.add_row table
        (row.level
        :: List.map
             (fun name ->
               Stats.Table.cell_float ~decimals:2 (float_of_int (List.assoc name row.walls) /. 1e6))
             Workload.Registry.fig14_set))
    rows;
  let adaptive = List.find (fun r -> r.level = "adaptive") rows in
  let static_rows = List.filter (fun r -> String.length r.level > 6 && String.sub r.level 0 6 = "static") rows in
  let notes =
    List.map
      (fun name ->
        let best_static =
          List.fold_left (fun acc r -> min acc (List.assoc name r.walls)) max_int static_rows
        in
        let a = List.assoc name adaptive.walls in
        Printf.sprintf "%s: adaptive %.2fms vs best static %.2fms (%s; paper: adaptive beats the best static level)"
          name (float_of_int a /. 1e6) (float_of_int best_static /. 1e6)
          (if a <= best_static then "adaptive wins" else "static wins here"))
      Workload.Registry.fig14_set
  in
  {
    Fig_output.id = "fig14";
    title = "adaptive vs static coarsening (wall ms, 8 threads)";
    tables = [ ("", table) ];
    notes;
  }

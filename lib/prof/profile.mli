(** Thread-state time attribution: the determinism profiler's collector
    and per-thread/per-chunk aggregates.

    A {!collector}'s {!sink} subscribes to the runtimes'
    {!Obs.Thread_state} interval stream, and its {!observer} picks the
    spawn edges out of the happens-before stream (for walking from a
    thread's birth to its parent during critical-path analysis).
    {!finish} folds the streams into per-thread profiles.

    The central invariant is {e conservation}: the simulated clock only
    moves while a thread is inside a charged operation or a measured
    wait, so each thread's intervals tile the span from its first to its
    last interval exactly — no gap, no overlap, and the per-state sums
    account for every nanosecond ({!conservation_ok}; property-tested
    across all runtimes in [test_prof]). *)

type collector

val create : unit -> collector

val sink : collector -> Obs.Sink.t
(** Records state intervals only; spans and instants are dropped (tee
    with a {!Obs.Tracer} to keep both). *)

val observer : collector -> Runtime.Rt_event.observer
(** Records spawn edges ([Release] of ["t:<child>"]).  Optional: without
    it, critical-path walks stop at a thread's first interval instead of
    continuing on the parent. *)

type thread_profile = {
  ptid : int;
  by_state : int array;  (** ns per state, indexed by {!Obs.Thread_state.index} *)
  intervals : Obs.Thread_state.interval array;  (** in per-thread time order *)
  first_ns : int;
  last_ns : int;
  gap_ns : int;  (** uncovered ns strictly inside the lifetime; 0 when conserved *)
  overlap_ns : int;  (** doubly-covered ns; 0 when conserved *)
  chunks : (int * int array) array;
      (** (chunk ordinal, per-state ns), ascending ordinal.  Chunk
          ordinals count chunk (re)opens; coordination work is charged
          to the chunk it closes. *)
}

type t = {
  threads : thread_profile list;  (** ascending tid *)
  totals : int array;  (** per-state ns summed over threads *)
  wall_ns : int;
  parents : (int * int) list;  (** (child tid, parent tid) spawn edges *)
  hists : Obs.Metrics.snapshot;
      (** one histogram per state (["state:<name>"]) over individual
          interval lengths — the p50/p99/p999 columns of the report *)
  nintervals : int;
}

val finish : collector -> wall_ns:int -> t

val thread : t -> int -> thread_profile option
val parent_of : t -> int -> int option

val lifetime_ns : thread_profile -> int
val busy_ns : thread_profile -> int
(** Sum of [by_state]; equals {!lifetime_ns} exactly when conserved. *)

val thread_conserved : thread_profile -> bool
val conservation_ok : t -> bool

val chunks_consistent : thread_profile -> bool
(** Per-chunk per-state sums re-partition [by_state] exactly. *)

val share : thread_profile -> Obs.Thread_state.t -> float
(** Fraction of the thread's lifetime spent in the state, [0..1]. *)

val total_share : t -> Obs.Thread_state.t -> float

val state_shares : t -> (Obs.Thread_state.t * float) list
(** Each state's fraction of the {e total busy time} (sum of [totals]),
    in {!Obs.Thread_state.all} order; fractions sum to 1 (or all-zero on
    an empty profile).  The single shared derivation behind the report's
    percentage columns and the self-tuning controller's
    profile-to-params mapping — consumers must not re-derive shares from
    raw totals. *)

val state_share : t -> Obs.Thread_state.t -> float
(** [List.assoc st (state_shares t)] with a 0 default. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit

module Cm = Runtime.Cost_model

type row = {
  scenario : string;
  descr : string;
  wall_ns : int;
  speedup : float;
  diverged : bool;
  stream_reordered : bool;
}

type pipelined = {
  pipe_wall_ns : int;
  pipe_speedup : float;
  commit_free_wall_ns : int;
  remaining_gap : float;
  pipe_witness_ok : bool;
}

type t = {
  runtime_name : string;
  base_wall_ns : int;
  rows : row list;
  pipelined : pipelined option;
}

(* Each scenario is a pure transform of the cost model.  The recorded
   schedule is replayed under the transformed model; on a deterministic
   runtime the computation and its witnesses must be unchanged, so the
   wall-clock delta is attributable to the cost change (plus its
   legitimate second-order scheduling effects, e.g. barrier-departure
   wake order reshuffling when wakeups get cheaper — the replayer's
   stream checker flags those, but they do not invalidate the
   projection).  [diverged] is the invalidating case: the perturbed run
   produced different witnesses, so the speedup is not comparing like
   with like (expected when the recording came from [pthreads], whose
   interleaving is time-driven). *)
let scenarios : (string * string * (Cm.t -> Cm.t)) list =
  [
    ( "merge-2x",
      "page merging twice as fast",
      fun c -> { c with Cm.page_merge_ns = c.Cm.page_merge_ns / 2 } );
    ( "commit-2x",
      "commit pipeline (install+merge) twice as fast",
      fun c ->
        {
          c with
          Cm.commit_base_ns = c.Cm.commit_base_ns / 2;
          page_commit_ns = c.Cm.page_commit_ns / 2;
          page_merge_ns = c.Cm.page_merge_ns / 2;
          barrier_phase1_page_ns = c.Cm.barrier_phase1_page_ns / 2;
        } );
    ( "commit-free",
      "commits and updates cost nothing",
      fun c ->
        {
          c with
          Cm.commit_base_ns = 0;
          page_commit_ns = 0;
          page_merge_ns = 0;
          barrier_phase1_page_ns = 0;
          update_base_ns = 0;
          page_refresh_ns = 0;
          page_map_ns = 0;
        } );
    ( "token-free",
      "token handoffs and wakeups cost nothing",
      fun c -> { c with Cm.token_ns = 0; wake_ns = 0 } );
    ( "boundary-free",
      "counter reads and overflow interrupts cost nothing",
      fun c ->
        {
          c with
          Cm.counter_read_syscall_ns = 0;
          counter_read_user_ns = 0;
          overflow_interrupt_ns = 0;
        } );
    ( "fault-free",
      "write faults cost nothing",
      fun c -> { c with Cm.page_fault_ns = 0 } );
  ]

let run ?(runtime = Runtime.Run.consequence_ic) ?(costs = Cm.default) ?(seed = 1) ?nthreads
    ?(measure_pipelined = true) program =
  let sched, base = Replay.Schedule.record runtime ~costs ~seed ?nthreads program in
  let base_wall = base.Stats.Run_result.wall_ns in
  let rows =
    List.map
      (fun (scenario, descr, f) ->
        let outcome = Replay.Replayer.replay ~costs:(f costs) sched program in
        let wall = outcome.Replay.Replayer.result.Stats.Run_result.wall_ns in
        {
          scenario;
          descr;
          wall_ns = wall;
          speedup = float_of_int base_wall /. float_of_int (max 1 wall);
          diverged = not outcome.Replay.Replayer.hash_match;
          stream_reordered = outcome.Replay.Replayer.divergence <> None;
        })
      scenarios
  in
  (* The commit-free scenario is a projection: an upper bound on what any
     commit optimization could buy.  The pipelined sharded commit is the
     implemented optimization.  Measuring the latter for real and
     comparing against the former answers "how much of the commit-free
     headroom does the parallel commit actually capture, and how much is
     still on the table" — the gap that seal costs, merge work and the
     drained install necessarily keep.  It re-executes the whole
     workload once more, so [?measure_pipelined:false] lets callers who
     only want the replay projections skip it. *)
  let pipelined =
    match runtime with
    | _ when not measure_pipelined -> None
    | Runtime.Run.Det cfg when not cfg.Runtime.Config.pipelined_commit ->
        let pcfg =
          Runtime.Config.with_commit_shards (Runtime.Config.with_pipelined_commit cfg) 8
        in
        let pr = Runtime.Run.run (Runtime.Run.Det pcfg) ~costs ~seed ?nthreads program in
        let witness (r : Stats.Run_result.t) =
          (r.Stats.Run_result.mem_hash, r.Stats.Run_result.sync_order_hash,
           r.Stats.Run_result.output_hash)
        in
        let pipe_wall = pr.Stats.Run_result.wall_ns in
        let commit_free_wall =
          match List.find_opt (fun r -> r.scenario = "commit-free") rows with
          | Some r -> r.wall_ns
          | None -> base_wall
        in
        Some
          {
            pipe_wall_ns = pipe_wall;
            pipe_speedup = float_of_int base_wall /. float_of_int (max 1 pipe_wall);
            commit_free_wall_ns = commit_free_wall;
            remaining_gap = float_of_int pipe_wall /. float_of_int (max 1 commit_free_wall);
            pipe_witness_ok = witness pr = witness base;
          }
    | _ -> None
  in
  { runtime_name = Runtime.Run.name runtime; base_wall_ns = base_wall; rows; pipelined }

let to_json t =
  Obs.Json.Obj
    ([
      ("runtime", Obs.Json.String t.runtime_name);
      ("base_wall_ns", Obs.Json.Int t.base_wall_ns);
      ( "scenarios",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("scenario", Obs.Json.String r.scenario);
                   ("descr", Obs.Json.String r.descr);
                   ("wall_ns", Obs.Json.Int r.wall_ns);
                   ("speedup", Obs.Json.Float r.speedup);
                   ("diverged", Obs.Json.Bool r.diverged);
                   ("stream_reordered", Obs.Json.Bool r.stream_reordered);
                 ])
             t.rows) );
    ]
    @
    match t.pipelined with
    | None -> []
    | Some p ->
        [
          ( "pipelined",
            Obs.Json.Obj
              [
                ("wall_ns", Obs.Json.Int p.pipe_wall_ns);
                ("speedup", Obs.Json.Float p.pipe_speedup);
                ("commit_free_wall_ns", Obs.Json.Int p.commit_free_wall_ns);
                ("remaining_gap", Obs.Json.Float p.remaining_gap);
                ("witness_ok", Obs.Json.Bool p.pipe_witness_ok);
              ] );
        ])

let pp fmt t =
  Format.fprintf fmt "@[<v>what-if (replayed schedule, %s, base %dns):@," t.runtime_name
    t.base_wall_ns;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-14s %12dns  %6.3fx  %s  (%s)@," r.scenario r.wall_ns r.speedup
        (if r.diverged then "DIVERGED"
         else if r.stream_reordered then "ok, wakes reordered"
         else "ok")
        r.descr)
    t.rows;
  (match t.pipelined with
  | None -> ()
  | Some p ->
      Format.fprintf fmt "  %-14s %12dns  %6.3fx  %s  (measured: sharded pipelined commit)@,"
        "pipelined" p.pipe_wall_ns p.pipe_speedup
        (if p.pipe_witness_ok then "ok" else "DIVERGED");
      Format.fprintf fmt
        "  remaining gap to commit-free floor: %.3fx (pipelined %dns vs projected %dns)@,"
        p.remaining_gap p.pipe_wall_ns p.commit_free_wall_ns);
  Format.fprintf fmt "@]"

module Cm = Runtime.Cost_model

type row = {
  scenario : string;
  descr : string;
  wall_ns : int;
  speedup : float;
  diverged : bool;
  stream_reordered : bool;
}

type t = { runtime_name : string; base_wall_ns : int; rows : row list }

(* Each scenario is a pure transform of the cost model.  The recorded
   schedule is replayed under the transformed model; on a deterministic
   runtime the computation and its witnesses must be unchanged, so the
   wall-clock delta is attributable to the cost change (plus its
   legitimate second-order scheduling effects, e.g. barrier-departure
   wake order reshuffling when wakeups get cheaper — the replayer's
   stream checker flags those, but they do not invalidate the
   projection).  [diverged] is the invalidating case: the perturbed run
   produced different witnesses, so the speedup is not comparing like
   with like (expected when the recording came from [pthreads], whose
   interleaving is time-driven). *)
let scenarios : (string * string * (Cm.t -> Cm.t)) list =
  [
    ( "merge-2x",
      "page merging twice as fast",
      fun c -> { c with Cm.page_merge_ns = c.Cm.page_merge_ns / 2 } );
    ( "commit-2x",
      "commit pipeline (install+merge) twice as fast",
      fun c ->
        {
          c with
          Cm.commit_base_ns = c.Cm.commit_base_ns / 2;
          page_commit_ns = c.Cm.page_commit_ns / 2;
          page_merge_ns = c.Cm.page_merge_ns / 2;
          barrier_phase1_page_ns = c.Cm.barrier_phase1_page_ns / 2;
        } );
    ( "commit-free",
      "commits and updates cost nothing",
      fun c ->
        {
          c with
          Cm.commit_base_ns = 0;
          page_commit_ns = 0;
          page_merge_ns = 0;
          barrier_phase1_page_ns = 0;
          update_base_ns = 0;
          page_refresh_ns = 0;
          page_map_ns = 0;
        } );
    ( "token-free",
      "token handoffs and wakeups cost nothing",
      fun c -> { c with Cm.token_ns = 0; wake_ns = 0 } );
    ( "boundary-free",
      "counter reads and overflow interrupts cost nothing",
      fun c ->
        {
          c with
          Cm.counter_read_syscall_ns = 0;
          counter_read_user_ns = 0;
          overflow_interrupt_ns = 0;
        } );
    ( "fault-free",
      "write faults cost nothing",
      fun c -> { c with Cm.page_fault_ns = 0 } );
  ]

let run ?(runtime = Runtime.Run.consequence_ic) ?(costs = Cm.default) ?(seed = 1) ?nthreads
    program =
  let sched, base = Replay.Schedule.record runtime ~costs ~seed ?nthreads program in
  let base_wall = base.Stats.Run_result.wall_ns in
  let rows =
    List.map
      (fun (scenario, descr, f) ->
        let outcome = Replay.Replayer.replay ~costs:(f costs) sched program in
        let wall = outcome.Replay.Replayer.result.Stats.Run_result.wall_ns in
        {
          scenario;
          descr;
          wall_ns = wall;
          speedup = float_of_int base_wall /. float_of_int (max 1 wall);
          diverged = not outcome.Replay.Replayer.hash_match;
          stream_reordered = outcome.Replay.Replayer.divergence <> None;
        })
      scenarios
  in
  { runtime_name = Runtime.Run.name runtime; base_wall_ns = base_wall; rows }

let to_json t =
  Obs.Json.Obj
    [
      ("runtime", Obs.Json.String t.runtime_name);
      ("base_wall_ns", Obs.Json.Int t.base_wall_ns);
      ( "scenarios",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("scenario", Obs.Json.String r.scenario);
                   ("descr", Obs.Json.String r.descr);
                   ("wall_ns", Obs.Json.Int r.wall_ns);
                   ("speedup", Obs.Json.Float r.speedup);
                   ("diverged", Obs.Json.Bool r.diverged);
                   ("stream_reordered", Obs.Json.Bool r.stream_reordered);
                 ])
             t.rows) );
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>what-if (replayed schedule, %s, base %dns):@," t.runtime_name
    t.base_wall_ns;
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-14s %12dns  %6.3fx  %s  (%s)@," r.scenario r.wall_ns r.speedup
        (if r.diverged then "DIVERGED"
         else if r.stream_reordered then "ok, wakes reordered"
         else "ok")
        r.descr)
    t.rows;
  Format.fprintf fmt "@]"

module St = Obs.Thread_state

type t = {
  path_ns : int;
  wall_ns : int;
  by_state : int array; (* ns on the path per state *)
  by_thread : (int * int) list; (* (tid, ns on path), descending ns *)
  top_chunks : (int * int * int) list; (* (tid, chunk, ns on path), descending *)
  segments : int;
  bridged : int; (* waits crossed to the waking thread *)
  unbridged_wait_ns : int; (* wait time attributed because no waker was known *)
  truncated : bool; (* safety cap hit; path_ns is a lower bound *)
}

let is_wait = St.is_wait

(* Largest index i with ivs.(i).t0 < t, or -1. *)
let find_before (ivs : St.interval array) t =
  let lo = ref 0 and hi = ref (Array.length ivs) in
  (* invariant: ivs.(lo-1).t0 < t <= ivs.(hi).t0 (virtual sentinels) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ivs.(mid).St.t0 < t then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let compute (p : Profile.t) =
  let tbl : (int, St.interval array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (tp : Profile.thread_profile) -> Hashtbl.replace tbl tp.Profile.ptid tp.Profile.intervals)
    p.Profile.threads;
  let by_state = Array.make St.n 0 in
  let by_thread : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let by_chunk : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let add tbl k v = Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let segments = ref 0 and bridged = ref 0 and unbridged = ref 0 and truncated = ref false in
  (* Start from the globally latest interval end. *)
  let start =
    List.fold_left
      (fun acc (tp : Profile.thread_profile) ->
        if Array.length tp.Profile.intervals = 0 then acc
        else
          match acc with
          | Some (_, t1) when t1 >= tp.Profile.last_ns -> acc
          | _ -> Some (tp.Profile.ptid, tp.Profile.last_ns))
      None p.Profile.threads
  in
  (match start with
  | None -> ()
  | Some (tid0, t_end) ->
      let cur_tid = ref tid0 and cur_t = ref t_end in
      let step_cap = (4 * p.Profile.nintervals) + 1024 in
      let stall = ref 0 in
      let running = ref true in
      while !running do
        if !segments > step_cap then begin
          truncated := true;
          running := false
        end
        else begin
          let ivs = try Hashtbl.find tbl !cur_tid with Not_found -> [||] in
          let i = if Array.length ivs = 0 then -1 else find_before ivs !cur_t in
          if i < 0 then
            (* Before this thread's first interval: continue on the
               spawning parent at the same instant (the child's birth
               waited on the parent's spawn). *)
            match Profile.parent_of p !cur_tid with
            | Some parent when parent <> !cur_tid -> begin
                cur_tid := parent;
                incr stall;
                if !stall > 64 then running := false
              end
            | _ -> running := false
          else begin
            let iv = ivs.(i) in
            incr segments;
            let contrib = min iv.St.t1 !cur_t - iv.St.t0 in
            let w = iv.St.waker in
            let bridgeable =
              is_wait iv.St.state && w >= 0 && w <> !cur_tid && Hashtbl.mem tbl w
              && !stall <= 64
            in
            if bridgeable then begin
              (* The wait ended because of [w]'s action at (or just
                 before) its end: the path continues on the waker, and
                 the wait itself contributes nothing. *)
              incr bridged;
              let jump_t = min iv.St.t1 !cur_t in
              if jump_t >= !cur_t then incr stall else stall := 0;
              cur_tid := w;
              cur_t := jump_t
            end
            else begin
              if contrib > 0 then begin
                let si = St.index iv.St.state in
                by_state.(si) <- by_state.(si) + contrib;
                add by_thread !cur_tid contrib;
                add by_chunk (!cur_tid, iv.St.chunk) contrib;
                if is_wait iv.St.state then unbridged := !unbridged + contrib;
                stall := 0
              end
              else begin
                incr stall;
                if !stall > 256 then begin
                  truncated := true;
                  running := false
                end
              end;
              cur_t := iv.St.t0
            end
          end
        end
      done);
  let path_ns = Array.fold_left ( + ) 0 by_state in
  let by_thread =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_thread []
    |> List.sort (fun (ta, a) (tb, b) -> compare (-a, ta) (-b, tb))
  in
  let top_chunks =
    Hashtbl.fold (fun (tid, ck) v acc -> (tid, ck, v) :: acc) by_chunk []
    |> List.sort (fun (ta, ca, a) (tb, cb, b) -> compare (-a, ta, ca) (-b, tb, cb))
    |> List.filteri (fun i _ -> i < 10)
  in
  {
    path_ns;
    wall_ns = p.Profile.wall_ns;
    by_state;
    by_thread;
    top_chunks;
    segments = !segments;
    bridged = !bridged;
    unbridged_wait_ns = !unbridged;
    truncated = !truncated;
  }

(* Analytic upper bound: removing every on-path nanosecond of one state
   can shorten the critical path — and hence the wall clock — by at most
   that amount.  COZ-style "what would speeding X up buy" ceilings; the
   replay-based {!Whatif} gives the corresponding measured numbers. *)
let projections t =
  List.filter_map
    (fun st ->
      let on_path = t.by_state.(St.index st) in
      if on_path <= 0 || t.wall_ns <= 0 then None
      else
        let bound =
          if on_path >= t.wall_ns then infinity
          else float_of_int t.wall_ns /. float_of_int (t.wall_ns - on_path)
        in
        Some (St.name st, bound))
    St.all

let to_json t =
  Obs.Json.Obj
    [
      ("path_ns", Obs.Json.Int t.path_ns);
      ("wall_ns", Obs.Json.Int t.wall_ns);
      ("segments", Obs.Json.Int t.segments);
      ("bridged_waits", Obs.Json.Int t.bridged);
      ("unbridged_wait_ns", Obs.Json.Int t.unbridged_wait_ns);
      ("truncated", Obs.Json.Bool t.truncated);
      ( "by_state",
        Obs.Json.Obj
          (List.map (fun st -> (St.name st, Obs.Json.Int t.by_state.(St.index st))) St.all) );
      ( "by_thread",
        Obs.Json.List
          (List.map
             (fun (tid, ns) ->
               Obs.Json.Obj [ ("tid", Obs.Json.Int tid); ("ns", Obs.Json.Int ns) ])
             t.by_thread) );
      ( "top_chunks",
        Obs.Json.List
          (List.map
             (fun (tid, ck, ns) ->
               Obs.Json.Obj
                 [
                   ("tid", Obs.Json.Int tid);
                   ("chunk", Obs.Json.Int ck);
                   ("ns", Obs.Json.Int ns);
                 ])
             t.top_chunks) );
      ( "projections",
        Obs.Json.Obj
          (List.map (fun (name, s) -> (name, Obs.Json.Float s)) (projections t)) );
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt
    "critical path: %dns of %dns wall (%.1f%%), %d segments, %d waits bridged%s@,"
    t.path_ns t.wall_ns
    (if t.wall_ns = 0 then 0.0 else 100.0 *. float_of_int t.path_ns /. float_of_int t.wall_ns)
    t.segments t.bridged
    (if t.truncated then " [truncated]" else "");
  List.iter
    (fun st ->
      let ns = t.by_state.(St.index st) in
      if ns > 0 then
        Format.fprintf fmt "  %-14s %12dns  (%.1f%% of path)@," (St.name st) ns
          (100.0 *. float_of_int ns /. float_of_int (max 1 t.path_ns)))
    St.all;
  (match t.by_thread with
  | [] -> ()
  | l ->
      Format.fprintf fmt "  on-path threads:";
      List.iter (fun (tid, ns) -> Format.fprintf fmt " t%d:%dns" tid ns) l;
      Format.fprintf fmt "@,");
  List.iter
    (fun (name, s) ->
      if s > 1.0005 then
        Format.fprintf fmt "  eliminating on-path %-14s => <= %.3fx speedup@," name s)
    (projections t);
  Format.fprintf fmt "@]"

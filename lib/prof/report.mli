(** One-call determinism profile: run a workload with the collector
    attached, aggregate thread-state time, compute the critical path,
    and (optionally) measure what-if cost projections by replay.

    This is the engine behind the [profile] CLI subcommand and the
    [profile] bench section. *)

type t = {
  runtime_name : string;
  result : Stats.Run_result.t;
  profile : Profile.t;
  cpath : Critical_path.t;
  whatif : Whatif.t option;
}

val run :
  ?runtime:Runtime.Run.runtime ->
  ?costs:Runtime.Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?whatif:bool ->
  ?measure_pipelined:bool ->
  ?obs:Obs.Sink.t ->
  Api.t ->
  t
(** Profile one run (default [consequence_ic], seed 1).  [whatif]
    additionally records and replays the schedule under the
    {!Whatif.scenarios} (a second run plus one replay per scenario);
    [measure_pipelined] is forwarded to {!Whatif.run} and gates the
    extra measured run under the pipelined sharded-commit config.
    [obs] is teed with the profiler's own sink, so a {!Obs.Tracer} can
    capture the same run for Perfetto export without perturbing it. *)

val conservation_ok : t -> bool

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit

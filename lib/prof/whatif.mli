(** What-if cost projection: measured (not merely analytic) speedup
    estimates, COZ-style.

    The schedule of one run is recorded with [lib/replay], then replayed
    under perturbed {!Runtime.Cost_model}s — merges twice as fast,
    commits free, token handoffs free, ….  Because the deterministic
    runtimes order events by logical instruction counts and the replay
    scripts the overflow boundaries, the re-execution performs the
    {e same} schedule at different prices; the resulting wall-clock
    ratio is the measured answer to "what would optimizing X buy on this
    workload".  Unlike {!Critical_path.projections} (per-state upper
    bounds), these numbers include second-order effects such as wait
    times that shrink when the operation they wait for gets cheaper.

    Each replay cross-checks the recording.  [diverged] is the
    invalidating case — the perturbed run produced {e different
    witnesses}, so the ratio does not compare like with like (expected
    for [pthreads] recordings, whose interleaving is time-driven).
    [stream_reordered] is the benign case: witnesses match but the event
    stream shuffled (e.g. barrier-departure wake order when wakeups get
    cheaper) — precisely the second-order scheduling effect the
    projection is meant to include. *)

type row = {
  scenario : string;
  descr : string;
  wall_ns : int;
  speedup : float;  (** recorded wall / scenario wall *)
  diverged : bool;  (** witnesses differ: projection invalid *)
  stream_reordered : bool;  (** same witnesses, shuffled event stream *)
}

type t = { runtime_name : string; base_wall_ns : int; rows : row list }

val scenarios : (string * string * (Runtime.Cost_model.t -> Runtime.Cost_model.t)) list
(** The scenario registry: (name, description, cost transform). *)

val run :
  ?runtime:Runtime.Run.runtime ->
  ?costs:Runtime.Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  Api.t ->
  t
(** Record one run (default [consequence_ic], seed 1) and replay every
    scenario against it. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit

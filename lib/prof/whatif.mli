(** What-if cost projection: measured (not merely analytic) speedup
    estimates, COZ-style.

    The schedule of one run is recorded with [lib/replay], then replayed
    under perturbed {!Runtime.Cost_model}s — merges twice as fast,
    commits free, token handoffs free, ….  Because the deterministic
    runtimes order events by logical instruction counts and the replay
    scripts the overflow boundaries, the re-execution performs the
    {e same} schedule at different prices; the resulting wall-clock
    ratio is the measured answer to "what would optimizing X buy on this
    workload".  Unlike {!Critical_path.projections} (per-state upper
    bounds), these numbers include second-order effects such as wait
    times that shrink when the operation they wait for gets cheaper.

    Each replay cross-checks the recording.  [diverged] is the
    invalidating case — the perturbed run produced {e different
    witnesses}, so the ratio does not compare like with like (expected
    for [pthreads] recordings, whose interleaving is time-driven).
    [stream_reordered] is the benign case: witnesses match but the event
    stream shuffled (e.g. barrier-departure wake order when wakeups get
    cheaper) — precisely the second-order scheduling effect the
    projection is meant to include. *)

type row = {
  scenario : string;
  descr : string;
  wall_ns : int;
  speedup : float;  (** recorded wall / scenario wall *)
  diverged : bool;  (** witnesses differ: projection invalid *)
  stream_reordered : bool;  (** same witnesses, shuffled event stream *)
}

type pipelined = {
  pipe_wall_ns : int;  (** measured wall under pipelined sharded commit *)
  pipe_speedup : float;  (** recorded wall / pipelined wall *)
  commit_free_wall_ns : int;  (** the commit-free scenario's projected wall *)
  remaining_gap : float;
      (** pipelined wall / commit-free wall: how far the implemented
          optimization remains from the projection's floor (1.0 = all
          commit-attributed headroom captured) *)
  pipe_witness_ok : bool;  (** pipelined run reproduced the witnesses *)
}

type t = {
  runtime_name : string;
  base_wall_ns : int;
  rows : row list;
  pipelined : pipelined option;
      (** Populated when the recorded runtime is a deterministic config
          without [pipelined_commit]: the same workload is re-run (not
          replayed) under {!Runtime.Config.with_pipelined_commit} + 8
          commit shards, giving the {e measured} counterpart to the
          commit-free {e projection} and the remaining gap between
          them. *)
}

val scenarios : (string * string * (Runtime.Cost_model.t -> Runtime.Cost_model.t)) list
(** The scenario registry: (name, description, cost transform). *)

val run :
  ?runtime:Runtime.Run.runtime ->
  ?costs:Runtime.Cost_model.t ->
  ?seed:int ->
  ?nthreads:int ->
  ?measure_pipelined:bool ->
  Api.t ->
  t
(** Record one run (default [consequence_ic], seed 1) and replay every
    scenario against it.  [measure_pipelined] (default [true]) also
    re-runs the workload under the pipelined sharded-commit config to
    populate [pipelined] — a full second execution; pass [false] to
    skip it when only the replay projections are wanted. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit

module St = Obs.Thread_state

type t = {
  runtime_name : string;
  result : Stats.Run_result.t;
  profile : Profile.t;
  cpath : Critical_path.t;
  whatif : Whatif.t option;
}

let run ?(runtime = Runtime.Run.consequence_ic) ?(costs = Runtime.Cost_model.default)
    ?(seed = 1) ?nthreads ?(whatif = false) ?measure_pipelined ?(obs = Obs.Sink.null) program
    =
  let c = Profile.create () in
  let sink = Profile.sink c in
  let sink = if Obs.Sink.is_null obs then sink else Obs.Sink.tee sink obs in
  let result =
    Runtime.Run.run runtime ~costs ~seed ?nthreads ~observer:(Profile.observer c)
      ~obs:sink program
  in
  let profile = Profile.finish c ~wall_ns:result.Stats.Run_result.wall_ns in
  let cpath = Critical_path.compute profile in
  let whatif =
    if whatif then
      Some (Whatif.run ~runtime ~costs ~seed ?nthreads ?measure_pipelined program)
    else None
  in
  { runtime_name = Runtime.Run.name runtime; result; profile; cpath; whatif }

let conservation_ok t = Profile.conservation_ok t.profile

let to_json t =
  let base =
    [
      ("runtime", Obs.Json.String t.runtime_name);
      ("wall_ns", Obs.Json.Int t.result.Stats.Run_result.wall_ns);
      ("conserved", Obs.Json.Bool (conservation_ok t));
      ("profile", Profile.to_json t.profile);
      ("critical_path", Critical_path.to_json t.cpath);
    ]
  in
  let base =
    match t.whatif with
    | None -> base
    | Some w -> base @ [ ("whatif", Whatif.to_json w) ]
  in
  Obs.Json.Obj base

(* One quantile line per state that actually occurred. *)
let pp_quantiles fmt (p : Profile.t) =
  let any = ref false in
  List.iter
    (fun st ->
      match Obs.Metrics.find_hist p.Profile.hists ("state:" ^ St.name st) with
      | None -> ()
      | Some h ->
          if not !any then begin
            any := true;
            Format.fprintf fmt "interval lengths (ns):@,";
            Format.fprintf fmt "  %-14s %8s %12s %12s %12s@," "state" "count" "p50" "p99"
              "p999"
          end;
          Format.fprintf fmt "  %-14s %8d %12.0f %12.0f %12.0f@," (St.name st)
            h.Obs.Metrics.count
            (Obs.Metrics.percentile h 0.5)
            (Obs.Metrics.percentile h 0.99)
            (Obs.Metrics.percentile h 0.999))
    St.all

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "=== determinism profile: %s, %d threads, wall %dns ===@,"
    t.runtime_name
    (List.length t.result.Stats.Run_result.per_thread)
    t.result.Stats.Run_result.wall_ns;
  Format.fprintf fmt "conservation: %s@,"
    (if conservation_ok t then "ok (states tile every lifetime exactly)"
     else "VIOLATED");
  Profile.pp fmt t.profile;
  Format.fprintf fmt "@,";
  pp_quantiles fmt t.profile;
  Format.fprintf fmt "@,";
  Critical_path.pp fmt t.cpath;
  (match t.whatif with
  | None -> ()
  | Some w ->
      Format.fprintf fmt "@,";
      Whatif.pp fmt w);
  Format.fprintf fmt "@]"

(** Critical-path analysis over the thread-state interval streams.

    The dependency DAG is implicit in the profile: within a thread,
    each interval depends on its predecessor; a completed wait interval
    additionally depends on the action of the thread that ended it (the
    [waker] recorded by the runtime — a grant, a serial-turn handoff, a
    fence release, or the best-effort token enabler); and a thread's
    first interval depends on its parent's spawn.

    {!compute} walks this DAG backward from the globally latest interval
    end.  Waits with a known waker are {e bridged} — the path jumps to
    the waker and the wait contributes nothing; waits without one are
    attributed to the path as wait time (reported separately as
    [unbridged_wait_ns], so the quality of the attribution is visible).
    The result partitions the path by state, thread and chunk: the
    states on the critical path are the ones whose acceleration can
    shorten the run, which is what distinguishes "the run spent 40% of
    total thread-time in token waits" from "token waits gate the wall
    clock". *)

type t = {
  path_ns : int;  (** total attributed ns on the path *)
  wall_ns : int;
  by_state : int array;  (** on-path ns per state, by {!Obs.Thread_state.index} *)
  by_thread : (int * int) list;  (** (tid, on-path ns), descending ns *)
  top_chunks : (int * int * int) list;  (** (tid, chunk, on-path ns), top 10 *)
  segments : int;  (** intervals visited *)
  bridged : int;  (** waits crossed to their waker *)
  unbridged_wait_ns : int;  (** wait ns attributed for lack of a waker *)
  truncated : bool;  (** safety cap hit; [path_ns] is then a lower bound *)
}

val compute : Profile.t -> t

val projections : t -> (string * float) list
(** Per-state analytic speedup ceiling: eliminating all on-path time of
    state [s] can speed the run up by at most
    [wall / (wall - on_path(s))] (COZ-style what-if upper bound; compare
    with the measured {!Whatif} numbers).  Only states with on-path time
    appear. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit

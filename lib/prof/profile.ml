module St = Obs.Thread_state

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

type collector = {
  mutable states_rev : St.interval list;
  mutable nstates : int;
  mutable parents_rev : (int * int) list; (* (child, parent) spawn edges *)
}

let create () = { states_rev = []; nstates = 0; parents_rev = [] }

let sink c =
  {
    Obs.Sink.span = (fun _ -> ());
    instant = (fun _ -> ());
    state =
      (fun iv ->
        c.states_rev <- iv :: c.states_rev;
        c.nstates <- c.nstates + 1);
  }

(* A spawn emits [Release { obj = "t:<child>" }] from the parent (the
   exit release is "t:<k>:exit", which the int parse rejects). *)
let child_of_obj obj =
  if String.length obj > 2 && obj.[0] = 't' && obj.[1] = ':' then
    int_of_string_opt (String.sub obj 2 (String.length obj - 2))
  else None

let observer c : Runtime.Rt_event.observer = function
  | Runtime.Rt_event.Release { tid; obj } -> (
      match child_of_obj obj with
      | Some child -> c.parents_rev <- (child, tid) :: c.parents_rev
      | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type thread_profile = {
  ptid : int;
  by_state : int array; (* St.n entries, ns *)
  intervals : St.interval array; (* per-thread time order *)
  first_ns : int;
  last_ns : int;
  gap_ns : int; (* uncovered time strictly inside [first_ns, last_ns] *)
  overlap_ns : int; (* double-covered time (must be 0: intervals tile) *)
  chunks : (int * int array) array; (* (chunk ordinal, per-state ns), ascending *)
}

type t = {
  threads : thread_profile list; (* ascending tid *)
  totals : int array;
  wall_ns : int;
  parents : (int * int) list; (* (child, parent), ascending child *)
  hists : Obs.Metrics.snapshot; (* per-state interval-length histograms *)
  nintervals : int;
}

let lifetime_ns tp = tp.last_ns - tp.first_ns
let busy_ns tp = Array.fold_left ( + ) 0 tp.by_state

let finish c ~wall_ns =
  let by_tid : (int, St.interval list ref) Hashtbl.t = Hashtbl.create 64 in
  (* states_rev is newest-first: prepending preserves per-thread time
     order without a sort. *)
  List.iter
    (fun (iv : St.interval) ->
      match Hashtbl.find_opt by_tid iv.St.stid with
      | Some r -> r := iv :: !r
      | None -> Hashtbl.add by_tid iv.St.stid (ref [ iv ]))
    c.states_rev;
  let metrics = Obs.Metrics.create () in
  let threads =
    Hashtbl.fold (fun tid r acc -> (tid, Array.of_list !r) :: acc) by_tid []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (tid, ivs) ->
           let n = Array.length ivs in
           let by_state = Array.make St.n 0 in
           let chunk_acc : (int, int array) Hashtbl.t = Hashtbl.create 64 in
           let gap = ref 0 and overlap = ref 0 in
           Array.iteri
             (fun i (iv : St.interval) ->
               let d = St.duration iv in
               let si = St.index iv.St.state in
               by_state.(si) <- by_state.(si) + d;
               Obs.Metrics.observe metrics ("state:" ^ St.name iv.St.state) d;
               (let slot =
                  match Hashtbl.find_opt chunk_acc iv.St.chunk with
                  | Some a -> a
                  | None ->
                      let a = Array.make St.n 0 in
                      Hashtbl.add chunk_acc iv.St.chunk a;
                      a
                in
                slot.(si) <- slot.(si) + d);
               if i > 0 then begin
                 let prev_t1 = ivs.(i - 1).St.t1 in
                 if iv.St.t0 > prev_t1 then gap := !gap + (iv.St.t0 - prev_t1)
                 else if iv.St.t0 < prev_t1 then overlap := !overlap + (prev_t1 - iv.St.t0)
               end)
             ivs;
           let chunks =
             Hashtbl.fold (fun ck a acc -> (ck, a) :: acc) chunk_acc []
             |> List.sort (fun (a, _) (b, _) -> compare a b)
             |> Array.of_list
           in
           {
             ptid = tid;
             by_state;
             intervals = ivs;
             first_ns = (if n = 0 then 0 else ivs.(0).St.t0);
             last_ns = (if n = 0 then 0 else ivs.(n - 1).St.t1);
             gap_ns = !gap;
             overlap_ns = !overlap;
             chunks;
           })
  in
  let totals = Array.make St.n 0 in
  List.iter
    (fun tp -> Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) tp.by_state)
    threads;
  let parents = List.sort_uniq compare c.parents_rev in
  { threads; totals; wall_ns; parents; hists = Obs.Metrics.snapshot metrics; nintervals = c.nstates }

let thread t tid = List.find_opt (fun tp -> tp.ptid = tid) t.threads
let parent_of t tid = List.assoc_opt tid t.parents

(* Conservation: each thread's intervals tile its lifetime exactly —
   no gaps, no overlaps, and the per-state sums account for every
   nanosecond between its first and last interval. *)
let thread_conserved tp =
  tp.gap_ns = 0 && tp.overlap_ns = 0 && busy_ns tp = lifetime_ns tp

let conservation_ok t = List.for_all thread_conserved t.threads

(* Per-chunk sums must re-partition the per-thread sums. *)
let chunks_consistent tp =
  let sums = Array.make St.n 0 in
  Array.iter
    (fun (_, a) -> Array.iteri (fun i v -> sums.(i) <- sums.(i) + v) a)
    tp.chunks;
  sums = tp.by_state

let share tp st =
  let life = lifetime_ns tp in
  if life = 0 then 0.0 else float_of_int tp.by_state.(St.index st) /. float_of_int life

let total_share t st =
  let life = List.fold_left (fun acc tp -> acc + lifetime_ns tp) 0 t.threads in
  if life = 0 then 0.0 else float_of_int t.totals.(St.index st) /. float_of_int life

(* The one shared derivation of "what fraction of the busy time went
   where": every consumer (report tables, what-if baselines, the
   self-tuning controller's profile-to-params mapping) reads this so
   their percentages cannot drift apart. *)
let state_shares t =
  let busy = Array.fold_left ( + ) 0 t.totals in
  List.map
    (fun st ->
      ( st,
        if busy = 0 then 0.0 else float_of_int t.totals.(St.index st) /. float_of_int busy ))
    St.all

let state_share t st =
  match List.assoc_opt st (state_shares t) with Some s -> s | None -> 0.0

let thread_to_json tp =
  Obs.Json.Obj
    [
      ("tid", Obs.Json.Int tp.ptid);
      ("first_ns", Obs.Json.Int tp.first_ns);
      ("last_ns", Obs.Json.Int tp.last_ns);
      ("lifetime_ns", Obs.Json.Int (lifetime_ns tp));
      ("gap_ns", Obs.Json.Int tp.gap_ns);
      ("overlap_ns", Obs.Json.Int tp.overlap_ns);
      ("intervals", Obs.Json.Int (Array.length tp.intervals));
      ("chunks", Obs.Json.Int (Array.length tp.chunks));
      ( "by_state",
        Obs.Json.Obj
          (List.map
             (fun st -> (St.name st, Obs.Json.Int tp.by_state.(St.index st)))
             St.all) );
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("wall_ns", Obs.Json.Int t.wall_ns);
      ("intervals", Obs.Json.Int t.nintervals);
      ("conserved", Obs.Json.Bool (conservation_ok t));
      ( "totals",
        Obs.Json.Obj
          (List.map (fun st -> (St.name st, Obs.Json.Int t.totals.(St.index st))) St.all) );
      ("threads", Obs.Json.List (List.map thread_to_json t.threads));
      ( "parents",
        Obs.Json.List
          (List.map
             (fun (child, parent) ->
               Obs.Json.Obj
                 [ ("child", Obs.Json.Int child); ("parent", Obs.Json.Int parent) ])
             t.parents) );
      ("state_histograms", Obs.Metrics.to_json t.hists);
    ]

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "wall %dns, %d threads, %d intervals, conservation %s@,"
    t.wall_ns (List.length t.threads) t.nintervals
    (if conservation_ok t then "exact" else "VIOLATED");
  Format.fprintf fmt "%-6s %-12s" "tid" "lifetime";
  List.iter (fun st -> Format.fprintf fmt " %12s" (St.name st)) St.all;
  Format.fprintf fmt "@,";
  List.iter
    (fun tp ->
      Format.fprintf fmt "%-6d %-12d" tp.ptid (lifetime_ns tp);
      List.iter
        (fun st -> Format.fprintf fmt " %11.1f%%" (100.0 *. share tp st))
        St.all;
      Format.fprintf fmt "@,")
    t.threads;
  Format.fprintf fmt "@]"

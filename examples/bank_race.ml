(* The determinism pitch, on a buggy program (paper sections 1-2).

     dune exec examples/bank_race.exe

   A "bank" moves money between accounts with UNSYNCHRONIZED read-modify-
   write transfers — the classic lost-update bug.  Under pthreads the
   amount of money lost depends on scheduling: every run (seed) can give a
   different total, which is precisely what makes such bugs miserable to
   reproduce and debug.  Under a deterministic runtime the program is
   still buggy, but it is buggy THE SAME WAY every single time: the bug
   reproduces on the first try, every try.

   The second section turns the race detector loose on the same program
   (lib/race): the racy bank is REPORTED racy, the mutex- and
   atomic-fixed variants audit clean, and under a deterministic runtime
   the report itself is byte-identical across seeds — a reproducible
   bug report for a scheduling bug.

   The third section shows the paper's proposed fix for atomic operations
   (section 2.7): routing the RMW through the global token restores both
   atomicity and determinism. *)

let expected = Workload.Bank.accounts * Workload.Bank.initial_balance

(* Recover the logged total by re-running with a host-side spy. *)
let total_of rt ~seed program =
  let r = Runtime.Run.run rt ~seed ~nthreads:8 program in
  (r.Stats.Run_result.mem_hash, r.Stats.Run_result.output_hash)

let () =
  let racy = Workload.Bank.racy in
  let atomic = Workload.Bank.atomic in
  Printf.printf "total money in the system should always be %d\n\n" expected;

  Printf.printf "racy transfers, 6 runs per runtime (distinct outcomes seen):\n";
  List.iter
    (fun rt ->
      let outcomes =
        List.map (fun seed -> total_of rt ~seed racy) [ 1; 2; 3; 5; 8; 13 ]
        |> List.sort_uniq compare
      in
      Printf.printf "  %-16s %d distinct outcome(s)%s\n" (Runtime.Run.name rt)
        (List.length outcomes)
        (if List.length outcomes = 1 then
           if Runtime.Run.deterministic rt then "  <- buggy, but reproducibly buggy"
           else ""
         else "  <- a heisenbug: different money lost each run"))
    Runtime.Run.all;

  Printf.printf "\nrace audit (lib/race) of each variant under consequence-ic:\n";
  List.iter
    (fun program ->
      let report, _ =
        Race.Audit.run ~seed:1 ~nthreads:8 Runtime.Run.consequence_ic program
      in
      Printf.printf "  %-12s %3d conflicts, %3d racy%s\n" program.Api.name
        report.Race.Report.conflicts report.Race.Report.racy
        (if report.Race.Report.racy > 0 then "  <- the lost update, caught and attributed"
         else "  <- audits clean"))
    [ racy; Workload.Bank.locked; atomic ];
  let stable =
    Race.Audit.stable_across_seeds ~nthreads:8 ~seeds:[ 1; 2; 42 ]
      Runtime.Run.consequence_ic racy
  in
  Printf.printf "  report byte-identical across seeds: %b\n" stable;

  Printf.printf "\natomic transfers (section 2.7 fix), 6 runs per runtime:\n";
  let reference = total_of Runtime.Run.pthreads ~seed:1 atomic in
  List.iter
    (fun rt ->
      let outcomes =
        List.map (fun seed -> total_of rt ~seed atomic) [ 1; 2; 3; 5; 8; 13 ]
        |> List.sort_uniq compare
      in
      let agree = List.for_all (fun (_, out) -> out = snd reference) outcomes in
      Printf.printf "  %-16s %d distinct outcome(s), money conserved everywhere: %b\n"
        (Runtime.Run.name rt) (List.length outcomes) agree)
    Runtime.Run.all

(* Command-line interface to the Consequence reproduction.

   Subcommands:
     run       execute one benchmark under one runtime and print metrics
     trace     execute one benchmark and export a Chrome trace-event JSON
     profile   determinism profile: state attribution, critical path, what-if
     bench     list the benchmark suite
     litmus    run a litmus test against the TSO/SC models
     lrc       run the Fig 16 memory-propagation study on one benchmark
     check     determinism self-check for one benchmark across seeds
     schedule  print the deterministic global synchronization schedule
     stress    fuzz determinism with seeded random programs
     races     race-audit one benchmark, or sweep the whole suite
     record    record a schedule log (<name>.schedule.json)
     replay    replay a schedule log with divergence detection
     explore   perturb a recorded schedule and cross-check the variants
     tune      offline auto-tuner: search per-workload controller params,
               inspect saved tuned profiles *)

open Cmdliner

let runtime_of_string = function
  | "pthreads" -> Ok Runtime.Run.pthreads
  | "dthreads" -> Ok Runtime.Run.dthreads
  | "dwc" -> Ok Runtime.Run.dwc
  | "consequence-rr" | "rr" -> Ok Runtime.Run.consequence_rr
  | "consequence-ic" | "ic" | "consequence" -> Ok Runtime.Run.consequence_ic
  | "consequence-pipe" | "pipe" -> Ok (Runtime.Run.Det Runtime.Config.consequence_pipe)
  | "domains" -> Ok Runtime.Run.domains
  | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown runtime %S; known: %s" s
             (String.concat ", " Runtime.Run.names)))

let runtime_conv =
  Arg.conv
    ( (fun s -> runtime_of_string s),
      fun fmt rt -> Format.pp_print_string fmt (Runtime.Run.name rt) )

let runtime_arg =
  let doc =
    "Threading library: pthreads, dthreads, dwc, consequence-rr, consequence-ic, \
     consequence-pipe (consequence-ic with pipelined sharded commit and incremental GC; \
     witness-identical to consequence-ic), domains (consequence-ic on real OCaml 5 \
     domains with work-stealing; witness-identical, wall-clock timings; worker count \
     from -j)."
  in
  Arg.(value & opt runtime_conv Runtime.Run.consequence_ic & info [ "r"; "runtime" ] ~doc)

let threads_arg =
  Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Worker thread count.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Simulation seed (perturbs timing only).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for fanning out independent simulations (0 = one per \
           recommended domain).  Results are gathered in input order, so the output \
           is identical for any job count.")

let apply_jobs j = Sim.Par.set_jobs (if j = 0 then Sim.Par.default_jobs () else j)

let benchmark_arg =
  let doc = "Benchmark name (see the bench subcommand for the list)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let find_program name =
  match Workload.Registry.find name with
  | entry -> Ok entry.Workload.Registry.program
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; known: %s" name
           (String.concat ", " Workload.Registry.names))

(* --- run -------------------------------------------------------------- *)

(* Apply a saved tuned profile to the selected runtime's config (the
   self-tuning controller runs online with the profile's params). *)
let with_profile profile runtime =
  match profile with
  | None -> Ok runtime
  | Some file -> (
      match Tune.Profiles.load file with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok p -> (
          match runtime with
          | Runtime.Run.Det cfg -> Ok (Runtime.Run.Det (Tune.Profiles.apply p cfg))
          | Runtime.Run.Domains cfg -> Ok (Runtime.Run.Domains (Tune.Profiles.apply p cfg))
          | Runtime.Run.Pthreads ->
              Error "--profile: pthreads has no deterministic knobs to tune"))

let profile_file_arg =
  Arg.(
    value & opt (some file) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Tuned profile (tune/profiles/<workload>.tune.json, produced by tune search); \
           runs the self-tuning controller with the profile's parameters.")

let run_cmd =
  let action runtime threads seed name breakdown metrics json jobs profile =
    apply_jobs jobs;
    match Result.bind (find_program name) (fun program ->
        Result.map (fun rt -> (program, rt)) (with_profile profile runtime)) with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok (program, runtime) ->
        let r = Runtime.Run.run runtime ~seed ~nthreads:threads program in
        if json then print_endline (Obs.Json.to_string (Stats.Run_result.to_json r))
        else begin
          Format.printf "%a@." Stats.Run_result.pp_summary r;
          if breakdown then begin
            Format.printf "@.time breakdown (all threads):@.";
            Format.printf "%a@." Stats.Breakdown.pp (Stats.Run_result.aggregate_breakdown r)
          end;
          if metrics then begin
            Format.printf "@.metrics:@.";
            Format.printf "%a@." Obs.Metrics.pp r.Stats.Run_result.metrics
          end
        end
  in
  let breakdown_arg =
    Arg.(value & flag & info [ "b"; "breakdown" ] ~doc:"Print the Fig 15 time breakdown.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "m"; "metrics" ]
          ~doc:"Print the full metrics registry (all counters and histograms).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the whole run result as one JSON document instead of text.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute one benchmark under one runtime.")
    Term.(
      const action $ runtime_arg $ threads_arg $ seed_arg $ benchmark_arg $ breakdown_arg
      $ metrics_arg $ json_arg $ jobs_arg $ profile_file_arg)

(* --- trace ------------------------------------------------------------ *)

let trace_cmd =
  let action runtime threads seed name out metrics_out =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok program ->
        let tracer = Obs.Tracer.create () in
        let r =
          Runtime.Run.run runtime ~seed ~nthreads:threads ~obs:(Obs.Tracer.sink tracer)
            program
        in
        let process_name =
          Printf.sprintf "%s / %s (%d threads, seed %d)" name (Runtime.Run.name runtime)
            threads seed
        in
        (try Obs.Chrome_trace.write_file ~process_name out tracer
         with Sys_error e ->
           prerr_endline e;
           exit 1);
        Printf.printf "%s: %d spans + %d instants on %d tracks -> %s\n" process_name
          (Obs.Tracer.span_count tracer)
          (Obs.Tracer.instant_count tracer)
          (List.length (Obs.Tracer.tids tracer))
          out;
        (match metrics_out with
        | Some file ->
            Obs.Json.to_file file (Stats.Run_result.to_json r);
            Printf.printf "metrics -> %s\n" file
        | None -> ());
        Printf.printf "witness %s\n" (Stats.Run_result.deterministic_witness r)
  in
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file for the Chrome trace-event JSON (load in Perfetto).")
  in
  let metrics_out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Also write the run result (including metrics) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Execute one benchmark and export the span timeline as Chrome trace-event JSON.")
    Term.(
      const action $ runtime_arg $ threads_arg $ seed_arg $ benchmark_arg $ out_arg
      $ metrics_out_arg)

(* --- profile ---------------------------------------------------------- *)

let profile_cmd =
  let sweep runtime threads seed =
    (* No benchmark named: compact one-line profile of every registry
       workload, failing on any conservation violation. *)
    let bad = ref 0 in
    Printf.printf "%-18s %12s %7s %7s %7s %7s  %s\n" "benchmark" "wall-ns" "run-%"
      "token-%" "commit-%" "path-%" "conserved";
    List.iter
      (fun name ->
        let program = (Workload.Registry.find name).Workload.Registry.program in
        let r = Prof.Report.run ~runtime ~seed ~nthreads:threads program in
        let p = r.Prof.Report.profile in
        (* Shares come from the shared accessor; see Prof.Profile.state_shares. *)
        let pct st = 100.0 *. Prof.Profile.state_share p st in
        let ok = Prof.Report.conservation_ok r in
        if not ok then incr bad;
        Printf.printf "%-18s %12d %7.1f %7.1f %7.1f %7.1f  %s\n" name
          p.Prof.Profile.wall_ns
          (pct Obs.Thread_state.Run)
          (pct Obs.Thread_state.Token_wait)
          (pct Obs.Thread_state.Commit)
          (100.0
          *. float_of_int r.Prof.Report.cpath.Prof.Critical_path.path_ns
          /. float_of_int (max 1 r.Prof.Report.cpath.Prof.Critical_path.wall_ns))
          (if ok then "ok" else "VIOLATED"))
      Workload.Registry.names;
    if !bad > 0 then begin
      Printf.eprintf "%d benchmark(s) violated state conservation\n" !bad;
      exit 1
    end
  in
  let action runtime threads seed name json out perfetto whatif =
    match name with
    | None ->
        if json || out <> None || perfetto <> None || whatif then begin
          prerr_endline
            "--json/-o/--perfetto/--whatif require a BENCHMARK argument (the sweep prints \
             compact summaries only)";
          exit 1
        end;
        sweep runtime threads seed
    | Some name -> (
        match find_program name with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok program ->
            let tracer = Obs.Tracer.create () in
            let obs =
              match perfetto with
              | Some _ -> Obs.Tracer.sink tracer
              | None -> Obs.Sink.null
            in
            let r = Prof.Report.run ~runtime ~seed ~nthreads:threads ~whatif ~obs program in
            let doc = Obs.Json.to_string (Prof.Report.to_json r) in
            (match out with
            | Some file ->
                let oc = open_out file in
                output_string oc doc;
                output_char oc '\n';
                close_out oc;
                Printf.printf "profile -> %s\n" file
            | None -> ());
            (match perfetto with
            | Some file ->
                let process_name =
                  Printf.sprintf "%s / %s (%d threads, seed %d)" name
                    (Runtime.Run.name runtime) threads seed
                in
                Obs.Chrome_trace.write_file ~process_name file tracer;
                Printf.printf
                  "perfetto trace (%d spans, %d state intervals as counter tracks) -> %s\n"
                  (Obs.Tracer.span_count tracer)
                  (Obs.Tracer.state_count tracer)
                  file
            | None -> ());
            if json then print_endline doc
            else if out = None then Format.printf "%a@." Prof.Report.pp r;
            if not (Prof.Report.conservation_ok r) then begin
              prerr_endline "state conservation VIOLATED";
              exit 1
            end)
  in
  let benchmark_opt_arg =
    let doc =
      "Benchmark to profile.  Without it, every registry benchmark is profiled and \
       summarized in one line each."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the profile as one JSON document instead of text.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the profile JSON to $(docv).")
  in
  let perfetto_arg =
    Arg.(
      value & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Also capture the run's span timeline and per-thread state counter tracks as \
             Chrome trace-event JSON in $(docv) (load in Perfetto).")
  in
  let whatif_arg =
    Arg.(
      value & flag
      & info [ "whatif" ]
          ~doc:
            "Also record the schedule and replay it under perturbed cost models (2x faster \
             merges, free token handoffs, ...) to measure projected speedups.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Determinism profile: per-thread state attribution, critical path, what-if \
          projection.")
    Term.(
      const action $ runtime_arg $ threads_arg $ seed_arg $ benchmark_opt_arg $ json_arg
      $ out_arg $ perfetto_arg $ whatif_arg)

(* --- bench ------------------------------------------------------------ *)

let bench_cmd =
  let action () =
    List.iter
      (fun e ->
        let p = e.Workload.Registry.program in
        Printf.printf "%-18s %-9s %s\n" p.Api.name
          (Workload.Registry.suite_name e.Workload.Registry.suite)
          p.Api.description)
      Workload.Registry.all
  in
  Cmd.v (Cmd.info "bench" ~doc:"List the 19-benchmark suite.") Term.(const action $ const ())

(* --- litmus ----------------------------------------------------------- *)

let litmus_cmd =
  let action runtime name =
    let tests =
      match name with
      | None -> Tso.Litmus.all
      | Some n -> (
          match List.find_opt (fun t -> t.Tso.Litmus.name = n) Tso.Litmus.all with
          | Some t -> [ t ]
          | None ->
              Printf.eprintf "unknown litmus test %S; known: %s\n" n
                (String.concat ", " (List.map (fun t -> t.Tso.Litmus.name) Tso.Litmus.all));
              exit 1)
    in
    List.iter
      (fun test ->
        let v = Tso.Checker.run_test runtime test in
        Format.printf "%a@." Tso.Checker.pp_verdict v;
        Format.printf "  observed: %a@." Tso.Model.pp_set v.Tso.Checker.observed)
      tests
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TEST" ~doc:"Litmus test name (default: all).")
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Run litmus tests against the TSO/SC operational models.")
    Term.(const action $ runtime_arg $ name_arg)

(* --- lrc -------------------------------------------------------------- *)

let lrc_cmd =
  let action threads seed name =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok program ->
        let r = Hb.Lrc_study.run ~seed ~nthreads:threads program in
        Printf.printf
          "%s: TSO propagated %d pages; an LRC system would propagate %d (%.1f%% reduction) over %d acquires / %d commits\n"
          r.Hb.Lrc_study.program r.Hb.Lrc_study.tso_pages r.Hb.Lrc_study.lrc_pages
          (100.0 *. Hb.Lrc_study.reduction r)
          r.Hb.Lrc_study.acquires r.Hb.Lrc_study.commits
  in
  Cmd.v
    (Cmd.info "lrc" ~doc:"Fig 16 memory-propagation study for one benchmark.")
    Term.(const action $ threads_arg $ seed_arg $ benchmark_arg)

(* --- schedule ---------------------------------------------------------- *)

let schedule_cmd =
  let action runtime threads seed name count =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok program ->
        let r = Runtime.Run.run runtime ~seed ~nthreads:threads program in
        Printf.printf
          "# %s on %s, %d threads — first %d of %d synchronization events\n"
          name (Runtime.Run.name runtime) threads
          (min count (List.length r.Stats.Run_result.schedule))
          (List.length r.Stats.Run_result.schedule);
        List.iteri
          (fun i (time, tid, label) ->
            if i < count then Printf.printf "%10d ns  t%-3d %s\n" time tid label)
          r.Stats.Run_result.schedule
  in
  let count_arg =
    Arg.(value & opt int 60 & info [ "n"; "count" ] ~doc:"Events to print.")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Print the (deterministic) global synchronization schedule of a run.")
    Term.(const action $ runtime_arg $ threads_arg $ seed_arg $ benchmark_arg $ count_arg)

(* --- stress ------------------------------------------------------------ *)

let stress_cmd =
  let action runtime threads programs seeds jobs =
    apply_jobs jobs;
    let distincts =
      Sim.Par.map_list
        (fun prog_seed ->
          let program = Workload.Synthetic.make ~seed:prog_seed () in
          let witnesses =
            List.init seeds (fun k ->
                Stats.Run_result.deterministic_witness
                  (Runtime.Run.run runtime ~seed:(1 + (97 * k)) ~nthreads:threads program))
          in
          List.length (List.sort_uniq compare witnesses))
        (List.init programs (fun i -> i + 1))
    in
    let failures = ref 0 in
    List.iteri
      (fun i distinct ->
        if distinct > 1 then begin
          incr failures;
          Printf.printf "program %d: %d DISTINCT WITNESSES\n" (i + 1) distinct
        end)
      distincts;
    Printf.printf
      "stress: %d random programs x %d perturbed runs on %s, %d threads -> %d determinism failure(s)\n"
      programs seeds (Runtime.Run.name runtime) threads !failures;
    if !failures > 0 && Runtime.Run.deterministic runtime then exit 1
  in
  let programs_arg =
    Arg.(value & opt int 25 & info [ "p"; "programs" ] ~doc:"Random programs to generate.")
  in
  let seeds_arg =
    Arg.(value & opt int 3 & info [ "k"; "seeds" ] ~doc:"Perturbed runs per program.")
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Fuzz determinism with seeded random programs.")
    Term.(const action $ runtime_arg $ threads_arg $ programs_arg $ seeds_arg $ jobs_arg)

(* --- races ------------------------------------------------------------ *)

let races_cmd =
  let action runtime threads seed name full_vector json out jobs =
    apply_jobs jobs;
    let mode = if full_vector then Race.Detector.Full_vector else Race.Detector.Epoch in
    match name with
    | Some name -> (
        (* The bank calibration workloads are auditable by name even
           though they are not part of the 19-benchmark suite. *)
        let extras = [ Workload.Bank.racy; Workload.Bank.locked; Workload.Bank.atomic ] in
        let program =
          match List.find_opt (fun p -> p.Api.name = name) extras with
          | Some p -> Ok p
          | None -> find_program name
        in
        match program with
        | Error e ->
            prerr_endline e;
            exit 1
        | Ok program ->
            let report, _ = Race.Audit.run ~mode ~seed ~nthreads:threads runtime program in
            if json then print_endline (Obs.Json.to_string (Race.Report.to_json report))
            else print_endline (Race.Report.to_string report))
    | None ->
        let fig = Figures.Race_report.run ~threads () in
        Figures.Fig_output.print fig;
        let file = Option.value out ~default:"BENCH_races.json" in
        Obs.Json.to_file file (Figures.Fig_output.to_json fig);
        Printf.printf "[races -> %s]\n" file
  in
  let name_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK"
          ~doc:
            "Benchmark to audit (also bank-racy / bank-locked / bank-atomic).  Without it, \
             sweep the whole suite and write the JSON report.")
  in
  let full_vector_arg =
    Arg.(
      value & flag
      & info [ "full-vector" ]
          ~doc:"Use the full-vector oracle instead of the O(1) epoch verdicts.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the single-benchmark report as JSON.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file for the sweep JSON (default BENCH_races.json).")
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Classify merge conflicts racy vs sync-ordered; the deterministic runtimes make \
          the report byte-identical across seeds.")
    Term.(
      const action $ runtime_arg $ threads_arg $ seed_arg $ name_arg $ full_vector_arg
      $ json_arg $ out_arg $ jobs_arg)

(* --- record / replay / explore ---------------------------------------- *)

let record_cmd =
  let action runtime threads seed name out =
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok program ->
        let log, res = Replay.Schedule.record runtime ~seed ~nthreads:threads program in
        let out = Option.value out ~default:(name ^ ".schedule.json") in
        (try Replay.Schedule.save log out
         with Sys_error e ->
           prerr_endline e;
           exit 1);
        Format.printf "%a@." Replay.Schedule.pp_meta log;
        Printf.printf "schedule -> %s (%d events, wall %d ns)\n" out
          (Replay.Schedule.length log) res.Stats.Run_result.wall_ns
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file for the schedule log (default <benchmark>.schedule.json).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Record a run's deterministic decisions (chunk boundaries, commit order and \
          hashes) into a schedule log.  On pthreads this pins one seeded interleaving.")
    Term.(const action $ runtime_arg $ threads_arg $ seed_arg $ benchmark_arg $ out_arg)

let schedule_file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"SCHEDULE" ~doc:"Schedule log recorded by the record subcommand.")

let load_log_and_program file =
  match Replay.Schedule.load file with
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1
  | Ok log -> (
      match find_program log.Replay.Schedule.meta.Replay.Schedule.program with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok program -> (log, program))

let replay_cmd =
  let action file =
    let log, program = load_log_and_program file in
    Format.printf "%a@." Replay.Schedule.pp_meta log;
    let o = Replay.Replayer.replay log program in
    Format.printf "%a@." Replay.Replayer.pp_outcome o;
    if not (Replay.Replayer.ok o) then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a recorded schedule (scripted chunk boundaries on the deterministic \
          runtimes, pinned seed on pthreads), checking every event and the final \
          witnesses; the first divergence is localized to thread + chunk.")
    Term.(const action $ schedule_file_arg)

let explore_cmd =
  let action file variants seed json =
    let log, program = load_log_and_program file in
    let r = Replay.Explore.explore ~variants ~seed log program in
    if json then print_endline (Obs.Json.to_string (Replay.Explore.to_json r))
    else Format.printf "%a@." Replay.Explore.pp_report r;
    if not (r.Replay.Explore.deterministic && r.Replay.Explore.conflicts_stable) then exit 1
  in
  let variants_arg =
    Arg.(value & opt int 12 & info [ "n"; "variants" ] ~doc:"Perturbed schedules to run.")
  in
  let explore_seed_arg =
    Arg.(value & opt int 7 & info [ "s"; "seed" ] ~doc:"Perturbation PRNG seed.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the exploration report as JSON.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Bounded schedule exploration: split/merge/shift the recorded chunk boundaries, \
          replay each variant, and cross-check that witnesses and race verdicts are \
          invariant while timings move.")
    Term.(const action $ schedule_file_arg $ variants_arg $ explore_seed_arg $ json_arg)

(* --- tune ------------------------------------------------------------- *)

let tune_search_cmd =
  let action threads seed quick out jobs names =
    apply_jobs jobs;
    let names = if names = [] then Workload.Registry.names else names in
    (match List.find_opt (fun n -> not (List.mem n Workload.Registry.names)) names with
    | Some bad ->
        Printf.eprintf "unknown benchmark %S; known: %s\n" bad
          (String.concat ", " Workload.Registry.names);
        exit 1
    | None -> ());
    let rec mkdir_p dir =
      if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
      then begin
        mkdir_p (Filename.dirname dir);
        Sys.mkdir dir 0o755
      end
    in
    mkdir_p out;
    let results =
      Sim.Par.map_list
        (fun name -> Tune.Search.search ~nthreads:threads ~seed ~quick name)
        names
    in
    let failures = ref 0 in
    List.iter
      (fun (r : Tune.Search.t) ->
        Format.printf "%a@.@." Tune.Search.pp r;
        if r.Tune.Search.replay_checked && not r.Tune.Search.replay_ok then incr failures;
        if not r.Tune.Search.seed_stable then incr failures;
        let profile = Tune.Search.to_profile r in
        let path = Filename.concat out (Tune.Profiles.filename profile) in
        Tune.Profiles.save profile path;
        Printf.printf "[%s -> %s]\n" r.Tune.Search.workload path)
      results;
    if !failures > 0 then begin
      Printf.eprintf "%d winner(s) failed the seed-stability or replay cross-check\n" !failures;
      exit 1
    end
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Shorten the hill-climb and skip the random restarts and exploration floor \
             (the CI smoke setting).")
  in
  let out_arg =
    Arg.(
      value & opt string "tune/profiles"
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Directory for the tuned profiles.")
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCHMARK" ~doc:"Workloads to tune (default: the whole registry).")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Auto-tune the self-tuning controller's parameters per workload by simulated \
          wall time (hand grid + profile-derived candidate + seeded hill-climb), \
          cross-check each winner (seed stability, replay-checked Tune_decision events), \
          and save tuned profiles.")
    Term.(
      const action $ threads_arg $ seed_arg $ quick_arg $ out_arg $ jobs_arg $ names_arg)

let tune_show_cmd =
  let action file =
    match Tune.Profiles.load file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 1
    | Ok p -> Format.printf "%a@." Tune.Profiles.pp p
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Tuned profile written by tune search.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Pretty-print a saved tuned profile.")
    Term.(const action $ file_arg)

let tune_cmd =
  Cmd.group
    (Cmd.info "tune"
       ~doc:
         "Self-tuning runtime: offline search for per-workload controller parameters and \
          inspection of the saved profiles (apply one with run --profile).")
    [ tune_search_cmd; tune_show_cmd ]

(* --- check ------------------------------------------------------------ *)

let check_cmd =
  let action runtime threads name jobs =
    apply_jobs jobs;
    match find_program name with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok program ->
        let seeds = [ 1; 2; 3; 42; 1337 ] in
        let witnesses =
          Sim.Par.map_list
            (fun seed ->
              Stats.Run_result.deterministic_witness
                (Runtime.Run.run runtime ~seed ~nthreads:threads program))
            seeds
        in
        let distinct = List.length (List.sort_uniq compare witnesses) in
        Printf.printf "%s on %s, %d threads, %d seeds: %d distinct witness(es) — %s\n"
          name (Runtime.Run.name runtime) threads (List.length seeds) distinct
          (if distinct = 1 then "deterministic"
           else if Runtime.Run.deterministic runtime then "DETERMINISM VIOLATION"
           else "nondeterministic (expected for pthreads)");
        if distinct > 1 && Runtime.Run.deterministic runtime then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Determinism self-check across perturbed executions.")
    Term.(const action $ runtime_arg $ threads_arg $ benchmark_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "consequence" ~version:"1.0.0"
      ~doc:"Deterministic multithreading with TSO consistency (EuroSys 2015 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            trace_cmd;
            profile_cmd;
            bench_cmd;
            litmus_cmd;
            lrc_cmd;
            check_cmd;
            schedule_cmd;
            stress_cmd;
            races_cmd;
            record_cmd;
            replay_cmd;
            explore_cmd;
            tune_cmd;
          ]))

(* Tests for the figure-regeneration harness: each figure produces
   well-formed data of the right shape on a reduced sweep. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let quick_threads = [ 2; 4 ]

let test_fig10_shape () =
  let rows = Figures.Fig10.measure ~threads:quick_threads () in
  check_int "25 rows" 25 (List.length rows);
  List.iter
    (fun row ->
      check_int "4 runtimes" 4 (List.length row.Figures.Fig10.ratios);
      List.iter
        (fun (name, ratio) ->
          check_bool (Printf.sprintf "%s/%s positive" row.Figures.Fig10.benchmark name) true
            (ratio > 0.0))
        row.Figures.Fig10.ratios)
    rows

let test_fig10_output_renders () =
  let out = Figures.Fig10.run ~threads:quick_threads () in
  let rendered = Figures.Fig_output.render out in
  check_bool "has table" true (String.length rendered > 200);
  check_int "3 notes" 3 (List.length out.Figures.Fig_output.notes)

let test_fig11_shape () =
  let series = Figures.Fig11.measure ~threads:quick_threads () in
  (* 6 benchmarks x 5 runtimes *)
  check_int "series count" 30 (List.length series);
  List.iter
    (fun s -> check_int "points per series" 2 (List.length s.Figures.Fig11.points))
    series

let test_fig12_shape () =
  let series = Figures.Fig12.measure ~threads:quick_threads () in
  (* 6 benchmarks x 2 runtimes *)
  check_int "series count" 12 (List.length series);
  List.iter
    (fun s ->
      List.iter (fun (_, pages) -> check_bool "peak positive" true (pages > 0)) s.Figures.Fig12.points)
    series

let test_fig13_shape () =
  let rows = Figures.Fig13.measure ~threads:4 () in
  check_int "8 benchmarks" 8 (List.length rows);
  List.iter
    (fun row ->
      check_int "6 optimizations" 6 (List.length row.Figures.Fig13.speedups);
      List.iter
        (fun (_, s) -> check_bool "speedup positive" true (s > 0.0))
        row.Figures.Fig13.speedups)
    rows

let test_fig14_shape () =
  let rows = Figures.Fig14.measure ~threads:4 () in
  (* none + statics + adaptive *)
  check_int "rows" (List.length Figures.Fig14.static_levels + 2) (List.length rows);
  check_bool "has adaptive" true (List.exists (fun r -> r.Figures.Fig14.level = "adaptive") rows)

let test_fig15_shape () =
  let rows = Figures.Fig15.measure ~threads:4 () in
  (* 11 benchmarks, ferret split in two => 12 labels, x3 runtimes *)
  check_int "rows" 36 (List.length rows);
  check_bool "ferret split" true
    (List.exists (fun r -> r.Figures.Fig15.label = "ferret_1") rows
    && List.exists (fun r -> r.Figures.Fig15.label = "ferret_n") rows);
  (* fractions sum to ~1 for nonempty rows *)
  List.iter
    (fun r ->
      if r.Figures.Fig15.total_ns > 0 then begin
        let sum = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 r.Figures.Fig15.fractions in
        check_bool "fractions sum to 1" true (abs_float (sum -. 1.0) < 1e-6)
      end)
    rows

let test_fig16_shape () =
  let results = Figures.Fig16.measure ~threads:4 () in
  check_int "12 benchmarks" 12 (List.length results);
  List.iter
    (fun (r : Hb.Lrc_study.result) ->
      check_bool (r.program ^ " reduction sane") true (Hb.Lrc_study.reduction r <= 1.0))
    results

let test_determinism_report () =
  let rows = Figures.Determinism_report.measure ~threads:2 ~seeds:[ 1; 5 ] () in
  check_int "25 rows" 25 (List.length rows);
  List.iter
    (fun row ->
      List.iter
        (fun (rt, stable) ->
          check_bool (row.Figures.Determinism_report.benchmark ^ "/" ^ rt) true stable)
        row.Figures.Determinism_report.stable)
    rows

let test_tso_report () =
  let verdicts = Figures.Tso_report.measure () in
  (* 7 tests x 5 runtimes *)
  check_int "verdicts" 35 (List.length verdicts);
  List.iter
    (fun (v : Tso.Checker.verdict) ->
      check_bool (v.test_name ^ "/" ^ v.runtime ^ " tso-ok") true v.tso_ok)
    verdicts

let test_climit_study () =
  let rows = Figures.Climit_study.measure () in
  check_int "rows" (List.length Figures.Climit_study.limits) (List.length rows);
  let disabled = List.find (fun r -> r.Figures.Climit_study.limit = None) rows in
  check_bool "livelock without limit" true (disabled.Figures.Climit_study.spin_wall_ns = None);
  List.iter
    (fun r ->
      if r.Figures.Climit_study.limit <> None then begin
        check_bool "terminates with limit" true (r.Figures.Climit_study.spin_wall_ns <> None);
        check_bool "forced commits happened" true (r.Figures.Climit_study.forced_commits > 0)
      end)
    rows

let test_soundness_study () =
  let rows = Figures.Soundness_study.measure ~programs:4 ~threads:4 () in
  let exact = List.find (fun r -> r.Figures.Soundness_study.ppm = 0) rows in
  check_int "exact counters are sound" 0 exact.Figures.Soundness_study.divergent

let test_locking_study () =
  let rows = Figures.Locking_study.measure ~threads:4 () in
  check_int "rows" (1 + List.length Figures.Locking_study.increments) (List.length rows);
  let blocking = List.find (fun r -> r.Figures.Locking_study.variant = "blocking") rows in
  (* Tight polling constants must cost more token traffic than blocking. *)
  let tightest =
    List.find (fun r -> r.Figures.Locking_study.variant = "polling-500") rows
  in
  check_bool "polling inflates token traffic" true
    (tightest.Figures.Locking_study.token_acquisitions
    > blocking.Figures.Locking_study.token_acquisitions)

let test_polling_locks_deterministic () =
  let cfg = Runtime.Config.with_polling_locks Runtime.Config.consequence_ic ~increment:2_000 in
  let p = Workload.Synthetic.make_lock_heavy ~seed:4 () in
  let w seed =
    Stats.Run_result.deterministic_witness (Runtime.Det_rt.run cfg ~seed ~nthreads:4 p)
  in
  Alcotest.(check string) "polling locks deterministic" (w 1) (w 909)

let test_chunking_study () =
  let rows = Figures.Chunking_study.measure ~threads:4 () in
  check_int "rows" (1 + List.length Figures.Chunking_study.chunk_sizes) (List.length rows);
  let sync_only = List.find (fun r -> r.Figures.Chunking_study.variant = "sync-ops-only") rows in
  check_int "no forced commits at sync-only" 0 sync_only.Figures.Chunking_study.forced;
  let smallest = List.find (fun r -> r.Figures.Chunking_study.variant = "chunk-10000") rows in
  check_bool "small chunks force commits" true (smallest.Figures.Chunking_study.forced > 0);
  check_bool "small chunks slower" true
    (smallest.Figures.Chunking_study.wall_ns > sync_only.Figures.Chunking_study.wall_ns)

let test_parallel_output_identical () =
  (* The domain-parallel sweeps must render byte-for-byte what the
     sequential sweeps render, for any job count. *)
  let render_all () =
    String.concat "\n"
      [
        Figures.Fig_output.render (Figures.Tso_report.run ());
        Figures.Fig_output.render (Figures.Locking_study.run ~threads:4 ());
        Figures.Fig_output.render (Figures.Fig16.run ~threads:4 ());
      ]
  in
  Sim.Par.set_jobs 1;
  let seq = render_all () in
  Sim.Par.set_jobs 4;
  let par = Fun.protect ~finally:(fun () -> Sim.Par.set_jobs 1) render_all in
  Alcotest.(check string) "sequential and -j 4 renderings byte-identical" seq par

let test_table_rendering () =
  let t = Stats.Table.create ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ "1"; "22" ];
  Stats.Table.add_row t [ "333"; "4" ];
  let s = Stats.Table.render t in
  check_bool "contains rule" true (String.contains s '-');
  check_int "rows" 2 (Stats.Table.row_count t);
  let raised = try Stats.Table.add_row t [ "only-one" ]; false with Invalid_argument _ -> true in
  check_bool "arity checked" true raised

let () =
  Alcotest.run "figures"
    [
      ( "figures",
        [
          Alcotest.test_case "fig10 shape" `Slow test_fig10_shape;
          Alcotest.test_case "fig10 renders" `Slow test_fig10_output_renders;
          Alcotest.test_case "fig11 shape" `Slow test_fig11_shape;
          Alcotest.test_case "fig12 shape" `Slow test_fig12_shape;
          Alcotest.test_case "fig13 shape" `Slow test_fig13_shape;
          Alcotest.test_case "fig14 shape" `Slow test_fig14_shape;
          Alcotest.test_case "fig15 shape" `Slow test_fig15_shape;
          Alcotest.test_case "fig16 shape" `Quick test_fig16_shape;
          Alcotest.test_case "determinism report" `Slow test_determinism_report;
          Alcotest.test_case "tso report" `Quick test_tso_report;
          Alcotest.test_case "climit study" `Slow test_climit_study;
          Alcotest.test_case "soundness study" `Slow test_soundness_study;
          Alcotest.test_case "locking study" `Quick test_locking_study;
          Alcotest.test_case "polling locks deterministic" `Quick
            test_polling_locks_deterministic;
          Alcotest.test_case "chunking study" `Quick test_chunking_study;
          Alcotest.test_case "parallel output identical" `Quick test_parallel_output_identical;
          Alcotest.test_case "table rendering" `Quick test_table_rendering;
        ] );
    ]

(* Tests for the race detector: synthetic verdicts, the bank regression,
   value-determinism of reports, and epoch/full-vector agreement. *)

module Det = Race.Detector
module Rep = Race.Report
module Audit = Race.Audit
module Ev = Runtime.Rt_event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let conflict ?(page = 0) ?(first = 0) ?(last = 7) ~tid ~version ~loser_tid ~loser_version () =
  Ev.Conflict
    { tid; version; page; first_byte = first; last_byte = last; loser_tid; loser_version }

let feed events =
  let det = Det.create () in
  List.iter (Det.observer det) events;
  det

(* ------------------------------------------------------------------ *)
(* Synthetic streams                                                  *)
(* ------------------------------------------------------------------ *)

let test_sync_ordered () =
  (* t1 releases m (publishing epoch 1); t2 acquires m, then merges over
     bytes from t1's epoch-1 chunk: the lock ordered the chunks. *)
  let det =
    feed
      [
        Ev.Commit { tid = 1; version = 1; pages = [ 0 ] };
        Ev.Release { tid = 1; obj = "m:0" };
        Ev.Acquire { tid = 2; obj = "m:0" };
        conflict ~tid:2 ~version:2 ~loser_tid:1 ~loser_version:1 ();
        Ev.Commit { tid = 2; version = 2; pages = [ 0 ] };
      ]
  in
  check_int "one conflict" 1 (Det.conflicts det);
  check_int "sync ordered" 1 (Det.sync_ordered det);
  check_int "no races" 0 (Det.racy det)

let test_racy () =
  (* Same merge without any synchronization: concurrent chunks. *)
  let det =
    feed
      [
        Ev.Commit { tid = 1; version = 1; pages = [ 0 ] };
        conflict ~tid:2 ~version:2 ~loser_tid:1 ~loser_version:1 ();
        Ev.Commit { tid = 2; version = 2; pages = [ 0 ] };
      ]
  in
  check_int "racy" 1 (Det.racy det);
  check_int "not ordered" 0 (Det.sync_ordered det)

let test_later_release_orders () =
  (* A release AFTER the loser's chunk start also orders it: t1 writes
     in epoch 1, releases twice, and t2 only acquires the second lock —
     the winner's component (2) still dominates the stamp (1). *)
  let det =
    feed
      [
        Ev.Release { tid = 1; obj = "m:0" };
        Ev.Release { tid = 1; obj = "m:1" };
        Ev.Acquire { tid = 2; obj = "m:1" };
        conflict ~tid:2 ~version:2 ~loser_tid:1 ~loser_version:1 ();
      ]
  in
  check_int "later release still orders" 1 (Det.sync_ordered det);
  check_int "no races" 0 (Det.racy det)

let test_unpublished_epoch_racy () =
  (* The stamp names a release the winner never saw: epoch 1 was
     acquired, epoch 2 only exists as a stamp (the loser's chunk started
     after its first release). *)
  let events epoch =
    [
      Ev.Release { tid = 1; obj = "m:0" };
      Ev.Acquire { tid = 2; obj = "m:0" };
      conflict ~tid:2 ~version:1 ~loser_tid:1 ~loser_version:epoch ();
    ]
  in
  check_int "published epoch ordered" 1 (Det.sync_ordered (feed (events 1)));
  check_int "unpublished epoch racy" 1 (Det.racy (feed (events 2)))

let test_transitive_order () =
  (* t1 -> t2 -> t3 through two different locks: still ordered. *)
  let det =
    feed
      [
        Ev.Commit { tid = 1; version = 1; pages = [ 0 ] };
        Ev.Release { tid = 1; obj = "m:0" };
        Ev.Acquire { tid = 2; obj = "m:0" };
        Ev.Release { tid = 2; obj = "m:1" };
        Ev.Acquire { tid = 3; obj = "m:1" };
        conflict ~tid:3 ~version:2 ~loser_tid:1 ~loser_version:1 ();
        Ev.Commit { tid = 3; version = 2; pages = [ 0 ] };
      ]
  in
  check_int "transitively ordered" 1 (Det.sync_ordered det)

let test_report_rendering () =
  let det =
    feed
      [
        Ev.Commit { tid = 1; version = 1; pages = [ 0 ] };
        conflict ~tid:2 ~version:2 ~loser_tid:1 ~loser_version:1 ();
        Ev.Commit { tid = 2; version = 2; pages = [ 0 ] };
      ]
  in
  let r = Rep.of_detector ~workload:"synthetic" ~runtime:"none" ~nthreads:2 det in
  check_int "report racy" 1 r.Rep.racy;
  check_bool "samples mention the conflict" true
    (List.exists (fun s -> String.length s > 0) r.Rep.samples);
  let rendered = Rep.to_string r in
  check_bool "render mentions workload" true
    (Astring.String.is_infix ~affix:"synthetic" rendered);
  (match Obs.Json.parse (Obs.Json.to_string (Rep.to_json r)) with
  | Ok j ->
      check_int "json racy" 1
        (Option.value ~default:(-1) Obs.Json.(Option.bind (member "racy" j) to_int_opt))
  | Error e -> Alcotest.failf "json reparse: %s" e)

(* ------------------------------------------------------------------ *)
(* Bank regression (satellite)                                        *)
(* ------------------------------------------------------------------ *)

let det_runtimes =
  [ Runtime.Run.dthreads; Runtime.Run.dwc; Runtime.Run.consequence_rr; Runtime.Run.consequence_ic ]

let test_bank_race_reported () =
  List.iter
    (fun rt ->
      let report, _ = Audit.run ~seed:1 ~nthreads:8 rt Workload.Bank.racy in
      check_bool
        (Printf.sprintf "bank-racy reports races under %s" (Runtime.Run.name rt))
        true
        (report.Rep.racy > 0))
    det_runtimes

let test_bank_fixed_clean () =
  List.iter
    (fun rt ->
      List.iter
        (fun program ->
          let report, _ = Audit.run ~seed:1 ~nthreads:8 rt program in
          check_int
            (Printf.sprintf "%s audits clean under %s" program.Api.name (Runtime.Run.name rt))
            0 report.Rep.racy)
        [ Workload.Bank.locked; Workload.Bank.atomic ])
    (det_runtimes @ [ Runtime.Run.pthreads ])

(* ------------------------------------------------------------------ *)
(* Value-determinism (acceptance criterion)                           *)
(* ------------------------------------------------------------------ *)

let all_programs =
  List.map (fun e -> e.Workload.Registry.program) Workload.Registry.all
  @ [ Workload.Bank.racy; Workload.Bank.locked; Workload.Bank.atomic ]

let test_reports_deterministic () =
  let jobs =
    List.concat_map (fun p -> List.map (fun rt -> (p, rt)) det_runtimes) all_programs
  in
  let results =
    Sim.Par.map_list
      (fun (p, rt) ->
        (p.Api.name, Runtime.Run.name rt,
         Audit.stable_across_seeds ~nthreads:2 ~seeds:[ 1; 2; 42 ] rt p))
      jobs
  in
  List.iter
    (fun (wl, rt, stable) ->
      check_bool (Printf.sprintf "%s report stable across seeds under %s" wl rt) true stable)
    results

let test_pthreads_conflicts_vary () =
  (* The foil: under pthreads a racy workload's conflict counts must
     move with the seed, or the determinism above would be vacuous.
     reverse_index has seed-sensitive racy merges. *)
  let p = (Workload.Registry.find "reverse_index").Workload.Registry.program in
  let counts =
    List.map
      (fun seed ->
        let r, _ = Audit.run ~seed ~nthreads:4 Runtime.Run.pthreads p in
        (r.Rep.conflicts, r.Rep.racy))
      [ 1; 2; 3; 5 ]
  in
  check_bool "seed-varying pthreads conflict counts" true
    (List.length (List.sort_uniq compare counts) > 1)

let test_modes_agree_on_runs () =
  List.iter
    (fun (rt, p) ->
      let epoch, _ = Audit.run ~mode:Det.Epoch ~seed:1 ~nthreads:4 rt p in
      let vector, _ = Audit.run ~mode:Det.Full_vector ~seed:1 ~nthreads:4 rt p in
      check_bool
        (Printf.sprintf "modes agree on %s under %s" p.Api.name (Runtime.Run.name rt))
        true
        (Rep.to_string epoch = Rep.to_string vector))
    [
      (Runtime.Run.consequence_ic, Workload.Bank.racy);
      (Runtime.Run.consequence_ic, Workload.Bank.locked);
      (Runtime.Run.dwc, Workload.Bank.racy);
      (Runtime.Run.pthreads, Workload.Bank.racy);
      (Runtime.Run.consequence_ic, (Workload.Registry.find "canneal").Workload.Registry.program);
    ]

let () =
  Alcotest.run "race"
    [
      ( "detector",
        [
          Alcotest.test_case "sync ordered" `Quick test_sync_ordered;
          Alcotest.test_case "racy" `Quick test_racy;
          Alcotest.test_case "later release orders" `Quick test_later_release_orders;
          Alcotest.test_case "unpublished epoch racy" `Quick test_unpublished_epoch_racy;
          Alcotest.test_case "transitive order" `Quick test_transitive_order;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
      ( "bank",
        [
          Alcotest.test_case "race reported" `Quick test_bank_race_reported;
          Alcotest.test_case "fixed variants clean" `Quick test_bank_fixed_clean;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reports stable across seeds" `Slow test_reports_deterministic;
          Alcotest.test_case "pthreads conflicts vary" `Quick test_pthreads_conflicts_vary;
          Alcotest.test_case "epoch agrees with full vector" `Quick test_modes_agree_on_runs;
        ] );
    ]

(* Tests for the discrete-event simulation substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_same_seed_same_stream () =
  let a = Sim.Prng.create ~seed:42 and b = Sim.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Prng.next_int64 a) (Sim.Prng.next_int64 b)
  done

let test_prng_different_seeds_differ () =
  let a = Sim.Prng.create ~seed:1 and b = Sim.Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Prng.next_int64 a <> Sim.Prng.next_int64 b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_prng_int_bounds () =
  let p = Sim.Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.int p ~bound:13 in
    check_bool "in range" true (x >= 0 && x < 13)
  done

let test_prng_float_bounds () =
  let p = Sim.Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.float p in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_jitter_bounds () =
  let p = Sim.Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Sim.Prng.jitter p ~amplitude:0.2 in
    check_bool "in [0.8,1.2]" true (x >= 0.8 && x <= 1.2)
  done

let test_prng_split_independent () =
  let a = Sim.Prng.create ~seed:5 in
  let b = Sim.Prng.split a in
  (* After a split, both streams continue; they should not be identical. *)
  let same = ref true in
  for _ = 1 to 10 do
    if Sim.Prng.next_int64 a <> Sim.Prng.next_int64 b then same := false
  done;
  check_bool "split streams differ" false !same

let test_prng_copy_preserves_state () =
  let a = Sim.Prng.create ~seed:3 in
  ignore (Sim.Prng.next_int64 a);
  let b = Sim.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Sim.Prng.next_int64 a)
    (Sim.Prng.next_int64 b)

let test_prng_exponential_positive () =
  let p = Sim.Prng.create ~seed:13 in
  for _ = 1 to 200 do
    check_bool "positive" true (Sim.Prng.exponential p ~mean:10.0 > 0.0)
  done

let test_prng_shuffle_permutation () =
  let p = Sim.Prng.create ~seed:17 in
  let arr = Array.init 50 (fun i -> i) in
  Sim.Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h : int Sim.Heap.t = Sim.Heap.create () in
  check_bool "empty" true (Sim.Heap.is_empty h);
  check_int "length" 0 (Sim.Heap.length h);
  check_bool "pop none" true (Sim.Heap.pop h = None);
  check_bool "peek none" true (Sim.Heap.peek_key h = None)

let test_heap_orders_by_key () =
  let h = Sim.Heap.create () in
  List.iter (fun k -> Sim.Heap.push h ~key:k k) [ 5; 1; 4; 2; 3 ];
  let popped = List.init 5 (fun _ -> match Sim.Heap.pop h with Some (k, _) -> k | None -> -1) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] popped

let test_heap_fifo_on_ties () =
  let h = Sim.Heap.create () in
  List.iter (fun v -> Sim.Heap.push h ~key:7 v) [ "a"; "b"; "c"; "d" ];
  let popped =
    List.init 4 (fun _ -> match Sim.Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c"; "d" ] popped

let test_heap_interleaved_ties () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h ~key:2 "late-a";
  Sim.Heap.push h ~key:1 "early";
  Sim.Heap.push h ~key:2 "late-b";
  let popped =
    List.init 3 (fun _ -> match Sim.Heap.pop h with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "key then seq" [ "early"; "late-a"; "late-b" ] popped

let test_heap_clear () =
  let h = Sim.Heap.create () in
  for i = 1 to 10 do
    Sim.Heap.push h ~key:i i
  done;
  Sim.Heap.clear h;
  check_bool "cleared" true (Sim.Heap.is_empty h)

let test_heap_to_list_nondestructive () =
  let h = Sim.Heap.create () in
  List.iter (fun k -> Sim.Heap.push h ~key:k k) [ 3; 1; 2 ];
  let l = Sim.Heap.to_list h in
  Alcotest.(check (list int)) "snapshot sorted" [ 1; 2; 3 ] (List.map fst l);
  check_int "heap unchanged" 3 (Sim.Heap.length h)

let prop_heap_pop_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iter (fun k -> Sim.Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Sim.Heap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let prop_heap_stable_ties =
  QCheck.Test.make ~name:"heap preserves insertion order among equal keys" ~count:200
    QCheck.(list (pair (int_bound 5) (int_bound 10000)))
    (fun items ->
      let h = Sim.Heap.create () in
      List.iter (fun (k, v) -> Sim.Heap.push h ~key:k v) items;
      let rec drain acc =
        match Sim.Heap.pop h with
        | Some (k, v) -> drain ((k, v) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      (* Stable sort of the input by key must equal pop order. *)
      popped = List.stable_sort (fun (a, _) (b, _) -> compare a b) items)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_advance_accumulates () =
  let eng = Sim.Engine.create ~seed:0 () in
  let final = ref 0 in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 10;
         Sim.Engine.advance eng 15;
         final := Sim.Engine.now eng));
  Sim.Engine.run eng;
  check_int "time accumulated" 25 !final

let test_engine_parallel_threads_overlap () =
  (* Two fibers advancing 100ns each finish at t=100, not t=200: they run
     on separate simulated cores. *)
  let eng = Sim.Engine.create ~seed:0 () in
  ignore (Sim.Engine.spawn eng (fun () -> Sim.Engine.advance eng 100));
  ignore (Sim.Engine.spawn eng (fun () -> Sim.Engine.advance eng 100));
  Sim.Engine.run eng;
  check_int "parallel finish" 100 (Sim.Engine.now eng)

let test_engine_self_ids () =
  let eng = Sim.Engine.create ~seed:0 () in
  let ids = ref [] in
  for _ = 1 to 3 do
    ignore (Sim.Engine.spawn eng (fun () -> ids := Sim.Engine.self eng :: !ids))
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "ids in spawn order" [ 0; 1; 2 ] (List.rev !ids)

let test_engine_block_wakeup () =
  let eng = Sim.Engine.create ~seed:0 () in
  let woke_at = ref (-1) in
  let sleeper =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.block eng ~reason:"test";
        woke_at := Sim.Engine.now eng)
  in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 50;
         Sim.Engine.wakeup eng sleeper));
  Sim.Engine.run eng;
  check_int "woken at waker's time" 50 !woke_at

let test_engine_pending_wakeup_permit () =
  (* Wakeup posted before the target blocks must not be lost. *)
  let eng = Sim.Engine.create ~seed:0 () in
  let done_ = ref false in
  let target =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.advance eng 100;
        (* Waker has already fired by now. *)
        Sim.Engine.block eng ~reason:"should not stick";
        done_ := true)
  in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 10;
         Sim.Engine.wakeup eng target));
  Sim.Engine.run eng;
  check_bool "permit consumed" true !done_

let test_engine_deadlock_detection () =
  let eng = Sim.Engine.create ~seed:0 () in
  ignore (Sim.Engine.spawn eng ~name:"stuck" (fun () -> Sim.Engine.block eng ~reason:"forever"));
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let raised =
    try
      Sim.Engine.run eng;
      false
    with Sim.Engine.Deadlock msg ->
      check_bool "message mentions fiber" true (contains ~sub:"stuck" msg);
      check_bool "message mentions reason" true (contains ~sub:"forever" msg);
      true
  in
  check_bool "deadlock raised" true raised

let test_engine_spawn_from_fiber () =
  let eng = Sim.Engine.create ~seed:0 () in
  let child_ran_at = ref (-1) in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 30;
         ignore
           (Sim.Engine.spawn eng (fun () ->
                Sim.Engine.advance eng 5;
                child_ran_at := Sim.Engine.now eng))));
  Sim.Engine.run eng;
  check_int "child starts at parent's time" 35 !child_ran_at

let test_engine_exit_fiber () =
  let eng = Sim.Engine.create ~seed:0 () in
  let after_exit = ref false in
  let id =
    Sim.Engine.spawn eng (fun () ->
        if true then ignore (Sim.Engine.exit_fiber eng);
        after_exit := true)
  in
  Sim.Engine.run eng;
  check_bool "code after exit not run" false !after_exit;
  check_bool "fiber finished" true (Sim.Engine.is_finished eng id)

let test_engine_wakeup_finished_noop () =
  let eng = Sim.Engine.create ~seed:0 () in
  let id = Sim.Engine.spawn eng (fun () -> ()) in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 10;
         Sim.Engine.wakeup eng id));
  Sim.Engine.run eng;
  check_bool "no crash" true true

let test_engine_blocked_reason () =
  let eng = Sim.Engine.create ~seed:0 () in
  let observed = ref None in
  let sleeper = Sim.Engine.spawn eng (fun () -> Sim.Engine.block eng ~reason:"lock:A") in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         Sim.Engine.advance eng 5;
         observed := Sim.Engine.blocked_reason eng sleeper;
         Sim.Engine.wakeup eng sleeper));
  Sim.Engine.run eng;
  Alcotest.(check (option string)) "reason visible" (Some "lock:A") !observed

let test_engine_stuck_budget () =
  let eng = Sim.Engine.create ~max_events:100 ~seed:0 () in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         while true do
           Sim.Engine.advance eng 1
         done));
  let raised = try Sim.Engine.run eng; false with Sim.Engine.Stuck _ -> true in
  check_bool "stuck raised" true raised

let test_engine_exception_propagates () =
  let eng = Sim.Engine.create ~seed:0 () in
  ignore (Sim.Engine.spawn eng (fun () -> failwith "boom"));
  let raised = try Sim.Engine.run eng; false with Failure m -> m = "boom" in
  check_bool "fiber exception escapes run" true raised

let test_engine_names () =
  let eng = Sim.Engine.create ~seed:0 () in
  let a = Sim.Engine.spawn eng ~name:"alpha" (fun () -> ()) in
  let b = Sim.Engine.spawn eng (fun () -> ()) in
  check_string "explicit name" "alpha" (Sim.Engine.name_of eng a);
  check_string "default name" "fiber-1" (Sim.Engine.name_of eng b);
  Sim.Engine.run eng;
  check_int "fiber count" 2 (Sim.Engine.fiber_count eng)

let test_engine_deterministic_interleaving () =
  (* The same program with the same seed produces the same event order. *)
  let run_once () =
    let eng = Sim.Engine.create ~seed:99 () in
    let trace = Sim.Trace.create () in
    for i = 0 to 3 do
      ignore
        (Sim.Engine.spawn eng (fun () ->
             let p = Sim.Prng.split (Sim.Engine.prng eng) in
             for step = 1 to 5 do
               Sim.Engine.advance eng (Sim.Prng.int p ~bound:20 + 1);
               Sim.Trace.record trace ~time:(Sim.Engine.now eng) ~tid:i
                 ~label:(Printf.sprintf "step%d" step)
             done))
    done;
    Sim.Engine.run eng;
    Sim.Trace.timed_hash trace
  in
  check_string "identical timed traces" (run_once ()) (run_once ())

let test_engine_zero_advance_yields () =
  (* advance 0 must not hang and must let a same-instant event run. *)
  let eng = Sim.Engine.create ~seed:0 () in
  let order = ref [] in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         order := "a1" :: !order;
         Sim.Engine.advance eng 0;
         order := "a2" :: !order));
  ignore (Sim.Engine.spawn eng (fun () -> order := "b" :: !order));
  Sim.Engine.run eng;
  Alcotest.(check (list string)) "yield interleaves" [ "a1"; "b"; "a2" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Fnv / Trace                                                        *)
(* ------------------------------------------------------------------ *)

let test_fnv_known_values () =
  (* FNV-1a 64 of the empty string is the offset basis. *)
  check_string "empty" "cbf29ce484222325" (Sim.Fnv.to_hex Sim.Fnv.init);
  (* Standard test vector: FNV-1a 64 of "a" = af63dc4c8601ec8c. *)
  check_string "a" "af63dc4c8601ec8c" (Sim.Fnv.to_hex (Sim.Fnv.string Sim.Fnv.init "a"))

let test_fnv_int_order_sensitive () =
  let h1 = Sim.Fnv.int (Sim.Fnv.int Sim.Fnv.init 1) 2 in
  let h2 = Sim.Fnv.int (Sim.Fnv.int Sim.Fnv.init 2) 1 in
  check_bool "order matters" false (h1 = h2)

let test_trace_hash_ignores_time () =
  let t1 = Sim.Trace.create () and t2 = Sim.Trace.create () in
  Sim.Trace.record t1 ~time:10 ~tid:0 ~label:"x";
  Sim.Trace.record t2 ~time:99 ~tid:0 ~label:"x";
  check_string "untimed hash equal" (Sim.Trace.hash t1) (Sim.Trace.hash t2);
  check_bool "timed hash differs" false (Sim.Trace.timed_hash t1 = Sim.Trace.timed_hash t2)

let test_trace_capture_off () =
  let t = Sim.Trace.create ~capture:false () in
  Sim.Trace.record t ~time:1 ~tid:0 ~label:"x";
  check_int "counted" 1 (Sim.Trace.length t);
  check_bool "not captured" true (Sim.Trace.events t = [])

let test_trace_events_recording_order () =
  let t = Sim.Trace.create () in
  let recorded = [ (5, 2, "c"); (1, 0, "a"); (9, 1, "b") ] in
  List.iter (fun (time, tid, label) -> Sim.Trace.record t ~time ~tid ~label) recorded;
  (* events must preserve recording order, NOT sort by timestamp. *)
  let got =
    List.map
      (fun (e : Sim.Trace.event) -> (e.Sim.Trace.time, e.Sim.Trace.tid, e.Sim.Trace.label))
      (Sim.Trace.events t)
  in
  Alcotest.(check (list (triple int int string))) "recording order" recorded got

let test_trace_order_sensitivity () =
  let t1 = Sim.Trace.create () and t2 = Sim.Trace.create () in
  Sim.Trace.record t1 ~time:0 ~tid:0 ~label:"a";
  Sim.Trace.record t1 ~time:0 ~tid:1 ~label:"b";
  Sim.Trace.record t2 ~time:0 ~tid:1 ~label:"b";
  Sim.Trace.record t2 ~time:0 ~tid:0 ~label:"a";
  check_bool "different order, different hash" false (Sim.Trace.hash t1 = Sim.Trace.hash t2)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                        *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_all_indices () =
  let p = Sim.Par.create_pool ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Sim.Par.shutdown_pool p)
    (fun () ->
      let n = 1000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Sim.Par.run_pool p n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h -> check_int (Printf.sprintf "index %d exactly once" i) 1 (Atomic.get h))
        hits)

(* Regression for the back-to-back straggler race: a worker preempted
   between claiming an index and checking it against the job bound must
   not be able to run (or double-complete) an index of the *next* job
   after dispatch reuses the pool.  Alternating tiny and large counts
   maximizes the window where a straggler's stale claim would fall
   inside the next job's range; per-index atomic counters catch any
   duplicate execution. *)
let test_pool_back_to_back_exactly_once () =
  let p = Sim.Par.create_pool ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Sim.Par.shutdown_pool p)
    (fun () ->
      let rounds = 400 in
      for r = 0 to rounds - 1 do
        let n = if r mod 2 = 0 then 2 else 64 in
        let hits = Array.init n (fun _ -> Atomic.make 0) in
        Sim.Par.run_pool p n (fun i -> Atomic.incr hits.(i));
        Array.iteri
          (fun i h ->
            check_int (Printf.sprintf "round %d index %d exactly once" r i) 1
              (Atomic.get h))
          hits
      done)

let test_pool_exception_drains_and_reraises () =
  let p = Sim.Par.create_pool ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Sim.Par.shutdown_pool p)
    (fun () ->
      let ran = Atomic.make 0 in
      (match Sim.Par.run_pool p 32 (fun i ->
                 Atomic.incr ran;
                 if i = 7 then failwith "boom")
       with
      | () -> Alcotest.fail "expected exception"
      | exception Failure m -> check_string "exception propagated" "boom" m);
      (* Every index was claimed and completed despite the failure, and
         the pool is reusable afterwards. *)
      check_int "all indices ran" 32 (Atomic.get ran);
      let again = Atomic.make 0 in
      Sim.Par.run_pool p 16 (fun _ -> Atomic.incr again);
      check_int "pool reusable after exception" 16 (Atomic.get again))

let () =
  Alcotest.run "sim"
    [
      ( "prng",
        [
          Alcotest.test_case "same seed same stream" `Quick test_prng_same_seed_same_stream;
          Alcotest.test_case "different seeds differ" `Quick test_prng_different_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "jitter bounds" `Quick test_prng_jitter_bounds;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy preserves state" `Quick test_prng_copy_preserves_state;
          Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "orders by key" `Quick test_heap_orders_by_key;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "interleaved ties" `Quick test_heap_interleaved_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "to_list nondestructive" `Quick test_heap_to_list_nondestructive;
          QCheck_alcotest.to_alcotest prop_heap_pop_sorted;
          QCheck_alcotest.to_alcotest prop_heap_stable_ties;
        ] );
      ( "engine",
        [
          Alcotest.test_case "advance accumulates" `Quick test_engine_advance_accumulates;
          Alcotest.test_case "parallel overlap" `Quick test_engine_parallel_threads_overlap;
          Alcotest.test_case "self ids" `Quick test_engine_self_ids;
          Alcotest.test_case "block/wakeup" `Quick test_engine_block_wakeup;
          Alcotest.test_case "pending wakeup permit" `Quick test_engine_pending_wakeup_permit;
          Alcotest.test_case "deadlock detection" `Quick test_engine_deadlock_detection;
          Alcotest.test_case "spawn from fiber" `Quick test_engine_spawn_from_fiber;
          Alcotest.test_case "exit fiber" `Quick test_engine_exit_fiber;
          Alcotest.test_case "wakeup finished noop" `Quick test_engine_wakeup_finished_noop;
          Alcotest.test_case "blocked reason" `Quick test_engine_blocked_reason;
          Alcotest.test_case "stuck budget" `Quick test_engine_stuck_budget;
          Alcotest.test_case "exception propagates" `Quick test_engine_exception_propagates;
          Alcotest.test_case "names" `Quick test_engine_names;
          Alcotest.test_case "deterministic interleaving" `Quick test_engine_deterministic_interleaving;
          Alcotest.test_case "zero advance yields" `Quick test_engine_zero_advance_yields;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs all indices" `Quick test_pool_runs_all_indices;
          Alcotest.test_case "back-to-back exactly once" `Quick
            test_pool_back_to_back_exactly_once;
          Alcotest.test_case "exception drains and reraises" `Quick
            test_pool_exception_drains_and_reraises;
        ] );
      ( "fnv-trace",
        [
          Alcotest.test_case "fnv known values" `Quick test_fnv_known_values;
          Alcotest.test_case "fnv int order sensitive" `Quick test_fnv_int_order_sensitive;
          Alcotest.test_case "trace hash ignores time" `Quick test_trace_hash_ignores_time;
          Alcotest.test_case "trace capture off" `Quick test_trace_capture_off;
          Alcotest.test_case "trace events recording order" `Quick
            test_trace_events_recording_order;
          Alcotest.test_case "trace order sensitivity" `Quick test_trace_order_sensitivity;
        ] );
    ]

(* Tests for the real-parallel task layer: the Chase–Lev deque (Wsq),
   the Michael–Scott injection queue (Mpmc) and the work-stealing
   green-thread scheduler (Sched).  The qcheck properties run real
   Domain.spawn racers, so they exercise the lock-free paths under
   genuine (if modest) parallelism. *)

let check_int = Alcotest.(check int)
let sorted l = List.sort compare l

(* ------------------------------------------------------------------ *)
(* Wsq: directed                                                       *)
(* ------------------------------------------------------------------ *)

let test_wsq_lifo_owner () =
  let q = Sim.Wsq.create () in
  List.iter (Sim.Wsq.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "pop newest" (Some 3) (Sim.Wsq.pop q);
  Alcotest.(check (option int)) "then 2" (Some 2) (Sim.Wsq.pop q);
  Sim.Wsq.push q 4;
  Alcotest.(check (option int)) "then 4" (Some 4) (Sim.Wsq.pop q);
  Alcotest.(check (option int)) "then 1" (Some 1) (Sim.Wsq.pop q);
  Alcotest.(check (option int)) "empty" None (Sim.Wsq.pop q)

let test_wsq_fifo_thief () =
  let q = Sim.Wsq.create () in
  List.iter (Sim.Wsq.push q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Sim.Wsq.steal q);
  Alcotest.(check (option int)) "then 2" (Some 2) (Sim.Wsq.steal q);
  Alcotest.(check (option int)) "then 3" (Some 3) (Sim.Wsq.steal q);
  Alcotest.(check (option int)) "empty" None (Sim.Wsq.steal q)

let test_wsq_grows () =
  let q = Sim.Wsq.create () in
  let n = 10_000 in
  for i = 1 to n do
    Sim.Wsq.push q i
  done;
  check_int "size" n (Sim.Wsq.size q);
  let seen = ref 0 in
  let rec drain () =
    match Sim.Wsq.pop q with
    | Some _ ->
        incr seen;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "drained all" n !seen

(* ------------------------------------------------------------------ *)
(* Wsq: owner/thief exactly-once under real domains                    *)
(* ------------------------------------------------------------------ *)

let prop_wsq_exactly_once =
  QCheck.Test.make ~name:"wsq delivers each element exactly once (owner + 2 thieves)"
    ~count:30
    QCheck.(pair (list_of_size Gen.(int_range 0 400) (int_bound 100_000)) (int_bound 2))
    (fun (items, pop_stride) ->
      let q = Sim.Wsq.create () in
      let done_pushing = Atomic.make false in
      let thief () =
        let got = ref [] in
        (* Keep stealing until the owner is finished AND the deque has
           drained: after that point nothing can reappear. *)
        let rec go () =
          match Sim.Wsq.steal q with
          | Some v ->
              got := v :: !got;
              go ()
          | None -> if Atomic.get done_pushing then !got else (Domain.cpu_relax (); go ())
        in
        go ()
      in
      let thieves = [ Domain.spawn thief; Domain.spawn thief ] in
      let owner_got = ref [] in
      List.iteri
        (fun i v ->
          Sim.Wsq.push q v;
          (* Interleave owner pops with pushes to hit the bottom/top
             CAS race on the last element. *)
          if pop_stride > 0 && i mod (pop_stride + 1) = 0 then
            match Sim.Wsq.pop q with
            | Some v -> owner_got := v :: !owner_got
            | None -> ())
        items;
      let rec drain () =
        match Sim.Wsq.pop q with
        | Some v ->
            owner_got := v :: !owner_got;
            drain ()
        | None -> ()
      in
      drain ();
      Atomic.set done_pushing true;
      let stolen = List.concat_map Domain.join thieves in
      sorted (stolen @ !owner_got) = sorted items)

(* ------------------------------------------------------------------ *)
(* Mpmc                                                                *)
(* ------------------------------------------------------------------ *)

let test_mpmc_fifo_single () =
  let q = Sim.Mpmc.create () in
  Alcotest.(check bool) "starts empty" true (Sim.Mpmc.is_empty q);
  List.iter (Sim.Mpmc.push q) [ 1; 2; 3 ];
  Alcotest.(check bool) "non-empty" false (Sim.Mpmc.is_empty q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Sim.Mpmc.pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Sim.Mpmc.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Sim.Mpmc.pop q);
  Alcotest.(check (option int)) "empty" None (Sim.Mpmc.pop q)

let prop_mpmc_counts =
  QCheck.Test.make
    ~name:"mpmc delivers the pushed multiset exactly once (P producers, C consumers)"
    ~count:30
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 300))
    (fun (producers, consumers, per_producer) ->
      let q = Sim.Mpmc.create () in
      let total = producers * per_producer in
      let remaining = Atomic.make total in
      let producer p () =
        for i = 0 to per_producer - 1 do
          Sim.Mpmc.push q ((p * 1_000_000) + i)
        done
      in
      let consumer () =
        let got = ref [] in
        let rec go () =
          if Atomic.get remaining = 0 then !got
          else
            match Sim.Mpmc.pop q with
            | Some v ->
                Atomic.decr remaining;
                got := v :: !got;
                go ()
            | None ->
                Domain.cpu_relax ();
                go ()
        in
        go ()
      in
      let cs = List.init consumers (fun _ -> Domain.spawn consumer) in
      let ps = List.init producers (fun p -> Domain.spawn (producer p)) in
      List.iter Domain.join ps;
      let popped = List.concat_map Domain.join cs in
      let pushed =
        List.concat (List.init producers (fun p ->
            List.init per_producer (fun i -> (p * 1_000_000) + i)))
      in
      sorted popped = sorted pushed)

(* ------------------------------------------------------------------ *)
(* Sched: directed                                                     *)
(* ------------------------------------------------------------------ *)

let test_sched_runs_all_greens () =
  List.iter
    (fun workers ->
      let s = Sim.Sched.create ~workers () in
      let n = 50 in
      let ran = Array.make n 0 in
      for i = 0 to n - 1 do
        (* Green bodies hold the GRL, so the plain array write is safe. *)
        ignore (Sim.Sched.spawn s ~name:(Printf.sprintf "g%d" i) (fun () ->
            ran.(i) <- ran.(i) + 1))
      done;
      Sim.Sched.run s;
      Array.iteri
        (fun i c -> check_int (Printf.sprintf "workers=%d green %d ran once" workers i) 1 c)
        ran)
    [ 1; 2; 4 ]

let test_sched_block_wakeup () =
  let s = Sim.Sched.create ~workers:2 () in
  let order = ref [] in
  let blocker =
    Sim.Sched.spawn s ~name:"blocker" (fun () ->
        order := "pre" :: !order;
        Sim.Sched.block s ~reason:"test";
        order := "post" :: !order)
  in
  ignore
    (Sim.Sched.spawn s ~name:"waker" (fun () ->
         order := "wake" :: !order;
         Sim.Sched.wakeup s blocker));
  Sim.Sched.run s;
  Alcotest.(check (list string)) "blocker resumed after wake"
    [ "pre"; "wake"; "post" ] (List.rev !order)

let test_sched_pending_permit () =
  (* A wakeup delivered while the green is running leaves a permit that
     the next block consumes without suspending. *)
  let s = Sim.Sched.create ~workers:1 () in
  let g =
    Sim.Sched.spawn s ~name:"self" (fun () ->
        (* Green ids are sequential from 0 and this is the first spawn. *)
        Sim.Sched.wakeup s 0;
        Sim.Sched.block s ~reason:"should not suspend")
  in
  check_int "first green id" 0 g;
  Sim.Sched.run s

let test_sched_spawn_from_green () =
  let s = Sim.Sched.create ~workers:2 () in
  let hits = Atomic.make 0 in
  ignore
    (Sim.Sched.spawn s ~name:"parent" (fun () ->
         for _ = 1 to 10 do
           ignore (Sim.Sched.spawn s ~name:"child" (fun () -> Atomic.incr hits))
         done));
  Sim.Sched.run s;
  check_int "all children ran" 10 (Atomic.get hits)

let test_sched_exception_propagates () =
  let s = Sim.Sched.create ~workers:2 () in
  ignore (Sim.Sched.spawn s ~name:"ok" (fun () -> ()));
  ignore (Sim.Sched.spawn s ~name:"boom" (fun () -> failwith "boom"));
  match Sim.Sched.run s with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

let test_sched_deadlock_detection () =
  let s = Sim.Sched.create ~workers:2 () in
  ignore (Sim.Sched.spawn s ~name:"stuck" (fun () -> Sim.Sched.block s ~reason:"forever"));
  match Sim.Sched.run s with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the green" true (contains msg "stuck")

(* ------------------------------------------------------------------ *)
(* Par-vs-deque equivalence on existing pool jobs                      *)
(* ------------------------------------------------------------------ *)

let prop_par_vs_sched_equivalence =
  QCheck.Test.make
    ~name:"Par.map_list and a Sched fan-out agree with the sequential map" ~count:20
    QCheck.(list_of_size Gen.(int_range 0 60) (int_bound 10_000))
    (fun inputs ->
      let f x = (x * x) + (x lsr 3) in
      let expected = List.map f inputs in
      let saved = Sim.Par.jobs () in
      Sim.Par.set_jobs 2;
      let via_par = Sim.Par.map_list f inputs in
      Sim.Par.set_jobs saved;
      Sim.Par.shutdown_shared ();
      let via_sched =
        let s = Sim.Sched.create ~workers:2 () in
        let out = Array.make (List.length inputs) 0 in
        List.iteri
          (fun i x ->
            ignore (Sim.Sched.spawn s ~name:(Printf.sprintf "job%d" i) (fun () ->
                out.(i) <- f x)))
          inputs;
        Sim.Sched.run s;
        Array.to_list out
      in
      via_par = expected && via_sched = expected)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "workstealing"
    [
      ( "wsq",
        [
          Alcotest.test_case "owner LIFO" `Quick test_wsq_lifo_owner;
          Alcotest.test_case "thief FIFO" `Quick test_wsq_fifo_thief;
          Alcotest.test_case "grows past initial capacity" `Quick test_wsq_grows;
          QCheck_alcotest.to_alcotest prop_wsq_exactly_once;
        ] );
      ( "mpmc",
        [
          Alcotest.test_case "fifo single domain" `Quick test_mpmc_fifo_single;
          QCheck_alcotest.to_alcotest prop_mpmc_counts;
        ] );
      ( "sched",
        [
          Alcotest.test_case "runs all greens at 1/2/4 workers" `Quick
            test_sched_runs_all_greens;
          Alcotest.test_case "block/wakeup" `Quick test_sched_block_wakeup;
          Alcotest.test_case "pending wakeup permit" `Quick test_sched_pending_permit;
          Alcotest.test_case "spawn from green" `Quick test_sched_spawn_from_green;
          Alcotest.test_case "exception propagates" `Quick test_sched_exception_propagates;
          Alcotest.test_case "deadlock detection" `Quick test_sched_deadlock_detection;
          QCheck_alcotest.to_alcotest prop_par_vs_sched_equivalence;
        ] );
    ]

(* Tests for lib/replay: faithful replay on the deterministic runtimes,
   seed-pinned replay of pthreads interleavings, divergence localization
   on perturbed logs, Rt_event/Schedule JSON round-trips, recording
   neutrality, scripted overflow policies and the schedule explorer. *)

module Ev = Runtime.Rt_event
module Sch = Replay.Schedule
module Rep = Replay.Replayer
module Exp = Replay.Explore
module Res = Stats.Run_result
module Ofp = Detclock.Overflow_policy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let program_of name = (Workload.Registry.find name).Workload.Registry.program

let record_det ?(name = "kmeans") ?(seed = 3) ?(nthreads = 8) () =
  Sch.record Runtime.Run.consequence_ic ~seed ~nthreads (program_of name)

(* ------------------------------------------------------------------ *)
(* Faithful replay                                                    *)
(* ------------------------------------------------------------------ *)

let test_det_replay_faithful () =
  let log, res = record_det () in
  let o = Rep.replay log (program_of "kmeans") in
  check_bool "replay ok" true (Rep.ok o);
  check_bool "no divergence" true (o.Rep.divergence = None);
  check_int "every event checked" (Sch.length log) o.Rep.checked;
  check_string "same mem hash" res.Res.mem_hash o.Rep.result.Res.mem_hash;
  check_int "same simulated wall time" res.Res.wall_ns o.Rep.result.Res.wall_ns

let test_det_replay_has_boundaries () =
  (* The scripted replay must actually be driven by recorded overflow
     boundaries — an empty script would make the test above vacuous. *)
  let log, _ = record_det () in
  let b = Sch.boundaries log in
  let total = Array.fold_left (fun a per -> a + Array.length per) 0 b in
  check_bool "recorded some overflow boundaries" true (total > 50);
  Array.iter
    (fun per ->
      Array.iteri
        (fun i ic ->
          check_bool "positive" true (ic > 0);
          if i > 0 then check_bool "strictly ascending" true (ic > per.(i - 1)))
        per)
    b

let test_pthreads_pinning () =
  (* A pthreads log pins one seeded interleaving: replaying it must
     reproduce the final workspace hash exactly, byte-identically across
     repetitions. *)
  List.iter
    (fun seed ->
      let prog = program_of "histogram" in
      let log, res = Sch.record Runtime.Run.pthreads ~seed ~nthreads:8 prog in
      let outcomes = List.init 5 (fun _ -> Rep.replay log prog) in
      List.iter
        (fun o ->
          check_bool "pthreads replay ok" true (Rep.ok o);
          check_string "workspace hash reproduced" res.Res.mem_hash
            o.Rep.result.Res.mem_hash)
        outcomes;
      let witnesses =
        List.map (fun o -> Res.deterministic_witness o.Rep.result) outcomes
      in
      check_int "byte-identical across 5 repetitions" 1
        (List.length (List.sort_uniq compare witnesses)))
    [ 2; 9; 23 ]

let prop_registry_record_replay =
  (* E2E: record -> replay is hash-identical for registry workloads under
     consequence-ic, for arbitrary seeds. *)
  let names = Array.of_list Workload.Registry.names in
  QCheck.Test.make ~name:"registry workloads: record -> replay is hash-identical" ~count:10
    QCheck.(pair (int_bound (Array.length names - 1)) (int_range 1 50))
    (fun (k, seed) ->
      let prog = program_of names.(k) in
      let log, res = Sch.record Runtime.Run.consequence_ic ~seed ~nthreads:4 prog in
      let o = Rep.replay log prog in
      Rep.ok o && o.Rep.result.Res.mem_hash = res.Res.mem_hash)

let prop_pthreads_replay_byte_identical =
  QCheck.Test.make ~name:"pthreads: replay byte-identical across 5 repetitions per seed"
    ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let prog = program_of "histogram" in
      let log, _ = Sch.record Runtime.Run.pthreads ~seed ~nthreads:4 prog in
      let witnesses =
        List.init 5 (fun _ -> Res.deterministic_witness (Rep.replay log prog).Rep.result)
      in
      List.length (List.sort_uniq compare witnesses) = 1 && Rep.ok (Rep.replay log prog))

let test_whole_registry_once () =
  (* Deterministic sweep over every workload (the qcheck property above
     samples; this covers). *)
  List.iter
    (fun name ->
      let prog = program_of name in
      let log, _ = Sch.record Runtime.Run.consequence_ic ~seed:1 ~nthreads:4 prog in
      let o = Rep.replay log prog in
      if not (Rep.ok o) then
        Alcotest.failf "replay of %s diverged: %s" name
          (Format.asprintf "%a" Rep.pp_outcome o))
    Workload.Registry.names

let test_domains_log_replays_on_des () =
  (* A schedule recorded under the real-multicore runtime must resolve
     by name ("consequence-ic-domains" is not in [Run.all]) and replay
     on the scripted DES with identical witnesses — regression for the
     [runtime_of] lookup.  The event-by-event walk is skipped for
     domains logs (their global interleave is timing-dependent), so
     faithfulness here means witness identity, not stream identity. *)
  let prog = program_of "kmeans" in
  let log, res = Sch.record Runtime.Run.domains ~seed:3 ~nthreads:8 prog in
  check_string "log names the domains preset" "consequence-ic-domains"
    log.Sch.meta.Sch.runtime;
  let o = Rep.replay log prog in
  check_bool "replay ok" true (Rep.ok o);
  check_bool "no divergence reported" true (o.Rep.divergence = None);
  check_int "event walk skipped" 0 o.Rep.checked;
  check_bool "witnesses match" true o.Rep.hash_match;
  check_string "same mem hash" res.Res.mem_hash o.Rep.result.Res.mem_hash

(* ------------------------------------------------------------------ *)
(* Recording neutrality                                               *)
(* ------------------------------------------------------------------ *)

let test_record_is_simulation_neutral () =
  (* The observer charges no simulated time: a recorded run's wall time
     and witnesses are identical to an untracked run's. *)
  List.iter
    (fun rt ->
      let prog = program_of "kmeans" in
      let bare = Runtime.Run.run rt ~seed:5 ~nthreads:8 prog in
      let _, recorded = Sch.record rt ~seed:5 ~nthreads:8 prog in
      check_int "wall_ns identical" bare.Res.wall_ns recorded.Res.wall_ns;
      check_string "witness identical" (Res.deterministic_witness bare)
        (Res.deterministic_witness recorded))
    [ Runtime.Run.consequence_ic; Runtime.Run.consequence_rr; Runtime.Run.pthreads ]

(* ------------------------------------------------------------------ *)
(* Divergence localization                                            *)
(* ------------------------------------------------------------------ *)

(* The chunk ordinal of [tid] at event [index]: chunk-end boundaries
   recorded before it (computed independently of Schedule.chunk_of). *)
let expected_chunk events ~index ~tid =
  let c = ref 0 in
  Array.iteri
    (fun i ev ->
      match ev with
      | Ev.Boundary { tid = t; overflow = false; _ } when i < index && t = tid -> incr c
      | _ -> ())
    events;
  !c

let find_event ?(from = 0) events p =
  let found = ref None in
  Array.iteri (fun i ev -> if !found = None && i >= from && p ev then found := Some i) events;
  match !found with Some i -> i | None -> Alcotest.fail "expected event kind not recorded"

let perturbed_replay log events = Rep.replay { log with Sch.events } (program_of "kmeans")

let test_divergence_localizes_commit_hash () =
  (* Corrupt one recorded commit digest late in the log: the divergence
     detector must name exactly that event, its thread and its chunk. *)
  let log, _ = record_det () in
  let events = Array.copy log.Sch.events in
  let n = Array.length events in
  let i =
    find_event ~from:(n / 2) events (function Ev.Commit_hash _ -> true | _ -> false)
  in
  let tid =
    match events.(i) with
    | Ev.Commit_hash { tid; version; _ } ->
        events.(i) <- Ev.Commit_hash { tid; version; hash = "deadbeef" };
        tid
    | _ -> assert false
  in
  let o = perturbed_replay log events in
  match o.Rep.divergence with
  | None -> Alcotest.fail "perturbed log replayed without divergence"
  | Some d ->
      check_int "localized to the perturbed event" i d.Rep.index;
      check_int "correct thread" tid d.Rep.tid;
      check_int "correct chunk index" (expected_chunk events ~index:i ~tid) d.Rep.chunk_index;
      check_int "all prior events matched" i o.Rep.checked;
      check_bool "expected is the corrupted digest" true (d.Rep.expected = Some events.(i));
      check_bool "actual is the true digest" true
        (match d.Rep.actual with
        | Some (Ev.Commit_hash { hash; _ }) -> hash <> "deadbeef"
        | _ -> false);
      check_bool "context contains the divergence point" true (List.mem_assoc i d.Rep.context)

let test_divergence_localizes_chunk_end () =
  (* Chunk-end boundaries are placed by the program's own sync ops, so a
     shifted one cannot be reproduced and must be flagged at its exact
     stream position. *)
  let log, _ = record_det () in
  let events = Array.copy log.Sch.events in
  let i =
    find_event events (function Ev.Boundary { overflow = false; _ } -> true | _ -> false)
  in
  let tid =
    match events.(i) with
    | Ev.Boundary { tid; ic; overflow = false } ->
        events.(i) <- Ev.Boundary { tid; ic = ic + 1; overflow = false };
        tid
    | _ -> assert false
  in
  let o = perturbed_replay log events in
  match o.Rep.divergence with
  | None -> Alcotest.fail "shifted chunk-end replayed without divergence"
  | Some d ->
      check_int "localized to the shifted boundary" i d.Rep.index;
      check_int "correct thread" tid d.Rep.tid;
      check_int "correct chunk index" (expected_chunk events ~index:i ~tid) d.Rep.chunk_index

let test_truncated_log_reports_extra_events () =
  let log, _ = record_det () in
  let n = Array.length log.Sch.events in
  let events = Array.sub log.Sch.events 0 (n / 2) in
  let o = perturbed_replay log events in
  match o.Rep.divergence with
  | None -> Alcotest.fail "truncated log replayed without divergence"
  | Some d ->
      check_int "flagged at the log's end" (n / 2) d.Rep.index;
      check_bool "expected nothing" true (d.Rep.expected = None);
      check_bool "actual is the surplus event" true (d.Rep.actual <> None)

let test_kv_abort_events_recorded_and_checked () =
  (* The KV service's abort/retry decisions are first-class deterministic
     events: the recorded stream must carry them (kv_zipf is the most
     contended shape), a faithful replay must walk straight through, and
     corrupting one abort's retry count must be flagged at exactly that
     stream position. *)
  let prog = program_of "kv_zipf" in
  let log, res = Sch.record Runtime.Run.consequence_ic ~seed:1 ~nthreads:4 prog in
  let aborts =
    Array.fold_left
      (fun n ev -> match ev with Ev.Txn_abort _ -> n + 1 | _ -> n)
      0 log.Sch.events
  in
  check_int "abort events recorded"
    (Obs.Metrics.counter_value res.Res.metrics "kv:aborts")
    aborts;
  check_bool "contended shape actually aborts" true (aborts > 0);
  let o = Rep.replay log prog in
  check_bool "faithful replay" true (Rep.ok o);
  check_int "every event checked" (Sch.length log) o.Rep.checked;
  let events = Array.copy log.Sch.events in
  let i = find_event events (function Ev.Txn_abort _ -> true | _ -> false) in
  (match events.(i) with
  | Ev.Txn_abort { tid; seq; retries } ->
      events.(i) <- Ev.Txn_abort { tid; seq; retries = retries + 1 }
  | _ -> assert false);
  let o = Rep.replay { log with Sch.events } prog in
  match o.Rep.divergence with
  | None -> Alcotest.fail "corrupted abort event replayed without divergence"
  | Some d -> check_int "localized to the corrupted abort" i d.Rep.index

let test_tune_decisions_recorded_and_checked () =
  (* With the self-tuning controller on, each milestone decision is a
     first-class deterministic event: the recording must carry one per
     (thread, epoch), a scripted replay — with the tune params still in
     the config, since "-tuned" is not a preset name — must re-derive
     and match every one, and corrupting a decision's coarsening value
     must be flagged at exactly that stream position. *)
  let prog = program_of "kmeans" in
  let tuned = Runtime.Config.with_adaptive_tuning Runtime.Config.consequence_ic in
  let log, _ = Sch.record (Runtime.Run.Det tuned) ~seed:3 ~nthreads:8 prog in
  let decisions =
    Array.fold_left
      (fun n ev -> match ev with Ev.Tune_decision _ -> n + 1 | _ -> n)
      0 log.Sch.events
  in
  check_bool "decisions recorded" true (decisions > 0);
  let scripted =
    Runtime.Config.with_scripted_schedule tuned ~boundaries:(Sch.boundaries log)
  in
  let o = Rep.replay ~runtime:(Runtime.Run.Det scripted) log prog in
  check_bool "faithful replay" true (Rep.ok o);
  check_int "every event checked" (Sch.length log) o.Rep.checked;
  let events = Array.copy log.Sch.events in
  let i = find_event events (function Ev.Tune_decision _ -> true | _ -> false) in
  (match events.(i) with
  | Ev.Tune_decision { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap }
    ->
      events.(i) <-
        Ev.Tune_decision
          { tid; epoch; ic; chunk_base; chunk_cap; coarsen = coarsen + 1; coarsen_floor; coarsen_cap }
  | _ -> assert false);
  let o = Rep.replay ~runtime:(Runtime.Run.Det scripted) { log with Sch.events } prog in
  match o.Rep.divergence with
  | None -> Alcotest.fail "corrupted tune decision replayed without divergence"
  | Some d -> check_int "localized to the corrupted decision" i d.Rep.index

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let gen_event =
  let open QCheck.Gen in
  let tid = int_bound 64 in
  let short_string = string_size ~gen:printable (int_range 0 12) in
  oneof
    [
      map3 (fun tid version pages -> Ev.Commit { tid; version; pages }) tid (int_bound 5000)
        (list_size (int_bound 6) (int_bound 255));
      map2 (fun tid obj -> Ev.Release { tid; obj }) tid short_string;
      map2 (fun tid obj -> Ev.Acquire { tid; obj }) tid short_string;
      map3
        (fun (tid, version) (page, first_byte) (last_byte, (loser_tid, loser_version)) ->
          Ev.Conflict { tid; version; page; first_byte; last_byte; loser_tid; loser_version })
        (pair tid (int_bound 5000))
        (pair (int_bound 255) (int_bound 4096))
        (pair (int_bound 4096) (pair tid (int_bound 5000)));
      map3 (fun tid ic overflow -> Ev.Boundary { tid; ic; overflow }) tid (int_bound 1_000_000)
        bool;
      map3 (fun tid version hash -> Ev.Commit_hash { tid; version; hash }) tid (int_bound 5000)
        short_string;
      map3 (fun tid seq retries -> Ev.Txn_abort { tid; seq; retries }) tid (int_bound 10_000)
        (int_bound 32);
      map3
        (fun (tid, epoch) (ic, (chunk_base, chunk_cap)) (coarsen, (coarsen_floor, coarsen_cap)) ->
          Ev.Tune_decision
            { tid; epoch; ic; chunk_base; chunk_cap; coarsen; coarsen_floor; coarsen_cap })
        (pair tid (int_bound 12))
        (pair (int_bound 1_000_000) (pair (int_bound 100_000) (int_bound 1_000_000)))
        (pair (int_bound 1_000_000) (pair (int_bound 100_000) (int_bound 4_000_000)));
    ]

let arb_event = QCheck.make ~print:(Format.asprintf "%a" Ev.pp) gen_event

let prop_event_json_roundtrip =
  QCheck.Test.make ~name:"Rt_event.of_json inverts to_json" ~count:500 arb_event (fun ev ->
      match Ev.of_json (Ev.to_json ev) with Ok ev' -> ev = ev' | Error _ -> false)

let prop_event_json_roundtrip_through_text =
  (* Through the printer and parser, as the .schedule.json files are. *)
  QCheck.Test.make ~name:"Rt_event JSON survives print + parse" ~count:200 arb_event (fun ev ->
      match Obs.Json.parse (Obs.Json.to_string (Ev.to_json ev)) with
      | Ok j -> Ev.of_json j = Ok ev
      | Error _ -> false)

let test_event_of_json_errors () =
  let check_err j =
    match Ev.of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "malformed event accepted"
  in
  check_err (Obs.Json.Obj [ ("kind", Obs.Json.String "nonsense") ]);
  check_err (Obs.Json.Obj [ ("kind", Obs.Json.String "commit"); ("tid", Obs.Json.Int 1) ]);
  check_err
    (Obs.Json.Obj
       [
         ("kind", Obs.Json.String "boundary");
         ("tid", Obs.Json.String "oops");
         ("ic", Obs.Json.Int 3);
         ("overflow", Obs.Json.Bool true);
       ]);
  check_err Obs.Json.Null

let test_schedule_file_roundtrip () =
  let log, _ = record_det () in
  let path = Filename.temp_file "consequence" ".schedule.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sch.save log path;
      match Sch.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok log' ->
          check_bool "meta round-trips" true (log'.Sch.meta = log.Sch.meta);
          check_bool "events round-trip" true (log'.Sch.events = log.Sch.events));
  match Sch.load "/nonexistent/file.schedule.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file succeeded"

(* ------------------------------------------------------------------ *)
(* Scripted overflow policy                                           *)
(* ------------------------------------------------------------------ *)

let test_scripted_policy_intervals () =
  let p = Ofp.create (Ofp.Scripted [| 10; 25; 40 |]) in
  check_int "first boundary" 10 (Ofp.next_interval ~ic:0 p ~waiter_gap:0);
  check_int "from inside first gap" 3 (Ofp.next_interval ~ic:7 p ~waiter_gap:0);
  check_int "skips passed boundaries" 5 (Ofp.next_interval ~ic:20 p ~waiter_gap:0);
  check_int "exact hit advances" 15 (Ofp.next_interval ~ic:25 p ~waiter_gap:123);
  check_bool "exhausted script publishes only at sync ops" true
    (Ofp.next_interval ~ic:40 p ~waiter_gap:0 > 1_000_000_000);
  check_int "intervals handed out" 5 (Ofp.overflows_scheduled p)

let test_scripted_policy_validation () =
  let must_reject b =
    match Ofp.create (Ofp.Scripted b) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid script accepted"
  in
  must_reject [| 5; 5 |];
  must_reject [| 10; 7 |];
  must_reject [| 0 |];
  ignore (Ofp.create (Ofp.Scripted [||]));
  ignore (Ofp.create (Ofp.Scripted [| 1 |]))

(* ------------------------------------------------------------------ *)
(* Explorer                                                           *)
(* ------------------------------------------------------------------ *)

let test_explorer_invariants () =
  let log, _ = record_det () in
  let r = Exp.explore ~variants:8 log (program_of "kmeans") in
  check_bool "generated variants" true (List.length r.Exp.variants >= 4);
  check_bool "schedules genuinely differed" true (r.Exp.distinct_timings > 1);
  check_int "single witness across the neighborhood" 1 r.Exp.distinct_witnesses;
  check_bool "deterministic" true r.Exp.deterministic;
  check_bool "race verdicts stable" true r.Exp.conflicts_stable

let test_explorer_is_deterministic () =
  let log, _ = record_det () in
  let prog = program_of "kmeans" in
  let a = Exp.explore ~variants:5 ~seed:11 log prog in
  let b = Exp.explore ~variants:5 ~seed:11 log prog in
  check_bool "same exploration for same seed" true
    (List.map (fun v -> (v.Exp.description, v.Exp.witness)) a.Exp.variants
    = List.map (fun v -> (v.Exp.description, v.Exp.witness)) b.Exp.variants)

let test_explorer_rejects_pthreads () =
  let log, _ = Sch.record Runtime.Run.pthreads ~seed:2 ~nthreads:4 (program_of "histogram") in
  match Exp.explore ~variants:2 log (program_of "histogram") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "explorer accepted a pthreads log"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "replay"
    [
      ( "faithful",
        [
          Alcotest.test_case "det replay reproduces run" `Quick test_det_replay_faithful;
          Alcotest.test_case "boundaries recorded and sane" `Quick
            test_det_replay_has_boundaries;
          Alcotest.test_case "pthreads pinning x5" `Quick test_pthreads_pinning;
          Alcotest.test_case "whole registry" `Quick test_whole_registry_once;
          Alcotest.test_case "domains log replays on the DES" `Quick
            test_domains_log_replays_on_des;
          QCheck_alcotest.to_alcotest prop_registry_record_replay;
          QCheck_alcotest.to_alcotest prop_pthreads_replay_byte_identical;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "recording charges no simulated time" `Quick
            test_record_is_simulation_neutral;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "commit-hash corruption localized" `Quick
            test_divergence_localizes_commit_hash;
          Alcotest.test_case "shifted chunk-end localized" `Quick
            test_divergence_localizes_chunk_end;
          Alcotest.test_case "tune decisions recorded and checked" `Quick
            test_tune_decisions_recorded_and_checked;
          Alcotest.test_case "kv abort events recorded and checked" `Quick
            test_kv_abort_events_recorded_and_checked;
          Alcotest.test_case "truncated log flagged" `Quick
            test_truncated_log_reports_extra_events;
        ] );
      ( "json",
        [
          QCheck_alcotest.to_alcotest prop_event_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_event_json_roundtrip_through_text;
          Alcotest.test_case "of_json rejects malformed" `Quick test_event_of_json_errors;
          Alcotest.test_case "schedule file round-trip" `Quick test_schedule_file_roundtrip;
        ] );
      ( "scripted-policy",
        [
          Alcotest.test_case "interval arithmetic" `Quick test_scripted_policy_intervals;
          Alcotest.test_case "validation" `Quick test_scripted_policy_validation;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "invariants" `Quick test_explorer_invariants;
          Alcotest.test_case "seeded determinism" `Quick test_explorer_is_deterministic;
          Alcotest.test_case "rejects pthreads logs" `Quick test_explorer_rejects_pthreads;
        ] );
    ]

(* Tests for the Conversion-style versioned memory substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_bytes = Alcotest.(check string)

let bytes_of_string = Bytes.of_string
let string_of_bytes = Bytes.to_string

let make_segment ?(pages = 8) ?(page_size = 16) () =
  Vmem.Segment.create ~pages ~page_size ()

(* ------------------------------------------------------------------ *)
(* Page                                                               *)
(* ------------------------------------------------------------------ *)

let test_page_create_zeroed () =
  let p = Vmem.Page.create ~size:8 in
  check_bytes "zeroed" (String.make 8 '\000') (string_of_bytes p)

let test_page_copy_independent () =
  let p = Vmem.Page.create ~size:4 in
  let q = Vmem.Page.copy p in
  Bytes.set q 0 'x';
  check_bool "original untouched" true (Bytes.get p 0 = '\000')

let test_page_diff_count () =
  let twin = bytes_of_string "abcd" and local = bytes_of_string "axcy" in
  check_int "two bytes differ" 2 (Vmem.Page.diff_count ~twin ~local)

let test_page_diff_count_zero () =
  let twin = bytes_of_string "abcd" in
  check_int "identical" 0 (Vmem.Page.diff_count ~twin ~local:(Bytes.copy twin))

let test_page_merge_applies_only_changes () =
  (* Thread changed byte 1 (b->X).  Target meanwhile has byte 3 changed by
     someone else (d->Z).  Merge must keep Z and apply X. *)
  let twin = bytes_of_string "abcd" in
  let local = bytes_of_string "aXcd" in
  let target = bytes_of_string "abcZ" in
  let n = Vmem.Page.merge_into ~twin ~local ~target in
  check_int "one byte merged" 1 n;
  check_bytes "merged result" "aXcZ" (string_of_bytes target)

let test_page_merge_overlap_last_writer_wins () =
  (* Both modified byte 0; merging local over target overwrites: the later
     committer wins at byte granularity. *)
  let twin = bytes_of_string "abcd" in
  let local = bytes_of_string "Lbcd" in
  let target = bytes_of_string "Ebcd" in
  ignore (Vmem.Page.merge_into ~twin ~local ~target);
  check_bytes "later committer wins" "Lbcd" (string_of_bytes target)

let test_page_merge_length_mismatch () =
  let twin = bytes_of_string "abcd" and local = bytes_of_string "abc" in
  Alcotest.check_raises "mismatch raises"
    (Invalid_argument "Page.merge_into: length mismatch (4 vs 3)") (fun () ->
      ignore (Vmem.Page.merge_into ~twin ~local ~target:(Bytes.copy twin)))

(* ------------------------------------------------------------------ *)
(* Segment                                                            *)
(* ------------------------------------------------------------------ *)

let page_str seg ~version i = string_of_bytes (Vmem.Segment.read_page seg ~version i)

let mk_page seg s =
  let p = Vmem.Page.create ~size:(Vmem.Segment.page_size seg) in
  Bytes.blit_string s 0 p 0 (String.length s);
  p

let test_segment_initial_state () =
  let seg = make_segment () in
  check_int "version 0" 0 (Vmem.Segment.current_version seg);
  check_int "no snapshots" 0 (Vmem.Segment.live_snapshots seg);
  check_bytes "zero page" (String.make 16 '\000') (page_str seg ~version:0 3);
  check_int "never modified" 0 (Vmem.Segment.last_mod seg 3)

let test_segment_commit_creates_versions () =
  let seg = make_segment () in
  let v1 = Vmem.Segment.commit seg ~committer:0 ~pages:[ (1, mk_page seg "one") ] in
  let v2 = Vmem.Segment.commit seg ~committer:1 ~pages:[ (2, mk_page seg "two") ] in
  check_int "v1" 1 v1;
  check_int "v2" 2 v2;
  check_int "current" 2 (Vmem.Segment.current_version seg);
  check_int "committer v1" 0 (Vmem.Segment.committer_of seg 1);
  check_int "committer v2" 1 (Vmem.Segment.committer_of seg 2)

let test_segment_historical_reads () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "AAA") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "BBB") ]);
  check_bool "v0 sees zero" true (String.for_all (( = ) '\000') (page_str seg ~version:0 0));
  check_bool "v1 sees AAA" true (String.length (page_str seg ~version:1 0) = 16
                                 && String.sub (page_str seg ~version:1 0) 0 3 = "AAA");
  check_bool "v2 sees BBB" true (String.sub (page_str seg ~version:2 0) 0 3 = "BBB")

let test_segment_last_mod () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (4, mk_page seg "x") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (5, mk_page seg "y") ]);
  check_int "page 4 at v1" 1 (Vmem.Segment.last_mod seg 4);
  check_int "page 5 at v2" 2 (Vmem.Segment.last_mod seg 5);
  check_int "page 6 never" 0 (Vmem.Segment.last_mod seg 6)

let test_segment_duplicate_page_in_commit () =
  let seg = make_segment () in
  let raised =
    try
      ignore
        (Vmem.Segment.commit seg ~committer:0
           ~pages:[ (1, mk_page seg "a"); (1, mk_page seg "b") ]);
      false
    with Invalid_argument _ -> true
  in
  check_bool "duplicate rejected" true raised

let test_segment_modified_since () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (1, mk_page seg "a") ]);
  ignore (Vmem.Segment.commit seg ~committer:1 ~pages:[ (2, mk_page seg "b"); (3, mk_page seg "c") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (1, mk_page seg "d") ]);
  Alcotest.(check (list int)) "since 0" [ 1; 2; 3 ] (Vmem.Segment.modified_since seg ~since:0);
  Alcotest.(check (list int)) "since 1" [ 1; 2; 3 ] (Vmem.Segment.modified_since seg ~since:1);
  Alcotest.(check (list int)) "since 2" [ 1 ] (Vmem.Segment.modified_since seg ~since:2);
  Alcotest.(check (list int)) "since 3" [] (Vmem.Segment.modified_since seg ~since:3)

let test_segment_modified_by_others () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (1, mk_page seg "a") ]);
  ignore (Vmem.Segment.commit seg ~committer:1 ~pages:[ (2, mk_page seg "b") ]);
  check_int "tid 0 sees only tid 1's page" 1
    (Vmem.Segment.modified_since_by_others seg ~since:0 ~tid:0);
  check_int "tid 1 sees only tid 0's page" 1
    (Vmem.Segment.modified_since_by_others seg ~since:0 ~tid:1);
  check_int "tid 2 sees both" 2 (Vmem.Segment.modified_since_by_others seg ~since:0 ~tid:2)

let test_segment_gc_reclaims_obsolete () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "v1") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "v2") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "v3") ]);
  check_int "3 snapshots live" 3 (Vmem.Segment.live_snapshots seg);
  (* Everyone is at version >= 2: the v1 snapshot is obsolete, v2 must stay
     (it is the newest <= min_base), v3 stays. *)
  let reclaimed = Vmem.Segment.gc seg ~min_base:2 ~budget:100 in
  check_int "one reclaimed" 1 reclaimed;
  check_int "2 snapshots live" 2 (Vmem.Segment.live_snapshots seg);
  check_bool "v2 still readable" true (String.sub (page_str seg ~version:2 0) 0 2 = "v2");
  check_bool "v3 still readable" true (String.sub (page_str seg ~version:3 0) 0 2 = "v3")

let test_segment_gc_budget () =
  let seg = make_segment ~pages:4 () in
  for _ = 1 to 5 do
    ignore
      (Vmem.Segment.commit seg ~committer:0
         ~pages:[ (0, mk_page seg "x"); (1, mk_page seg "y") ])
  done;
  check_int "10 snapshots" 10 (Vmem.Segment.live_snapshots seg);
  (* At min_base 5 only the newest snapshot of each page is needed: 8 are
     obsolete, but the budget only allows a few. *)
  let r1 = Vmem.Segment.gc seg ~min_base:5 ~budget:3 in
  check_bool "budget respected" true (r1 <= 4 && r1 >= 3);
  let r2 = Vmem.Segment.gc seg ~min_base:5 ~budget:100 in
  check_int "rest reclaimed" (8 - r1) r2;
  check_int "only newest kept" 2 (Vmem.Segment.live_snapshots seg)

let test_segment_hash_changes () =
  let seg = make_segment () in
  let h0 = Vmem.Segment.hash seg in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "zz") ]);
  check_bool "hash changed" false (h0 = Vmem.Segment.hash seg)

let test_segment_hash_stable_under_gc () =
  let seg = make_segment () in
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "a") ]);
  ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (0, mk_page seg "b") ]);
  let h = Vmem.Segment.hash seg in
  ignore (Vmem.Segment.gc seg ~min_base:2 ~budget:100);
  check_bytes "gc does not change current image" h (Vmem.Segment.hash seg)

(* ------------------------------------------------------------------ *)
(* Sharded commit / incremental GC                                    *)
(* ------------------------------------------------------------------ *)

let test_segment_shard_ranges () =
  let seg = make_segment ~pages:10 () in
  Vmem.Segment.set_shards seg 4;
  check_int "4 shards" 4 (Vmem.Segment.shards seg);
  (* shard_of_page must be monotone, start at 0, end at nshards-1, and
     cover every shard for a 10-page / 4-shard split. *)
  let shards = List.init 10 (Vmem.Segment.shard_of_page seg) in
  check_int "first page in shard 0" 0 (List.hd shards);
  check_int "last page in shard 3" 3 (List.nth shards 9);
  check_bool "monotone" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 9) shards) (List.tl shards));
  Alcotest.(check (list int)) "all shards populated" [ 0; 1; 2; 3 ]
    (List.sort_uniq compare shards);
  (* Clamped: more shards than pages degenerates to one page per shard. *)
  Vmem.Segment.set_shards seg 64;
  check_int "clamped to page count" 10 (Vmem.Segment.shards seg)

(* Apply the same commit list to a serial (1-shard) and an n-shard
   segment and require byte-identical state: same hash, same versions,
   same committers, same content at every version. *)
let apply_commits seg commits =
  List.iteri
    (fun i pages ->
      let pages =
        List.map
          (fun (pg, c) ->
            let p = Vmem.Page.create ~size:(Vmem.Segment.page_size seg) in
            Bytes.fill p 0 (Bytes.length p) c;
            (pg, p))
          pages
      in
      ignore (Vmem.Segment.commit seg ~committer:(i mod 4) ~pages))
    commits

let segments_equal ?(from_version = 0) sa sb =
  let va = Vmem.Segment.current_version sa in
  va = Vmem.Segment.current_version sb
  && Vmem.Segment.hash sa = Vmem.Segment.hash sb
  && List.for_all
       (fun v ->
         List.for_all
           (fun pg ->
             Bytes.equal
               (Vmem.Segment.read_page sa ~version:v pg)
               (Vmem.Segment.read_page sb ~version:v pg))
           (List.init (Vmem.Segment.page_count sa) Fun.id))
       (List.init (va - from_version + 1) (fun k -> from_version + k))
  && List.for_all
       (fun v -> Vmem.Segment.committer_of sa v = Vmem.Segment.committer_of sb v)
       (List.init va (fun k -> k + 1))

let test_segment_parallel_install_path () =
  (* A single commit of >= 64 distinct pages on a multi-shard segment
     takes the pool fan-out install; it must be indistinguishable from
     the serial install of the same pages. *)
  let mk () = Vmem.Segment.create ~pages:128 ~page_size:32 () in
  let serial = mk () and sharded = mk () in
  Vmem.Segment.set_shards sharded 8;
  let commit = List.init 100 (fun k -> ((k * 5) mod 128, Char.chr (33 + (k mod 90)))) in
  let commit = List.sort_uniq (fun (a, _) (b, _) -> compare a b) commit in
  check_bool "covers parallel threshold" true (List.length commit >= 64);
  apply_commits serial [ commit ];
  apply_commits sharded [ commit ];
  check_bool "byte-identical" true (segments_equal serial sharded)

let test_segment_gc_step_equivalence () =
  (* Incremental per-shard gc_step, run to quiescence, reclaims exactly
     what one monolithic gc pass reclaims, and leaves identical state. *)
  let mk () = Vmem.Segment.create ~pages:16 ~page_size:8 () in
  let serial = mk () and sharded = mk () in
  Vmem.Segment.set_shards sharded 4;
  let commits =
    List.init 6 (fun r -> List.init 16 (fun pg -> (pg, Char.chr (65 + r))))
  in
  apply_commits serial commits;
  apply_commits sharded commits;
  let min_base = Vmem.Segment.current_version serial - 1 in
  let reclaimed_serial = Vmem.Segment.gc serial ~min_base ~budget:max_int in
  let reclaimed_sharded = ref 0 in
  (* Each step scans at most 8 pages of one shard; 4 shards x 4 pages
     means a handful of rotations reach quiescence. *)
  for _ = 1 to 16 do
    reclaimed_sharded :=
      !reclaimed_sharded + Vmem.Segment.gc_step sharded ~min_base ~max_pages:8
  done;
  check_int "same total reclaimed" reclaimed_serial !reclaimed_sharded;
  check_int "same live snapshots" (Vmem.Segment.live_snapshots serial)
    (Vmem.Segment.live_snapshots sharded);
  check_bool "identical from min_base" true (segments_equal ~from_version:min_base serial sharded)

let test_segment_gc_step_bound () =
  let seg = make_segment ~pages:8 () in
  Vmem.Segment.set_shards seg 2;
  for _ = 1 to 5 do
    ignore
      (Vmem.Segment.commit seg ~committer:0
         ~pages:(List.init 8 (fun pg -> (pg, mk_page seg "x"))))
  done;
  let min_base = Vmem.Segment.current_version seg in
  (* max_pages bounds pages *scanned*, and each page holds 4 obsolete
     snapshots: a 1-page step reclaims at most 4. *)
  let r = Vmem.Segment.gc_step seg ~min_base ~max_pages:1 in
  check_bool "per-step work bounded" true (r <= 4);
  check_bool "made progress" true (r > 0)

let test_ws_seal_install_equals_commit () =
  (* Two-phase seal/install must be observably identical to the fused
     commit: same commit_info, same committed bytes. *)
  let seg_a = make_segment () and seg_b = make_segment () in
  let wa = Vmem.Workspace.create seg_a ~tid:0 in
  let wb = Vmem.Workspace.create seg_b ~tid:0 in
  List.iter
    (fun ws ->
      Vmem.Workspace.write ws ~addr:3 (bytes_of_string "fused-vs-staged");
      Vmem.Workspace.write ws ~addr:40 (bytes_of_string "q"))
    [ wa; wb ];
  let ca = Vmem.Workspace.commit wa in
  let sealed = Vmem.Workspace.seal wb in
  check_int "sealed_pages" ca.pages_committed (Vmem.Workspace.sealed_pages sealed);
  check_int "sealed_merged" ca.pages_merged (Vmem.Workspace.sealed_merged sealed);
  let cb = Vmem.Workspace.install wb sealed in
  check_int "same version" ca.version cb.version;
  check_int "same pages" ca.pages_committed cb.pages_committed;
  check_int "same merges" ca.pages_merged cb.pages_merged;
  check_bool "same segment bytes" true (Vmem.Segment.hash seg_a = Vmem.Segment.hash seg_b);
  (* Dirty state was reset by install: a second commit is empty. *)
  check_int "workspace drained" 0 (Vmem.Workspace.commit wb).pages_committed

let test_ws_install_stale_seal_rejected () =
  (* The sealed write-set pins the base version; if the segment advanced
     between seal and install the twin diffs are stale and install must
     refuse rather than silently misinstall. *)
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "early");
  let sealed = Vmem.Workspace.seal w0 in
  Vmem.Workspace.write w1 ~addr:64 (bytes_of_string "sneak");
  ignore (Vmem.Workspace.commit w1);
  let raised =
    try ignore (Vmem.Workspace.install w0 sealed); false
    with Invalid_argument _ -> true
  in
  check_bool "stale install raises" true raised

(* ------------------------------------------------------------------ *)
(* Workspace                                                          *)
(* ------------------------------------------------------------------ *)

let test_ws_read_initial_zero () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  check_bytes "zero read" (String.make 10 '\000')
    (string_of_bytes (Vmem.Workspace.read ws ~addr:37 ~len:10))

let test_ws_reads_own_writes () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write ws ~addr:5 (bytes_of_string "hello");
  check_bytes "store-buffer forwarding" "hello"
    (string_of_bytes (Vmem.Workspace.read ws ~addr:5 ~len:5))

let test_ws_isolation_before_update () =
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "secret");
  ignore (Vmem.Workspace.commit w0);
  (* w1 has not updated: the commit must be invisible. *)
  check_bytes "isolated" (String.make 6 '\000')
    (string_of_bytes (Vmem.Workspace.read w1 ~addr:0 ~len:6));
  ignore (Vmem.Workspace.update w1);
  check_bytes "visible after update" "secret"
    (string_of_bytes (Vmem.Workspace.read w1 ~addr:0 ~len:6))

let test_ws_commit_then_own_view () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write ws ~addr:0 (bytes_of_string "mine");
  ignore (Vmem.Workspace.commit ws);
  (* After commit (even before update) the thread still sees its own data:
     local copies stay resident. *)
  check_bytes "own writes persist" "mine"
    (string_of_bytes (Vmem.Workspace.read ws ~addr:0 ~len:4))

let test_ws_cross_page_write_read () =
  let seg = make_segment ~pages:4 ~page_size:8 () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  let s = "0123456789abcdef" in
  Vmem.Workspace.write ws ~addr:4 (bytes_of_string s);
  check_bytes "spans pages" s (string_of_bytes (Vmem.Workspace.read ws ~addr:4 ~len:16));
  check_int "three pages dirtied" 3 (Vmem.Workspace.dirty_count ws)

let test_ws_write_fault_once_per_chunk () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write ws ~addr:0 (bytes_of_string "a");
  Vmem.Workspace.write ws ~addr:1 (bytes_of_string "b");
  Vmem.Workspace.write ws ~addr:2 (bytes_of_string "c");
  check_int "one fault" 1 (Vmem.Workspace.stats ws).write_faults;
  ignore (Vmem.Workspace.commit ws);
  (* New chunk: writing the same page faults again. *)
  Vmem.Workspace.write ws ~addr:3 (bytes_of_string "d");
  check_int "fault in next chunk" 2 (Vmem.Workspace.stats ws).write_faults

let test_ws_disjoint_byte_merge () =
  (* Two threads write different bytes of the same page; both updates must
     survive (byte-granularity merging, paper section 2.5). *)
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "AA");
  Vmem.Workspace.write w1 ~addr:8 (bytes_of_string "BB");
  let c0 = Vmem.Workspace.commit w0 in
  let c1 = Vmem.Workspace.commit w1 in
  check_int "w0 clean commit" 0 c0.pages_merged;
  check_int "w1 merged" 1 c1.pages_merged;
  check_int "w1 merged 2 bytes" 2 c1.bytes_merged;
  let w2 = Vmem.Workspace.create seg ~tid:2 in
  check_bytes "both writes survive" "AA\000\000\000\000\000\000BB"
    (string_of_bytes (Vmem.Workspace.read w2 ~addr:0 ~len:10))

let test_ws_overlapping_merge_last_writer_wins () =
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "first");
  Vmem.Workspace.write w1 ~addr:0 (bytes_of_string "SECON");
  ignore (Vmem.Workspace.commit w0);
  ignore (Vmem.Workspace.commit w1);
  let w2 = Vmem.Workspace.create seg ~tid:2 in
  check_bytes "last committer wins" "SECON"
    (string_of_bytes (Vmem.Workspace.read w2 ~addr:0 ~len:5))

let test_ws_merge_preserves_untouched_remote_bytes () =
  (* w1 writes bytes 0-1 and commits; w0, still at the old base, writes
     byte 4 of the same page and commits.  The merge must keep w1's bytes. *)
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w1 ~addr:0 (bytes_of_string "XY");
  ignore (Vmem.Workspace.commit w1);
  Vmem.Workspace.write w0 ~addr:4 (bytes_of_string "Q");
  ignore (Vmem.Workspace.commit w0);
  let w2 = Vmem.Workspace.create seg ~tid:2 in
  check_bytes "union of both" "XY\000\000Q"
    (string_of_bytes (Vmem.Workspace.read w2 ~addr:0 ~len:5))

let test_ws_update_with_dirty_raises () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write ws ~addr:0 (bytes_of_string "x");
  let raised = try ignore (Vmem.Workspace.update ws); false with Invalid_argument _ -> true in
  check_bool "raises" true raised

let test_ws_update_refreshes_residents () =
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  (* Make page 0 resident in w0 by writing it and committing. *)
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "old");
  ignore (Vmem.Workspace.commit w0);
  ignore (Vmem.Workspace.update w0);
  (* w1 overwrites the page. *)
  ignore (Vmem.Workspace.update w1);
  Vmem.Workspace.write w1 ~addr:0 (bytes_of_string "new");
  ignore (Vmem.Workspace.commit w1);
  let info = Vmem.Workspace.update w0 in
  check_int "one page refreshed" 1 info.pages_refreshed;
  check_bytes "sees new content" "new"
    (string_of_bytes (Vmem.Workspace.read w0 ~addr:0 ~len:3))

let test_ws_propagation_excludes_own_commits () =
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write w0 ~addr:0 (bytes_of_string "self");
  ignore (Vmem.Workspace.commit w0);
  let info = Vmem.Workspace.update w0 in
  check_int "own commit not propagation" 0 info.pages_propagated;
  check_int "base advanced" 1 info.to_version

let test_ws_propagation_counts_remote () =
  let seg = make_segment () in
  let w0 = Vmem.Workspace.create seg ~tid:0 in
  let w1 = Vmem.Workspace.create seg ~tid:1 in
  Vmem.Workspace.write w1 ~addr:0 (bytes_of_string "a");
  Vmem.Workspace.write w1 ~addr:20 (bytes_of_string "b");
  ignore (Vmem.Workspace.commit w1);
  let info = Vmem.Workspace.update w0 in
  check_int "two remote pages" 2 info.pages_propagated

let test_ws_empty_commit_noop () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  let c = Vmem.Workspace.commit ws in
  check_int "no pages" 0 c.pages_committed;
  check_int "version unchanged" 0 c.version;
  check_int "no commit counted" 0 (Vmem.Workspace.stats ws).commits

let test_ws_int64_roundtrip () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write_int64 ws ~addr:12 0x1122334455667788L;
  Alcotest.(check int64) "roundtrip" 0x1122334455667788L (Vmem.Workspace.read_int64 ws ~addr:12);
  Vmem.Workspace.write_int ws ~addr:40 (-123456);
  check_int "int roundtrip" (-123456) (Vmem.Workspace.read_int ws ~addr:40)

let test_ws_int64_across_page_boundary () =
  let seg = make_segment ~pages:4 ~page_size:8 () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write_int64 ws ~addr:5 0x0102030405060708L;
  Alcotest.(check int64) "spans boundary" 0x0102030405060708L
    (Vmem.Workspace.read_int64 ws ~addr:5)

let test_ws_out_of_range () =
  let seg = make_segment ~pages:2 ~page_size:8 () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  let raised =
    try ignore (Vmem.Workspace.read ws ~addr:12 ~len:8); false
    with Invalid_argument _ -> true
  in
  check_bool "read oob raises" true raised;
  let raised =
    try Vmem.Workspace.write ws ~addr:(-1) (bytes_of_string "x"); false
    with Invalid_argument _ -> true
  in
  check_bool "write oob raises" true raised

let test_ws_drop_residents () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  Vmem.Workspace.write ws ~addr:0 (bytes_of_string "x");
  ignore (Vmem.Workspace.commit ws);
  check_int "one resident" 1 (Vmem.Workspace.resident_pages ws);
  Vmem.Workspace.drop_residents ws;
  check_int "none resident" 0 (Vmem.Workspace.resident_pages ws);
  (* Reads fall back to the committed state. *)
  ignore (Vmem.Workspace.update ws);
  check_bytes "still reads committed" "x"
    (string_of_bytes (Vmem.Workspace.read ws ~addr:0 ~len:1))

let test_ws_read_does_not_fault () =
  let seg = make_segment () in
  let ws = Vmem.Workspace.create seg ~tid:0 in
  ignore (Vmem.Workspace.read ws ~addr:0 ~len:64);
  check_int "reads don't fault" 0 (Vmem.Workspace.stats ws).write_faults;
  check_int "reads don't make residents" 0 (Vmem.Workspace.resident_pages ws)

let test_page_diff_word_boundary () =
  (* A single mismatching byte at every word boundary (first/last byte of
     each 8-byte word) must be found by the word-level scan. *)
  let size = 32 in
  let twin = Bytes.make size 'a' in
  List.iter
    (fun i ->
      let local = Bytes.copy twin in
      Bytes.set local i 'b';
      check_int (Printf.sprintf "mismatch at byte %d" i) 1
        (Vmem.Page.diff_count ~twin ~local))
    [ 0; 7; 8; 15; 16; 23; 24; 31 ]

let test_page_diff_unaligned_tail () =
  (* Sizes that are not a multiple of 8 exercise the byte-tail loop. *)
  List.iter
    (fun size ->
      let twin = Bytes.make size 'a' in
      let local = Bytes.copy twin in
      if size > 0 then Bytes.set local (size - 1) 'b';
      check_int
        (Printf.sprintf "last byte of %d-byte page" size)
        (if size > 0 then 1 else 0)
        (Vmem.Page.diff_count ~twin ~local))
    [ 0; 1; 3; 7; 9; 15; 17; 63; 65 ]

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

(* Reference model: a flat byte array with the same write sequence. *)
let prop_single_thread_matches_flat_memory =
  QCheck.Test.make ~name:"single-thread workspace behaves like flat memory" ~count:100
    QCheck.(list (pair (int_bound 111) (string_of_size (Gen.int_range 1 16))))
    (fun writes ->
      let seg = Vmem.Segment.create ~pages:8 ~page_size:16 () in
      let ws = Vmem.Workspace.create seg ~tid:0 in
      let model = Bytes.make 128 '\000' in
      List.iter
        (fun (addr, s) ->
          let len = min (String.length s) (128 - addr) in
          if len > 0 then begin
            let b = Bytes.of_string (String.sub s 0 len) in
            Vmem.Workspace.write ws ~addr b;
            Bytes.blit b 0 model addr len
          end)
        writes;
      Vmem.Workspace.read ws ~addr:0 ~len:128 = model)

let prop_commit_update_preserves_content =
  QCheck.Test.make ~name:"commit+update round-trips content to a fresh reader" ~count:100
    QCheck.(list (pair (int_bound 111) (string_of_size (Gen.int_range 1 16))))
    (fun writes ->
      let seg = Vmem.Segment.create ~pages:8 ~page_size:16 () in
      let ws = Vmem.Workspace.create seg ~tid:0 in
      let model = Bytes.make 128 '\000' in
      List.iter
        (fun (addr, s) ->
          let len = min (String.length s) (128 - addr) in
          if len > 0 then begin
            let b = Bytes.of_string (String.sub s 0 len) in
            Vmem.Workspace.write ws ~addr b;
            Bytes.blit b 0 model addr len
          end)
        writes;
      ignore (Vmem.Workspace.commit ws);
      let reader = Vmem.Workspace.create seg ~tid:1 in
      ignore (Vmem.Workspace.update reader);
      Vmem.Workspace.read reader ~addr:0 ~len:128 = model)

let prop_disjoint_writers_merge_to_union =
  (* Threads write to disjoint byte ranges (same pages allowed); after all
     commit, memory is the union regardless of commit order. *)
  QCheck.Test.make ~name:"disjoint writers merge to union in any commit order" ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 8) (int_bound 15)) bool)
    (fun (slots, flip) ->
      let slots = List.sort_uniq compare slots in
      let seg = Vmem.Segment.create ~pages:2 ~page_size:64 () in
      (* Even slots -> thread 0, odd -> thread 1; each slot is 8 bytes. *)
      let w0 = Vmem.Workspace.create seg ~tid:0 in
      let w1 = Vmem.Workspace.create seg ~tid:1 in
      let model = Bytes.make 128 '\000' in
      List.iter
        (fun slot ->
          let addr = slot * 8 in
          let ws = if slot mod 2 = 0 then w0 else w1 in
          let tag = Bytes.make 8 (Char.chr (65 + slot)) in
          Vmem.Workspace.write ws ~addr tag;
          Bytes.blit tag 0 model addr 8)
        slots;
      let first, second = if flip then (w1, w0) else (w0, w1) in
      ignore (Vmem.Workspace.commit first);
      ignore (Vmem.Workspace.commit second);
      let reader = Vmem.Workspace.create seg ~tid:2 in
      ignore (Vmem.Workspace.update reader);
      Vmem.Workspace.read reader ~addr:0 ~len:128 = model)

let prop_workspace_gc_interplay =
  (* Interleave writes/commits/updates from two workspaces with aggressive
     GC at the true min base: contents must match a flat reference model
     that applies the same committed stores in commit order. *)
  QCheck.Test.make ~name:"workspaces + gc match a flat commit-order model" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 24) (pair (int_bound 1) (pair (int_bound 30) (int_bound 255))))
    (fun ops ->
      let seg = Vmem.Segment.create ~pages:8 ~page_size:16 () in
      let w = [| Vmem.Workspace.create seg ~tid:0; Vmem.Workspace.create seg ~tid:1 |] in
      let model = Bytes.make 128 '\000' in
      (* Writers touch disjoint byte ranges (even/odd 4-byte slots) so the
         committed image is schedule-independent. *)
      List.iteri
        (fun i (who, (slot, v)) ->
          let ws = w.(who) in
          let addr = (slot / 2 * 8) + (who * 4) in
          let buf = Bytes.make 4 (Char.chr v) in
          Vmem.Workspace.write ws ~addr buf;
          Bytes.blit buf 0 model addr 4;
          (* Commit and update every few steps; GC hard after each. *)
          if i mod 3 = who then begin
            ignore (Vmem.Workspace.commit ws);
            ignore (Vmem.Workspace.update ws);
            let min_base = min (Vmem.Workspace.base w.(0)) (Vmem.Workspace.base w.(1)) in
            ignore (Vmem.Segment.gc seg ~min_base ~budget:max_int)
          end)
        ops;
      ignore (Vmem.Workspace.commit w.(0));
      ignore (Vmem.Workspace.commit w.(1));
      let reader = Vmem.Workspace.create seg ~tid:2 in
      ignore (Vmem.Workspace.update reader);
      Vmem.Workspace.read reader ~addr:0 ~len:128 = model)

let prop_gc_never_affects_readers_at_min_base =
  QCheck.Test.make ~name:"gc preserves all reads at versions >= min_base" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 3) (int_bound 255)))
    (fun commits ->
      let seg = Vmem.Segment.create ~pages:4 ~page_size:4 () in
      List.iter
        (fun (pg, byte) ->
          let p = Vmem.Page.create ~size:4 in
          Bytes.fill p 0 4 (Char.chr byte);
          ignore (Vmem.Segment.commit seg ~committer:0 ~pages:[ (pg, p) ]))
        commits;
      let vmax = Vmem.Segment.current_version seg in
      let min_base = max 0 (vmax - 2) in
      let snapshot v =
        List.init 4 (fun i -> Bytes.to_string (Vmem.Segment.read_page seg ~version:v i))
      in
      let before = List.init (vmax - min_base + 1) (fun k -> snapshot (min_base + k)) in
      ignore (Vmem.Segment.gc seg ~min_base ~budget:max_int);
      let after = List.init (vmax - min_base + 1) (fun k -> snapshot (min_base + k)) in
      before = after)

let prop_sharded_commit_matches_serial =
  (* The tentpole equivalence: for random page sets (with overlaps
     across commits), random shard counts, and commits large enough to
     take the pool fan-out install, the sharded segment is byte-for-byte
     the serial segment — same hash, same per-version content, same
     committers — and stays so after incremental vs monolithic GC. *)
  QCheck.Test.make ~name:"sharded commit + incremental gc match serial segment" ~count:60
    QCheck.(
      triple (int_range 2 9)
        (list_of_size (Gen.int_range 1 5)
           (list_of_size (Gen.int_range 1 120) (pair (int_bound 127) printable_char)))
        (int_bound 3))
    (fun (nshards, commits, gc_lag) ->
      let commits =
        List.map (List.sort_uniq (fun (a, _) (b, _) -> compare a b)) commits
      in
      let mk () = Vmem.Segment.create ~pages:128 ~page_size:16 () in
      let serial = mk () and sharded = mk () in
      Vmem.Segment.set_shards sharded nshards;
      apply_commits serial commits;
      apply_commits sharded commits;
      let eq_before = segments_equal serial sharded in
      let min_base = max 0 (Vmem.Segment.current_version serial - gc_lag) in
      let rs = Vmem.Segment.gc serial ~min_base ~budget:max_int in
      let rb = ref 0 in
      (* Enough bounded steps to reach quiescence: at most 9 shards of
         <= 64 pages each, 64 scanned per step. *)
      for _ = 1 to 4 * nshards do
        rb := !rb + Vmem.Segment.gc_step sharded ~min_base ~max_pages:64
      done;
      eq_before && rs = !rb
      && Vmem.Segment.live_snapshots serial = Vmem.Segment.live_snapshots sharded
      && segments_equal ~from_version:min_base serial sharded)

let prop_seal_install_equals_commit =
  (* Random write batches through two workspaces against a sharded
     segment: the staged seal/install path and the fused commit must
     produce identical commit_infos and identical committed images. *)
  QCheck.Test.make ~name:"seal/install equals fused commit on sharded segment" ~count:80
    QCheck.(
      list_of_size (Gen.int_range 1 20)
        (triple bool (int_bound 111) (string_of_size (Gen.int_range 1 16))))
    (fun writes ->
      let mk () =
        let seg = Vmem.Segment.create ~pages:8 ~page_size:16 () in
        Vmem.Segment.set_shards seg 4;
        (seg, Vmem.Workspace.create seg ~tid:0, Vmem.Workspace.create seg ~tid:1)
      in
      let seg_a, a0, a1 = mk () and seg_b, b0, b1 = mk () in
      List.iter
        (fun (who, addr, s) ->
          let len = min (String.length s) (128 - addr) in
          if len > 0 then begin
            let b = Bytes.of_string (String.sub s 0 len) in
            Vmem.Workspace.write (if who then a1 else a0) ~addr (Bytes.copy b);
            Vmem.Workspace.write (if who then b1 else b0) ~addr b
          end)
        writes;
      (* Segment A: fused commits.  Segment B: staged, in the same
         order (t0 then t1 — the second may merge over the first). *)
      let ca0 = Vmem.Workspace.commit a0 in
      let ca1 = Vmem.Workspace.commit a1 in
      let cb0 = Vmem.Workspace.install b0 (Vmem.Workspace.seal b0) in
      let cb1 = Vmem.Workspace.install b1 (Vmem.Workspace.seal b1) in
      let same (x : Vmem.Workspace.commit_info) (y : Vmem.Workspace.commit_info) =
        x.version = y.version
        && x.pages_committed = y.pages_committed
        && x.pages_merged = y.pages_merged
        && x.bytes_merged = y.bytes_merged
      in
      same ca0 cb0 && same ca1 cb1 && Vmem.Segment.hash seg_a = Vmem.Segment.hash seg_b)

(* Byte-at-a-time oracles for the word-level page scans. *)
let oracle_diff_count ~twin ~local =
  let n = ref 0 in
  for i = 0 to Bytes.length twin - 1 do
    if Bytes.get twin i <> Bytes.get local i then incr n
  done;
  !n

let oracle_merge ~twin ~local ~target =
  let t = Bytes.copy target in
  let n = ref 0 in
  for i = 0 to Bytes.length twin - 1 do
    if Bytes.get twin i <> Bytes.get local i then begin
      Bytes.set t i (Bytes.get local i);
      incr n
    end
  done;
  (t, !n)

(* Page sizes deliberately straddle multiples of 8 so both the word loop
   and the byte tail are exercised; mutation positions are arbitrary, so
   word-boundary mismatches occur routinely. *)
let mutate base muts =
  let b = Bytes.copy base in
  let size = Bytes.length b in
  if size > 0 then List.iter (fun (pos, c) -> Bytes.set b (pos mod size) c) muts;
  b

let prop_word_diff_matches_byte_oracle =
  QCheck.Test.make ~name:"word-level diff_count matches byte-at-a-time oracle" ~count:300
    QCheck.(pair (int_range 0 67) (small_list (pair small_nat printable_char)))
    (fun (size, muts) ->
      let twin = Bytes.init size (fun i -> Char.chr (((i * 131) + 7) land 0xff)) in
      let local = mutate twin muts in
      Vmem.Page.diff_count ~twin ~local = oracle_diff_count ~twin ~local)

let prop_word_merge_matches_byte_oracle =
  QCheck.Test.make ~name:"word-level merge_into matches byte-at-a-time oracle" ~count:300
    QCheck.(
      triple (int_range 0 67)
        (small_list (pair small_nat printable_char))
        (small_list (pair small_nat printable_char)))
    (fun (size, muts, tmuts) ->
      let twin = Bytes.init size (fun i -> Char.chr ((i * 37) land 0xff)) in
      let local = mutate twin muts in
      let target = mutate twin tmuts in
      let expected, expected_n = oracle_merge ~twin ~local ~target in
      let actual = Bytes.copy target in
      let n = Vmem.Page.merge_into ~twin ~local ~target:actual in
      n = expected_n && Bytes.equal actual expected)

let () =
  Alcotest.run "vmem"
    [
      ( "page",
        [
          Alcotest.test_case "create zeroed" `Quick test_page_create_zeroed;
          Alcotest.test_case "copy independent" `Quick test_page_copy_independent;
          Alcotest.test_case "diff count" `Quick test_page_diff_count;
          Alcotest.test_case "diff count zero" `Quick test_page_diff_count_zero;
          Alcotest.test_case "merge applies only changes" `Quick test_page_merge_applies_only_changes;
          Alcotest.test_case "merge overlap last-writer-wins" `Quick
            test_page_merge_overlap_last_writer_wins;
          Alcotest.test_case "merge length mismatch" `Quick test_page_merge_length_mismatch;
          Alcotest.test_case "diff at word boundaries" `Quick test_page_diff_word_boundary;
          Alcotest.test_case "diff unaligned tail" `Quick test_page_diff_unaligned_tail;
        ] );
      ( "segment",
        [
          Alcotest.test_case "initial state" `Quick test_segment_initial_state;
          Alcotest.test_case "commit creates versions" `Quick test_segment_commit_creates_versions;
          Alcotest.test_case "historical reads" `Quick test_segment_historical_reads;
          Alcotest.test_case "last_mod" `Quick test_segment_last_mod;
          Alcotest.test_case "duplicate page rejected" `Quick test_segment_duplicate_page_in_commit;
          Alcotest.test_case "modified_since" `Quick test_segment_modified_since;
          Alcotest.test_case "modified by others" `Quick test_segment_modified_by_others;
          Alcotest.test_case "gc reclaims obsolete" `Quick test_segment_gc_reclaims_obsolete;
          Alcotest.test_case "gc budget" `Quick test_segment_gc_budget;
          Alcotest.test_case "hash changes" `Quick test_segment_hash_changes;
          Alcotest.test_case "hash stable under gc" `Quick test_segment_hash_stable_under_gc;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "shard ranges" `Quick test_segment_shard_ranges;
          Alcotest.test_case "parallel install path" `Quick test_segment_parallel_install_path;
          Alcotest.test_case "gc_step equivalence" `Quick test_segment_gc_step_equivalence;
          Alcotest.test_case "gc_step work bound" `Quick test_segment_gc_step_bound;
          Alcotest.test_case "seal/install equals commit" `Quick
            test_ws_seal_install_equals_commit;
          Alcotest.test_case "stale seal rejected" `Quick test_ws_install_stale_seal_rejected;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "read initial zero" `Quick test_ws_read_initial_zero;
          Alcotest.test_case "reads own writes" `Quick test_ws_reads_own_writes;
          Alcotest.test_case "isolation before update" `Quick test_ws_isolation_before_update;
          Alcotest.test_case "own view after commit" `Quick test_ws_commit_then_own_view;
          Alcotest.test_case "cross-page write/read" `Quick test_ws_cross_page_write_read;
          Alcotest.test_case "fault once per chunk" `Quick test_ws_write_fault_once_per_chunk;
          Alcotest.test_case "disjoint byte merge" `Quick test_ws_disjoint_byte_merge;
          Alcotest.test_case "overlap last-writer-wins" `Quick
            test_ws_overlapping_merge_last_writer_wins;
          Alcotest.test_case "merge preserves remote bytes" `Quick
            test_ws_merge_preserves_untouched_remote_bytes;
          Alcotest.test_case "update with dirty raises" `Quick test_ws_update_with_dirty_raises;
          Alcotest.test_case "update refreshes residents" `Quick test_ws_update_refreshes_residents;
          Alcotest.test_case "propagation excludes own" `Quick
            test_ws_propagation_excludes_own_commits;
          Alcotest.test_case "propagation counts remote" `Quick test_ws_propagation_counts_remote;
          Alcotest.test_case "empty commit noop" `Quick test_ws_empty_commit_noop;
          Alcotest.test_case "int64 roundtrip" `Quick test_ws_int64_roundtrip;
          Alcotest.test_case "int64 across boundary" `Quick test_ws_int64_across_page_boundary;
          Alcotest.test_case "out of range" `Quick test_ws_out_of_range;
          Alcotest.test_case "drop residents" `Quick test_ws_drop_residents;
          Alcotest.test_case "reads don't fault" `Quick test_ws_read_does_not_fault;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_single_thread_matches_flat_memory;
          QCheck_alcotest.to_alcotest prop_commit_update_preserves_content;
          QCheck_alcotest.to_alcotest prop_disjoint_writers_merge_to_union;
          QCheck_alcotest.to_alcotest prop_gc_never_affects_readers_at_min_base;
          QCheck_alcotest.to_alcotest prop_workspace_gc_interplay;
          QCheck_alcotest.to_alcotest prop_sharded_commit_matches_serial;
          QCheck_alcotest.to_alcotest prop_seal_install_equals_commit;
          QCheck_alcotest.to_alcotest prop_word_diff_matches_byte_oracle;
          QCheck_alcotest.to_alcotest prop_word_merge_matches_byte_oracle;
        ] );
    ]

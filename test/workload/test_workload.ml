(* Tests for the benchmark registry (the 19-benchmark suite plus the
   six KV service traffic shapes) and its building blocks. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Wl_util                                                            *)
(* ------------------------------------------------------------------ *)

let test_scaled () =
  check_int "identity" 10 (Workload.Wl_util.scaled 1.0 10);
  check_int "half" 5 (Workload.Wl_util.scaled 0.5 10);
  check_int "never zero" 1 (Workload.Wl_util.scaled 0.001 10);
  check_int "double" 20 (Workload.Wl_util.scaled 2.0 10)

let test_work_amount_scales_up () =
  check_bool "multiplied" true (Workload.Wl_util.work_amount 1.0 100 > 100);
  check_int "proportional" (2 * Workload.Wl_util.work_amount 1.0 100)
    (Workload.Wl_util.work_amount 2.0 100)

let run_with ops_user =
  (* Run a tiny program under pthreads to drive Wl_util helpers. *)
  let program =
    Api.make ~name:"wl-util-harness" ~heap_pages:64 ~page_size:256 (fun ~nthreads:_ ops ->
        ops_user ops)
  in
  Runtime.Run.run Runtime.Run.pthreads ~seed:1 ~nthreads:1 program

let test_checksum () =
  let r =
    run_with (fun ops ->
        ops.Api.write_int ~addr:0 5;
        ops.Api.write_int ~addr:8 7;
        ops.Api.write_int ~addr:16 11;
        ops.Api.log_output
          (string_of_int (Workload.Wl_util.checksum ops ~addr:0 ~words:3)))
  in
  ignore r;
  check_bool "ran" true (r.Stats.Run_result.wall_ns >= 0)

let test_queue_fifo () =
  let order = ref [] in
  ignore
    (run_with (fun ops ->
         let q =
           Workload.Wl_util.queue_make ~base:1024 ~capacity:4 ~lock:0 ~nonfull:0 ~nonempty:1
         in
         (* Single-threaded: push 3, pop 3 — strict FIFO without blocking. *)
         Workload.Wl_util.queue_push ops q 10;
         Workload.Wl_util.queue_push ops q 20;
         Workload.Wl_util.queue_push ops q 30;
         let a = Workload.Wl_util.queue_pop ops q in
         let b = Workload.Wl_util.queue_pop ops q in
         let c = Workload.Wl_util.queue_pop ops q in
         order := [ a; b; c ]));
  Alcotest.(check (list int)) "fifo" [ 10; 20; 30 ] !order

let test_queue_rejects_negative () =
  let raised = ref false in
  ignore
    (run_with (fun ops ->
         let q =
           Workload.Wl_util.queue_make ~base:1024 ~capacity:4 ~lock:0 ~nonfull:0 ~nonempty:1
         in
         try Workload.Wl_util.queue_push ops q (-1) with Invalid_argument _ -> raised := true));
  check_bool "raises" true !raised

let test_queue_blocking_producer_consumer () =
  (* Capacity-2 queue, fast producer, slow consumer: producer must block
     on full and everything still arrives in order. *)
  let received = ref [] in
  let program =
    Api.make ~name:"queue-block" ~heap_pages:64 ~page_size:256 (fun ~nthreads:_ ops ->
        let q =
          Workload.Wl_util.queue_make ~base:1024 ~capacity:2 ~lock:0 ~nonfull:0 ~nonempty:1
        in
        let producer =
          ops.Api.spawn (fun w ->
              for j = 1 to 10 do
                Workload.Wl_util.queue_push w q j
              done)
        in
        let consumer =
          ops.Api.spawn (fun w ->
              for _ = 1 to 10 do
                w.Api.work 2_000;
                received := Workload.Wl_util.queue_pop w q :: !received
              done)
        in
        ops.Api.join producer;
        ops.Api.join consumer)
  in
  received := [];
  ignore (Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:2 program);
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !received)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_has_25 () = check_int "25 benchmarks" 25 (List.length Workload.Registry.all)

let test_registry_names_unique () =
  check_int "unique names" 25 (List.length (List.sort_uniq compare Workload.Registry.names))

let test_registry_find () =
  let e = Workload.Registry.find "ferret" in
  check_string "found" "ferret" e.Workload.Registry.program.Api.name;
  check_bool "not found raises" true
    (try ignore (Workload.Registry.find "nope"); false with Not_found -> true)

let test_registry_figure_sets_valid () =
  List.iter
    (fun set ->
      List.iter
        (fun name ->
          check_bool (name ^ " is registered") true (List.mem name Workload.Registry.names))
        set)
    [
      Workload.Registry.hardest_five;
      Workload.Registry.fig11_set;
      Workload.Registry.fig13_set;
      Workload.Registry.fig14_set;
      Workload.Registry.fig15_set;
      Workload.Registry.fig16_set;
      Workload.Registry.kv_set;
    ];
  check_int "five hardest" 5 (List.length Workload.Registry.hardest_five);
  check_int "fig16 has 12" 12 (List.length Workload.Registry.fig16_set);
  check_int "kv set has 6" 6 (List.length Workload.Registry.kv_set)

let test_registry_scale_parameter () =
  let e = Workload.Registry.find "string_match" in
  let small = e.Workload.Registry.make ~scale:0.5 () in
  let r_small = Runtime.Run.run Runtime.Run.pthreads ~seed:1 ~nthreads:2 small in
  let r_full = Runtime.Run.run Runtime.Run.pthreads ~seed:1 ~nthreads:2 e.Workload.Registry.program in
  check_bool "scale reduces work" true
    (r_small.Stats.Run_result.wall_ns < r_full.Stats.Run_result.wall_ns)

(* ------------------------------------------------------------------ *)
(* Every benchmark on every runtime                                   *)
(* ------------------------------------------------------------------ *)

let det_runtimes =
  [ Runtime.Run.dthreads; Runtime.Run.dwc; Runtime.Run.consequence_rr; Runtime.Run.consequence_ic ]

let test_all_benchmarks_all_runtimes () =
  List.iter
    (fun e ->
      let p = e.Workload.Registry.program in
      List.iter
        (fun rt ->
          let r = Runtime.Run.run rt ~seed:1 ~nthreads:4 p in
          check_bool
            (Printf.sprintf "%s on %s" p.Api.name (Runtime.Run.name rt))
            true
            (r.Stats.Run_result.wall_ns > 0))
        Runtime.Run.all)
    Workload.Registry.all

let test_outputs_agree_across_runtimes () =
  (* Every model logs a schedule-independent checksum; all five libraries
     must agree on it. *)
  List.iter
    (fun e ->
      let p = e.Workload.Registry.program in
      let reference = Runtime.Run.run Runtime.Run.pthreads ~seed:1 ~nthreads:4 p in
      List.iter
        (fun rt ->
          let r = Runtime.Run.run rt ~seed:1 ~nthreads:4 p in
          check_string
            (Printf.sprintf "%s output on %s" p.Api.name (Runtime.Run.name rt))
            reference.Stats.Run_result.output_hash r.Stats.Run_result.output_hash)
        det_runtimes)
    Workload.Registry.all

let test_benchmarks_deterministic () =
  (* Witness stability across two seeds for consequence-ic on every
     benchmark (full four-runtime/multi-seed coverage is in the
     determinism report). *)
  List.iter
    (fun e ->
      let p = e.Workload.Registry.program in
      let w seed =
        Stats.Run_result.deterministic_witness
          (Runtime.Run.run Runtime.Run.consequence_ic ~seed ~nthreads:4 p)
      in
      check_string (p.Api.name ^ " seed-invariant") (w 1) (w 77))
    Workload.Registry.all

let test_benchmark_thread_counts () =
  (* Spot-check the scaling-study benchmarks at several thread counts. *)
  List.iter
    (fun name ->
      let p = (Workload.Registry.find name).Workload.Registry.program in
      List.iter
        (fun n ->
          let r = Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:n p in
          check_bool (Printf.sprintf "%s at %d threads" name n) true (r.Stats.Run_result.wall_ns > 0))
        [ 2; 16; 32 ])
    Workload.Registry.fig11_set

let test_ferret_stage1_thread_exists () =
  let p = (Workload.Registry.find "ferret").Workload.Registry.program in
  let r = Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:8 p in
  let names = List.map (fun ts -> ts.Stats.Run_result.thread_name) r.Stats.Run_result.per_thread in
  check_bool "stage-1 thread present" true (List.mem Workload.Ferret.stage1_name names)

let test_canneal_has_merges () =
  let p = (Workload.Registry.find "canneal").Workload.Registry.program in
  let r = Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:8 p in
  check_bool "page conflicts happen" true (r.Stats.Run_result.pages_merged > 0)

let test_lu_ncb_conflicts_exceed_lu_cb () =
  let run name =
    let p = (Workload.Registry.find name).Workload.Registry.program in
    Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:8 p
  in
  let ncb = run "lu_ncb" and cb = run "lu_cb" in
  check_bool "non-contiguous layout merges more" true
    (ncb.Stats.Run_result.pages_merged > cb.Stats.Run_result.pages_merged)

(* ------------------------------------------------------------------ *)
(* Synthetic programs                                                 *)
(* ------------------------------------------------------------------ *)

let test_synthetic_runs_everywhere () =
  let p = Workload.Synthetic.make ~seed:17 () in
  let reference = Runtime.Run.run Runtime.Run.pthreads ~seed:1 ~nthreads:4 p in
  List.iter
    (fun rt ->
      let r = Runtime.Run.run rt ~seed:1 ~nthreads:4 p in
      check_bool (Runtime.Run.name rt ^ " ran") true (r.Stats.Run_result.wall_ns > 0);
      ignore reference)
    Runtime.Run.all

let test_synthetic_same_seed_same_script () =
  check_bool "op mix reproducible" true
    (Workload.Synthetic.op_mix ~seed:5 ~rounds:20 = Workload.Synthetic.op_mix ~seed:5 ~rounds:20);
  let w, l, wr, b = Workload.Synthetic.op_mix ~seed:5 ~rounds:20 in
  check_int "ops sum to rounds" 20 (w + l + wr + b)

let test_synthetic_lock_heavy () =
  let p = Workload.Synthetic.make_lock_heavy ~seed:9 () in
  let r = Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:4 p in
  check_bool "lots of sync ops" true (r.Stats.Run_result.sync_ops > 100)

let prop_synthetic_deterministic =
  QCheck.Test.make ~name:"synthetic programs are deterministic on consequence-ic" ~count:10
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Workload.Synthetic.make ~seed ~rounds:8 () in
      let w s =
        Stats.Run_result.deterministic_witness
          (Runtime.Run.run Runtime.Run.consequence_ic ~seed:s ~nthreads:4 p)
      in
      w 1 = w 424242)

let test_schedule_exposed () =
  let p = (Workload.Registry.find "kmeans").Workload.Registry.program in
  let r = Runtime.Run.run Runtime.Run.consequence_ic ~seed:1 ~nthreads:2 p in
  check_int "schedule matches trace count" r.Stats.Run_result.trace_events
    (List.length r.Stats.Run_result.schedule);
  (* Timestamps are nondecreasing. *)
  let sorted =
    List.for_all2
      (fun (t1, _, _) (t2, _, _) -> t1 <= t2)
      (List.filteri (fun i _ -> i < List.length r.Stats.Run_result.schedule - 1) r.Stats.Run_result.schedule)
      (List.tl r.Stats.Run_result.schedule)
  in
  check_bool "schedule time-ordered" true sorted

let prop_scaled_monotone =
  QCheck.Test.make ~name:"scaled is monotone in the scale factor" ~count:100
    QCheck.(pair (float_range 0.1 4.0) (int_range 1 100_000))
    (fun (s, n) -> Workload.Wl_util.scaled s n <= Workload.Wl_util.scaled (s +. 0.5) n)

let () =
  Alcotest.run "workload"
    [
      ( "wl-util",
        [
          Alcotest.test_case "scaled" `Quick test_scaled;
          Alcotest.test_case "work_amount" `Quick test_work_amount_scales_up;
          Alcotest.test_case "checksum" `Quick test_checksum;
          Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
          Alcotest.test_case "queue rejects negative" `Quick test_queue_rejects_negative;
          Alcotest.test_case "queue blocking" `Quick test_queue_blocking_producer_consumer;
          QCheck_alcotest.to_alcotest prop_scaled_monotone;
        ] );
      ( "registry",
        [
          Alcotest.test_case "25 benchmarks" `Quick test_registry_has_25;
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "figure sets valid" `Quick test_registry_figure_sets_valid;
          Alcotest.test_case "scale parameter" `Quick test_registry_scale_parameter;
        ] );
      ( "execution",
        [
          Alcotest.test_case "all benchmarks, all runtimes" `Slow test_all_benchmarks_all_runtimes;
          Alcotest.test_case "outputs agree across runtimes" `Slow
            test_outputs_agree_across_runtimes;
          Alcotest.test_case "deterministic per benchmark" `Slow test_benchmarks_deterministic;
          Alcotest.test_case "thread-count sweep" `Slow test_benchmark_thread_counts;
          Alcotest.test_case "ferret stage-1 thread" `Quick test_ferret_stage1_thread_exists;
          Alcotest.test_case "canneal merges" `Quick test_canneal_has_merges;
          Alcotest.test_case "lu_ncb vs lu_cb conflicts" `Quick test_lu_ncb_conflicts_exceed_lu_cb;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "runs everywhere" `Quick test_synthetic_runs_everywhere;
          Alcotest.test_case "reproducible scripts" `Quick test_synthetic_same_seed_same_script;
          Alcotest.test_case "lock heavy" `Quick test_synthetic_lock_heavy;
          Alcotest.test_case "schedule exposed" `Quick test_schedule_exposed;
          QCheck_alcotest.to_alcotest prop_synthetic_deterministic;
        ] );
    ]

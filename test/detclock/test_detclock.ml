(* Tests for deterministic logical clocks, the global token, and the
   adaptive overflow policy. *)

module Lc = Detclock.Logical_clock
module Tok = Detclock.Token
module Ofp = Detclock.Overflow_policy

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_opt_int = Alcotest.(check (option int))

(* ------------------------------------------------------------------ *)
(* Logical_clock                                                      *)
(* ------------------------------------------------------------------ *)

let test_lc_register_and_tick () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:0 in
  check_int "starts at 0" 0 (Lc.published c0);
  Lc.tick c0 100;
  Lc.tick c0 50;
  check_int "accumulates" 150 (Lc.published c0)

let test_lc_double_register_rejected () =
  let t = Lc.create () in
  ignore (Lc.register t ~tid:0);
  let raised = try ignore (Lc.register t ~tid:0); false with Invalid_argument _ -> true in
  check_bool "raises" true raised

let test_lc_register_after_finish_ok () =
  let t = Lc.create () in
  let c = Lc.register t ~tid:0 in
  Lc.finish c;
  let c2 = Lc.register t ~tid:0 in
  check_int "fresh clock" 0 (Lc.published c2)

let test_lc_tick_paused_raises () =
  let t = Lc.create () in
  let c = Lc.register t ~tid:0 in
  Lc.pause c;
  check_bool "paused" true (Lc.is_paused c);
  let raised = try Lc.tick c 1; false with Invalid_argument _ -> true in
  check_bool "tick while paused raises" true raised;
  Lc.resume c;
  Lc.tick c 1;
  check_int "resumed" 1 (Lc.published c)

let test_lc_gmic_minimum () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:0 in
  let c1 = Lc.register t ~tid:1 in
  Lc.tick c0 100;
  Lc.tick c1 50;
  check_opt_int "min count wins" (Some 1) (Lc.gmic t);
  check_bool "is_gmic" true (Lc.is_gmic t ~tid:1);
  check_bool "not gmic" false (Lc.is_gmic t ~tid:0)

let test_lc_gmic_tie_breaks_by_tid () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:5 in
  let c1 = Lc.register t ~tid:2 in
  Lc.tick c0 10;
  Lc.tick c1 10;
  check_opt_int "lower tid wins tie" (Some 2) (Lc.gmic t)

let test_lc_departed_excluded () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:0 in
  let c1 = Lc.register t ~tid:1 in
  Lc.tick c1 100;
  check_opt_int "0 is gmic" (Some 0) (Lc.gmic t);
  Lc.depart c0;
  check_opt_int "1 after departure" (Some 1) (Lc.gmic t);
  Lc.arrive c0;
  check_opt_int "0 again after arrival" (Some 0) (Lc.gmic t);
  ignore c0

let test_lc_finished_excluded () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:0 in
  let c1 = Lc.register t ~tid:1 in
  Lc.tick c1 100;
  Lc.finish c0;
  check_opt_int "finished excluded" (Some 1) (Lc.gmic t);
  check_int "live count" 1 (Lc.live_count t)

let test_lc_all_departed_no_gmic () =
  let t = Lc.create () in
  let c = Lc.register t ~tid:0 in
  Lc.depart c;
  check_opt_int "none" None (Lc.gmic t);
  check_int "active 0" 0 (Lc.active_count t)

let test_lc_fast_forward () =
  let t = Lc.create () in
  let c = Lc.register t ~tid:0 in
  Lc.tick c 10;
  check_bool "moves forward" true (Lc.fast_forward c ~to_count:100);
  check_int "at 100" 100 (Lc.published c);
  check_bool "never backward" false (Lc.fast_forward c ~to_count:50);
  check_int "still 100" 100 (Lc.published c)

let test_lc_next_waiting_gap () =
  let t = Lc.create () in
  let c0 = Lc.register t ~tid:0 in
  let c1 = Lc.register t ~tid:1 in
  let c2 = Lc.register t ~tid:2 in
  Lc.tick c0 100;
  Lc.tick c1 140;
  Lc.tick c2 160;
  (* Thread 0 (GMIC) asks: who waits on me?  Only tid 2 is waiting. *)
  Lc.set_waiting t ~tid:2 true;
  check_int "gap to tid 2" 61 (Lc.next_waiting_gap t ~tid:0);
  (* Both waiting: the lower-clock waiter (tid 1) is next. *)
  Lc.set_waiting t ~tid:1 true;
  check_int "gap to tid 1" 41 (Lc.next_waiting_gap t ~tid:0);
  check_int "waiting count" 2 (Lc.waiting_count t);
  (* Nobody waiting. *)
  Lc.set_waiting t ~tid:1 false;
  Lc.set_waiting t ~tid:2 false;
  check_int "no waiter" 0 (Lc.next_waiting_gap t ~tid:0)

(* The incremental (published, tid) index must agree with a fold-based
   oracle over the same clock states, under arbitrary guarded sequences
   of tick / pause / resume / depart / arrive / finish / set_waiting /
   fast_forward. *)
let prop_lc_index_matches_oracle =
  let n_tids = 6 in
  QCheck.Test.make ~name:"clock index agrees with fold oracle" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 120) (int_range 0 1_000_000))
    (fun ops ->
      let t = Lc.create () in
      let clocks = Array.init n_tids (fun tid -> Lc.register t ~tid) in
      let waiting = Array.make n_tids false in
      let apply v =
        let tid = v mod n_tids in
        let c = clocks.(tid) in
        let amount = 1 + (v / 48 mod 997) in
        match v / 6 mod 8 with
        | 0 -> if not (Lc.is_paused c || Lc.is_finished c) then Lc.tick c amount
        | 1 -> Lc.pause c
        | 2 -> Lc.resume c
        | 3 -> Lc.depart c
        | 4 -> Lc.arrive c
        | 5 ->
            Lc.finish c;
            waiting.(tid) <- false
        | 6 ->
            Lc.set_waiting t ~tid true;
            if not (Lc.is_finished c) then waiting.(tid) <- true
        | _ ->
            Lc.set_waiting t ~tid false;
            waiting.(tid) <- false
      in
      List.iter apply ops;
      let key c = (Lc.published c, Lc.tid c) in
      let act c = (not (Lc.is_finished c)) && not (Lc.is_departed c) in
      let visible_waiter c = act c && waiting.(Lc.tid c) in
      let best p =
        Array.fold_left
          (fun acc c ->
            if p c && (acc = None || key c < Option.get acc) then Some (key c) else acc)
          None clocks
      in
      let count p = Array.fold_left (fun n c -> if p c then n + 1 else n) 0 clocks in
      let oracle_gmic = Option.map snd (best act) in
      let ok =
        ref
          (Lc.gmic t = oracle_gmic
          && Lc.active_count t = count act
          && Lc.waiting_count t = count visible_waiter)
      in
      for tid = 0 to n_tids - 1 do
        let c = clocks.(tid) in
        let oracle_gap =
          match best (fun c' -> visible_waiter c' && Lc.tid c' <> tid) with
          | None -> 0
          | Some (pub, _) -> pub - Lc.published c + 1
        in
        ok :=
          !ok
          && Lc.is_gmic t ~tid = (oracle_gmic = Some tid)
          && Lc.is_waiting t ~tid = visible_waiter c
          && Lc.next_waiting_gap t ~tid = oracle_gap
      done;
      !ok)

let test_lc_counts_sorted () =
  let t = Lc.create () in
  let c2 = Lc.register t ~tid:2 in
  let c0 = Lc.register t ~tid:0 in
  Lc.tick c2 5;
  Lc.tick c0 7;
  Alcotest.(check (list (pair int int))) "sorted by tid" [ (0, 7); (2, 5) ] (Lc.counts t)

(* ------------------------------------------------------------------ *)
(* Token                                                              *)
(* ------------------------------------------------------------------ *)

(* Run a scenario where [n] fibers each execute [body eng clocks token
   my_clock] and return the order in which they acquired the token. *)
let token_scenario ~ordering ~n body =
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks ordering in
  let order = ref [] in
  for tid = 0 to n - 1 do
    let expect =
      Sim.Engine.spawn eng ~name:(Printf.sprintf "t%d" tid) (fun () ->
          let c = Lc.register clocks ~tid in
          body eng clocks token c ~record:(fun () -> order := tid :: !order))
    in
    assert (expect = tid)
  done;
  Sim.Engine.run eng;
  List.rev !order

let test_token_gmic_order () =
  (* Three threads with different clocks all request the token at once;
     acquisition must follow instruction-count order. *)
  let order =
    token_scenario ~ordering:Tok.Instruction_count ~n:3 (fun eng clocks token c ~record ->
        let tid = Lc.tid c in
        (* Give them distinct clocks: t0=300, t1=100, t2=200. *)
        Lc.tick c (match tid with 0 -> 300 | 1 -> 100 | _ -> 200);
        Tok.poke token;
        Sim.Engine.advance eng 10;
        Tok.wait token ~tid;
        record ();
        (* Leaving: bump our clock well past others so they become GMIC. *)
        Lc.tick c 1000;
        Tok.release token ~tid;
        ignore clocks)
  in
  Alcotest.(check (list int)) "IC order" [ 1; 2; 0 ] order

let test_token_rr_order () =
  (* Round-robin: regardless of clock values, token goes in tid order. *)
  let order =
    token_scenario ~ordering:Tok.Round_robin ~n:3 (fun eng _clocks token c ~record ->
        let tid = Lc.tid c in
        Lc.tick c (match tid with 0 -> 999 | 1 -> 5 | _ -> 500);
        Tok.poke token;
        Sim.Engine.advance eng 10;
        Tok.wait token ~tid;
        record ();
        Tok.release token ~tid)
  in
  Alcotest.(check (list int)) "RR order" [ 0; 1; 2 ] order

let test_token_rr_multiple_rounds () =
  let order =
    token_scenario ~ordering:Tok.Round_robin ~n:2 (fun eng _clocks token c ~record ->
        let tid = Lc.tid c in
        for _ = 1 to 2 do
          Sim.Engine.advance eng 5;
          Tok.wait token ~tid;
          record ();
          Tok.release token ~tid
        done)
  in
  Alcotest.(check (list int)) "alternates" [ 0; 1; 0; 1 ] order

let test_token_waits_for_nonwaiting_winner () =
  (* Under IC, the GMIC thread is busy computing; a waiter with a higher
     clock must wait until the GMIC thread's published clock passes it. *)
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  let acquired_at = ref (-1) in
  ignore
    (Sim.Engine.spawn eng ~name:"busy" (fun () ->
         let c = Lc.register clocks ~tid:0 in
         (* Simulate a long chunk published in pieces. *)
         for _ = 1 to 10 do
           Sim.Engine.advance eng 100;
           Lc.tick c 50;
           Tok.poke token
         done));
  ignore
    (Sim.Engine.spawn eng ~name:"waiter" (fun () ->
         let c = Lc.register clocks ~tid:1 in
         Lc.tick c 220;
         Tok.poke token;
         Tok.wait token ~tid:1;
         acquired_at := Sim.Engine.now eng;
         Tok.release token ~tid:1;
         ignore c));
  Sim.Engine.run eng;
  (* Thread 0 reaches 250 > 220 after its 5th publication at t=500. *)
  check_int "acquired when clock passed" 500 !acquired_at

let test_token_depart_unblocks_waiter () =
  (* The GMIC thread departs (e.g. blocks on a lock); a waiting thread
     with a larger clock must immediately become eligible. *)
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  let got = ref false in
  ignore
    (Sim.Engine.spawn eng ~name:"low" (fun () ->
         let c = Lc.register clocks ~tid:0 in
         Sim.Engine.advance eng 50;
         Lc.depart c;
         Tok.poke token;
         Sim.Engine.block eng ~reason:"parked"))
  |> ignore;
  ignore
    (Sim.Engine.spawn eng ~name:"high" (fun () ->
         let c = Lc.register clocks ~tid:1 in
         Lc.tick c 1000;
         Tok.poke token;
         Tok.wait token ~tid:1;
         got := true;
         Tok.release token ~tid:1;
         (* Wake the parked thread so the run can end in deadlock-free
            fashion: we just unblock it to let it finish. *)
         Sim.Engine.wakeup eng 0;
         ignore c));
  Sim.Engine.run eng;
  check_bool "waiter got token after depart" true !got

let test_token_release_without_hold_raises () =
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  let raised = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         ignore (Lc.register clocks ~tid:0);
         (try Tok.release token ~tid:0 with Invalid_argument _ -> raised := true)));
  Sim.Engine.run eng;
  check_bool "raises" true !raised

let test_token_last_release_published () =
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         let c = Lc.register clocks ~tid:0 in
         Lc.tick c 777;
         Tok.wait token ~tid:0;
         Tok.release token ~tid:0;
         ignore c));
  Sim.Engine.run eng;
  check_int "records releaser clock" 777 (Tok.last_release_published token);
  check_int "one acquisition" 1 (Tok.acquisitions token)

let test_token_holder_and_waiting_introspection () =
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  let observed_holder = ref None in
  let observed_waiting = ref false in
  ignore
    (Sim.Engine.spawn eng ~name:"holder" (fun () ->
         let c = Lc.register clocks ~tid:0 in
         Tok.wait token ~tid:0;
         Sim.Engine.advance eng 100;
         Lc.tick c 1;
         Tok.release token ~tid:0));
  ignore
    (Sim.Engine.spawn eng ~name:"waiter" (fun () ->
         ignore (Lc.register clocks ~tid:1);
         Sim.Engine.advance eng 10;
         observed_holder := Tok.holder token;
         Tok.wait token ~tid:1;
         Tok.release token ~tid:1));
  ignore
    (Sim.Engine.spawn eng ~name:"observer" (fun () ->
         ignore (Lc.register clocks ~tid:2);
         Sim.Engine.advance eng 50;
         observed_waiting := Tok.is_waiting token ~tid:1;
         (* Push own clock up so we never become the blocking GMIC. *)
         let c = List.assoc 2 (Lc.counts clocks) in
         ignore c;
         Lc.tick (Lc.register (Lc.create ()) ~tid:0) 0))
  |> ignore;
  Sim.Engine.run eng;
  check_opt_int "held by 0" (Some 0) !observed_holder;
  check_bool "1 was waiting" true !observed_waiting

let test_token_handoff_single_wakeup () =
  (* Direct handoff: every token transfer to a blocked waiter posts
     exactly one engine wakeup — never a broadcast over the waiter set. *)
  let eng = Sim.Engine.create ~seed:1 () in
  let clocks = Lc.create () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  let spawn tid ticks =
    ignore
      (Sim.Engine.spawn eng ~name:(Printf.sprintf "t%d" tid) (fun () ->
           let c = Lc.register clocks ~tid in
           Lc.tick c ticks;
           Tok.poke token;
           Sim.Engine.advance eng 10;
           Tok.wait token ~tid;
           Sim.Engine.advance eng 10;
           (* Push well past everyone so the next-lowest waiter becomes
              GMIC on release. *)
           Lc.tick c 10_000;
           Tok.release token ~tid))
  in
  spawn 0 0;
  spawn 1 100;
  spawn 2 200;
  spawn 3 300;
  Sim.Engine.run eng;
  check_int "four acquisitions" 4 (Tok.acquisitions token);
  check_int "one wakeup per handoff" 3 (Tok.wakeups token)

let test_token_eligible_now () =
  let clocks = Lc.create () in
  let eng = Sim.Engine.create ~seed:1 () in
  let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
  check_opt_int "nobody" None (Tok.eligible_now token);
  let c0 = Lc.register clocks ~tid:0 in
  check_opt_int "tid 0" (Some 0) (Tok.eligible_now token);
  ignore c0

(* ------------------------------------------------------------------ *)
(* Overflow_policy                                                    *)
(* ------------------------------------------------------------------ *)

let test_ofp_base_and_doubling () =
  let p = Ofp.create (Ofp.Adaptive { base = 5_000; cap = 40_000 }) in
  Ofp.begin_chunk p;
  check_int "base" 5_000 (Ofp.next_interval p ~waiter_gap:0);
  check_int "doubled" 10_000 (Ofp.next_interval p ~waiter_gap:0);
  check_int "doubled again" 20_000 (Ofp.next_interval p ~waiter_gap:0)

let test_ofp_chunk_reset () =
  let p = Ofp.create (Ofp.Adaptive { base = 5_000; cap = 40_000 }) in
  Ofp.begin_chunk p;
  ignore (Ofp.next_interval p ~waiter_gap:0);
  ignore (Ofp.next_interval p ~waiter_gap:0);
  Ofp.begin_chunk p;
  check_int "reset to base" 5_000 (Ofp.next_interval p ~waiter_gap:0)

let test_ofp_targets_waiter () =
  let p = Ofp.create (Ofp.Adaptive { base = 5_000; cap = 40_000 }) in
  Ofp.begin_chunk p;
  check_int "exact gap" 123 (Ofp.next_interval p ~waiter_gap:123)

let test_ofp_nonpositive_gap_falls_back () =
  let p = Ofp.create (Ofp.Adaptive { base = 5_000; cap = 40_000 }) in
  Ofp.begin_chunk p;
  check_int "ignores stale gap" 5_000 (Ofp.next_interval p ~waiter_gap:0)

let test_ofp_fixed () =
  let p = Ofp.create (Ofp.Fixed 1_000) in
  Ofp.begin_chunk p;
  check_int "fixed" 1_000 (Ofp.next_interval p ~waiter_gap:0);
  check_int "fixed despite gap" 1_000 (Ofp.next_interval p ~waiter_gap:5);
  check_int "count" 2 (Ofp.overflows_scheduled p)

let test_ofp_default_base () = check_int "paper value" 5_000 Ofp.default_base

let prop_ofp_always_positive =
  QCheck.Test.make ~name:"overflow interval is always >= 1" ~count:200
    QCheck.(pair (int_range 1 10) (list (int_range (-100) 10_000)))
    (fun (base, gaps) ->
      let p = Ofp.create (Ofp.Adaptive { base; cap = 40_000 }) in
      Ofp.begin_chunk p;
      List.for_all (fun gap -> Ofp.next_interval p ~waiter_gap:gap >= 1) gaps)

let () =
  Alcotest.run "detclock"
    [
      ( "logical-clock",
        [
          Alcotest.test_case "register and tick" `Quick test_lc_register_and_tick;
          Alcotest.test_case "double register rejected" `Quick test_lc_double_register_rejected;
          Alcotest.test_case "register after finish" `Quick test_lc_register_after_finish_ok;
          Alcotest.test_case "tick paused raises" `Quick test_lc_tick_paused_raises;
          Alcotest.test_case "gmic minimum" `Quick test_lc_gmic_minimum;
          Alcotest.test_case "gmic tie by tid" `Quick test_lc_gmic_tie_breaks_by_tid;
          Alcotest.test_case "departed excluded" `Quick test_lc_departed_excluded;
          Alcotest.test_case "finished excluded" `Quick test_lc_finished_excluded;
          Alcotest.test_case "all departed" `Quick test_lc_all_departed_no_gmic;
          Alcotest.test_case "fast forward" `Quick test_lc_fast_forward;
          Alcotest.test_case "next waiting gap" `Quick test_lc_next_waiting_gap;
          Alcotest.test_case "counts sorted" `Quick test_lc_counts_sorted;
          QCheck_alcotest.to_alcotest prop_lc_index_matches_oracle;
        ] );
      ( "token",
        [
          Alcotest.test_case "gmic order" `Quick test_token_gmic_order;
          Alcotest.test_case "rr order" `Quick test_token_rr_order;
          Alcotest.test_case "rr multiple rounds" `Quick test_token_rr_multiple_rounds;
          Alcotest.test_case "waits for busy gmic" `Quick test_token_waits_for_nonwaiting_winner;
          Alcotest.test_case "depart unblocks waiter" `Quick test_token_depart_unblocks_waiter;
          Alcotest.test_case "release without hold" `Quick test_token_release_without_hold_raises;
          Alcotest.test_case "last release published" `Quick test_token_last_release_published;
          Alcotest.test_case "holder/waiting introspection" `Quick
            test_token_holder_and_waiting_introspection;
          Alcotest.test_case "handoff single wakeup" `Quick test_token_handoff_single_wakeup;
          Alcotest.test_case "eligible now" `Quick test_token_eligible_now;
        ] );
      ( "overflow-policy",
        [
          Alcotest.test_case "base and doubling" `Quick test_ofp_base_and_doubling;
          Alcotest.test_case "chunk reset" `Quick test_ofp_chunk_reset;
          Alcotest.test_case "targets waiter" `Quick test_ofp_targets_waiter;
          Alcotest.test_case "nonpositive gap fallback" `Quick test_ofp_nonpositive_gap_falls_back;
          Alcotest.test_case "fixed" `Quick test_ofp_fixed;
          Alcotest.test_case "default base" `Quick test_ofp_default_base;
          QCheck_alcotest.to_alcotest prop_ofp_always_positive;
        ] );
    ]

(* Tests for lib/tune: the controller kernel's pure decision function
   (endpoint exactness, annealing monotonicity, validation), the
   prediction/extraction helpers, params and profile JSON round-trips,
   the profile-to-params mapping, and an end-to-end quick search with
   its ordering guarantees and winner cross-checks. *)

module Ctl = Runtime.Tune_ctl
module Cfg = Runtime.Config
module R = Runtime.Run
module Res = Stats.Run_result

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let program_of name = (Workload.Registry.find name).Workload.Registry.program

(* --- kernel ----------------------------------------------------------- *)

let test_decide_endpoints_exact () =
  let p = Ctl.default in
  let d0 = Ctl.decide p ~epoch:0 in
  check_int "epoch 0 base is warm_base" p.Ctl.warm_base d0.Ctl.chunk_base;
  check_int "epoch 0 cap is warm_cap" p.Ctl.warm_cap d0.Ctl.chunk_cap;
  check_int "epoch 0 coarsen is warm_coarsen" p.Ctl.warm_coarsen d0.Ctl.coarsen;
  let dn = Ctl.decide p ~epoch:p.Ctl.epochs in
  check_int "final base is target_base" p.Ctl.target_base dn.Ctl.chunk_base;
  check_int "final cap is target_cap" p.Ctl.target_cap dn.Ctl.chunk_cap;
  check_int "final coarsen is target_coarsen" p.Ctl.target_coarsen dn.Ctl.coarsen;
  (* Decisions are constant past the final epoch. *)
  check_bool "constant after final epoch" true
    (Ctl.decide p ~epoch:(p.Ctl.epochs + 5) = dn)

let test_decide_monotone_and_bounded () =
  let p = Ctl.default in
  let ds = List.init (p.Ctl.epochs + 1) (fun e -> Ctl.decide p ~epoch:e) in
  List.iteri
    (fun i (d : Ctl.decision) ->
      check_bool "cap >= base" true (d.Ctl.chunk_cap >= d.Ctl.chunk_base);
      check_bool "coarsen within bounds" true
        (d.Ctl.coarsen >= p.Ctl.coarsen_floor && d.Ctl.coarsen <= p.Ctl.coarsen_cap);
      if i > 0 then begin
        let prev = List.nth ds (i - 1) in
        (* default anneals upward: warm < target on every knob *)
        check_bool "base non-decreasing" true (d.Ctl.chunk_base >= prev.Ctl.chunk_base);
        check_bool "coarsen non-decreasing" true (d.Ctl.coarsen >= prev.Ctl.coarsen)
      end)
    ds

let test_validate_rejects_bad_params () =
  let reject p =
    match Ctl.validate p with
    | () -> Alcotest.fail "invalid params accepted"
    | exception Invalid_argument _ -> ()
  in
  reject { Ctl.default with Ctl.period = 0 };
  reject { Ctl.default with Ctl.epochs = -1 };
  reject { Ctl.default with Ctl.warm_cap = Ctl.default.Ctl.warm_base - 1 };
  reject { Ctl.default with Ctl.target_base = 0 };
  reject { Ctl.default with Ctl.coarsen_cap = Ctl.default.Ctl.coarsen_floor - 1 }

let gen_params =
  (* Valid by construction: caps forced above bases. *)
  let open QCheck.Gen in
  let pos hi = int_range 1 hi in
  pos 50_000 >>= fun period ->
  int_range 0 10 >>= fun epochs ->
  pos 100_000 >>= fun warm_base ->
  pos 200_000 >>= fun wc ->
  pos 1_000_000 >>= fun warm_coarsen ->
  pos 100_000 >>= fun target_base ->
  pos 500_000 >>= fun tc ->
  pos 2_000_000 >>= fun target_coarsen ->
  pos 100_000 >>= fun cf ->
  pos 4_000_000 >>= fun cc ->
  let coarsen_floor = min cf cc in
  return
    {
      Ctl.period;
      epochs;
      warm_base;
      warm_cap = max warm_base wc;
      warm_coarsen;
      target_base;
      target_cap = max target_base tc;
      target_coarsen;
      coarsen_floor;
      coarsen_cap = max coarsen_floor cc;
    }

let arb_params = QCheck.make ~print:(Format.asprintf "%a" Ctl.pp_params) gen_params

let prop_params_json_roundtrip =
  QCheck.Test.make ~name:"Tune_ctl params JSON round-trip" ~count:300 arb_params (fun p ->
      match Ctl.params_of_json (Ctl.params_to_json p) with
      | Ok p' -> p = p'
      | Error _ -> false)

let prop_decide_endpoints_any_params =
  (* Endpoints exact, modulo the floor/cap clamps decide applies.  With
     epochs = 0 the controller is degenerate: it stays at the warm values
     forever (the static-grid encoding the search relies on). *)
  QCheck.Test.make ~name:"decide endpoints exact for any valid params" ~count:300 arb_params
    (fun p ->
      let clamp v = max p.Ctl.coarsen_floor (min p.Ctl.coarsen_cap v) in
      let d0 = Ctl.decide p ~epoch:0 in
      let warm_ok =
        d0.Ctl.chunk_base = p.Ctl.warm_base
        && d0.Ctl.chunk_cap = max p.Ctl.warm_base p.Ctl.warm_cap
        && d0.Ctl.coarsen = clamp p.Ctl.warm_coarsen
      in
      let dn = Ctl.decide p ~epoch:p.Ctl.epochs in
      let final_ok =
        if p.Ctl.epochs = 0 then dn = d0
        else
          dn.Ctl.chunk_base = p.Ctl.target_base
          && dn.Ctl.chunk_cap = max p.Ctl.target_base p.Ctl.target_cap
          && dn.Ctl.coarsen = clamp p.Ctl.target_coarsen
      in
      warm_ok && final_ok)

(* --- prediction vs recorded events ------------------------------------ *)

let test_prediction_matches_recording () =
  let params = Ctl.default in
  let tuned = Cfg.with_adaptive_tuning ~params Cfg.consequence_ic in
  let log, _ = Replay.Schedule.record (R.Det tuned) ~seed:1 ~nthreads:4 (program_of "kmeans") in
  let events = Array.to_list log.Replay.Schedule.events in
  let streams = Tune.Controller.of_events events in
  check_bool "some decisions recorded" true (streams <> []);
  check_bool "every stream is a prefix of the prediction" true
    (Tune.Controller.matches_prediction params events);
  (* Each stream's milestones are exact. *)
  List.iter
    (fun (_tid, applied) ->
      List.iteri
        (fun i (a : Tune.Controller.applied) ->
          check_int "epochs in order" i a.Tune.Controller.epoch;
          check_int "exact milestone" (Ctl.milestone params ~epoch:i) a.Tune.Controller.ic)
        applied)
    streams

let test_prediction_catches_corruption () =
  let params = Ctl.default in
  let wrong =
    Runtime.Rt_event.Tune_decision
      {
        tid = 0;
        epoch = 0;
        ic = 0;
        chunk_base = 123;
        chunk_cap = 456;
        coarsen = 789;
        coarsen_floor = 1;
        coarsen_cap = 1_000_000;
      }
  in
  check_bool "corrupted decision rejected" false
    (Tune.Controller.matches_prediction params [ wrong ])

(* --- profile-to-params ------------------------------------------------ *)

let test_params_of_profile_valid () =
  List.iter
    (fun name ->
      let c = Prof.Profile.create () in
      let res =
        R.run R.consequence_ic ~seed:1 ~nthreads:4 ~obs:(Prof.Profile.sink c)
          (program_of name)
      in
      let prof = Prof.Profile.finish c ~wall_ns:res.Res.wall_ns in
      let p = Tune.Controller.params_of_profile prof in
      (* must validate, and warmup must start at or below the target *)
      Ctl.validate p;
      check_bool "warm_base <= target_base" true (p.Ctl.warm_base <= p.Ctl.target_base))
    [ "kmeans"; "histogram"; "ferret" ]

(* --- tuned profiles --------------------------------------------------- *)

let test_profile_file_roundtrip () =
  let t =
    {
      Tune.Profiles.workload = "kmeans";
      runtime = "consequence-ic";
      nthreads = 8;
      seed = 1;
      source = "hill-climb";
      params = Ctl.default;
      wall_default_ns = 1_000_000;
      wall_tuned_ns = 900_000;
    }
  in
  let path = Filename.temp_file "consequence" ".tune.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tune.Profiles.save t path;
      match Tune.Profiles.load path with
      | Ok t' -> check_bool "round-trips" true (t = t')
      | Error e -> Alcotest.failf "load failed: %s" e);
  check_bool "missing file is an Error" true
    (match Tune.Profiles.load "/nonexistent/x.tune.json" with Error _ -> true | Ok _ -> false)

let test_profile_apply () =
  let t =
    {
      Tune.Profiles.workload = "kmeans";
      runtime = "consequence-ic";
      nthreads = 8;
      seed = 1;
      source = "grid";
      params = Ctl.default;
      wall_default_ns = 1;
      wall_tuned_ns = 1;
    }
  in
  let cfg = Tune.Profiles.apply t Cfg.consequence_ic in
  check_bool "controller on" true (Cfg.tuned cfg);
  Alcotest.(check string) "name tagged" "consequence-ic-tuned" cfg.Cfg.name

(* --- end-to-end search ------------------------------------------------ *)

let test_quick_search_orderings_and_checks () =
  let r = Tune.Search.search ~nthreads:4 ~quick:true "histogram" in
  (* The hand grid is inside the search space, and its default point
     ties the untuned config exactly: both orderings are structural. *)
  check_bool "searched <= hand best" true
    (r.Tune.Search.wall_searched_ns <= r.Tune.Search.wall_hand_best_ns);
  check_bool "hand best <= default" true
    (r.Tune.Search.wall_hand_best_ns <= r.Tune.Search.wall_default_ns);
  check_bool "winner seed-stable" true r.Tune.Search.seed_stable;
  check_bool "winner replay-checked" true r.Tune.Search.replay_checked;
  check_bool "winner replay ok" true r.Tune.Search.replay_ok;
  check_bool "evaluations counted" true (r.Tune.Search.evaluations > 5);
  (* The saved profile reproduces the searched wall time when re-run. *)
  let tuned = Tune.Profiles.apply (Tune.Search.to_profile r) Cfg.consequence_ic in
  let res = R.run (R.Det tuned) ~seed:1 ~nthreads:4 (program_of "histogram") in
  check_int "profile reproduces searched wall" r.Tune.Search.wall_searched_ns
    res.Res.wall_ns

let test_hand_default_grid_point_ties_untuned () =
  (* The keystone of the searched <= default guarantee, checked directly:
     the epochs=0 grid point with the shipped knob values is bit-identical
     to the untuned config — same witness, same simulated wall time. *)
  let _, params = List.hd Tune.Search.hand_grid in
  check_int "grid point is degenerate" 0 params.Ctl.epochs;
  List.iter
    (fun name ->
      let prog = program_of name in
      List.iter
        (fun (rt, cfg) ->
          let base = R.run rt ~seed:1 ~nthreads:8 prog in
          let tuned =
            R.run (R.Det (Cfg.with_adaptive_tuning ~params cfg)) ~seed:1 ~nthreads:8 prog
          in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s witness" name cfg.Cfg.name)
            (Res.deterministic_witness base)
            (Res.deterministic_witness tuned);
          check_int
            (Printf.sprintf "%s/%s wall" name cfg.Cfg.name)
            base.Res.wall_ns tuned.Res.wall_ns)
        [
          (R.consequence_ic, Cfg.consequence_ic);
          (R.consequence_rr, Cfg.consequence_rr);
          (R.dthreads, Cfg.dthreads);
        ])
    [ "kmeans"; "histogram" ]

let () =
  Alcotest.run "tune"
    [
      ( "kernel",
        [
          Alcotest.test_case "decide endpoints exact" `Quick test_decide_endpoints_exact;
          Alcotest.test_case "decide monotone and bounded" `Quick
            test_decide_monotone_and_bounded;
          Alcotest.test_case "validate rejects bad params" `Quick
            test_validate_rejects_bad_params;
          QCheck_alcotest.to_alcotest prop_params_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_decide_endpoints_any_params;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "recording matches prediction" `Quick
            test_prediction_matches_recording;
          Alcotest.test_case "corruption caught" `Quick test_prediction_catches_corruption;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "params from profiler shares" `Quick test_params_of_profile_valid;
          Alcotest.test_case "profile file round-trip" `Quick test_profile_file_roundtrip;
          Alcotest.test_case "profile apply" `Quick test_profile_apply;
        ] );
      ( "search",
        [
          Alcotest.test_case "quick search orderings + checks" `Quick
            test_quick_search_orderings_and_checks;
          Alcotest.test_case "hand-default ties untuned exactly" `Quick
            test_hand_default_grid_point_ties_untuned;
        ] );
    ]

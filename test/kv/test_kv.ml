(* Tests for the deterministic transactional KV service (lib/kv):
   intent codec and arbitration unit tests, the strict-serializability
   oracle (deterministic sweep + qcheck sampling), the
   snapshot-reads-never-abort property, cross-runtime byte-identity of
   outcomes and abort counts, golden witnesses, and the latency
   accounting. *)

module R = Runtime.Run
module Res = Stats.Run_result

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let shapes = Kv.Traffic.all

(* ------------------------------------------------------------------ *)
(* Layout and codec                                                   *)
(* ------------------------------------------------------------------ *)

let test_layout_regions_disjoint () =
  (* Key space, status pages and per-thread intent regions must tile
     distinct page ranges of the heap. *)
  let last_key = Kv.Layout.ver_addr (Kv.Layout.n_keys - 1) + 8 in
  check_bool "keys below status" true (last_key <= Kv.Layout.remaining_addr 0);
  let last_status = Kv.Layout.aborts_addr (Kv.Layout.max_threads - 1) + 8 in
  check_bool "status below intents" true (last_status <= Kv.Layout.intent_addr 0);
  let last_intent = Kv.Layout.intent_addr (Kv.Layout.max_threads - 1) + Kv.Layout.intent_bytes in
  check_bool "intents inside heap" true
    (last_intent <= Kv.Layout.heap_pages * Kv.Layout.page_size);
  check_int "intent regions page-aligned" 0 (Kv.Layout.intent_addr 3 mod Kv.Layout.page_size)

let gen_intents =
  let open QCheck.Gen in
  let key = int_bound (Kv.Layout.n_keys - 1) in
  let read_entry =
    map3
      (fun key len ver -> { Kv.Intent.key; len = 1 + (len mod 8); ver })
      key (int_bound 7) (int_bound 0xFFFF)
  in
  list_size (int_bound 6)
    (map3
       (fun seq reads writes -> { Kv.Intent.seq; reads; writes })
       (int_bound 0xFF)
       (list_size (int_bound 3) read_entry)
       (list_size (int_bound 3) key))

let prop_intent_roundtrip =
  QCheck.Test.make ~name:"intent codec round-trips" ~count:300
    (QCheck.make gen_intents)
    (fun intents ->
      QCheck.assume (Kv.Intent.words_for intents * 8 <= Kv.Layout.intent_bytes);
      let buf = Bytes.make Kv.Layout.intent_bytes '\255' in
      Bytes.blit (Kv.Intent.encode intents) 0 buf 0 (Kv.Intent.words_for intents * 8);
      Kv.Intent.decode buf = intents)

let test_intent_capacity () =
  (* A full batch of worst-case transactions must fit in the region. *)
  let worst =
    List.init Kv.Service.batch (fun seq ->
        {
          Kv.Intent.seq;
          reads = List.init Kv.Txn.max_reads (fun i -> { Kv.Intent.key = i; len = 8; ver = 0 });
          writes = List.init Kv.Txn.max_writes Fun.id;
        })
  in
  check_bool "worst-case batch fits" true
    (Kv.Intent.words_for worst * 8 <= Kv.Layout.intent_bytes)

(* ------------------------------------------------------------------ *)
(* Arbitration                                                        *)
(* ------------------------------------------------------------------ *)

let test_priority_rotation_bijective () =
  List.iter
    (fun nthreads ->
      List.iter
        (fun round ->
          let seen = Array.make nthreads false in
          for tid = 0 to nthreads - 1 do
            let p = Kv.Validate.priority_of ~round ~nthreads tid in
            check_bool "in range" true (p >= 0 && p < nthreads);
            check_bool "no collision" false seen.(p);
            seen.(p) <- true;
            check_int "inverse" tid (Kv.Validate.tid_of_priority ~round ~nthreads p)
          done)
        [ 0; 1; 7; 12 ])
    [ 1; 2; 4; 5 ]

let test_fold_conflict_semantics () =
  (* Two threads, same round.  At round 0 priority order is t0 < t1:
     t1's first txn writes key 5 which t0's committed txn also writes
     (abort), t1's second reads key 9 written by nobody (commit). *)
  let r k = { Kv.Intent.key = k; len = 1; ver = 0 } in
  let intents =
    [|
      [ { Kv.Intent.seq = 0; reads = [ r 1 ]; writes = [ 5 ] } ];
      [
        { Kv.Intent.seq = 10; reads = [ r 2 ]; writes = [ 5 ] };
        { Kv.Intent.seq = 11; reads = [ r 9 ]; writes = [ 7 ] };
        (* Reading a key an earlier-committed txn wrote also aborts. *)
        { Kv.Intent.seq = 12; reads = [ r 5 ]; writes = [] };
      ];
    |]
  in
  let v0 = Kv.Validate.fold ~round:0 ~nthreads:2 intents in
  check_bool "t0 commits" true v0.(0).(0);
  check_bool "t1 w-w conflict aborts" false v0.(1).(0);
  check_bool "t1 disjoint commits" true v0.(1).(1);
  check_bool "t1 r-w conflict aborts" false v0.(1).(2);
  (* Round 1 rotates priority: t1 goes first and wins the w-w race. *)
  let v1 = Kv.Validate.fold ~round:1 ~nthreads:2 intents in
  check_bool "rotated: t1 commits" true v1.(1).(0);
  check_bool "rotated: t0 aborts" false v1.(0).(0)

(* ------------------------------------------------------------------ *)
(* Strict serializability (oracle)                                    *)
(* ------------------------------------------------------------------ *)

let probe_outcome ?(runtime = R.consequence_ic) ?(seed = 1) ?(nthreads = 4) ?requests shape =
  let program, outcome = Kv.Service.probe ?requests shape in
  ignore (R.run runtime ~seed ~nthreads program);
  outcome ()

let test_oracle_all_shapes () =
  List.iter
    (fun shape ->
      let o = probe_outcome shape in
      check_int
        (Kv.Traffic.name shape ^ " all requests completed")
        (o.Kv.Service.oc_nthreads * o.Kv.Service.oc_requests)
        (Kv.Oracle.completed o);
      (match Kv.Oracle.check o with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "%s not serializable: %s" (Kv.Traffic.name shape) m.Kv.Oracle.what);
      check_bool
        (Kv.Traffic.name shape ^ " snapshots never abort")
        false (Kv.Oracle.snapshot_aborts o))
    shapes

let test_oracle_detects_lost_update () =
  (* The oracle itself must not be vacuous: corrupt one completed
     update's observed read sum and it must object. *)
  let o = probe_outcome Kv.Traffic.Zipf in
  let corrupted =
    let bumped = ref false in
    List.map
      (fun (r : Kv.Service.record_) ->
        if (not !bumped) && r.Kv.Service.rc_txn.Kv.Txn.kind = Kv.Txn.Update then begin
          bumped := true;
          { r with Kv.Service.rc_read_sum = r.Kv.Service.rc_read_sum + 1 }
        end
        else r)
      o.Kv.Service.oc_records
  in
  check_bool "oracle rejects corrupted history" true
    (match Kv.Oracle.check { o with Kv.Service.oc_records = corrupted } with
    | Error _ -> true
    | Ok () -> false)

let prop_serializable =
  (* Sampled sweep: shape x thread count x request count x runtime
     (ic / rr alternate), all strictly serializable with no snapshot
     aborts. *)
  let gen =
    QCheck.Gen.(
      map3
        (fun shape nthreads (requests, rr) -> (shape, 1 + nthreads, 4 + requests, rr))
        (oneofl shapes) (int_bound 5)
        (pair (int_bound 20) bool))
  in
  let print (shape, nthreads, requests, rr) =
    Printf.sprintf "%s t=%d req=%d rt=%s" (Kv.Traffic.name shape) nthreads requests
      (if rr then "rr" else "ic")
  in
  QCheck.Test.make ~name:"every sampled run is strictly serializable" ~count:25
    (QCheck.make ~print gen)
    (fun (shape, nthreads, requests, rr) ->
      let runtime = if rr then R.consequence_rr else R.consequence_ic in
      let o = probe_outcome ~runtime ~nthreads ~requests shape in
      Kv.Oracle.completed o = nthreads * requests
      && Kv.Oracle.check o = Ok ()
      && not (Kv.Oracle.snapshot_aborts o))

(* ------------------------------------------------------------------ *)
(* Cross-runtime identity                                             *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 7 ]

let run_one runtime ~seed shape =
  R.run runtime ~seed ~nthreads:4 ((Workload.Registry.find (Kv.Traffic.name shape)).program)

let aborts r = Obs.Metrics.counter_value r.Res.metrics "kv:aborts"
let commits r = Obs.Metrics.counter_value r.Res.metrics "kv:commits"

let test_outcomes_identical_across_all_runtimes () =
  (* Memory image, output trace and commit/abort counts must be
     byte-identical across every runtime — even the nondeterministic
     pthreads baseline — and every seed.  Only sync-order hashes (and
     timings) may differ between runtimes. *)
  let all_runtimes =
    [ R.pthreads; R.dthreads; R.dwc; R.consequence_rr; R.consequence_ic;
      R.Det Runtime.Config.consequence_pipe; R.domains ]
  in
  List.iter
    (fun shape ->
      let reference = run_one R.consequence_ic ~seed:1 shape in
      List.iter
        (fun runtime ->
          List.iter
            (fun seed ->
              let r = run_one runtime ~seed shape in
              let ctx =
                Printf.sprintf "%s/%s seed=%d" (Kv.Traffic.name shape) (R.name runtime) seed
              in
              check_string (ctx ^ " mem") reference.Res.mem_hash r.Res.mem_hash;
              check_string (ctx ^ " out") reference.Res.output_hash r.Res.output_hash;
              check_int (ctx ^ " aborts") (aborts reference) (aborts r);
              check_int (ctx ^ " commits") (commits reference) (commits r))
            seeds)
        all_runtimes)
    shapes

let test_full_witness_identity_ic_pipe_domains () =
  (* The instruction-count family shares one deterministic schedule, so
     the complete witness (including sync order) is identical across the
     serial DES, the pipelined-commit DES and real multicore domains. *)
  List.iter
    (fun shape ->
      List.iter
        (fun seed ->
          let base = Res.deterministic_witness (run_one R.consequence_ic ~seed shape) in
          List.iter
            (fun runtime ->
              check_string
                (Printf.sprintf "%s/%s seed=%d" (Kv.Traffic.name shape) (R.name runtime)
                   seed)
                base
                (Res.deterministic_witness (run_one runtime ~seed shape)))
            [ R.Det Runtime.Config.consequence_pipe; R.domains ])
        seeds)
    shapes

let test_witness_seed_invariant_per_runtime () =
  List.iter
    (fun shape ->
      List.iter
        (fun runtime ->
          let w = List.map (fun seed -> Res.deterministic_witness (run_one runtime ~seed shape)) seeds in
          check_int
            (Printf.sprintf "%s/%s one witness across seeds" (Kv.Traffic.name shape)
               (R.name runtime))
            1
            (List.length (List.sort_uniq compare w)))
        [ R.dthreads; R.dwc; R.consequence_rr; R.consequence_ic ])
    shapes

(* Golden witnesses: 4 threads, seed 1.  The ic strings also pin pipe and
   domains (full-witness identity above); rr pins the round-robin token
   order.  Regenerate with:
     dune exec bin/consequence_cli.exe -- run <shape> -r {ic,rr} -t 4 -s 1 *)
let golden =
  [
    ("kv_uniform", "mem:f3957200e39a2ec0|sync:1e3876004cd86e85|out:91c6b054375636f2",
     "mem:f3957200e39a2ec0|sync:fee2e11a0b89e0d9|out:91c6b054375636f2");
    ("kv_zipf", "mem:9a44c034e70d1e30|sync:37b559de50208c2f|out:dfcbdd99c71dee29",
     "mem:9a44c034e70d1e30|sync:4c10bc9d4d42088b|out:dfcbdd99c71dee29");
    ("kv_hot", "mem:79b6d55b9ae1078a|sync:3ab79e68fc472387|out:a1c4922804e0d28e",
     "mem:79b6d55b9ae1078a|sync:6bd933eb51fc995b|out:a1c4922804e0d28e");
    ("kv_read", "mem:9e724ce5ccfb9be0|sync:465da9c8d7f12d99|out:758e8e527da14662",
     "mem:9e724ce5ccfb9be0|sync:a5bd1f7307317cd1|out:758e8e527da14662");
    ("kv_write", "mem:0eb49b7d7782cc24|sync:d93516ce46023be9|out:16a2b16c4f0a0ad7",
     "mem:0eb49b7d7782cc24|sync:6c9e3453beabe5e9|out:16a2b16c4f0a0ad7");
    ("kv_scan", "mem:d060cdfd9b53c115|sync:4269d3ee00f51171|out:16a37ad7ed610510",
     "mem:d060cdfd9b53c115|sync:fee2e11a0b89e0d9|out:16a37ad7ed610510");
  ]

let test_golden_witnesses () =
  List.iter
    (fun (name, ic_expected, rr_expected) ->
      let shape = List.find (fun s -> Kv.Traffic.name s = name) shapes in
      List.iter
        (fun (runtime, expected) ->
          List.iter
            (fun seed ->
              check_string
                (Printf.sprintf "%s/%s seed=%d" name (R.name runtime) seed)
                expected
                (Res.deterministic_witness (run_one runtime ~seed shape)))
            seeds)
        [
          (R.consequence_ic, ic_expected);
          (R.consequence_rr, rr_expected);
          (R.Det Runtime.Config.consequence_pipe, ic_expected);
          (R.domains, ic_expected);
        ])
    golden

(* ------------------------------------------------------------------ *)
(* Latency accounting                                                 *)
(* ------------------------------------------------------------------ *)

let test_latency_histogram_counts_requests () =
  List.iter
    (fun shape ->
      let r = run_one R.consequence_ic ~seed:1 shape in
      let m = r.Res.metrics in
      let completed =
        Obs.Metrics.counter_value m "kv:commits" + Obs.Metrics.counter_value m "kv:snapshots"
      in
      check_int
        (Kv.Traffic.name shape ^ " every request completed")
        (4 * Kv.Service.default_requests)
        completed;
      match Obs.Metrics.find_hist m "kv:req_ns" with
      | None -> Alcotest.fail "kv:req_ns histogram missing"
      | Some h ->
          check_int (Kv.Traffic.name shape ^ " one latency sample per request") completed
            h.Obs.Metrics.count)
    shapes

let test_traffic_generation_deterministic () =
  (* Traffic depends only on (shape, tid): same list on every call, and
     every generated transaction passes the shape-independent checks. *)
  List.iter
    (fun shape ->
      List.iter
        (fun tid ->
          let a = Kv.Traffic.gen shape ~tid ~requests:40 in
          let b = Kv.Traffic.gen shape ~tid ~requests:40 in
          check_bool "same traffic" true (a = b);
          List.iter Kv.Txn.check a)
        [ 0; 3 ])
    shapes

let () =
  Alcotest.run "kv"
    [
      ( "layout+codec",
        [
          Alcotest.test_case "regions disjoint" `Quick test_layout_regions_disjoint;
          Alcotest.test_case "worst-case batch fits" `Quick test_intent_capacity;
          QCheck_alcotest.to_alcotest prop_intent_roundtrip;
        ] );
      ( "arbitration",
        [
          Alcotest.test_case "priority rotation bijective" `Quick
            test_priority_rotation_bijective;
          Alcotest.test_case "conflict semantics" `Quick test_fold_conflict_semantics;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "oracle passes every shape" `Quick test_oracle_all_shapes;
          Alcotest.test_case "oracle detects lost updates" `Quick
            test_oracle_detects_lost_update;
          QCheck_alcotest.to_alcotest prop_serializable;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "outcomes identical across all runtimes" `Quick
            test_outcomes_identical_across_all_runtimes;
          Alcotest.test_case "full witness identity ic/pipe/domains" `Quick
            test_full_witness_identity_ic_pipe_domains;
          Alcotest.test_case "witness seed-invariant per runtime" `Quick
            test_witness_seed_invariant_per_runtime;
          Alcotest.test_case "golden witnesses" `Quick test_golden_witnesses;
        ] );
      ( "service",
        [
          Alcotest.test_case "latency histogram counts requests" `Quick
            test_latency_histogram_counts_requests;
          Alcotest.test_case "traffic generation deterministic" `Quick
            test_traffic_generation_deterministic;
        ] );
    ]

(* Tests for the observability library: JSON printer/parser, metrics
   registry, recording tracer, and the Chrome trace-event exporter
   (schema-checked against a real runtime trace). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let sample_doc =
  Obs.Json.(
    Obj
      [
        ("null", Null);
        ("true", Bool true);
        ("false", Bool false);
        ("int", Int 42);
        ("neg", Int (-17));
        ("float", Float 1.5);
        ("string", String "hello");
        ("list", List [ Int 1; Int 2; Int 3 ]);
        ("nested", Obj [ ("inner", List [ Obj [ ("k", String "v") ] ]) ]);
        ("empty_list", List []);
        ("empty_obj", Obj []);
      ])

let test_json_roundtrip () =
  match Obs.Json.parse (Obs.Json.to_string sample_doc) with
  | Ok parsed -> check_bool "roundtrip equal" true (parsed = sample_doc)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_string_escaping () =
  let nasty = "quote\" backslash\\ newline\n tab\t cr\r nul\x00 ctl\x1f utf8 \xc3\xa9" in
  let doc = Obs.Json.String nasty in
  let s = Obs.Json.to_string doc in
  (* The rendering must not contain raw control characters. *)
  String.iter (fun c -> check_bool "no raw control chars" true (Char.code c >= 0x20)) s;
  match Obs.Json.parse s with
  | Ok (Obs.Json.String back) -> check_string "escaped string survives" nasty back
  | Ok _ -> Alcotest.fail "parsed to non-string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_unicode_escape_parsing () =
  (* é is é; the parser must decode it to UTF-8. *)
  match Obs.Json.parse {|"café"|} with
  | Ok (Obs.Json.String s) -> check_string "utf8 decoded" "caf\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape did not parse"

let test_json_non_finite_floats () =
  check_string "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_string "inf is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  check_string "float keeps point" "2.0" (Obs.Json.to_string (Obs.Json.Float 2.0))

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "[1] trailing"; "01" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    bad

let test_json_accessors () =
  let doc = sample_doc in
  check_bool "member hit" true (Obs.Json.member "int" doc = Some (Obs.Json.Int 42));
  check_bool "member miss" true (Obs.Json.member "absent" doc = None);
  check_bool "int accessor" true
    (Option.bind (Obs.Json.member "int" doc) Obs.Json.to_int_opt = Some 42);
  check_bool "float coercion" true
    (Option.bind (Obs.Json.member "int" doc) Obs.Json.to_float_opt = Some 42.0);
  check_bool "string accessor" true
    (Option.bind (Obs.Json.member "string" doc) Obs.Json.to_string_opt = Some "hello");
  check_bool "list accessor" true
    (match Option.bind (Obs.Json.member "list" doc) Obs.Json.to_list_opt with
    | Some l -> List.length l = 3
    | None -> false)

let prop_json_int_roundtrip =
  QCheck.Test.make ~name:"json roundtrips arbitrary int lists" ~count:200
    QCheck.(list int)
    (fun ints ->
      let doc = Obs.Json.List (List.map (fun i -> Obs.Json.Int i) ints) in
      Obs.Json.parse (Obs.Json.to_string doc) = Ok doc)

let prop_json_string_roundtrip =
  QCheck.Test.make ~name:"json roundtrips arbitrary strings" ~count:200
    QCheck.printable_string
    (fun s ->
      Obs.Json.parse (Obs.Json.to_string (Obs.Json.String s)) = Ok (Obs.Json.String s))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "b";
  Obs.Metrics.incr m "a" ~by:3;
  Obs.Metrics.incr m "b";
  let s = Obs.Metrics.snapshot m in
  check_bool "sorted by name" true (s.Obs.Metrics.counters = [ ("a", 3); ("b", 2) ]);
  check_int "counter_value" 3 (Obs.Metrics.counter_value s "a");
  check_int "absent counter is 0" 0 (Obs.Metrics.counter_value s "zzz")

let test_metrics_observe_negative_raises () =
  let m = Obs.Metrics.create () in
  let raised =
    try
      Obs.Metrics.observe m "h" (-1);
      false
    with Invalid_argument _ -> true
  in
  check_bool "negative raises" true raised

let test_metrics_single_value_percentiles () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.observe m "h" 1000;
  let s = Obs.Metrics.snapshot m in
  match Obs.Metrics.find_hist s "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check_int "count" 1 h.Obs.Metrics.count;
      check_int "sum" 1000 h.Obs.Metrics.sum;
      check_int "min" 1000 h.Obs.Metrics.min_v;
      check_int "max" 1000 h.Obs.Metrics.max_v;
      List.iter
        (fun q ->
          Alcotest.(check (float 0.001))
            (Printf.sprintf "p%g" (q *. 100.))
            1000.0 (Obs.Metrics.percentile h q))
        [ 0.0; 0.5; 0.99; 1.0 ]

let test_metrics_percentile_bounds () =
  let m = Obs.Metrics.create () in
  for v = 1 to 1000 do
    Obs.Metrics.observe m "h" v
  done;
  let s = Obs.Metrics.snapshot m in
  match Obs.Metrics.find_hist s "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check_int "count" 1000 h.Obs.Metrics.count;
      check_int "min exact" 1 h.Obs.Metrics.min_v;
      check_int "max exact" 1000 h.Obs.Metrics.max_v;
      Alcotest.(check (float 0.001)) "mean" 500.5 (Obs.Metrics.mean h);
      (* Power-of-two buckets: estimates are within a factor of 2 of the
         true quantile, and clamped to [min, max]. *)
      List.iter
        (fun q ->
          let est = Obs.Metrics.percentile h q in
          let true_q = q *. 1000.0 in
          check_bool
            (Printf.sprintf "p%g in range (est %.1f true %.1f)" (q *. 100.) est true_q)
            true
            (est >= Float.max 1.0 (true_q /. 2.0) && est <= Float.min 1000.0 (true_q *. 2.0)))
        [ 0.5; 0.9; 0.95; 0.99 ]

let test_metrics_empty_percentile_nan () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.observe m "h" 5;
  let s = Obs.Metrics.snapshot m in
  let h = Option.get (Obs.Metrics.find_hist s "h") in
  let fake = { h with Obs.Metrics.count = 0; buckets = [] } in
  check_bool "empty is nan" true (Float.is_nan (Obs.Metrics.percentile fake 0.5))

let test_metrics_zero_values () =
  let m = Obs.Metrics.create () in
  for _ = 1 to 10 do
    Obs.Metrics.observe m "h" 0
  done;
  let s = Obs.Metrics.snapshot m in
  let h = Option.get (Obs.Metrics.find_hist s "h") in
  Alcotest.(check (float 0.001)) "all-zero p99" 0.0 (Obs.Metrics.percentile h 0.99)

let test_metrics_to_json_shape () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "ops";
  Obs.Metrics.observe m "lat" 100;
  Obs.Metrics.observe m "lat" 200;
  let j = Obs.Metrics.to_json (Obs.Metrics.snapshot m) in
  (match Option.bind (Obs.Json.member "counters" j) (Obs.Json.member "ops") with
  | Some (Obs.Json.Int 1) -> ()
  | _ -> Alcotest.fail "counters.ops missing");
  match Option.bind (Obs.Json.member "histograms" j) Obs.Json.to_list_opt with
  | Some [ h ] ->
      check_bool "hist name" true
        (Option.bind (Obs.Json.member "name" h) Obs.Json.to_string_opt = Some "lat");
      check_bool "hist count" true
        (Option.bind (Obs.Json.member "count" h) Obs.Json.to_int_opt = Some 2);
      check_bool "p50 present" true (Obs.Json.member "p50" h <> None)
  | _ -> Alcotest.fail "histograms list wrong"

let prop_metrics_percentile_within_bucket =
  QCheck.Test.make ~name:"percentile stays within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 1_000_000))
    (fun values ->
      let m = Obs.Metrics.create () in
      List.iter (fun v -> Obs.Metrics.observe m "h" v) values;
      let h = Option.get (Obs.Metrics.find_hist (Obs.Metrics.snapshot m) "h") in
      List.for_all
        (fun q ->
          let est = Obs.Metrics.percentile h q in
          est >= float_of_int h.Obs.Metrics.min_v -. 0.001
          && est <= float_of_int h.Obs.Metrics.max_v +. 0.001)
        [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

(* ------------------------------------------------------------------ *)
(* Tracer / sink                                                      *)
(* ------------------------------------------------------------------ *)

let mk_span ?(name = "s") ?(cat = Obs.Span.Chunk) ?(tid = 0) ~t0 ~t1 () =
  { Obs.Span.name; cat; tid; t0; t1; args = [] }

let mk_instant ?(iname = "i") ?(itid = 0) ~itime () =
  { Obs.Span.iname; icat = Obs.Span.Sync; itid; itime }

let mk_state ?(stid = 0) ?(state = Obs.Thread_state.Run) ?(chunk = 0) ?(waker = -1) ~t0 ~t1
    () =
  { Obs.Thread_state.stid; state; t0; t1; chunk; waker }

let test_tracer_arrival_order () =
  let tr = Obs.Tracer.create () in
  let sink = Obs.Tracer.sink tr in
  (* Emit out of timestamp order: arrival order must be preserved. *)
  sink.Obs.Sink.span (mk_span ~name:"late" ~t0:100 ~t1:200 ());
  sink.Obs.Sink.span (mk_span ~name:"early" ~t0:0 ~t1:10 ());
  sink.Obs.Sink.instant (mk_instant ~iname:"m" ~itime:5 ());
  check_int "span count" 2 (Obs.Tracer.span_count tr);
  check_int "instant count" 1 (Obs.Tracer.instant_count tr);
  Alcotest.(check (list string))
    "arrival order" [ "late"; "early" ]
    (List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Tracer.spans tr))

let test_tracer_tids_sorted_distinct () =
  let tr = Obs.Tracer.create () in
  let sink = Obs.Tracer.sink tr in
  List.iter (fun tid -> sink.Obs.Sink.span (mk_span ~tid ~t0:0 ~t1:1 ())) [ 3; 1; 3; 0 ];
  sink.Obs.Sink.instant (mk_instant ~itid:7 ~itime:0 ());
  Alcotest.(check (list int)) "tids" [ 0; 1; 3; 7 ] (Obs.Tracer.tids tr)

let test_tracer_clear () =
  let tr = Obs.Tracer.create () in
  (Obs.Tracer.sink tr).Obs.Sink.span (mk_span ~t0:0 ~t1:1 ());
  Obs.Tracer.clear tr;
  check_int "cleared" 0 (Obs.Tracer.span_count tr);
  check_bool "no spans" true (Obs.Tracer.spans tr = [])

let test_sink_null_and_tee () =
  check_bool "null is null" true (Obs.Sink.is_null Obs.Sink.null);
  let a = Obs.Tracer.create () and b = Obs.Tracer.create () in
  let tee = Obs.Sink.tee (Obs.Tracer.sink a) (Obs.Tracer.sink b) in
  check_bool "tee is not null" false (Obs.Sink.is_null tee);
  check_bool "tracer sink is not null" false (Obs.Sink.is_null (Obs.Tracer.sink a));
  tee.Obs.Sink.span (mk_span ~t0:0 ~t1:5 ());
  tee.Obs.Sink.instant (mk_instant ~itime:1 ());
  tee.Obs.Sink.state (mk_state ~t0:0 ~t1:5 ());
  check_int "tee -> a spans" 1 (Obs.Tracer.span_count a);
  check_int "tee -> b spans" 1 (Obs.Tracer.span_count b);
  check_int "tee -> a instants" 1 (Obs.Tracer.instant_count a);
  check_int "tee -> b instants" 1 (Obs.Tracer.instant_count b);
  check_int "tee -> a states" 1 (Obs.Tracer.state_count a);
  check_int "tee -> b states" 1 (Obs.Tracer.state_count b)

let test_tracer_state_channel () =
  let tr = Obs.Tracer.create () in
  let sink = Obs.Tracer.sink tr in
  sink.Obs.Sink.state (mk_state ~stid:3 ~state:Obs.Thread_state.Token_wait ~t0:0 ~t1:10 ());
  sink.Obs.Sink.state (mk_state ~stid:1 ~state:Obs.Thread_state.Commit ~t0:10 ~t1:15 ());
  check_int "state count" 2 (Obs.Tracer.state_count tr);
  Alcotest.(check (list int))
    "state tids merged into tids" [ 1; 3 ] (Obs.Tracer.tids tr);
  (match Obs.Tracer.states tr with
  | [ s1; s2 ] ->
      check_int "arrival order first" 3 s1.Obs.Thread_state.stid;
      check_int "arrival order second" 1 s2.Obs.Thread_state.stid
  | l -> Alcotest.failf "expected 2 states, got %d" (List.length l));
  Obs.Tracer.clear tr;
  check_int "cleared" 0 (Obs.Tracer.state_count tr)

let test_counter_events () =
  (* Two states on one thread over [0,100): the counter track must
     bucket the occupancy and conserve total ns across buckets. *)
  let states =
    [
      mk_state ~stid:0 ~state:Obs.Thread_state.Run ~t0:0 ~t1:60 ();
      mk_state ~stid:0 ~state:Obs.Thread_state.Commit ~t0:60 ~t1:100 ();
    ]
  in
  let evs = Obs.Chrome_trace.counter_events ~buckets:4 states in
  check_bool "has counter events" true (evs <> []);
  let total = ref 0 in
  List.iter
    (fun ev ->
      (match Option.bind (Obs.Json.member "ph" ev) Obs.Json.to_string_opt with
      | Some "C" -> ()
      | _ -> Alcotest.fail "counter event must have ph=C");
      match Option.bind (Obs.Json.member "args" ev) (fun a ->
          match a with Obs.Json.Obj kvs -> Some kvs | _ -> None)
      with
      | Some kvs ->
          List.iter
            (fun (_, v) ->
              match Obs.Json.to_int_opt v with
              | Some ns -> total := !total + ns
              | None -> Alcotest.fail "counter args must be ints")
            kvs
      | None -> Alcotest.fail "counter event without args")
    evs;
  check_int "occupancy conserved across buckets" 100 !total

let test_span_duration () =
  check_int "duration" 42 (Obs.Span.duration (mk_span ~t0:8 ~t1:50 ()))

(* ------------------------------------------------------------------ *)
(* Chrome trace schema                                                *)
(* ------------------------------------------------------------------ *)

(* Structural validity per the trace-event format: every event has name /
   ph / pid; "X" events have numeric ts/dur >= 0 and a tid; "i" events
   have thread scope; every tid referenced by an event has a thread_name
   metadata record. *)
let check_chrome_schema json =
  let get name j = Obs.Json.member name j in
  let events =
    match Option.bind (get "traceEvents" json) Obs.Json.to_list_opt with
    | Some evs -> evs
    | None -> Alcotest.fail "traceEvents missing or not a list"
  in
  check_bool "has events" true (events <> []);
  let named_tids = Hashtbl.create 16 in
  let used_tids = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let ph =
        match Option.bind (get "ph" ev) Obs.Json.to_string_opt with
        | Some ph -> ph
        | None -> Alcotest.fail "event without ph"
      in
      check_bool "event has name" true (Option.bind (get "name" ev) Obs.Json.to_string_opt <> None);
      check_bool "event has pid" true (Option.bind (get "pid" ev) Obs.Json.to_int_opt <> None);
      match ph with
      | "M" -> (
          match
            ( Option.bind (get "name" ev) Obs.Json.to_string_opt,
              Option.bind (get "tid" ev) Obs.Json.to_int_opt )
          with
          | Some "thread_name", Some tid -> Hashtbl.replace named_tids tid ()
          | _ -> ())
      | "X" ->
          let ts = Option.bind (get "ts" ev) Obs.Json.to_float_opt in
          let dur = Option.bind (get "dur" ev) Obs.Json.to_float_opt in
          let tid = Option.bind (get "tid" ev) Obs.Json.to_int_opt in
          check_bool "X has ts >= 0" true (match ts with Some t -> t >= 0.0 | None -> false);
          check_bool "X has dur >= 0" true (match dur with Some d -> d >= 0.0 | None -> false);
          check_bool "X has cat" true (Option.bind (get "cat" ev) Obs.Json.to_string_opt <> None);
          (match tid with
          | Some t -> Hashtbl.replace used_tids t ()
          | None -> Alcotest.fail "X event without tid");
          ()
      | "i" ->
          check_bool "i has thread scope" true
            (Option.bind (get "s" ev) Obs.Json.to_string_opt = Some "t");
          (match Option.bind (get "tid" ev) Obs.Json.to_int_opt with
          | Some t -> Hashtbl.replace used_tids t ()
          | None -> Alcotest.fail "i event without tid");
          ()
      | "C" ->
          (* counter tracks (thread-state occupancy per window) *)
          let ts = Option.bind (get "ts" ev) Obs.Json.to_float_opt in
          check_bool "C has ts >= 0" true (match ts with Some t -> t >= 0.0 | None -> false);
          (match get "args" ev with
          | Some (Obs.Json.Obj kvs) ->
              List.iter
                (fun (_, v) ->
                  check_bool "C arg is a non-negative int" true
                    (match Obs.Json.to_int_opt v with Some n -> n >= 0 | None -> false))
                kvs
          | _ -> Alcotest.fail "C event without args object")
      | other -> Alcotest.failf "unexpected ph %S" other)
    events;
  Hashtbl.iter
    (fun tid () ->
      check_bool (Printf.sprintf "tid %d has thread_name track" tid) true
        (Hashtbl.mem named_tids tid))
    used_tids

let test_chrome_trace_schema_synthetic () =
  let tr = Obs.Tracer.create () in
  let sink = Obs.Tracer.sink tr in
  sink.Obs.Sink.span
    { Obs.Span.name = "work"; cat = Obs.Span.Chunk; tid = 2; t0 = 10; t1 = 35;
      args = [ ("instr", 25) ] };
  sink.Obs.Sink.instant (mk_instant ~iname:"acq" ~itid:1 ~itime:12 ());
  let json = Obs.Chrome_trace.of_tracer ~process_name:"test" tr in
  (* The exporter's output must survive its own parser. *)
  (match Obs.Json.parse (Obs.Json.to_string json) with
  | Ok reparsed -> check_bool "reparses identically" true (reparsed = json)
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e);
  check_chrome_schema json

let test_chrome_trace_schema_real_run () =
  (* The acceptance path: trace the histogram benchmark under
     consequence-ic and schema-check the document end to end. *)
  let program = (Workload.Registry.find "histogram").Workload.Registry.program in
  let tr = Obs.Tracer.create () in
  let r =
    Runtime.Det_rt.run Runtime.Config.consequence_ic ~seed:1 ~nthreads:4
      ~obs:(Obs.Tracer.sink tr) program
  in
  check_bool "produced spans" true (Obs.Tracer.span_count tr > 0);
  check_bool "produced instants" true (Obs.Tracer.instant_count tr > 0);
  (* One track per simulated core: main + 4 workers. *)
  check_int "tracks" 5 (List.length (Obs.Tracer.tids tr));
  let json = Obs.Chrome_trace.of_tracer tr in
  (match Obs.Json.parse (Obs.Json.to_string json) with
  | Ok reparsed -> check_bool "reparses identically" true (reparsed = json)
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e);
  check_chrome_schema json;
  (* Spans never extend past the end of the run. *)
  List.iter
    (fun (s : Obs.Span.t) ->
      check_bool "span within run" true
        (s.Obs.Span.t0 >= 0 && s.Obs.Span.t1 <= r.Stats.Run_result.wall_ns
        && s.Obs.Span.t0 <= s.Obs.Span.t1))
    (Obs.Tracer.spans tr)

let test_run_result_to_json_parses () =
  let program = (Workload.Registry.find "histogram").Workload.Registry.program in
  let r = Runtime.Det_rt.run Runtime.Config.consequence_ic ~seed:1 ~nthreads:4 program in
  let j = Stats.Run_result.to_json r in
  (match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok back -> check_bool "roundtrips" true (back = j)
  | Error e -> Alcotest.failf "run result JSON does not parse: %s" e);
  check_bool "witness present" true
    (Option.bind (Obs.Json.member "witness" j) Obs.Json.to_string_opt
    = Some (Stats.Run_result.deterministic_witness r));
  check_bool "wall_ns present" true
    (Option.bind (Obs.Json.member "wall_ns" j) Obs.Json.to_int_opt
    = Some r.Stats.Run_result.wall_ns);
  check_bool "metrics present" true (Obs.Json.member "metrics" j <> None)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "string escaping" `Quick test_json_string_escaping;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape_parsing;
          Alcotest.test_case "non-finite floats" `Quick test_json_non_finite_floats;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          QCheck_alcotest.to_alcotest prop_json_int_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_string_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "negative observe raises" `Quick
            test_metrics_observe_negative_raises;
          Alcotest.test_case "single-value percentiles" `Quick
            test_metrics_single_value_percentiles;
          Alcotest.test_case "percentile bounds" `Quick test_metrics_percentile_bounds;
          Alcotest.test_case "empty percentile nan" `Quick test_metrics_empty_percentile_nan;
          Alcotest.test_case "zero values" `Quick test_metrics_zero_values;
          Alcotest.test_case "to_json shape" `Quick test_metrics_to_json_shape;
          QCheck_alcotest.to_alcotest prop_metrics_percentile_within_bucket;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "arrival order" `Quick test_tracer_arrival_order;
          Alcotest.test_case "tids sorted distinct" `Quick test_tracer_tids_sorted_distinct;
          Alcotest.test_case "clear" `Quick test_tracer_clear;
          Alcotest.test_case "null and tee" `Quick test_sink_null_and_tee;
          Alcotest.test_case "state channel" `Quick test_tracer_state_channel;
          Alcotest.test_case "counter events" `Quick test_counter_events;
          Alcotest.test_case "span duration" `Quick test_span_duration;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "schema (synthetic)" `Quick test_chrome_trace_schema_synthetic;
          Alcotest.test_case "schema (real run)" `Quick test_chrome_trace_schema_real_run;
          Alcotest.test_case "run result json" `Quick test_run_result_to_json_parses;
        ] );
    ]

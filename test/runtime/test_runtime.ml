(* Integration tests for the deterministic runtimes and the pthreads
   baseline.  These check the paper's semantic claims: determinism of
   sync order / memory / output across perturbed executions, correctness
   of deterministic synchronization, the atomic-operations hazard
   (section 2.7), ad-hoc synchronization support, and coarsening
   behaviour. *)

module R = Runtime.Run
module Res = Stats.Run_result
module Bd = Stats.Breakdown

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let det_runtimes = [ R.dthreads; R.dwc; R.consequence_rr; R.consequence_ic ]

let counter_addr = 0

(* --- Test programs --------------------------------------------------- *)

(* Every worker increments a lock-protected counter [iters] times. *)
let locked_counter ~iters =
  Api.make ~name:"locked-counter" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                for _ = 1 to iters do
                  w.Api.work (200 + (i * 13));
                  w.Api.lock 1;
                  let v = w.Api.read_int ~addr:counter_addr in
                  w.Api.write_int ~addr:counter_addr (v + 1);
                  w.Api.unlock 1
                done))
      in
      List.iter ops.Api.join workers;
      ops.Api.log_output (Printf.sprintf "counter=%d" (ops.Api.read_int ~addr:counter_addr)))

(* Unsynchronized plain fetch_add from every worker.  The start barrier
   makes the workers actually overlap (spawn latency would otherwise
   serialize them and hide the lost updates). *)
let plain_rmw ~iters =
  Api.make ~name:"plain-rmw" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.barrier_wait 0;
                for _ = 1 to iters do
                  w.Api.work (150 + (i * 31));
                  ignore (w.Api.fetch_add ~addr:counter_addr 1)
                done))
      in
      List.iter ops.Api.join workers;
      ops.Api.log_output (Printf.sprintf "counter=%d" (ops.Api.read_int ~addr:counter_addr)))

(* Same but with the token-protected atomic op of section 2.7. *)
let atomic_rmw ~iters =
  Api.make ~name:"atomic-rmw" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.barrier_wait 0;
                for _ = 1 to iters do
                  w.Api.work (150 + (i * 31));
                  ignore (w.Api.atomic_fetch_add ~addr:counter_addr 1)
                done))
      in
      List.iter ops.Api.join workers;
      ops.Api.log_output (Printf.sprintf "counter=%d" (ops.Api.read_int ~addr:counter_addr)))

(* Barrier-phased writers: phase 1 everyone writes its slot, phase 2
   everyone reads all slots and records the sum. *)
let barrier_phases =
  Api.make ~name:"barrier-phases" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.work (500 * (i + 1));
                w.Api.write_int ~addr:(8 * (i + 1)) (100 + i);
                w.Api.barrier_wait 0;
                let sum = ref 0 in
                for j = 1 to nthreads do
                  sum := !sum + w.Api.read_int ~addr:(8 * j)
                done;
                (* Store rather than log: concurrent log order is runtime-
                   specific; memory content after joins is not. *)
                w.Api.write_int ~addr:(256 + (8 * i)) !sum))
      in
      List.iter ops.Api.join workers;
      for i = 0 to nthreads - 1 do
        ops.Api.log_output (Printf.sprintf "sum%d=%d" i (ops.Api.read_int ~addr:(256 + (8 * i))))
      done)

(* Producer/consumer over a one-slot mailbox with condvars. *)
let producer_consumer ~items =
  Api.make ~name:"prod-cons" ~heap_pages:16 ~page_size:64 (fun ~nthreads:_ ops ->
      let full = 8 and value = 16 and consumed_sum = 24 in
      let m = 0 and c_full = 0 and c_empty = 1 in
      let producer =
        ops.Api.spawn ~name:"producer" (fun w ->
            for i = 1 to items do
              w.Api.work 300;
              w.Api.lock m;
              while w.Api.read_int ~addr:full = 1 do
                w.Api.cond_wait c_empty m
              done;
              w.Api.write_int ~addr:value i;
              w.Api.write_int ~addr:full 1;
              w.Api.cond_signal c_full;
              w.Api.unlock m
            done)
      in
      let consumer =
        ops.Api.spawn ~name:"consumer" (fun w ->
            for _ = 1 to items do
              w.Api.work 200;
              w.Api.lock m;
              while w.Api.read_int ~addr:full = 0 do
                w.Api.cond_wait c_full m
              done;
              let v = w.Api.read_int ~addr:value in
              w.Api.write_int ~addr:full 0;
              w.Api.write_int ~addr:consumed_sum (w.Api.read_int ~addr:consumed_sum + v);
              w.Api.cond_signal c_empty;
              w.Api.unlock m
            done;
            w.Api.log_output (Printf.sprintf "sum=%d" (w.Api.read_int ~addr:consumed_sum)))
      in
      ops.Api.join producer;
      ops.Api.join consumer)

(* Mixed contention: multiple locks, a barrier, shared-page writes. *)
let contended =
  Api.make ~name:"contended" ~heap_pages:32 ~page_size:64 (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                for round = 1 to 12 do
                  w.Api.work (250 * ((i mod 3) + 1));
                  let l = round mod 3 in
                  w.Api.lock l;
                  let a = 8 * (l + 1) in
                  w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
                  w.Api.unlock l
                done;
                w.Api.barrier_wait 0;
                w.Api.write ~addr:(128 + (i * 16)) (Bytes.make 16 (Char.chr (65 + i)))))
      in
      List.iter ops.Api.join workers)

(* Ad-hoc synchronization (section 2.7): spin on a flag set by a peer. *)
let flag_spin =
  Api.make ~name:"flag-spin" ~heap_pages:16 ~page_size:64 (fun ~nthreads:_ ops ->
      let setter =
        ops.Api.spawn ~name:"setter" (fun w ->
            w.Api.work 20_000;
            w.Api.write_int ~addr:8 1;
            (* The write needs a commit to become visible; under a chunk
               limit the forced commit publishes it. *)
            w.Api.work 200_000)
      in
      let spinner =
        ops.Api.spawn ~name:"spinner" (fun w ->
            while w.Api.read_int ~addr:8 = 0 do
              w.Api.work 1_000
            done;
            w.Api.log_output "saw-flag")
      in
      ops.Api.join setter;
      ops.Api.join spinner)

let witness rt ?(threads = 4) ?(seed = 1) prog =
  Res.deterministic_witness (R.run rt ~seed ~nthreads:threads prog)

(* --- Basic execution ------------------------------------------------- *)

let test_all_runtimes_complete () =
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 ~nthreads:4 (locked_counter ~iters:10) in
      check_bool (R.name rt ^ " ran") true (r.Res.wall_ns > 0);
      check_int (R.name rt ^ " threads") 4 r.Res.nthreads;
      check_bool (R.name rt ^ " has sync ops") true (r.Res.sync_ops > 0))
    R.all

let test_locked_counter_exact_everywhere () =
  (* Mutual exclusion must make the counter exact on every runtime; all
     runtimes must agree on the final memory image. *)
  let reference = R.run R.pthreads ~seed:1 ~nthreads:4 (locked_counter ~iters:10) in
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 ~nthreads:4 (locked_counter ~iters:10) in
      check_string (R.name rt ^ " same memory") reference.Res.mem_hash r.Res.mem_hash;
      check_string (R.name rt ^ " same output") reference.Res.output_hash r.Res.output_hash)
    det_runtimes

let test_same_seed_reproducible () =
  List.iter
    (fun rt ->
      let r1 = R.run rt ~seed:7 ~nthreads:4 contended in
      let r2 = R.run rt ~seed:7 ~nthreads:4 contended in
      check_int (R.name rt ^ " same wall") r1.Res.wall_ns r2.Res.wall_ns;
      check_string (R.name rt ^ " same witness") (Res.deterministic_witness r1)
        (Res.deterministic_witness r2))
    R.all

(* --- Determinism across seeds ---------------------------------------- *)

let test_det_runtimes_seed_invariant () =
  List.iter
    (fun rt ->
      let w1 = witness rt ~seed:1 contended in
      List.iter
        (fun seed ->
          check_string
            (Printf.sprintf "%s witness seed %d" (R.name rt) seed)
            w1 (witness rt ~seed contended))
        [ 2; 3; 17; 91 ])
    det_runtimes

(* Timing-sensitive race: read, gap, write on one shared word. *)
let racy_gap =
  Api.make ~name:"racy-gap" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                w.Api.barrier_wait 0;
                for _ = 1 to 30 do
                  let v = w.Api.read_int ~addr:0 in
                  w.Api.work (100 + i);
                  w.Api.write_int ~addr:0 (v + 1);
                  w.Api.work 400
                done))
      in
      List.iter ops.Api.join workers)

let test_pthreads_diverges_across_seeds () =
  let witnesses = List.map (fun seed -> witness R.pthreads ~seed racy_gap) [ 1; 2; 3; 5; 8; 13 ] in
  let distinct = List.sort_uniq compare witnesses in
  check_bool "pthreads interleavings vary" true (List.length distinct > 1);
  (* While the deterministic runtimes are invariant on the same program. *)
  List.iter
    (fun rt ->
      let w1 = witness rt ~seed:1 racy_gap and w2 = witness rt ~seed:13 racy_gap in
      check_string (R.name rt ^ " racy-gap invariant") w1 w2)
    det_runtimes

let test_det_runtimes_thread_count_changes_allowed () =
  (* Determinism is per-configuration: different thread counts may give
     different (but each internally stable) results. *)
  List.iter
    (fun rt ->
      let w2 = witness rt ~threads:2 contended and w2' = witness rt ~threads:2 ~seed:9 contended in
      check_string (R.name rt ^ " stable at 2 threads") w2 w2')
    det_runtimes

(* --- Synchronization correctness ------------------------------------- *)

let test_barrier_visibility () =
  (* After the barrier every thread must see all pre-barrier writes: all
     workers log the same sum, on every runtime, and the output matches
     pthreads. *)
  let reference = R.run R.pthreads ~seed:1 ~nthreads:4 barrier_phases in
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 ~nthreads:4 barrier_phases in
      check_string (R.name rt ^ " barrier sums") reference.Res.output_hash r.Res.output_hash)
    det_runtimes

let test_producer_consumer () =
  let expected_sum = 15 * 16 / 2 in
  ignore expected_sum;
  let reference = R.run R.pthreads ~seed:1 (producer_consumer ~items:15) in
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 (producer_consumer ~items:15) in
      check_string (R.name rt ^ " consumed sum") reference.Res.output_hash r.Res.output_hash)
    det_runtimes

let test_unlock_without_lock_raises () =
  let prog =
    Api.make ~name:"bad-unlock" (fun ~nthreads:_ ops -> ops.Api.unlock 3)
  in
  List.iter
    (fun rt ->
      let raised = try ignore (R.run rt prog); false with Invalid_argument _ -> true in
      check_bool (R.name rt ^ " raises") true raised)
    R.all

let test_self_deadlock_detected () =
  let prog =
    Api.make ~name:"self-deadlock" (fun ~nthreads:_ ops ->
        ops.Api.lock 1;
        ops.Api.lock 1)
  in
  List.iter
    (fun rt ->
      let raised = try ignore (R.run rt prog); false with Sim.Engine.Deadlock _ -> true in
      check_bool (R.name rt ^ " deadlock detected") true raised)
    R.all

let test_uninitialized_barrier_raises () =
  let prog = Api.make ~name:"bad-barrier" (fun ~nthreads:_ ops -> ops.Api.barrier_wait 5) in
  List.iter
    (fun rt ->
      let raised = try ignore (R.run rt prog); false with Invalid_argument _ -> true in
      check_bool (R.name rt ^ " raises") true raised)
    R.all

(* --- Atomic operations (section 2.7) ---------------------------------- *)

let test_plain_rmw_atomic_under_pthreads () =
  let r = R.run R.pthreads ~seed:1 ~nthreads:4 (plain_rmw ~iters:25) in
  (* The simulated hardware fetch_add is indivisible: exactly 100. *)
  let expected = R.run R.pthreads ~seed:1 ~nthreads:4 (atomic_rmw ~iters:25) in
  check_string "plain = atomic under pthreads" expected.Res.output_hash r.Res.output_hash

let test_plain_rmw_loses_updates_deterministically () =
  (* Under isolation the plain RMW loses concurrent increments; the loss
     must itself be deterministic (same witness across seeds). *)
  List.iter
    (fun rt ->
      let r1 = R.run rt ~seed:1 ~nthreads:4 (plain_rmw ~iters:25) in
      let r2 = R.run rt ~seed:5 ~nthreads:4 (plain_rmw ~iters:25) in
      check_string (R.name rt ^ " deterministic loss") (Res.deterministic_witness r1)
        (Res.deterministic_witness r2);
      (* And it actually loses updates: the result differs from the
         correctly-atomic run. *)
      let atomic = R.run rt ~seed:1 ~nthreads:4 (atomic_rmw ~iters:25) in
      check_bool (R.name rt ^ " lost updates") true
        (r1.Res.output_hash <> atomic.Res.output_hash))
    det_runtimes

let test_atomic_rmw_exact_everywhere () =
  let reference = R.run R.pthreads ~seed:1 ~nthreads:4 (atomic_rmw ~iters:25) in
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 ~nthreads:4 (atomic_rmw ~iters:25) in
      check_string (R.name rt ^ " exact count") reference.Res.output_hash r.Res.output_hash)
    det_runtimes

(* --- Ad-hoc synchronization (section 2.7) ----------------------------- *)

let test_flag_spin_stuck_without_limit () =
  (* With commits only at sync ops, the spinner never sees the flag. *)
  let cfg = Runtime.Config.consequence_ic in
  let raised =
    try
      ignore (Runtime.Det_rt.run cfg ~seed:1 flag_spin);
      false
    with Sim.Engine.Stuck _ -> true
  in
  check_bool "spinner livelocks without chunk limit" true raised

let test_flag_spin_terminates_with_limit () =
  let cfg = Runtime.Config.with_chunk_limit Runtime.Config.consequence_ic 10_000 in
  let r = Runtime.Det_rt.run cfg ~seed:1 flag_spin in
  check_bool "spinner saw flag" true (r.Res.wall_ns > 0);
  (* Deterministic too. *)
  let r2 = Runtime.Det_rt.run cfg ~seed:3 flag_spin in
  check_string "deterministic with limit" (Res.deterministic_witness r)
    (Res.deterministic_witness r2)

let test_flag_spin_fine_under_pthreads () =
  let r = R.run R.pthreads ~seed:1 flag_spin in
  check_bool "pthreads sees stores immediately" true (r.Res.wall_ns > 0)

(* --- Coarsening (section 3.1) ----------------------------------------- *)

let fine_grained_locks =
  Api.make ~name:"fine-grained" ~heap_pages:32 ~page_size:64 (fun ~nthreads ops ->
      let workers =
        List.init nthreads (fun i ->
            ops.Api.spawn (fun w ->
                for round = 1 to 40 do
                  w.Api.work 300;
                  let l = (i + round) mod 8 in
                  w.Api.lock l;
                  let a = 8 * (l + 1) in
                  w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
                  w.Api.work 100;
                  w.Api.unlock l
                done))
      in
      List.iter ops.Api.join workers)

let test_coarsening_reduces_commits () =
  let base = Runtime.Config.consequence_ic in
  let with_c = Runtime.Det_rt.run base ~seed:1 ~nthreads:4 fine_grained_locks in
  let without =
    Runtime.Det_rt.run (Runtime.Config.without_coarsening base) ~seed:1 ~nthreads:4
      fine_grained_locks
  in
  check_bool "coarsened chunks happened" true (with_c.Res.coarsened_chunks > 0);
  check_bool "fewer token acquisitions with coarsening" true
    (with_c.Res.token_acquisitions < without.Res.token_acquisitions);
  check_bool "no coarsening => none counted" true (without.Res.coarsened_chunks = 0)

let test_static_coarsening_levels_run () =
  List.iter
    (fun k ->
      let cfg = Runtime.Config.with_static_coarsening Runtime.Config.consequence_ic k in
      let r = Runtime.Det_rt.run cfg ~seed:1 ~nthreads:4 fine_grained_locks in
      let r2 = Runtime.Det_rt.run cfg ~seed:9 ~nthreads:4 fine_grained_locks in
      check_string
        (Printf.sprintf "static-%d deterministic" k)
        (Res.deterministic_witness r) (Res.deterministic_witness r2))
    [ 0; 1; 2; 4 ]

let test_coarsening_preserves_results () =
  let base = Runtime.Config.consequence_ic in
  let with_c = Runtime.Det_rt.run base ~seed:1 ~nthreads:4 (locked_counter ~iters:20) in
  let without =
    Runtime.Det_rt.run (Runtime.Config.without_coarsening base) ~seed:1 ~nthreads:4
      (locked_counter ~iters:20)
  in
  (* Different interleavings are permitted, but the lock-protected counter
     is exact either way: memory must match. *)
  check_string "same final memory" with_c.Res.mem_hash without.Res.mem_hash

(* --- Optimization toggles run and stay deterministic ------------------- *)

let test_ablation_configs_deterministic () =
  let base = Runtime.Config.consequence_ic in
  let variants =
    [
      Runtime.Config.without_coarsening base;
      Runtime.Config.without_adaptive_overflow base;
      Runtime.Config.without_userspace_reads base;
      Runtime.Config.without_fast_forward base;
      Runtime.Config.without_parallel_barrier base;
      Runtime.Config.without_thread_pool base;
    ]
  in
  List.iter
    (fun cfg ->
      let r1 = Runtime.Det_rt.run cfg ~seed:1 ~nthreads:4 contended in
      let r2 = Runtime.Det_rt.run cfg ~seed:11 ~nthreads:4 contended in
      check_string (cfg.Runtime.Config.name ^ " deterministic") (Res.deterministic_witness r1)
        (Res.deterministic_witness r2))
    variants

let test_thread_pool_reuse () =
  (* Sequential spawn/join pairs: with pooling, later spawns reuse exited
     threads and the Fork time shrinks. *)
  let serial_spawns =
    Api.make ~name:"serial-spawns" ~heap_pages:64 ~page_size:64 (fun ~nthreads:_ ops ->
        for i = 0 to 9 do
          ops.Api.write ~addr:(i * 64) (Bytes.make 64 'x');
          let t = ops.Api.spawn (fun w -> w.Api.work 2_000) in
          ops.Api.join t
        done)
  in
  let with_pool = Runtime.Det_rt.run Runtime.Config.consequence_ic ~seed:1 serial_spawns in
  let without =
    Runtime.Det_rt.run
      (Runtime.Config.without_thread_pool Runtime.Config.consequence_ic)
      ~seed:1 serial_spawns
  in
  let fork_ns r = Bd.get (Res.aggregate_breakdown r) Bd.Fork in
  check_bool "pool reduces fork time" true (fork_ns with_pool < fork_ns without)

(* --- Counter jitter breaks the determinism guarantee ------------------- *)

let test_counter_jitter_still_runs () =
  let cfg = Runtime.Config.with_counter_jitter Runtime.Config.consequence_ic ~ppm:100_000 in
  let r = Runtime.Det_rt.run cfg ~seed:1 ~nthreads:4 contended in
  check_bool "runs" true (r.Res.wall_ns > 0)

(* --- Fig 1 shape: instruction-count vs round-robin --------------------- *)

let mismatch_program =
  Api.make ~name:"mismatch" ~heap_pages:16 ~page_size:64 (fun ~nthreads:_ ops ->
      let fast =
        ops.Api.spawn (fun w ->
            for _ = 1 to 40 do
              w.Api.work 1_000;
              w.Api.lock 1;
              w.Api.write_int ~addr:0 (w.Api.read_int ~addr:0 + 1);
              w.Api.unlock 1
            done)
      in
      let slow =
        ops.Api.spawn (fun w ->
            for _ = 1 to 4 do
              w.Api.work 40_000;
              w.Api.lock 2;
              w.Api.write_int ~addr:8 (w.Api.read_int ~addr:8 + 1);
              w.Api.unlock 2
            done)
      in
      ops.Api.join fast;
      ops.Api.join slow)

let test_ic_beats_rr_on_mismatched_rates () =
  let ic = R.run R.consequence_ic ~seed:1 mismatch_program in
  let dthreads = R.run R.dthreads ~seed:1 mismatch_program in
  check_bool "IC much faster than DThreads on mismatched rates" true
    (dthreads.Res.wall_ns > 2 * ic.Res.wall_ns)

(* --- Random-program determinism property ------------------------------ *)

(* Generate a deterministic random program from an integer seed: each
   worker performs a fixed sequence of works, lock-protected updates and
   barrier waits derived from a SplitMix stream. *)
let random_program ~prog_seed ~rounds =
  Api.make
    ~name:(Printf.sprintf "random-%d" prog_seed)
    ~heap_pages:32 ~page_size:64
    (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let workers =
        List.init nthreads (fun i ->
            (* Precompute the op sequence so every thread performs exactly
               [rounds] barrier waits in total (padding at the end). *)
            let p = Sim.Prng.create ~seed:(prog_seed + (1000 * i)) in
            let script =
              List.init rounds (fun _ ->
                  match Sim.Prng.int p ~bound:4 with
                  | 0 -> `Work (Sim.Prng.int p ~bound:2_000 + 100)
                  | 1 -> `Locked (Sim.Prng.int p ~bound:3)
                  | 2 -> `Write (256 + (8 * Sim.Prng.int p ~bound:64), Sim.Prng.int p ~bound:1_000_000)
                  | _ -> `Barrier)
            in
            let barrier_count =
              List.length (List.filter (fun op -> op = `Barrier) script)
            in
            ops.Api.spawn (fun w ->
                List.iter
                  (fun op ->
                    match op with
                    | `Work n -> w.Api.work n
                    | `Locked l ->
                        w.Api.lock l;
                        let a = 8 * (l + 1) in
                        w.Api.write_int ~addr:a (w.Api.read_int ~addr:a + 1);
                        w.Api.unlock l
                    | `Write (addr, v) -> w.Api.write_int ~addr v
                    | `Barrier -> w.Api.barrier_wait 0)
                  script;
                for _ = barrier_count + 1 to rounds do
                  w.Api.barrier_wait 0
                done))
      in
      List.iter ops.Api.join workers)

let prop_random_programs_deterministic =
  QCheck.Test.make ~name:"random programs: det runtimes are seed-invariant" ~count:12
    QCheck.(int_bound 10_000)
    (fun prog_seed ->
      let prog = random_program ~prog_seed ~rounds:8 in
      List.for_all
        (fun rt ->
          let w1 = witness rt ~threads:3 ~seed:1 prog in
          let w2 = witness rt ~threads:3 ~seed:99 prog in
          w1 = w2)
        det_runtimes)

let prop_locked_counter_memory_agrees =
  QCheck.Test.make ~name:"well-synchronized programs agree across runtimes" ~count:8
    QCheck.(int_range 1 20)
    (fun iters ->
      let prog = locked_counter ~iters in
      let reference = R.run R.pthreads ~seed:1 ~nthreads:3 prog in
      List.for_all
        (fun rt ->
          let r = R.run rt ~seed:1 ~nthreads:3 prog in
          r.Res.mem_hash = reference.Res.mem_hash)
        det_runtimes)

(* --- Result plumbing --------------------------------------------------- *)

let test_breakdown_covers_wall_time () =
  (* Each thread's breakdown total cannot exceed total wall time. *)
  List.iter
    (fun rt ->
      let r = R.run rt ~seed:1 ~nthreads:4 contended in
      List.iter
        (fun ts ->
          check_bool
            (Printf.sprintf "%s/%s breakdown bounded" (R.name rt) ts.Res.thread_name)
            true
            (Bd.total ts.Res.breakdown <= r.Res.wall_ns))
        r.Res.per_thread)
    R.all

let test_per_thread_names () =
  let prog =
    Api.make ~name:"named" (fun ~nthreads:_ ops ->
        let t = ops.Api.spawn ~name:"worker-zero" (fun w -> w.Api.work 100) in
        ops.Api.join t)
  in
  let r = R.run R.consequence_ic prog in
  let names = List.map (fun ts -> ts.Res.thread_name) r.Res.per_thread in
  check_bool "main present" true (List.mem "main" names);
  check_bool "named worker present" true (List.mem "worker-zero" names)

let test_config_presets_invariants () =
  (* The presets must encode the papers' design points. *)
  let open Runtime.Config in
  Alcotest.(check bool) "dthreads is synchronous" true (dthreads.commit_style = Synchronous);
  Alcotest.(check bool) "dthreads single lock" true (dthreads.lock_granularity = Single_global);
  Alcotest.(check bool) "dthreads pays mprotect multipliers" true
    (dthreads.fault_cost_mult > 1.5 && dthreads.commit_cost_mult > 2.0);
  Alcotest.(check bool) "dwc async" true (dwc.commit_style = Asynchronous);
  Alcotest.(check bool) "dwc single lock" true (dwc.lock_granularity = Single_global);
  Alcotest.(check bool) "dwc round-robin" true (dwc.ordering = Round_robin);
  Alcotest.(check bool) "cons-rr round-robin" true (consequence_rr.ordering = Round_robin);
  Alcotest.(check bool) "cons-ic instruction-count" true
    (consequence_ic.ordering = Instruction_count);
  List.iter
    (fun cfg ->
      Alcotest.(check bool) (cfg.name ^ " per-lock") true (cfg.lock_granularity = Per_lock);
      Alcotest.(check bool) (cfg.name ^ " all opts on") true
        (cfg.coarsening = Adaptive && cfg.adaptive_overflow && cfg.userspace_reads
       && cfg.fast_forward && cfg.parallel_barrier && cfg.thread_pool))
    [ consequence_rr; consequence_ic ];
  Alcotest.(check int) "four presets" 4 (List.length presets)

let test_single_global_lock_aliases () =
  (* Under DThreads, two different mutexes are one lock: a thread holding
     mutex 1 blocks another locking mutex 2. *)
  let order = ref [] in
  let prog =
    Api.make ~name:"alias-probe" ~heap_pages:8 ~page_size:64 (fun ~nthreads:_ ops ->
        let a =
          ops.Api.spawn (fun w ->
              w.Api.lock 1;
              order := "a-locked" :: !order;
              w.Api.work 50_000;
              order := "a-unlocking" :: !order;
              w.Api.unlock 1)
        in
        let b =
          ops.Api.spawn (fun w ->
              w.Api.work 5_000;
              w.Api.lock 2;
              order := "b-locked" :: !order;
              w.Api.unlock 2)
        in
        ops.Api.join a;
        ops.Api.join b)
  in
  order := [];
  ignore (Runtime.Det_rt.run Runtime.Config.dthreads ~seed:1 prog);
  Alcotest.(check (list string)) "mutex 2 waits for mutex 1 under dthreads"
    [ "a-locked"; "a-unlocking"; "b-locked" ] (List.rev !order);
  order := [];
  (* Coarsening would hold the token across a's critical section; disable
     it to observe the base algorithm's Fig 5 concurrency. *)
  ignore
    (Runtime.Det_rt.run
       (Runtime.Config.without_coarsening Runtime.Config.consequence_ic)
       ~seed:1 prog);
  Alcotest.(check (list string)) "independent locks under consequence"
    [ "a-locked"; "b-locked"; "a-unlocking" ] (List.rev !order)

let test_best_over_threads () =
  let r =
    R.best_over_threads R.consequence_ic ~threads:[ 2; 4 ] (locked_counter ~iters:10)
  in
  check_bool "picked one" true (r.Res.nthreads = 2 || r.Res.nthreads = 4)

(* --- Observability ---------------------------------------------------- *)

(* Instrumentation must be determinism-neutral: attaching a tracer sink
   must not change the witness, the simulated wall time, or the sync-op
   count.  The sink only reads the clock, never advances it. *)
let test_obs_neutrality () =
  List.iter
    (fun prog ->
      List.iter
        (fun rt ->
          let bare = R.run rt ~seed:1 ~nthreads:4 prog in
          let tr = Obs.Tracer.create () in
          let traced = R.run rt ~seed:1 ~nthreads:4 ~obs:(Obs.Tracer.sink tr) prog in
          let name = R.name rt ^ "/" ^ prog.Api.name in
          check_string (name ^ " witness unchanged")
            (Res.deterministic_witness bare)
            (Res.deterministic_witness traced);
          check_int (name ^ " wall_ns unchanged") bare.Res.wall_ns traced.Res.wall_ns;
          check_int (name ^ " sync_ops unchanged") bare.Res.sync_ops traced.Res.sync_ops;
          if List.mem rt det_runtimes then
            check_bool (name ^ " produced spans") true (Obs.Tracer.span_count tr > 0))
        R.all)
    [ locked_counter ~iters:8; contended ]

(* Rt_event observer: events are delivered in global token order, so the
   stream is seed-invariant, commit versions arrive strictly increasing,
   and mutex acquire/release counts match the program exactly. *)
let test_observer_token_order () =
  let iters = 6 and nthreads = 4 in
  let prog = locked_counter ~iters in
  let collect rt seed =
    let events = ref [] in
    let r = R.run rt ~seed ~nthreads ~observer:(fun e -> events := e :: !events) prog in
    (r, List.rev !events)
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as tl) -> a < b && strictly_increasing tl
    | _ -> true
  in
  List.iter
    (fun rt ->
      let r, events = collect rt 1 in
      let name = R.name rt in
      let m1 = Runtime.Rt_event.obj_mutex 1 in
      let count p = List.length (List.filter p events) in
      check_int (name ^ " mutex acquires") (nthreads * iters)
        (count (function Runtime.Rt_event.Acquire { obj; _ } -> obj = m1 | _ -> false));
      check_int (name ^ " mutex releases") (nthreads * iters)
        (count (function Runtime.Rt_event.Release { obj; _ } -> obj = m1 | _ -> false));
      let versions =
        List.filter_map
          (function Runtime.Rt_event.Commit { version; _ } -> Some version | _ -> None)
          events
      in
      check_bool (name ^ " saw commits") true (versions <> []);
      check_bool (name ^ " commit versions strictly increasing") true
        (strictly_increasing versions);
      (* The observer is itself neutral... *)
      check_string (name ^ " observer neutral") (witness rt ~threads:nthreads prog)
        (Res.deterministic_witness r);
      (* ...and the stream is part of the deterministic behaviour: a
         different seed yields the identical event sequence. *)
      let _, events2 = collect rt 99 in
      check_bool (name ^ " event stream seed-invariant") true (events = events2))
    det_runtimes

(* --- Golden witnesses ------------------------------------------------- *)

(* Witnesses (memory | sync-order | output hashes) captured before the
   vmem data-structure rewrite: offset-array page histories, aliasing
   workspaces, word-level merges.  The optimizations must not change a
   single observable bit of any deterministic run. *)
let golden_witnesses =
  [
    ("ocean_cp", "ic", 1, 4, "mem:3500e97ddec7b1a5|sync:dc25764496b47537|out:c49cf87fe8105953");
    ("ocean_cp", "ic", 7, 8, "mem:eb2a8b77cfddc7e5|sync:52c31b5a52811ee5|out:b707195714792bac");
    ("ocean_cp", "rr", 1, 4, "mem:d107be09d96580e5|sync:738aae0c1034c2c5|out:c49cf87fe8105953");
    ("ocean_cp", "rr", 7, 8, "mem:08cc10b505866625|sync:dd94fe21b079373d|out:b707195714792bac");
    ("ocean_cp", "dthreads", 1, 4, "mem:d107be09d96580e5|sync:738aae0c1034c2c5|out:c49cf87fe8105953");
    ("ocean_cp", "dthreads", 7, 8, "mem:08cc10b505866625|sync:dd94fe21b079373d|out:b707195714792bac");
    ("lu_ncb", "ic", 1, 4, "mem:3fba6f123bd55125|sync:bde8bf61ea83ac80|out:a2adaaa7778ff46a");
    ("lu_ncb", "ic", 7, 8, "mem:259d8dcc7d1f17a5|sync:f574fd213046e0c0|out:a2c228a777a1738e");
    ("lu_ncb", "rr", 1, 4, "mem:3fba6f123bd55125|sync:6b233b1f658b0954|out:a2adaaa7778ff46a");
    ("lu_ncb", "rr", 7, 8, "mem:259d8dcc7d1f17a5|sync:efb24da613802c58|out:a2c228a777a1738e");
    ("lu_ncb", "dthreads", 1, 4, "mem:3fba6f123bd55125|sync:6b233b1f658b0954|out:a2adaaa7778ff46a");
    ("lu_ncb", "dthreads", 7, 8, "mem:259d8dcc7d1f17a5|sync:efb24da613802c58|out:a2c228a777a1738e");
    ("canneal", "ic", 1, 4, "mem:7f529a7d5585192f|sync:bde8bf61ea83ac80|out:4fc780561cfa8a57");
    ("canneal", "ic", 7, 8, "mem:e6adc733da6dcdc9|sync:f574fd213046e0c0|out:4fdbfa561d0c02af");
    ("canneal", "rr", 1, 4, "mem:7f529a7d5585192f|sync:6b233b1f658b0954|out:4fc780561cfa8a57");
    ("canneal", "rr", 7, 8, "mem:e6adc733da6dcdc9|sync:efb24da613802c58|out:4fdbfa561d0c02af");
    ("canneal", "dthreads", 1, 4, "mem:7f529a7d5585192f|sync:6b233b1f658b0954|out:4fc780561cfa8a57");
    ("canneal", "dthreads", 7, 8, "mem:e6adc733da6dcdc9|sync:efb24da613802c58|out:4fdbfa561d0c02af");
    ("ferret", "ic", 1, 4, "mem:2d65179d8ddd1dc4|sync:b3f68333e65a073c|out:3c728c8cc38ca406");
    (* Re-captured when grant's fast-forward target became the waker's
       fully-published count (it previously embedded the overflow
       publication schedule, which is real-time dependent on the
       domains backend).  Only this configuration exercised a
       coarsened-unlock grant with unpublished instructions. *)
    ("ferret", "ic", 7, 8, "mem:7ac6ba1edded963a|sync:25023183ee3e56be|out:3c728c8cc38ca406");
    ("ferret", "rr", 1, 4, "mem:2d65179d8ddd1dc4|sync:95250b1455c9ba75|out:3c728c8cc38ca406");
    ("ferret", "rr", 7, 8, "mem:631f100e7411bb45|sync:a0986ee5e8ec2cd5|out:3c728c8cc38ca406");
    ("ferret", "dthreads", 1, 4, "mem:2d65179d8ddd1dc4|sync:482306b4c8cc2625|out:3c728c8cc38ca406");
    ("ferret", "dthreads", 7, 8, "mem:7824920bcaafc945|sync:571057fc97664d0d|out:3c728c8cc38ca406");
    ("histogram", "ic", 1, 4, "mem:384cf590cc756005|sync:67960f895c0dfd39|out:bc0ad10f36edc013");
    ("histogram", "ic", 7, 8, "mem:2e915ded5ab0a865|sync:13e54b852099d70e|out:b3703b17bee0ba86");
    ("histogram", "rr", 1, 4, "mem:384cf590cc756005|sync:af202c55a7adf659|out:bc0ad10f36edc013");
    ("histogram", "rr", 7, 8, "mem:2e915ded5ab0a865|sync:4e83f62079f07bfa|out:b3703b17bee0ba86");
    ("histogram", "dthreads", 1, 4, "mem:384cf590cc756005|sync:bd39ad13418b9fb9|out:bc0ad10f36edc013");
    ("histogram", "dthreads", 7, 8, "mem:2e915ded5ab0a865|sync:9caf76ab585d73da|out:b3703b17bee0ba86");
  ]

(* Parallel-commit on/off: the sharded pipelined commit with incremental
   GC relocates cost (off the token hold, onto pool workers, into commit
   slack) but installs the same bytes in the same version order — every
   registry workload must produce a byte-identical witness with the
   machinery on, on every deterministic runtime, at every seed.  This is
   the live counterpart of the hardcoded golden list above: it pins the
   optimized path to whatever the baseline path produces today. *)
let test_parallel_commit_witness_identity () =
  let pipe_of cfg =
    Runtime.Config.with_incremental_gc
      (Runtime.Config.with_commit_shards (Runtime.Config.with_pipelined_commit cfg) 8)
  in
  List.iter
    (fun (entry : Workload.Registry.entry) ->
      List.iter
        (fun rt ->
          match rt with
          | R.Pthreads | R.Domains _ -> ()
          | R.Det cfg ->
              List.iter
                (fun seed ->
                  let base =
                    Res.deterministic_witness (R.run rt ~seed ~nthreads:8 entry.program)
                  in
                  let piped =
                    Res.deterministic_witness
                      (R.run (R.Det (pipe_of cfg)) ~seed ~nthreads:8 entry.program)
                  in
                  check_string
                    (Printf.sprintf "%s/%s seed=%d pipelined" entry.program.Api.name
                       (R.name rt) seed)
                    base piped)
                [ 1; 7 ])
        [ R.consequence_ic; R.consequence_rr; R.dthreads ])
    Workload.Registry.all

let test_golden_witnesses () =
  List.iter
    (fun (bench, rt_name, seed, threads, expected) ->
      let rt =
        match rt_name with
        | "ic" -> R.consequence_ic
        | "rr" -> R.consequence_rr
        | _ -> R.dthreads
      in
      let program = (Workload.Registry.find bench).Workload.Registry.program in
      let got = Res.deterministic_witness (R.run rt ~seed ~nthreads:threads program) in
      check_string
        (Printf.sprintf "%s/%s seed=%d t=%d" bench rt_name seed threads)
        expected got)
    golden_witnesses

(* --- Real-multicore identity (Domains_rt vs the DES) ------------------ *)

let domains_witness ?(cfg = Runtime.Config.consequence_ic) ~domains ~seed program =
  Res.deterministic_witness
    (Runtime.Domains_rt.run cfg ~domains ~seed ~nthreads:8 program)

(* The tentpole claim of the real-multicore backend: running the very
   same Consequence algorithms on OCaml 5 domains yields a witness
   byte-identical to the DES, for every registry workload, across seeds
   {1,7} and domain counts {1, 2, auto}. *)
let test_domains_witness_identity () =
  List.iter
    (fun (entry : Workload.Registry.entry) ->
      List.iter
        (fun seed ->
          let des =
            Res.deterministic_witness
              (R.run R.consequence_ic ~seed ~nthreads:8 entry.program)
          in
          List.iter
            (fun domains ->
              check_string
                (Printf.sprintf "%s seed=%d domains=%d" entry.program.Api.name seed
                   domains)
                des
                (domains_witness ~domains ~seed entry.program))
            [ 1; 2; 0 ])
        [ 1; 7 ])
    Workload.Registry.all

(* Same identity for the pipelined sharded-commit configuration, on a
   subset (the full matrix above already covers the base config). *)
let test_domains_pipe_witness_identity () =
  let pipe =
    Runtime.Config.with_incremental_gc
      (Runtime.Config.with_commit_shards
         (Runtime.Config.with_pipelined_commit Runtime.Config.consequence_ic)
         8)
  in
  List.iter
    (fun bench ->
      let program = (Workload.Registry.find bench).Workload.Registry.program in
      let des =
        Res.deterministic_witness (R.run (R.Det pipe) ~seed:1 ~nthreads:8 program)
      in
      check_string
        (Printf.sprintf "%s pipe domains=2" bench)
        des
        (domains_witness ~cfg:pipe ~domains:2 ~seed:1 program))
    [ "histogram"; "word_count"; "dedup"; "barnes" ]

(* --- Self-tuning controller (lib/tune) --------------------------------- *)

let test_run_names_cover_presets () =
  (* The full resolvable runtime set must round-trip name <-> preset and
     include the two presets `all` excludes (pipe, domains). *)
  List.iter
    (fun n ->
      match R.of_name n with
      | Some rt -> check_string (n ^ " round-trips") n (R.name rt)
      | None -> Alcotest.failf "Run.names lists %S but of_name rejects it" n)
    R.names;
  check_bool "all presets listed" true
    (List.for_all (fun rt -> List.mem (R.name rt) R.names) R.all);
  check_bool "pipe listed" true (List.mem (R.name R.consequence_pipe) R.names);
  check_bool "domains listed" true (List.mem (R.name R.domains) R.names);
  check_bool "unknown name rejected" true (R.of_name "no-such-runtime" = None);
  Alcotest.(check int) "seven resolvable runtimes" 7 (List.length R.names)

(* The five runtimes of the controller's cross-runtime identity claim. *)
let tuned_runtimes params =
  let tuned cfg = Runtime.Config.with_adaptive_tuning ~params cfg in
  [
    ("ic", R.Det (tuned Runtime.Config.consequence_ic));
    ("rr", R.Det (tuned Runtime.Config.consequence_rr));
    ("pipe", R.Det (tuned Runtime.Config.consequence_pipe));
    ("dthreads", R.Det (tuned Runtime.Config.dthreads));
    ("domains", R.Domains (tuned Runtime.Config.consequence_ic));
  ]

let decision_streams rt ~seed program =
  let evs = ref [] in
  let observer ev =
    match ev with Runtime.Rt_event.Tune_decision _ -> evs := ev :: !evs | _ -> ()
  in
  ignore (R.run rt ~seed ~nthreads:8 ~observer program);
  Tune.Controller.of_events (List.rev !evs)

(* The acceptance property of the online controller: because decisions
   are a pure function of (params, epoch), every runtime backend — DES
   instruction-count, round-robin, pipelined commit, DThreads fences,
   real OCaml 5 domains — produces byte-identical per-thread decision
   streams on every seed, each a prefix of the pure prediction. *)
let check_controller_decisions_identical params bench =
  let program = (Workload.Registry.find bench).Workload.Registry.program in
  List.iter
    (fun seed ->
      let streams =
        List.map
          (fun (label, rt) -> (label, decision_streams rt ~seed program))
          (tuned_runtimes params)
      in
      let _, reference = List.hd streams in
      check_bool (Printf.sprintf "%s seed=%d decisions recorded" bench seed) true
        (reference <> []);
      List.iter
        (fun (label, s) ->
          check_bool
            (Printf.sprintf "%s seed=%d %s decisions identical to ic" bench seed label)
            true (s = reference))
        (List.tl streams))
    [ 1; 7 ]

let test_controller_decisions_identical_across_runtimes () =
  List.iter
    (check_controller_decisions_identical Runtime.Tune_ctl.default)
    [ "kmeans"; "histogram" ]

let prop_controller_decisions_identical =
  (* satellite: random registry workloads, both seeds, all five runtimes. *)
  QCheck.Test.make ~name:"controller decisions identical across runtimes" ~count:4
    (QCheck.make (QCheck.Gen.oneofl Workload.Registry.names))
    (fun bench ->
      check_controller_decisions_identical Runtime.Tune_ctl.default bench;
      true)

(* Value-determinism with the controller enabled, mirroring the
   pipelined-commit on/off matrix: per-runtime witnesses are seed-stable,
   memory and output hashes agree across all five runtimes, and the full
   witness (including the sync-order hash, which legitimately differs
   between token-ordering disciplines) is identical within the
   consequence-ic family {ic, pipe, domains}. *)
let test_tuned_witness_matrix () =
  let params = Runtime.Tune_ctl.default in
  List.iter
    (fun bench ->
      let program = (Workload.Registry.find bench).Workload.Registry.program in
      let results =
        List.map
          (fun (label, rt) ->
            let r1 = R.run rt ~seed:1 ~nthreads:8 program in
            let r7 = R.run rt ~seed:7 ~nthreads:8 program in
            check_string
              (Printf.sprintf "%s/%s seed-stable" bench label)
              (Res.deterministic_witness r1)
              (Res.deterministic_witness r7);
            (label, r1))
          (tuned_runtimes params)
      in
      let _, ic = List.hd results in
      List.iter
        (fun (label, r) ->
          check_string
            (Printf.sprintf "%s/%s mem hash" bench label)
            ic.Res.mem_hash r.Res.mem_hash;
          check_string
            (Printf.sprintf "%s/%s output hash" bench label)
            ic.Res.output_hash r.Res.output_hash)
        (List.tl results);
      List.iter
        (fun (label, r) ->
          if label = "pipe" || label = "domains" then
            check_string
              (Printf.sprintf "%s/%s full witness = ic" bench label)
              (Res.deterministic_witness ic)
              (Res.deterministic_witness r))
        (List.tl results))
    [ "kmeans"; "histogram"; "matrix_multiply" ]

(* Cheap always-on cross-check so plain `dune runtest` exercises the
   real-parallel path (the full sweep above is `Slow). *)
let test_domains_witness_identity_quick () =
  List.iter
    (fun bench ->
      let program = (Workload.Registry.find bench).Workload.Registry.program in
      let des =
        Res.deterministic_witness (R.run R.consequence_ic ~seed:1 ~nthreads:8 program)
      in
      check_string (Printf.sprintf "%s quick domains=2" bench) des
        (domains_witness ~domains:2 ~seed:1 program))
    [ "histogram"; "string_match"; "swaptions" ]

let () =
  Alcotest.run "runtime"
    [
      ( "basic",
        [
          Alcotest.test_case "all runtimes complete" `Quick test_all_runtimes_complete;
          Alcotest.test_case "locked counter exact" `Quick test_locked_counter_exact_everywhere;
          Alcotest.test_case "same seed reproducible" `Quick test_same_seed_reproducible;
          Alcotest.test_case "per-thread names" `Quick test_per_thread_names;
          Alcotest.test_case "best over threads" `Quick test_best_over_threads;
          Alcotest.test_case "config preset invariants" `Quick test_config_presets_invariants;
          Alcotest.test_case "single global lock aliases" `Quick test_single_global_lock_aliases;
          Alcotest.test_case "breakdown bounded" `Quick test_breakdown_covers_wall_time;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "det runtimes seed-invariant" `Quick
            test_det_runtimes_seed_invariant;
          Alcotest.test_case "pthreads diverges" `Quick test_pthreads_diverges_across_seeds;
          Alcotest.test_case "stable per thread count" `Quick
            test_det_runtimes_thread_count_changes_allowed;
          QCheck_alcotest.to_alcotest prop_random_programs_deterministic;
          QCheck_alcotest.to_alcotest prop_locked_counter_memory_agrees;
        ] );
      ( "synchronization",
        [
          Alcotest.test_case "barrier visibility" `Quick test_barrier_visibility;
          Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
          Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock_raises;
          Alcotest.test_case "self deadlock detected" `Quick test_self_deadlock_detected;
          Alcotest.test_case "uninitialized barrier" `Quick test_uninitialized_barrier_raises;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "plain rmw atomic under pthreads" `Quick
            test_plain_rmw_atomic_under_pthreads;
          Alcotest.test_case "plain rmw loses updates deterministically" `Quick
            test_plain_rmw_loses_updates_deterministically;
          Alcotest.test_case "atomic rmw exact everywhere" `Quick test_atomic_rmw_exact_everywhere;
        ] );
      ( "ad-hoc-sync",
        [
          Alcotest.test_case "stuck without chunk limit" `Slow test_flag_spin_stuck_without_limit;
          Alcotest.test_case "terminates with chunk limit" `Quick
            test_flag_spin_terminates_with_limit;
          Alcotest.test_case "fine under pthreads" `Quick test_flag_spin_fine_under_pthreads;
        ] );
      ( "optimizations",
        [
          Alcotest.test_case "coarsening reduces commits" `Quick test_coarsening_reduces_commits;
          Alcotest.test_case "static coarsening levels" `Quick test_static_coarsening_levels_run;
          Alcotest.test_case "coarsening preserves results" `Quick
            test_coarsening_preserves_results;
          Alcotest.test_case "ablations deterministic" `Quick test_ablation_configs_deterministic;
          Alcotest.test_case "thread pool reuse" `Quick test_thread_pool_reuse;
          Alcotest.test_case "counter jitter runs" `Quick test_counter_jitter_still_runs;
          Alcotest.test_case "IC beats RR on mismatch" `Quick test_ic_beats_rr_on_mismatched_rates;
        ] );
      ( "observability",
        [
          Alcotest.test_case "instrumentation is determinism-neutral" `Quick
            test_obs_neutrality;
          Alcotest.test_case "observer events in token order" `Quick
            test_observer_token_order;
        ] );
      ( "golden",
        [
          Alcotest.test_case "witnesses match pre-rewrite baseline" `Slow test_golden_witnesses;
          Alcotest.test_case "pipelined sharded commit witness-identical" `Slow
            test_parallel_commit_witness_identity;
        ] );
      ( "tune",
        [
          Alcotest.test_case "Run.names covers every preset" `Quick
            test_run_names_cover_presets;
          Alcotest.test_case "decisions identical across five runtimes" `Quick
            test_controller_decisions_identical_across_runtimes;
          QCheck_alcotest.to_alcotest prop_controller_decisions_identical;
          Alcotest.test_case "tuned witness matrix" `Quick test_tuned_witness_matrix;
        ] );
      ( "domains",
        [
          Alcotest.test_case "witness-identical to DES (quick)" `Quick
            test_domains_witness_identity_quick;
          Alcotest.test_case "witness-identical across seeds and domain counts" `Slow
            test_domains_witness_identity;
          Alcotest.test_case "pipelined config witness-identical" `Slow
            test_domains_pipe_witness_identity;
        ] );
    ]

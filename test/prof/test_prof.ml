(* Tests for lib/prof: the conservation invariant (states tile every
   thread's lifetime exactly) as a qcheck property over random programs
   and all runtimes, determinism-neutrality of profiling, per-chunk
   consistency, critical-path sanity, what-if validity, and the
   histogram p999 quantile. *)

module St = Obs.Thread_state
module Res = Stats.Run_result

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let program_of name = (Workload.Registry.find name).Workload.Registry.program
let det_runtimes = List.filter Runtime.Run.deterministic Runtime.Run.all

let profile_run rt ?(seed = 1) ?(nthreads = 8) program =
  let c = Prof.Profile.create () in
  let r =
    Runtime.Run.run rt ~seed ~nthreads ~observer:(Prof.Profile.observer c)
      ~obs:(Prof.Profile.sink c) program
  in
  (Prof.Profile.finish c ~wall_ns:r.Res.wall_ns, r)

let assert_conserved ~what p =
  if not (Prof.Profile.conservation_ok p) then
    List.iter
      (fun tp ->
        if not (Prof.Profile.thread_conserved tp) then
          Alcotest.failf "%s: tid %d not conserved: lifetime=%d busy=%d gap=%d overlap=%d"
            what tp.Prof.Profile.ptid
            (Prof.Profile.lifetime_ns tp)
            (Prof.Profile.busy_ns tp) tp.Prof.Profile.gap_ns tp.Prof.Profile.overlap_ns)
      p.Prof.Profile.threads

(* ------------------------------------------------------------------ *)
(* Conservation                                                       *)
(* ------------------------------------------------------------------ *)

let prop_conservation_all_runtimes =
  QCheck.Test.make ~name:"conservation: states tile lifetimes, every runtime" ~count:20
    QCheck.(triple (int_range 1 10_000) (int_range 2 8) bool)
    (fun (seed, nthreads, lock_heavy) ->
      let program =
        if lock_heavy then Workload.Synthetic.make_lock_heavy ~seed ()
        else Workload.Synthetic.make ~seed ()
      in
      List.for_all
        (fun rt ->
          let p, _ = profile_run rt ~seed ~nthreads program in
          assert_conserved ~what:(Runtime.Run.name rt) p;
          Prof.Profile.conservation_ok p)
        Runtime.Run.all)

let test_registry_conservation () =
  (* Deterministic sweep: every registry workload, every deterministic
     runtime, plus pthreads on a subset. *)
  List.iter
    (fun name ->
      List.iter
        (fun rt ->
          let p, _ = profile_run rt (program_of name) in
          assert_conserved ~what:(name ^ "/" ^ Runtime.Run.name rt) p;
          check_bool (name ^ " conserved") true (Prof.Profile.conservation_ok p))
        det_runtimes)
    Workload.Registry.names;
  List.iter
    (fun name ->
      let p, _ = profile_run Runtime.Run.pthreads (program_of name) in
      assert_conserved ~what:(name ^ "/pthreads") p)
    [ "histogram"; "kmeans"; "dedup" ]

let test_chunks_consistent () =
  List.iter
    (fun name ->
      let p, _ = profile_run Runtime.Run.consequence_ic (program_of name) in
      List.iter
        (fun tp ->
          check_bool
            (Printf.sprintf "%s tid %d chunk table repartitions by_state" name
               tp.Prof.Profile.ptid)
            true
            (Prof.Profile.chunks_consistent tp))
        p.Prof.Profile.threads)
    [ "kmeans"; "canneal"; "barnes"; "dedup" ]

let test_totals_match_breakdown_wall () =
  (* The profiler's per-state totals and the runtime's own Breakdown
     are two views of the same charges: their grand totals agree. *)
  let p, r = profile_run Runtime.Run.consequence_ic (program_of "kmeans") in
  let profile_total = Array.fold_left ( + ) 0 p.Prof.Profile.totals in
  let bd_total =
    List.fold_left
      (fun acc (pt : Res.thread_stat) -> acc + Stats.Breakdown.total pt.Res.breakdown)
      0 r.Res.per_thread
  in
  check_int "profile totals = breakdown totals" bd_total profile_total

(* ------------------------------------------------------------------ *)
(* Determinism neutrality                                             *)
(* ------------------------------------------------------------------ *)

let test_profiling_is_neutral () =
  (* Attaching the collector (sink + observer) must not perturb the
     simulation: witnesses and simulated wall time are byte-identical
     with and without it, on every runtime. *)
  List.iter
    (fun rt ->
      let program = program_of "kmeans" in
      let bare = Runtime.Run.run rt ~seed:5 ~nthreads:8 program in
      let c = Prof.Profile.create () in
      let profiled =
        Runtime.Run.run rt ~seed:5 ~nthreads:8 ~observer:(Prof.Profile.observer c)
          ~obs:(Prof.Profile.sink c) program
      in
      check_string
        (Runtime.Run.name rt ^ " witness unchanged")
        (Res.deterministic_witness bare)
        (Res.deterministic_witness profiled);
      check_int
        (Runtime.Run.name rt ^ " wall_ns unchanged")
        bare.Res.wall_ns profiled.Res.wall_ns)
    Runtime.Run.all

let test_report_runs_whole_registry () =
  (* The acceptance criterion: the profile report produces a per-thread
     state breakdown and a critical path for every registry workload. *)
  List.iter
    (fun name ->
      let r = Prof.Report.run (program_of name) in
      check_bool (name ^ " conserved") true (Prof.Report.conservation_ok r);
      check_bool (name ^ " has threads") true (r.Prof.Report.profile.Prof.Profile.threads <> []);
      check_bool (name ^ " path nonempty") true
        (r.Prof.Report.cpath.Prof.Critical_path.path_ns > 0))
    Workload.Registry.names

(* ------------------------------------------------------------------ *)
(* Critical path                                                      *)
(* ------------------------------------------------------------------ *)

let test_critical_path_sanity () =
  List.iter
    (fun name ->
      let p, _ = profile_run Runtime.Run.consequence_ic (program_of name) in
      let c = Prof.Critical_path.compute p in
      check_bool (name ^ " path positive") true (c.Prof.Critical_path.path_ns > 0);
      check_bool (name ^ " path <= wall") true
        (c.Prof.Critical_path.path_ns <= c.Prof.Critical_path.wall_ns);
      check_bool (name ^ " not truncated") true (not c.Prof.Critical_path.truncated);
      check_int
        (name ^ " by_state sums to path")
        c.Prof.Critical_path.path_ns
        (Array.fold_left ( + ) 0 c.Prof.Critical_path.by_state);
      check_int
        (name ^ " by_thread sums to path")
        c.Prof.Critical_path.path_ns
        (List.fold_left (fun a (_, ns) -> a + ns) 0 c.Prof.Critical_path.by_thread);
      List.iter
        (fun (_, s) -> check_bool (name ^ " projection >= 1") true (s >= 1.0))
        (Prof.Critical_path.projections c))
    Workload.Registry.names

let test_critical_path_deterministic () =
  let run () =
    let p, _ = profile_run Runtime.Run.consequence_ic (program_of "ferret") in
    Prof.Critical_path.compute p
  in
  let a = run () and b = run () in
  check_bool "identical critical path across runs" true (a = b)

(* ------------------------------------------------------------------ *)
(* What-if                                                            *)
(* ------------------------------------------------------------------ *)

let test_whatif_valid_on_det () =
  let w = Prof.Whatif.run ~seed:2 ~nthreads:8 (program_of "kmeans") in
  check_int "all scenarios ran" (List.length Prof.Whatif.scenarios)
    (List.length w.Prof.Whatif.rows);
  List.iter
    (fun r ->
      check_bool (r.Prof.Whatif.scenario ^ " witnesses preserved") true
        (not r.Prof.Whatif.diverged);
      check_bool (r.Prof.Whatif.scenario ^ " speedup sane") true
        (r.Prof.Whatif.speedup >= 0.95);
      check_bool (r.Prof.Whatif.scenario ^ " wall positive") true (r.Prof.Whatif.wall_ns > 0))
    w.Prof.Whatif.rows

let test_whatif_cheaper_never_much_slower () =
  (* Every scenario only lowers costs, so simulated wall time must not
     grow (beyond rounding on the max 1 guard). *)
  let w = Prof.Whatif.run (program_of "ferret") in
  List.iter
    (fun r ->
      check_bool (r.Prof.Whatif.scenario ^ " not slower") true
        (r.Prof.Whatif.wall_ns <= w.Prof.Whatif.base_wall_ns))
    w.Prof.Whatif.rows

(* ------------------------------------------------------------------ *)
(* Quantiles                                                          *)
(* ------------------------------------------------------------------ *)

let test_p999 () =
  let m = Obs.Metrics.create () in
  for i = 1 to 10_000 do
    Obs.Metrics.observe m "lat" i
  done;
  let s = Obs.Metrics.snapshot m in
  let h = Option.get (Obs.Metrics.find_hist s "lat") in
  let p50 = Obs.Metrics.percentile h 0.5 in
  let p99 = Obs.Metrics.percentile h 0.99 in
  let p999 = Obs.Metrics.percentile h 0.999 in
  check_bool "p50 <= p99" true (p50 <= p99);
  check_bool "p99 <= p999" true (p99 <= p999);
  check_bool "p999 <= max" true (p999 <= float_of_int h.Obs.Metrics.max_v);
  (* and the JSON export carries the new field *)
  let json = Obs.Json.to_string (Obs.Metrics.to_json s) in
  let contains hay needle =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length hay then false
      else String.sub hay i n = needle || find (i + 1)
    in
    find 0
  in
  check_bool "json has p999" true (contains json "\"p999\"")

let test_profile_hists_have_states () =
  let p, _ = profile_run Runtime.Run.consequence_ic (program_of "kmeans") in
  List.iter
    (fun key ->
      match Obs.Metrics.find_hist p.Prof.Profile.hists key with
      | None -> Alcotest.failf "missing histogram %s" key
      | Some h -> check_bool (key ^ " populated") true (h.Obs.Metrics.count > 0))
    [ "state:run"; "state:token_wait"; "state:commit" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "prof"
    [
      ( "conservation",
        [
          QCheck_alcotest.to_alcotest prop_conservation_all_runtimes;
          Alcotest.test_case "whole registry, all det runtimes" `Quick
            test_registry_conservation;
          Alcotest.test_case "chunk tables repartition by_state" `Quick
            test_chunks_consistent;
          Alcotest.test_case "profile totals = breakdown totals" `Quick
            test_totals_match_breakdown_wall;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "profiling leaves witnesses and wall time unchanged" `Quick
            test_profiling_is_neutral;
        ] );
      ( "report",
        [
          Alcotest.test_case "report runs on every registry workload" `Quick
            test_report_runs_whole_registry;
        ] );
      ( "critical-path",
        [
          Alcotest.test_case "sanity across the registry" `Quick test_critical_path_sanity;
          Alcotest.test_case "deterministic" `Quick test_critical_path_deterministic;
        ] );
      ( "what-if",
        [
          Alcotest.test_case "valid on consequence-ic" `Quick test_whatif_valid_on_det;
          Alcotest.test_case "cheaper costs never slower" `Quick
            test_whatif_cheaper_never_much_slower;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "p999 ordering and JSON export" `Quick test_p999;
          Alcotest.test_case "per-state histograms populated" `Quick
            test_profile_hists_have_states;
        ] );
    ]

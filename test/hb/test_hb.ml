(* Tests for vector clocks and the LRC memory-propagation study. *)

module Vc = Hb.Vector_clock
module Lrc = Hb.Lrc_study
module Ev = Runtime.Rt_event

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Vector_clock                                                       *)
(* ------------------------------------------------------------------ *)

let test_vc_empty () =
  check_int "missing is 0" 0 (Vc.get Vc.empty 3);
  check_bool "empty <= empty" true (Vc.leq Vc.empty Vc.empty)

let test_vc_set_get () =
  let vc = Vc.set Vc.empty 2 5 in
  check_int "set" 5 (Vc.get vc 2);
  check_int "others 0" 0 (Vc.get vc 1)

let test_vc_monotone () =
  let vc = Vc.set Vc.empty 1 5 in
  let raised = try ignore (Vc.set vc 1 3); false with Invalid_argument _ -> true in
  check_bool "no backwards" true raised

let test_vc_join () =
  let a = Vc.set (Vc.set Vc.empty 0 3) 1 7 in
  let b = Vc.set (Vc.set Vc.empty 0 5) 2 2 in
  let j = Vc.join a b in
  check_int "max 0" 5 (Vc.get j 0);
  check_int "keeps 1" 7 (Vc.get j 1);
  check_int "keeps 2" 2 (Vc.get j 2)

let test_vc_leq () =
  let a = Vc.set Vc.empty 0 3 in
  let b = Vc.set (Vc.set Vc.empty 0 5) 1 1 in
  check_bool "a <= b" true (Vc.leq a b);
  check_bool "b not <= a" false (Vc.leq b a);
  check_bool "join upper bound" true (Vc.leq a (Vc.join a b) && Vc.leq b (Vc.join a b))

let prop_vc_join_commutative =
  let entries =
    QCheck.(list_of_size (QCheck.Gen.int_range 0 6) (pair (int_bound 4) (int_range 1 100)))
  in
  let build l = List.fold_left (fun vc (t, n) -> Vc.join vc (Vc.set Vc.empty t n)) Vc.empty l in
  QCheck.Test.make ~name:"vector-clock join is commutative and idempotent" ~count:200
    (QCheck.pair entries entries)
    (fun (la, lb) ->
      let a = build la and b = build lb in
      Vc.equal (Vc.join a b) (Vc.join b a) && Vc.equal (Vc.join a a) a)

(* ------------------------------------------------------------------ *)
(* Race detector: epoch shortcut vs full-vector oracle                *)
(* ------------------------------------------------------------------ *)

let prop_race_epoch_agrees_with_oracle =
  (* Random synchronization streams over 4 threads and 3 objects, with
     conflicts stamped near the loser's current release count (some
     beyond it, i.e. unpublished): the O(1) epoch verdict must match the
     full-vector release-history scan on every finding. *)
  let op =
    QCheck.(
      oneof
        [
          map (fun (t, o) -> `Rel (t, o)) (pair (int_bound 3) (int_bound 2));
          map (fun (t, o) -> `Acq (t, o)) (pair (int_bound 3) (int_bound 2));
          map
            (fun (w, (l, off)) -> `Confl (w, l, off))
            (pair (int_bound 3) (pair (int_bound 3) (int_range (-2) 2)));
        ])
  in
  let stream = QCheck.(list_of_size (QCheck.Gen.int_range 0 40) op) in
  QCheck.Test.make ~name:"race: epoch verdicts agree with full-vector oracle" ~count:500 stream
    (fun ops ->
      let released = Array.make 4 0 in
      let events =
        List.filter_map
          (function
            | `Rel (t, o) ->
                released.(t) <- released.(t) + 1;
                Some (Ev.Release { tid = t; obj = "m:" ^ string_of_int o })
            | `Acq (t, o) -> Some (Ev.Acquire { tid = t; obj = "m:" ^ string_of_int o })
            | `Confl (w, l, off) ->
                if w = l then None
                else
                  Some
                    (Ev.Conflict
                       {
                         tid = w;
                         version = 0;
                         page = 0;
                         first_byte = 0;
                         last_byte = 7;
                         loser_tid = l;
                         loser_version = max 1 (released.(l) + off);
                       }))
          ops
      in
      let verdicts mode =
        let det = Race.Detector.create ~mode () in
        List.iter (Race.Detector.observer det) events;
        List.map (fun f -> f.Race.Detector.verdict) (Race.Detector.findings det)
      in
      verdicts Race.Detector.Epoch = verdicts Race.Detector.Full_vector)

(* ------------------------------------------------------------------ *)
(* Lrc tracker on hand-built event sequences                          *)
(* ------------------------------------------------------------------ *)

let commit tid pages = Ev.Commit { tid; version = 0; pages }
let release tid obj = Ev.Release { tid; obj }
let acquire tid obj = Ev.Acquire { tid; obj }

let run_events evs =
  let t = Lrc.create_tracker () in
  List.iter (Lrc.observer t) evs;
  t

let test_lrc_lock_handoff () =
  (* T0 writes pages 1,2 under a lock; T1 acquires the same lock: both
     pages propagate to T1 exactly once. *)
  let t =
    run_events
      [
        acquire 0 "m:0";
        commit 0 [ 1; 2 ];
        release 0 "m:0";
        acquire 1 "m:0";
      ]
  in
  check_int "two pages" 2 (Lrc.lrc_pages t);
  check_int "acquires" 2 (Lrc.acquires t)

let test_lrc_unrelated_lock_no_propagation () =
  (* T1 acquires a DIFFERENT lock: no happens-before edge, no pages. *)
  let t =
    run_events [ commit 0 [ 1; 2 ]; release 0 "m:0"; acquire 1 "m:9" ] in
  check_int "nothing propagated" 0 (Lrc.lrc_pages t)

let test_lrc_no_double_count () =
  (* A second acquire of the same lock without new writes moves nothing. *)
  let t =
    run_events
      [
        commit 0 [ 1 ];
        release 0 "m:0";
        acquire 1 "m:0";
        release 1 "m:0";
        acquire 1 "m:0";
      ]
  in
  check_int "page counted once" 1 (Lrc.lrc_pages t)

let test_lrc_chain () =
  (* T0 -> T1 via lock A, then T1 -> T2 via lock B: T0's page reaches T2
     transitively, counted once per receiving thread. *)
  let t =
    run_events
      [
        commit 0 [ 7 ];
        release 0 "m:A";
        acquire 1 "m:A";
        release 1 "m:B";
        acquire 2 "m:B";
      ]
  in
  check_int "page moved twice (to T1 and T2)" 2 (Lrc.lrc_pages t)

let test_lrc_own_pages_not_counted () =
  let t =
    run_events [ commit 0 [ 3 ]; release 0 "m:0"; acquire 0 "m:0" ] in
  check_int "own commit not propagated" 0 (Lrc.lrc_pages t)

let test_lrc_barrier_merges_everyone () =
  (* Two writers release at a barrier; both then acquire: each pulls the
     other's page (2 transfers), not its own. *)
  let t =
    run_events
      [
        commit 0 [ 1 ];
        commit 1 [ 2 ];
        release 0 "b:0";
        release 1 "b:0";
        acquire 0 "b:0";
        acquire 1 "b:0";
      ]
  in
  check_int "cross transfers only" 2 (Lrc.lrc_pages t)

let test_lrc_counts () =
  let t = run_events [ commit 0 [ 1; 2; 3 ]; commit 0 [ 1 ] ] in
  check_int "commits" 2 (Lrc.commits t);
  check_int "page updates" 4 (Lrc.page_updates t)

(* ------------------------------------------------------------------ *)
(* End-to-end study                                                   *)
(* ------------------------------------------------------------------ *)

let test_lrc_study_runs () =
  let program = (Workload.Registry.find "kmeans").Workload.Registry.program in
  let r = Lrc.run ~nthreads:4 program in
  check_bool "tso positive" true (r.Lrc.tso_pages > 0);
  check_bool "lrc positive" true (r.Lrc.lrc_pages > 0);
  check_bool "reduction sane" true (Lrc.reduction r <= 1.0)

let test_lrc_barrier_heavy_saves_little () =
  (* The paper's canneal observation: barriers leave almost nothing for
     LRC to save. *)
  let program = (Workload.Registry.find "canneal").Workload.Registry.program in
  let r = Lrc.run ~nthreads:4 program in
  check_bool "under 5%" true (Lrc.reduction r < 0.05)

let test_lrc_deterministic () =
  let program = (Workload.Registry.find "ferret").Workload.Registry.program in
  let r1 = Lrc.run ~seed:1 ~nthreads:4 program in
  let r2 = Lrc.run ~seed:99 ~nthreads:4 program in
  check_int "same lrc count" r1.Lrc.lrc_pages r2.Lrc.lrc_pages;
  check_int "same tso count" r1.Lrc.tso_pages r2.Lrc.tso_pages

let () =
  Alcotest.run "hb"
    [
      ( "vector-clock",
        [
          Alcotest.test_case "empty" `Quick test_vc_empty;
          Alcotest.test_case "set/get" `Quick test_vc_set_get;
          Alcotest.test_case "monotone" `Quick test_vc_monotone;
          Alcotest.test_case "join" `Quick test_vc_join;
          Alcotest.test_case "leq" `Quick test_vc_leq;
          QCheck_alcotest.to_alcotest prop_vc_join_commutative;
          QCheck_alcotest.to_alcotest prop_race_epoch_agrees_with_oracle;
        ] );
      ( "lrc-tracker",
        [
          Alcotest.test_case "lock handoff" `Quick test_lrc_lock_handoff;
          Alcotest.test_case "unrelated lock" `Quick test_lrc_unrelated_lock_no_propagation;
          Alcotest.test_case "no double count" `Quick test_lrc_no_double_count;
          Alcotest.test_case "transitive chain" `Quick test_lrc_chain;
          Alcotest.test_case "own pages" `Quick test_lrc_own_pages_not_counted;
          Alcotest.test_case "barrier merge" `Quick test_lrc_barrier_merges_everyone;
          Alcotest.test_case "counters" `Quick test_lrc_counts;
        ] );
      ( "study",
        [
          Alcotest.test_case "runs" `Quick test_lrc_study_runs;
          Alcotest.test_case "barriers save little" `Quick test_lrc_barrier_heavy_saves_little;
          Alcotest.test_case "deterministic" `Quick test_lrc_deterministic;
        ] );
    ]

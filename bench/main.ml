(* Benchmark harness: regenerates every data figure of the paper
   (Figs 10-16), the determinism and TSO reports, and a set of Bechamel
   microbenchmarks of the core primitives.

   Usage:
     bench/main.exe                 run everything (quick sweeps)
     bench/main.exe all             same (explicit alias)
     bench/main.exe full            run everything with the full thread sweep
     bench/main.exe fig10 fig14     run selected sections
     bench/main.exe -j 4 all        fan the sweeps over 4 domains
   Sections: fig10 fig11 fig12 fig13 fig14 fig15 fig16 determinism tso
   races climit soundness locking chunking micro sched replay profile
   commit domains kv autotune.

   [--baseline DIR] compares fresh section dumps against DIR; adding
   [--fail-on-regress PCT] turns numeric-leaf drift beyond PCT percent
   into a non-zero exit (missing or unparseable baselines still skip).

   [-j N] sets the worker-domain count for the figure sweeps (0 = one
   per recommended domain); results are gathered in input order, so the
   output is byte-identical to a sequential run.  [--quick] is accepted
   as an explicit synonym of the default sweep. *)

let quick_threads = [ 2; 4; 8; 16 ]
let full_threads = [ 2; 4; 8; 16; 32 ]

let section_names =
  [
    "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "determinism"; "tso";
    "races"; "climit"; "soundness"; "locking"; "chunking"; "micro"; "sched"; "replay";
    "profile"; "commit"; "domains"; "kv"; "autotune";
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core data structures               *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let page_size = 256 in
  let seg_commit =
    Test.make ~name:"segment: commit 8 pages + read back"
      (Staged.stage (fun () ->
           let seg = Vmem.Segment.create ~pages:16 ~page_size () in
           let pages = List.init 8 (fun i -> (i, Vmem.Page.create ~size:page_size)) in
           let v = Vmem.Segment.commit seg ~committer:0 ~pages in
           ignore (Vmem.Segment.read_page seg ~version:v 3)))
  in
  let ws_cycle =
    Test.make ~name:"workspace: write / commit / update cycle"
      (Staged.stage
         (let seg = Vmem.Segment.create ~pages:16 ~page_size () in
          let ws = Vmem.Workspace.create seg ~tid:0 in
          let buf = Bytes.make 64 'x' in
          fun () ->
            Vmem.Workspace.write ws ~addr:128 buf;
            ignore (Vmem.Workspace.commit ws);
            ignore (Vmem.Workspace.update ws)))
  in
  let page_merge =
    Test.make ~name:"page: byte merge (256 B)"
      (Staged.stage
         (let twin = Vmem.Page.create ~size:page_size in
          let local = Bytes.make page_size 'y' in
          let target = Vmem.Page.create ~size:page_size in
          fun () -> ignore (Vmem.Page.merge_into ~twin ~local ~target)))
  in
  let page_merge_sparse =
    (* The realistic shape: a 4 KiB page where the thread changed a
       handful of scattered bytes.  The word-level scan skips the
       untouched 99% without byte-by-byte comparison. *)
    Test.make ~name:"page: byte merge (4 KiB, 16 changed bytes)"
      (Staged.stage
         (let twin = Vmem.Page.create ~size:4096 in
          let local = Vmem.Page.copy twin in
          for k = 0 to 15 do
            Bytes.set local (k * 251) 'y'
          done;
          let target = Vmem.Page.create ~size:4096 in
          fun () -> ignore (Vmem.Page.merge_into ~twin ~local ~target)))
  in
  let seg_commit_deep =
    (* Commit against a segment whose pages already carry a 1000-version
       history: the case the offset-array page histories optimize.  The
       assoc-list representation walked (and re-sorted) the whole
       history on every touch. *)
    Test.make ~name:"segment: commit + read back (1000-version history)"
      (Staged.stage
         (let seg = Vmem.Segment.create ~pages:16 ~page_size () in
          let page = Vmem.Page.create ~size:page_size in
          for v = 1 to 1000 do
            Bytes.set page 0 (Char.chr (v land 0xff));
            ignore
              (Vmem.Segment.commit seg ~committer:0
                 ~pages:[ (3, Vmem.Page.copy page) ])
          done;
          fun () ->
            let v =
              Vmem.Segment.commit seg ~committer:0
                ~pages:[ (3, Vmem.Page.copy page) ]
            in
            ignore (Vmem.Segment.read_page seg ~version:v 3)))
  in
  let ws_read64 =
    Test.make ~name:"workspace: read_int64 (single-page fast path)"
      (Staged.stage
         (let seg = Vmem.Segment.create ~pages:16 ~page_size () in
          let ws = Vmem.Workspace.create seg ~tid:0 in
          Vmem.Workspace.write_int64 ws ~addr:128 42L;
          fun () -> ignore (Vmem.Workspace.read_int64 ws ~addr:128)))
  in
  let heap_ops =
    Test.make ~name:"event heap: 256 push + pop"
      (Staged.stage (fun () ->
           let h = Sim.Heap.create () in
           for i = 0 to 255 do
             Sim.Heap.push h ~key:(i * 7 mod 64) i
           done;
           while not (Sim.Heap.is_empty h) do
             ignore (Sim.Heap.pop h)
           done))
  in
  let gmic =
    Test.make ~name:"logical clock: gmic over 32 threads"
      (Staged.stage
         (let clocks = Detclock.Logical_clock.create () in
          let handles = List.init 32 (fun tid -> Detclock.Logical_clock.register clocks ~tid) in
          List.iteri (fun i c -> Detclock.Logical_clock.tick c (i * 97)) handles;
          fun () -> ignore (Detclock.Logical_clock.gmic clocks)))
  in
  let fnv =
    Test.make ~name:"fnv: hash one page"
      (Staged.stage
         (let page = Bytes.make page_size 'z' in
          fun () -> ignore (Sim.Fnv.bytes Sim.Fnv.init page)))
  in
  let end_to_end =
    Test.make ~name:"runtime: full consequence-ic run (locked counter, 4 threads)"
      (Staged.stage
         (let program =
            Api.make ~name:"bench-prog" ~heap_pages:16 ~page_size:64 (fun ~nthreads ops ->
                let workers =
                  List.init nthreads (fun _ ->
                      ops.Api.spawn (fun w ->
                          for _ = 1 to 5 do
                            w.Api.work 2_000;
                            w.Api.lock 1;
                            w.Api.write_int ~addr:0 (w.Api.read_int ~addr:0 + 1);
                            w.Api.unlock 1
                          done))
                in
                List.iter ops.Api.join workers)
          in
          fun () ->
            ignore (Runtime.Det_rt.run Runtime.Config.consequence_ic ~seed:1 ~nthreads:4 program)))
  in
  [
    seg_commit; seg_commit_deep; ws_cycle; ws_read64; page_merge; page_merge_sparse;
    heap_ops; gmic; fnv; end_to_end;
  ]

(* ------------------------------------------------------------------ *)
(* Scheduler fast-path microbenchmarks                                *)
(* ------------------------------------------------------------------ *)

let sched_tests () =
  let open Bechamel in
  let module Lc = Detclock.Logical_clock in
  let module Tok = Detclock.Token in
  let token_cycle =
    (* The no-contention fast path a thread takes at every sync op when
       nobody else wants the token: waitq insert/remove, the O(1)
       eligibility read, published_of, poke. *)
    Test.make ~name:"token: uncontended acquire + release cycle"
      (Staged.stage
         (let eng = Sim.Engine.create ~seed:1 () in
          let clocks = Lc.create () in
          let c = Lc.register clocks ~tid:0 in
          let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
          fun () ->
            Lc.tick c 1;
            Tok.wait token ~tid:0;
            Tok.release token ~tid:0))
  in
  let token_handoff =
    (* Full handoff machinery under contention: block, direct-handoff
       wakeup, engine due-now dispatch. *)
    Test.make ~name:"token: contended handoff (4 threads x 16 transfers)"
      (Staged.stage (fun () ->
           let eng = Sim.Engine.create ~seed:1 () in
           let clocks = Lc.create () in
           let token = Tok.create (Sim.Exec.of_engine eng) clocks Tok.Instruction_count in
           for tid = 0 to 3 do
             ignore
               (Sim.Engine.spawn eng ~name:"t" (fun () ->
                    let c = Lc.register clocks ~tid in
                    for _ = 1 to 16 do
                      Lc.tick c 100;
                      Tok.poke token;
                      Tok.wait token ~tid;
                      Sim.Engine.advance eng 10;
                      Tok.release token ~tid
                    done;
                    Lc.finish c;
                    Tok.poke token))
           done;
           Sim.Engine.run eng))
  in
  let gmic_at n =
    (* The point of the incremental index: the query must stay flat as
       the thread count grows. *)
    Test.make ~name:(Printf.sprintf "gmic query: %d threads" n)
      (Staged.stage
         (let clocks = Lc.create () in
          let handles = List.init n (fun tid -> Lc.register clocks ~tid) in
          List.iteri (fun i c -> Lc.tick c (i * 97)) handles;
          fun () -> ignore (Lc.gmic_tid clocks)))
  in
  let heap_typed =
    Test.make ~name:"event heap: 256 push + pop_min (reused arrays)"
      (Staged.stage
         (let h = Sim.Heap.create () in
          fun () ->
            for i = 0 to 255 do
              Sim.Heap.push h ~key:(i * 7 mod 64) i
            done;
            while not (Sim.Heap.is_empty h) do
              ignore (Sim.Heap.pop_min_exn h)
            done))
  in
  [
    token_cycle; token_handoff; gmic_at 2; gmic_at 8; gmic_at 32; gmic_at 64; gmic_at 128;
    gmic_at 256; heap_typed;
  ]

(* ------------------------------------------------------------------ *)
(* Record/replay microbenchmarks                                      *)
(* ------------------------------------------------------------------ *)

(* Single thread, 1000 lock/write/unlock rounds: every round is a sync
   op, so the run commits at depth 1000 — the worst case for per-commit
   recording (Commit + Commit_hash per round).  Comparing the untracked
   and recording runs isolates the observer cost; the scripted replay
   adds the checker walk on top. *)
let depth1000_commit =
  Api.make ~name:"micro-replay" ~heap_pages:16 ~page_size:64 (fun ~nthreads:_ ops ->
      let w =
        ops.Api.spawn (fun w ->
            for _ = 1 to 1000 do
              w.Api.work 200;
              w.Api.lock 1;
              w.Api.write_int ~addr:0 (w.Api.read_int ~addr:0 + 1);
              w.Api.unlock 1
            done)
      in
      ops.Api.join w)

let replay_tests () =
  let open Bechamel in
  let bare =
    Test.make ~name:"replay: depth-1000 commit run (untracked)"
      (Staged.stage (fun () ->
           ignore
             (Runtime.Det_rt.run Runtime.Config.consequence_ic ~seed:1 ~nthreads:1
                depth1000_commit)))
  in
  let recording =
    Test.make ~name:"replay: depth-1000 commit run (recording)"
      (Staged.stage (fun () ->
           ignore
             (Replay.Schedule.record Runtime.Run.consequence_ic ~seed:1 ~nthreads:1
                depth1000_commit)))
  in
  let replaying =
    Test.make ~name:"replay: depth-1000 commit replay (checked)"
      (Staged.stage
         (let log, _ =
            Replay.Schedule.record Runtime.Run.consequence_ic ~seed:1 ~nthreads:1
              depth1000_commit
          in
          fun () -> ignore (Replay.Replayer.replay log depth1000_commit)))
  in
  [ bare; recording; replaying ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver shared by the micro and sched sections             *)
(* ------------------------------------------------------------------ *)

let run_bechamel ~id ~title tests =
  let open Bechamel in
  Printf.printf "=== %s: %s ===\n" id title;
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Printf.printf "%-55s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n%!" name)
        analyzed)
    tests;
  print_newline ();
  Obs.Json.Obj
    [
      ("id", Obs.Json.String id);
      ("title", Obs.Json.String title);
      ( "estimates_ns_per_run",
        Obs.Json.Obj
          (List.rev_map (fun (name, est) -> (name, Obs.Json.Float est)) !estimates) );
    ]

let run_micro () =
  run_bechamel ~id:"micro" ~title:"Bechamel microbenchmarks of the core primitives"
    (micro_tests ())

let run_sched () =
  run_bechamel ~id:"sched" ~title:"Scheduler fast-path microbenchmarks" (sched_tests ())

(* ------------------------------------------------------------------ *)
(* Baseline comparison                                                *)
(* ------------------------------------------------------------------ *)

(* [--baseline DIR] compares each freshly written BENCH_<section>.json
   against DIR/BENCH_<section>.json, leaf by numeric leaf.  The
   comparison is tolerant by construction: a missing, unreadable or
   unparseable baseline — the normal state of a young trajectory — is
   reported as skipped, never as a failure.  By default no amount of
   drift changes the exit code either; [--fail-on-regress PCT] opts in
   to failing the run (exit 1, after all sections finish) when any
   compared numeric leaf drifted by more than PCT percent. *)

let baseline_dir = ref None
let fail_on_regress : float option ref = ref None
let regressions : (string * string * float * float * float) list ref = ref []

(* Flatten to (path, value) numeric leaves: "a.b[3].c" -> 4.2.  Table
   cells serialize as strings, so numeric-looking strings (including
   "1.210x" speedups) count too. *)
let rec num_leaves prefix json acc =
  match json with
  | Obs.Json.Int i -> (prefix, float_of_int i) :: acc
  | Obs.Json.Float f -> (prefix, f) :: acc
  | Obs.Json.String s -> (
      let s =
        if String.length s > 1 && s.[String.length s - 1] = 'x' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      match float_of_string_opt s with
      | Some f -> (prefix, f) :: acc
      | None -> acc)
  | Obs.Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          num_leaves (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        acc kvs
  | Obs.Json.List l ->
      List.fold_left
        (fun (i, acc) v -> (i + 1, num_leaves (Printf.sprintf "%s[%d]" prefix i) v acc))
        (0, acc) l
      |> snd
  | _ -> acc

let compare_with_baseline ~dir section fresh =
  let file = Filename.concat dir (Printf.sprintf "BENCH_%s.json" section) in
  let contents =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error _ | End_of_file -> None
  in
  match contents with
  | None -> Printf.printf "[%s: no baseline at %s (skipped)]\n" section file
  | Some s -> (
      match Obs.Json.parse s with
      | Error e -> Printf.printf "[%s: unparseable baseline %s: %s (skipped)]\n" section file e
      | Ok old ->
          let old_leaves = num_leaves "" old [] in
          let fresh_leaves = num_leaves "" fresh [] in
          let old_tbl = Hashtbl.create (List.length old_leaves) in
          List.iter (fun (p, v) -> Hashtbl.replace old_tbl p v) old_leaves;
          let compared = ref 0 and drifted = ref [] in
          List.iter
            (fun (p, v) ->
              (* the top-level wall_ns is the harness's real measurement
                 time, not a benchmark result — never a regression *)
              if p = "wall_ns" then ()
              else
              match Hashtbl.find_opt old_tbl p with
              | None -> ()
              | Some v0 ->
                  incr compared;
                  let denom = Float.max (Float.abs v0) 1e-9 in
                  let rel = Float.abs (v -. v0) /. denom in
                  if rel > 0.05 then drifted := (p, v0, v, rel) :: !drifted;
                  (match !fail_on_regress with
                  | Some pct when rel > pct /. 100.0 ->
                      regressions := (section, p, v0, v, rel) :: !regressions
                  | _ -> ()))
            fresh_leaves;
          let drifted =
            List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) !drifted
          in
          Printf.printf "[%s: %d numeric leaves vs baseline, %d drifted >5%%]\n" section
            !compared (List.length drifted);
          List.iteri
            (fun i (p, v0, v, rel) ->
              if i < 5 then
                Printf.printf "    %s: %g -> %g (%+.1f%%)\n" p v0 v (100.0 *. rel))
            drifted)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

(* Every section also drops a machine-readable BENCH_<section>.json next
   to the textual output, so downstream tooling need not scrape tables. *)
let fig f =
  let out = f () in
  Figures.Fig_output.print out;
  Figures.Fig_output.to_json out

let run_section ~threads name =
  let w0 = Monotonic_clock.now () in
  let json =
    match name with
    | "fig10" -> fig (fun () -> Figures.Fig10.run ~threads ())
    | "fig11" -> fig (fun () -> Figures.Fig11.run ~threads ())
    | "fig12" -> fig (fun () -> Figures.Fig12.run ~threads ())
    | "fig13" -> fig (fun () -> Figures.Fig13.run ())
    | "fig14" -> fig (fun () -> Figures.Fig14.run ())
    | "fig15" -> fig (fun () -> Figures.Fig15.run ())
    | "fig16" -> fig (fun () -> Figures.Fig16.run ())
    | "determinism" -> fig (fun () -> Figures.Determinism_report.run ())
    | "tso" -> fig (fun () -> Figures.Tso_report.run ())
    | "races" -> fig (fun () -> Figures.Race_report.run ())
    | "climit" -> fig (fun () -> Figures.Climit_study.run ())
    | "soundness" -> fig (fun () -> Figures.Soundness_study.run ())
    | "locking" -> fig (fun () -> Figures.Locking_study.run ())
    | "chunking" -> fig (fun () -> Figures.Chunking_study.run ())
    | "micro" -> run_micro ()
    | "sched" -> run_sched ()
    | "replay" ->
        let figure = fig (fun () -> Figures.Replay_report.run ()) in
        let micro =
          run_bechamel ~id:"replay-micro"
            ~title:"record overhead on the depth-1000 commit microbench" (replay_tests ())
        in
        Obs.Json.Obj [ ("figure", figure); ("micro", micro) ]
    | "profile" -> fig (fun () -> Figures.Profile_report.run ())
    (* The commit sweep always runs its full 8..256-thread range: the
       whole point is the high-thread-count regime, and the simulations
       are cheap (a commit-bound microbenchmark, not a figure sweep). *)
    | "commit" -> fig (fun () -> Figures.Commit_report.run ())
    | "kv" -> fig (fun () -> Figures.Kv_report.run ())
    (* Quick-search auto-tuning over the whole registry: the acceptance
       verdicts (searched vs hand grid vs default) live in the notes. *)
    | "autotune" -> fig (fun () -> Figures.Autotune_report.run ())
    | "domains" ->
        let figure = fig (fun () -> Figures.Domains_calib.run ()) in
        Obs.Json.Obj
          [
            ("available_cores", Obs.Json.Int (Runtime.Domains_rt.available_cores ()));
            ("figure", figure);
          ]
    | other ->
        Printf.eprintf "unknown section %S; available: %s\n" other
          (String.concat " " section_names);
        exit 2
  in
  (* Every section dump also records how long the section itself took to
     produce, next to its simulated quantities.  Adding a top-level field
     keeps every existing BENCH_* schema backward-readable. *)
  let wall_ns = Int64.to_int (Int64.sub (Monotonic_clock.now ()) w0) in
  let json =
    match json with
    | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("wall_ns", Obs.Json.Int wall_ns) ])
    | other -> Obs.Json.Obj [ ("result", other); ("wall_ns", Obs.Json.Int wall_ns) ]
  in
  let file = Printf.sprintf "BENCH_%s.json" name in
  Obs.Json.to_file file json;
  Printf.printf "[%s -> %s]\n" name file;
  match !baseline_dir with
  | Some dir -> compare_with_baseline ~dir name json
  | None -> ()

let usage () =
  Printf.eprintf
    "usage: main.exe [-j N] [--baseline DIR] [--fail-on-regress PCT] [--quick|full] [all|%s ...]\n"
    (String.concat "|" section_names);
  exit 2

let set_jobs n = Sim.Par.set_jobs (if n = 0 then Sim.Par.default_jobs () else n)

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 0 ->
            set_jobs n;
            parse acc rest
        | _ -> usage ())
    | [ "-j" ] -> usage ()
    | "--baseline" :: dir :: rest ->
        baseline_dir := Some dir;
        parse acc rest
    | [ "--baseline" ] -> usage ()
    | "--fail-on-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0.0 ->
            fail_on_regress := Some p;
            parse acc rest
        | _ -> usage ())
    | [ "--fail-on-regress" ] -> usage ()
    | arg :: rest
      when String.length arg > 2 && String.sub arg 0 2 = "-j"
           && int_of_string_opt (String.sub arg 2 (String.length arg - 2)) <> None ->
        set_jobs (int_of_string (String.sub arg 2 (String.length arg - 2)));
        parse acc rest
    | "--quick" :: rest -> parse acc rest
    | "all" :: rest -> parse acc rest (* alias for the default: every section *)
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest -> parse (arg :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let full = List.mem "full" args in
  let threads = if full then full_threads else quick_threads in
  let sections = List.filter (fun a -> a <> "full") args in
  let sections = if sections = [] then section_names else sections in
  let w0 = Monotonic_clock.now () in
  let t0 = Sys.time () in
  List.iter
    (fun s ->
      run_section ~threads s;
      (* Release the fan-out pool's domains between sections: a section
         that spawns its own domains (the [domains] study) must not
         compete with idle pool workers, and the pool re-creates itself
         lazily on the next map_list. *)
      Sim.Par.shutdown_shared ();
      print_newline ())
    sections;
  Printf.printf "bench complete in %.1f s wall / %.1f s cpu (%d job%s)\n"
    (Int64.to_float (Int64.sub (Monotonic_clock.now ()) w0) /. 1e9)
    (Sys.time () -. t0) (Sim.Par.jobs ())
    (if Sim.Par.jobs () = 1 then "" else "s");
  match (!fail_on_regress, !regressions) with
  | Some pct, (_ :: _ as rs) ->
      Printf.printf "FAIL: %d numeric leaf/leaves regressed beyond %.1f%% vs baseline\n"
        (List.length rs) pct;
      List.iter
        (fun (section, p, v0, v, rel) ->
          Printf.printf "  [%s] %s: %g -> %g (%+.1f%%)\n" section p v0 v (100.0 *. rel))
        (List.rev rs);
      exit 1
  | _ -> ()

(** Commit placement: fixed-size chunks versus sync-op boundaries
    (paper section 2.4).

    CoreDet/Calvin-style TSO implementations divide execution into chunks
    of a fixed number of instructions (typically 10k–100k) and commit at
    the end of each chunk; DThreads observed that TSO only requires
    commits at synchronization operations, which amortizes commit cost
    over much larger regions.  This study runs a compute-heavy program
    under Consequence-IC with forced chunked commits at several sizes
    versus commits only at sync ops, reproducing the motivation for the
    paper's design choice. *)

type row = {
  variant : string;  (** "sync-ops-only" or "chunk-K" *)
  wall_ns : int;
  commits : int;  (** page-carrying commits *)
  forced : int;  (** chunk-boundary forced commit+updates *)
}

val chunk_sizes : int list
val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

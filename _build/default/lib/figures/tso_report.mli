(** The TSO-consistency claim (paper section 2.3), checked mechanically
    with litmus tests against the operational model in {!Tso.Model}. *)

val measure : unit -> Tso.Checker.verdict list
(** All litmus tests on all runtimes. *)

val run : unit -> Fig_output.t

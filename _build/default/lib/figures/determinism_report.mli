(** The determinism claim itself (paper section 2), checked empirically:
    for every benchmark, every deterministic library must produce
    identical witnesses (final memory, sync-operation order, program
    output) across perturbed executions, while pthreads is free to
    diverge. *)

type row = {
  benchmark : string;
  stable : (string * bool) list;  (** runtime, witnesses identical across seeds *)
  pthreads_variants : int;  (** distinct pthreads witnesses observed *)
}

val measure : ?threads:int -> ?seeds:int list -> unit -> row list
val run : ?threads:int -> ?seeds:int list -> unit -> Fig_output.t

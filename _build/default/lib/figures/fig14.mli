(** Fig 14: adaptive versus static coarsening on reverse_index and
    ferret.

    x-axis: static coarsening level (sync operations coalesced per token
    hold); the adaptive policy is the extra point.  Paper shape: the
    level matters a lot, and per-thread adaptive selection beats even the
    best static level. *)

val static_levels : int list

type row = {
  level : string;  (** "static-N" or "adaptive" or "none" *)
  walls : (string * int) list;  (** benchmark, wall ns *)
}

val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

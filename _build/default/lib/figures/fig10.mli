(** Fig 10: runtime of each deterministic library normalized to pthreads,
    per benchmark, best configuration over a thread-count sweep.

    Paper headline claims this figure carries:
    - worst-case Consequence-IC slowdown 3.9x (DThreads 12.5x, DWC 11.0x);
    - 14 of 19 programs at or below 2.5x under Consequence-IC;
    - 2.8x / 2.2x average improvement over DThreads / DWC on the five
      most challenging programs. *)

val threads_sweep : int list
(** [2; 4; 8; 16; 32] — the paper measured 2-32 threads. *)

type row = {
  benchmark : string;
  ratios : (string * float) list;  (** runtime name, best-wall / pthreads-best-wall *)
}

val measure : ?threads:int list -> ?seed:int -> unit -> row list

val run : ?threads:int list -> ?seed:int -> unit -> Fig_output.t

(** Logical-clock soundness study (paper section 2.1, reference [30]).

    The paper notes a small degree of nondeterminism in hardware
    performance-counter measurements and argues the logical clock "is
    sound in the presence of deterministic performance counters".  This
    study quantifies the contrapositive: with increasing multiplicative
    noise injected into published counter values, how often do perturbed
    executions stop producing identical witnesses?  At 0 ppm determinism
    must be absolute; at high noise the GMIC order dissolves. *)

type row = {
  ppm : int;  (** parts-per-million counter noise *)
  programs : int;
  divergent : int;  (** programs whose witnesses differed across runs *)
}

val noise_levels : int list
val measure : ?programs:int -> ?threads:int -> unit -> row list
val run : ?programs:int -> ?threads:int -> unit -> Fig_output.t

lib/figures/fig11.ml: Fig10 Fig_output List Printf Runtime Stats Workload

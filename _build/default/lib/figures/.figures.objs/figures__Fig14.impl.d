lib/figures/fig14.ml: Fig_output List Printf Runtime Stats String Workload

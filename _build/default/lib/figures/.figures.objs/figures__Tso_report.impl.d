lib/figures/tso_report.ml: Fig_output List Printf Runtime Stats Tso

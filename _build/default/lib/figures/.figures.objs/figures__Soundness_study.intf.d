lib/figures/soundness_study.mli: Fig_output

lib/figures/fig16.ml: Fig_output Hb List Printf Stats Workload

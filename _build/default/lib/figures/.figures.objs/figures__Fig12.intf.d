lib/figures/fig12.mli: Fig_output

lib/figures/fig12.ml: Fig10 Fig_output List Option Printf Runtime Stats String Workload

lib/figures/locking_study.ml: Api Fig_output List Printf Runtime Stats Workload

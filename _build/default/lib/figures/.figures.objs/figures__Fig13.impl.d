lib/figures/fig13.ml: Fig_output List Printf Runtime Stats Workload

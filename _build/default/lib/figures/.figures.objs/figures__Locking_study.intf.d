lib/figures/locking_study.mli: Fig_output

lib/figures/fig14.mli: Fig_output

lib/figures/fig_output.mli: Stats

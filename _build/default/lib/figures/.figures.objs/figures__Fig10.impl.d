lib/figures/fig10.ml: Api Fig_output List Printf Runtime Stats Workload

lib/figures/fig16.mli: Fig_output Hb

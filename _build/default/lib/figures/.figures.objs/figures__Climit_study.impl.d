lib/figures/climit_study.ml: Api Fig_output List Option Printf Runtime Sim Stats Workload

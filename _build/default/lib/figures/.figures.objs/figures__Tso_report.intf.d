lib/figures/tso_report.mli: Fig_output Tso

lib/figures/fig13.mli: Fig_output Runtime

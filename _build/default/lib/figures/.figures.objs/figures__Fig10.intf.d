lib/figures/fig10.mli: Fig_output

lib/figures/determinism_report.mli: Fig_output

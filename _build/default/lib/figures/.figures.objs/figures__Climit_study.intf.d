lib/figures/climit_study.mli: Fig_output

lib/figures/chunking_study.ml: Api Fig_output List Printf Runtime Stats Workload

lib/figures/fig15.ml: Fig_output List Printf Runtime Stats Workload

lib/figures/fig11.mli: Fig_output

lib/figures/soundness_study.ml: Fig_output List Printf Runtime Stats Workload

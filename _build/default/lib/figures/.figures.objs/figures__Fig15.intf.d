lib/figures/fig15.mli: Fig_output Stats

lib/figures/chunking_study.mli: Fig_output

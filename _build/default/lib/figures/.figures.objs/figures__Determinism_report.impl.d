lib/figures/determinism_report.ml: Api Fig_output List Printf Runtime Stats Workload

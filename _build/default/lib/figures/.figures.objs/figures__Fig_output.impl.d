lib/figures/fig_output.ml: Buffer List Printf Stats

(** Fig 16: total pages propagated under TSO (Consequence, measured)
    versus the expected number for an LRC-based system (vector-clock
    replay), for the benchmarks with substantial page traffic.

    Paper headline: LRC reduces propagation by only ~21% on average;
    barrier-heavy programs like canneal see almost no gain. *)

val measure : ?threads:int -> ?seed:int -> unit -> Hb.Lrc_study.result list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

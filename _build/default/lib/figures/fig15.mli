(** Fig 15: breakdown of where time goes, per benchmark, for pthreads,
    DWC and Consequence-IC at 8 threads.

    The ferret rows are split into the first pipeline thread (ferret_1 —
    the high-rate segmenter) and the remaining threads (ferret_n), whose
    profiles differ radically (paper section 5.2). *)

type row = {
  label : string;  (** benchmark, or "ferret_1"/"ferret_n" *)
  runtime : string;
  fractions : (Stats.Breakdown.category * float) list;
  total_ns : int;
}

val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

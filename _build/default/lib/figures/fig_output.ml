type t = {
  id : string;
  title : string;
  tables : (string * Stats.Table.t) list;
  notes : string list;
}

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  List.iter
    (fun (caption, table) ->
      if caption <> "" then Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" caption);
      Buffer.add_string buf (Stats.Table.render table))
    t.tables;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes
  end;
  Buffer.contents buf

let print t = print_string (render t)

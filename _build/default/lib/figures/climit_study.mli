(** Ad-hoc synchronization study (paper section 2.7).

    With commits only at synchronization operations, a thread spinning on
    a flag written by another thread never observes the store and
    livelocks.  Consequence's mitigation is a per-chunk instruction
    limit: a forced commit+update once a chunk exceeds it.  The paper
    notes that the limit is application-specific — some programs needed
    limits of a billion instructions to avoid slowdown — and runs the
    evaluation with the mechanism disabled.

    This study reproduces that trade-off: a flag-spinning program under a
    sweep of chunk limits (latency of observing the flag vs. forced-commit
    overhead), plus the overhead the limit imposes on a compute-bound
    program that never needed it. *)

type row = {
  limit : int option;
  spin_wall_ns : int option;  (** None = livelock detected *)
  forced_commits : int;
  compute_wall_ns : int;  (** the innocent bystander's wall time *)
}

val limits : int option list
val measure : ?seed:int -> unit -> row list
val run : ?seed:int -> unit -> Fig_output.t

(** Blocking versus polling deterministic mutexes (paper section 4.1).

    Kendo's deterministic lock polls: a GMIC thread that finds the lock
    held repeatedly bumps its own logical clock by a constant and retries,
    so others can make progress.  The paper criticizes this on two counts
    — the constant needs program-specific tuning, and the polling itself
    adds latency — and contributes the first {e blocking} deterministic
    [mutex_lock()] (depart from GMIC consideration + wait queue).

    This study runs a contended-lock program under the blocking algorithm
    and under polling with a sweep of increments: the paper's claim is
    that blocking matches or beats the {e best-tuned} polling constant
    with no tuning at all. *)

type row = {
  variant : string;  (** "blocking" or "polling-K" *)
  wall_ns : int;
  token_acquisitions : int;  (** polling retries inflate this *)
}

val increments : int list
val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

(** Fig 12: peak memory usage versus thread count, Consequence vs
    DThreads.

    Expected shape: the two are evenly matched except canneal and lu_ncb
    at high thread counts, where Conversion's rate-limited single-threaded
    version GC cannot keep up with page allocation and Consequence's
    footprint blows up (paper section 5). *)

type series = {
  benchmark : string;
  runtime : string;
  points : (int * int) list;  (** thread count, peak pages *)
}

val measure : ?threads:int list -> ?seed:int -> unit -> series list
val run : ?threads:int list -> ?seed:int -> unit -> Fig_output.t

(** Fig 13: speedup contributed by each optimization of section 3, on the
    most difficult benchmarks: Consequence-IC with all optimizations
    versus the same with one optimization disabled (higher is better;
    1.0 = the optimization does not matter for that program).

    Paper shape: adaptive coarsening and fast-forward carry ferret; the
    parallel barrier carries ocean_cp, lu_ncb, canneal and lu_cb;
    user-space counter reads contribute very little anywhere. *)

type row = {
  benchmark : string;
  speedups : (string * float) list;  (** optimization name, speedup *)
}

val optimizations : (string * (Runtime.Config.t -> Runtime.Config.t)) list
(** Display name and the config transformer that disables it. *)

val measure : ?threads:int -> ?seed:int -> unit -> row list
val run : ?threads:int -> ?seed:int -> unit -> Fig_output.t

(** Fig 11: runtime versus thread count for the six benchmarks with
    DThreads/DWC scalability problems (ocean_cp, lu_ncb, ferret, kmeans,
    water_nsquared, canneal).

    Expected shape: DThreads (and to a lesser degree DWC) degrade steeply
    with thread count; Consequence also has scaling difficulties but far
    less severe (paper section 5). *)

type series = {
  benchmark : string;
  runtime : string;
  points : (int * int) list;  (** thread count, wall ns *)
}

val measure : ?threads:int list -> ?seed:int -> unit -> series list
val run : ?threads:int list -> ?seed:int -> unit -> Fig_output.t

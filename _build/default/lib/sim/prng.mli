(** Deterministic pseudo-random number generation for the simulator.

    Every source of modelled nondeterminism (instruction-latency jitter,
    wake-up ordering noise, performance-counter measurement error) draws
    from an explicitly seeded generator, so a simulation run is a pure
    function of its seed.  The generator is SplitMix64: tiny state, good
    statistical quality, and [split] lets independent subsystems derive
    uncorrelated streams from one master seed. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    uncorrelated with the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val jitter : t -> amplitude:float -> float
(** [jitter t ~amplitude] is uniform in [\[1 -. amplitude, 1 +. amplitude]],
    used as a multiplicative latency perturbation.  [amplitude] must be in
    [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle driven by [t]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used for modelled
    arrival processes.  [mean] must be > 0. *)

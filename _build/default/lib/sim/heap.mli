(** Binary min-heap used as the simulator's event queue.

    Entries are ordered by a primary integer key (simulated time) with a
    strictly increasing sequence number as tie-breaker, so two events
    scheduled for the same instant pop in insertion order.  This total
    order is what makes the simulator deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** [push t ~key v] inserts [v] with priority [key].  Insertion order among
    equal keys is preserved on [pop]. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum entry as [(key, value)], or [None] when
    empty. *)

val peek_key : 'a t -> int option
(** Key of the minimum entry without removing it. *)

val clear : 'a t -> unit

val to_list : 'a t -> (int * 'a) list
(** Snapshot of current contents in pop order; O(n log n), for tests and
    debugging only (the heap is unchanged). *)

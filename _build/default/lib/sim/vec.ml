type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let push t x =
  if t.size = Array.length t.data then begin
    let cap = Array.length t.data in
    let new_cap = if cap = 0 then 8 else cap * 2 in
    let fresh = Array.make new_cap x in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i =
  if i < 0 || i >= t.size then invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i t.size)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let last t = if t.size = 0 then None else Some t.data.(t.size - 1)

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.size (fun i -> t.data.(i))

let clear t =
  t.data <- [||];
  t.size <- 0

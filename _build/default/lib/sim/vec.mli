(** Growable array (OCaml 5.1 has no [Dynarray] yet).

    Only the operations the simulator needs: append, random access,
    iteration, truncation from the front is not supported (version logs are
    append-only; reclamation marks entries rather than removing them). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] if out of bounds. *)

val set : 'a t -> int -> 'a -> unit
val last : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val clear : 'a t -> unit

type t = int64

let init = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b =
  let h = Int64.logxor h (Int64.of_int (b land 0xff)) in
  Int64.mul h prime

let bytes h buf =
  let acc = ref h in
  for i = 0 to Bytes.length buf - 1 do
    acc := byte !acc (Char.code (Bytes.unsafe_get buf i))
  done;
  !acc

let string h s = bytes h (Bytes.unsafe_of_string s)

let int h n =
  let acc = ref h in
  for shift = 0 to 7 do
    acc := byte !acc ((n lsr (shift * 8)) land 0xff)
  done;
  !acc

let to_hex h = Printf.sprintf "%016Lx" h

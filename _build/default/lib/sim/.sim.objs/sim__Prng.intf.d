lib/sim/prng.mli:

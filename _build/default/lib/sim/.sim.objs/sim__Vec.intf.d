lib/sim/vec.mli:

lib/sim/trace.mli:

lib/sim/trace.ml: Fnv List

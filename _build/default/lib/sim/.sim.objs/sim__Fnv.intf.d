lib/sim/fnv.mli: Bytes

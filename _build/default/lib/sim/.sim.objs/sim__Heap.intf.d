lib/sim/heap.mli:

lib/sim/fnv.ml: Bytes Char Int64 Printf

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t ~bound =
  assert (bound > 0);
  (* Mask to 62 bits so the value is a nonnegative OCaml int. *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let jitter t ~amplitude =
  assert (amplitude >= 0.0 && amplitude < 1.0);
  1.0 -. amplitude +. (2.0 *. amplitude *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t ~mean =
  assert (mean > 0.0);
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(** FNV-1a 64-bit hashing.

    Used to build compact determinism witnesses: two executions are judged
    equal by comparing incremental hashes of their observable event streams
    and final memory images.  FNV-1a is stable across runs and platforms
    (unlike [Hashtbl.hash] on boxed values), which is what a witness
    requires. *)

type t = int64
(** Hash accumulator state. *)

val init : t
(** The FNV-1a offset basis. *)

val byte : t -> int -> t
(** Fold one byte (low 8 bits of the int) into the state. *)

val bytes : t -> Bytes.t -> t
val string : t -> string -> t
val int : t -> int -> t
(** Folds the 8 little-endian bytes of the int. *)

val to_hex : t -> string

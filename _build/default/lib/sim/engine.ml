open Effect
open Effect.Deep

type tid = int

exception Deadlock of string
exception Stuck of string

(* Raised inside a fiber to unwind it; caught by the fiber wrapper. *)
exception Fiber_exit

type _ Effect.t += Advance : int -> unit Effect.t
type _ Effect.t += Block : string -> unit Effect.t

type fiber_state =
  | Ready (* an event in the queue will resume it *)
  | Running
  | Blocked of (unit, unit) continuation * string
  | Finished

type fiber = {
  id : tid;
  name : string;
  mutable state : fiber_state;
  mutable pending_wakeup : bool;
}

type t = {
  fibers : (tid, fiber) Hashtbl.t;
  queue : (unit -> unit) Heap.t;
  mutable now : int;
  mutable current : tid;
  mutable next_id : tid;
  mutable events : int;
  max_events : int;
  master_prng : Prng.t;
}

let create ?(max_events = 50_000_000) ~seed () =
  {
    fibers = Hashtbl.create 64;
    queue = Heap.create ();
    now = 0;
    current = -1;
    next_id = 0;
    events = 0;
    max_events;
    master_prng = Prng.create ~seed;
  }

let prng t = t.master_prng
let now t = t.now
let fiber_count t = t.next_id

let fiber_of t id =
  match Hashtbl.find_opt t.fibers id with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Engine: unknown fiber %d" id)

let name_of t id = (fiber_of t id).name

let schedule_resume t fiber k =
  fiber.state <- Ready;
  Heap.push t.queue ~key:t.now (fun () ->
      fiber.state <- Running;
      t.current <- fiber.id;
      continue k ())

let run_fiber t fiber body =
  match_with
    (fun () -> (try body () with Fiber_exit -> ()))
    ()
    {
      retc = (fun () -> fiber.state <- Finished);
      exnc =
        (fun e ->
          fiber.state <- Finished;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance ns ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fiber.state <- Ready;
                  Heap.push t.queue ~key:(t.now + ns) (fun () ->
                      fiber.state <- Running;
                      t.current <- fiber.id;
                      continue k ()))
          | Block reason ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if fiber.pending_wakeup then begin
                    (* A wakeup arrived before we blocked: consume the
                       permit and resume at the current instant. *)
                    fiber.pending_wakeup <- false;
                    schedule_resume t fiber k
                  end
                  else fiber.state <- Blocked (k, reason))
          | _ -> None);
    }

let spawn t ?name body =
  let id = t.next_id in
  t.next_id <- id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "fiber-%d" id in
  let fiber = { id; name; state = Ready; pending_wakeup = false } in
  Hashtbl.replace t.fibers id fiber;
  Heap.push t.queue ~key:t.now (fun () ->
      fiber.state <- Running;
      t.current <- id;
      run_fiber t fiber body);
  id

let wakeup t id =
  let fiber = fiber_of t id in
  match fiber.state with
  | Blocked (k, _) -> schedule_resume t fiber k
  | Finished -> ()
  | Ready | Running -> fiber.pending_wakeup <- true

let blocked_reason t id =
  match (fiber_of t id).state with
  | Blocked (_, reason) -> Some reason
  | Ready | Running | Finished -> None

let is_finished t id = (fiber_of t id).state = Finished

let self t =
  if t.current < 0 then invalid_arg "Engine.self: no fiber is running";
  t.current

let advance t ns =
  ignore t;
  if ns < 0 then invalid_arg "Engine.advance: negative duration";
  perform (Advance ns)

let block t ~reason =
  ignore t;
  perform (Block reason)

let exit_fiber _t = raise Fiber_exit

let stuck_fibers t =
  Hashtbl.fold
    (fun _ fiber acc ->
      match fiber.state with
      | Blocked (_, reason) -> (fiber.name, reason) :: acc
      | Ready | Running | Finished -> acc)
    t.fibers []

let run t =
  let rec loop () =
    if t.events >= t.max_events then
      raise
        (Stuck
           (Printf.sprintf "event budget (%d) exhausted at t=%dns" t.max_events
              t.now));
    match Heap.pop t.queue with
    | None ->
        let stuck = stuck_fibers t in
        if stuck <> [] then
          let detail =
            stuck
            |> List.sort compare
            |> List.map (fun (name, reason) -> Printf.sprintf "%s (%s)" name reason)
            |> String.concat ", "
          in
          raise (Deadlock detail)
    | Some (time, thunk) ->
        (* Simulated time is monotone: an event can never run before an
           already-dispatched one. *)
        if time > t.now then t.now <- time;
        t.events <- t.events + 1;
        thunk ();
        loop ()
  in
  loop ()

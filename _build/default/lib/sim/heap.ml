type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

(* Grow the backing array, using [fill] as the dummy for unused slots. *)
let grow t fill =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let fresh = Array.make new_cap fill in
  Array.blit t.data 0 fresh 0 t.size;
  t.data <- fresh

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~key value =
  let entry = { key; seq = t.next_seq; value } in
  if t.size = Array.length t.data then grow t entry;
  t.next_seq <- t.next_seq + 1;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_key t = if t.size = 0 then None else Some t.data.(0).key

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let to_list t =
  let entries = Array.sub t.data 0 t.size in
  Array.sort (fun a b -> if less a b then -1 else if less b a then 1 else 0) entries;
  Array.to_list (Array.map (fun e -> (e.key, e.value)) entries)

(** Append-only event trace.

    Runtimes record their externally observable events here (sync-operation
    order, commit order, values read).  A trace supports both full capture
    (for debugging and the TSO checker) and streaming hashing (for cheap
    determinism witnesses over long runs). *)

type t

type event = { time : int; tid : int; label : string }

val create : ?capture:bool -> unit -> t
(** [capture] (default true) controls whether events are retained in full;
    hashing happens regardless. *)

val record : t -> time:int -> tid:int -> label:string -> unit

val length : t -> int
(** Number of events recorded (counted even when capture is off). *)

val events : t -> event list
(** Events in recording order.  Empty if capture was disabled. *)

val hash : t -> string
(** Hex digest over (tid, label) pairs in order.  Timestamps are excluded:
    determinism concerns the order and content of events, not wall-clock
    performance, which legitimately varies (paper section 3). *)

val timed_hash : t -> string
(** Hex digest that also folds timestamps in; equal [timed_hash]es mean two
    runs were cycle-identical, which is expected only for equal seeds. *)

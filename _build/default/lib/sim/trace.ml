type event = { time : int; tid : int; label : string }

type t = {
  capture : bool;
  mutable events_rev : event list;
  mutable count : int;
  mutable h : Fnv.t;
  mutable timed_h : Fnv.t;
}

let create ?(capture = true) () =
  { capture; events_rev = []; count = 0; h = Fnv.init; timed_h = Fnv.init }

let record t ~time ~tid ~label =
  if t.capture then t.events_rev <- { time; tid; label } :: t.events_rev;
  t.count <- t.count + 1;
  t.h <- Fnv.string (Fnv.int t.h tid) label;
  t.timed_h <- Fnv.string (Fnv.int (Fnv.int t.timed_h time) tid) label

let length t = t.count
let events t = List.rev t.events_rev
let hash t = Fnv.to_hex t.h
let timed_hash t = Fnv.to_hex t.timed_h

(** Litmus tests: tiny multi-threaded programs whose sets of permitted
    final register values characterize a memory consistency model.

    The paper's claim (section 2.3) is that Consequence implements TSO:
    stores become visible in a single total order all threads agree on,
    but a thread may read its own buffered stores early.  We check this
    claim mechanically: {!Model} enumerates the outcomes an operational
    TSO (and, for contrast, SC) machine can produce, and the runner in
    {!Checker} executes the same litmus program on any of this
    repository's runtimes and verifies the observed outcomes fall inside
    the allowed set. *)

type var = string
(** Shared memory location (mapped to a heap address by the runner). *)

type reg = string
(** Per-thread observation register, conventionally ["r0"], ["r1"], ... *)

type instr =
  | Store of var * int
  | Load of var * reg
  | Fence  (** drains the store buffer: on the real runtimes, a commit+update *)
  | Delay of int  (** retire n instructions (schedule perturbation only) *)

type t = {
  name : string;
  description : string;
  threads : instr list list;
}

val registers : t -> reg list
(** All registers loaded into, sorted. *)

val vars : t -> var list

(** {1 Classic tests} *)

val sb : t
(** Store buffering: TSO allows both loads to see 0; SC forbids it. *)

val mp : t
(** Message passing with fences: the flag read implies the data read. *)

val mp_unfenced : t
(** Message passing without fences. *)

val lb : t
(** Load buffering: both-loads-see-1 is forbidden under TSO (loads are
    not reordered). *)

val corr : t
(** Coherence of read-read: two reads of one location by the same thread
    may not observe values in an order contradicting the store order. *)

val iriw : t
(** Independent reads of independent writes: under TSO the two readers
    must agree on the store order. *)

val n7 : t
(** A thread reads its own buffered store early (allowed) while another
    still sees the old value. *)

val all : t list

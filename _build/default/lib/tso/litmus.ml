type var = string
type reg = string

type instr = Store of var * int | Load of var * reg | Fence | Delay of int

type t = {
  name : string;
  description : string;
  threads : instr list list;
}

let registers t =
  List.concat_map
    (List.filter_map (function Load (_, r) -> Some r | Store _ | Fence | Delay _ -> None))
    t.threads
  |> List.sort_uniq compare

let vars t =
  List.concat_map
    (List.filter_map (function
      | Store (v, _) | Load (v, _) -> Some v
      | Fence | Delay _ -> None))
    t.threads
  |> List.sort_uniq compare

let sb =
  {
    name = "SB";
    description = "store buffering: r0=0 && r1=0 allowed under TSO, forbidden under SC";
    threads =
      [ [ Store ("x", 1); Load ("y", "r0") ]; [ Store ("y", 1); Load ("x", "r1") ] ];
  }

let mp =
  {
    name = "MP+fences";
    description = "message passing with fences: r1=1 => r2=1";
    threads =
      [
        [ Store ("data", 1); Fence; Store ("flag", 1); Fence ];
        [ Load ("flag", "r1"); Load ("data", "r2") ];
      ];
  }

let mp_unfenced =
  {
    name = "MP";
    description = "message passing, no fences: under TSO stores are still ordered";
    threads =
      [
        [ Store ("data", 1); Store ("flag", 1) ];
        [ Load ("flag", "r1"); Load ("data", "r2") ];
      ];
  }

let lb =
  {
    name = "LB";
    description = "load buffering: r0=1 && r1=1 forbidden under TSO (no load reordering)";
    threads =
      [ [ Load ("x", "r0"); Store ("y", 1) ]; [ Load ("y", "r1"); Store ("x", 1) ] ];
  }

let corr =
  {
    name = "CoRR";
    description = "read-read coherence: consecutive reads of x may not go backwards";
    threads =
      [ [ Store ("x", 1) ]; [ Load ("x", "r0"); Load ("x", "r1") ] ];
  }

let iriw =
  {
    name = "IRIW";
    description = "independent readers must agree on the order of independent writes";
    threads =
      [
        [ Store ("x", 1) ];
        [ Store ("y", 1) ];
        [ Load ("x", "r0"); Load ("y", "r1") ];
        [ Load ("y", "r2"); Load ("x", "r3") ];
      ];
  }

let n7 =
  {
    name = "n7";
    description = "a thread reads its own buffered store early";
    threads =
      [
        [ Store ("x", 1); Load ("x", "r0"); Load ("y", "r1") ];
        [ Store ("y", 1); Load ("y", "r2"); Load ("x", "r3") ];
      ];
  }

let all = [ sb; mp; mp_unfenced; lb; corr; iriw; n7 ]

lib/tso/model.mli: Format Litmus Set

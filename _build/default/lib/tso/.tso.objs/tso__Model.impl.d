lib/tso/model.ml: Format Hashtbl List Litmus Set

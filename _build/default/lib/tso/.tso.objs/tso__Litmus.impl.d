lib/tso/litmus.ml: List

lib/tso/litmus.mli:

lib/tso/checker.ml: Api Format List Litmus Model Printf Runtime

lib/tso/checker.mli: Api Format Litmus Model Runtime

type verdict = {
  test_name : string;
  runtime : string;
  observed : Model.Outcome_set.t;
  allowed_tso : Model.Outcome_set.t;
  allowed_sc : Model.Outcome_set.t;
  tso_ok : bool;
  sc_ok : bool;
  beyond_sc : bool;
}

let scratch_addr = 0
let var_addr test v =
  let vs = Litmus.vars test in
  let rec index i = function
    | [] -> invalid_arg ("Checker: unknown var " ^ v)
    | x :: rest -> if x = v then i else index (i + 1) rest
  in
  64 + (64 * index 0 vs)

let to_program ?(paddings = []) ?(sync_start = true) (test : Litmus.t) =
  let results : (Litmus.reg * int) list ref = ref [] in
  let nthreads = List.length test.Litmus.threads in
  let program =
    Api.make
      ~name:(Printf.sprintf "litmus-%s" test.Litmus.name)
      ~heap_pages:64 ~page_size:64 ~default_threads:nthreads
      (fun ~nthreads:_ ops ->
        results := [];
        if sync_start then ops.Api.barrier_init 0 nthreads;
        let run_thread body (w : Api.ops) =
          List.iter
            (fun instr ->
              match instr with
              | Litmus.Delay n -> w.Api.work n
              | Litmus.Store (v, n) ->
                  w.Api.work 50;
                  w.Api.write_int ~addr:(var_addr test v) n
              | Litmus.Load (v, r) ->
                  w.Api.work 50;
                  let value = w.Api.read_int ~addr:(var_addr test v) in
                  results := (r, value) :: !results
              | Litmus.Fence ->
                  (* A commit+update: the runtime's memory fence. *)
                  ignore (w.Api.atomic_fetch_add ~addr:scratch_addr 0))
            body
        in
        let handles =
          List.mapi
            (fun i body ->
              let padding = match List.nth_opt paddings i with Some p -> p | None -> 0 in
              ops.Api.spawn
                ~name:(Printf.sprintf "litmus-t%d" i)
                (fun w ->
                  if sync_start then w.Api.barrier_wait 0;
                  if padding > 0 then w.Api.work padding;
                  run_thread body w))
            test.Litmus.threads
        in
        List.iter ops.Api.join handles)
  in
  (program, fun () -> List.sort compare !results)

let observe rt ?paddings ?sync_start ?(seed = 1) test =
  let program, read_outcome = to_program ?paddings ?sync_start test in
  ignore (Runtime.Run.run rt ~seed program);
  read_outcome ()

let default_paddings ~nthreads =
  (* Delay vectors chosen to flip arrival and GMIC orders. *)
  let levels = [ 0; 900; 2_700 ] in
  match nthreads with
  | 1 -> List.map (fun a -> [ a ]) levels
  | 2 -> List.concat_map (fun a -> List.map (fun b -> [ a; b ]) levels) levels
  | _ ->
      (* Rotate a single large delay through the threads, plus uniform. *)
      List.init nthreads (fun hot -> List.init nthreads (fun i -> if i = hot then 2_700 else 0))
      @ [ List.init nthreads (fun _ -> 0); List.init nthreads (fun i -> 700 * i) ]

let run_test rt ?paddings ?(seeds = [ 1; 2; 3 ]) test =
  let nthreads = List.length test.Litmus.threads in
  let paddings = match paddings with Some p -> p | None -> default_paddings ~nthreads in
  let observed =
    List.fold_left
      (fun acc padding ->
        List.fold_left
          (fun acc seed -> Model.Outcome_set.add (observe rt ~paddings:padding ~seed test) acc)
          acc seeds)
      Model.Outcome_set.empty paddings
  in
  let allowed_tso = Model.tso_outcomes test in
  let allowed_sc = Model.sc_outcomes test in
  {
    test_name = test.Litmus.name;
    runtime = Runtime.Run.name rt;
    observed;
    allowed_tso;
    allowed_sc;
    tso_ok = Model.Outcome_set.subset observed allowed_tso;
    sc_ok = Model.Outcome_set.subset observed allowed_sc;
    beyond_sc = not (Model.Outcome_set.subset observed allowed_sc);
  }

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>%s on %s: %d observed / %d TSO-allowed / %d SC-allowed — %s@]"
    v.test_name v.runtime
    (Model.Outcome_set.cardinal v.observed)
    (Model.Outcome_set.cardinal v.allowed_tso)
    (Model.Outcome_set.cardinal v.allowed_sc)
    (if not v.tso_ok then "TSO VIOLATION"
     else if v.beyond_sc then "TSO-consistent (store buffering observed)"
     else "TSO-consistent (within SC)")

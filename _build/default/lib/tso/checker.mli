(** Execute litmus tests on the repository's runtimes and verify the
    observed outcomes against the {!Model} reference sets.

    For a deterministic runtime a single configuration yields a single
    outcome, so the checker explores the outcome space by varying
    schedule perturbations: per-thread start delays (which shift the
    instruction-count order) and engine seeds (which shift the
    nondeterministic baseline's interleavings).

    The paper's consistency claim corresponds to [tso_ok = true] for
    every deterministic runtime on every test, with [beyond_sc = true]
    achievable on the store-buffering test (proving the implementation
    really buffers stores rather than accidentally providing SC). *)

type verdict = {
  test_name : string;
  runtime : string;
  observed : Model.Outcome_set.t;
  allowed_tso : Model.Outcome_set.t;
  allowed_sc : Model.Outcome_set.t;
  tso_ok : bool;  (** observed is a subset of the TSO-permitted set *)
  sc_ok : bool;  (** observed is a subset of the SC-permitted set *)
  beyond_sc : bool;  (** some observed outcome is TSO-only (store buffering seen) *)
}

val to_program :
  ?paddings:int list -> ?sync_start:bool -> Litmus.t -> Api.t * (unit -> Model.outcome)
(** Compile a litmus test to an [Api] program.  The returned thunk reads
    the final register values; call it after the run completes.
    [paddings] prepends [Delay] instructions per thread; [sync_start]
    (default true) rendezvous the threads at a barrier first so their
    bodies genuinely overlap. *)

val observe :
  Runtime.Run.runtime ->
  ?paddings:int list ->
  ?sync_start:bool ->
  ?seed:int ->
  Litmus.t ->
  Model.outcome
(** One execution, one outcome. *)

val default_paddings : nthreads:int -> int list list
(** A small grid of per-thread start-delay vectors. *)

val run_test :
  Runtime.Run.runtime ->
  ?paddings:int list list ->
  ?seeds:int list ->
  Litmus.t ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit

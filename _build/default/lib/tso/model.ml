type outcome = (Litmus.reg * int) list

module Outcome_set = Set.Make (struct
  type t = outcome

  let compare = compare
end)

(* Machine state.  All components use canonical (sorted) representations
   so structural equality identifies equivalent states for memoization. *)
type thread_state = {
  todo : Litmus.instr list;
  buffer : (Litmus.var * int) list; (* oldest first *)
  regs : (Litmus.reg * int) list; (* sorted by register *)
}

type state = { mem : (Litmus.var * int) list; threads : thread_state list }

let mem_read mem v = match List.assoc_opt v mem with Some n -> n | None -> 0

let mem_write mem v n = (v, n) :: List.remove_assoc v mem |> List.sort compare

let reg_write regs r n = (r, n) :: List.remove_assoc r regs |> List.sort compare

(* Newest buffered value for [v], if any (store forwarding). *)
let buffer_read buffer v =
  List.fold_left (fun acc (bv, bn) -> if bv = v then Some bn else acc) None buffer

let enumerate ~buffered (test : Litmus.t) =
  let init =
    {
      mem = [];
      threads = List.map (fun todo -> { todo; buffer = []; regs = [] }) test.Litmus.threads;
    }
  in
  let seen = Hashtbl.create 4096 in
  let outcomes = ref Outcome_set.empty in
  let rec explore st =
    if not (Hashtbl.mem seen st) then begin
      Hashtbl.replace seen st ();
      let terminal =
        List.for_all (fun th -> th.todo = [] && th.buffer = []) st.threads
      in
      if terminal then begin
        let outcome =
          List.concat_map (fun th -> th.regs) st.threads |> List.sort compare
        in
        outcomes := Outcome_set.add outcome !outcomes
      end
      else
        List.iteri
          (fun i th ->
            let replace_thread th' =
              { st with threads = List.mapi (fun j t -> if j = i then th' else t) st.threads }
            in
            (* Option 1: drain the oldest buffered store. *)
            (match th.buffer with
            | (v, n) :: rest ->
                explore
                  {
                    mem = mem_write st.mem v n;
                    threads =
                      List.mapi
                        (fun j t -> if j = i then { t with buffer = rest } else t)
                        st.threads;
                  }
            | [] -> ());
            (* Option 2: execute the next instruction. *)
            match th.todo with
            | [] -> ()
            | instr :: rest -> (
                match instr with
                | Litmus.Delay _ -> explore (replace_thread { th with todo = rest })
                | Litmus.Store (v, n) ->
                    if buffered then
                      explore (replace_thread { th with todo = rest; buffer = th.buffer @ [ (v, n) ] })
                    else
                      explore
                        {
                          mem = mem_write st.mem v n;
                          threads =
                            List.mapi
                              (fun j t -> if j = i then { t with todo = rest } else t)
                              st.threads;
                        }
                | Litmus.Load (v, r) ->
                    let value =
                      match buffer_read th.buffer v with
                      | Some n -> n
                      | None -> mem_read st.mem v
                    in
                    explore (replace_thread { th with todo = rest; regs = reg_write th.regs r value })
                | Litmus.Fence ->
                    (* Enabled only once the buffer has drained. *)
                    if th.buffer = [] then explore (replace_thread { th with todo = rest })))
          st.threads
    end
  in
  explore init;
  !outcomes

let tso_outcomes test = enumerate ~buffered:true test
let sc_outcomes test = enumerate ~buffered:false test

let pp_outcome fmt outcome =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (r, n) ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%s=%d" r n)
    outcome;
  Format.fprintf fmt "}"

let pp_set fmt set =
  Format.fprintf fmt "@[<v>";
  Outcome_set.iter (fun o -> Format.fprintf fmt "%a@," pp_outcome o) set;
  Format.fprintf fmt "@]"

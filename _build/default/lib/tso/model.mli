(** Operational memory-model reference: exhaustive outcome enumeration.

    The TSO machine gives every thread a FIFO store buffer; at any step a
    thread may execute its next instruction (loads snoop the own buffer
    first — store forwarding; fences require an empty buffer) or drain
    its oldest buffered store to memory.  The SC machine is the same
    without buffers.  Exhaustive interleaving via depth-first search with
    state memoization yields the exact set of permitted final register
    assignments for a litmus test.

    These sets are ground truth for the checker: a runtime claiming TSO
    may only ever produce outcomes in [tso_outcomes]; a runtime claiming
    sequential consistency only outcomes in [sc_outcomes] (which is
    always a subset). *)

type outcome = (Litmus.reg * int) list
(** Final register values, sorted by register name.  Registers never
    loaded are absent. *)

module Outcome_set : Set.S with type elt = outcome

val tso_outcomes : Litmus.t -> Outcome_set.t
val sc_outcomes : Litmus.t -> Outcome_set.t

val pp_outcome : Format.formatter -> outcome -> unit
val pp_set : Format.formatter -> Outcome_set.t -> unit

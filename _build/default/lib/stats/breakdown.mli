(** Per-thread time accounting in the categories of the paper's Fig 15.

    Every nanosecond a simulated thread spends is attributed to exactly
    one category, so a breakdown sums to the thread's lifetime and the
    Fig 15 stacked bars can be regenerated. *)

type category =
  | Chunk  (** useful local work (user instructions) *)
  | Determ_wait  (** waiting to become GMIC / for the round-robin turn / at the DThreads fence *)
  | Barrier_wait  (** waiting for other threads at an application barrier *)
  | Lock_wait  (** parked on a held lock or condition variable *)
  | Page_fault  (** copy-on-write fault handling *)
  | Commit  (** publishing dirty pages (includes byte merges) *)
  | Update  (** pulling remote versions into the local view *)
  | Library  (** counter reads, overflow interrupts, token and misc runtime overhead *)
  | Fork  (** thread creation / teardown / pool recycling *)

val all : category list
val category_name : category -> string

type t

val create : unit -> t
val add : t -> category -> int -> unit
(** Attribute [ns] nanoseconds (>= 0) to a category. *)

val get : t -> category -> int
val total : t -> int
val merge : t -> t -> t
(** Pointwise sum (for aggregating threads). *)

val fractions : t -> (category * float) list
(** Share of total per category, in {!all} order; all zeros if empty. *)

val pp : Format.formatter -> t -> unit

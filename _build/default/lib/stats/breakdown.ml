type category =
  | Chunk
  | Determ_wait
  | Barrier_wait
  | Lock_wait
  | Page_fault
  | Commit
  | Update
  | Library
  | Fork

let all =
  [ Chunk; Determ_wait; Barrier_wait; Lock_wait; Page_fault; Commit; Update; Library; Fork ]

let index = function
  | Chunk -> 0
  | Determ_wait -> 1
  | Barrier_wait -> 2
  | Lock_wait -> 3
  | Page_fault -> 4
  | Commit -> 5
  | Update -> 6
  | Library -> 7
  | Fork -> 8

let category_name = function
  | Chunk -> "chunk"
  | Determ_wait -> "determ_wait"
  | Barrier_wait -> "barrier_wait"
  | Lock_wait -> "lock_wait"
  | Page_fault -> "page_fault"
  | Commit -> "commit"
  | Update -> "update"
  | Library -> "library"
  | Fork -> "fork"

type t = int array

let ncat = List.length all
let create () = Array.make ncat 0

let add t cat ns =
  if ns < 0 then invalid_arg "Breakdown.add: negative duration";
  let i = index cat in
  t.(i) <- t.(i) + ns

let get t cat = t.(index cat)
let total t = Array.fold_left ( + ) 0 t

let merge a b = Array.init ncat (fun i -> a.(i) + b.(i))

let fractions t =
  let sum = total t in
  List.map
    (fun cat -> (cat, if sum = 0 then 0.0 else float_of_int (get t cat) /. float_of_int sum))
    all

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun cat ->
      let v = get t cat in
      if v > 0 then Format.fprintf fmt "%-13s %12d ns@," (category_name cat) v)
    all;
  Format.fprintf fmt "@]"

lib/stats/run_result.ml: Breakdown Format List Printf

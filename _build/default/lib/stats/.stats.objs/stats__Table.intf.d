lib/stats/table.mli:

lib/stats/breakdown.ml: Array Format List

lib/stats/breakdown.mli: Format

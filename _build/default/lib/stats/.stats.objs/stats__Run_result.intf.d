lib/stats/run_result.mli: Breakdown Format

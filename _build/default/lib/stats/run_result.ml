type thread_stat = {
  tid : int;
  thread_name : string;
  breakdown : Breakdown.t;
  instructions : int;
}

type t = {
  program : string;
  runtime : string;
  nthreads : int;
  seed : int;
  wall_ns : int;
  per_thread : thread_stat list;
  sync_ops : int;
  token_acquisitions : int;
  pages_propagated : int;
  pages_committed : int;
  pages_merged : int;
  bytes_merged : int;
  write_faults : int;
  commits : int;
  coarsened_chunks : int;
  overflow_interrupts : int;
  peak_mem_pages : int;
  versions : int;
  mem_hash : string;
  sync_order_hash : string;
  output_hash : string;
  trace_events : int;
  schedule : (int * int * string) list;
}

let aggregate_breakdown t =
  List.fold_left (fun acc ts -> Breakdown.merge acc ts.breakdown) (Breakdown.create ())
    t.per_thread

let deterministic_witness t =
  Printf.sprintf "mem:%s|sync:%s|out:%s" t.mem_hash t.sync_order_hash t.output_hash

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>%s / %s: %d threads, seed %d@,\
     wall            %d ns@,\
     sync ops        %d@,\
     token acqs      %d@,\
     commits         %d (%d pages, %d merged, %d bytes)@,\
     faults          %d@,\
     pages propagated %d@,\
     peak memory     %d pages@,\
     versions        %d@,\
     witness         %s@]"
    t.program t.runtime t.nthreads t.seed t.wall_ns t.sync_ops t.token_acquisitions t.commits
    t.pages_committed t.pages_merged t.bytes_merged t.write_faults t.pages_propagated
    t.peak_mem_pages t.versions (deterministic_witness t)

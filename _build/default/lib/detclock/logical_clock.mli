(** Deterministic logical clocks (paper section 2.1).

    Each thread owns a retired-instruction counter.  The registry exposes
    the {e published} value of every counter: the value the rest of the
    system can see, which lags the thread's actual progress between
    performance-counter overflows (section 3.2).  Deterministic ordering
    is defined over published values: the thread with the {b g}lobal
    {b m}inimum {b i}nstruction {b c}ount — ties broken by thread id — is
    the GMIC thread and is the only one allowed to take the global token.

    A thread can {e depart} from GMIC consideration (the paper's
    [clockDepart()], used when blocking on a held lock so others keep
    making progress) and later re-{e arrive}.  {e pause}/{e resume} model
    the paper's [clockPause()]/[clockResume()]: while paused, a thread is
    executing runtime-library code whose instructions must not count
    (they are nondeterministic); ticking a paused clock is a bug and
    raises. *)

type t
(** Registry of all thread clocks. *)

type clock
(** One thread's clock handle. *)

val create : unit -> t

val register : t -> tid:int -> clock
(** Add a thread with published count 0.  Raises if [tid] already
    registered and still live. *)

val tid : clock -> int
val published : clock -> int

val tick : clock -> int -> unit
(** Advance the thread's count by [n] retired instructions and publish it.
    Raises [Invalid_argument] if the clock is paused or finished. *)

val pause : clock -> unit
val resume : clock -> unit
val is_paused : clock -> bool

val depart : clock -> unit
(** Remove from GMIC consideration ([clockDepart]). Idempotent. *)

val arrive : clock -> unit
(** Rejoin GMIC consideration. Idempotent. *)

val is_departed : clock -> bool

val finish : clock -> unit
(** Permanently remove the thread (thread exit). *)

val is_finished : clock -> bool

val fast_forward : clock -> to_count:int -> bool
(** [fast_forward c ~to_count] raises the clock to [to_count] if that is
    larger (paper section 3.5); returns whether it moved.  Allowed while
    paused (it happens inside the runtime library). *)

val gmic : t -> int option
(** Tid of the GMIC thread: minimal (published, tid) among live,
    non-departed threads.  [None] if no such thread. *)

val is_gmic : t -> tid:int -> bool
(** True iff [tid] is live, non-departed, and equal to {!gmic}. *)

val is_active : t -> tid:int -> bool
(** True iff [tid] is registered, live and non-departed. *)

val next_waiting_gap : t -> tid:int -> waiting:(int -> bool) -> int option
(** For the adaptive-overflow rule (section 3.2): among live non-departed
    threads [w] other than [tid] for which [waiting w] holds, find the one
    with minimal (published, tid); return [Some (count_w - count_tid + 1)]
    — how many more instructions [tid] must retire before that waiter
    becomes GMIC — or [None] if nobody relevant is waiting.  The result
    may be [<= 0] when the waiter already precedes [tid]. *)

val live_count : t -> int
val active_count : t -> int
(** Live and non-departed. *)

val counts : t -> (int * int) list
(** [(tid, published)] for all live threads, ascending tid; for tests and
    debugging. *)

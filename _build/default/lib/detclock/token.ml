type ordering = Round_robin | Instruction_count

type t = {
  eng : Sim.Engine.t;
  clocks : Logical_clock.t;
  ordering : ordering;
  mutable holder : int option;
  waiters : (int, unit) Hashtbl.t;
  mutable rr_turn : int; (* tid whose turn is next under round-robin *)
  mutable last_release_published : int;
  mutable acquisitions : int;
}

let create eng clocks ordering =
  {
    eng;
    clocks;
    ordering;
    holder = None;
    waiters = Hashtbl.create 16;
    rr_turn = 0;
    last_release_published = 0;
    acquisitions = 0;
  }

let ordering t = t.ordering
let holder t = t.holder
let is_waiting t ~tid = Hashtbl.mem t.waiters tid
let waiting_count t = Hashtbl.length t.waiters
let last_release_published t = t.last_release_published
let acquisitions t = t.acquisitions

(* Round-robin winner: the first live non-departed tid >= rr_turn, wrapping
   to the smallest if none.  Derived from the clock registry so threads
   that exit or depart are skipped without extra bookkeeping. *)
let rr_winner t =
  let live =
    List.filter_map
      (fun (tid, _) -> if Logical_clock.is_active t.clocks ~tid then Some tid else None)
      (Logical_clock.counts t.clocks)
  in
  match live with
  | [] -> None
  | first :: _ -> (
      match List.find_opt (fun tid -> tid >= t.rr_turn) live with
      | Some tid -> Some tid
      | None -> Some first)

let eligible_now t =
  match t.holder with
  | Some _ -> None
  | None -> (
      match t.ordering with
      | Instruction_count -> Logical_clock.gmic t.clocks
      | Round_robin -> rr_winner t)

let poke t =
  match eligible_now t with
  | Some tid when Hashtbl.mem t.waiters tid -> Sim.Engine.wakeup t.eng tid
  | Some _ | None -> ()

let wait t ~tid =
  Hashtbl.replace t.waiters tid ();
  let eligible () = t.holder = None && eligible_now t = Some tid in
  while not (eligible ()) do
    Sim.Engine.block t.eng ~reason:"token"
  done;
  Hashtbl.remove t.waiters tid;
  t.holder <- Some tid;
  t.acquisitions <- t.acquisitions + 1

let release t ~tid =
  if t.holder <> Some tid then
    invalid_arg (Printf.sprintf "Token.release: tid %d does not hold the token" tid);
  t.holder <- None;
  (match List.assoc_opt tid (Logical_clock.counts t.clocks) with
  | Some published -> t.last_release_published <- published
  | None -> ());
  (match t.ordering with
  | Round_robin -> t.rr_turn <- tid + 1
  | Instruction_count -> ());
  poke t

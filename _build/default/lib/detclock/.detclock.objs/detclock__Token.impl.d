lib/detclock/token.ml: Hashtbl List Logical_clock Printf Sim

lib/detclock/overflow_policy.mli:

lib/detclock/logical_clock.ml: Hashtbl List Option Printf

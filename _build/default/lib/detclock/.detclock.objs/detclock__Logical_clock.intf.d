lib/detclock/logical_clock.mli:

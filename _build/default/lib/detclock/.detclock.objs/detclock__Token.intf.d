lib/detclock/token.mli: Logical_clock Sim

lib/detclock/overflow_policy.ml:

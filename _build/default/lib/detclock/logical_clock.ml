type clock = {
  tid : int;
  mutable published : int;
  mutable paused : bool;
  mutable departed : bool;
  mutable finished : bool;
}

type t = { clocks : (int, clock) Hashtbl.t }

let create () = { clocks = Hashtbl.create 32 }

let register t ~tid =
  (match Hashtbl.find_opt t.clocks tid with
  | Some c when not c.finished ->
      invalid_arg (Printf.sprintf "Logical_clock.register: tid %d already live" tid)
  | Some _ | None -> ());
  let c = { tid; published = 0; paused = false; departed = false; finished = false } in
  Hashtbl.replace t.clocks tid c;
  c

let tid c = c.tid
let published c = c.published

let tick c n =
  if c.paused then invalid_arg "Logical_clock.tick: clock is paused";
  if c.finished then invalid_arg "Logical_clock.tick: clock is finished";
  if n < 0 then invalid_arg "Logical_clock.tick: negative tick";
  c.published <- c.published + n

let pause c = c.paused <- true
let resume c = c.paused <- false
let is_paused c = c.paused
let depart c = c.departed <- true
let arrive c = c.departed <- false
let is_departed c = c.departed
let finish c = c.finished <- true
let is_finished c = c.finished

let fast_forward c ~to_count =
  if to_count > c.published then begin
    c.published <- to_count;
    true
  end
  else false

let active c = (not c.finished) && not c.departed

(* Lexicographic (published, tid) minimum over active clocks. *)
let gmic t =
  Hashtbl.fold
    (fun _ c best ->
      if not (active c) then best
      else
        match best with
        | None -> Some c
        | Some b ->
            if c.published < b.published || (c.published = b.published && c.tid < b.tid) then
              Some c
            else best)
    t.clocks None
  |> Option.map (fun c -> c.tid)

let is_active t ~tid =
  match Hashtbl.find_opt t.clocks tid with None -> false | Some c -> active c

let is_gmic t ~tid =
  match Hashtbl.find_opt t.clocks tid with
  | None -> false
  | Some c -> active c && gmic t = Some tid

let next_waiting_gap t ~tid ~waiting =
  match Hashtbl.find_opt t.clocks tid with
  | None -> None
  | Some me ->
      Hashtbl.fold
        (fun _ c best ->
          if c.tid = tid || (not (active c)) || not (waiting c.tid) then best
          else
            match best with
            | None -> Some c
            | Some b ->
                if c.published < b.published || (c.published = b.published && c.tid < b.tid)
                then Some c
                else best)
        t.clocks None
      |> Option.map (fun w -> w.published - me.published + 1)

let live_count t =
  Hashtbl.fold (fun _ c n -> if c.finished then n else n + 1) t.clocks 0

let active_count t = Hashtbl.fold (fun _ c n -> if active c then n + 1 else n) t.clocks 0

let counts t =
  Hashtbl.fold (fun _ c acc -> if c.finished then acc else (c.tid, c.published) :: acc) t.clocks []
  |> List.sort compare

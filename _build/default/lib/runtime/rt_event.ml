type t =
  | Commit of { tid : int; version : int; pages : int list }
  | Release of { tid : int; obj : string }
  | Acquire of { tid : int; obj : string }

type observer = t -> unit

let obj_mutex m = Printf.sprintf "m:%d" m
let obj_cond c = Printf.sprintf "c:%d" c
let obj_barrier b = Printf.sprintf "b:%d" b
let obj_thread t = Printf.sprintf "t:%d" t

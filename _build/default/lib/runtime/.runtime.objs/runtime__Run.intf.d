lib/runtime/run.mli: Api Config Cost_model Stats

lib/runtime/cost_model.mli: Sim

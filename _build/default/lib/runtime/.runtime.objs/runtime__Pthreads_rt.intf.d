lib/runtime/pthreads_rt.mli: Api Cost_model Stats

lib/runtime/det_rt.ml: Api Bytes Config Cost_model Detclock Hashtbl List Printf Queue Rt_event Sim Stats Vmem

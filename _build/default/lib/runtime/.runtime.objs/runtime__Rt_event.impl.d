lib/runtime/rt_event.ml: Printf

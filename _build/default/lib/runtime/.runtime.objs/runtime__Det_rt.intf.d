lib/runtime/det_rt.mli: Api Config Cost_model Rt_event Stats

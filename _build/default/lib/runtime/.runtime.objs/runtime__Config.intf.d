lib/runtime/config.mli:

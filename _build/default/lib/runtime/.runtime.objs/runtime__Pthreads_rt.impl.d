lib/runtime/pthreads_rt.ml: Api Bytes Cost_model Hashtbl Int64 List Printf Queue Sim Stats

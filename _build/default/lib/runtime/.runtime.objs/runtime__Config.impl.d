lib/runtime/config.ml: Printf

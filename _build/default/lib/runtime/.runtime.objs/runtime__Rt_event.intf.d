lib/runtime/rt_event.mli:

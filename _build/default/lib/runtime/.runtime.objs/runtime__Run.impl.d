lib/runtime/run.ml: Config Det_rt List Pthreads_rt Stats

(** Happens-before instrumentation events.

    The deterministic runtime can report each commit, release and acquire
    to an observer as it executes; the [hb] library replays these with
    vector clocks to estimate what an LRC-based consistency model would
    have propagated (paper section 5.3 / Fig 16).

    Objects are identified by strings: ["m:3"] (mutex), ["c:1"]
    (condition variable), ["b:0"] (barrier), ["t:5"] (thread start/exit
    edge).  Events are emitted in the global total (token) order. *)

type t =
  | Commit of { tid : int; version : int; pages : int list }
      (** the thread published these pages as the given version *)
  | Release of { tid : int; obj : string }
      (** release edge source: unlock, barrier arrival, cond signal,
          thread spawn (parent side), thread exit *)
  | Acquire of { tid : int; obj : string }
      (** acquire edge sink: lock, barrier departure, cond wake,
          thread start (child side), join *)

type observer = t -> unit

val obj_mutex : int -> string
val obj_cond : int -> string
val obj_barrier : int -> string
val obj_thread : int -> string

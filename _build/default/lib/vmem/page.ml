type t = Bytes.t

let create ~size = Bytes.make size '\000'
let copy = Bytes.copy
let equal = Bytes.equal

let check_lengths a b name =
  if Bytes.length a <> Bytes.length b then
    invalid_arg (Printf.sprintf "Page.%s: length mismatch (%d vs %d)" name (Bytes.length a) (Bytes.length b))

let diff_count ~twin ~local =
  check_lengths twin local "diff_count";
  let n = ref 0 in
  for i = 0 to Bytes.length twin - 1 do
    if Bytes.unsafe_get twin i <> Bytes.unsafe_get local i then incr n
  done;
  !n

let merge_into ~twin ~local ~target =
  check_lengths twin local "merge_into";
  check_lengths twin target "merge_into";
  let n = ref 0 in
  for i = 0 to Bytes.length twin - 1 do
    let b = Bytes.unsafe_get local i in
    if Bytes.unsafe_get twin i <> b then begin
      Bytes.unsafe_set target i b;
      incr n
    end
  done;
  !n

let hash_into h page = Sim.Fnv.bytes h page

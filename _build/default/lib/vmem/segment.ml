type version = int

type entry = { committer : int; page_idxs : int array }

type t = {
  name : string;
  page_size : int;
  npages : int;
  (* Per-page snapshot history, newest first.  Every history implicitly
     ends with the shared zero page at version 0. *)
  histories : (version * Page.t) list array;
  last_mod_arr : int array;
  versions : entry Sim.Vec.t; (* index i holds version i+1 *)
  zero : Page.t;
  mutable live : int;
  mutable gc_cursor : int;
}

let create ?(name = "segment") ~pages ~page_size () =
  if pages <= 0 then invalid_arg "Segment.create: pages must be > 0";
  if page_size <= 0 then invalid_arg "Segment.create: page_size must be > 0";
  {
    name;
    page_size;
    npages = pages;
    histories = Array.make pages [];
    last_mod_arr = Array.make pages 0;
    versions = Sim.Vec.create ();
    zero = Page.create ~size:page_size;
    live = 0;
    gc_cursor = 0;
  }

let name t = t.name
let page_count t = t.npages
let page_size t = t.page_size
let current_version t = Sim.Vec.length t.versions

let check_page t i =
  if i < 0 || i >= t.npages then
    invalid_arg (Printf.sprintf "Segment %s: page %d out of bounds (%d pages)" t.name i t.npages)

let read_page t ~version i =
  check_page t i;
  let rec find = function
    | [] -> t.zero
    | (v, page) :: rest -> if v <= version then page else find rest
  in
  find t.histories.(i)

let last_mod t i =
  check_page t i;
  t.last_mod_arr.(i)

let commit t ~committer ~pages =
  let vnum = current_version t + 1 in
  let idxs = Array.of_list (List.map fst pages) in
  let seen = Hashtbl.create (Array.length idxs) in
  Array.iter
    (fun i ->
      check_page t i;
      if Hashtbl.mem seen i then
        invalid_arg (Printf.sprintf "Segment %s: duplicate page %d in commit" t.name i);
      Hashtbl.replace seen i ())
    idxs;
  List.iter
    (fun (i, page) ->
      if Bytes.length page <> t.page_size then
        invalid_arg (Printf.sprintf "Segment %s: bad page size in commit" t.name);
      t.histories.(i) <- (vnum, page) :: t.histories.(i);
      t.last_mod_arr.(i) <- vnum;
      t.live <- t.live + 1)
    pages;
  Sim.Vec.push t.versions { committer; page_idxs = idxs };
  vnum

let committer_of t v =
  if v <= 0 || v > current_version t then
    invalid_arg (Printf.sprintf "Segment %s: no committer for version %d" t.name v);
  (Sim.Vec.get t.versions (v - 1)).committer

let fold_modified_since t ~since f acc =
  let upto = current_version t in
  let acc = ref acc in
  for v = since + 1 to upto do
    let entry = Sim.Vec.get t.versions (v - 1) in
    acc := f !acc entry
  done;
  !acc

let modified_since t ~since =
  let seen = Hashtbl.create 64 in
  let () =
    fold_modified_since t ~since
      (fun () entry -> Array.iter (fun i -> Hashtbl.replace seen i ()) entry.page_idxs)
      ()
  in
  Hashtbl.fold (fun i () acc -> i :: acc) seen [] |> List.sort compare

let modified_since_by_others t ~since ~tid =
  let seen = Hashtbl.create 64 in
  let () =
    fold_modified_since t ~since
      (fun () entry ->
        if entry.committer <> tid then
          Array.iter (fun i -> Hashtbl.replace seen i ()) entry.page_idxs)
      ()
  in
  Hashtbl.length seen

let versions_created t = current_version t
let live_snapshots t = t.live

let touched_pages t =
  let n = ref 0 in
  for i = 0 to t.npages - 1 do
    if t.last_mod_arr.(i) > 0 then incr n
  done;
  !n

let gc_page t ~min_base i =
  (* Keep the newest snapshot at version <= min_base plus everything newer;
     drop the rest.  Returns snapshots dropped. *)
  let rec split kept = function
    | [] -> (List.rev kept, [])
    | (v, page) :: rest ->
        if v <= min_base then (List.rev ((v, page) :: kept), rest)
        else split ((v, page) :: kept) rest
  in
  let kept, dropped = split [] t.histories.(i) in
  if dropped = [] then 0
  else begin
    t.histories.(i) <- kept;
    let n = List.length dropped in
    t.live <- t.live - n;
    n
  end

let gc t ~min_base ~budget =
  let reclaimed = ref 0 in
  let scanned = ref 0 in
  while !reclaimed < budget && !scanned < t.npages do
    let i = t.gc_cursor in
    t.gc_cursor <- (t.gc_cursor + 1) mod t.npages;
    reclaimed := !reclaimed + gc_page t ~min_base i;
    incr scanned
  done;
  !reclaimed

let hash t =
  let v = current_version t in
  let h = ref Sim.Fnv.init in
  for i = 0 to t.npages - 1 do
    h := Page.hash_into !h (read_page t ~version:v i)
  done;
  Sim.Fnv.to_hex !h

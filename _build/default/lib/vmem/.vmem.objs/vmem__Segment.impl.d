lib/vmem/segment.ml: Array Bytes Hashtbl List Page Printf Sim

lib/vmem/page.ml: Bytes Printf Sim

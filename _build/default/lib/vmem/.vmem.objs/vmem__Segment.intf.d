lib/vmem/segment.mli: Page

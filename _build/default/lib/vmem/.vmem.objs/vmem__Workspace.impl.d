lib/vmem/workspace.ml: Bytes Hashtbl Int64 List Page Printf Segment

lib/vmem/workspace.mli: Bytes Segment

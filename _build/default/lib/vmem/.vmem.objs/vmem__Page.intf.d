lib/vmem/page.mli: Bytes Sim

(** Vector clocks over thread ids.

    Component [t] of a clock counts how many commits by thread [t] the
    owner is guaranteed (by happens-before edges) to have observed.
    Missing components are 0.  Immutable. *)

type t

val empty : t
val get : t -> int -> int
val set : t -> int -> int -> t
(** [set vc tid n] — [n] must be >= the current component. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** Pointwise <=. *)

val equal : t -> t -> bool

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Iterate non-zero components as [f tid count acc]. *)

val pp : Format.formatter -> t -> unit

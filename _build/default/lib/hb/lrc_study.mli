(** The memory-propagation study of paper section 5.3 / Fig 16.

    Consequence's TSO consistency makes every commit globally visible:
    each update pulls every page committed by other threads since the
    thread's last update.  A lazy-release-consistency (LRC) system would
    instead propagate pages only along happens-before edges: an acquire
    of object [o] obliges the acquirer to see exactly the writes that
    happened-before the matching release.

    This module replays the runtime's instrumentation events (commits,
    releases, acquires) with vector clocks — one per thread, per sync
    object and (logically) per page write — and counts, for each acquire,
    the pages whose visible version advances.  Summed over the run this
    is the page traffic an LRC implementation would pay, to compare with
    the TSO traffic the run actually measured.

    The paper reports an average LRC saving of only ~21% across the
    benchmarks with >= 10K page updates, barriers being the equalizer. *)

type result = {
  program : string;
  tso_pages : int;  (** pages propagated by the TSO runtime (measured) *)
  lrc_pages : int;  (** pages an LRC system would have propagated (replayed) *)
  acquires : int;
  commits : int;
  page_updates : int;  (** total page-commit events (Fig 16's >= 10K filter) *)
}

val reduction : result -> float
(** Fractional saving of LRC over TSO, in [\[0, 1\]]; 0 when TSO moved no
    pages. *)

type tracker

val create_tracker : unit -> tracker
val observer : tracker -> Runtime.Rt_event.t -> unit
val lrc_pages : tracker -> int
val acquires : tracker -> int
val commits : tracker -> int
val page_updates : tracker -> int

val run :
  ?costs:Runtime.Cost_model.t -> ?seed:int -> ?nthreads:int -> Api.t -> result
(** Execute the program under Consequence-IC with tracking enabled. *)

module IntMap = Map.Make (Int)

type t = int IntMap.t

let empty = IntMap.empty
let get vc tid = match IntMap.find_opt tid vc with Some n -> n | None -> 0

let set vc tid n =
  if n < get vc tid then invalid_arg "Vector_clock.set: components are monotone";
  IntMap.add tid n vc

let join a b = IntMap.union (fun _ x y -> Some (max x y)) a b

let leq a b = IntMap.for_all (fun tid n -> n <= get b tid) a

let equal a b = leq a b && leq b a

let fold f vc acc = IntMap.fold (fun tid n acc -> if n > 0 then f tid n acc else acc) vc acc

let pp fmt vc =
  Format.fprintf fmt "{";
  ignore
    (IntMap.fold
       (fun tid n first ->
         if not first then Format.fprintf fmt ", ";
         Format.fprintf fmt "%d:%d" tid n;
         false)
       vc true);
  Format.fprintf fmt "}"

lib/hb/lrc_study.mli: Api Runtime

lib/hb/lrc_study.ml: Api Hashtbl List Runtime Sim Stats Vector_clock

lib/hb/vector_clock.mli: Format

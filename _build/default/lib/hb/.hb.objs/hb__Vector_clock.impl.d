lib/hb/vector_clock.ml: Format Int Map

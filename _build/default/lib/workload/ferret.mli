(** PARSEC [ferret]: the 4-stage image-similarity pipeline.

    The first stage (one thread, named ["ferret-seg"]) performs a high
    volume of lock operations with very short chunks, while the later
    stages alternate long compute chunks with condition-variable waits —
    the bimodal behaviour the paper splits into ferret_1 / ferret_n in
    Fig 15.  Good performance requires both GMIC ordering (so the
    fast-syncing stage-1 thread is not throttled by round-robin turns)
    and adaptive coarsening (to amortize its coordination phases) —
    ferret is the paper's flagship for both (Fig 13, Fig 14). *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

val stage1_name : string
(** Thread name of the first pipeline stage ("ferret_1" in Fig 15). *)

(** PARSEC [swaptions]: Monte-Carlo pricing over private state;
    embarrassingly parallel. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t

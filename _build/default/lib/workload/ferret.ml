let page = 256
let results_base = page * 4
let result_slots = 128
let scratch_base = page * 64 (* per-thread feature buffers, 2 pages each *)
let scratch_pages = 2
let qa_base = page * 32
let qb_base = page * 36
let qc_base = page * 40

let qa = Wl_util.queue_make ~base:qa_base ~capacity:4 ~lock:0 ~nonfull:0 ~nonempty:1
let qb = Wl_util.queue_make ~base:qb_base ~capacity:4 ~lock:1 ~nonfull:2 ~nonempty:3
let qc = Wl_util.queue_make ~base:qc_base ~capacity:4 ~lock:2 ~nonfull:4 ~nonempty:5

let poison = 0
let stage1_name = "ferret-seg"

let make ?(scale = 1.0) () =
  Api.make ~name:"ferret" ~description:"4-stage similarity-search pipeline"
    ~heap_pages:192 ~page_size:page (fun ~nthreads ops ->
      let items = Wl_util.scaled scale 16 in
      (* One segmenter; the rest split across extract / index / rank. *)
      let rest = max 3 (nthreads - 1) in
      let n_extract = max 1 (rest / 3) in
      let n_index = max 1 (rest / 3) in
      let n_rank = max 1 (rest - n_extract - n_index) in
      let seg =
        ops.Api.spawn ~name:stage1_name (fun w ->
            (* High-rate segmentation: tiny chunks, many queue locks. *)
            for j = 1 to items do
              w.Api.work (Wl_util.work_amount scale 400);
              Wl_util.queue_push w qa j
            done;
            for _ = 1 to n_extract do
              Wl_util.queue_push w qa poison
            done)
      in
      let stage ~name ~count ~inq ~outq ~work_ns ~downstream =
        List.init count (fun k ->
            ops.Api.spawn ~name:(Printf.sprintf "%s%d" name k) (fun w ->
                let continue = ref true in
                while !continue do
                  let item = Wl_util.queue_pop w inq in
                  if item = poison then continue := false
                  else begin
                    w.Api.work (Wl_util.work_amount scale work_ns);
                    (* Per-item feature buffer: private pages whose commits
                       ride the queue unlocks.  TSO broadcasts them to all
                       threads; LRC would move them only along the queue's
                       happens-before edges (Fig 16). *)
                    Wl_util.fill_region w
                      ~addr:(scratch_base + (page * scratch_pages * w.Api.tid))
                      ~bytes:(page * scratch_pages) ~tag:item;
                    match outq with
                    | Some q -> Wl_util.queue_push w q item
                    | None ->
                        (* Rank stage: record the match score. *)
                        let slot = item mod result_slots in
                        w.Api.lock 3;
                        w.Api.write_int ~addr:(results_base + (8 * slot))
                          (w.Api.read_int ~addr:(results_base + (8 * slot)) + item);
                        w.Api.unlock 3
                  end
                done;
                ignore downstream))
      in
      let extracts =
        stage ~name:"ferret-extract" ~count:n_extract ~inq:qa ~outq:(Some qb)
          ~work_ns:8_000 ~downstream:n_index
      in
      let indexes =
        stage ~name:"ferret-index" ~count:n_index ~inq:qb ~outq:(Some qc) ~work_ns:11_000
          ~downstream:n_rank
      in
      let ranks =
        stage ~name:"ferret-rank" ~count:n_rank ~inq:qc ~outq:None ~work_ns:13_000 ~downstream:0
      in
      ops.Api.join seg;
      List.iter ops.Api.join extracts;
      for _ = 1 to n_index do
        Wl_util.queue_push ops qb poison
      done;
      List.iter ops.Api.join indexes;
      for _ = 1 to n_rank do
        Wl_util.queue_push ops qc poison
      done;
      List.iter ops.Api.join ranks;
      let sum = Wl_util.checksum ops ~addr:results_base ~words:result_slots in
      ops.Api.log_output (Printf.sprintf "ferret=%d" sum))

let default = make ()

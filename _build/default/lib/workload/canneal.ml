let page = 256
let netlist_pages = 640
let netlist_base = page * 16 (* shared netlist region starts after the result cells *)

let make ?(scale = 1.0) () =
  Api.make ~name:"canneal" ~description:"annealing swaps across shared pages, barrier-heavy"
    ~heap_pages:(16 + netlist_pages) ~page_size:page (fun ~nthreads ops ->
      ops.Api.barrier_init 0 nthreads;
      let iters = Wl_util.scaled scale 8 in
      let swaps = Wl_util.scaled scale 36 in
      Wl_util.spawn_workers ops ~n:nthreads (fun i w ->
          let p = Sim.Prng.create ~seed:(7_000 + i) in
          for iter = 1 to iters do
            w.Api.work (Wl_util.work_amount scale 6_000);
            (* Swap elements scattered across the netlist.  Odd and even
               threads use different halves of each 16-byte slot; writes
               within a parity class may collide, modelling canneal's racy
               swaps (resolved deterministically by byte merging). *)
            for _ = 1 to swaps do
              let pg = Sim.Prng.int p ~bound:netlist_pages in
              let slot = Sim.Prng.int p ~bound:(page / 16 / 2) in
              let addr = netlist_base + (pg * page) + (16 * ((slot * 2) mod (page / 16))) in
              let addr = addr + if i land 1 = 1 then 8 else 0 in
              w.Api.write_int ~addr ((i * 1000) + iter)
            done;
            w.Api.barrier_wait 0
          done;
          w.Api.write_int ~addr:(8 * i) (i + iters));
      let sum = Wl_util.checksum ops ~addr:0 ~words:nthreads in
      ops.Api.log_output (Printf.sprintf "canneal=%d" sum))

let default = make ()

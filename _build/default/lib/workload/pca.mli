(** Phoenix [pca]: two parallel reduction phases separated by barriers.

    Phase 1 computes row means (private), phase 2 the covariance folds
    into shared state under locks.  Moderate propagation volume; in the
    paper DThreads/DWC slightly outperform Consequence here. *)

val make : ?scale:float -> unit -> Api.t
val default : Api.t
